GO ?= go

.PHONY: check build vet test race bench

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem
