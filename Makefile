GO ?= go
COVER_MIN ?= 85

.PHONY: check build vet test race bench cover

check: build vet race cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem
	$(GO) run ./cmd/madbench -json o1 > BENCH_o1.json

# cover gates the observability packages: the metrics registry and the
# tracer are the measurement substrate every perf claim rests on, so their
# statement coverage must stay above COVER_MIN percent.
cover:
	$(GO) test -coverprofile=cover.out ./internal/obs ./internal/trace
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "obs+trace coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
