GO ?= go
COVER_MIN ?= 85
FWD_COVER_MIN ?= 80
FUZZTIME ?= 30s
# package:target pairs; go test accepts one -fuzz pattern per invocation.
FUZZ_TARGETS = \
	internal/fwd:FuzzGTMHeader internal/fwd:FuzzStripeHeader \
	internal/fwd:FuzzGTMCompactHeader internal/fwd:FuzzMcastHeader \
	internal/fwd:FuzzRelData internal/fwd:FuzzRelAck internal/fwd:FuzzRelDesc \
	internal/health:FuzzHealthProbe internal/flow:FuzzFlowCredit \
	internal/agg:FuzzAggFrame

.PHONY: check build vet test race bench cover fuzz stripe-gate r2-gate o2-gate c1-gate m1-gate b1-gate soak

# check includes the facade API-surface golden test (api_test.go vs
# api.txt) via the race lane; regen the listing after an intentional API
# change with: MADGO_REGEN_API=1 $(GO) test -run TestAPISurfaceGolden .
check: build vet race cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem
	$(GO) run ./cmd/madbench -json o1 > BENCH_o1.json
	$(GO) run ./cmd/madbench -json p1 > BENCH_p1.json
	$(GO) run ./cmd/madbench -json s1 > BENCH_s1.json
	$(GO) run ./cmd/madbench -json r2 > BENCH_r2.json
	$(GO) run ./cmd/madbench -json o2 > BENCH_o2.json
	$(GO) run ./cmd/madbench -json c1 > BENCH_c1.json
	$(GO) run ./cmd/madbench -json m1 > BENCH_m1.json
	$(GO) run ./cmd/madbench -json b1 > BENCH_b1.json

# stripe-gate archives the striping sweep and fails unless K=2 goodput on
# the dual-rail topology is >= 1.5x the K=1 baseline at 64-128 KB. The
# simulation is deterministic, so the gate test reruns the exact sweep the
# JSON archive came from.
stripe-gate:
	$(GO) run ./cmd/madbench -json s1 > BENCH_s1.json
	$(GO) test ./internal/bench -run '^TestS1StripeSpeedupGate$$' -v

# r2-gate archives the self-healing recovery run and fails unless the rail
# the fault plan flaps dead is re-admitted after probation and goodput
# re-converges to >= 90% of the pre-fault dual-rail level. Deterministic,
# so the gate test reruns the exact stream the JSON archive came from.
r2-gate:
	$(GO) run ./cmd/madbench -json r2 > BENCH_r2.json
	$(GO) test ./internal/bench -run '^TestR2SelfHealingGate$$' -v

# o2-gate archives the flight-recorder overhead run and fails unless (a)
# goodput with the recorder armed stays within 5% of the disarmed run (it
# is identical: recording costs no virtual time and zero allocations — the
# alloc-regression test pins the latter), and (b) the critical-path
# analyzer calls the depth-1 stream swap-overhead-bound (§3.4.1) and clears
# the verdict at depth 8. Deterministic, so the gate test reruns the exact
# streams the JSON archive came from.
o2-gate:
	$(GO) run ./cmd/madbench -json o2 > BENCH_o2.json
	$(GO) test ./internal/bench -run '^TestO2FlightGate$$' -v
	$(GO) test ./internal/flight -run 'ZeroAllocs' -v

# c1-gate archives the 64-sender incast fairness run and fails unless the
# FIFO baseline is measurably unfair (Jain <= 0.80), the credit + DRR
# scheduler equalizes per-sender goodput (Jain >= 0.90), and aggregate
# goodput stays within 5% of the serialized single-sender ceiling.
# Deterministic, so the gate test reruns the exact incast the JSON archive
# came from.
c1-gate:
	$(GO) run ./cmd/madbench -json c1 > BENCH_c1.json
	$(GO) test ./internal/bench -run '^TestC1FlowGate$$' -v

# m1-gate archives the eager small-message sweep and fails unless the
# eager+aggregation configuration delivers >= 3x the seed framing's goodput
# for every mice size up to 1 KB while the 64/128 KB parity points, which
# bypass the coalescer, stay within 2% of the seed. Deterministic, so the
# gate test reruns the exact sweep the JSON archive came from.
m1-gate:
	$(GO) run ./cmd/madbench -json m1 > BENCH_m1.json
	$(GO) test ./internal/bench -run '^TestM1EagerGate$$' -v
	$(GO) test ./internal/agg -run 'AllocsNothing' -v

# b1-gate archives the broadcast fan-out comparison and fails unless
# gateway-native multicast delivers >= 2x the unicast fan-out's aggregate
# goodput at 8+ receivers on the 2-gateway chain, every receiver's payload
# is byte-identical, and the first gateway's ingress byte count is
# independent of the receiver count. Deterministic, so the gate test reruns
# the exact streams the JSON archive came from.
b1-gate:
	$(GO) run ./cmd/madbench -json b1 > BENCH_b1.json
	$(GO) test ./internal/bench -run '^TestB1McastGate$$' -v

# soak runs the chaos property tests — random link flaps under load with
# byte-identical payload, epoch-convergence and rail-readmission
# assertions — and the many-senders contention wall (2..64 senders x
# topology x mode x flow on/off, byte-identical delivery without deadlock),
# all with the race detector on.
soak:
	$(GO) test -race ./internal/fwd -run '^TestChaosSoakSelfHealing$$|^TestHealth' -v
	$(GO) test -race ./internal/fwd -run '^TestManySendersContentionWall$$' -v
	$(GO) test -race ./internal/health

# fuzz smokes every wire-codec fuzz target for FUZZTIME each (go test
# accepts a single -fuzz pattern per invocation, hence the pkg:target
# loop). CI runs this with the default 30s per target.
fuzz:
	@set -e; for pt in $(FUZZ_TARGETS); do \
		pkg=$${pt%%:*}; t=$${pt##*:}; \
		echo "fuzz ./$$pkg $$t ($(FUZZTIME))"; \
		$(GO) test ./$$pkg -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME); \
	done

# cover gates the observability packages — the metrics registry and the
# tracer are the measurement substrate every perf claim rests on — and the
# forwarding engine itself, whose gate FWD_COVER_MIN covers the gateway
# pipeline, the GTM and the reliable codecs.
cover:
	$(GO) test -coverprofile=cover.out ./internal/obs ./internal/trace
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "obs+trace coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
	$(GO) test -coverprofile=cover_fwd.out ./internal/fwd
	@$(GO) tool cover -func=cover_fwd.out | awk -v min=$(FWD_COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "fwd coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
	$(GO) test -coverprofile=cover_flight.out ./internal/flight
	@$(GO) tool cover -func=cover_flight.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "flight coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
	$(GO) test -coverprofile=cover_flow.out ./internal/flow
	@$(GO) tool cover -func=cover_flow.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "flow coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
	$(GO) test -coverprofile=cover_agg.out ./internal/agg
	@$(GO) tool cover -func=cover_agg.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "agg coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
	$(GO) test -coverprofile=cover_coll.out ./internal/coll
	@$(GO) tool cover -func=cover_coll.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { cov = $$3; sub(/%/, "", cov); \
		   printf "coll coverage: %s%% (gate: %s%%)\n", cov, min; \
		   if (cov + 0 < min) { print "coverage below gate"; exit 1 } }'
