package madeleine_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"testing"
)

// apiSurface renders the exported surface of package madeleine as one
// sorted line per declaration: funcs and methods with full signatures,
// types with their exported fields, consts and vars. The rendering is
// purely syntactic (no type checking), so it is stable across runs and
// cheap enough for tier 1.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs["madeleine"]
	if pkg == nil {
		t.Fatalf("package madeleine not found in .")
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				sig := strings.TrimPrefix(types.ExprString(d.Type), "func")
				if d.Recv != nil {
					recv := types.ExprString(d.Recv.List[0].Type)
					if !ast.IsExported(strings.TrimPrefix(recv, "*")) {
						continue
					}
					lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, sig))
				} else {
					lines = append(lines, "func "+d.Name.Name+sig)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if st, ok := s.Type.(*ast.StructType); ok {
							lines = append(lines, "type "+s.Name.Name+" struct")
							for _, fl := range st.Fields.List {
								ft := types.ExprString(fl.Type)
								if len(fl.Names) == 0 { // embedded
									if ast.IsExported(strings.TrimPrefix(ft, "*")) {
										lines = append(lines, fmt.Sprintf("  %s.%s (embedded)", s.Name.Name, ft))
									}
									continue
								}
								for _, n := range fl.Names {
									if n.IsExported() {
										lines = append(lines, fmt.Sprintf("  %s.%s %s", s.Name.Name, n.Name, ft))
									}
								}
							}
							continue
						}
						eq := " "
						if s.Assign != token.NoPos {
							eq = " = "
						}
						lines = append(lines, "type "+s.Name.Name+eq+types.ExprString(s.Type))
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								lines = append(lines, kw+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestAPISurfaceGolden pins the exported madeleine API to the checked-in
// api.txt, so an accidental signature change, removal, or stray export
// fails CI with a readable diff. Intentional changes regenerate the file:
//
//	MADGO_REGEN_API=1 go test -run TestAPISurfaceGolden .
func TestAPISurfaceGolden(t *testing.T) {
	got := apiSurface(t)
	if os.Getenv("MADGO_REGEN_API") != "" {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated api.txt (%d lines)", strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("api.txt unreadable (regen with MADGO_REGEN_API=1 go test -run TestAPISurfaceGolden .): %v", err)
	}
	if got == string(want) {
		return
	}
	gotL := strings.Split(got, "\n")
	wantL := strings.Split(string(want), "\n")
	gotSet := make(map[string]bool, len(gotL))
	for _, l := range gotL {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(wantL))
	for _, l := range wantL {
		wantSet[l] = true
	}
	for _, l := range wantL {
		if !gotSet[l] {
			t.Errorf("api.txt line vanished from the exported surface: %q", l)
		}
	}
	for _, l := range gotL {
		if !wantSet[l] {
			t.Errorf("exported surface gained a line missing from api.txt: %q", l)
		}
	}
	t.Error("exported API surface drifted from api.txt; if intentional, regen with MADGO_REGEN_API=1 go test -run TestAPISurfaceGolden .")
}
