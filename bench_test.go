// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each benchmark runs one registered experiment on the simulated testbed
// and reports the headline metric of that experiment as a custom benchmark
// metric (MB/s where applicable). The full numeric series are printed once
// per benchmark so `go test -bench . -benchmem | tee bench_output.txt`
// captures the reproduction data; EXPERIMENTS.md contains the reference
// copy with commentary.
//
// By default the paper-scale sweeps run (message sizes up to 8 MB, five
// packet sizes); -short trims them.
package madeleine_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"madgo/internal/bench"
)

var printOnce sync.Map

// runExperiment executes the experiment b.N times (results are
// deterministic, so iterations measure harness cost only), prints its table
// once, and reports its headline metric.
func runExperiment(b *testing.B, id string, metric func(*bench.Result) (float64, string)) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	opts := bench.Options{Quick: testing.Short()}
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		r = e.Run(opts)
	}
	if _, printed := printOnce.LoadOrStore(id, true); !printed {
		fmt.Println()
		bench.WriteTable(os.Stdout, r)
	}
	if metric != nil {
		v, unit := metric(r)
		b.ReportMetric(v, unit)
	}
}

// maxAt returns the highest bandwidth of a series at the largest measured
// message size.
func lastY(r *bench.Result, series string) float64 {
	for _, s := range r.Series {
		if s.Name == series && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Y
		}
	}
	return 0
}

// BenchmarkT1RawNetworks regenerates the §3.2.2 in-text table: raw one-way
// bandwidth of each network and the SCI/Myrinet crossover near 16 KB.
func BenchmarkT1RawNetworks(b *testing.B) {
	runExperiment(b, "t1", func(r *bench.Result) (float64, string) {
		return lastY(r, "myrinet"), "myrinet-MB/s"
	})
}

// BenchmarkFig6SCIToMyrinet regenerates Figure 6: SCI→Myrinet forwarding
// bandwidth vs message size for packet sizes 8–128 KB.
func BenchmarkFig6SCIToMyrinet(b *testing.B) {
	runExperiment(b, "fig6", func(r *bench.Result) (float64, string) {
		return r.MaxY(""), "peak-MB/s"
	})
}

// BenchmarkFig7MyrinetToSCI regenerates Figure 7: the PCI-contended
// direction.
func BenchmarkFig7MyrinetToSCI(b *testing.B) {
	runExperiment(b, "fig7", func(r *bench.Result) (float64, string) {
		return r.MaxY(""), "peak-MB/s"
	})
}

// BenchmarkT2PipelinePeriod regenerates the §3.3.1 pipeline-period
// accounting at 8 KB packets.
func BenchmarkT2PipelinePeriod(b *testing.B) {
	runExperiment(b, "t2", nil)
}

// BenchmarkT3PCIStretch regenerates the §3.4.1 rdtsc instrumentation of the
// SCI send step under concurrent Myrinet DMA.
func BenchmarkT3PCIStretch(b *testing.B) {
	runExperiment(b, "t3", nil)
}

// BenchmarkFig5PipelineTimeline regenerates the Figure 5 timeline
// (SCI→Myrinet pipeline overlap).
func BenchmarkFig5PipelineTimeline(b *testing.B) {
	runExperiment(b, "fig5", nil)
}

// BenchmarkFig8PCIConflictTimeline regenerates the Figure 8 timeline
// (Myrinet→SCI with elongated send steps).
func BenchmarkFig8PCIConflictTimeline(b *testing.B) {
	runExperiment(b, "fig8", nil)
}

// BenchmarkHeadline regenerates the abstract's headline: peak inter-cluster
// bandwidth against the 66 MB/s PCI ceiling.
func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", nil)
}

// BenchmarkA1AppLevelForwarding is the §2.2.1 ablation: the integrated
// forwarding against Nexus-style store-and-forward and PACX-style TCP
// relaying.
func BenchmarkA1AppLevelForwarding(b *testing.B) {
	runExperiment(b, "a1", func(r *bench.Result) (float64, string) {
		return lastY(r, "madeleine-gtm"), "gtm-MB/s"
	})
}

// BenchmarkA2MTUSweep is the packet-size sweep around the §3.2.2 analysis.
func BenchmarkA2MTUSweep(b *testing.B) {
	runExperiment(b, "a2", nil)
}

// BenchmarkA3PipelineAblation toggles double buffering and the zero-copy
// election.
func BenchmarkA3PipelineAblation(b *testing.B) {
	runExperiment(b, "a3", nil)
}

// BenchmarkA4InflowRegulation sweeps the gateway ingress throttle proposed
// in the paper's conclusion.
func BenchmarkA4InflowRegulation(b *testing.B) {
	runExperiment(b, "a4", nil)
}

// BenchmarkA5StaticBufferZeroCopy exercises the §2.3 election on an SBP
// egress network.
func BenchmarkA5StaticBufferZeroCopy(b *testing.B) {
	runExperiment(b, "a5", nil)
}

// BenchmarkA7ScatterGather toggles the gather-DMA aggregation of the BIP
// buffer-management module (§2.1.1).
func BenchmarkA7ScatterGather(b *testing.B) {
	runExperiment(b, "a7", nil)
}

// BenchmarkA6SCIDMAWorkaround implements and measures the paper's §3.4.1
// proposal: SCI sends via the board's DMA engine to escape the PCI
// priority conflict.
func BenchmarkA6SCIDMAWorkaround(b *testing.B) {
	runExperiment(b, "a6", func(r *bench.Result) (float64, string) {
		return lastY(r, "sci-dma (workaround)"), "dma-MB/s"
	})
}
