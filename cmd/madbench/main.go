// Command madbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	madbench -list
//	madbench fig6 fig7            # run specific experiments
//	madbench -all                 # run everything
//	madbench -quick -csv fig6     # trimmed sweep, CSV output
//
// Experiment ids follow DESIGN.md: t1, fig6, fig7, t2, t3, fig5, fig8,
// headline, a1..a5, o1 (observed stream), p1 (pipeline depth sweep), r1
// (reliable goodput under loss), s1 (multi-rail striping K sweep).
package main

import (
	"flag"
	"fmt"
	"os"

	"madgo/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "trimmed sweeps (fast)")
		csv   = flag.Bool("csv", false, "CSV output instead of tables")
		plot  = flag.Bool("plot", false, "ASCII charts instead of tables")
		jsonF = flag.Bool("json", false, "JSON output instead of tables")
		rails = flag.Int("rails", 0, "maximum stripe width the striping experiments sweep (0 = default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: madbench [-list] [-all] [-quick] [-csv] [-plot] [-json] [-rails k] [experiment ids...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-9s %s\n          %s\n", e.ID, e.Title, e.Description)
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = bench.IDs()
	}
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.Options{Quick: *quick, Rails: *rails}
	for _, id := range ids {
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "madbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		r := e.Run(opts)
		switch {
		case *jsonF:
			if err := bench.WriteJSON(os.Stdout, r); err != nil {
				fmt.Fprintln(os.Stderr, "madbench:", err)
				os.Exit(1)
			}
			continue
		case *csv:
			bench.WriteCSV(os.Stdout, r)
		case *plot:
			bench.WritePlot(os.Stdout, r, 72, 18)
		default:
			bench.WriteTable(os.Stdout, r)
		}
		fmt.Println()
	}
}
