// Command madload is a synthetic traffic generator for the forwarding
// layer's contention behaviour: it builds a cluster-of-clusters topology,
// drives one of three many-senders patterns through the gateway(s), and
// reports per-sender goodput, the Jain fairness index across senders, and
// the credit-based flow-control counters. It is the command-line companion
// of the c1 benchmark experiment: the incast pattern with -flow off shows
// the FIFO relay's message-size bias, with -flow on the credit + DRR
// scheduler's equalized byte service.
//
// Usage:
//
//	madload                                  # 16-sender incast, FIFO baseline
//	madload -flow                            # same incast under flow control
//	madload -senders 64 -elephants 8 -flow   # the c1 contention wall shape
//	madload -pattern alltoall -senders 8     # bidirectional cross-cluster load
//	madload -pattern hotspot -flow -json     # machine-readable report
//	madload -small 64 -bytes 512 -agg        # mice rate: msgs/s + p50/p99 latency
//
// The -small N mode measures the eager small-message path: every sender
// streams N back-to-back messages of -bytes size, each delivery is timed
// into the madgo_message_latency_seconds histogram, and the report adds the
// aggregate message rate with the p50/p99 delivery latency read back from
// the histogram. Combine with -eager (compact framing) and -agg
// (cross-message aggregation) to compare against the seed framing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	madeleine "madgo"
	"madgo/internal/flow"
)

func main() {
	var (
		pattern  = flag.String("pattern", "incast", "traffic pattern: incast, alltoall, hotspot")
		senders  = flag.Int("senders", 16, "number of sending nodes")
		count    = flag.Int("count", 8, "messages per sender")
		msgBytes = flag.Int("bytes", 16*1024, "message size for ordinary senders (mice)")
		eleph    = flag.Int("elephants", 0, "how many senders send elephant-sized messages instead")
		elephB   = flag.Int("elephant-bytes", 256*1024, "message size for elephant senders")
		flowOn   = flag.Bool("flow", false, "arm credit-based gateway flow control")
		window   = flag.Int("window", 0, "credit window per (gateway, sender) pair (0 = default; implies -flow)")
		mtu      = flag.Int("mtu", 32*1024, "forwarding packet size")
		depth    = flag.Int("depth", 2, "gateway pipeline depth")
		small    = flag.Int("small", 0, "mice-rate mode: stream N messages of -bytes per sender, report msgs/s and p50/p99 latency")
		eager    = flag.Bool("eager", false, "compact eager framing (header/terminator piggybacking) for forwarded messages")
		aggOn    = flag.Bool("agg", false, "cross-message aggregation of sub-MTU messages (implies -eager)")
		jsonOut  = flag.Bool("json", false, "emit one JSON document instead of text")
	)
	flag.Parse()
	if *small > 0 {
		*count = *small
	}
	if *senders < 2 {
		fatal(fmt.Errorf("need at least 2 senders, got %d", *senders))
	}
	if *eleph > *senders {
		fatal(fmt.Errorf("-elephants %d exceeds -senders %d", *eleph, *senders))
	}

	opts := []madeleine.Option{madeleine.WithMTU(*mtu), madeleine.WithPipelineDepth(*depth),
		madeleine.WithMetrics(madeleine.NewMetrics())}
	if *eager || *aggOn {
		opts = append(opts, madeleine.WithEagerSmallMessages())
	}
	if *aggOn {
		opts = append(opts, madeleine.WithAggregation())
	}
	if *flowOn || *window > 0 {
		opts = append(opts, madeleine.WithFlowControl())
		if *window > 0 {
			opts = append(opts, madeleine.WithCreditWindow(*window))
		}
	}

	var ld load
	switch *pattern {
	case "incast":
		ld = incast(*senders, *count, *msgBytes, *eleph, *elephB)
	case "alltoall":
		ld = alltoall(*senders, *count, *msgBytes)
	case "hotspot":
		ld = hotspot(*senders, *count, *msgBytes, *eleph, *elephB)
	default:
		fatal(fmt.Errorf("unknown -pattern %q (want incast, alltoall, hotspot)", *pattern))
	}

	sys, err := madeleine.NewSystem(ld.topo, opts...)
	if err != nil {
		fatal(err)
	}
	rep := ld.run(sys)
	rep.Pattern = *pattern
	rep.FlowControl = *flowOn || *window > 0
	if *small > 0 {
		rep.Mice = miceStats(sys, ld, rep)
	}
	if *aggOn {
		st := sys.AggStats()
		rep.Agg = &st
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	rep.write(os.Stdout)
}

// senderReport is one sender's share of the run.
type senderReport struct {
	Name  string  `json:"name"`
	Bytes int64   `json:"bytes"`
	Msgs  int     `json:"messages"`
	MBps  float64 `json:"goodput_mbps"`
}

// miceReport is the -small mode summary: the aggregate message rate and the
// delivery-latency quantiles read back from the per-sink
// madgo_message_latency_seconds histograms (the worst sink is reported, so
// multi-sink patterns do not hide a slow one).
type miceReport struct {
	Msgs       int     `json:"messages"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	P50Seconds float64 `json:"latency_p50_seconds"`
	P99Seconds float64 `json:"latency_p99_seconds"`
}

// report is the run summary madload prints.
type report struct {
	Pattern     string                       `json:"pattern"`
	FlowControl bool                         `json:"flow_control"`
	Senders     []senderReport               `json:"senders"`
	Jain        float64                      `json:"jain"`
	AggMBps     float64                      `json:"aggregate_mbps"`
	MakespanNS  int64                        `json:"makespan_ns"`
	Flow        madeleine.FlowStats          `json:"flow"`
	Accounts    []madeleine.FlowAccountStats `json:"flow_accounts,omitempty"`
	Mice        *miceReport                  `json:"mice,omitempty"`
	Agg         *madeleine.AggStats          `json:"agg,omitempty"`
}

// miceStats reads the message rate and latency quantiles of a -small run
// out of the metrics registry the sinks observed into.
func miceStats(sys *madeleine.System, ld load, rep *report) *miceReport {
	mr := &miceReport{}
	for _, s := range rep.Senders {
		mr.Msgs += s.Msgs
	}
	if rep.MakespanNS > 0 {
		mr.MsgsPerSec = float64(mr.Msgs) / madeleine.Duration(rep.MakespanNS).Seconds()
	}
	m := sys.Metrics()
	for sink := range ld.sinks {
		labels := madeleine.MetricLabels{"node": sink}
		if p50, ok := m.Quantile("madgo_message_latency_seconds", labels, 0.5); ok && p50 > mr.P50Seconds {
			mr.P50Seconds = p50
		}
		if p99, ok := m.Quantile("madgo_message_latency_seconds", labels, 0.99); ok && p99 > mr.P99Seconds {
			mr.P99Seconds = p99
		}
	}
	return mr
}

func (r *report) write(w *os.File) {
	fmt.Fprintf(w, "madload: %s, %d senders, flow control %v\n",
		r.Pattern, len(r.Senders), r.FlowControl)
	fmt.Fprintf(w, "%-8s %12s %6s %10s\n", "sender", "bytes", "msgs", "MB/s")
	for _, s := range r.Senders {
		fmt.Fprintf(w, "%-8s %12d %6d %10.2f\n", s.Name, s.Bytes, s.Msgs, s.MBps)
	}
	fmt.Fprintf(w, "Jain fairness %.3f, aggregate %.1f MB/s over %v\n",
		r.Jain, r.AggMBps, madeleine.Duration(r.MakespanNS))
	fmt.Fprintf(w, "flow: %d accounts, %d credits granted, %d spent, %d stalls (%v stalled), %d sched rounds, %d backpressure\n",
		r.Flow.Accounts, r.Flow.CreditsGranted, r.Flow.CreditsSpent,
		r.Flow.Stalls, r.Flow.StallTime, r.Flow.SchedRounds, r.Flow.Backpressure)
	if r.Mice != nil {
		fmt.Fprintf(w, "mice: %d msgs, %.0f msgs/s, latency p50 %.1fµs p99 %.1fµs\n",
			r.Mice.Msgs, r.Mice.MsgsPerSec, r.Mice.P50Seconds*1e6, r.Mice.P99Seconds*1e6)
	}
	if r.Agg != nil {
		fmt.Fprintf(w, "agg: %d sub-messages in %d frames (%d bytes), flushes size/idle/ordering %d/%d/%d, %d bypassed\n",
			r.Agg.SubMessages, r.Agg.Frames, r.Agg.FrameBytes,
			r.Agg.SizeFlushes, r.Agg.IdleFlushes, r.Agg.OrderingFlushes, r.Agg.BypassMessages)
	}
}

// load couples a generated topology with the procs that drive it.
type load struct {
	topo string
	// sends maps sender name -> (destination, size) per message.
	sends map[string][]sendSpec
	// sinks maps receiver name -> number of messages to drain.
	sinks map[string]int
}

type sendSpec struct {
	to   string
	size int
}

func sname(i int) string { return fmt.Sprintf("s%d", i) }

// size of sender i under the elephant split.
func sizeOf(i, eleph, mouse, elephB int) int {
	if i < eleph {
		return elephB
	}
	return mouse
}

// incast funnels every sender through one gateway to a single sink.
func incast(n, count, mouse, eleph, elephB int) load {
	var b strings.Builder
	b.WriteString("network edge sci\nnetwork core myrinet\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "node %s edge\n", sname(i))
	}
	b.WriteString("node gw edge core\nnode sink core\n")
	ld := load{topo: b.String(), sends: map[string][]sendSpec{}, sinks: map[string]int{}}
	for i := 0; i < n; i++ {
		size := sizeOf(i, eleph, mouse, elephB)
		for m := 0; m < count; m++ {
			ld.sends[sname(i)] = append(ld.sends[sname(i)], sendSpec{to: "sink", size: size})
		}
		ld.sinks["sink"] += count
	}
	return ld
}

// alltoall splits the senders across the two clusters; every node sends to
// every node of the other cluster, loading the gateway in both directions.
func alltoall(n, count, size int) load {
	var b strings.Builder
	b.WriteString("network edge sci\nnetwork core myrinet\n")
	half := n / 2
	for i := 0; i < n; i++ {
		net := "edge"
		if i >= half {
			net = "core"
		}
		fmt.Fprintf(&b, "node %s %s\n", sname(i), net)
	}
	b.WriteString("node gw edge core\n")
	ld := load{topo: b.String(), sends: map[string][]sendSpec{}, sinks: map[string]int{}}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sameSide := (i < half) == (j < half)
			if sameSide {
				continue
			}
			for m := 0; m < count; m++ {
				ld.sends[sname(i)] = append(ld.sends[sname(i)], sendSpec{to: sname(j), size: size})
			}
			ld.sinks[sname(j)] += count
		}
	}
	return ld
}

// hotspot sends most of the load at one hot sink while a few flows target a
// cold node, showing whether the hot flows starve the cold ones.
func hotspot(n, count, mouse, eleph, elephB int) load {
	var b strings.Builder
	b.WriteString("network edge sci\nnetwork core myrinet\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "node %s edge\n", sname(i))
	}
	b.WriteString("node gw edge core\nnode hot core\nnode cold core\n")
	ld := load{topo: b.String(), sends: map[string][]sendSpec{}, sinks: map[string]int{}}
	for i := 0; i < n; i++ {
		size := sizeOf(i, eleph, mouse, elephB)
		dst := "hot"
		if i%4 == 3 {
			dst = "cold"
		}
		for m := 0; m < count; m++ {
			ld.sends[sname(i)] = append(ld.sends[sname(i)], sendSpec{to: dst, size: size})
		}
		ld.sinks[dst] += count
	}
	return ld
}

// run drives the load to completion and measures per-sender goodput from
// each sender's last delivery time, observed at the receivers via the
// unpacking's provenance rank.
func (ld load) run(sys *madeleine.System) *report {
	// Map iteration order would vary the spawn order and with it the whole
	// simulated schedule; sorted keys keep identical invocations
	// byte-identical.
	// sentAt queues each lane's (sender, destination) send instants in send
	// order; deliveries on a lane arrive in that order, so the sink times
	// each message by popping its lane's queue. The simulation is
	// single-threaded and cooperative, so the shared map needs no lock.
	type lane struct{ from, to string }
	sentAt := map[lane][]madeleine.Time{}
	for _, name := range sortedKeys(ld.sends) {
		name, specs := name, ld.sends[name]
		sys.Spawn("load:"+name, func(p *madeleine.Proc) {
			for _, sp := range specs {
				k := lane{name, sp.to}
				sentAt[k] = append(sentAt[k], p.Now())
				px := sys.At(name).BeginPacking(p, sp.to)
				px.Pack(p, make([]byte, sp.size), madeleine.SendCheaper, madeleine.ReceiveCheaper)
				px.EndPacking(p)
			}
		})
	}
	type tally struct {
		bytes  int64
		msgs   int
		doneAt madeleine.Time
	}
	tallies := map[string]*tally{}
	for name := range ld.sends {
		tallies[name] = &tally{}
	}
	for _, sink := range sortedKeys(ld.sinks) {
		sink, msgs := sink, ld.sinks[sink]
		sys.Spawn("drain:"+sink, func(p *madeleine.Proc) {
			for i := 0; i < msgs; i++ {
				u := sys.At(sink).BeginUnpacking(p)
				from := sys.NodeName(u.From())
				// The load shape fixes each sender's message size, so the
				// receiver knows how much to unpack without a header.
				var size int
				for _, sp := range ld.sends[from] {
					if sp.to == sink {
						size = sp.size
						break
					}
				}
				u.Unpack(p, make([]byte, size), madeleine.SendCheaper, madeleine.ReceiveCheaper)
				u.EndUnpacking(p)
				k := lane{from, sink}
				t0 := sentAt[k][0]
				sentAt[k] = sentAt[k][1:]
				sys.Metrics().ObserveDuration("madgo_message_latency_seconds",
					madeleine.MetricLabels{"node": sink}, p.Now().Sub(t0))
				t := tallies[from]
				t.bytes += int64(size)
				t.msgs++
				t.doneAt = p.Now()
			}
		})
	}
	if err := sys.Run(); err != nil {
		fatal(err)
	}
	rep := &report{Flow: sys.FlowStats(), Accounts: sys.FlowAccounts()}
	var goodputs []float64
	var total int64
	for i := 0; ; i++ {
		t, ok := tallies[sname(i)]
		if !ok {
			break
		}
		secs := madeleine.Duration(t.doneAt).Seconds()
		mbps := 0.0
		if secs > 0 {
			mbps = float64(t.bytes) / secs / 1e6
		}
		rep.Senders = append(rep.Senders, senderReport{
			Name: sname(i), Bytes: t.bytes, Msgs: t.msgs, MBps: mbps,
		})
		goodputs = append(goodputs, mbps)
		total += t.bytes
		if int64(t.doneAt) > rep.MakespanNS {
			rep.MakespanNS = int64(t.doneAt)
		}
	}
	rep.Jain = flow.Jain(goodputs)
	if rep.MakespanNS > 0 {
		rep.AggMBps = float64(total) / madeleine.Duration(rep.MakespanNS).Seconds() / 1e6
	}
	return rep
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madload:", err)
	os.Exit(1)
}
