// Command madping runs a point-to-point ping over a cluster-of-clusters
// topology and reports per-size one-way latency and bandwidth, as the
// paper's §3.1 test programs do.
//
// Usage:
//
//	madping                                   # paper testbed, a1 -> b1
//	madping -from a0 -to b0 -sizes 4096,65536
//	madping -config cluster.topo -from n1 -to n9 -mtu 16384
//	madping -depth 4                          # deeper gateway pipeline ring
//	madping -netmtu sci0=65536,myri0=32768    # per-path MTU negotiation
//	madping -loss 0.05 -seed 42               # goodput under 5% packet loss
//	madping -rails 2                          # stripe across two disjoint routes
//
// The topology file uses the format of cmd/madtopo; when -config is absent
// the paper's SCI+Myrinet testbed is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	madeleine "madgo"
)

func main() {
	var (
		config = flag.String("config", "", "topology file (default: the paper testbed)")
		from   = flag.String("from", "a1", "source node")
		to     = flag.String("to", "b1", "destination node")
		sizes  = flag.String("sizes", "4096,16384,65536,262144,1048576,4194304", "comma-separated message sizes in bytes")
		mtu    = flag.Int("mtu", 32*1024, "forwarding packet size")
		depth  = flag.Int("depth", 2, "gateway pipeline depth (1 disables pipelining)")
		rails  = flag.Int("rails", 1, "stripe large messages across up to this many link-disjoint routes")
		netmtu = flag.String("netmtu", "", "per-network MTU caps as name=bytes[,name=bytes...]; switches on path-MTU negotiation")

		seed     = flag.Int64("seed", 1, "fault-injection seed")
		loss     = flag.Float64("loss", 0, "packet drop probability (switches on reliable delivery)")
		corrupt  = flag.Float64("corrupt", 0, "packet corruption probability (switches on reliable delivery)")
		reliable = flag.Bool("reliable", false, "use reliable delivery even without faults")
	)
	flag.Parse()

	opts := []madeleine.Option{madeleine.WithPipelineDepth(*depth)}
	if *rails > 1 {
		opts = append(opts, madeleine.WithStriping(*rails))
	}
	if *netmtu != "" {
		for _, kv := range strings.Split(*netmtu, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fatal(fmt.Errorf("bad -netmtu entry %q (want name=bytes)", kv))
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad -netmtu size %q", val))
			}
			opts = append(opts, madeleine.WithNetworkMTU(name, n))
		}
	}
	if *loss > 0 || *corrupt > 0 {
		plan := madeleine.NewFaultPlan(*seed)
		if *loss > 0 {
			plan.Drop("*", *loss)
		}
		if *corrupt > 0 {
			plan.Corrupt("*", *corrupt)
		}
		opts = append(opts, madeleine.WithFaults(plan))
	} else if *reliable {
		opts = append(opts, madeleine.WithReliableDelivery())
	}

	var sys *madeleine.System
	var err error
	if *config == "" {
		sys, err = madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
			append(opts, madeleine.WithMTU(*mtu),
				madeleine.WithRouteNetworks("sci0", "myri0"))...)
	} else {
		text, rerr := os.ReadFile(*config)
		if rerr != nil {
			fatal(rerr)
		}
		sys, err = madeleine.NewSystem(string(text), append(opts, madeleine.WithMTU(*mtu))...)
	}
	if err != nil {
		fatal(err)
	}

	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		ns = append(ns, n)
	}

	starts := make([]madeleine.Time, len(ns))
	ends := make([]madeleine.Time, len(ns))
	sys.Spawn("ping", func(p *madeleine.Proc) {
		for i, n := range ns {
			starts[i] = p.Now()
			px := sys.At(*from).BeginPacking(p, *to)
			px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	sys.Spawn("pong", func(p *madeleine.Proc) {
		for i, n := range ns {
			u := sys.At(*to).BeginUnpacking(p)
			u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
			ends[i] = p.Now()
		}
	})
	if err := sys.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("%s -> %s (mtu %d)\n", *from, *to, *mtu)
	fmt.Printf("%10s  %14s  %10s\n", "bytes", "one-way", "MB/s")
	for i, n := range ns {
		d := ends[i] - starts[i]
		mbps := float64(n) / (float64(d) / 1e9) / 1e6
		fmt.Printf("%10d  %14v  %10.1f\n", n, madeleine.Duration(d), mbps)
	}
	for _, g := range sys.Gateways() {
		gs, _ := sys.GatewayStats(g)
		fmt.Printf("gateway %s relayed %d messages / %d packets / %d bytes\n", g, gs.Messages, gs.Packets, gs.Bytes)
	}
	if st := sys.StripeStats(); st.Messages > 0 {
		fmt.Printf("striping: %d messages across %d rails, %d rebalances, %d rail failovers\n",
			st.Messages, len(st.RailBytes), st.Rebalances, st.RailFailovers)
	}
	if ds := sys.DeliveryStats(); ds != (madeleine.DeliveryStats{}) {
		fmt.Printf("recovery: %d retransmits, %d message resends, %d failovers, %d checksum drops, %d duplicates\n",
			ds.Retransmits, ds.MessageResends, ds.Failovers, ds.ChecksumDrops, ds.Duplicates)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madping:", err)
	os.Exit(1)
}
