// Command madping runs a point-to-point ping over a cluster-of-clusters
// topology and reports per-size one-way latency and bandwidth, as the
// paper's §3.1 test programs do.
//
// Usage:
//
//	madping                                   # paper testbed, a1 -> b1
//	madping -from a0 -to b0 -sizes 4096,65536
//	madping -config cluster.topo -from n1 -to n9 -mtu 16384
//	madping -depth 4                          # deeper gateway pipeline ring
//	madping -netmtu sci0=65536,myri0=32768    # per-path MTU negotiation
//	madping -loss 0.05 -seed 42               # goodput under 5% packet loss
//	madping -rails 2                          # stripe across two disjoint routes
//	madping -health                           # arm the link-health detector
//	madping -rails 2 -flap sci0@30ms+120ms    # kill one rail mid-run, watch it heal
//
// -flap takes network@start+duration entries (comma-separated): the named
// network drops every packet for the window, the health detector declares
// its links dead, publishes a new routing epoch around them, and re-admits
// them after probation once the window closes. It implies -health.
//
// The topology file uses the format of cmd/madtopo; when -config is absent
// the paper's SCI+Myrinet testbed is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	madeleine "madgo"
)

func main() {
	var (
		config = flag.String("config", "", "topology file (default: the paper testbed)")
		from   = flag.String("from", "a1", "source node")
		to     = flag.String("to", "b1", "destination node")
		sizes  = flag.String("sizes", "4096,16384,65536,262144,1048576,4194304", "comma-separated message sizes in bytes")
		mtu    = flag.Int("mtu", 32*1024, "forwarding packet size")
		depth  = flag.Int("depth", 2, "gateway pipeline depth (1 disables pipelining)")
		rails  = flag.Int("rails", 1, "stripe large messages across up to this many link-disjoint routes")
		netmtu = flag.String("netmtu", "", "per-network MTU caps as name=bytes[,name=bytes...]; switches on path-MTU negotiation")

		seed     = flag.Int64("seed", 1, "fault-injection seed")
		loss     = flag.Float64("loss", 0, "packet drop probability (switches on reliable delivery)")
		corrupt  = flag.Float64("corrupt", 0, "packet corruption probability (switches on reliable delivery)")
		reliable = flag.Bool("reliable", false, "use reliable delivery even without faults")
		healthOn = flag.Bool("health", false, "arm the link-health failure detector (implies -reliable)")
		flap     = flag.String("flap", "", "flap networks: network@start+duration[,...] (implies -health)")
	)
	flag.Parse()

	opts := []madeleine.Option{madeleine.WithPipelineDepth(*depth)}
	var flaps []flapSpec
	if *flap != "" {
		var err error
		if flaps, err = parseFlaps(*flap); err != nil {
			fatal(err)
		}
		*healthOn = true
	}
	if *healthOn {
		opts = append(opts, madeleine.WithHealthMonitor())
	}
	if *rails > 1 {
		opts = append(opts, madeleine.WithStriping(*rails))
	}
	if *netmtu != "" {
		for _, kv := range strings.Split(*netmtu, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fatal(fmt.Errorf("bad -netmtu entry %q (want name=bytes)", kv))
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad -netmtu size %q", val))
			}
			opts = append(opts, madeleine.WithNetworkMTU(name, n))
		}
	}
	if *loss > 0 || *corrupt > 0 || len(flaps) > 0 {
		plan := madeleine.NewFaultPlan(*seed)
		if *loss > 0 {
			plan.Drop("*", *loss)
		}
		if *corrupt > 0 {
			plan.Corrupt("*", *corrupt)
		}
		for _, f := range flaps {
			plan.Flap(f.net, f.at, f.dur)
		}
		opts = append(opts, madeleine.WithFaults(plan))
	} else if *reliable {
		opts = append(opts, madeleine.WithReliableDelivery())
	}

	var sys *madeleine.System
	var err error
	if *config == "" {
		sys, err = madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
			append(opts, madeleine.WithMTU(*mtu),
				madeleine.WithRouteNetworks("sci0", "myri0"))...)
	} else {
		text, rerr := os.ReadFile(*config)
		if rerr != nil {
			fatal(rerr)
		}
		sys, err = madeleine.NewSystem(string(text), append(opts, madeleine.WithMTU(*mtu))...)
	}
	if err != nil {
		fatal(err)
	}

	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		ns = append(ns, n)
	}

	starts := make([]madeleine.Time, len(ns))
	ends := make([]madeleine.Time, len(ns))
	sys.Spawn("ping", func(p *madeleine.Proc) {
		for i, n := range ns {
			starts[i] = p.Now()
			px := sys.At(*from).BeginPacking(p, *to)
			px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	sys.Spawn("pong", func(p *madeleine.Proc) {
		for i, n := range ns {
			u := sys.At(*to).BeginUnpacking(p)
			u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
			ends[i] = p.Now()
		}
	})
	if err := sys.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("%s -> %s (mtu %d)\n", *from, *to, *mtu)
	fmt.Printf("%10s  %14s  %10s\n", "bytes", "one-way", "MB/s")
	for i, n := range ns {
		d := ends[i] - starts[i]
		mbps := float64(n) / (float64(d) / 1e9) / 1e6
		fmt.Printf("%10d  %14v  %10.1f\n", n, madeleine.Duration(d), mbps)
	}
	for _, g := range sys.Gateways() {
		gs, _ := sys.GatewayStats(g)
		fmt.Printf("gateway %s relayed %d messages / %d packets / %d bytes\n", g, gs.Messages, gs.Packets, gs.Bytes)
	}
	if st := sys.StripeStats(); st.Messages > 0 {
		fmt.Printf("striping: %d messages across %d rails, %d rebalances, %d rail failovers\n",
			st.Messages, len(st.RailBytes), st.Rebalances, st.RailFailovers)
	}
	if ds := sys.DeliveryStats(); ds != (madeleine.DeliveryStats{}) {
		fmt.Printf("recovery: %d retransmits, %d message resends, %d failovers, %d checksum drops, %d duplicates\n",
			ds.Retransmits, ds.MessageResends, ds.Failovers, ds.ChecksumDrops, ds.Duplicates)
	}
	if h := sys.Health(); h != nil {
		snap := h.Snapshot()
		sort.Slice(snap, func(i, j int) bool {
			a, b := snap[i].Link, snap[j].Link
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Network < b.Network
		})
		down := 0
		for _, lh := range snap {
			if lh.State != madeleine.LinkUp {
				down++
			}
		}
		fmt.Printf("health: epoch %d, %d links (%d not up), %d probes, %d readmissions\n",
			h.Epoch(), len(snap), down, h.Probes(), h.Readmissions())
		for _, lh := range snap {
			if lh.State != madeleine.LinkUp {
				fmt.Printf("  %s->%s via %s: %s (score %.2f)\n",
					lh.Link.From, lh.Link.To, lh.Link.Network, lh.State, lh.Score)
			}
		}
	}
}

// flapSpec is one parsed -flap entry.
type flapSpec struct {
	net string
	at  madeleine.Time
	dur madeleine.Duration
}

func parseFlaps(s string) ([]flapSpec, error) {
	var out []flapSpec
	for _, entry := range strings.Split(s, ",") {
		net, window, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok || net == "" {
			return nil, fmt.Errorf("bad -flap entry %q (want network@start+duration)", entry)
		}
		start, length, ok := strings.Cut(window, "+")
		if !ok {
			return nil, fmt.Errorf("bad -flap window %q (want start+duration, e.g. 30ms+120ms)", window)
		}
		at, err := time.ParseDuration(start)
		if err != nil {
			return nil, fmt.Errorf("bad -flap start %q: %v", start, err)
		}
		dur, err := time.ParseDuration(length)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("bad -flap duration %q", length)
		}
		out = append(out, flapSpec{
			net: net,
			at:  madeleine.Time(at.Nanoseconds()),
			dur: madeleine.Duration(dur.Nanoseconds()),
		})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madping:", err)
	os.Exit(1)
}
