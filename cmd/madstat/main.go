// Command madstat runs one transfer over a cluster-of-clusters topology with
// the full observability layer armed and dumps what it recorded: a
// Prometheus-style metrics snapshot, the per-lane pipeline-bubble report,
// per-message provenance traces, and optionally a Chrome trace_event JSON
// file loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	madstat                          # paper testbed, a1 -> b1, metrics snapshot
//	madstat -lanes -trace all        # add the lane report and all hop traces
//	madstat -loss 0.1 -seed 7        # reliable delivery under 10% packet loss
//	madstat -chrome run.json         # write a Perfetto-loadable trace file
//	madstat -config cluster.topo -from x -to y -bytes 1048576
//	madstat -rails 2                 # multi-rail striping with per-rail breakdown
//	madstat -health                  # arm the failure detector, print the health panel
//	madstat -diagnose -depth 1       # name the run's pathologies (here: swap-bound)
//	madstat -diagnose -health -flap sci0 -count 100   # the r2 flap scenario
//	madstat -json                    # one JSON document: metrics+health+diagnosis
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	madeleine "madgo"
)

func main() {
	var (
		config = flag.String("config", "", "topology file (default: the paper testbed)")
		from   = flag.String("from", "a1", "source node")
		to     = flag.String("to", "b1", "destination node")
		bytes  = flag.Int("bytes", 256*1024, "message size")
		count  = flag.Int("count", 1, "number of back-to-back messages to stream")
		mtu    = flag.Int("mtu", 32*1024, "forwarding packet size")
		depth  = flag.Int("depth", 2, "gateway pipeline depth (1 disables pipelining)")
		rails  = flag.Int("rails", 1, "stripe large messages across up to this many link-disjoint routes")

		seed    = flag.Int64("seed", 1, "fault-injection seed")
		loss    = flag.Float64("loss", 0, "packet drop probability (switches on reliable delivery)")
		corrupt = flag.Float64("corrupt", 0, "packet corruption probability (switches on reliable delivery)")
		crash   = flag.Duration("crash", 0, "crash the gateway 'gw' at this virtual time (0 = never)")
		flapNet = flag.String("flap", "", "flap this network mid-run (switches on reliable delivery)")
		flapAt  = flag.Duration("flapat", 0, "virtual time the -flap outage starts (default 50ms)")
		flapFor = flag.Duration("flapfor", 0, "virtual duration of the -flap outage (default 100ms)")

		healthOn = flag.Bool("health", false, "arm the link-health failure detector and print its panel")
		flowOn   = flag.Bool("flow", false, "arm credit-based gateway flow control and print its panel")
		window   = flag.Int("window", 0, "credit window per (gateway, sender) pair (implies -flow)")

		lanes    = flag.Bool("lanes", false, "print the pipeline-bubble lane report")
		msgs     = flag.String("trace", "", `print message provenance: "all" or a message ID`)
		chrome   = flag.String("chrome", "", "write Chrome trace_event JSON to this file")
		noProm   = flag.Bool("noprom", false, "suppress the Prometheus snapshot")
		diagnose = flag.Bool("diagnose", false, "run the critical-path analyzer and print its findings")
		jsonOut  = flag.Bool("json", false, "emit one JSON document (metrics, stripe, health, diagnosis, flight dumps) instead of text")
	)
	flag.Parse()

	tr := madeleine.NewTracer()
	m := madeleine.NewMetrics()
	opts := []madeleine.Option{
		madeleine.WithMTU(*mtu), madeleine.WithPipelineDepth(*depth),
		madeleine.WithTracer(tr), madeleine.WithMetrics(m),
	}
	if *rails > 1 {
		opts = append(opts, madeleine.WithStriping(*rails))
	}
	if *healthOn {
		opts = append(opts, madeleine.WithHealthMonitor())
	}
	if *flowOn || *window > 0 {
		opts = append(opts, madeleine.WithFlowControl())
		if *window > 0 {
			opts = append(opts, madeleine.WithCreditWindow(*window))
		}
	}
	if *loss > 0 || *corrupt > 0 || *crash > 0 || *flapNet != "" {
		plan := madeleine.NewFaultPlan(*seed)
		if *loss > 0 {
			plan.Drop("*", *loss)
		}
		if *corrupt > 0 {
			plan.Corrupt("*", *corrupt)
		}
		if *crash > 0 {
			plan.Crash("gw", madeleine.Time(crash.Nanoseconds()), 0)
		}
		if *flapNet != "" {
			at, dur := *flapAt, *flapFor
			if at == 0 {
				at = 50_000_000 // 50 ms
			}
			if dur == 0 {
				dur = 100_000_000 // 100 ms
			}
			plan.Flap(*flapNet, madeleine.Time(at.Nanoseconds()), madeleine.Duration(dur.Nanoseconds()))
		}
		opts = append(opts, madeleine.WithFaults(plan))
	}

	var sys *madeleine.System
	var err error
	if *config == "" {
		sys, err = madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
			append(opts, madeleine.WithRouteNetworks("sci0", "myri0"))...)
	} else {
		text, rerr := os.ReadFile(*config)
		if rerr != nil {
			fatal(rerr)
		}
		sys, err = madeleine.NewSystem(string(text), opts...)
	}
	if err != nil {
		fatal(err)
	}

	n, k := *bytes, *count
	sys.Spawn("stream", func(p *madeleine.Proc) {
		for i := 0; i < k; i++ {
			px := sys.At(*from).BeginPacking(p, *to)
			px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	sys.Spawn("drain", func(p *madeleine.Proc) {
		for i := 0; i < k; i++ {
			u := sys.At(*to).BeginUnpacking(p)
			u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
		}
	})
	if err := sys.Run(); err != nil {
		fatal(err)
	}

	if *jsonOut {
		emitJSON(sys, m)
		return
	}

	if !*noProm {
		sys.WritePrometheus(os.Stdout)
	}
	if st := sys.StripeStats(); st.Messages > 0 {
		fmt.Printf("\nstriping: %d messages, %d rebalances, %d rail failovers\n",
			st.Messages, st.Rebalances, st.RailFailovers)
		var total int64
		for _, b := range st.RailBytes {
			total += b
		}
		idx := make([]int, 0, len(st.RailBytes))
		for i := range st.RailBytes {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			b := st.RailBytes[i]
			fmt.Printf("  rail %d: %d bytes (%.1f%%)\n", i, b, 100*float64(b)/float64(total))
		}
	}
	if fs := sys.FlowStats(); fs.Accounts > 0 || fs.SchedRounds > 0 {
		fmt.Printf("\nflow control: %d credit accounts, %d granted, %d spent, %d stalls (%v stalled), %d sched rounds, %d backpressure\n",
			fs.Accounts, fs.CreditsGranted, fs.CreditsSpent, fs.Stalls, fs.StallTime,
			fs.SchedRounds, fs.Backpressure)
		if accts := sys.FlowAccounts(); len(accts) > 0 {
			fmt.Printf("%-22s %10s %10s %8s %12s\n", "account (gw <- sender)", "granted", "spent", "stalls", "stalled")
			for _, a := range accts {
				fmt.Printf("%-22s %10d %10d %8d %12v\n",
					a.Gateway+" <- "+a.Sender, a.Granted, a.Spent, a.Stalls, a.StallTime)
			}
		}
	}
	if h := sys.Health(); h != nil {
		snap := h.Snapshot()
		sort.Slice(snap, func(i, j int) bool {
			a, b := snap[i].Link, snap[j].Link
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Network < b.Network
		})
		fmt.Printf("\nlink health: epoch %d, %d probes, %d readmissions\n",
			h.Epoch(), h.Probes(), h.Readmissions())
		fmt.Printf("%-18s %-10s %-9s %6s %12s %12s\n", "link", "network", "state", "score", "rtt", "since")
		for _, lh := range snap {
			rtt := "-"
			if lh.RTT > 0 {
				rtt = lh.RTT.String()
			}
			fmt.Printf("%-18s %-10s %-9s %6.2f %12s %12v\n",
				lh.Link.From+"->"+lh.Link.To, lh.Link.Network, lh.State.String(),
				lh.Score, rtt, madeleine.Duration(lh.Since))
		}
		if ts := h.Transitions(); len(ts) > 0 {
			fmt.Println("transitions:")
			for _, tr := range ts {
				fmt.Printf("  %12v  %s->%s via %s: %s -> %s (epoch %d)\n",
					madeleine.Duration(tr.At), tr.Link.From, tr.Link.To, tr.Link.Network,
					tr.From, tr.To, tr.Epoch)
			}
		}
	}
	if *diagnose {
		fmt.Println()
		sys.Diagnose().Write(os.Stdout)
	}
	if *lanes {
		fmt.Printf("\npipeline lanes over [0, %v):\n", madeleine.Duration(sys.Now()))
		madeleine.WriteLaneReport(os.Stdout, sys.Lanes(0, sys.Now()))
	}
	if *msgs != "" {
		ids := sys.Metrics().Messages()
		if *msgs != "all" {
			id, err := strconv.ParseUint(*msgs, 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -trace %q (want \"all\" or a message ID)", *msgs))
			}
			ids = []uint64{id}
		}
		for _, id := range ids {
			hops := sys.MessageTrace(id)
			fmt.Printf("\nmessage %d (%d events):\n", id, len(hops))
			for _, h := range hops {
				fmt.Println("  " + h.String())
			}
		}
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := sys.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "madstat: wrote %s (load it at ui.perfetto.dev)\n", *chrome)
	}
}

// emitJSON prints the run's full observability state as one document:
// every metric series, the unified per-subsystem stats snapshot, the health
// panel, the critical-path diagnosis, and any automatic flight dumps.
func emitJSON(sys *madeleine.System, m *madeleine.Metrics) {
	type linkDoc struct {
		From    string  `json:"from"`
		To      string  `json:"to"`
		Network string  `json:"network"`
		State   string  `json:"state"`
		Score   float64 `json:"score"`
		RTTNS   int64   `json:"rtt_ns"`
	}
	type healthDoc struct {
		Epoch        uint64    `json:"epoch"`
		Probes       int64     `json:"probes"`
		Readmissions int64     `json:"readmissions"`
		Links        []linkDoc `json:"links"`
	}
	st := sys.Stats()
	out := struct {
		Metrics   []madeleine.MetricSample     `json:"metrics"`
		Stats     madeleine.Stats              `json:"stats"`
		Accounts  []madeleine.FlowAccountStats `json:"flow_accounts,omitempty"`
		Health    *healthDoc                   `json:"health,omitempty"`
		Diagnosis madeleine.Diagnosis          `json:"diagnosis"`
		Dumps     []madeleine.FlightDump       `json:"flight_dumps,omitempty"`
	}{
		Metrics:   m.Samples(),
		Stats:     st,
		Accounts:  sys.FlowAccounts(),
		Diagnosis: sys.Diagnose(),
		Dumps:     sys.Flight().Dumps(),
	}
	if out.Metrics == nil {
		out.Metrics = []madeleine.MetricSample{}
	}
	if out.Diagnosis.Findings == nil {
		out.Diagnosis.Findings = []madeleine.Finding{}
	}
	if h := sys.Health(); h != nil {
		hd := &healthDoc{Epoch: h.Epoch(), Probes: h.Probes(), Readmissions: h.Readmissions()}
		snap := h.Snapshot()
		sort.Slice(snap, func(i, j int) bool {
			a, b := snap[i].Link, snap[j].Link
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Network < b.Network
		})
		for _, lh := range snap {
			hd.Links = append(hd.Links, linkDoc{
				From: lh.Link.From, To: lh.Link.To, Network: lh.Link.Network,
				State: lh.State.String(), Score: lh.Score, RTTNS: int64(lh.RTT),
			})
		}
		out.Health = hd
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madstat:", err)
	os.Exit(1)
}
