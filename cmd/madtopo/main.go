// Command madtopo validates a cluster-of-clusters configuration file and
// prints its networks, nodes, gateways and the routing table the forwarding
// layer would use.
//
// Usage:
//
//	madtopo cluster.topo
//	madtopo -builtin            # the paper's testbed
//	cat cluster.topo | madtopo -
//
// Configuration format:
//
//	# comment
//	network <name> <protocol>   # protocol: sci myrinet ethernet sbp
//	node <name> <network> [<network>...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	madeleine "madgo"
)

func main() {
	builtin := flag.Bool("builtin", false, "use the paper's testbed instead of a file")
	flag.Parse()

	var tp *madeleine.Topology
	switch {
	case *builtin:
		tp = madeleine.PaperTestbed()
	case flag.NArg() == 1:
		var text []byte
		var err error
		if flag.Arg(0) == "-" {
			text, err = io.ReadAll(os.Stdin)
		} else {
			text, err = os.ReadFile(flag.Arg(0))
		}
		if err != nil {
			fatal(err)
		}
		tp, err = madeleine.ParseTopology(string(text))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: madtopo [-builtin] <file|->")
		os.Exit(2)
	}

	fmt.Println("networks:")
	for _, nw := range tp.Networks() {
		fmt.Printf("  %-8s %-9s members: %s\n", nw.Name, nw.Protocol, strings.Join(nw.Members, " "))
	}
	fmt.Println("nodes:")
	for _, n := range tp.Nodes() {
		role := ""
		if n.IsGateway() {
			role = "  [gateway]"
		}
		fmt.Printf("  %-8s on %s%s\n", n.Name, strings.Join(n.Networks, " "), role)
	}
	fmt.Println("routes:")
	for _, line := range strings.Split(strings.TrimSpace(madeleine.RouteTable(tp)), "\n") {
		fmt.Println("  " + line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madtopo:", err)
	os.Exit(1)
}
