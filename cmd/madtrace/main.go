// Command madtrace streams one message through the paper testbed's gateway
// and dumps the pipeline timeline — the textual Figures 5 and 8.
//
// Usage:
//
//	madtrace                      # SCI -> Myrinet (Figure 5)
//	madtrace -dir m2s             # Myrinet -> SCI (Figure 8)
//	madtrace -mtu 16384 -bytes 262144 -spans
package main

import (
	"flag"
	"fmt"
	"os"

	madeleine "madgo"
)

func main() {
	var (
		dir   = flag.String("dir", "s2m", `direction: "s2m" (SCI->Myrinet, Fig. 5) or "m2s" (Myrinet->SCI, Fig. 8)`)
		mtu   = flag.Int("mtu", 32*1024, "forwarding packet size")
		bytes = flag.Int("bytes", 256*1024, "message size")
		cols  = flag.Int("cols", 100, "timeline width in columns")
		spans = flag.Bool("spans", false, "also list raw spans")
	)
	flag.Parse()

	var src, dst string
	switch *dir {
	case "s2m":
		src, dst = "a1", "b1"
	case "m2s":
		src, dst = "b1", "a1"
	default:
		fmt.Fprintf(os.Stderr, "madtrace: bad -dir %q\n", *dir)
		os.Exit(2)
	}

	tr := madeleine.NewTracer()
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithMTU(*mtu), madeleine.WithTracer(tr),
		madeleine.WithRouteNetworks("sci0", "myri0"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}

	n := *bytes
	var done madeleine.Time
	sys.Spawn("stream", func(p *madeleine.Proc) {
		px := sys.At(src).BeginPacking(p, dst)
		px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("drain", func(p *madeleine.Proc) {
		u := sys.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sys.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s -> %s, %d bytes in %d-byte packets, one-way %v (%.1f MB/s)\n\n",
		src, dst, n, *mtu, madeleine.Duration(done),
		float64(n)/(float64(done)/1e9)/1e6)
	fmt.Println(tr.Timeline(0, done, *cols))
	fmt.Println("r = receive step, s = send step, x = buffer switch overhead")
	if *spans {
		fmt.Println()
		for _, s := range tr.Spans() {
			fmt.Println(s)
		}
	}
}
