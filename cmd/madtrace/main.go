// Command madtrace streams one message through the paper testbed's gateway
// and dumps the pipeline timeline — the textual Figures 5 and 8.
//
// Usage:
//
//	madtrace                      # SCI -> Myrinet (Figure 5)
//	madtrace -dir m2s             # Myrinet -> SCI (Figure 8)
//	madtrace -mtu 16384 -bytes 262144 -spans
//	madtrace -depth 4             # deeper gateway pipeline ring
//	madtrace -loss 0.05 -seed 42  # reliable delivery under 5% packet loss
//	madtrace -crash 2ms           # the gateway dies mid-transfer
//	madtrace -json                # machine-readable run summary on stdout
//	madtrace -chrome run.json     # Perfetto-loadable trace_event file
//	madtrace -budget              # per-message latency budgets + diagnosis
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	madeleine "madgo"
)

func main() {
	var (
		dir   = flag.String("dir", "s2m", `direction: "s2m" (SCI->Myrinet, Fig. 5) or "m2s" (Myrinet->SCI, Fig. 8)`)
		mtu   = flag.Int("mtu", 32*1024, "forwarding packet size")
		depth = flag.Int("depth", 2, "gateway pipeline depth (1 disables pipelining)")
		bytes = flag.Int("bytes", 256*1024, "message size")
		cols  = flag.Int("cols", 100, "timeline width in columns")
		spans = flag.Bool("spans", false, "also list raw spans")

		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON run summary instead of the timeline")
		chromeOut = flag.String("chrome", "", "write Chrome trace_event JSON (Perfetto-loadable) to this file")
		budget    = flag.Bool("budget", false, "print per-message latency budgets and the critical-path diagnosis")

		seed    = flag.Int64("seed", 1, "fault-injection seed")
		loss    = flag.Float64("loss", 0, "packet drop probability (switches on reliable delivery)")
		corrupt = flag.Float64("corrupt", 0, "packet corruption probability (switches on reliable delivery)")
		crash   = flag.Duration("crash", 0, "crash the gateway at this virtual time (0 = never)")
	)
	flag.Parse()

	var src, dst string
	switch *dir {
	case "s2m":
		src, dst = "a1", "b1"
	case "m2s":
		src, dst = "b1", "a1"
	default:
		fmt.Fprintf(os.Stderr, "madtrace: bad -dir %q\n", *dir)
		os.Exit(2)
	}

	tr := madeleine.NewTracer()
	m := madeleine.NewMetrics()
	opts := []madeleine.Option{
		madeleine.WithMTU(*mtu), madeleine.WithPipelineDepth(*depth),
		madeleine.WithTracer(tr), madeleine.WithMetrics(m),
		madeleine.WithRouteNetworks("sci0", "myri0"),
	}
	if *loss > 0 || *corrupt > 0 || *crash > 0 {
		plan := madeleine.NewFaultPlan(*seed)
		if *loss > 0 {
			plan.Drop("*", *loss)
		}
		if *corrupt > 0 {
			plan.Corrupt("*", *corrupt)
		}
		if *crash > 0 {
			plan.Crash("gw", madeleine.Time(crash.Nanoseconds()), 0)
		}
		opts = append(opts, madeleine.WithFaults(plan))
	}
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}

	n := *bytes
	var done madeleine.Time
	sys.Spawn("stream", func(p *madeleine.Proc) {
		px := sys.At(src).BeginPacking(p, dst)
		px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("drain", func(p *madeleine.Proc) {
		u := sys.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sys.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "madtrace:", err)
			os.Exit(1)
		}
		if err := sys.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "madtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "madtrace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "madtrace: wrote %s (load it at ui.perfetto.dev)\n", *chromeOut)
	}

	if *jsonOut {
		emitJSON(sys, m, src, dst, n, *mtu, done)
		return
	}

	fmt.Printf("%s -> %s, %d bytes in %d-byte packets, one-way %v (%.1f MB/s)\n\n",
		src, dst, n, *mtu, madeleine.Duration(done),
		float64(n)/(float64(done)/1e9)/1e6)
	fmt.Println(tr.Timeline(0, done, *cols))
	if ds := sys.DeliveryStats(); ds != (madeleine.DeliveryStats{}) {
		fmt.Printf("recovery: %d retransmits, %d message resends, %d failovers, %d checksum drops, %d duplicates\n",
			ds.Retransmits, ds.MessageResends, ds.Failovers, ds.ChecksumDrops, ds.Duplicates)
	}
	if *budget {
		fmt.Println("\nlatency budgets (per message, with aggregate):")
		madeleine.WriteBudgetReport(os.Stdout, sys.Budgets())
		fmt.Println()
		sys.Diagnose().Write(os.Stdout)
	}
	if *spans {
		fmt.Println()
		for _, s := range tr.Spans() {
			fmt.Println(s)
		}
	}
}

// emitJSON prints the run as one JSON document: transfer summary, recovery
// counters and the provenance of every traced message.
func emitJSON(sys *madeleine.System, m *madeleine.Metrics, src, dst string, n, mtu int, done madeleine.Time) {
	type hop struct {
		At     int64  `json:"at_ns"`
		Node   string `json:"node"`
		Op     string `json:"op"`
		Detail string `json:"detail"`
		Bytes  int    `json:"bytes"`
	}
	type msg struct {
		ID   uint64 `json:"id"`
		Hops []hop  `json:"hops"`
	}
	out := struct {
		Src       string                  `json:"src"`
		Dst       string                  `json:"dst"`
		Bytes     int                     `json:"bytes"`
		MTU       int                     `json:"mtu"`
		OneWayNS  int64                   `json:"one_way_ns"`
		MBps      float64                 `json:"mb_per_s"`
		Delivery  madeleine.DeliveryStats `json:"delivery"`
		Messages  []msg                   `json:"messages"`
		LaneCount int                     `json:"lanes"`
	}{
		Src: src, Dst: dst, Bytes: n, MTU: mtu,
		OneWayNS: int64(done),
		MBps:     float64(n) / (float64(done) / 1e9) / 1e6,
		Delivery: sys.DeliveryStats(),
		Messages: []msg{},
	}
	for _, id := range m.Messages() {
		mm := msg{ID: id}
		for _, h := range sys.MessageTrace(id) {
			mm.Hops = append(mm.Hops, hop{
				At: int64(h.At), Node: h.Node, Op: h.Op, Detail: h.Detail, Bytes: h.Bytes,
			})
		}
		out.Messages = append(out.Messages, mm)
	}
	out.LaneCount = len(sys.Lanes(0, done))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}
}
