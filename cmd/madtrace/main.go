// Command madtrace streams one message through the paper testbed's gateway
// and dumps the pipeline timeline — the textual Figures 5 and 8.
//
// Usage:
//
//	madtrace                      # SCI -> Myrinet (Figure 5)
//	madtrace -dir m2s             # Myrinet -> SCI (Figure 8)
//	madtrace -mtu 16384 -bytes 262144 -spans
//	madtrace -loss 0.05 -seed 42  # reliable delivery under 5% packet loss
//	madtrace -crash 2ms           # the gateway dies mid-transfer
package main

import (
	"flag"
	"fmt"
	"os"

	madeleine "madgo"
)

func main() {
	var (
		dir   = flag.String("dir", "s2m", `direction: "s2m" (SCI->Myrinet, Fig. 5) or "m2s" (Myrinet->SCI, Fig. 8)`)
		mtu   = flag.Int("mtu", 32*1024, "forwarding packet size")
		bytes = flag.Int("bytes", 256*1024, "message size")
		cols  = flag.Int("cols", 100, "timeline width in columns")
		spans = flag.Bool("spans", false, "also list raw spans")

		seed    = flag.Int64("seed", 1, "fault-injection seed")
		loss    = flag.Float64("loss", 0, "packet drop probability (switches on reliable delivery)")
		corrupt = flag.Float64("corrupt", 0, "packet corruption probability (switches on reliable delivery)")
		crash   = flag.Duration("crash", 0, "crash the gateway at this virtual time (0 = never)")
	)
	flag.Parse()

	var src, dst string
	switch *dir {
	case "s2m":
		src, dst = "a1", "b1"
	case "m2s":
		src, dst = "b1", "a1"
	default:
		fmt.Fprintf(os.Stderr, "madtrace: bad -dir %q\n", *dir)
		os.Exit(2)
	}

	tr := madeleine.NewTracer()
	opts := []madeleine.Option{
		madeleine.WithMTU(*mtu), madeleine.WithTracer(tr),
		madeleine.WithRouteNetworks("sci0", "myri0"),
	}
	if *loss > 0 || *corrupt > 0 || *crash > 0 {
		plan := madeleine.NewFaultPlan(*seed)
		if *loss > 0 {
			plan.Drop("*", *loss)
		}
		if *corrupt > 0 {
			plan.Corrupt("*", *corrupt)
		}
		if *crash > 0 {
			plan.Crash("gw", madeleine.Time(crash.Nanoseconds()), 0)
		}
		opts = append(opts, madeleine.WithFaults(plan))
	}
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}

	n := *bytes
	var done madeleine.Time
	sys.Spawn("stream", func(p *madeleine.Proc) {
		px := sys.At(src).BeginPacking(p, dst)
		px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("drain", func(p *madeleine.Proc) {
		u := sys.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sys.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "madtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s -> %s, %d bytes in %d-byte packets, one-way %v (%.1f MB/s)\n\n",
		src, dst, n, *mtu, madeleine.Duration(done),
		float64(n)/(float64(done)/1e9)/1e6)
	fmt.Println(tr.Timeline(0, done, *cols))
	fmt.Println("r = receive step, s = send step, x = buffer switch overhead")
	if ds := sys.DeliveryStats(); ds != (madeleine.DeliveryStats{}) {
		fmt.Println("R = retransmit, M = message resend, F = failover, e = e2e ack")
		fmt.Println("d = drop, c = corruption discard, D = duplicate, C = crash, ~ = link flap")
		fmt.Printf("recovery: %d retransmits, %d message resends, %d failovers, %d checksum drops, %d duplicates\n",
			ds.Retransmits, ds.MessageResends, ds.Failovers, ds.ChecksumDrops, ds.Duplicates)
	}
	if *spans {
		fmt.Println()
		for _, s := range tr.Spans() {
			fmt.Println(s)
		}
	}
}
