package madeleine_test

import (
	"errors"
	"testing"

	madeleine "madgo"
)

// Every tuning option must be rejected when given without the option that
// arms its subsystem — and accepted alongside it. One table row per pair.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name     string
		opts     []madeleine.Option
		option   string // expected ConfigError.Option; "" = must build
		requires string
	}{
		{
			name:     "aggregation without eager",
			opts:     []madeleine.Option{madeleine.WithAggregation()},
			option:   "WithAggregation",
			requires: "WithEagerSmallMessages",
		},
		{
			name: "aggregation with eager",
			opts: []madeleine.Option{madeleine.WithEagerSmallMessages(), madeleine.WithAggregation()},
		},
		{
			name: "idle flush without aggregation",
			opts: []madeleine.Option{madeleine.WithEagerSmallMessages(),
				madeleine.WithAggIdleFlush(3 * madeleine.Microsecond)},
			option:   "WithAggIdleFlush",
			requires: "WithAggregation",
		},
		{
			name: "idle flush with aggregation",
			opts: []madeleine.Option{madeleine.WithEagerSmallMessages(), madeleine.WithAggregation(),
				madeleine.WithAggIdleFlush(3 * madeleine.Microsecond)},
		},
		{
			name:     "credit window without flow control",
			opts:     []madeleine.Option{madeleine.WithCreditWindow(4)},
			option:   "WithCreditWindow",
			requires: "WithFlowControl",
		},
		{
			name: "credit window with flow control",
			opts: []madeleine.Option{madeleine.WithFlowControl(), madeleine.WithCreditWindow(4)},
		},
		{
			name:     "stripe threshold without striping",
			opts:     []madeleine.Option{madeleine.WithStripeThreshold(8 * 1024)},
			option:   "WithStripeThreshold",
			requires: "WithStriping",
		},
		{
			name: "stripe threshold with striping",
			opts: []madeleine.Option{madeleine.WithStriping(2), madeleine.WithStripeThreshold(8 * 1024)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := madeleine.NewSystem(demoConfig, tc.opts...)
			if tc.option == "" {
				if err != nil {
					t.Fatalf("coherent options rejected: %v", err)
				}
				return
			}
			var ce *madeleine.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Option != tc.option || ce.Requires != tc.requires {
				t.Errorf("ConfigError = %s requires %s, want %s requires %s",
					ce.Option, ce.Requires, tc.option, tc.requires)
			}
			if ce.Error() == "" || ce.Detail == "" {
				t.Error("ConfigError carries no message")
			}
		})
	}
}

func TestPresets(t *testing.T) {
	// The production preset arms every post-paper subsystem coherently.
	prod, err := madeleine.NewSystem(demoConfig, madeleine.WithProduction())
	if err != nil {
		t.Fatal(err)
	}
	if prod.Health() == nil {
		t.Error("WithProduction did not arm the health monitor")
	}
	if prod.Channel.CanMulticast() {
		t.Error("production preset is reliable; multicast should be unavailable")
	}
	// The paper preset undoes everything the production preset armed.
	seed, err := madeleine.NewSystem(demoConfig, madeleine.WithProduction(), madeleine.WithPaperFidelity())
	if err != nil {
		t.Fatal(err)
	}
	if seed.Health() != nil {
		t.Error("WithPaperFidelity left the health monitor armed")
	}
	if !seed.Channel.CanMulticast() {
		t.Error("paper preset is streaming; multicast should be available")
	}
	// Individual options layered after a preset still win.
	over, err := madeleine.NewSystem(demoConfig,
		madeleine.WithProduction(), madeleine.WithCreditWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	_ = over
}

// TestStatsComposite checks the one-call snapshot against the per-subsystem
// getters after a run that exercises the multicast path.
func TestStatsComposite(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithFlowControl())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 60_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	members := []string{"a0", "a1", "b0", "b1"}
	for _, m := range members {
		m := m
		sys.Spawn("bcast:"+m, func(p *madeleine.Proc) {
			c, err := sys.CommAt(m, members...)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, len(payload))
			if m == "a0" {
				copy(buf, payload)
			}
			c.Broadcast(p, 0, buf)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Mcast.Messages != 1 || st.Mcast.Relays == 0 {
		t.Errorf("Stats().Mcast = %+v, want one multicast with gateway relays", st.Mcast)
	}
	if st.Flow.CreditsSpent == 0 {
		t.Error("Stats().Flow shows no credits spent")
	}
	if len(st.Gateways) != 1 || st.Gateways[0].Name != "gw" || st.Gateways[0].Bytes == 0 {
		t.Errorf("Stats().Gateways = %+v", st.Gateways)
	}
	// The per-subsystem getters are views over the same snapshot.
	if sys.McastStats() != st.Mcast {
		t.Error("McastStats() disagrees with Stats().Mcast")
	}
	if sys.FlowStats() != st.Flow {
		t.Error("FlowStats() disagrees with Stats().Flow")
	}
	if sys.DeliveryStats() != st.Delivery || sys.AckStats() != st.Ack {
		t.Error("reliable-mode getters disagree with Stats()")
	}
	if sys.AggStats() != st.Agg {
		t.Error("AggStats() disagrees with Stats().Agg")
	}
	gs, ok := sys.GatewayStats("gw")
	if !ok || gs != st.Gateways[0].GatewayStats {
		t.Errorf("GatewayStats(gw) = %+v ok=%v, want %+v", gs, ok, st.Gateways[0].GatewayStats)
	}
}
