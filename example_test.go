package madeleine_test

import (
	"fmt"

	madeleine "madgo"
)

// ExampleNewSystem builds the smallest cluster of clusters and sends one
// message across the gateway.
func ExampleNewSystem() {
	sys, err := madeleine.NewSystem(`
		network sci0  sci
		network myri0 myrinet
		node left  sci0
		node gw    sci0 myri0
		node right myri0
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("left").BeginPacking(p, "right")
		px.Pack(p, []byte("through the gateway"), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("right").BeginUnpacking(p)
		msg := make([]byte, 19)
		u.Unpack(p, msg, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		fmt.Printf("%s (forwarded=%v)\n", msg, u.Forwarded())
	})
	if err := sys.Run(); err != nil {
		fmt.Println(err)
	}
	// Output: through the gateway (forwarded=true)
}

// ExampleSystem_Routes shows the routing table a virtual channel derives
// from the topology.
func ExampleSystem_Routes() {
	sys, _ := madeleine.NewSystem(`
		network n1 sci
		network n2 myrinet
		node a n1
		node g n1 n2
		node b n2
	`)
	fmt.Print(sys.Routes())
	// Output:
	// a -[n1]-> g -[n2]-> b
	// a -[n1]-> g
	// b -[n2]-> g -[n1]-> a
	// b -[n2]-> g
	// g -[n1]-> a
	// g -[n2]-> b
}
