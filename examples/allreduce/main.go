// Allreduce across a cluster of clusters: the workload the paper's
// introduction motivates — parallel computing spanning two fast clusters as
// if they were one machine.
//
// Seven workers (three per cluster plus the gateway) run a distributed
// Jacobi-style iteration: each holds a slab of a vector, updates it
// locally, and the global residual is combined with an allreduce every
// step. The collective's tree edges that cross clusters are forwarded
// through the gateway pipeline transparently; the program is written
// exactly as it would be for a flat cluster.
//
// Run with: go run ./examples/allreduce
package main

import (
	"fmt"
	"log"
	"math"

	madeleine "madgo"
)

const config = `
network sci0  sci
network myri0 myrinet
node a0 sci0
node a1 sci0
node a2 sci0
node gw sci0 myri0
node b0 myri0
node b1 myri0
node b2 myri0
`

func main() {
	sys, err := madeleine.NewSystem(config, madeleine.WithAutoMTU())
	if err != nil {
		log.Fatal(err)
	}
	members := []string{"a0", "a1", "a2", "gw", "b0", "b1", "b2"}
	const slab = 50_000 // elements per worker
	const target = 1e-6

	var finalResidual float64
	var iterations int
	for idx, name := range members {
		idx, name := idx, name
		sys.Spawn("worker:"+name, func(p *madeleine.Proc) {
			comm, err := sys.CommAt(name, members...)
			if err != nil {
				log.Fatal(err)
			}
			// Local slab, seeded differently per worker.
			x := make([]float64, slab)
			for i := range x {
				x[i] = float64((i*7+idx*13)%100) / 100
			}
			comm.Barrier(p)
			for iter := 1; ; iter++ {
				// Local relaxation sweep (the "compute" phase).
				local := 0.0
				for i := 1; i < slab-1; i++ {
					next := (x[i-1] + x[i+1]) / 2
					local += (next - x[i]) * (next - x[i])
					x[i] = next
				}
				// Global residual: one allreduce per iteration,
				// crossing the gateway for half the tree.
				global := comm.AllReduce(p, []float64{local}, madeleine.OpSum)
				res := math.Sqrt(global[0] / float64(slab*len(members)))
				if name == "a0" {
					fmt.Printf("[%10v] iter %2d  residual %.3e\n", p.Now(), iter, res)
				}
				if res < target || iter >= 12 {
					if name == "a0" {
						finalResidual, iterations = res, iter
					}
					break
				}
			}
			comm.Barrier(p)
		})
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	gs, _ := sys.GatewayStats("gw")
	fmt.Printf("\nconverged to %.3e after %d iterations at t=%v\n", finalResidual, iterations, sys.Now())
	fmt.Printf("gateway relayed %d messages / %d packets / %d bytes of collective traffic\n", gs.Messages, gs.Packets, gs.Bytes)
	fmt.Println("the allreduce code never mentions clusters, gateways or routes — that is the paper's point")
}
