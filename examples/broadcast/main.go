// Broadcasting to a cluster of clusters: one root on an SCI cluster pushes
// the same buffer to seven receivers spread over a Myrinet core and a
// second SCI cluster, two gateways away. On a streaming channel the
// collective rides the gateway-native multicast: the root sends the payload
// ONCE, and each gateway replicates staged fragments onto the egress links
// of its distribution-tree branches — so the inter-cluster links carry the
// payload once no matter how many receivers sit behind them. Compare the
// gateway ingress byte counters against the naive expectation of one copy
// per receiver.
//
// Run with: go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	madeleine "madgo"
)

const config = `
network edge sci
network core myrinet
network leaf sci
node a0  edge
node a1  edge
node gw1 edge core
node c0  core
node c1  core
node gw2 core leaf
node l0  leaf
node l1  leaf
`

func main() {
	// Multicast needs the streaming channel; the paper-fidelity preset is
	// exactly that (reliable mode falls back to binomial trees).
	sys, err := madeleine.NewSystem(config, madeleine.WithPaperFidelity())
	if err != nil {
		log.Fatal(err)
	}

	members := []string{"a0", "a1", "gw1", "c0", "c1", "gw2", "l0", "l1"}
	const n = 1 << 20
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 11)
	}

	for _, name := range members {
		name := name
		sys.Spawn("member:"+name, func(p *madeleine.Proc) {
			comm, err := sys.CommAt(name, members...)
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, n)
			if name == "a0" {
				copy(buf, payload)
			}
			comm.Broadcast(p, 0, buf)
			for i := range buf {
				if buf[i] != byte(i*11) {
					log.Fatalf("%s: broadcast corrupted at byte %d", name, i)
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("broadcast of %d MB to %d receivers finished at t=%v\n",
		n>>20, len(members)-1, sys.Now())
	fmt.Printf("multicasts sent: %d, gateway relays: %d, tree branches: %d\n",
		st.Mcast.Messages, st.Mcast.Relays, st.Mcast.Branches)
	for _, g := range st.Gateways {
		fmt.Printf("  %s ingress: %d bytes (one payload copy, not one per receiver)\n",
			g.Name, g.Bytes)
	}
	fmt.Printf("bytes replicated onto gateway egress links: %d\n", st.Mcast.ReplicatedBytes)
}
