// Cluster of clusters: the paper's testbed — an SCI cluster and a Myrinet
// cluster bridged by a dual-NIC gateway. Messages between the clusters are
// transparently fragmented, relayed through the gateway's double-buffer
// pipeline and reassembled; intra-cluster messages travel directly. The
// application code cannot tell the difference.
//
// Run with: go run ./examples/clusterofclusters
package main

import (
	"fmt"
	"log"

	madeleine "madgo"
)

func main() {
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithRouteNetworks("sci0", "myri0"), // the Ethernet is a control network
		madeleine.WithPaperFidelity(),                // 32 KB packets, depth-2 pipelines, seed framing
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routes of the virtual channel (note the gateway hops):")
	fmt.Println(sys.Routes())

	send := func(from, to string, n int) {
		sys.Spawn("send:"+from+">"+to, func(p *madeleine.Proc) {
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(i)
			}
			px := sys.At(from).BeginPacking(p, to)
			px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		})
		sys.Spawn("recv:"+from+">"+to, func(p *madeleine.Proc) {
			u := sys.At(to).BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
			for i := range got {
				if got[i] != byte(i) {
					log.Fatalf("%s->%s corrupted", from, to)
				}
			}
			kind := "direct"
			if u.Forwarded() {
				kind = "forwarded"
			}
			sec := float64(p.Now()) / 1e9
			fmt.Printf("  %s -> %s: %4d KB, %-9s, done at %8v (≈%.1f MB/s incl. startup)\n",
				from, to, n/1024, kind, p.Now(), float64(n)/sec/1e6)
		})
	}

	// Inter-cluster both ways (crossing the gateway) and intra-cluster.
	send("a0", "b0", 512*1024) // SCI -> Myrinet: the good direction
	send("b2", "a2", 512*1024) // Myrinet -> SCI: the PCI-contended direction
	send("a1", "a3", 512*1024) // intra-SCI: direct, no gateway
	send("b1", "gw", 64*1024)  // the gateway is also an application node

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	gs, _ := sys.GatewayStats("gw")
	fmt.Printf("\ngateway relayed %d messages, %d packets, %d bytes\n", gs.Messages, gs.Packets, gs.Bytes)
	copies, copied := sys.Copies()
	fmt.Printf("CPU copies across all nodes: %d (%d bytes) — headers only, payloads were zero-copy\n", copies, copied)
}
