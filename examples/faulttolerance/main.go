// Fault tolerance: two clusters bridged by redundant gateways, with a
// seeded fault schedule scripted straight in the topology text — 2% packet
// loss everywhere and the preferred gateway crashing 30 ms in. The fault
// directives switch the system to reliable delivery: every packet carries a
// checksum and is acknowledged hop by hop, losses are retransmitted with
// exponential backoff, and when gw1 dies mid-transfer traffic fails over to
// gw2. The application code below is identical to the fault-free examples;
// the recovery is invisible except in the statistics. The system is built
// with the WithProduction preset — the "everything on" profile (eager
// framing, aggregation, flow control, striping, reliable delivery, health
// monitoring) — which the scripted faults compose with.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	madeleine "madgo"
)

func main() {
	tr := madeleine.NewTracer()
	sys, err := madeleine.NewSystem(`
		network sciA  sci
		network myriB myrinet
		node a0 sciA
		node a1 sciA
		node gw1 sciA myriB
		node gw2 sciA myriB
		node b0 myriB
		node b1 myriB

		fault seed 7
		fault drop * 0.02
		fault crash gw1 30ms
	`, madeleine.WithProduction(), madeleine.WithTracer(tr))
	if err != nil {
		log.Fatal(err)
	}

	const n = 4 << 20
	sys.Spawn("sender", func(p *madeleine.Proc) {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(5 * i)
		}
		px := sys.At("a0").BeginPacking(p, "b1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
		fmt.Printf("[%8v] a0: sent %d MB toward b1 across a lossy link and a doomed gateway\n",
			p.Now(), n>>20)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b1").BeginUnpacking(p)
		got := make([]byte, n)
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		for i := range got {
			if got[i] != byte(5*i) {
				log.Fatal("payload corrupted")
			}
		}
		fmt.Printf("[%8v] b1: received %d MB byte-exact\n", p.Now(), n>>20)
	})
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	for _, g := range []string{"gw1", "gw2"} {
		gs, _ := sys.GatewayStats(g)
		fmt.Printf("%s: %5d packets relayed, %3d retransmits, %d failovers\n",
			g, gs.Packets, gs.Retransmits, gs.Failovers)
	}
	ds := sys.DeliveryStats()
	fmt.Printf("total recovery: %d retransmits, %d failovers, %d duplicates suppressed\n",
		ds.Retransmits, ds.Failovers, ds.Duplicates)
	fmt.Println("\nrecovery timeline:")
	fmt.Println(tr.Timeline(0, sys.Now(), 100))
}
