// Multi-gateway routing: three clusters in a chain (SCI — Myrinet — SCI),
// so a message from the first cluster to the last crosses two gateways.
// This is the configuration of §2.2.2 where the paper argues messages must
// leave the last gateway on a *regular* channel: a special-channel delivery
// would be indistinguishable from one that still needs forwarding.
//
// Run with: go run ./examples/multigateway
package main

import (
	"fmt"
	"log"

	madeleine "madgo"
)

func main() {
	sys, err := madeleine.NewSystem(`
		network sciA  sci
		network myriB myrinet
		network sciC  sci
		node a0 sciA
		node a1 sciA
		node g1 sciA myriB
		node m0 myriB
		node g2 myriB sciC
		node c0 sciC
		node c1 sciC
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gateways:", sys.Gateways())
	fmt.Println(sys.Routes())

	const n = 256 * 1024
	sys.Spawn("sender", func(p *madeleine.Proc) {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(3 * i)
		}
		px := sys.At("a0").BeginPacking(p, "c1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
		fmt.Printf("[%8v] a0: sent %d KB toward c1 (two gateways away)\n", p.Now(), n/1024)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("c1").BeginUnpacking(p)
		got := make([]byte, n)
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		for i := range got {
			if got[i] != byte(3*i) {
				log.Fatal("payload corrupted across two gateways")
			}
		}
		fmt.Printf("[%8v] c1: received intact; original sender was rank %d (%s), forwarded=%v\n",
			p.Now(), u.From(), sys.NodeName(u.From()), u.Forwarded())
	})
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, g := range []string{"g1", "g2"} {
		gs, _ := sys.GatewayStats(g)
		fmt.Printf("gateway %s: %d messages, %d packets, %d bytes relayed\n", g, gs.Messages, gs.Packets, gs.Bytes)
	}
}
