// Quickstart: two nodes on one Myrinet network exchanging a message with
// Madeleine's incremental packing interface.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	madeleine "madgo"
)

func main() {
	// A minimal configuration: one network, two nodes.
	sys, err := madeleine.NewSystem(`
		network myri0 myrinet
		node alice myri0
		node bob   myri0
	`)
	if err != nil {
		log.Fatal(err)
	}

	// A message is built incrementally: an express header (available as
	// soon as it is unpacked, so the receiver can size its buffer) and a
	// bulk body (cheaper: the library moves it with zero copies).
	body := make([]byte, 1<<20)
	for i := range body {
		body[i] = byte(i)
	}

	sys.Spawn("alice", func(p *madeleine.Proc) {
		px := sys.At("alice").BeginPacking(p, "bob")
		header := []byte{byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
		px.Pack(p, header, madeleine.SendCheaper, madeleine.ReceiveExpress)
		px.Pack(p, body, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
		fmt.Printf("[%8v] alice: message fully handed to the network\n", p.Now())
	})

	sys.Spawn("bob", func(p *madeleine.Proc) {
		u := sys.At("bob").BeginUnpacking(p)
		header := make([]byte, 3)
		// Express: the size is valid right after Unpack returns...
		u.Unpack(p, header, madeleine.SendCheaper, madeleine.ReceiveExpress)
		n := int(header[0])<<16 | int(header[1])<<8 | int(header[2])
		got := make([]byte, n)
		// ...so the body buffer can be allocated to measure.
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)

		for i := range got {
			if got[i] != byte(i) {
				log.Fatalf("corruption at byte %d", i)
			}
		}
		sec := float64(p.Now()) / 1e9
		fmt.Printf("[%8v] bob: received %d bytes intact from rank %d — %.1f MB/s one-way\n",
			p.Now(), n, u.From(), float64(n)/sec/1e6)
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	copies, copied := sys.Copies()
	fmt.Printf("CPU copies in the whole run: %d (%d bytes) — the 1 MB body crossed zero-copy\n", copies, copied)
}
