// Zero-copy buffer election (§2.3): a Myrinet cluster bridged to an
// SBP-style network whose driver can only transmit from its own static
// buffers. When forwarding toward it, the gateway asks the SBP driver for
// static buffers and receives incoming packets *directly into them*, saving
// the staging copy; with the election disabled every packet pays a CPU copy
// at the gateway, and the difference is visible in both the copy counters
// and the achieved bandwidth.
//
// Run with: go run ./examples/zerocopy
package main

import (
	"fmt"
	"log"

	madeleine "madgo"
)

const config = `
network myri0 myrinet
network sbp0  sbp
node src myri0
node gw  myri0 sbp0
node dst sbp0
`

func run(zeroCopy bool) {
	opts := []madeleine.Option{madeleine.WithMTU(32 * 1024)}
	label := "zero-copy election"
	if !zeroCopy {
		opts = append(opts, madeleine.WithoutZeroCopy())
		label = "copy-always        "
	}
	sys, err := madeleine.NewSystem(config, opts...)
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 20
	var done madeleine.Time
	sys.Spawn("src", func(p *madeleine.Proc) {
		px := sys.At("src").BeginPacking(p, "dst")
		px.Pack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("dst", func(p *madeleine.Proc) {
		u := sys.At("dst").BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	copies, copied := sys.Copies()
	fmt.Printf("%s: %6.1f MB/s, %3d CPU copies (%8d bytes) across all nodes\n",
		label, float64(n)/(float64(done)/1e9)/1e6, copies, copied)
}

func main() {
	fmt.Println("1 MB message, Myrinet ingress -> SBP (static buffer) egress:")
	run(true)
	run(false)
	fmt.Println()
	fmt.Println("The copy-always run stages every 32 KB packet through an extra buffer")
	fmt.Println("at the gateway; the election receives straight into the SBP driver's")
	fmt.Println("static buffers. The destination's copy out of its SBP slots and the")
	fmt.Println("source's copy into aggregates are inherent to the static protocol.")
}
