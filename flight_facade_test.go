package madeleine_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	madeleine "madgo"
)

// streamThrough runs count back-to-back messages of n bytes from src to dst
// and fails the test on any simulation error.
func streamThrough(t *testing.T, sys *madeleine.System, src, dst string, count, n int) {
	t.Helper()
	payload := make([]byte, n)
	sys.Spawn("sender", func(p *madeleine.Proc) {
		for i := 0; i < count; i++ {
			px := sys.At(src).BeginPacking(p, dst)
			px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		buf := make([]byte, n)
		for i := 0; i < count; i++ {
			u := sys.At(dst).BeginUnpacking(p)
			u.Unpack(p, buf, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDiagnoseSwapBoundFlip is the issue's acceptance scenario for the
// §3.4.1 pathology: the same forwarded stream is swap-overhead-bound at
// pipeline depth 1 and healthy (of that pathology) at depth 8.
func TestDiagnoseSwapBoundFlip(t *testing.T) {
	verdict := func(depth int) madeleine.Diagnosis {
		m := madeleine.NewMetrics()
		sys, err := madeleine.NewSystem(demoConfig,
			madeleine.WithMetrics(m),
			madeleine.WithPipelineDepth(depth))
		if err != nil {
			t.Fatal(err)
		}
		streamThrough(t, sys, "a0", "b0", 8, 128*1024)
		return sys.Diagnose()
	}

	shallow := verdict(1)
	if !shallow.Has(madeleine.DiagSwapBound) {
		t.Errorf("depth-1 run not diagnosed swap-overhead-bound: %+v", shallow.Findings)
	}
	deep := verdict(8)
	if deep.Has(madeleine.DiagSwapBound) {
		t.Errorf("depth-8 run still diagnosed swap-overhead-bound: %+v", deep.Findings)
	}
}

// TestDiagnoseRetransmitBoundUnderFlap mirrors the r2 recovery scenario: a
// link flap mid-stream drives retransmissions and backoff, and the analyzer
// names the run retransmit-bound.
func TestDiagnoseRetransmitBoundUnderFlap(t *testing.T) {
	plan := madeleine.NewFaultPlan(42).Flap("sci0", madeleine.Time(10*madeleine.Millisecond), 60*madeleine.Millisecond)
	m := madeleine.NewMetrics()
	sys, err := madeleine.NewSystem(demoConfig,
		madeleine.WithMetrics(m),
		madeleine.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	streamThrough(t, sys, "a0", "b1", 40, 32*1024)
	if sys.DeliveryStats().Retransmits == 0 {
		t.Fatal("flap run saw zero retransmissions; the diagnosis below would be vacuous")
	}
	d := sys.Diagnose()
	if !d.Has(madeleine.DiagRexmitBound) {
		t.Errorf("flap run not diagnosed retransmit-bound: %+v", d.Findings)
	}
	var f madeleine.Finding
	for _, cand := range d.Findings {
		if cand.Code == madeleine.DiagRexmitBound {
			f = cand
		}
	}
	if len(f.Evidence) == 0 || !strings.Contains(strings.Join(f.Evidence, " "), "outage window") {
		t.Errorf("retransmit-bound finding names no outage window: %+v", f)
	}
}

// TestFlightBudgets checks the per-message latency budgets: every streamed
// message gets one, wire time is attributed, and the report renders.
func TestFlightBudgets(t *testing.T) {
	m := madeleine.NewMetrics()
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	streamThrough(t, sys, "a0", "b0", 3, 64*1024)
	bs := sys.Budgets()
	if len(bs) != 3 {
		t.Fatalf("Budgets() returned %d budgets, want 3", len(bs))
	}
	for _, b := range bs {
		if b.Total <= 0 {
			t.Errorf("message %d: non-positive total %v", b.Msg, b.Total)
		}
		if b.Stages[madeleine.StageWire] <= 0 {
			t.Errorf("message %d: no wire time attributed", b.Msg)
		}
		if b.Stages[madeleine.StageSwap] <= 0 {
			t.Errorf("message %d: no buffer-swap time attributed on a forwarded route", b.Msg)
		}
	}
	var report bytes.Buffer
	madeleine.WriteBudgetReport(&report, bs)
	for _, want := range []string{"wire", "buffer-swap", "all"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("budget report missing %q:\n%s", want, report.String())
		}
	}
}

// TestFlightDumpOnDeliveryError checks the automatic snapshot: a run that
// ends in a DeliveryError leaves a flight dump naming the failure.
func TestFlightDumpOnDeliveryError(t *testing.T) {
	plan := madeleine.NewFaultPlan(3).Crash("gw", madeleine.Time(2*madeleine.Millisecond), madeleine.Second)
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256*1024)
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b0")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b0").BeginUnpacking(p)
		u.Unpack(p, make([]byte, len(payload)), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	runErr := sys.Run()
	if runErr == nil {
		t.Fatal("crashed-gateway run succeeded; expected a delivery error")
	}
	dumps := sys.Flight().Dumps()
	if len(dumps) == 0 {
		t.Fatal("delivery error left no flight dump")
	}
	if !strings.Contains(dumps[0].Reason, "delivery-error") {
		t.Errorf("dump reason = %q, want a delivery-error reason", dumps[0].Reason)
	}
	var out bytes.Buffer
	if err := sys.WriteFlightJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rings []struct {
			Node   string            `json:"node"`
			Events []json.RawMessage `json:"events"`
		} `json:"rings"`
		Dumps []struct {
			Reason string `json:"reason"`
		} `json:"dumps"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("flight JSON does not parse: %v", err)
	}
	if len(doc.Rings) == 0 || len(doc.Dumps) == 0 {
		t.Errorf("flight JSON has %d rings and %d dumps, want both non-empty", len(doc.Rings), len(doc.Dumps))
	}
}

// TestFlightChromeReplay checks that flight events replay into the Chrome
// exporter: with no tracer attached, the trace still carries per-node
// flight spans.
func TestFlightChromeReplay(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig)
	if err != nil {
		t.Fatal(err)
	}
	streamThrough(t, sys, "a0", "b0", 2, 64*1024)
	var chrome bytes.Buffer
	if err := sys.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// Find the pid of the "flight" process, then count spans in it.
	flightPid := -1.0
	for _, ev := range doc.TraceEvents {
		if name, _ := ev["name"].(string); name == "process_name" {
			if args, _ := ev["args"].(map[string]any); args != nil && args["name"] == "flight" {
				flightPid, _ = ev["pid"].(float64)
			}
		}
	}
	if flightPid < 0 {
		t.Fatal("chrome trace has no \"flight\" process")
	}
	var flightSpans int
	for _, ev := range doc.TraceEvents {
		if ph, _ := ev["ph"].(string); ph == "X" && ev["pid"] == flightPid {
			flightSpans++
		}
	}
	if flightSpans == 0 {
		t.Error("chrome trace has no flight-recorder spans")
	}
}

// TestWithoutFlightRecorder checks the opt-out: no recorder, and every
// flight query degrades to zero values instead of panicking.
func TestWithoutFlightRecorder(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithoutFlightRecorder())
	if err != nil {
		t.Fatal(err)
	}
	streamThrough(t, sys, "a0", "b0", 1, 64*1024)
	if sys.Flight() != nil {
		t.Fatal("WithoutFlightRecorder left a recorder armed")
	}
	if bs := sys.Budgets(); bs != nil {
		t.Errorf("Budgets() without a recorder = %v, want nil", bs)
	}
	if d := sys.Diagnose(); !d.Healthy() {
		t.Errorf("Diagnose() without a recorder = %+v, want healthy", d.Findings)
	}
	var out bytes.Buffer
	if err := sys.WriteFlightJSON(&out); err != nil {
		t.Fatal(err)
	}
}
