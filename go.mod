module madgo

go 1.22
