// Package agg implements the cross-message aggregation codec of the eager
// small-message path: a self-contained binary frame that packs several
// sub-MTU messages, each with its block structure and pack-flag modes, into
// one wire transfer.
//
// The motivation is §3.4.1 of the paper: every wire transfer through a
// gateway pays a fixed ~40 µs software overhead, so a stream of tiny
// messages is overhead-bound no matter how compact each message's framing
// is. The coalescer in package fwd batches consecutive small messages bound
// for the same next hop into one aggregate frame; this package is only the
// codec — it knows nothing about channels, links or virtual time, which
// keeps the frame format independently fuzzable and reusable.
//
// Wire format (all integers little-endian):
//
//	frame  := header sub*
//	header := magic u16 | version u8 | flags u8 | count u16 | reserved u16
//	          | totalLen u32 | crc u32
//	sub    := subLen u32 | id u64 | nblocks u16
//	          | nblocks × (size u32 | sendMode u8 | recvMode u8)
//	          | payload (concatenated block bytes)
//
// totalLen is the full frame length including the header; crc is the IEEE
// CRC-32 of everything after the header; subLen counts the bytes of the
// entry after the subLen field itself. The decoder (NewReader) validates
// every length against every other before anything is handed out, and
// never panics on arbitrary input — truncated, overlapping or oversized
// sub-message bounds are rejected, which FuzzAggFrame pins down.
package agg

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// HeaderLen is the fixed size of the aggregate frame header.
	HeaderLen = 16

	frameMagic   = 0x4741 // "AG"
	frameVersion = 1

	// subFixedLen is the fixed part of a sub-message entry counted by its
	// subLen field: the 8-byte message ID and the 2-byte block count.
	subFixedLen = 10
	// blockDescLen is the wire size of one block descriptor.
	blockDescLen = 6

	// MaxSubs caps the sub-messages per frame (the count field is 16-bit).
	MaxSubs = 1<<16 - 1
)

// Block is one packed block of a sub-message: its payload and the send and
// receive modes it was packed with, carried as raw bytes so the codec does
// not depend on the mad package's types.
type Block struct {
	Data []byte
	S, R uint8
}

// SubSize returns the wire size one sub-message with the given blocks
// contributes to a frame, including its subLen field. The coalescer uses it
// to decide whether another message still fits under the frame limit.
func SubSize(blocks []Block) int {
	payload := 0
	for _, b := range blocks {
		payload += len(b.Data)
	}
	return SubSizeParts(len(blocks), payload)
}

// SubSizeParts is SubSize from the block count and summed payload length
// alone, for callers that track both incrementally and do not want to build
// the Block slice just to size it.
func SubSizeParts(nblocks, payload int) int {
	return 4 + subFixedLen + blockDescLen*nblocks + payload
}

// Builder accumulates sub-messages into one aggregate frame. Its buffer is
// reused across Reset cycles, so a warmed-up builder appends with zero
// allocations — the aggregator hot-path property the regression test pins.
type Builder struct {
	buf    []byte
	count  int
	prefix int
}

// NewBuilder returns a Builder with room for a frame of the given capacity
// hint (it grows beyond it if needed).
func NewBuilder(capacity int) *Builder {
	return NewBuilderPrefix(0, capacity)
}

// NewBuilderPrefix is NewBuilder with prefix bytes reserved in front of the
// frame, so a caller that wraps every frame in its own wire header (e.g. the
// 20-byte GTM routing header) can build the full wire payload in place and
// Detach it without a copy.
func NewBuilderPrefix(prefix, capacity int) *Builder {
	if prefix < 0 {
		panic("agg: negative builder prefix")
	}
	if capacity < prefix+HeaderLen {
		capacity = prefix + HeaderLen
	}
	return &Builder{buf: make([]byte, prefix+HeaderLen, capacity), prefix: prefix}
}

// Reset discards the accumulated sub-messages, keeping the buffer.
func (b *Builder) Reset() {
	b.buf = b.buf[:b.prefix+HeaderLen]
	b.count = 0
}

// Len is the frame size Finish would currently produce (the reserved prefix
// is not part of the frame).
func (b *Builder) Len() int { return len(b.buf) - b.prefix }

// Count is the number of sub-messages added since the last Reset.
func (b *Builder) Count() int { return b.count }

// Add appends one sub-message. It panics when the frame is structurally
// full (count field exhausted) — the coalescer flushes on a byte limit far
// below that.
func (b *Builder) Add(id uint64, blocks []Block) {
	if b.count >= MaxSubs {
		panic("agg: too many sub-messages in one frame")
	}
	subLen := subFixedLen + blockDescLen*len(blocks)
	for _, blk := range blocks {
		subLen += len(blk.Data)
	}
	var tmp [12]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(subLen))
	binary.LittleEndian.PutUint64(tmp[4:], id)
	b.buf = append(b.buf, tmp[:12]...)
	binary.LittleEndian.PutUint16(tmp[0:], uint16(len(blocks)))
	b.buf = append(b.buf, tmp[:2]...)
	for _, blk := range blocks {
		binary.LittleEndian.PutUint32(tmp[0:], uint32(len(blk.Data)))
		tmp[4] = blk.S
		tmp[5] = blk.R
		b.buf = append(b.buf, tmp[:6]...)
	}
	for _, blk := range blocks {
		b.buf = append(b.buf, blk.Data...)
	}
	b.count++
}

// Finish seals the header (magic, counts, total length, body CRC) and
// returns the frame. The returned slice aliases the builder's buffer: the
// caller must copy it out — or take ownership with Detach — before the next
// Reset/Add cycle if the frame is held past the flush.
func (b *Builder) Finish() []byte {
	hdr := b.buf[b.prefix:]
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = 0
	binary.LittleEndian.PutUint16(hdr[4:], uint16(b.count))
	binary.LittleEndian.PutUint16(hdr[6:], 0)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.buf)-b.prefix))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(hdr[HeaderLen:]))
	return b.buf[b.prefix:]
}

// Detach hands the caller ownership of the sealed buffer — the reserved
// prefix followed by the frame Finish produced — and re-arms the builder
// with a fresh empty buffer of the same capacity. Use it when the frame's
// lifetime outlives the flush (a wire layer that references payloads instead
// of copying them): the detached buffer is never touched by the builder
// again, so no defensive copy is needed.
func (b *Builder) Detach() []byte {
	out := b.buf
	b.buf = make([]byte, b.prefix+HeaderLen, cap(out))
	b.count = 0
	return out
}

// Sub is one decoded sub-message: its ID, block descriptors and the
// concatenated block payload, aliasing the frame.
type Sub struct {
	ID      uint64
	descs   []byte // nblocks × blockDescLen, aliases the frame
	payload []byte // aliases the frame
}

// NumBlocks is the number of packed blocks of this sub-message.
func (s Sub) NumBlocks() int { return len(s.descs) / blockDescLen }

// Block returns the i-th block descriptor: payload size and the raw send
// and receive modes it was packed with.
func (s Sub) Block(i int) (size int, sMode, rMode uint8) {
	d := s.descs[i*blockDescLen:]
	return int(binary.LittleEndian.Uint32(d[0:])), d[4], d[5]
}

// Payload is the concatenation of the sub-message's block payloads, in
// block order.
func (s Sub) Payload() []byte { return s.payload }

// Reader walks the sub-messages of a validated frame.
type Reader struct {
	body  []byte
	count int
	off   int
	next  int
}

// NewReader validates a frame end to end — magic, version, total length,
// body checksum, and every sub-message's bounds (entries must tile the body
// exactly; block sizes must sum to the entry's payload) — and returns a
// Reader positioned at the first sub-message. ok is false on any
// malformation; the function never panics, whatever the input.
func NewReader(frame []byte) (*Reader, bool) {
	if len(frame) < HeaderLen {
		return nil, false
	}
	if binary.LittleEndian.Uint16(frame[0:]) != frameMagic || frame[2] != frameVersion {
		return nil, false
	}
	if int(binary.LittleEndian.Uint32(frame[8:])) != len(frame) {
		return nil, false
	}
	body := frame[HeaderLen:]
	if binary.LittleEndian.Uint32(frame[12:]) != crc32.ChecksumIEEE(body) {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint16(frame[4:]))
	off := 0
	for i := 0; i < count; i++ {
		if len(body)-off < 4 {
			return nil, false
		}
		subLen := int(binary.LittleEndian.Uint32(body[off:]))
		if subLen < subFixedLen || subLen > len(body)-off-4 {
			return nil, false
		}
		entry := body[off+4 : off+4+subLen]
		nblocks := int(binary.LittleEndian.Uint16(entry[8:]))
		descLen := blockDescLen * nblocks
		if subFixedLen+descLen > subLen {
			return nil, false
		}
		payload := subLen - subFixedLen - descLen
		sum := 0
		for j := 0; j < nblocks; j++ {
			sum += int(binary.LittleEndian.Uint32(entry[subFixedLen+j*blockDescLen:]))
			if sum > payload {
				return nil, false
			}
		}
		if sum != payload {
			return nil, false
		}
		off += 4 + subLen
	}
	if off != len(body) {
		return nil, false
	}
	return &Reader{body: body, count: count}, true
}

// Count is the number of sub-messages in the frame.
func (r *Reader) Count() int { return r.count }

// Next returns the next sub-message, or ok=false past the last. The bounds
// were fully validated by NewReader, so Next performs no checks.
func (r *Reader) Next() (Sub, bool) {
	if r.next >= r.count {
		return Sub{}, false
	}
	r.next++
	subLen := int(binary.LittleEndian.Uint32(r.body[r.off:]))
	entry := r.body[r.off+4 : r.off+4+subLen]
	r.off += 4 + subLen
	nblocks := int(binary.LittleEndian.Uint16(entry[8:]))
	descEnd := subFixedLen + blockDescLen*nblocks
	return Sub{
		ID:      binary.LittleEndian.Uint64(entry[0:]),
		descs:   entry[subFixedLen:descEnd],
		payload: entry[descEnd:],
	}, true
}

// MustReader is NewReader for frames this process built itself (the sink's
// trusted path): it panics on malformation instead of returning ok=false.
func MustReader(frame []byte) *Reader {
	r, ok := NewReader(frame)
	if !ok {
		panic(fmt.Sprintf("agg: malformed aggregate frame (%d bytes)", len(frame)))
	}
	return r
}
