package agg

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func sampleBlocks() [][]Block {
	return [][]Block{
		{{Data: []byte("hello"), S: 0, R: 1}},
		{{Data: []byte("multi"), S: 1, R: 0}, {Data: []byte("block"), S: 2, R: 2}},
		{{Data: nil, S: 0, R: 0}}, // empty payload block
		{},                        // sub-message with no blocks at all
	}
}

// buildSample packs the sample sub-messages into one frame.
func buildSample() []byte {
	b := NewBuilder(256)
	for i, blocks := range sampleBlocks() {
		b.Add(uint64(i+1)*7, blocks)
	}
	return b.Finish()
}

func TestRoundTrip(t *testing.T) {
	frame := buildSample()
	r, ok := NewReader(frame)
	if !ok {
		t.Fatal("builder output rejected by its own reader")
	}
	want := sampleBlocks()
	if r.Count() != len(want) {
		t.Fatalf("Count() = %d, want %d", r.Count(), len(want))
	}
	for i, blocks := range want {
		sub, ok := r.Next()
		if !ok {
			t.Fatalf("Next() ran dry at sub-message %d", i)
		}
		if sub.ID != uint64(i+1)*7 {
			t.Errorf("sub %d: ID = %d, want %d", i, sub.ID, uint64(i+1)*7)
		}
		if sub.NumBlocks() != len(blocks) {
			t.Fatalf("sub %d: NumBlocks() = %d, want %d", i, sub.NumBlocks(), len(blocks))
		}
		var payload []byte
		for j, blk := range blocks {
			size, s, r := sub.Block(j)
			if size != len(blk.Data) || s != blk.S || r != blk.R {
				t.Errorf("sub %d block %d: (%d, %d, %d), want (%d, %d, %d)",
					i, j, size, s, r, len(blk.Data), blk.S, blk.R)
			}
			payload = append(payload, blk.Data...)
		}
		if !bytes.Equal(sub.Payload(), payload) {
			t.Errorf("sub %d: payload %q, want %q", i, sub.Payload(), payload)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("Next() returned a sub-message past Count()")
	}
}

func TestSubSizeMatchesWire(t *testing.T) {
	b := NewBuilder(64)
	for _, blocks := range sampleBlocks() {
		before := b.Len()
		b.Add(1, blocks)
		if got, want := b.Len()-before, SubSize(blocks); got != want {
			t.Errorf("Add grew the frame by %d bytes, SubSize said %d", got, want)
		}
	}
}

func TestBuilderResetReuses(t *testing.T) {
	b := NewBuilder(64)
	b.Add(1, []Block{{Data: []byte("first")}})
	first := append([]byte(nil), b.Finish()...)
	b.Reset()
	if b.Len() != HeaderLen || b.Count() != 0 {
		t.Fatalf("Reset left Len %d Count %d", b.Len(), b.Count())
	}
	b.Add(1, []Block{{Data: []byte("first")}})
	if !bytes.Equal(b.Finish(), first) {
		t.Error("frame built after Reset differs from the first build")
	}
}

// TestBuilderPrefixDetach covers the zero-copy flush contract: a builder
// with a reserved prefix produces a frame whose bytes sit right after the
// prefix in the detached buffer, Detach hands that buffer over intact, and
// the re-armed builder produces an identical frame from identical input.
func TestBuilderPrefixDetach(t *testing.T) {
	const prefix = 20
	b := NewBuilderPrefix(prefix, 256)
	if b.Len() != HeaderLen {
		t.Fatalf("fresh prefixed builder Len = %d, want %d", b.Len(), HeaderLen)
	}
	b.Add(7, []Block{{Data: []byte("payload"), S: 2, R: 3}})
	frame := append([]byte(nil), b.Finish()...)
	wire := b.Detach()
	if len(wire) != prefix+len(frame) {
		t.Fatalf("detached buffer is %d bytes, want prefix %d + frame %d", len(wire), prefix, len(frame))
	}
	if !bytes.Equal(wire[prefix:], frame) {
		t.Error("frame bytes after the prefix differ from Finish's frame")
	}
	if _, ok := NewReader(wire[prefix:]); !ok {
		t.Error("detached frame does not validate")
	}
	if b.Len() != HeaderLen || b.Count() != 0 {
		t.Fatalf("Detach left Len %d Count %d", b.Len(), b.Count())
	}
	b.Add(7, []Block{{Data: []byte("payload"), S: 2, R: 3}})
	if !bytes.Equal(b.Finish(), frame) {
		t.Error("frame built after Detach differs from the detached one")
	}
}

// TestBuilderHotPathAllocsNothing pins the aggregator hot path at zero
// allocations per coalesced message once the builder's buffer is warm: an
// incast of mice must not churn the garbage collector.
func TestBuilderHotPathAllocsNothing(t *testing.T) {
	payload := make([]byte, 512)
	blocks := []Block{{Data: payload, S: 1, R: 1}}
	b := NewBuilder(64 << 10)
	// Warm up: grow the buffer to its steady-state size once.
	for i := 0; i < 32; i++ {
		b.Add(uint64(i), blocks)
	}
	b.Finish()
	b.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			b.Add(uint64(i), blocks)
		}
		b.Finish()
		b.Reset()
	})
	if allocs != 0 {
		t.Errorf("steady-state Add/Finish/Reset cycle allocates %.1f times, want 0", allocs)
	}
}

// reseal fixes up totalLen and crc after a structural mutation, so the test
// reaches the bounds checks behind the checksum.
func reseal(frame []byte) []byte {
	binary.LittleEndian.PutUint32(frame[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(frame[12:], crc32.ChecksumIEEE(frame[HeaderLen:]))
	return frame
}

func TestReaderRejectsMalformedFrames(t *testing.T) {
	good := buildSample()
	cases := map[string]func() []byte{
		"empty":     func() []byte { return nil },
		"too-short": func() []byte { return good[:HeaderLen-1] },
		"bad-magic": func() []byte {
			f := append([]byte(nil), good...)
			f[0] ^= 0xFF
			return f
		},
		"bad-version": func() []byte {
			f := append([]byte(nil), good...)
			f[2]++
			return f
		},
		"bad-total-len": func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(f[8:], uint32(len(f)+1))
			return f
		},
		"truncated-body": func() []byte {
			// totalLen honest about the truncation, but the last sub-message
			// entry now runs past the body.
			f := append([]byte(nil), good[:len(good)-3]...)
			return reseal(f)
		},
		"bad-crc": func() []byte {
			f := append([]byte(nil), good...)
			f[len(f)-1] ^= 0xFF
			return f
		},
		"count-overruns-body": func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(f[4:], uint16(len(sampleBlocks())+1))
			return f // header not CRC-covered: bounds check must catch it
		},
		"count-undercounts-body": func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(f[4:], uint16(len(sampleBlocks())-1))
			return f // entries must tile the body exactly
		},
		"sub-len-overlaps-next": func() []byte {
			f := append([]byte(nil), good...)
			// First entry claims one byte more than it has; the walk would
			// read into the next entry.
			binary.LittleEndian.PutUint32(f[HeaderLen:], binary.LittleEndian.Uint32(f[HeaderLen:])+1)
			return reseal(f)
		},
		"sub-len-below-fixed": func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(f[HeaderLen:], subFixedLen-1)
			return reseal(f)
		},
		"block-descs-exceed-sub": func() []byte {
			f := append([]byte(nil), good...)
			// First sub claims 1000 blocks; the descriptors alone overrun
			// its subLen.
			binary.LittleEndian.PutUint16(f[HeaderLen+4+8:], 1000)
			return reseal(f)
		},
		"block-sizes-exceed-payload": func() []byte {
			f := append([]byte(nil), good...)
			// First sub's first block claims a huge size: the sizes no
			// longer sum to the entry's payload length.
			binary.LittleEndian.PutUint32(f[HeaderLen+4+subFixedLen:], 1<<30)
			return reseal(f)
		},
		"block-sizes-undercount-payload": func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(f[HeaderLen+4+subFixedLen:], 0)
			return reseal(f)
		},
	}
	for name, corrupt := range cases {
		if _, ok := NewReader(corrupt()); ok {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}
	if _, ok := NewReader(good); !ok {
		t.Fatal("control: pristine frame rejected")
	}
}

func TestMustReaderPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustReader accepted a malformed frame without panicking")
		}
	}()
	MustReader([]byte("not a frame"))
}

func TestAddPanicsPastMaxSubs(t *testing.T) {
	b := NewBuilder(HeaderLen + 4*(MaxSubs+1)*(subFixedLen+4))
	for i := 0; i < MaxSubs; i++ {
		b.Add(uint64(i), nil)
	}
	defer func() {
		if recover() == nil {
			t.Error("Add accepted a sub-message past MaxSubs without panicking")
		}
	}()
	b.Add(0, nil)
}
