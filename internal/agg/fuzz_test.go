package agg

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzAggFrame pins the decoder's wire contract: NewReader never panics on
// arbitrary bytes, rejects truncated and overlapping sub-message bounds, and
// for every accepted frame the walked sub-messages re-encode to the input
// byte for byte (modulo the flags/reserved header bytes the reader ignores).
func FuzzAggFrame(f *testing.F) {
	for _, seed := range aggFrameSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, ok := NewReader(data)
		if !ok {
			return
		}
		// Walk every sub-message; the reader guaranteed the bounds, so any
		// panic here is a validation gap.
		b := NewBuilder(len(data))
		subs := 0
		for {
			sub, more := r.Next()
			if !more {
				break
			}
			subs++
			blocks := make([]Block, sub.NumBlocks())
			payload := sub.Payload()
			off := 0
			for i := range blocks {
				size, s, rm := sub.Block(i)
				if size < 0 || off+size > len(payload) {
					t.Fatalf("accepted block %d with out-of-range size %d (payload %d)", i, size, len(payload))
				}
				blocks[i] = Block{Data: payload[off : off+size], S: s, R: rm}
				off += size
			}
			if off != len(payload) {
				t.Fatalf("block sizes sum to %d, payload is %d", off, len(payload))
			}
			b.Add(sub.ID, blocks)
		}
		if subs != r.Count() {
			t.Fatalf("walked %d sub-messages, Count() says %d", subs, r.Count())
		}
		// The reader ignores the flags and reserved header fields, so clear
		// them before comparing with the canonical re-encoding.
		in := append([]byte(nil), data...)
		in[3] = 0
		in[6], in[7] = 0, 0
		if re := b.Finish(); !bytes.Equal(re, in) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", in, re)
		}
	})
}

func aggFrameSeeds() [][]byte {
	one := NewBuilder(64)
	one.Add(42, []Block{{Data: []byte("mouse"), S: 0, R: 1}})
	many := NewBuilder(256)
	many.Add(1, []Block{{Data: []byte("a"), S: 1, R: 1}, {Data: []byte("bb"), S: 2, R: 0}})
	many.Add(2, nil)
	many.Add(^uint64(0), []Block{{Data: nil, S: 0, R: 0}})
	empty := NewBuilder(HeaderLen)
	truncated := append([]byte(nil), one.Finish()...)

	// An overlapping-bounds frame with a valid checksum: the first entry's
	// subLen reaches one byte into the next entry's length field.
	overlap := NewBuilder(128)
	overlap.Add(7, []Block{{Data: []byte("xy"), S: 0, R: 0}})
	overlap.Add(8, []Block{{Data: []byte("z"), S: 0, R: 0}})
	ob := append([]byte(nil), overlap.Finish()...)
	binary.LittleEndian.PutUint32(ob[HeaderLen:], binary.LittleEndian.Uint32(ob[HeaderLen:])+1)
	binary.LittleEndian.PutUint32(ob[12:], crc32.ChecksumIEEE(ob[HeaderLen:]))

	return [][]byte{
		append([]byte(nil), one.Finish()...),
		append([]byte(nil), many.Finish()...),
		append([]byte(nil), empty.Finish()...),
		truncated[:len(truncated)-3],
		ob,
		make([]byte, HeaderLen),
		{},
	}
}

// TestRegenFuzzCorpus mirrors internal/fwd's corpus regeneration: run with
// MADGO_REGEN_CORPUS=1 after changing the frame format; a bare `go test`
// verifies the checked-in seeds are present and current.
func TestRegenFuzzCorpus(t *testing.T) {
	regen := os.Getenv("MADGO_REGEN_CORPUS") != ""
	dir := filepath.Join("testdata", "fuzz", "FuzzAggFrame")
	if regen {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range aggFrameSeeds() {
		path := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if regen {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing seed corpus entry (MADGO_REGEN_CORPUS=1 regenerates): %v", err)
		}
		if string(got) != want {
			t.Errorf("%s is stale; regenerate with MADGO_REGEN_CORPUS=1", path)
		}
	}
}
