// Package baseline implements the two comparison points the paper argues
// against, so the benchmarks can quantify the benefit of the integrated
// forwarding mechanism:
//
//   - Nexus-style application-level forwarding (§1, §2.2.1): gateways run
//     ordinary application code that receives a whole message into
//     temporary buffers with regular unpack operations and re-sends it with
//     regular pack operations. Routing is not transparent, messages are
//     fully stored before being forwarded (no pipelining), and the message
//     must carry an application-level addressing header.
//   - PACX-MPI-style relaying (§1): intra-cluster legs use the native
//     network, but everything inter-cluster crosses a TCP/Fast-Ethernet
//     channel — the design the paper dismisses as "obviously not
//     acceptable for fast clusters of clusters".
package baseline

import (
	"encoding/binary"
	"fmt"

	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// Options selects the baseline flavour.
type Options struct {
	// InterClusterNet, when non-empty, makes relay daemons send every
	// non-local message over the named network directly to its final
	// destination (the PACX pattern, with the network typically
	// "eth..."). When empty, relays follow the routing table over the
	// high-speed networks (the Nexus pattern).
	InterClusterNet string
	// RouteNetworks restricts the routing topology to the named
	// networks (the high-speed ones), so an omnipresent control network
	// does not short-circuit the relays. Empty means all networks.
	RouteNetworks []string
}

// Binding ties a topology network to its simulated fabric and driver, as in
// package fwd.
type Binding struct {
	Net *hw.Network
	Drv mad.Driver
}

// Message is a fully received message: the original sender and one buffer
// per packed block.
type Message struct {
	From   mad.Rank
	Blocks [][]byte
}

// Relay is an application-level forwarding fabric over plain Madeleine
// channels.
type Relay struct {
	sess *mad.Session
	tp   *topo.Topology
	tbl  *route.Table
	opts Options

	channels map[string]*mad.Channel
	nodes    map[string]*mad.Node
	merged   map[mad.Rank]*vsync.Chan[incoming]
	local    map[mad.Rank]*vsync.Chan[*Message] // daemon-delivered messages
	daemons  map[string]bool
	relayed  map[string]*int64
}

type incoming struct {
	ep *mad.Endpoint
	a  *mad.Arrival
}

// header layout: final destination, origin, block count (int32 each).
const msgHeaderLen = 12

// per-block descriptor: size (int32), send mode, receive mode, padding.
const blockHeaderLen = 8

// Build creates nodes, one regular channel per network, the per-node
// pollers, and the relay daemons on every gateway the routing table uses.
// The session must be empty.
func Build(sess *mad.Session, tp *topo.Topology, bindings map[string]Binding, opts Options) (*Relay, error) {
	if len(sess.Nodes()) != 0 {
		return nil, fmt.Errorf("baseline: session already has nodes")
	}
	for _, nw := range tp.Networks() {
		if _, ok := bindings[nw.Name]; !ok {
			return nil, fmt.Errorf("baseline: no binding for network %s", nw.Name)
		}
	}
	if opts.InterClusterNet != "" {
		if _, ok := tp.Network(opts.InterClusterNet); !ok {
			return nil, fmt.Errorf("baseline: unknown inter-cluster network %s", opts.InterClusterNet)
		}
	}
	routeTp := tp
	if len(opts.RouteNetworks) > 0 {
		var err error
		routeTp, err = tp.Restrict(opts.RouteNetworks...)
		if err != nil {
			return nil, err
		}
	}
	r := &Relay{
		sess:     sess,
		tp:       tp,
		tbl:      route.Compute(routeTp),
		opts:     opts,
		channels: make(map[string]*mad.Channel),
		nodes:    make(map[string]*mad.Node),
		merged:   make(map[mad.Rank]*vsync.Chan[incoming]),
		local:    make(map[mad.Rank]*vsync.Chan[*Message]),
		daemons:  make(map[string]bool),
		relayed:  make(map[string]*int64),
	}
	for _, n := range tp.Nodes() {
		r.nodes[n.Name] = sess.AddNode(n.Name)
	}
	for _, nw := range tp.Networks() {
		b := bindings[nw.Name]
		members := make([]*mad.Node, len(nw.Members))
		for i, m := range nw.Members {
			members[i] = r.nodes[m]
		}
		r.channels[nw.Name] = sess.NewChannel("bl:"+nw.Name, b.Net, b.Drv, members...)
	}

	// Relay daemons on every node some route uses as an intermediate.
	names := routeTp.NodeNames()
	for _, src := range names {
		for _, dst := range names {
			if src == dst {
				continue
			}
			rt, ok := r.tbl.Lookup(src, dst)
			if !ok {
				return nil, fmt.Errorf("baseline: no route %s -> %s", src, dst)
			}
			for _, gw := range rt.Gateways() {
				r.daemons[gw] = true
			}
		}
	}

	sim := sess.Platform.Sim
	for _, n := range tp.Nodes() {
		node := r.nodes[n.Name]
		q := vsync.NewChan[incoming](fmt.Sprintf("bl-merged:%s", n.Name), 4096)
		r.merged[node.Rank] = q
		r.local[node.Rank] = vsync.NewChan[*Message](fmt.Sprintf("bl-local:%s", n.Name), 4096)
		for _, nwName := range n.Networks {
			ep := r.channels[nwName].At(node)
			sim.SpawnDaemon(fmt.Sprintf("bl-poll:%s:%s", n.Name, nwName), func(p *vtime.Proc) {
				for {
					a := ep.WaitArrival(p)
					q.Send(p, incoming{ep: ep, a: a})
				}
			})
		}
	}
	for name := range r.daemons {
		node := r.nodes[name]
		count := new(int64)
		r.relayed[name] = count
		sim.SpawnDaemon(fmt.Sprintf("bl-relay:%s", name), func(p *vtime.Proc) {
			for {
				msg, finalDst := r.receiveOne(p, node)
				if finalDst == node.Rank {
					r.local[node.Rank].Send(p, msg)
					continue
				}
				*count++
				r.sendFrom(p, node, finalDst, msg)
			}
		})
	}
	return r, nil
}

// Relayed returns the number of messages the named gateway forwarded.
func (r *Relay) Relayed(name string) int64 {
	c, ok := r.relayed[name]
	if !ok {
		panic("baseline: no relay daemon on " + name)
	}
	return *c
}

// NodeRank returns the session rank of a topology node.
func (r *Relay) NodeRank(name string) mad.Rank {
	n, ok := r.nodes[name]
	if !ok {
		panic("baseline: unknown node " + name)
	}
	return n.Rank
}

// Send transmits blocks from node src to node dst with application-level
// routing: the message goes to the first-hop target of the routing table,
// where a relay daemon stores and re-sends it.
func (r *Relay) Send(p *vtime.Proc, src, dst string, blocks [][]byte) {
	node, ok := r.nodes[src]
	if !ok {
		panic("baseline: unknown node " + src)
	}
	msg := &Message{From: node.Rank, Blocks: blocks}
	r.sendFrom(p, node, r.NodeRank(dst), msg)
}

// sendFrom transmits toward finalDst: directly when reachable, otherwise to
// the next relay.
func (r *Relay) sendFrom(p *vtime.Proc, node *mad.Node, finalDst mad.Rank, msg *Message) {
	dstName := r.sess.Node(finalDst).Name
	var nwName, hopTo string
	if r.opts.InterClusterNet != "" && r.daemons[node.Name] {
		// PACX pattern: a relay pushes everything over the
		// inter-cluster network, straight to the destination.
		nwName, hopTo = r.opts.InterClusterNet, dstName
	} else {
		hop, ok := r.tbl.NextHop(node.Name, dstName)
		if !ok {
			panic(fmt.Sprintf("baseline: no route %s -> %s", node.Name, dstName))
		}
		nwName, hopTo = hop.Network, hop.To
	}
	ep := r.channels[nwName].At(node)
	px := ep.BeginPacking(p, r.NodeRank(hopTo))

	hdr := make([]byte, msgHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(finalDst))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(msg.From))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(msg.Blocks)))
	px.Pack(p, hdr, mad.SendCheaper, mad.ReceiveExpress)
	for _, b := range msg.Blocks {
		bh := make([]byte, blockHeaderLen)
		binary.LittleEndian.PutUint32(bh[0:], uint32(len(b)))
		px.Pack(p, bh, mad.SendCheaper, mad.ReceiveExpress)
		px.Pack(p, b, mad.SendCheaper, mad.ReceiveCheaper)
	}
	px.EndPacking(p)
}

// receiveOne fully receives the next message arriving at the node —
// store-and-forward, exactly what the paper's integrated pipeline avoids.
func (r *Relay) receiveOne(p *vtime.Proc, node *mad.Node) (*Message, mad.Rank) {
	p.Sleep(node.Host.CPU.PollCost)
	in, ok := r.merged[node.Rank].Recv(p)
	if !ok {
		panic("baseline: merged queue closed")
	}
	u := in.ep.Open(p, in.a)
	hdr := make([]byte, msgHeaderLen)
	u.Unpack(p, hdr, mad.SendCheaper, mad.ReceiveExpress)
	finalDst := mad.Rank(binary.LittleEndian.Uint32(hdr[0:]))
	origin := mad.Rank(binary.LittleEndian.Uint32(hdr[4:]))
	nblocks := int(binary.LittleEndian.Uint32(hdr[8:]))
	msg := &Message{From: origin, Blocks: make([][]byte, nblocks)}
	for i := 0; i < nblocks; i++ {
		bh := make([]byte, blockHeaderLen)
		u.Unpack(p, bh, mad.SendCheaper, mad.ReceiveExpress)
		n := int(binary.LittleEndian.Uint32(bh[0:]))
		msg.Blocks[i] = make([]byte, n)
		u.Unpack(p, msg.Blocks[i], mad.SendCheaper, mad.ReceiveCheaper)
	}
	u.EndUnpacking(p)
	return msg, finalDst
}

// Recv blocks until a message for the named node arrives and returns it.
// On relay nodes it reads the daemon's local-delivery queue; elsewhere it
// receives directly.
func (r *Relay) Recv(p *vtime.Proc, name string) *Message {
	node, ok := r.nodes[name]
	if !ok {
		panic("baseline: unknown node " + name)
	}
	if r.daemons[name] {
		msg, ok := r.local[node.Rank].Recv(p)
		if !ok {
			panic("baseline: local queue closed")
		}
		return msg
	}
	for {
		msg, finalDst := r.receiveOne(p, node)
		if finalDst != node.Rank {
			panic(fmt.Sprintf("baseline: %s received a message for rank %d but runs no relay", name, finalDst))
		}
		return msg
	}
}
