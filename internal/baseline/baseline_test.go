package baseline_test

import (
	"bytes"
	"testing"

	"madgo/internal/baseline"
	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sisci"
	"madgo/internal/drivers/tcpnet"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

type world struct {
	sim   *vtime.Sim
	sess  *mad.Session
	relay *baseline.Relay
}

type netDriver interface {
	mad.Driver
	NewNetwork(pl *hw.Platform, name string) *hw.Network
}

func driverFor(proto string) netDriver {
	switch proto {
	case "sci":
		return sisci.New()
	case "myrinet":
		return bip.New()
	case "ethernet":
		return tcpnet.New()
	default:
		panic("no driver for " + proto)
	}
}

func build(t *testing.T, tp *topo.Topology, opts baseline.Options) *world {
	t.Helper()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]baseline.Binding)
	for _, nw := range tp.Networks() {
		drv := driverFor(nw.Protocol)
		bindings[nw.Name] = baseline.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	relay, err := baseline.Build(sess, tp, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, sess: sess, relay: relay}
}

func hsTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func pacxTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Network("eth0", "ethernet").
		Node("a0", "sci0", "eth0").Node("a1", "sci0", "eth0").
		Node("gw", "sci0", "myri0", "eth0").
		Node("b0", "myri0", "eth0").Node("b1", "myri0", "eth0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func pattern(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*13 + seed
	}
	return d
}

func roundTrip(t *testing.T, w *world, src, dst string, blocks [][]byte) *baseline.Message {
	t.Helper()
	w.sim.Spawn("s", func(p *vtime.Proc) {
		w.relay.Send(p, src, dst, blocks)
	})
	var got *baseline.Message
	w.sim.Spawn("r", func(p *vtime.Proc) {
		got = w.relay.Recv(p, dst)
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppLevelForwardingIntact(t *testing.T) {
	w := build(t, hsTopo(t), baseline.Options{})
	blocks := [][]byte{pattern(100_000, 1), pattern(33, 2), nil}
	got := roundTrip(t, w, "a0", "b1", blocks)
	if got.From != w.relay.NodeRank("a0") {
		t.Errorf("From = %d", got.From)
	}
	if len(got.Blocks) != len(blocks) {
		t.Fatalf("blocks = %d, want %d", len(got.Blocks), len(blocks))
	}
	for i := range blocks {
		if !bytes.Equal(got.Blocks[i], blocks[i]) {
			t.Errorf("block %d corrupted", i)
		}
	}
	if n := w.relay.Relayed("gw"); n != 1 {
		t.Errorf("gw relayed %d, want 1", n)
	}
}

func TestDirectDeliverySkipsRelay(t *testing.T) {
	w := build(t, hsTopo(t), baseline.Options{})
	got := roundTrip(t, w, "a0", "a1", [][]byte{pattern(5000, 3)})
	if !bytes.Equal(got.Blocks[0], pattern(5000, 3)) {
		t.Error("corrupted")
	}
	if n := w.relay.Relayed("gw"); n != 0 {
		t.Errorf("gw relayed %d for a direct route", n)
	}
}

func TestDeliveryToGatewayApp(t *testing.T) {
	// Messages for the gateway itself are handed to its local queue by
	// the daemon.
	w := build(t, hsTopo(t), baseline.Options{})
	got := roundTrip(t, w, "a0", "gw", [][]byte{pattern(2000, 4)})
	if !bytes.Equal(got.Blocks[0], pattern(2000, 4)) {
		t.Error("corrupted")
	}
	if n := w.relay.Relayed("gw"); n != 0 {
		t.Errorf("gw counted %d relays for local delivery", n)
	}
}

func TestPACXUsesEthernetForInterCluster(t *testing.T) {
	w := build(t, pacxTopo(t), baseline.Options{InterClusterNet: "eth0", RouteNetworks: []string{"sci0", "myri0"}})
	blocks := [][]byte{pattern(50_000, 5)}
	got := roundTrip(t, w, "a0", "b0", blocks)
	if !bytes.Equal(got.Blocks[0], blocks[0]) {
		t.Error("corrupted")
	}
	if n := w.relay.Relayed("gw"); n != 1 {
		t.Errorf("gw relayed %d", n)
	}
}

func TestPACXSlowerThanNexusStyle(t *testing.T) {
	// The PACX TCP leg caps inter-cluster bandwidth at Fast-Ethernet
	// speed; the Nexus-style relay at least keeps the high-speed
	// networks.
	oneway := func(opts baseline.Options) vtime.Duration {
		w := build(t, pacxTopo(t), opts)
		var done vtime.Time
		data := pattern(1<<20, 6)
		w.sim.Spawn("s", func(p *vtime.Proc) { w.relay.Send(p, "a0", "b0", [][]byte{data}) })
		w.sim.Spawn("r", func(p *vtime.Proc) {
			got := w.relay.Recv(p, "b0")
			if !bytes.Equal(got.Blocks[0], data) {
				t.Error("corrupted")
			}
			done = p.Now()
		})
		if err := w.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return vtime.Duration(done)
	}
	nexus := oneway(baseline.Options{RouteNetworks: []string{"sci0", "myri0"}})
	pacx := oneway(baseline.Options{InterClusterNet: "eth0", RouteNetworks: []string{"sci0", "myri0"}})
	if pacx <= nexus {
		t.Errorf("PACX (%v) should be slower than app-level native (%v)", pacx, nexus)
	}
	mbps := (1 << 20) / pacx.Seconds() / 1e6
	if mbps > 12 {
		t.Errorf("PACX inter-cluster at %.1f MB/s, should be Fast-Ethernet bound", mbps)
	}
}

func TestBuildValidation(t *testing.T) {
	tp := hsTopo(t)
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	sci, myri := driverFor("sci"), driverFor("myrinet")
	bindings := map[string]baseline.Binding{
		"sci0":  {Net: sci.NewNetwork(pl, "sci0"), Drv: sci},
		"myri0": {Net: myri.NewNetwork(pl, "myri0"), Drv: myri},
	}
	if _, err := baseline.Build(sess, tp, map[string]baseline.Binding{}, baseline.Options{}); err == nil {
		t.Error("expected error for missing bindings")
	}
	if _, err := baseline.Build(sess, tp, bindings, baseline.Options{InterClusterNet: "nope"}); err == nil {
		t.Error("expected error for unknown inter-cluster net")
	}
	if _, err := baseline.Build(sess, tp, bindings, baseline.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.Build(sess, tp, bindings, baseline.Options{}); err == nil {
		t.Error("expected error for reused session")
	}
}

func TestManyMessagesThroughRelay(t *testing.T) {
	w := build(t, hsTopo(t), baseline.Options{})
	const msgs = 6
	w.sim.Spawn("s", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			w.relay.Send(p, "a1", "b0", [][]byte{pattern(10_000+i, byte(i))})
		}
	})
	w.sim.Spawn("r", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			got := w.relay.Recv(p, "b0")
			if !bytes.Equal(got.Blocks[0], pattern(10_000+i, byte(i))) {
				t.Errorf("message %d corrupted", i)
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n := w.relay.Relayed("gw"); n != msgs {
		t.Errorf("relayed %d, want %d", n, msgs)
	}
}
