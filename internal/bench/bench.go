// Package bench is the experiment harness: it rebuilds the paper's testbed
// on the simulated platform and regenerates every table and figure of the
// evaluation section, plus the ablations DESIGN.md calls out. Each
// experiment is registered under the id used in DESIGN.md/EXPERIMENTS.md
// (fig6, fig7, t1, ..., a5) and can be run from cmd/madbench or the root
// benchmark suite.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tunes how heavy an experiment run is.
type Options struct {
	// Quick trims sweeps (fewer message sizes, smaller maxima) so the
	// whole registry runs in well under a second — used by tests and
	// -short benchmarks. Full sweeps match the paper's axes.
	Quick bool
	// Rails raises the maximum stripe width the striping experiments
	// sweep (s1 compares K=1..Rails; 0 means the default of 2).
	Rails int
}

// Point is one measurement: X in the experiment's x-unit (usually message
// bytes), Y usually in MB/s (decimal, as the paper plots).
type Point struct {
	X float64
	Y float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is the outcome of one experiment: either a set of curves (figures)
// or a table (in-text measurements), plus free-form notes.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series

	Header []string
	Table  [][]string

	Notes []string
}

// Experiment is a registered, regenerable piece of the evaluation.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(Options) *Result
}

var registry = map[string]*Experiment{}
var order []string

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in registration order.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns the registered experiment ids in registration order.
func IDs() []string { return append([]string(nil), order...) }

// WriteTable renders a result as an aligned text table: figures become one
// row per X with one column per series; table results print verbatim.
func WriteTable(w io.Writer, r *Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		writeSeriesTable(w, r)
	}
	if len(r.Table) > 0 {
		writeRawTable(w, r.Header, r.Table)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func writeSeriesTable(w io.Writer, r *Result) {
	// Collect the union of X values.
	xsSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{}
	for _, x := range xs {
		row := []string{formatX(x)}
		for _, s := range r.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.1f", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	if r.YLabel != "" {
		fmt.Fprintf(w, "(cells in %s)\n", r.YLabel)
	}
	writeRawTable(w, header, rows)
}

func formatX(x float64) string {
	switch {
	case x >= 1<<20 && float64(int64(x))/(1<<20) == float64(int64(x)/(1<<20)):
		return fmt.Sprintf("%dMB", int64(x)/(1<<20))
	case x >= 1024 && float64(int64(x))/1024 == float64(int64(x)/1024):
		return fmt.Sprintf("%dKB", int64(x)/1024)
	default:
		return fmt.Sprintf("%g", x)
	}
}

func writeRawTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// WriteCSV renders a figure result as CSV (x, then one column per series).
func WriteCSV(w io.Writer, r *Result) {
	if len(r.Series) == 0 {
		fmt.Fprintf(w, "# %s has no series; use the table form\n", r.ID)
		return
	}
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	xsSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range r.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.3f", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// MaxY returns the highest Y of a named series (helper for shape checks and
// headline numbers).
func (r *Result) MaxY(series string) float64 {
	max := 0.0
	for _, s := range r.Series {
		if s.Name != series && series != "" {
			continue
		}
		for _, p := range s.Points {
			if p.Y > max {
				max = p.Y
			}
		}
	}
	return max
}

// YAt returns the Y value of a series at X (0 when absent).
func (r *Result) YAt(series string, x float64) float64 {
	for _, s := range r.Series {
		if s.Name != series {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y
			}
		}
	}
	return 0
}
