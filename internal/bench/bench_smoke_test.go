package bench

import (
	"os"
	"testing"
)

// TestDumpAll is a development aid: MADGO_DUMP=1 go test -run DumpAll -v
// prints every experiment at quick settings.
func TestDumpAll(t *testing.T) {
	if os.Getenv("MADGO_DUMP") == "" {
		t.Skip("set MADGO_DUMP=1 to dump all experiment tables")
	}
	for _, e := range All() {
		r := e.Run(Options{Quick: true})
		WriteTable(os.Stdout, r)
	}
}
