package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"madgo/internal/fwd"
)

var quick = Options{Quick: true}

func TestRegistryComplete(t *testing.T) {
	want := []string{"b1", "t1", "fig6", "fig7", "t2", "t3", "fig5", "fig8", "headline", "a1", "a2", "a3", "a4", "a6", "a7", "a5", "o2", "c1", "o1", "p1", "r2", "r1", "m1", "s1"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range want {
		e, ok := Lookup(id)
		if !ok || e.ID != id || e.Title == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run(quick)
			if r == nil || r.ID != e.ID {
				t.Fatalf("result = %+v", r)
			}
			if len(r.Series) == 0 && len(r.Table) == 0 && len(r.Notes) == 0 {
				t.Fatal("empty result")
			}
			var buf bytes.Buffer
			WriteTable(&buf, r)
			if buf.Len() == 0 {
				t.Fatal("empty table rendering")
			}
		})
	}
}

func TestT1Shape(t *testing.T) {
	e, _ := Lookup("t1")
	r := e.Run(quick)
	// SCI beats Myrinet at small sizes, Myrinet wins at 1 MB, Ethernet
	// is far behind everywhere.
	if sci, myri := r.YAt("sci", 4096), r.YAt("myrinet", 4096); sci <= myri {
		t.Errorf("4KB: sci %.1f <= myrinet %.1f", sci, myri)
	}
	if sci, myri := r.YAt("sci", 1024*kb), r.YAt("myrinet", 1024*kb); myri <= sci {
		t.Errorf("1MB: myrinet %.1f <= sci %.1f", myri, sci)
	}
	if eth := r.YAt("ethernet", 1024*kb); eth > 12 {
		t.Errorf("ethernet = %.1f MB/s, should be Fast-Ethernet bound", eth)
	}
	// Crossover: both ≈40 MB/s at 16 KB.
	for _, net := range []string{"sci", "myrinet"} {
		if y := r.YAt(net, 16*kb); y < 36 || y > 46 {
			t.Errorf("%s @16KB = %.1f, want ≈40", net, y)
		}
	}
}

func TestFig6Fig7Shapes(t *testing.T) {
	f6 := mustRun(t, "fig6", quick)
	f7 := mustRun(t, "fig7", quick)
	const big = 1024 * kb

	// Larger packets win asymptotically in both directions.
	for _, r := range []*Result{f6, f7} {
		small := r.YAt("paquet=8KB", big)
		large := r.YAt("paquet=128KB", big)
		if !(large > small) {
			t.Errorf("%s: 128KB packets (%.1f) not faster than 8KB (%.1f) at %d", r.ID, large, small, big)
		}
	}
	// SCI→Myrinet beats Myrinet→SCI for every packet size at 1 MB — the
	// central asymmetry of the paper.
	for _, pkt := range []string{"paquet=8KB", "paquet=32KB", "paquet=128KB"} {
		y6, y7 := f6.YAt(pkt, big), f7.YAt(pkt, big)
		if !(y6 > y7) {
			t.Errorf("%s at 1MB: fig6 %.1f not > fig7 %.1f", pkt, y6, y7)
		}
	}
	// Band checks against the paper's reconstructed anchors (±20%).
	if y := f6.YAt("paquet=8KB", big); y < 28 || y > 42 {
		t.Errorf("fig6 8KB plateau = %.1f, want ≈34 (paper ≈35)", y)
	}
	if y := f7.YAt("paquet=8KB", big); y < 20 || y > 31 {
		t.Errorf("fig7 8KB plateau = %.1f, want ≈26 (paper ≈25)", y)
	}
	if y := f7.MaxY(""); y >= 35 {
		t.Errorf("fig7 max = %.1f, paper: never exceeds 35", y)
	}
}

func TestT2OverheadAccounting(t *testing.T) {
	r := mustRun(t, "t2", quick)
	// The derived per-switch overhead must sit at the modelled 40 µs.
	found := false
	for _, row := range r.Table {
		if row[0] == "period - max(step)" {
			found = true
			if !strings.HasPrefix(row[1], "40") && !strings.HasPrefix(row[1], "39") && !strings.HasPrefix(row[1], "41") {
				t.Errorf("derived overhead = %s, want ≈40µs", row[1])
			}
		}
	}
	if !found {
		t.Fatal("missing overhead row")
	}
}

func TestT3Stretch(t *testing.T) {
	r := mustRun(t, "t3", quick)
	for _, row := range r.Table {
		if row[0] == "stretch factor" {
			var f float64
			if _, err := sscanf(row[1], &f); err != nil {
				t.Fatalf("bad stretch %q", row[1])
			}
			if f < 1.3 || f > 2.1 {
				t.Errorf("stretch = %.2f, want within (1.3, 2.1) — the paper's factor-of-two PIO slowdown bounded by partial overlap", f)
			}
			return
		}
	}
	t.Fatal("missing stretch row")
}

// sscanf parses a leading float out of strings like "1.45×".
func sscanf(s string, f *float64) (int, error) {
	end := 0
	for end < len(s) && (s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	var err error
	*f, err = parseFloat(s[:end])
	return 1, err
}

func parseFloat(s string) (float64, error) {
	var v float64
	var frac float64 = 0
	div := 1.0
	seenDot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			seenDot = true
			continue
		}
		d := float64(c - '0')
		if seenDot {
			div *= 10
			frac += d / div
		} else {
			v = v*10 + d
		}
	}
	return v + frac, nil
}

func TestA1GTMBeatsBaselines(t *testing.T) {
	r := mustRun(t, "a1", quick)
	const big = 1024 * kb
	gtm := r.YAt("madeleine-gtm", big)
	app := r.YAt("app-level", big)
	pacx := r.YAt("pacx-tcp", big)
	if !(gtm > app && app > pacx) {
		t.Errorf("ordering broken: gtm %.1f, app %.1f, pacx %.1f", gtm, app, pacx)
	}
	if gtm < 1.3*app {
		t.Errorf("gtm %.1f not clearly ahead of store-and-forward %.1f", gtm, app)
	}
	if pacx > 12 {
		t.Errorf("pacx %.1f should be Ethernet-bound", pacx)
	}
}

func TestA3PipelineAblation(t *testing.T) {
	r := mustRun(t, "a3", quick)
	vals := map[string]float64{}
	for _, row := range r.Table {
		var f float64
		if _, err := sscanf(row[1], &f); err == nil {
			vals[row[0]] = f
		}
	}
	full := vals["full mechanism (2 buffers, zero-copy)"]
	single := vals["no pipelining (1 buffer)"]
	copyAlways := vals["copy-always gateway"]
	if !(full > single) {
		t.Errorf("pipelining does not help: full %.1f vs single %.1f", full, single)
	}
	if !(full > copyAlways) {
		t.Errorf("zero-copy does not help: full %.1f vs copy-always %.1f", full, copyAlways)
	}
}

func TestA5ZeroCopyElection(t *testing.T) {
	r := mustRun(t, "a5", quick)
	if len(r.Table) != 2 {
		t.Fatalf("table = %v", r.Table)
	}
	var zc, cp float64
	sscanf(r.Table[0][1], &zc)
	sscanf(r.Table[1][1], &cp)
	if !(zc > cp) {
		t.Errorf("election (%.1f) not faster than copy-always (%.1f)", zc, cp)
	}
	// A zero-copy gateway may still stage the GTM header (20 bytes), but
	// never payload.
	if r.Table[0][2] != "0" && r.Table[0][2] != "20" {
		t.Errorf("zero-copy gateway copied %s bytes", r.Table[0][2])
	}
}

func TestPingFaithfulMatchesActual(t *testing.T) {
	// The paper's rtt-minus-ack methodology must agree with the
	// simulator's ground truth within a few percent.
	tb := NewTestbed(fwd.DefaultConfig())
	res := tb.PingSeries("a1", "b1", []int{64 * kb, 512 * kb})
	for _, m := range res {
		diff := m.Faithful - m.Actual
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.08*float64(m.Actual) {
			t.Errorf("%d bytes: faithful %v vs actual %v", m.Bytes, m.Faithful, m.Actual)
		}
	}
}

func TestGatewayZeroCopyOnLongStreams(t *testing.T) {
	// Regression: with the post-gated ingress the gateway must not copy
	// payload even when the sender could stream far ahead.
	tb := NewTestbed(fwd.DefaultConfig())
	tb.Stream("a1", "b1", 4096*kb)
	gw := tb.Sess.NodeByName("gw").Host
	if gw.BytesCopied() > 64 {
		t.Errorf("gateway copied %d bytes on a dyn→dyn stream (want ≈header only)", gw.BytesCopied())
	}
}

func TestWritersRender(t *testing.T) {
	r := &Result{
		ID: "x", Title: "demo", XLabel: "message", YLabel: "MB/s",
		Series: []Series{
			{Name: "s1", Points: []Point{{X: 1024, Y: 1}, {X: 2048, Y: 2}}},
			{Name: "s2", Points: []Point{{X: 1024, Y: 3}}},
		},
		Notes: []string{"hello"},
	}
	var tbl, csv bytes.Buffer
	WriteTable(&tbl, r)
	if !strings.Contains(tbl.String(), "s1") || !strings.Contains(tbl.String(), "1KB") || !strings.Contains(tbl.String(), "hello") {
		t.Fatalf("table:\n%s", tbl.String())
	}
	WriteCSV(&csv, r)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "message,s1,s2" {
		t.Fatalf("csv:\n%s", csv.String())
	}
	// Table-only results render too.
	var buf bytes.Buffer
	WriteTable(&buf, &Result{ID: "y", Title: "t", Header: []string{"k", "v"}, Table: [][]string{{"a", "1"}}})
	if !strings.Contains(buf.String(), "a") {
		t.Fatal("raw table missing rows")
	}
	var csvEmpty bytes.Buffer
	WriteCSV(&csvEmpty, &Result{ID: "y"})
	if !strings.Contains(csvEmpty.String(), "no series") {
		t.Fatal("csv of table result should note absence of series")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		e, _ := Lookup("fig6")
		WriteTable(&buf, e.Run(quick))
		return buf.String()
	}
	a := run()
	if b := run(); a != b {
		t.Fatalf("fig6 not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestRawPairBandwidthPositive(t *testing.T) {
	for _, proto := range []string{"sci", "myrinet", "ethernet", "sbp"} {
		rp := NewRawPair(proto)
		times := rp.OneWaySeries([]int{64 * kb})
		if times[0] <= 0 {
			t.Errorf("%s: nonpositive one-way time", proto)
		}
	}
}

func TestTimelineExperimentsContainLanes(t *testing.T) {
	for _, id := range []string{"fig5", "fig8"} {
		r := mustRun(t, id, quick)
		joined := strings.Join(r.Notes, "\n")
		if !strings.Contains(joined, "recv") || !strings.Contains(joined, "send") {
			t.Errorf("%s timeline missing lanes", id)
		}
	}
}

func mustRun(t *testing.T, id string, o Options) *Result {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	return e.Run(o)
}

// TestReliableBenchFaultFree pins the satellite guarantee: a fault-free
// reliable run of the paper transfer performs zero recovery work, so the
// r1 zero-loss row doubles as a regression check on the protocol overhead.
func TestReliableBenchFaultFree(t *testing.T) {
	_, ds, acks := reliableStream("a1", "b1", 256*kb, nil)
	if ds != (fwd.DeliveryStats{}) {
		t.Errorf("fault-free reliable stream recovered: %+v", ds)
	}
	// Ack coalescing and piggybacking must keep control datagrams well
	// below one per acknowledged packet: every coalesced entry is an ack
	// that did not become its own datagram.
	if acks.Packets == 0 {
		t.Error("reliable stream sent no acknowledgement datagrams")
	}
	if acks.Coalesced == 0 {
		t.Errorf("no acks coalesced over a 256 KB stream: %+v", acks)
	}
	e, ok := Lookup("r1")
	if !ok {
		t.Fatal("r1 not registered")
	}
	r := e.Run(quick)
	if len(r.Table) == 0 || r.Table[0][2] != "0" {
		t.Errorf("r1 zero-loss row shows retransmits: %v", r.Table)
	}
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("r1 flagged recovery on a fault-free run: %s", note)
		}
	}
}

// TestS1StripeSpeedupGate is the CI gate for multi-rail striping: on the
// dual-rail topology (Myrinet/BIP + DMA-engine SCI) K=2 goodput must be at
// least 1.5x the K=1 baseline from the same deterministic run, at both 64
// and 128 KB. The BENCH_s1.json archive `make bench` produces comes from
// the identical sweep, so gating the test gates the archive.
func TestS1StripeSpeedupGate(t *testing.T) {
	r := mustRun(t, "s1", Options{}) // full sweep: the gated sizes are not in quick
	for _, n := range []float64{64 * kb, 128 * kb} {
		one, two := r.YAt("K=1", n), r.YAt("K=2", n)
		if one == 0 || two == 0 {
			t.Fatalf("s1 missing a goodput point at %.0f bytes (K=1 %.1f, K=2 %.1f)", n, one, two)
		}
		if ratio := two / one; ratio < 1.5 {
			t.Errorf("K=2 goodput %.1f MB/s is only %.2fx the K=1 baseline %.1f MB/s at %.0f KB, gate is 1.5x",
				two, ratio, one, n/kb)
		}
	}
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("s1 flagged: %s", note)
		}
	}
}

// TestO1SwapOverheadFromHistogram pins the observability reproduction of
// §3.4.1: the gateway swap histogram's quantiles must report the CPU
// model's per-switch overhead (40 µs) exactly — the histogram interpolation
// may not smear a constant series.
func TestO1SwapOverheadFromHistogram(t *testing.T) {
	r := mustRun(t, "o1", quick)
	vals := map[string]string{}
	for _, row := range r.Table {
		vals[row[0]] = row[1]
	}
	if vals["swap overhead p50"] != "40.0µs" {
		t.Errorf("p50 = %s, want 40.0µs", vals["swap overhead p50"])
	}
	if vals["swap overhead p99"] != "40.0µs" {
		t.Errorf("p99 = %s, want 40.0µs", vals["swap overhead p99"])
	}
	var n float64
	if _, err := sscanf(vals["buffer switches observed"], &n); err != nil || n == 0 {
		t.Errorf("observations = %q, want > 0", vals["buffer switches observed"])
	}
}

// TestWriteJSONRoundTrips checks the machine-readable bench output `make
// bench` archives.
func TestWriteJSONRoundTrips(t *testing.T) {
	r := mustRun(t, "o1", quick)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("bench JSON does not round-trip: %v", err)
	}
	if back.ID != "o1" || len(back.Table) != len(r.Table) {
		t.Errorf("round-tripped result = %+v", back)
	}
}

// TestP1DepthSweep pins the pipeline-depth acceptance criteria: at 128 KB
// packets, goodput must be monotone non-decreasing in ring depth
// (depth 4 ≥ depth 2 ≥ depth 1) and the receive lane's stall fraction must
// shrink as the ring deepens.
func TestP1DepthSweep(t *testing.T) {
	r := mustRun(t, "p1", quick)
	if len(r.Series) != 4 {
		t.Fatalf("series = %d, want one per depth {1,2,4,8}", len(r.Series))
	}
	if len(r.Table) != 4 {
		t.Fatalf("table rows = %d, want one per depth", len(r.Table))
	}
	var goodput, stall []float64
	for _, row := range r.Table {
		var g, s float64
		if _, err := sscanf(row[1], &g); err != nil {
			t.Fatalf("bad goodput cell %q", row[1])
		}
		if _, err := sscanf(row[2], &s); err != nil {
			t.Fatalf("bad stall cell %q", row[2])
		}
		goodput = append(goodput, g)
		stall = append(stall, s)
	}
	for i := 1; i < len(goodput); i++ {
		if goodput[i] < goodput[i-1] {
			t.Errorf("goodput regressed with depth: %v", goodput)
		}
		// Non-increasing per step: short quick-mode messages can bottom
		// out before the deepest ring, but depth must never hurt.
		if stall[i] > stall[i-1] {
			t.Errorf("stall fraction grew with depth: %v", stall)
		}
	}
	if stall[0] <= stall[len(stall)-1] {
		t.Errorf("deepest ring should stall less than no pipelining: %v", stall)
	}
}
