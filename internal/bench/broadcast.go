package bench

import (
	"bytes"
	"fmt"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:    "b1",
		Title: "Gateway-native multicast: broadcast fan-out vs unicast through the 2-gateway chain",
		Description: "One root broadcasts to N in {2..16} receivers spread over a Myrinet core and " +
			"a second SCI cluster, two gateways away. The unicast baseline sends one copy per " +
			"receiver, so the first gateway's ingress link carries the payload N times; the " +
			"multicast path sends once and the gateways replicate staged fragments onto their " +
			"distribution-tree branches, keeping ingress traffic independent of the fan-out.",
		Run: runB1,
	})
}

// b1Sizes covers both framings: 4 KB rides the compact single-transfer
// frame, 64 KB streams MTU-sized fragments through the replication
// pipeline.
var (
	b1Sizes   = []int{4 * kb, 64 * kb}
	b1Fanouts = []int{2, 4, 8, 16}
)

// b1Topo is the 2-gateway chain: the root cluster, a core network with its
// own members, and a leaf cluster behind the second gateway. Eight
// receivers per remote network cover the largest fan-out.
func b1Topo() *topo.Topology {
	b := topo.NewBuilder().
		Network("edge", "sci").
		Network("core", "myrinet").
		Network("leaf", "sci").
		Node("a0", "edge").
		Node("a1", "edge").
		Node("gw1", "edge", "core")
	for i := 0; i < 8; i++ {
		b = b.Node(fmt.Sprintf("c%d", i), "core")
	}
	b = b.Node("gw2", "core", "leaf")
	for i := 0; i < 8; i++ {
		b = b.Node(fmt.Sprintf("l%d", i), "leaf")
	}
	tp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// b1Dests spreads n receivers evenly over the core and leaf networks, so
// the fan-out exercises both gateways instead of queueing on one shared
// per-host bus.
func b1Dests(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n/2; i++ {
		out = append(out, fmt.Sprintf("c%d", i))
	}
	for i := 0; i < n-n/2; i++ {
		out = append(out, fmt.Sprintf("l%d", i))
	}
	return out
}

// b1Payload is message m's deterministic content; every receiver checks it
// byte for byte, so the goodput numbers are also a correctness proof.
func b1Payload(size, m int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(i*3 + m)
	}
	return p
}

type b1Out struct {
	MBps    float64 // aggregate goodput: n * size * count / makespan
	Ingress int64   // gw1 ingress bytes over the whole run
}

// runB1Stream drives count back-to-back broadcasts of the given size to n
// receivers — as one multicast per message, or as the unicast fan-out
// baseline — and measures aggregate goodput over the slowest receiver's
// makespan.
func runB1Stream(multicast bool, size, count, n int) b1Out {
	cb := newCustomBed(b1Topo(), fwd.DefaultConfig())
	dests := b1Dests(n)
	cb.sim.Spawn("b1:root", func(p *vtime.Proc) {
		for m := 0; m < count; m++ {
			payload := b1Payload(size, m)
			if multicast {
				px := cb.vc.At("a0").BeginMulticast(p, dests...)
				px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
				continue
			}
			for _, d := range dests {
				px := cb.vc.At("a0").BeginPacking(p, d)
				px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			}
		}
	})
	done := make([]vtime.Time, len(dests))
	for i, d := range dests {
		i, d := i, d
		cb.sim.Spawn("b1:recv:"+d, func(p *vtime.Proc) {
			buf := make([]byte, size)
			for m := 0; m < count; m++ {
				u := cb.vc.At(d).BeginUnpacking(p)
				u.Unpack(p, buf, mad.SendCheaper, mad.ReceiveCheaper)
				u.EndUnpacking(p)
				if !bytes.Equal(buf, b1Payload(size, m)) {
					panic(fmt.Sprintf("b1: %s received a corrupted copy of message %d", d, m))
				}
			}
			done[i] = p.Now()
		})
	}
	if err := cb.sim.Run(); err != nil {
		panic(err)
	}
	var makespan vtime.Time
	for _, t := range done {
		if t > makespan {
			makespan = t
		}
	}
	return b1Out{
		MBps:    mbps(n*size*count, vtime.Duration(makespan)),
		Ingress: cb.vc.Gateway("gw1").Bytes(),
	}
}

// b1Count picks the stream length for one message size: longer streams for
// the compact frames, fewer for the streaming elephants.
func b1Count(size int, quick bool) int {
	count := 64
	if size >= 16*kb {
		count = 16
	}
	if quick {
		count /= 4
	}
	return count
}

func runB1(o Options) *Result {
	r := &Result{
		ID:     "b1",
		Title:  "Broadcast goodput across the 2-gateway chain: gateway-native multicast vs unicast fan-out",
		Header: []string{"bytes", "receivers", "mcast MB/s", "unicast MB/s", "speedup", "mcast gw1 in", "unicast gw1 in"},
	}
	worst8 := 0.0
	ingressSpread := false
	for _, size := range b1Sizes {
		count := b1Count(size, o.Quick)
		var first int64 = -1
		for _, n := range b1Fanouts {
			mc := runB1Stream(true, size, count, n)
			uc := runB1Stream(false, size, count, n)
			speedup := mc.MBps / uc.MBps
			r.Table = append(r.Table, []string{
				fmt.Sprintf("%d", size),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", mc.MBps),
				fmt.Sprintf("%.2f", uc.MBps),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%d", mc.Ingress),
				fmt.Sprintf("%d", uc.Ingress),
			})
			if n >= 8 && (worst8 == 0 || speedup < worst8) {
				worst8 = speedup
			}
			if first < 0 {
				first = mc.Ingress
			} else if mc.Ingress != first {
				ingressSpread = true
			}
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("multicast vs unicast fan-out: worst speedup at >=8 receivers %.2fx (gate: >= 2x); "+
			"gateway ingress independent of receiver count: %v (gate: true)", worst8, !ingressSpread))
	if worst8 < 2.0 {
		r.Notes = append(r.Notes, fmt.Sprintf("WARNING: speedup %.2fx at >=8 receivers below the 2x gate", worst8))
	}
	if ingressSpread {
		r.Notes = append(r.Notes, "WARNING: gw1 ingress bytes vary with the receiver count — replication is leaking upstream")
	}
	return r
}
