package bench

import (
	"strings"
	"testing"
)

// TestB1McastGate is the CI gate for gateway-native multicast, and the
// tentpole's acceptance criteria verbatim: broadcast goodput must reach at
// least 2x the unicast fan-out at 8+ receivers on the 2-gateway chain,
// every receiver must get a byte-identical payload (runB1Stream panics
// otherwise), and the first gateway's ingress byte count must not depend on
// how many receivers sit behind it. The BENCH_b1.json archive `make bench`
// / `make b1-gate` produce comes from the identical deterministic run, so
// gating the numbers gates the archive.
func TestB1McastGate(t *testing.T) {
	for _, size := range b1Sizes {
		count := b1Count(size, false)
		var first int64 = -1
		for _, n := range b1Fanouts {
			mc := runB1Stream(true, size, count, n)
			if first < 0 {
				first = mc.Ingress
			} else if mc.Ingress != first {
				t.Errorf("%dB x %d receivers: gw1 ingress %d bytes, want %d regardless of fan-out",
					size, n, mc.Ingress, first)
			}
			if n < 8 {
				continue
			}
			uc := runB1Stream(false, size, count, n)
			if mc.MBps < 2.0*uc.MBps {
				t.Errorf("%dB x %d receivers: multicast %.2f MB/s is %.2fx unicast's %.2f MB/s, gate is 2x",
					size, n, mc.MBps, mc.MBps/uc.MBps, uc.MBps)
			}
		}
	}
}

// TestB1Experiment smoke-runs the registered experiment at quick settings
// and requires a WARNING-free result.
func TestB1Experiment(t *testing.T) {
	r := mustRun(t, "b1", quick)
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("b1 flagged: %s", note)
		}
	}
	if len(r.Table) != len(b1Sizes)*len(b1Fanouts) {
		t.Errorf("b1 table has %d rows, want %d", len(r.Table), len(b1Sizes)*len(b1Fanouts))
	}
}
