package bench

import (
	"fmt"

	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// KB and MB sizes used throughout the sweeps.
const kb = 1024

func msgSizes(o Options) []int {
	if o.Quick {
		return []int{16 * kb, 64 * kb, 256 * kb, 1024 * kb}
	}
	sizes := []int{}
	for n := 4 * kb; n <= 8*1024*kb; n *= 2 {
		sizes = append(sizes, n)
	}
	return sizes
}

func packetSizes(o Options) []int {
	if o.Quick {
		return []int{8 * kb, 32 * kb, 128 * kb}
	}
	return []int{8 * kb, 16 * kb, 32 * kb, 64 * kb, 128 * kb}
}

func mbps(bytes int, d vtime.Duration) float64 {
	return float64(bytes) / d.Seconds() / 1e6
}

func init() {
	register(&Experiment{
		ID:          "t1",
		Title:       "Raw network performance and the SCI/Myrinet crossover (§3.2.2)",
		Description: "Direct (no gateway) one-way bandwidth per network; SCI wins small messages, Myrinet large, both ≈40 MB/s at the 16 KB crossover that motivates the packet-size choice.",
		Run:         runT1,
	})
	register(&Experiment{
		ID:          "fig6",
		Title:       "SCI→Myrinet forwarding bandwidth vs message size (Figure 6)",
		Description: "One-way inter-cluster ping a1→b1 through the gateway, one curve per packet size 8–128 KB.",
		Run:         func(o Options) *Result { return runFig(o, "fig6", "a1", "b1") },
	})
	register(&Experiment{
		ID:          "fig7",
		Title:       "Myrinet→SCI forwarding bandwidth vs message size (Figure 7)",
		Description: "Same sweep in the direction where the gateway's DMA receives outrank its PIO sends on the PCI bus.",
		Run:         func(o Options) *Result { return runFig(o, "fig7", "b1", "a1") },
	})
	register(&Experiment{
		ID:          "t2",
		Title:       "Pipeline-period accounting at 8 KB packets (§3.3.1)",
		Description: "Steady-state gateway step times: the observed period exceeds the longer step by the per-switch software overhead (≈40 µs).",
		Run:         runT2,
	})
	register(&Experiment{
		ID:          "t3",
		Title:       "PCI-contention stretch of the SCI send step (§3.4.1)",
		Description: "rdtsc-style instrumentation: a 16 KB SCI send on the gateway stretches well beyond its nominal duration while Myrinet DMA receives are in flight.",
		Run:         runT3,
	})
	register(&Experiment{
		ID:          "fig5",
		Title:       "Gateway pipeline timeline, SCI→Myrinet (Figure 5)",
		Description: "ASCII rendering of the double-buffer pipeline: receive of packet k+1 overlaps the send of packet k.",
		Run:         func(o Options) *Result { return runTimeline(o, "fig5", "a1", "b1") },
	})
	register(&Experiment{
		ID:          "fig8",
		Title:       "Gateway pipeline timeline, Myrinet→SCI (Figure 8)",
		Description: "The pathological direction: PCI conflicts elongate the send steps and the pipeline degenerates.",
		Run:         func(o Options) *Result { return runTimeline(o, "fig8", "b1", "a1") },
	})
	register(&Experiment{
		ID:          "headline",
		Title:       "Headline: peak inter-cluster bandwidth vs the PCI ceiling (§1, T4)",
		Description: "Best SCI→Myrinet configuration against the 66 MB/s theoretical one-way maximum of a 33 MHz/32-bit PCI bus.",
		Run:         runHeadline,
	})
	register(&Experiment{
		ID:          "a1",
		Title:       "Ablation: integrated forwarding vs application-level relays (§2.2.1)",
		Description: "GTM pipeline vs Nexus-style store-and-forward on the fast networks vs PACX-style TCP inter-cluster relaying.",
		Run:         runA1,
	})
	register(&Experiment{
		ID:          "a2",
		Title:       "Ablation: packet-size (MTU) sweep (§3.2.2)",
		Description: "Asymptotic forwarding bandwidth as a function of the GTM packet size, both directions.",
		Run:         runA2,
	})
	register(&Experiment{
		ID:          "a3",
		Title:       "Ablation: pipelining and zero-copy (§2.2.2, §2.3)",
		Description: "Single-buffer (no pipelining) and copy-always gateways against the full mechanism.",
		Run:         runA3,
	})
	register(&Experiment{
		ID:          "a4",
		Title:       "Ablation: gateway inflow regulation (§4 future work)",
		Description: "Throttling the gateway's receive loop in the Myrinet→SCI direction; packet spacing alone does not recover the PIO bandwidth lost to DMA priority.",
		Run:         runA4,
	})
	register(&Experiment{
		ID:          "a6",
		Title:       "Future work implemented: SCI DMA-engine sends on the gateway (§3.4.1/§4)",
		Description: "The paper's proposed workaround for the PCI conflict: send over SCI with the board's DMA engine instead of PIO, trading raw engine speed for immunity to DMA-over-PIO demotion.",
		Run:         runA6,
	})
	register(&Experiment{
		ID:          "a7",
		Title:       "Ablation: scatter/gather aggregation (§2.1.1)",
		Description: "Grouping small blocks with gather-DMA descriptors vs host-copy aggregation, on a message of many small blocks over Myrinet.",
		Run:         runA7,
	})
	register(&Experiment{
		ID:          "a5",
		Title:       "Ablation: static-buffer (SBP) egress zero-copy election (§2.3)",
		Description: "Receiving into the egress driver's static buffers vs forcing copies, with gateway copy accounting.",
		Run:         runA5,
	})
}

func runT1(o Options) *Result {
	sizes := []int{64, 256, 1 * kb, 4 * kb, 16 * kb, 64 * kb, 256 * kb, 1024 * kb, 4096 * kb}
	if o.Quick {
		sizes = []int{256, 4 * kb, 16 * kb, 256 * kb, 1024 * kb}
	}
	r := &Result{
		ID: "t1", Title: "raw one-way bandwidth per network",
		XLabel: "message", YLabel: "MB/s",
	}
	for _, proto := range []string{"sci", "myrinet", "ethernet"} {
		times := NewRawPair(proto).OneWaySeries(sizes)
		s := Series{Name: proto}
		for i, n := range sizes {
			s.Points = append(s.Points, Point{X: float64(n), Y: mbps(n, times[i])})
		}
		r.Series = append(r.Series, s)
	}
	// The crossover note.
	cross := NewRawPair("sci").OneWaySeries([]int{16 * kb})
	crossM := NewRawPair("myrinet").OneWaySeries([]int{16 * kb})
	r.Notes = append(r.Notes, fmt.Sprintf(
		"at 16 KB: SCI %.1f MB/s (one-way %v), Myrinet %.1f MB/s (one-way %v) — the §3.2.2 crossover",
		mbps(16*kb, cross[0]), cross[0], mbps(16*kb, crossM[0]), crossM[0]))
	return r
}

func runFig(o Options, id, src, dst string) *Result {
	r := &Result{
		ID: id, Title: fmt.Sprintf("forwarding bandwidth %s→%s", src, dst),
		XLabel: "message", YLabel: "MB/s",
	}
	for _, pkt := range packetSizes(o) {
		cfg := fwd.DefaultConfig()
		cfg.MTU = pkt
		tb := NewTestbed(cfg)
		sizes := []int{}
		for _, n := range msgSizes(o) {
			if n >= pkt {
				sizes = append(sizes, n)
			}
		}
		res := tb.PingSeries(src, dst, sizes)
		s := Series{Name: fmt.Sprintf("paquet=%dKB", pkt/kb)}
		for _, m := range res {
			s.Points = append(s.Points, Point{X: float64(m.Bytes), Y: m.MBps()})
		}
		r.Series = append(r.Series, s)
	}
	return r
}

func runT2(o Options) *Result {
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.MTU = 8 * kb
	cfg.Tracer = tr
	tb := NewTestbed(cfg)
	n := 4096 * kb
	if o.Quick {
		n = 1024 * kb
	}
	tb.Stream("a1", "b1", n)

	recvMean, _ := tr.SteadyMean("gw:recv:sci0", "recv", 4, 4)
	sendMean, _ := tr.SteadyMean("gw:send:myri0", "send", 4, 4)
	periods := tr.Periods("gw:recv:sci0", "recv")
	var period vtime.Duration
	if len(periods) > 8 {
		for _, p := range periods[4 : len(periods)-4] {
			period += p
		}
		period /= vtime.Duration(len(periods) - 8)
	}
	longer := recvMean
	if sendMean > longer {
		longer = sendMean
	}
	overhead := period - longer
	r := &Result{
		ID: "t2", Title: "pipeline period accounting, 8 KB packets, SCI→Myrinet",
		Header: []string{"quantity", "value"},
		Table: [][]string{
			{"steady receive step (SCI)", recvMean.String()},
			{"steady send step (Myrinet)", sendMean.String()},
			{"observed pipeline period", period.String()},
			{"period - max(step)", overhead.String()},
			{"resulting bandwidth", fmt.Sprintf("%.1f MB/s", mbps(8*kb, period))},
		},
	}
	r.Notes = append(r.Notes,
		"the residual matches the per-switch software overhead the paper estimates at ≈40 µs")
	return r
}

func runT3(o Options) *Result {
	n := 4096 * kb
	if o.Quick {
		n = 1024 * kb
	}
	// Stretched: the real gateway, Myrinet→SCI.
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.MTU = 16 * kb
	cfg.Tracer = tr
	NewTestbed(cfg).Stream("b1", "a1", n)
	stretched, _ := tr.SteadyMean("gw:recv:myri0", "recv", 4, 4)
	stretchedSend, _ := tr.SteadyMean("gw:send:sci0", "send", 4, 4)

	// Nominal: the same SCI send with no concurrent Myrinet DMA —
	// SCI→Myrinet direction, read the SCI *receive* at the gateway and a
	// raw SCI transfer for the uncontended send.
	raw := NewRawPair("sci").OneWaySeries([]int{16 * kb})
	r := &Result{
		ID: "t3", Title: "SCI send step under concurrent Myrinet DMA, 16 KB packets",
		Header: []string{"quantity", "value"},
		Table: [][]string{
			{"nominal 16 KB SCI transfer (uncontended)", raw[0].String()},
			{"gateway SCI send step under DMA", stretchedSend.String()},
			{"gateway Myrinet receive step (for reference)", stretched.String()},
			{"stretch factor", fmt.Sprintf("%.2f×", float64(stretchedSend)/float64(raw[0]))},
		},
	}
	r.Notes = append(r.Notes,
		"DMA PCI transactions initiated by the Myrinet card outrank the processor's PIO transactions: the send is roughly halved while a receive is in flight (§3.4.1)")
	return r
}

func runTimeline(o Options, id, src, dst string) *Result {
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.MTU = 32 * kb
	cfg.Tracer = tr
	tb := NewTestbed(cfg)
	total := tb.Stream(src, dst, 256*kb)
	r := &Result{ID: id, Title: fmt.Sprintf("gateway pipeline timeline %s→%s (256 KB message, 32 KB packets)", src, dst)}
	r.Notes = append(r.Notes, "\n"+tb.Tracer.Timeline(0, vtime.Time(total), 100))
	for _, s := range tr.Spans() {
		r.Notes = append(r.Notes, s.String())
	}
	return r
}

func runHeadline(o Options) *Result {
	cfg := fwd.DefaultConfig()
	cfg.MTU = 128 * kb
	tb := NewTestbed(cfg)
	n := 8192 * kb
	if o.Quick {
		n = 2048 * kb
	}
	res := tb.PingSeries("a1", "b1", []int{n})
	peak := res[0].MBps()
	// The honest yardstick: what a DIRECT link on the same model delivers.
	direct := NewRawPair("myrinet").OneWaySeries([]int{n})
	directBW := mbps(n, direct[0])
	r := &Result{
		ID: "headline", Title: "peak inter-cluster bandwidth",
		Header: []string{"quantity", "value"},
		Table: [][]string{
			{"message size", fmt.Sprintf("%d KB", n/kb)},
			{"packet size", "128 KB"},
			{"observed SCI→Myrinet bandwidth", fmt.Sprintf("%.1f MB/s", peak)},
			{"direct Myrinet bandwidth (no gateway)", fmt.Sprintf("%.1f MB/s", directBW)},
			{"forwarding efficiency vs direct", fmt.Sprintf("%.0f%%", 100*peak/directBW)},
			{"theoretical 33 MHz/32-bit PCI one-way maximum", "66 MB/s"},
			{"fraction of the ceiling", fmt.Sprintf("%.0f%%", 100*peak/66)},
		},
	}
	r.Notes = append(r.Notes,
		"\"the observed inter-cluster bandwidth is close to the one that can be delivered by the hardware\" — the abstract's claim, quantified")
	return r
}

func runA1(o Options) *Result {
	sizes := msgSizes(o)
	r := &Result{
		ID: "a1", Title: "integrated forwarding vs application-level relays, a1→b1",
		XLabel: "message", YLabel: "MB/s",
	}
	// Integrated GTM pipeline.
	tb := NewTestbed(fwd.DefaultConfig())
	gtm := Series{Name: "madeleine-gtm"}
	for _, m := range tb.PingSeries("a1", "b1", sizes) {
		gtm.Points = append(gtm.Points, Point{X: float64(m.Bytes), Y: m.MBps()})
	}
	r.Series = append(r.Series, gtm)
	// Nexus-style app-level store-and-forward.
	for _, mode := range []struct {
		name string
		pacx bool
	}{{"app-level", false}, {"pacx-tcp", true}} {
		bb := NewBaselineBed(mode.pacx)
		times := bb.OneWaySeries("a1", "b1", sizes)
		s := Series{Name: mode.name}
		for i, n := range sizes {
			s.Points = append(s.Points, Point{X: float64(n), Y: mbps(n, times[i])})
		}
		r.Series = append(r.Series, s)
	}
	return r
}

func runA2(o Options) *Result {
	n := 2048 * kb
	mtus := []int{2 * kb, 4 * kb, 8 * kb, 16 * kb, 32 * kb, 64 * kb, 128 * kb, 256 * kb}
	if o.Quick {
		n = 512 * kb
		mtus = []int{4 * kb, 16 * kb, 64 * kb, 256 * kb}
	}
	r := &Result{
		ID: "a2", Title: fmt.Sprintf("packet-size sweep at %d KB messages", n/kb),
		XLabel: "paquet", YLabel: "MB/s",
	}
	for _, dir := range []struct {
		name     string
		src, dst string
	}{{"sci→myrinet", "a1", "b1"}, {"myrinet→sci", "b1", "a1"}} {
		s := Series{Name: dir.name}
		for _, mtu := range mtus {
			cfg := fwd.DefaultConfig()
			cfg.MTU = mtu
			tb := NewTestbed(cfg)
			res := tb.PingSeries(dir.src, dir.dst, []int{n})
			s.Points = append(s.Points, Point{X: float64(mtu), Y: res[0].MBps()})
		}
		r.Series = append(r.Series, s)
	}
	return r
}

func runA3(o Options) *Result {
	n := 2048 * kb
	if o.Quick {
		n = 512 * kb
	}
	measure := func(cfg fwd.Config) float64 {
		tb := NewTestbed(cfg)
		res := tb.PingSeries("a1", "b1", []int{n})
		return res[0].MBps()
	}
	base := fwd.DefaultConfig()
	noPipe := base
	noPipe.PipelineDepth = 1
	deep := base
	deep.PipelineDepth = 4
	noZC := base
	noZC.ZeroCopy = false
	r := &Result{
		ID: "a3", Title: fmt.Sprintf("pipeline/zero-copy ablation, %d KB messages, 32 KB packets, SCI→Myrinet", n/kb),
		Header: []string{"configuration", "MB/s"},
		Table: [][]string{
			{"full mechanism (2 buffers, zero-copy)", fmt.Sprintf("%.1f", measure(base))},
			{"no pipelining (1 buffer)", fmt.Sprintf("%.1f", measure(noPipe))},
			{"deeper pipeline (4 buffers)", fmt.Sprintf("%.1f", measure(deep))},
			{"copy-always gateway", fmt.Sprintf("%.1f", measure(noZC))},
		},
	}
	return r
}

func runA4(o Options) *Result {
	n := 2048 * kb
	if o.Quick {
		n = 512 * kb
	}
	r := &Result{
		ID: "a4", Title: fmt.Sprintf("gateway inflow regulation, Myrinet→SCI, %d KB messages", n/kb),
		Header: []string{"inflow limit", "MB/s"},
	}
	limits := []float64{0, 45e6, 40e6, 35e6, 30e6, 25e6, 20e6}
	if o.Quick {
		limits = []float64{0, 35e6, 20e6}
	}
	for _, lim := range limits {
		cfg := fwd.DefaultConfig()
		cfg.InflowLimit = lim
		tb := NewTestbed(cfg)
		res := tb.PingSeries("b1", "a1", []int{n})
		label := "off"
		if lim > 0 {
			label = fmt.Sprintf("%.0f MB/s", lim/1e6)
		}
		r.Table = append(r.Table, []string{label, fmt.Sprintf("%.1f", res[0].MBps())})
	}
	r.Notes = append(r.Notes,
		"spacing packets does not recover the PIO bandwidth: the interference is per-transaction DMA priority, not aggregate load — the regulation the paper calls for must act at the bus level")
	return r
}

func runA6(o Options) *Result {
	sizes := msgSizes(o)
	r := &Result{
		ID: "a6", Title: "Myrinet→SCI forwarding: PIO vs DMA-engine SCI sends, 32 KB packets",
		XLabel: "message", YLabel: "MB/s",
	}
	for _, mode := range []struct {
		name string
		drv  mad.Driver
	}{
		{"sci-pio (default)", nil},
		{"sci-dma (workaround)", sisci.NewDMA()},
	} {
		cfg := fwd.DefaultConfig()
		var tb *Testbed
		if mode.drv == nil {
			tb = NewTestbed(cfg)
		} else {
			tb = NewTestbedDrivers(cfg, map[string]mad.Driver{"sci": mode.drv})
		}
		s := Series{Name: mode.name}
		for _, m := range tb.PingSeries("b1", "a1", sizes) {
			s.Points = append(s.Points, Point{X: float64(m.Bytes), Y: m.MBps()})
		}
		r.Series = append(r.Series, s)
	}
	r.Notes = append(r.Notes,
		"in isolation the DMA engine is the slower SCI send path (t1 anchors: 35 vs 44 MB/s), but on a gateway it escapes the DMA-over-PIO demotion — the trade the paper proposes to investigate")
	return r
}

// capsDriver overrides a driver's capabilities (used to switch the
// scatter/gather BMM off).
type capsDriver struct {
	mad.Driver
	caps mad.Caps
}

func (d capsDriver) Caps() mad.Caps { return d.caps }

func runA7(o Options) *Result {
	blocks := 512
	blockSize := 512
	if o.Quick {
		blocks = 128
	}
	measure := func(sg bool) (vtime.Duration, int64) {
		sim := vtime.New()
		pl := hw.NewPlatform(sim)
		sess := mad.NewSession(pl)
		a := sess.AddNode("a")
		b := sess.AddNode("b")
		base := bip.New()
		caps := base.Caps()
		caps.ScatterGather = sg
		var drv mad.Driver = capsDriver{Driver: base, caps: caps}
		ch := sess.NewChannel("c", pl.NewNetwork("m", base.NIC()), drv, a, b)
		var done vtime.Time
		sim.Spawn("s", func(p *vtime.Proc) {
			px := ch.At(a).BeginPacking(p, b.Rank)
			for i := 0; i < blocks; i++ {
				px.Pack(p, make([]byte, blockSize), mad.SendCheaper, mad.ReceiveCheaper)
			}
			px.EndPacking(p)
		})
		sim.Spawn("r", func(p *vtime.Proc) {
			u := ch.At(b).BeginUnpacking(p)
			for i := 0; i < blocks; i++ {
				u.Unpack(p, make([]byte, blockSize), mad.SendCheaper, mad.ReceiveCheaper)
			}
			u.EndUnpacking(p)
			done = p.Now()
		})
		if err := sim.Run(); err != nil {
			panic(err)
		}
		return vtime.Duration(done), a.Host.BytesCopied()
	}
	sgTime, sgCopied := measure(true)
	cpTime, cpCopied := measure(false)
	total := blocks * blockSize
	r := &Result{
		ID: "a7", Title: fmt.Sprintf("scatter/gather aggregation, %d × %d B blocks over Myrinet", blocks, blockSize),
		Header: []string{"configuration", "one-way", "MB/s", "sender bytes copied"},
		Table: [][]string{
			{"gather-DMA descriptors", sgTime.String(), fmt.Sprintf("%.1f", mbps(total, sgTime)), fmt.Sprintf("%d", sgCopied)},
			{"host-copy aggregation", cpTime.String(), fmt.Sprintf("%.1f", mbps(total, cpTime)), fmt.Sprintf("%d", cpCopied)},
		},
	}
	r.Notes = append(r.Notes,
		"both coalesce identically on the wire; gather descriptors free the sending CPU — §2.1.1's reason for per-TM buffer-management modules")
	return r
}

func runA5(o Options) *Result {
	n := 1024 * kb
	if o.Quick {
		n = 256 * kb
	}
	measure := func(zeroCopy bool) (float64, int64) {
		tpb, err := topoSBP()
		if err != nil {
			panic(err)
		}
		cfg := fwd.DefaultConfig()
		cfg.ZeroCopy = zeroCopy
		w := newCustomBed(tpb, cfg)
		d := w.stream("a", "b", n)
		return mbps(n, d), w.sess.NodeByName("g").Host.BytesCopied()
	}
	zcBW, zcCopies := measure(true)
	cpBW, cpCopies := measure(false)
	r := &Result{
		ID: "a5", Title: fmt.Sprintf("SBP (static-buffer) egress, %d KB messages, Myrinet ingress", n/kb),
		Header: []string{"configuration", "MB/s", "gateway bytes copied"},
		Table: [][]string{
			{"zero-copy election (recv into egress static buffers)", fmt.Sprintf("%.1f", zcBW), fmt.Sprintf("%d", zcCopies)},
			{"copy-always", fmt.Sprintf("%.1f", cpBW), fmt.Sprintf("%d", cpCopies)},
		},
	}
	r.Notes = append(r.Notes, "the election avoids the staging copy entirely; only a static→static bridge would keep one unavoidable copy (§2.3)")
	return r
}
