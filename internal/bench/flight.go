package bench

import (
	"fmt"
	"time"

	"madgo/internal/flight"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:    "o2",
		Title: "flight-recorder overhead and the §3.4.1 swap-bound verdict",
		Description: "Repeats the p1 stream (Myrinet→SCI, 128 KB packets) with the " +
			"flight recorder armed and disarmed at pipeline depths 1 and 8. The recorder " +
			"must not perturb the simulation (identical virtual goodput — the <5% budget " +
			"holds with margin zero), and its critical-path analyzer must call the depth-1 " +
			"run swap-overhead-bound and clear the depth-8 run, reproducing the paper's " +
			"diagnosis from recorded events alone.",
		Run: runO2,
	})
}

// flightRun is one instrumented stream: virtual goodput, the wall-clock
// cost of simulating it, and (when the recorder was armed) the
// critical-path diagnosis derived from its events.
type flightRun struct {
	MBps   float64
	Wall   time.Duration
	Events int
	Diag   flight.Diagnosis
}

// runFlightStream streams one n-byte message Myrinet→SCI through the paper
// testbed at the given pipeline depth and packet size, with the flight
// recorder armed or not. It mirrors observedStream but builds by hand so
// the recorder is in place before the first instrumented layer runs.
func runFlightStream(depth, pkt, n int, record bool) flightRun {
	tp := topo.PaperTestbed()
	hs, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		panic(err)
	}
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	m := obs.New()
	pl.SetMetrics(m)
	var rec *flight.Recorder
	if record {
		rec = flight.NewRecorder(0)
		pl.SetFlight(rec)
	}
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range hs.Networks() {
		drv := driverFor(nw.Protocol)
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	cfg := fwd.DefaultConfig()
	cfg.MTU = pkt
	cfg.PipelineDepth = depth
	vc, err := fwd.Build(sess, hs, bindings, cfg)
	if err != nil {
		panic(err)
	}
	var done vtime.Time
	sim.Spawn("stream", func(p *vtime.Proc) {
		px := vc.At("b1").BeginPacking(p, "a1")
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("drain", func(p *vtime.Proc) {
		u := vc.At("a1").BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	wall0 := time.Now()
	if err := sim.Run(); err != nil {
		panic(err)
	}
	out := flightRun{MBps: mbps(n, vtime.Duration(done)), Wall: time.Since(wall0)}
	if record {
		events := rec.Events()
		out.Events = len(events)
		byMsg := flight.IndexByMessage(events)
		var budgets []flight.Budget
		for _, id := range m.Messages() {
			budgets = append(budgets, flight.AnalyzeMessage(id, m.MessageTrace(id), byMsg[id]))
		}
		out.Diag = flight.Diagnose(budgets, events, vc.DiagnosisSignals())
	}
	return out
}

func runO2(o Options) *Result {
	msg := 2048 * kb
	if o.Quick {
		msg = 512 * kb
	}
	const pkt = 128 * kb

	r := &Result{
		ID:     "o2",
		Title:  fmt.Sprintf("flight-recorder overhead, %d KB messages, 128 KB packets, Myrinet→SCI", msg/kb),
		Header: []string{"depth", "MB/s recorder off", "MB/s recorder on", "goodput ratio", "events", "swap-bound?"},
	}
	for _, depth := range []int{1, 8} {
		off := runFlightStream(depth, pkt, msg, false)
		on := runFlightStream(depth, pkt, msg, true)
		ratio := on.MBps / off.MBps
		verdict := "no"
		if on.Diag.Has(flight.CodeSwapBound) {
			verdict = "yes"
		}
		r.Table = append(r.Table, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.1f", off.MBps),
			fmt.Sprintf("%.1f", on.MBps),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", on.Events),
			verdict,
		})
		if ratio < 0.95 {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"WARNING: depth %d goodput with the recorder on is %.3fx the disarmed run; the budget is 0.95", depth, ratio))
		}
		if wallRatio := on.Wall.Seconds() / off.Wall.Seconds(); wallRatio > 0 {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"depth %d wall-clock: %.2fms disarmed, %.2fms armed (%d events recorded)",
				depth, off.Wall.Seconds()*1e3, on.Wall.Seconds()*1e3, on.Events))
		}
	}
	r.Notes = append(r.Notes,
		"the recorder writes fixed-size events into preallocated per-node rings (zero allocations, no virtual-time cost), so armed and disarmed goodput are identical by construction and the <5% budget holds with margin zero;",
		"the depth-1 verdict is the paper's §3.4.1 pathology: the receive thread waits out a full send+swap cycle per packet, so mean stall ≈ mean send + mean swap and the analyzer calls the run swap-overhead-bound;",
		"at depth 8 the ring absorbs the swap bubbles, stall time decouples from the send+swap cycle, and the verdict clears")
	return r
}
