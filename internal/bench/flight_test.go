package bench

import (
	"strings"
	"testing"

	"madgo/internal/flight"
)

// TestO2FlightGate is the CI gate for the flight recorder: arming it must
// not perturb the simulation (goodput ratio within the 5% budget — in fact
// identical, since recording costs no virtual time), the depth-1 run must
// be diagnosed swap-overhead-bound (§3.4.1), and the depth-8 run must
// clear that verdict. The BENCH_o2.json archive `make o2-gate` produces
// comes from the identical deterministic runs, so gating the numbers gates
// the archive.
func TestO2FlightGate(t *testing.T) {
	const msg, pkt = 512 * kb, 128 * kb

	off1 := runFlightStream(1, pkt, msg, false)
	on1 := runFlightStream(1, pkt, msg, true)
	if ratio := on1.MBps / off1.MBps; ratio < 0.95 {
		t.Errorf("depth-1 goodput with recorder on is %.3fx the disarmed run, budget is 0.95", ratio)
	}
	if on1.MBps != off1.MBps {
		t.Errorf("recorder perturbed the simulation: %.3f MB/s armed vs %.3f disarmed", on1.MBps, off1.MBps)
	}
	if on1.Events == 0 {
		t.Fatal("armed depth-1 run recorded no flight events")
	}
	if !on1.Diag.Has(flight.CodeSwapBound) {
		t.Errorf("depth-1 run not diagnosed swap-overhead-bound: %+v", on1.Diag.Findings)
	}

	off8 := runFlightStream(8, pkt, msg, false)
	on8 := runFlightStream(8, pkt, msg, true)
	if ratio := on8.MBps / off8.MBps; ratio < 0.95 {
		t.Errorf("depth-8 goodput with recorder on is %.3fx the disarmed run, budget is 0.95", ratio)
	}
	if on8.Diag.Has(flight.CodeSwapBound) {
		t.Errorf("depth-8 run still diagnosed swap-overhead-bound: %+v", on8.Diag.Findings)
	}

	// The cure must also be visible as performance, not just as a verdict.
	if on8.MBps <= on1.MBps {
		t.Errorf("deepening the pipeline did not raise goodput: %.1f MB/s at depth 8 vs %.1f at depth 1",
			on8.MBps, on1.MBps)
	}
}

// TestO2Experiment smoke-runs the registered experiment and requires a
// WARNING-free result at quick settings with both verdict rows present.
func TestO2Experiment(t *testing.T) {
	r := mustRun(t, "o2", quick)
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("o2 flagged: %s", note)
		}
	}
	if len(r.Table) != 2 {
		t.Fatalf("o2 table has %d rows, want 2 depths", len(r.Table))
	}
	if got := r.Table[0][5]; got != "yes" {
		t.Errorf("depth-1 swap-bound verdict = %q, want \"yes\"", got)
	}
	if got := r.Table[1][5]; got != "no" {
		t.Errorf("depth-8 swap-bound verdict = %q, want \"no\"", got)
	}
}
