package bench

import (
	"fmt"

	"madgo/internal/flow"
	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:          "c1",
		Title:       "Credit-based gateway fairness under a 64-sender incast",
		Description: "64 senders (8 large-message 'elephants', 56 small-message 'mice', equal byte totals) funnel through one gateway; per-sender goodput Jain fairness and aggregate goodput, FIFO relay vs credit-window + DRR flow control, against the serialized single-sender ceiling.",
		Run:         runC1,
	})
}

// c1Workload fixes the incast shape: every sender moves the same byte
// total, but elephants move it as few large messages and mice as many small
// ones. A FIFO relay loop is message-fair, so byte service becomes
// proportional to message size — the unfairness the credit + DRR scheduler
// exists to remove.
type c1Workload struct {
	Senders   int
	Elephants int
	EleMsg    int // elephant message bytes
	EleCount  int // messages per elephant
	MouseMsg  int // mouse message bytes
	MouseCnt  int // messages per mouse
}

func c1Full() c1Workload {
	return c1Workload{Senders: 64, Elephants: 8, EleMsg: 256 * kb, EleCount: 2, MouseMsg: 16 * kb, MouseCnt: 32}
}

func c1Quick() c1Workload {
	return c1Workload{Senders: 12, Elephants: 2, EleMsg: 128 * kb, EleCount: 4, MouseMsg: 16 * kb, MouseCnt: 32}
}

func (wl c1Workload) perSender() int { return wl.EleMsg * wl.EleCount } // == MouseMsg*MouseCnt

func (wl c1Workload) total() int { return wl.Senders * wl.perSender() }

func (wl c1Workload) name(i int) string {
	if i < wl.Elephants {
		return fmt.Sprintf("e%d", i)
	}
	return fmt.Sprintf("m%d", i-wl.Elephants)
}

func (wl c1Workload) msgSize(name string) (size, count int) {
	if name[0] == 'e' {
		return wl.EleMsg, wl.EleCount
	}
	return wl.MouseMsg, wl.MouseCnt
}

// c1Topo is the incast star: all senders on one edge network, one gateway,
// the sink alone on the core network behind it.
func (wl c1Workload) topo() *topo.Topology {
	b := topo.NewBuilder().Network("edge", "sci").Network("core", "myrinet")
	for i := 0; i < wl.Senders; i++ {
		b.Node(wl.name(i), "edge")
	}
	b.Node("gw", "edge", "core").Node("sink", "core")
	tp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// c1Out is one incast run's outcome.
type c1Out struct {
	Jain     float64
	AggMBps  float64
	MinMBps  float64
	MaxMBps  float64
	Makespan vtime.Duration
	Stats    fwd.FlowStats
}

// runIncast drives the full workload concurrently and measures per-sender
// goodput as each sender's byte total over its own completion time at the
// sink (equal totals, so the Jain index over goodputs isolates service-rate
// fairness from demand).
func runIncast(wl c1Workload, flowOn bool) c1Out {
	cfg := fwd.DefaultConfig()
	cfg.FlowControl = flowOn
	cb := newCustomBed(wl.topo(), cfg)
	for i := 0; i < wl.Senders; i++ {
		name := wl.name(i)
		size, count := wl.msgSize(name)
		cb.sim.Spawn("incast:"+name, func(p *vtime.Proc) {
			payload := make([]byte, size)
			for m := 0; m < count; m++ {
				px := cb.vc.At(name).BeginPacking(p, "sink")
				px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			}
		})
	}
	left := make(map[string]int, wl.Senders)
	doneAt := make(map[string]vtime.Time, wl.Senders)
	totalMsgs := 0
	for i := 0; i < wl.Senders; i++ {
		_, count := wl.msgSize(wl.name(i))
		left[wl.name(i)] = count
		totalMsgs += count
	}
	cb.sim.Spawn("incast:sink", func(p *vtime.Proc) {
		for i := 0; i < totalMsgs; i++ {
			u := cb.vc.At("sink").BeginUnpacking(p)
			from := cb.sess.Node(u.From()).Name
			size, _ := wl.msgSize(from)
			u.Unpack(p, make([]byte, size), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			left[from]--
			if left[from] == 0 {
				doneAt[from] = p.Now()
			}
		}
	})
	if err := cb.sim.Run(); err != nil {
		panic(err)
	}
	goodputs := make([]float64, 0, wl.Senders)
	out := c1Out{MinMBps: -1}
	for i := 0; i < wl.Senders; i++ {
		name := wl.name(i)
		t, ok := doneAt[name]
		if !ok {
			panic("bench: sender " + name + " never completed")
		}
		g := mbps(wl.perSender(), vtime.Duration(t))
		goodputs = append(goodputs, g)
		if out.MinMBps < 0 || g < out.MinMBps {
			out.MinMBps = g
		}
		if g > out.MaxMBps {
			out.MaxMBps = g
		}
		if vtime.Duration(t) > out.Makespan {
			out.Makespan = vtime.Duration(t)
		}
	}
	out.Jain = flow.Jain(goodputs)
	out.AggMBps = mbps(wl.total(), out.Makespan)
	out.Stats = cb.vc.FlowStats()
	return out
}

// incastCeiling serializes the identical message mix through one sender —
// the gateway-limited upper bound an ideally scheduled incast can reach.
// Per-message overheads are included, so aggregate/ceiling measures pure
// contention loss.
func incastCeiling(wl c1Workload) float64 {
	one := wl
	one.Senders = 1
	one.Elephants = 1
	cb := newCustomBed(one.topo(), fwd.DefaultConfig())
	var done vtime.Time
	cb.sim.Spawn("ceiling:send", func(p *vtime.Proc) {
		send := func(size, count int) {
			payload := make([]byte, size)
			for m := 0; m < count; m++ {
				px := cb.vc.At("e0").BeginPacking(p, "sink")
				px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			}
		}
		send(wl.EleMsg, wl.EleCount*wl.Elephants)
		send(wl.MouseMsg, wl.MouseCnt*(wl.Senders-wl.Elephants))
	})
	cb.sim.Spawn("ceiling:sink", func(p *vtime.Proc) {
		for i := 0; i < wl.EleCount*wl.Elephants; i++ {
			u := cb.vc.At("sink").BeginUnpacking(p)
			u.Unpack(p, make([]byte, wl.EleMsg), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		}
		for i := 0; i < wl.MouseCnt*(wl.Senders-wl.Elephants); i++ {
			u := cb.vc.At("sink").BeginUnpacking(p)
			u.Unpack(p, make([]byte, wl.MouseMsg), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		}
		done = p.Now()
	})
	if err := cb.sim.Run(); err != nil {
		panic(err)
	}
	return mbps(wl.total(), vtime.Duration(done))
}

func runC1(o Options) *Result {
	wl := c1Full()
	if o.Quick {
		wl = c1Quick()
	}
	base := runIncast(wl, false)
	fair := runIncast(wl, true)
	ceiling := incastCeiling(wl)
	r := &Result{
		ID: "c1", Title: fmt.Sprintf(
			"%d-sender incast through one gateway (%d elephants x %dx%dKB, %d mice x %dx%dKB)",
			wl.Senders, wl.Elephants, wl.EleCount, wl.EleMsg/kb,
			wl.Senders-wl.Elephants, wl.MouseCnt, wl.MouseMsg/kb),
		Header: []string{"run", "Jain", "agg MB/s", "min MB/s", "max MB/s", "stalls", "rounds"},
		Table: [][]string{
			{"fifo", fmt.Sprintf("%.3f", base.Jain), fmt.Sprintf("%.1f", base.AggMBps),
				fmt.Sprintf("%.2f", base.MinMBps), fmt.Sprintf("%.2f", base.MaxMBps), "0", "0"},
			{"flow", fmt.Sprintf("%.3f", fair.Jain), fmt.Sprintf("%.1f", fair.AggMBps),
				fmt.Sprintf("%.2f", fair.MinMBps), fmt.Sprintf("%.2f", fair.MaxMBps),
				fmt.Sprintf("%d", fair.Stats.Stalls), fmt.Sprintf("%d", fair.Stats.SchedRounds)},
			{"ceiling", "", fmt.Sprintf("%.1f", ceiling), "", "", "", ""},
		},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("fifo Jain %.3f vs flow Jain %.3f (gates: <= 0.80 and >= 0.90)", base.Jain, fair.Jain),
		fmt.Sprintf("flow aggregate %.1f MB/s = %.3fx the serialized ceiling %.1f MB/s (gate: >= 0.95x)",
			fair.AggMBps, fair.AggMBps/ceiling, ceiling))
	if fair.Jain < 0.90 {
		r.Notes = append(r.Notes, fmt.Sprintf("WARNING: flow-controlled Jain %.3f below 0.90", fair.Jain))
	}
	if base.Jain > 0.80 {
		r.Notes = append(r.Notes, fmt.Sprintf("WARNING: FIFO baseline Jain %.3f not measurably unfair", base.Jain))
	}
	if fair.AggMBps < 0.95*ceiling {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"WARNING: fairness cost %.1f%% of aggregate goodput", 100*(1-fair.AggMBps/ceiling)))
	}
	return r
}
