package bench

import (
	"strings"
	"testing"
)

// TestC1FlowGate is the CI gate for credit-based gateway flow control
// under the many-senders incast: with 64 senders of equal byte totals but
// heterogeneous message sizes funnelling through one gateway,
//
//   - the FIFO baseline must be measurably unfair (Jain <= 0.80: a FIFO
//     relay loop is message-fair, so byte service grows with message size),
//   - the credit + DRR scheduler must equalize per-sender goodput
//     (Jain >= 0.90),
//   - and fairness must not tax throughput: aggregate goodput stays within
//     5% of the serialized single-sender ceiling over the same route.
//
// The BENCH_c1.json archive `make bench` / `make c1-gate` produce comes
// from the identical deterministic run, so gating the numbers gates the
// archive.
func TestC1FlowGate(t *testing.T) {
	wl := c1Full()
	base := runIncast(wl, false)
	fair := runIncast(wl, true)
	ceiling := incastCeiling(wl)
	if base.Jain > 0.80 {
		t.Errorf("FIFO baseline Jain %.3f; the incast should be measurably unfair (<= 0.80)", base.Jain)
	}
	if fair.Jain < 0.90 {
		t.Errorf("flow-controlled Jain %.3f, gate is 0.90", fair.Jain)
	}
	if fair.Jain <= base.Jain {
		t.Errorf("flow control did not improve fairness: %.3f vs baseline %.3f", fair.Jain, base.Jain)
	}
	if ceiling <= 0 {
		t.Fatalf("ceiling run produced %.1f MB/s", ceiling)
	}
	if fair.AggMBps < 0.95*ceiling {
		t.Errorf("aggregate goodput %.1f MB/s is %.3fx the serialized ceiling %.1f MB/s, gate is 0.95",
			fair.AggMBps, fair.AggMBps/ceiling, ceiling)
	}
	if fair.Stats.SchedRounds == 0 {
		t.Error("fair run completed no scheduler rounds")
	}
	if fair.Stats.CreditsGranted != fair.Stats.CreditsSpent {
		t.Errorf("credit ledger unbalanced at quiescence: granted %d, spent %d",
			fair.Stats.CreditsGranted, fair.Stats.CreditsSpent)
	}
}

// TestC1Experiment smoke-runs the registered experiment at quick settings
// and requires a WARNING-free result.
func TestC1Experiment(t *testing.T) {
	r := mustRun(t, "c1", quick)
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("c1 flagged: %s", note)
		}
	}
	if len(r.Table) != 3 {
		t.Errorf("c1 table has %d rows, want fifo/flow/ceiling", len(r.Table))
	}
}
