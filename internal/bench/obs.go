package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:          "o1",
		Title:       "buffer-switch overhead from the swap histogram",
		Description: "Streams one message through the gateway with the metrics registry armed and reads the §3.4.1 per-switch software overhead (≈40 µs) off the madgo_gateway_swap_seconds quantiles, instead of inferring it from period arithmetic as t2 does.",
		Run:         runO1,
	})
}

// observedStream builds the restricted paper testbed in streaming mode with
// a metrics registry armed, streams n bytes src→dst, and returns the
// registry.
func observedStream(src, dst string, n, mtu int) *obs.Registry {
	tp := topo.PaperTestbed()
	hs, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		panic(err)
	}
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	m := obs.New()
	pl.SetMetrics(m)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range hs.Networks() {
		drv := driverFor(nw.Protocol)
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	vc, err := fwd.Build(sess, hs, bindings, fwd.Config{MTU: mtu, PipelineDepth: 2, ZeroCopy: true})
	if err != nil {
		panic(err)
	}
	sim.Spawn("stream", func(p *vtime.Proc) {
		px := vc.At(src).BeginPacking(p, dst)
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("drain", func(p *vtime.Proc) {
		u := vc.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}
	return m
}

func runO1(o Options) *Result {
	n := 4096 * kb
	if o.Quick {
		n = 512 * kb
	}
	m := observedStream("a1", "b1", n, 8*kb)

	gw := obs.Labels{"gateway": "gw"}
	const name = "madgo_gateway_swap_seconds"
	count := m.HistogramCount(name, gw)
	p50, _ := m.Quantile(name, gw, 0.5)
	p99, _ := m.Quantile(name, gw, 0.99)
	model := hw.DefaultCPU().SwapOverhead

	us := func(s float64) string { return fmt.Sprintf("%.1fµs", s*1e6) }
	r := &Result{
		ID:     "o1",
		Title:  "buffer-switch overhead, 8 KB packets, SCI→Myrinet",
		Header: []string{"quantity", "value"},
		Table: [][]string{
			{"buffer switches observed", fmt.Sprintf("%d", count)},
			{"swap overhead p50", us(p50)},
			{"swap overhead p99", us(p99)},
			{"CPU model SwapOverhead", fmt.Sprintf("%v", model)},
		},
	}
	r.Notes = append(r.Notes,
		"the histogram is measured at the gateway's pipeline threads, one observation per buffer switch;",
		"a constant per-switch cost makes every quantile agree with the §3.4.1 estimate of ≈40 µs")
	return r
}

// WriteJSON renders a result as one JSON document — the machine-readable
// form `make bench` archives (BENCH_o1.json) so the perf trajectory
// accumulates across commits.
func WriteJSON(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
