package bench

import (
	"fmt"

	"madgo/internal/fwd"
	"madgo/internal/obs"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:          "p1",
		Title:       "gateway pipeline depth sweep",
		Description: "Streams a fixed message Myrinet→SCI through the gateway for every ring depth 1/2/4/8 × packet size 8–128 KB: goodput per configuration, plus the receive lane's stall fraction at 128 KB packets from the obs lane analyzer — the §3.4 buffer-switch bubbles a deeper ring absorbs.",
		Run:         runP1,
	})
}

// runP1 sweeps the pipeline ring depth. The Myrinet→SCI direction is the
// interesting one: the SCI-side send costs vary under the gateway's PCI
// contention (DMA outranks PIO), so a deeper ring absorbs send-side jitter
// that double buffering passes straight to the receive thread as stalls.
func runP1(o Options) *Result {
	msg := 2048 * kb
	if o.Quick {
		msg = 512 * kb
	}
	const src, dst = "b1", "a1"
	const stallPkt = 128 * kb
	depths := []int{1, 2, 4, 8}

	r := &Result{
		ID:     "p1",
		Title:  fmt.Sprintf("pipeline depth sweep, %d KB messages, Myrinet→SCI", msg/kb),
		XLabel: "packet bytes",
		YLabel: "MB/s",
		Header: []string{"depth", fmt.Sprintf("MB/s @ %d KB packets", stallPkt/kb), "recv stall fraction", "recv stalls"},
	}
	for _, depth := range depths {
		s := Series{Name: fmt.Sprintf("depth %d", depth)}
		for _, pkt := range packetSizes(o) {
			tr := trace.New()
			cfg := fwd.DefaultConfig()
			cfg.MTU = pkt
			cfg.PipelineDepth = depth
			cfg.Tracer = tr
			tb := NewTestbed(cfg)
			done := tb.Stream(src, dst, msg)
			goodput := mbps(msg, done)
			s.Points = append(s.Points, Point{X: float64(pkt), Y: goodput})
			if pkt == stallPkt {
				frac := 0.0
				for _, l := range obs.AnalyzeLanes(tr, 0, vtime.Time(done)) {
					if l.Actor == "gw:recv:myri0" {
						frac = float64(l.Stall) / float64(l.Window)
					}
				}
				gw := tb.VC.Gateway("gw")
				r.Table = append(r.Table, []string{
					fmt.Sprintf("%d", depth),
					fmt.Sprintf("%.1f", goodput),
					fmt.Sprintf("%.3f", frac),
					fmt.Sprintf("%d", gw.Stalls()),
				})
			}
		}
		r.Series = append(r.Series, s)
	}
	r.Notes = append(r.Notes,
		"each point streams one message through a fresh testbed; goodput is message bytes over one-way completion time;",
		"the stall fraction is the gateway receive lane's share of the run spent waiting for a free staging buffer plus buffer-switch overhead (obs.AnalyzeLanes over the \"stall\" and \"swap\" spans);",
		"depth 1 disables pipelining (ablation A3's no-pipe point), depth 2 is the paper's double buffering, deeper rings absorb the SCI-side send jitter the gateway's PCI DMA-over-PIO contention introduces")
	return r
}
