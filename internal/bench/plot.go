package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePlot renders a figure result as an ASCII chart: log₂ x-axis
// (message/packet sizes), linear y-axis, one mark per series — a terminal
// rendition of the paper's gnuplot figures. Table-only results fall back to
// WriteTable.
func WritePlot(w io.Writer, r *Result, width, height int) {
	if len(r.Series) == 0 {
		WriteTable(w, r)
		return
	}
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)

	// Bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.X <= 0 {
				continue // log axis
			}
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if math.IsInf(xmin, 1) || ymax == 0 {
		fmt.Fprintln(w, "(no plottable points)")
		return
	}
	lx0, lx1 := math.Log2(xmin), math.Log2(xmax)
	if lx1 == lx0 {
		lx1 = lx0 + 1
	}
	// Round the y-axis up to a friendly ceiling.
	ytop := math.Ceil(ymax/5) * 5
	if ytop == 0 {
		ytop = 1
	}

	marks := []byte("ox+*#@%&")
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range r.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			if p.X <= 0 {
				continue
			}
			col := int((math.Log2(p.X) - lx0) / (lx1 - lx0) * float64(width-1))
			row := int(p.Y / ytop * float64(height-1))
			if row > height-1 {
				row = height - 1
			}
			if col < 0 || col >= width {
				continue
			}
			r := height - 1 - row
			if grid[r][col] == ' ' {
				grid[r][col] = m
			} else {
				grid[r][col] = '?'
			}
		}
	}

	ylab := fmt.Sprintf("%s (0..%.0f)", r.YLabel, ytop)
	fmt.Fprintf(w, "%s\n", ylab)
	for i, line := range grid {
		prefix := "      |"
		switch i {
		case 0:
			prefix = fmt.Sprintf("%5.0f |", ytop)
		case height - 1:
			prefix = "    0 |"
		}
		fmt.Fprintf(w, "%s%s\n", prefix, line)
	}
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "       %-10s%*s\n", formatX(xmin), width-10, formatX(xmax))
	fmt.Fprintf(w, "       %s (log scale)\n", r.XLabel)
	var legend []string
	for si, s := range r.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	sort.Strings(legend)
	fmt.Fprintf(w, "legend: %s\n", strings.Join(legend, "  "))
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
