package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePlotRendersSeries(t *testing.T) {
	r := &Result{
		ID: "demo", Title: "plot demo", XLabel: "message", YLabel: "MB/s",
		Series: []Series{
			{Name: "alpha", Points: []Point{{X: 1024, Y: 10}, {X: 4096, Y: 20}, {X: 16384, Y: 30}}},
			{Name: "beta", Points: []Point{{X: 1024, Y: 5}, {X: 16384, Y: 40}}},
		},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	WritePlot(&buf, r, 60, 12)
	out := buf.String()
	for _, want := range []string{"o=alpha", "x=beta", "log scale", "1KB", "16KB", "a note", "MB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("plot has no marks")
	}
}

func TestWritePlotFallsBackForTables(t *testing.T) {
	r := &Result{ID: "tbl", Title: "table only", Header: []string{"k", "v"}, Table: [][]string{{"a", "1"}}}
	var buf bytes.Buffer
	WritePlot(&buf, r, 40, 10)
	if !strings.Contains(buf.String(), "a") {
		t.Fatal("fallback table missing")
	}
}

func TestWritePlotDegenerate(t *testing.T) {
	// Zero-valued or nonpositive-x points must not crash the renderer.
	r := &Result{
		ID: "deg", Title: "degenerate", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{X: 0, Y: 0}, {X: -5, Y: 3}}}},
	}
	var buf bytes.Buffer
	WritePlot(&buf, r, 40, 10)
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Fatalf("degenerate plot output:\n%s", buf.String())
	}
	// Tiny dimensions are clamped, single point works.
	r2 := &Result{ID: "one", Series: []Series{{Name: "s", Points: []Point{{X: 8, Y: 1}}}}}
	buf.Reset()
	WritePlot(&buf, r2, 1, 1)
	if buf.Len() == 0 {
		t.Fatal("empty plot")
	}
}

func TestWritePlotCollisionMark(t *testing.T) {
	// Two series hitting the same cell produce the collision mark.
	r := &Result{
		ID: "col", Title: "collisions", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "s1", Points: []Point{{X: 64, Y: 10}}},
			{Name: "s2", Points: []Point{{X: 64, Y: 10}}},
		},
	}
	var buf bytes.Buffer
	WritePlot(&buf, r, 30, 8)
	if !strings.Contains(buf.String(), "?") {
		t.Fatalf("collision mark missing:\n%s", buf.String())
	}
}

func TestPlotRealFigure(t *testing.T) {
	e, _ := Lookup("fig7")
	var buf bytes.Buffer
	WritePlot(&buf, e.Run(Options{Quick: true}), 72, 16)
	if !strings.Contains(buf.String(), "paquet=8KB") {
		t.Fatalf("fig7 plot:\n%s", buf.String())
	}
}
