package bench

import (
	"fmt"

	"madgo/internal/drivers/sisci"
	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/health"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:          "r2",
		Title:       "Self-healing recovery: rail killed and re-admitted under K=2 striping",
		Description: "Continuous 128 KB stream over the dual-rail topology with the health monitor armed; the SCI rail is flapped dead mid-stream, traffic degrades to the surviving rail, and after probation re-admits the rail goodput must re-converge to >= 90% of the pre-fault level.",
		Run:         runR2,
	})
}

// recoveryOutcome is what the r2 experiment measures, exposed as a struct so
// TestR2SelfHealingGate asserts on numbers instead of parsing table cells.
type recoveryOutcome struct {
	PreMBs       float64        // goodput before the flap window
	FaultMBs     float64        // goodput while the rail is down or on probation
	PostMBs      float64        // goodput after re-admission
	Ratio        float64        // PostMBs / PreMBs, the recovery ratio
	Readmissions int64          // rails restored to the stripe set
	Epoch        uint64         // final routing epoch (starts at 1)
	Probes       int64          // health probes performed
	TimeToHeal   vtime.Duration // flap end -> re-admission transition
	Pre, Fault   int            // messages per phase
	Post         int
	Stripe       fwd.StripeStats
}

// runRecovery streams count back-to-back n-byte messages a->b over the
// dual-rail topology (DMA SCI + Myrinet) with reliable delivery, K=2
// striping and the health monitor armed, while the SCI rail flaps dead for
// [flapAt, flapAt+flapDur). Per-message start/end stamps segment the run
// into pre-fault, faulted and recovered phases around the re-admission
// transition the monitor logs.
func runRecovery(count, n int, flapAt vtime.Time, flapDur vtime.Duration) recoveryOutcome {
	tp := dualRailTopo()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	plan := fault.NewPlan(42).Flap("sci0", flapAt, flapDur)
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	pl.ArmFaults(fault.NewInjector(plan, nil))
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		var drv mad.Driver = driverFor(nw.Protocol)
		if nw.Protocol == "sci" {
			drv = sisci.NewDMA()
		}
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	cfg := fwd.DefaultConfig()
	cfg.Reliable = true
	cfg.StripeK = 2
	hc := health.DefaultConfig()
	cfg.Health = &hc
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		panic(err)
	}
	mon := vc.Health()
	starts := make([]vtime.Time, count)
	ends := make([]vtime.Time, count)
	payload := make([]byte, n)
	sim.Spawn("stream:a", func(p *vtime.Proc) {
		for i := 0; i < count; i++ {
			starts[i] = p.Now()
			px := vc.At("a").BeginPacking(p, "b")
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	sim.Spawn("drain:b", func(p *vtime.Proc) {
		buf := make([]byte, n)
		for i := 0; i < count; i++ {
			u := vc.At("b").BeginUnpacking(p)
			u.Unpack(p, buf, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			ends[i] = p.Now()
		}
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	out := recoveryOutcome{
		Readmissions: mon.Readmissions(),
		Epoch:        mon.Epoch(),
		Probes:       mon.Probes(),
		Stripe:       vc.StripeStats(),
	}
	// The healing instant is the last probation -> up transition; everything
	// from the flap start until then is the faulted phase.
	healedAt := vtime.Time(-1)
	for _, tr := range mon.Transitions() {
		if tr.From == health.Probation && tr.To == health.Up {
			healedAt = tr.At
		}
	}
	if healedAt >= 0 {
		out.TimeToHeal = healedAt.Sub(flapAt.Add(flapDur))
	}
	phase := func(lo, hi vtime.Time) (int, float64) {
		var bytes int64
		first, last := vtime.Time(-1), vtime.Time(-1)
		msgs := 0
		for i := range ends {
			if starts[i] < lo || (hi >= 0 && ends[i] > hi) {
				continue
			}
			if first < 0 || starts[i] < first {
				first = starts[i]
			}
			if ends[i] > last {
				last = ends[i]
			}
			bytes += int64(n)
			msgs++
		}
		if msgs == 0 || last <= first {
			return msgs, 0
		}
		return msgs, mbps(int(bytes), last.Sub(first))
	}
	out.Pre, out.PreMBs = phase(0, flapAt)
	out.Fault, out.FaultMBs = phase(flapAt, healedAt)
	out.Post, out.PostMBs = phase(healedAt, -1)
	if healedAt < 0 {
		out.Fault, out.FaultMBs = phase(flapAt, -1)
		out.Post, out.PostMBs = 0, 0
	}
	if out.PreMBs > 0 {
		out.Ratio = out.PostMBs / out.PreMBs
	}
	return out
}

func runR2(o Options) *Result {
	count := 150
	if o.Quick {
		count = 100
	}
	const n = 128 * kb
	flapAt := vtime.Time(50 * vtime.Millisecond)
	flapDur := 100 * vtime.Millisecond
	out := runRecovery(count, n, flapAt, flapDur)

	r := &Result{
		ID:     "r2",
		Title:  fmt.Sprintf("self-healing recovery, %d x %d KB a→b, SCI rail flapped [%v, %v)", count, n/kb, vtime.Duration(flapAt), vtime.Duration(flapAt)+flapDur),
		Header: []string{"phase", "messages", "goodput MB/s"},
		Table: [][]string{
			{"pre-fault (K=2)", fmt.Sprintf("%d", out.Pre), fmt.Sprintf("%.1f", out.PreMBs)},
			{"faulted (single rail)", fmt.Sprintf("%d", out.Fault), fmt.Sprintf("%.1f", out.FaultMBs)},
			{"recovered (K=2 again)", fmt.Sprintf("%d", out.Post), fmt.Sprintf("%.1f", out.PostMBs)},
		},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("recovery ratio %.2f (gate: >= 0.90), time to re-admission %v after the flap window closed",
			out.Ratio, out.TimeToHeal),
		fmt.Sprintf("%d readmissions, final routing epoch %d, %d health probes, %d rail failovers",
			out.Readmissions, out.Epoch, out.Probes, out.Stripe.RailFailovers))
	switch {
	case out.Pre == 0 || out.Fault == 0 || out.Post == 0:
		r.Notes = append(r.Notes, fmt.Sprintf(
			"WARNING: a phase saw no complete message (pre %d, fault %d, post %d)", out.Pre, out.Fault, out.Post))
	case out.Readmissions == 0:
		r.Notes = append(r.Notes, "WARNING: the flapped rail was never re-admitted")
	case out.Ratio < 0.9:
		r.Notes = append(r.Notes, fmt.Sprintf(
			"WARNING: recovered goodput is only %.2fx the pre-fault level", out.Ratio))
	}
	return r
}
