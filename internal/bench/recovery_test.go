package bench

import (
	"strings"
	"testing"

	"madgo/internal/vtime"
)

// TestR2SelfHealingGate is the CI gate for the failure detector's
// self-healing loop: with one of two stripe rails flapped dead mid-stream,
// traffic must degrade to the surviving rail (the dip proves the fault
// bit), the rail must be re-admitted after probation within a bounded
// virtual-time window, and goodput after re-admission must re-converge to
// at least 90% of the pre-fault dual-rail level. The BENCH_r2.json archive
// `make bench` / `make r2-gate` produce comes from the identical
// deterministic run, so gating the numbers gates the archive.
func TestR2SelfHealingGate(t *testing.T) {
	out := runRecovery(150, 128*kb, vtime.Time(50*vtime.Millisecond), 100*vtime.Millisecond)
	if out.Pre == 0 || out.Fault == 0 || out.Post == 0 {
		t.Fatalf("a phase saw no complete message: pre %d, fault %d, post %d", out.Pre, out.Fault, out.Post)
	}
	if out.Readmissions < 1 {
		t.Errorf("flapped rail was never re-admitted (readmissions %d)", out.Readmissions)
	}
	if out.Stripe.RailReadmissions < 1 {
		t.Errorf("re-admission not visible in StripeStats: %+v", out.Stripe)
	}
	if out.FaultMBs >= out.PreMBs {
		t.Errorf("no goodput dip during the fault window: pre %.1f MB/s, faulted %.1f MB/s",
			out.PreMBs, out.FaultMBs)
	}
	if out.Ratio < 0.9 {
		t.Errorf("recovered goodput %.1f MB/s is only %.2fx the pre-fault %.1f MB/s, gate is 0.90",
			out.PostMBs, out.Ratio, out.PreMBs)
	}
	// Detection, probation and re-admission are all timer-driven, so the
	// healing delay is bounded: probation begins at most ProbeAfterMax
	// after the window closes and needs ProbationSuccesses probes.
	if out.TimeToHeal < 0 || out.TimeToHeal > 500*vtime.Millisecond {
		t.Errorf("re-admission took %v after the flap window closed, bound is 500ms", out.TimeToHeal)
	}
	if out.Epoch < 3 {
		t.Errorf("final routing epoch %d; want >= 3 (one publish for the death, one for the re-admission)", out.Epoch)
	}
	if out.Probes == 0 {
		t.Error("no health probes were performed")
	}
}

// TestR2Experiment smoke-runs the registered experiment and requires a
// WARNING-free result at quick settings.
func TestR2Experiment(t *testing.T) {
	r := mustRun(t, "r2", quick)
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("r2 flagged: %s", note)
		}
	}
	if len(r.Table) != 3 {
		t.Errorf("r2 table has %d rows, want 3 phases", len(r.Table))
	}
}
