package bench

import (
	"fmt"

	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:          "r1",
		Title:       "Reliable-delivery goodput under packet loss",
		Description: "8 MB SCI→Myrinet transfer (1 MB quick) through the gateway with reliable delivery, swept over injected drop probabilities; goodput degrades gracefully and the zero-loss row needs zero recovery.",
		Run:         runR1,
	})
}

// reliableStream builds the restricted paper testbed in reliable mode with
// the given fault plan armed, streams n bytes src→dst, and returns the
// one-way duration plus the recovery and acknowledgement statistics.
func reliableStream(src, dst string, n int, plan *fault.Plan) (vtime.Duration, fwd.DeliveryStats, fwd.AckStats) {
	tp := topo.PaperTestbed()
	hs, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		panic(err)
	}
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	if plan != nil {
		if err := plan.Validate(); err != nil {
			panic(err)
		}
		pl.ArmFaults(fault.NewInjector(plan, nil))
	}
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range hs.Networks() {
		drv := driverFor(nw.Protocol)
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	cfg := fwd.DefaultConfig()
	cfg.Reliable = true
	vc, err := fwd.Build(sess, hs, bindings, cfg)
	if err != nil {
		panic(err)
	}
	var done vtime.Time
	payload := make([]byte, n)
	sim.Spawn("stream:"+src, func(p *vtime.Proc) {
		px := vc.At(src).BeginPacking(p, dst)
		px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("drain:"+dst, func(p *vtime.Proc) {
		u := vc.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}
	return vtime.Duration(done), vc.DeliveryStats(), vc.AckStats()
}

func runR1(o Options) *Result {
	n := 8192 * kb
	if o.Quick {
		n = 1024 * kb
	}
	rates := []float64{0, 0.01, 0.02, 0.05, 0.10}
	r := &Result{
		ID: "r1", Title: fmt.Sprintf("reliable goodput under loss, %d KB messages, a1→b1", n/kb),
		Header: []string{"drop prob", "goodput MB/s", "retransmits", "checksum drops", "duplicates"},
	}
	s := Series{Name: "goodput"}
	for _, rate := range rates {
		var plan *fault.Plan
		if rate > 0 {
			plan = fault.NewPlan(42).Drop("*", rate)
		}
		d, ds, _ := reliableStream("a1", "b1", n, plan)
		s.Points = append(s.Points, Point{X: rate, Y: mbps(n, d)})
		r.Table = append(r.Table, []string{
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%.1f", mbps(n, d)),
			fmt.Sprintf("%d", ds.Retransmits),
			fmt.Sprintf("%d", ds.ChecksumDrops),
			fmt.Sprintf("%d", ds.Duplicates),
		})
		if rate == 0 && ds != (fwd.DeliveryStats{}) {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"WARNING: fault-free run performed recovery work: %+v", ds))
		}
	}
	r.Series = append(r.Series, s)
	r.XLabel, r.YLabel = "drop probability", "MB/s"
	r.Notes = append(r.Notes,
		"reliability adds a 28-byte header+CRC per packet and hop-by-hop acks; the zero-loss row is the protocol's overhead against fig6")
	return r
}
