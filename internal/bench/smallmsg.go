package bench

import (
	"fmt"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:    "m1",
		Title: "Eager small-message path: compact framing + cross-message aggregation",
		Description: "Forwarded message-rate sweep from 64 B to 4 KB (plus 64/128 KB parity points) " +
			"through one gateway, seed GTM framing vs eager compact framing vs eager+aggregation. " +
			"The seed spends F+2 wire transfers per message, so mice pay three per-transfer " +
			"overheads for one fragment; compact framing piggybacks header and terminator, and " +
			"the coalescer packs whole bursts into single MTU-sized frames.",
		Run: runM1,
	})
}

// m1Sizes is the sweep: mice (the eager path's target) plus two elephant
// parity points that must not regress — they bypass the coalescer.
var (
	m1Small = []int{64, 128, 256, 512, 1 * kb, 2 * kb, 4 * kb}
	m1Large = []int{64 * kb, 128 * kb}
)

// m1Topo is the forwarding path the framing change targets: one sender, one
// gateway bridging the paper's two high-speed networks, one sink. Every
// transfer crosses the gateway, so per-transfer software overhead dominates
// small-message rate.
func m1Topo() *topo.Topology {
	tp, err := topo.NewBuilder().
		Network("edge", "sci").
		Network("core", "myrinet").
		Node("a", "edge").
		Node("gw", "edge", "core").
		Node("b", "core").
		Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// m1Out is one (config, size) cell: goodput and message rate over a
// back-to-back stream.
type m1Out struct {
	MBps    float64
	MsgsSec float64
}

// runM1Stream drives count back-to-back messages of the given size through
// the gateway and measures goodput and message rate at the sink over the
// whole stream (makespan includes any trailing idle-flush deadline, so
// aggregation cannot hide latency in the measurement).
func runM1Stream(cfg fwd.Config, size, count int) m1Out {
	cb := newCustomBed(m1Topo(), cfg)
	payload := make([]byte, size)
	cb.sim.Spawn("m1:send", func(p *vtime.Proc) {
		for m := 0; m < count; m++ {
			px := cb.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	var done vtime.Time
	cb.sim.Spawn("m1:recv", func(p *vtime.Proc) {
		buf := make([]byte, size)
		for m := 0; m < count; m++ {
			u := cb.vc.At("b").BeginUnpacking(p)
			u.Unpack(p, buf, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		}
		done = p.Now()
	})
	if err := cb.sim.Run(); err != nil {
		panic(err)
	}
	d := vtime.Duration(done)
	return m1Out{
		MBps:    mbps(size*count, d),
		MsgsSec: float64(count) / (float64(d) / float64(vtime.Second)),
	}
}

// m1Count picks the stream length for one message size: enough messages to
// amortize startup for mice, fewer for the elephant parity points.
func m1Count(size int, quick bool) int {
	count := 256
	if size >= 16*kb {
		count = 16
	}
	if quick {
		count /= 4
	}
	return count
}

func m1Configs() (seed, eager, agg fwd.Config) {
	seed = fwd.DefaultConfig()
	eager = fwd.DefaultConfig()
	eager.Eager = true
	agg = fwd.DefaultConfig()
	agg.Eager = true
	agg.Aggregation = true
	return seed, eager, agg
}

func runM1(o Options) *Result {
	seedCfg, eagerCfg, aggCfg := m1Configs()
	sizes := append(append([]int{}, m1Small...), m1Large...)
	r := &Result{
		ID:     "m1",
		Title:  "Small-message goodput through one gateway: seed framing vs eager vs eager+aggregation",
		Header: []string{"bytes", "seed MB/s", "eager MB/s", "agg MB/s", "seed msg/s", "agg msg/s", "agg/seed"},
	}
	worstSmall, worstLarge := 0.0, 0.0
	for _, size := range sizes {
		count := m1Count(size, o.Quick)
		seed := runM1Stream(seedCfg, size, count)
		eager := runM1Stream(eagerCfg, size, count)
		agg := runM1Stream(aggCfg, size, count)
		ratio := agg.MBps / seed.MBps
		r.Table = append(r.Table, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.2f", seed.MBps),
			fmt.Sprintf("%.2f", eager.MBps),
			fmt.Sprintf("%.2f", agg.MBps),
			fmt.Sprintf("%.0f", seed.MsgsSec),
			fmt.Sprintf("%.0f", agg.MsgsSec),
			fmt.Sprintf("%.2fx", ratio),
		})
		if size <= 1*kb && (worstSmall == 0 || ratio < worstSmall) {
			worstSmall = ratio
		}
		if size >= 64*kb && (worstLarge == 0 || ratio < worstLarge) {
			worstLarge = ratio
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("eager+agg vs seed: worst <=1KB speedup %.2fx (gate: >= 3x), worst >=64KB parity %.3fx (gate: >= 0.98x)",
			worstSmall, worstLarge))
	if worstSmall < 3.0 {
		r.Notes = append(r.Notes, fmt.Sprintf("WARNING: small-message speedup %.2fx below the 3x gate", worstSmall))
	}
	if worstLarge < 0.98 {
		r.Notes = append(r.Notes, fmt.Sprintf("WARNING: large-message parity %.3fx below the 0.98x gate", worstLarge))
	}
	return r
}
