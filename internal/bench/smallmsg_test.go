package bench

import (
	"strings"
	"testing"
)

// TestM1EagerGate is the CI gate for the eager small-message path: across
// the mice sweep (64 B – 1 KB) the eager+aggregation configuration must
// deliver at least 3x the seed framing's goodput — the seed pays F+2
// per-transfer overheads per message where the aggregate frame pays a
// fraction of one — while the 64/128 KB parity points, which bypass the
// coalescer, must stay within 2% of the seed. The BENCH_m1.json archive
// `make bench` / `make m1-gate` produce comes from the identical
// deterministic run, so gating the numbers gates the archive.
func TestM1EagerGate(t *testing.T) {
	seedCfg, eagerCfg, aggCfg := m1Configs()
	for _, size := range m1Small {
		if size > 1024 {
			continue
		}
		count := m1Count(size, false)
		seed := runM1Stream(seedCfg, size, count)
		eager := runM1Stream(eagerCfg, size, count)
		agg := runM1Stream(aggCfg, size, count)
		if agg.MBps < 3.0*seed.MBps {
			t.Errorf("%dB: eager+agg %.2f MB/s is %.2fx the seed's %.2f MB/s, gate is 3x",
				size, agg.MBps, agg.MBps/seed.MBps, seed.MBps)
		}
		if eager.MBps <= seed.MBps {
			t.Errorf("%dB: compact framing alone (%.2f MB/s) did not beat the seed (%.2f MB/s)",
				size, eager.MBps, seed.MBps)
		}
	}
	for _, size := range m1Large {
		count := m1Count(size, false)
		seed := runM1Stream(seedCfg, size, count)
		agg := runM1Stream(aggCfg, size, count)
		if agg.MBps < 0.98*seed.MBps {
			t.Errorf("%dB: eager+agg %.2f MB/s is %.3fx the seed's %.2f MB/s, parity gate is 0.98x",
				size, agg.MBps, agg.MBps/seed.MBps, seed.MBps)
		}
	}
}

// TestM1Experiment smoke-runs the registered experiment at quick settings
// and requires a WARNING-free result.
func TestM1Experiment(t *testing.T) {
	r := mustRun(t, "m1", quick)
	for _, note := range r.Notes {
		if strings.HasPrefix(note, "WARNING") {
			t.Errorf("m1 flagged: %s", note)
		}
	}
	if len(r.Table) != len(m1Small)+len(m1Large) {
		t.Errorf("m1 table has %d rows, want %d", len(r.Table), len(m1Small)+len(m1Large))
	}
}
