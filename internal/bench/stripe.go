package bench

import (
	"fmt"

	"madgo/internal/drivers/sisci"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

func init() {
	register(&Experiment{
		ID:          "s1",
		Title:       "Multi-rail striping goodput, K=1 vs K=2",
		Description: "8-128 KB transfers over the dual-rail topology (Myrinet/BIP + DMA-engine SCI between the same node pair), swept over stripe width K; K=2 goodput must approach the sum of the rails rather than the max.",
		Run:         runS1,
	})
}

// dualRailTopo joins one node pair with both high-speed networks: two
// direct, fully link-disjoint rails.
func dualRailTopo() *topo.Topology {
	tp, err := topo.NewBuilder().
		Network("myri0", "myrinet").
		Network("sci0", "sci").
		Node("a", "myri0", "sci0").
		Node("b", "myri0", "sci0").
		Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// stripedStream streams n bytes a→b over the dual-rail topology with stripe
// width k and returns the one-way duration plus the striping counters. The
// SCI rail runs on the board's DMA engine — the paper's §3.4.1 workaround —
// because a PIO SCI send is demoted 0.5x while the Myrinet rail's DMA holds
// the shared PCI bus, which caps concurrent two-rail transmission well below
// the sum of the rails.
func stripedStream(k, n int) (vtime.Duration, fwd.StripeStats) {
	tp := dualRailTopo()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		var drv mad.Driver = driverFor(nw.Protocol)
		if nw.Protocol == "sci" {
			drv = sisci.NewDMA()
		}
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	cfg := fwd.DefaultConfig()
	cfg.StripeK = k
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		panic(err)
	}
	var done vtime.Time
	payload := make([]byte, n)
	sim.Spawn("stream:a", func(p *vtime.Proc) {
		px := vc.At("a").BeginPacking(p, "b")
		px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("drain:b", func(p *vtime.Proc) {
		u := vc.At("b").BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}
	return vtime.Duration(done), vc.StripeStats()
}

func runS1(o Options) *Result {
	sizes := []int{8 * kb, 16 * kb, 32 * kb, 64 * kb, 128 * kb}
	if o.Quick {
		sizes = []int{16 * kb, 64 * kb, 128 * kb}
	}
	maxK := o.Rails
	if maxK < 2 {
		maxK = 2
	}
	r := &Result{
		ID: "s1", Title: "striped goodput over the dual-rail testbed (DMA SCI + Myrinet), a→b",
		XLabel: "message bytes", YLabel: "MB/s",
	}
	goodput := map[int]map[int]float64{} // k → size → MB/s
	for k := 1; k <= maxK; k++ {
		s := Series{Name: fmt.Sprintf("K=%d", k)}
		goodput[k] = map[int]float64{}
		for _, n := range sizes {
			d, st := stripedStream(k, n)
			g := mbps(n, d)
			goodput[k][n] = g
			s.Points = append(s.Points, Point{X: float64(n), Y: g})
			if k == 1 && st.Messages != 0 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"WARNING: K=1 striped %d messages at %d bytes", st.Messages, n))
			}
			if k >= 2 && n >= 64*kb && st.Messages == 0 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"WARNING: K=%d did not stripe the %d-byte message", k, n))
			}
		}
		r.Series = append(r.Series, s)
	}
	big := sizes[len(sizes)-1]
	r.Notes = append(r.Notes, fmt.Sprintf(
		"K=2 speedup at %d KB: %.2fx over single-rail (gate: >= 1.5x at 64-128 KB; "+
			"sub-threshold sizes stay single-rail by design)",
		big/kb, goodput[2][big]/goodput[1][big]))
	return r
}
