package bench

import (
	"bytes"
	"fmt"

	"madgo/internal/baseline"
	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sbp"
	"madgo/internal/drivers/sisci"
	"madgo/internal/drivers/tcpnet"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

type netDriver interface {
	mad.Driver
	NewNetwork(pl *hw.Platform, name string) *hw.Network
}

func driverFor(protocol string) netDriver {
	switch protocol {
	case "sci":
		return sisci.New()
	case "myrinet":
		return bip.New()
	case "ethernet":
		return tcpnet.New()
	case "sbp":
		return sbp.New()
	default:
		panic("bench: no driver for protocol " + protocol)
	}
}

// Testbed reconstructs the paper's evaluation platform: the SCI cluster,
// the Myrinet cluster, the dual-NIC gateway, a virtual channel over the two
// high-speed networks, and the Fast-Ethernet network the ping programs use
// for their return acks (§3.1).
type Testbed struct {
	Sim    *vtime.Sim
	Sess   *mad.Session
	VC     *fwd.VirtualChannel
	Eth    *mad.Channel
	Tracer *trace.Tracer
}

// NewTestbed builds the paper testbed with the given forwarding
// configuration. A non-nil tracer in the config is kept accessible on the
// testbed.
func NewTestbed(cfg fwd.Config) *Testbed {
	return NewTestbedDrivers(cfg, nil)
}

// NewTestbedDrivers is NewTestbed with per-protocol driver overrides — the
// §3.4.1 workaround experiment swaps the SCI driver for its DMA-engine
// variant this way.
func NewTestbedDrivers(cfg fwd.Config, override map[string]mad.Driver) *Testbed {
	tp := topo.PaperTestbed()
	hs, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		panic(err)
	}
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range hs.Networks() {
		var drv mad.Driver = driverFor(nw.Protocol)
		if o, ok := override[nw.Protocol]; ok {
			drv = o
		}
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	vc, err := fwd.Build(sess, hs, bindings, cfg)
	if err != nil {
		panic(err)
	}
	// The Fast-Ethernet control network spans every node; it is a plain
	// Madeleine channel outside the virtual channel, exactly the role it
	// plays in the paper's ping program.
	ethDrv := driverFor("ethernet")
	ethNet := ethDrv.NewNetwork(pl, "eth0")
	members := make([]*mad.Node, 0, len(sess.Nodes()))
	members = append(members, sess.Nodes()...)
	eth := sess.NewChannel("eth0", ethNet, ethDrv, members...)
	return &Testbed{Sim: sim, Sess: sess, VC: vc, Eth: eth, Tracer: cfg.Tracer}
}

// PingResult is one one-way measurement.
type PingResult struct {
	Bytes int
	// Faithful is the paper's method: round-trip time with a small
	// Fast-Ethernet ack, minus the separately measured ack latency.
	Faithful vtime.Duration
	// Actual is the simulator's ground truth (receive completion minus
	// send start), available because virtual time is global.
	Actual vtime.Duration
}

// MBps converts a measurement to the paper's bandwidth unit.
func (r PingResult) MBps() float64 {
	return float64(r.Bytes) / r.Faithful.Seconds() / 1e6
}

// PingSeries runs the §3.1 ping program: for each size, src sends one
// message of that size over the virtual channel to dst, and dst returns a
// small ack over Fast-Ethernet. The ack one-way latency is calibrated first
// with a pure Ethernet ping-pong, then subtracted from each observed
// round-trip. All measurements of the series run in one deterministic
// simulation.
func (tb *Testbed) PingSeries(src, dst string, sizes []int) []PingResult {
	results := make([]PingResult, len(sizes))
	var ackOneWay vtime.Duration
	sendStarts := make([]vtime.Time, len(sizes))
	recvDones := make([]vtime.Time, len(sizes))

	srcEth := tb.Eth.At(tb.Sess.NodeByName(src))
	dstEth := tb.Eth.At(tb.Sess.NodeByName(dst))
	srcRank := tb.VC.NodeRank(src)
	dstRank := tb.VC.NodeRank(dst)
	ackByte := []byte{0xAC}

	tb.Sim.Spawn("ping:"+src, func(p *vtime.Proc) {
		// Ack calibration: Ethernet ping-pong, half the round trip.
		t0 := p.Now()
		sendEth(p, srcEth, dstRank, ackByte)
		recvEth(p, srcEth)
		ackOneWay = vtime.Since(p.Now(), t0) / 2

		for i, n := range sizes {
			payload := make([]byte, n)
			for j := range payload {
				payload[j] = byte(j*31 + i)
			}
			start := p.Now()
			sendStarts[i] = start
			px := tb.VC.At(src).BeginPacking(p, dst)
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
			recvEth(p, srcEth) // the ack
			rtt := vtime.Since(p.Now(), start)
			results[i] = PingResult{Bytes: n, Faithful: rtt - ackOneWay}
		}
	})
	tb.Sim.Spawn("pong:"+dst, func(p *vtime.Proc) {
		// Ack calibration partner.
		recvEth(p, dstEth)
		sendEth(p, dstEth, srcRank, ackByte)

		for i, n := range sizes {
			u := tb.VC.At(dst).BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			recvDones[i] = p.Now()
			want := make([]byte, n)
			for j := range want {
				want[j] = byte(j*31 + i)
			}
			if !bytes.Equal(got, want) {
				panic(fmt.Sprintf("bench: ping payload corrupted at %d bytes", n))
			}
			sendEth(p, dstEth, srcRank, ackByte)
		}
	})
	if err := tb.Sim.Run(); err != nil {
		panic(err)
	}
	for i := range results {
		results[i].Actual = vtime.Since(recvDones[i], sendStarts[i])
	}
	return results
}

func sendEth(p *vtime.Proc, e *mad.Endpoint, to mad.Rank, payload []byte) {
	px := e.BeginPacking(p, to)
	px.Pack(p, payload, mad.SendCheaper, mad.ReceiveExpress)
	px.EndPacking(p)
}

func recvEth(p *vtime.Proc, e *mad.Endpoint) {
	u := e.BeginUnpacking(p)
	u.Unpack(p, make([]byte, 1), mad.SendCheaper, mad.ReceiveExpress)
	u.EndUnpacking(p)
}

// Stream sends one large message src→dst over the virtual channel and runs
// the simulation; used by the trace-based experiments (t2, t3, fig5, fig8).
func (tb *Testbed) Stream(src, dst string, n int) vtime.Duration {
	var done vtime.Time
	payload := make([]byte, n)
	tb.Sim.Spawn("stream:"+src, func(p *vtime.Proc) {
		px := tb.VC.At(src).BeginPacking(p, dst)
		px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	tb.Sim.Spawn("drain:"+dst, func(p *vtime.Proc) {
		u := tb.VC.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := tb.Sim.Run(); err != nil {
		panic(err)
	}
	return vtime.Duration(done)
}

// RawPair is a two-node, single-network fixture for the raw (no gateway)
// measurements of §3.2.2.
type RawPair struct {
	Sim  *vtime.Sim
	Sess *mad.Session
	Ch   *mad.Channel
	A, B *mad.Node
}

// NewRawPair builds two nodes connected by the given protocol.
func NewRawPair(protocol string) *RawPair {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	drv := driverFor(protocol)
	net := drv.NewNetwork(pl, protocol+"0")
	ch := sess.NewChannel("raw:"+protocol, net, drv, a, b)
	return &RawPair{Sim: sim, Sess: sess, Ch: ch, A: a, B: b}
}

// OneWaySeries measures direct one-way times for each size on the pair.
func (rp *RawPair) OneWaySeries(sizes []int) []vtime.Duration {
	out := make([]vtime.Duration, len(sizes))
	starts := make([]vtime.Time, len(sizes))
	rp.Sim.Spawn("raw-send", func(p *vtime.Proc) {
		for i, n := range sizes {
			starts[i] = p.Now()
			px := rp.Ch.At(rp.A).BeginPacking(p, rp.B.Rank)
			px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	rp.Sim.Spawn("raw-recv", func(p *vtime.Proc) {
		for i, n := range sizes {
			u := rp.Ch.At(rp.B).BeginUnpacking(p)
			u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			out[i] = vtime.Since(p.Now(), starts[i])
		}
	})
	if err := rp.Sim.Run(); err != nil {
		panic(err)
	}
	return out
}

// topoSBP is the a5 topology: a Myrinet cluster bridged to an SBP
// (static-buffer) network.
func topoSBP() (*topo.Topology, error) {
	return topo.NewBuilder().
		Network("myri0", "myrinet").
		Network("sbp0", "sbp").
		Node("a", "myri0").
		Node("g", "myri0", "sbp0").
		Node("b", "sbp0").
		Build()
}

// customBed is a virtual channel over an arbitrary topology, for the
// ablations that need networks beyond the paper testbed.
type customBed struct {
	sim  *vtime.Sim
	sess *mad.Session
	vc   *fwd.VirtualChannel
}

func newCustomBed(tp *topo.Topology, cfg fwd.Config) *customBed {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		drv := driverFor(nw.Protocol)
		bindings[nw.Name] = fwd.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		panic(err)
	}
	return &customBed{sim: sim, sess: sess, vc: vc}
}

// stream sends one message and returns the one-way time.
func (cb *customBed) stream(src, dst string, n int) vtime.Duration {
	var done vtime.Time
	cb.sim.Spawn("s", func(p *vtime.Proc) {
		px := cb.vc.At(src).BeginPacking(p, dst)
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	cb.sim.Spawn("r", func(p *vtime.Proc) {
		u := cb.vc.At(dst).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := cb.sim.Run(); err != nil {
		panic(err)
	}
	return vtime.Duration(done)
}

// BaselineBed is the testbed variant running an application-level relay
// (Nexus-style, or PACX-style with the TCP option) instead of the
// integrated forwarding.
type BaselineBed struct {
	Sim   *vtime.Sim
	Sess  *mad.Session
	Relay *baseline.Relay
}

// NewBaselineBed builds the full paper testbed (including Ethernet) under
// the baseline relay.
func NewBaselineBed(pacx bool) *BaselineBed {
	tp := topo.PaperTestbed()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]baseline.Binding)
	for _, nw := range tp.Networks() {
		drv := driverFor(nw.Protocol)
		bindings[nw.Name] = baseline.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	opts := baseline.Options{RouteNetworks: []string{"sci0", "myri0"}}
	if pacx {
		opts.InterClusterNet = "eth0"
	}
	relay, err := baseline.Build(sess, tp, bindings, opts)
	if err != nil {
		panic(err)
	}
	return &BaselineBed{Sim: sim, Sess: sess, Relay: relay}
}

// OneWaySeries measures relay one-way times src→dst for each size.
func (bb *BaselineBed) OneWaySeries(src, dst string, sizes []int) []vtime.Duration {
	out := make([]vtime.Duration, len(sizes))
	starts := make([]vtime.Time, len(sizes))
	bb.Sim.Spawn("bl-send", func(p *vtime.Proc) {
		for i, n := range sizes {
			starts[i] = p.Now()
			bb.Relay.Send(p, src, dst, [][]byte{make([]byte, n)})
			// Pace the sender: wait for an app-level ack so messages
			// do not overlap in the relay.
			msg := bb.Relay.Recv(p, src)
			if len(msg.Blocks) != 1 || len(msg.Blocks[0]) != 1 {
				panic("bench: bad baseline ack")
			}
		}
	})
	bb.Sim.Spawn("bl-recv", func(p *vtime.Proc) {
		for i, n := range sizes {
			msg := bb.Relay.Recv(p, dst)
			if len(msg.Blocks[0]) != n {
				panic("bench: baseline payload size mismatch")
			}
			out[i] = vtime.Since(p.Now(), starts[i])
			bb.Relay.Send(p, dst, src, [][]byte{{0xAC}})
		}
	})
	if err := bb.Sim.Run(); err != nil {
		panic(err)
	}
	return out
}
