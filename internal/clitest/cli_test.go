// Package clitest builds the four command-line tools and exercises them
// end-to-end — the binaries are deliverables, so they get the same
// regression coverage as the library.
package clitest_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAll compiles every cmd into a temp dir once per test run.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "madgo-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Dir = repoRoot()
	if out, err := cmd.CombinedOutput(); err != nil {
		panic("building cmds: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	// internal/clitest -> repo root.
	return filepath.Dir(filepath.Dir(wd))
}

// run executes a built tool and returns its combined output.
func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestMadbenchList(t *testing.T) {
	out := run(t, "madbench", "-list")
	for _, id := range []string{"t1", "fig6", "fig7", "headline", "a7"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestMadbenchQuickTable(t *testing.T) {
	out := run(t, "madbench", "-quick", "t2")
	if !strings.Contains(out, "pipeline period") || !strings.Contains(out, "40µs") {
		t.Errorf("t2 output:\n%s", out)
	}
}

func TestMadbenchCSV(t *testing.T) {
	out := run(t, "madbench", "-quick", "-csv", "fig7")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "message,") {
		t.Errorf("csv output:\n%s", out)
	}
}

func TestMadbenchPlot(t *testing.T) {
	out := run(t, "madbench", "-quick", "-plot", "t1")
	if !strings.Contains(out, "log scale") || !strings.Contains(out, "legend:") {
		t.Errorf("plot output:\n%s", out)
	}
}

func TestMadbenchUnknownExperiment(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "madbench"), "frobnicate")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}

func TestMadpingDefaults(t *testing.T) {
	out := run(t, "madping", "-sizes", "4096,65536")
	if !strings.Contains(out, "a1 -> b1") || !strings.Contains(out, "gateway gw relayed") {
		t.Errorf("madping output:\n%s", out)
	}
	if !strings.Contains(out, "65536") {
		t.Errorf("missing size row:\n%s", out)
	}
}

func TestMadtraceBothDirections(t *testing.T) {
	s2m := run(t, "madtrace", "-bytes", "131072")
	if !strings.Contains(s2m, "gw:recv:sci0") || !strings.Contains(s2m, "gw:send:myri0") {
		t.Errorf("s2m timeline:\n%s", s2m)
	}
	m2s := run(t, "madtrace", "-dir", "m2s", "-bytes", "131072", "-spans")
	if !strings.Contains(m2s, "gw:send:sci0") || !strings.Contains(m2s, "swap") {
		t.Errorf("m2s timeline:\n%s", m2s)
	}
}

func TestMadtopoBuiltinAndStdin(t *testing.T) {
	out := run(t, "madtopo", "-builtin")
	for _, want := range []string{"networks:", "gw", "[gateway]", "routes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("madtopo output missing %q:\n%s", want, out)
		}
	}
	cmd := exec.Command(filepath.Join(binDir, "madtopo"), "-")
	cmd.Stdin = strings.NewReader("network n sci\nnode a n\nnode b n\n")
	stdinOut, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("stdin mode: %v\n%s", err, stdinOut)
	}
	if !strings.Contains(string(stdinOut), "a -[n]-> b") {
		t.Errorf("stdin route missing:\n%s", stdinOut)
	}
}

func TestMadtopoRejectsBadConfig(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "madtopo"), "-")
	cmd.Stdin = strings.NewReader("garbage\n")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("bad config accepted:\n%s", out)
	}
}

func TestMadpingCustomConfig(t *testing.T) {
	cfg := filepath.Join(t.TempDir(), "chain.topo")
	text := "network n1 sci\nnetwork n2 myrinet\nnode x n1\nnode g n1 n2\nnode y n2\n"
	if err := os.WriteFile(cfg, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "madping", "-config", cfg, "-from", "x", "-to", "y", "-sizes", "32768")
	if !strings.Contains(out, "x -> y") || !strings.Contains(out, "gateway g relayed") {
		t.Errorf("madping custom config output:\n%s", out)
	}
}

func TestMadpingRejectsBadSizes(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "madping"), "-sizes", "zero")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("bad sizes accepted:\n%s", out)
	}
}

func TestMadtraceJSON(t *testing.T) {
	out := run(t, "madtrace", "-bytes", "131072", "-json")
	var doc struct {
		Src      string `json:"src"`
		Dst      string `json:"dst"`
		OneWayNS int64  `json:"one_way_ns"`
		Messages []struct {
			ID   uint64 `json:"id"`
			Hops []struct {
				Op string `json:"op"`
			} `json:"hops"`
		} `json:"messages"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if doc.Src != "a1" || doc.Dst != "b1" || doc.OneWayNS <= 0 {
		t.Errorf("summary = %+v", doc)
	}
	if len(doc.Messages) != 1 || len(doc.Messages[0].Hops) == 0 {
		t.Errorf("messages = %+v, want one with hops", doc.Messages)
	}
}

func TestMadtraceChromeExport(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trace.json")
	run(t, "madtrace", "-bytes", "131072", "-chrome", file)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome file is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome file has no events")
	}
}

func TestMadstatSnapshotLanesAndTrace(t *testing.T) {
	out := run(t, "madstat", "-bytes", "65536", "-lanes", "-trace", "all")
	for _, want := range []string{
		"# madgo metrics snapshot",
		"madgo_gateway_swap_seconds",
		`quantile="0.99"`,
		"pipeline lanes over",
		"gw:recv:sci0",
		"message 1",
		"deliver",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("madstat output missing %q:\n%s", want, out)
		}
	}
}

func TestMadstatLossyRun(t *testing.T) {
	out := run(t, "madstat", "-bytes", "65536", "-loss", "0.1", "-seed", "7", "-noprom", "-trace", "all")
	if !strings.Contains(out, "rexmit") && !strings.Contains(out, "resend") {
		t.Errorf("lossy madstat trace shows no recovery:\n%s", out)
	}
	if !strings.Contains(out, "e2e") {
		t.Errorf("lossy madstat trace has no end-to-end ack:\n%s", out)
	}
}

func TestMadstatChromeExport(t *testing.T) {
	file := filepath.Join(t.TempDir(), "run.json")
	run(t, "madstat", "-bytes", "65536", "-noprom", "-chrome", file)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("madstat -chrome wrote invalid JSON")
	}
}

func TestMadloadIncastBaselineVsFlow(t *testing.T) {
	args := []string{"-senders", "8", "-elephants", "2", "-count", "4"}
	base := run(t, "madload", args...)
	for _, want := range []string{"madload: incast, 8 senders", "Jain fairness", "aggregate", "0 sched rounds"} {
		if !strings.Contains(base, want) {
			t.Errorf("baseline output missing %q:\n%s", want, base)
		}
	}
	fair := run(t, "madload", append(args, "-flow")...)
	if !strings.Contains(fair, "flow control true") || !strings.Contains(fair, "8 accounts") {
		t.Errorf("flow run shows no credit accounts:\n%s", fair)
	}
	if strings.Contains(fair, "0 sched rounds") {
		t.Errorf("flow run served no scheduler rounds:\n%s", fair)
	}
}

func TestMadloadPatternsAndJSON(t *testing.T) {
	for _, pattern := range []string{"alltoall", "hotspot"} {
		out := run(t, "madload", "-pattern", pattern, "-senders", "6", "-count", "2")
		if !strings.Contains(out, "madload: "+pattern) {
			t.Errorf("%s output:\n%s", pattern, out)
		}
	}
	raw := run(t, "madload", "-senders", "4", "-count", "2", "-window", "4", "-json")
	var doc struct {
		Pattern     string `json:"pattern"`
		FlowControl bool   `json:"flow_control"`
		Senders     []struct {
			Name  string `json:"name"`
			Bytes int64  `json:"bytes"`
		} `json:"senders"`
		Jain float64 `json:"jain"`
		Flow struct {
			CreditsGranted int64 `json:"CreditsGranted"`
			CreditsSpent   int64 `json:"CreditsSpent"`
		} `json:"flow"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("madload -json is not JSON: %v\n%s", err, raw)
	}
	if doc.Pattern != "incast" || !doc.FlowControl || len(doc.Senders) != 4 {
		t.Errorf("json doc: %+v", doc)
	}
	if doc.Jain <= 0 || doc.Jain > 1 {
		t.Errorf("jain %v out of range", doc.Jain)
	}
	if doc.Flow.CreditsGranted == 0 || doc.Flow.CreditsGranted != doc.Flow.CreditsSpent {
		t.Errorf("credit ledger in JSON: %+v", doc.Flow)
	}
}

func TestMadloadSmallMessageMode(t *testing.T) {
	args := []string{"-small", "24", "-bytes", "512", "-senders", "4"}
	seed := run(t, "madload", args...)
	if !strings.Contains(seed, "mice: 96 msgs,") || !strings.Contains(seed, "latency p50") {
		t.Errorf("-small output missing mice line:\n%s", seed)
	}
	if strings.Contains(seed, "agg:") {
		t.Errorf("seed run reports aggregation stats:\n%s", seed)
	}
	raw := run(t, "madload", append(args, "-agg", "-json")...)
	var doc struct {
		Mice *struct {
			Msgs       int     `json:"messages"`
			MsgsPerSec float64 `json:"msgs_per_sec"`
			P50        float64 `json:"latency_p50_seconds"`
			P99        float64 `json:"latency_p99_seconds"`
		} `json:"mice"`
		Agg *struct {
			SubMessages int64 `json:"SubMessages"`
			Frames      int64 `json:"Frames"`
		} `json:"agg"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("madload -small -json: %v\n%s", err, raw)
	}
	if doc.Mice == nil || doc.Mice.Msgs != 96 || doc.Mice.MsgsPerSec <= 0 {
		t.Fatalf("mice doc: %+v", doc.Mice)
	}
	if doc.Mice.P50 <= 0 || doc.Mice.P99 < doc.Mice.P50 {
		t.Errorf("latency quantiles: %+v", doc.Mice)
	}
	if doc.Agg == nil || doc.Agg.SubMessages != 96 || doc.Agg.Frames == 0 ||
		doc.Agg.Frames >= doc.Agg.SubMessages {
		t.Errorf("agg doc: %+v", doc.Agg)
	}
}

func TestMadstatFlowPanel(t *testing.T) {
	out := run(t, "madstat", "-flow", "-noprom", "-count", "3", "-bytes", "65536")
	for _, want := range []string{"flow control:", "credit accounts", "gw <- a1", "sched rounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("madstat -flow output missing %q:\n%s", want, out)
		}
	}
	raw := run(t, "madstat", "-flow", "-json", "-count", "2", "-bytes", "65536")
	var doc struct {
		Stats struct {
			Flow struct {
				CreditsGranted int64 `json:"CreditsGranted"`
				CreditsSpent   int64 `json:"CreditsSpent"`
			} `json:"flow"`
		} `json:"stats"`
		Accounts []struct {
			Gateway string `json:"Gateway"`
			Sender  string `json:"Sender"`
		} `json:"flow_accounts"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("madstat -flow -json: %v", err)
	}
	if doc.Stats.Flow.CreditsGranted == 0 || doc.Stats.Flow.CreditsGranted != doc.Stats.Flow.CreditsSpent {
		t.Errorf("flow doc: %+v", doc.Stats.Flow)
	}
	if len(doc.Accounts) == 0 || doc.Accounts[0].Gateway != "gw" {
		t.Errorf("accounts doc: %+v", doc.Accounts)
	}
}
