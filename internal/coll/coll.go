// Package coll implements classic collective operations — barrier,
// broadcast, reduce, allreduce, gather — on top of the forwarding virtual
// channel.
//
// The point of the package is the paper's transparency claim: the
// collectives are written exactly as they would be for a flat cluster —
// they neither know nor care that some of their tree edges cross gateways.
// The virtual channel routes each edge directly or through the forwarding
// pipeline as the topology demands ("On top of Madeleine, high-level
// traditional routing mechanisms can easily and efficiently be
// implemented").
//
// Fan-out halves (broadcast, the barrier release) use the channel's
// gateway-native multicast when available: the root issues one
// BeginMulticast and the distribution tree's gateways replicate each
// fragment in the network, so the payload crosses each inter-cluster link
// once no matter how many members sit behind it. In reliable mode — where
// multicast is unavailable — the same operations fall back to binomial
// trees over point-to-point sends, byte-identical in result.
package coll

import (
	"encoding/binary"
	"fmt"
	"math"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// Comm is a communicator: an ordered group of nodes on one virtual channel.
// Every member must create its own Comm with the same member list and call
// each collective the same number of times in the same order, as in MPI.
type Comm struct {
	vc      *fwd.VirtualChannel
	members []string
	me      int
}

// New creates the communicator view of node self. The member list must be
// identical (same order) on every participant.
func New(vc *fwd.VirtualChannel, members []string, self string) (*Comm, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("coll: communicator needs at least 2 members")
	}
	seen := make(map[string]bool, len(members))
	me := -1
	for i, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("coll: duplicate member %s", m)
		}
		seen[m] = true
		if m == self {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("coll: %s is not a member", self)
	}
	return &Comm{vc: vc, members: members, me: me}, nil
}

// Rank returns the caller's index within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// send transmits one tagged block to the member with index to.
func (c *Comm) send(p *vtime.Proc, to int, tag byte, data []byte) {
	px := c.vc.At(c.members[c.me]).BeginPacking(p, c.members[to])
	px.Pack(p, []byte{tag}, mad.SendCheaper, mad.ReceiveExpress)
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(data)))
	px.Pack(p, hdr, mad.SendCheaper, mad.ReceiveExpress)
	px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
	px.EndPacking(p)
}

// mcastSend transmits one tagged block to every member of to at once via
// the channel's gateway-native multicast, with the exact block structure of
// send so the receivers' recv is oblivious to how the message travelled.
func (c *Comm) mcastSend(p *vtime.Proc, to []string, tag byte, data []byte) {
	px := c.vc.At(c.members[c.me]).BeginMulticast(p, to...)
	px.Pack(p, []byte{tag}, mad.SendCheaper, mad.ReceiveExpress)
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(data)))
	px.Pack(p, hdr, mad.SendCheaper, mad.ReceiveExpress)
	px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
	px.EndPacking(p)
}

// others returns every member name except the caller's.
func (c *Comm) others() []string {
	out := make([]string, 0, len(c.members)-1)
	for i, m := range c.members {
		if i != c.me {
			out = append(out, m)
		}
	}
	return out
}

// recv blocks for one message and returns its payload; the tag is checked
// against want.
func (c *Comm) recv(p *vtime.Proc, want byte) []byte {
	u := c.vc.At(c.members[c.me]).BeginUnpacking(p)
	tag := make([]byte, 1)
	u.Unpack(p, tag, mad.SendCheaper, mad.ReceiveExpress)
	if tag[0] != want {
		panic(fmt.Sprintf("coll: tag %d arrived while waiting for %d — collectives called out of order", tag[0], want))
	}
	hdr := make([]byte, 4)
	u.Unpack(p, hdr, mad.SendCheaper, mad.ReceiveExpress)
	data := make([]byte, binary.LittleEndian.Uint32(hdr))
	u.Unpack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
	u.EndUnpacking(p)
	return data
}

// Collective tags.
const (
	tagBarrier byte = iota + 1
	tagBcast
	tagReduce
	tagGather
)

// Barrier blocks until every member has entered it: a flat gather to rank 0
// followed by the release — one multicast when the channel supports it, a
// per-member send otherwise.
func (c *Comm) Barrier(p *vtime.Proc) {
	if c.me == 0 {
		for i := 1; i < len(c.members); i++ {
			c.recv(p, tagBarrier)
		}
		if c.vc.CanMulticast() {
			c.mcastSend(p, c.others(), tagBarrier, nil)
			return
		}
		for i := 1; i < len(c.members); i++ {
			c.send(p, i, tagBarrier, nil)
		}
		return
	}
	c.send(p, 0, tagBarrier, nil)
	c.recv(p, tagBarrier)
}

// Broadcast distributes root's buffer to every member; every member passes
// a buffer of the same length and returns with it filled. On a multicast-
// capable channel the root sends once and the network's distribution tree
// replicates; in reliable mode the members relay along a binomial tree
// rooted at root.
func (c *Comm) Broadcast(p *vtime.Proc, root int, data []byte) {
	n := len(c.members)
	if root < 0 || root >= n {
		panic("coll: broadcast root out of range")
	}
	if c.vc.CanMulticast() {
		if c.me == root {
			c.mcastSend(p, c.others(), tagBcast, data)
			return
		}
		got := c.recv(p, tagBcast)
		if len(got) != len(data) {
			panic(fmt.Sprintf("coll: broadcast buffers disagree (%d vs %d bytes)", len(got), len(data)))
		}
		copy(data, got)
		return
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.me - root + n) % n
	if vrank != 0 {
		// Receive from the parent (vrank minus its lowest set bit).
		got := c.recv(p, tagBcast)
		if len(got) != len(data) {
			panic(fmt.Sprintf("coll: broadcast buffers disagree (%d vs %d bytes)", len(got), len(data)))
		}
		copy(data, got)
	}
	// Forward down the binomial tree: a rank that joined at its lowest
	// set bit `low` owns the children vrank+m for every power of two
	// m < low; the root owns all of them. Largest child first, so deep
	// subtrees start early.
	low := vrank & (-vrank)
	if vrank == 0 {
		low = 1
		for low < n {
			low <<= 1
		}
	}
	for mask := low >> 1; mask >= 1; mask >>= 1 {
		if vrank+mask < n {
			c.send(p, (vrank+mask+root)%n, tagBcast, data)
		}
	}
}

// Op is a reduction operator over float64 vectors.
type Op func(acc, in []float64)

// Sum accumulates element-wise sums.
func Sum(acc, in []float64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// Max keeps element-wise maxima.
func Max(acc, in []float64) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

// Min keeps element-wise minima.
func Min(acc, in []float64) {
	for i := range acc {
		if in[i] < acc[i] {
			acc[i] = in[i]
		}
	}
}

func encodeF64(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Reduce combines every member's vector with op; the result lands on root
// (other members receive nil). Binomial-tree combining: log₂(n) rounds.
func (c *Comm) Reduce(p *vtime.Proc, root int, in []float64, op Op) []float64 {
	n := len(c.members)
	if root < 0 || root >= n {
		panic("coll: reduce root out of range")
	}
	vrank := (c.me - root + n) % n
	acc := append([]float64(nil), in...)
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			// Send my partial to the parent and leave.
			c.send(p, (vrank-mask+root)%n, tagReduce, encodeF64(acc))
			return nil
		}
		if vrank+mask < n {
			part := decodeF64(c.recv(p, tagReduce))
			if len(part) != len(acc) {
				panic("coll: reduce vectors disagree in length")
			}
			op(acc, part)
		}
	}
	if vrank != 0 {
		return nil
	}
	return acc
}

// AllReduce is Reduce to rank 0 followed by a Broadcast of the result;
// every member returns the combined vector.
func (c *Comm) AllReduce(p *vtime.Proc, in []float64, op Op) []float64 {
	res := c.Reduce(p, 0, in, op)
	buf := make([]byte, 8*len(in))
	if c.me == 0 {
		copy(buf, encodeF64(res))
	}
	c.Broadcast(p, 0, buf)
	return decodeF64(buf)
}

// Gather collects every member's (variable-length) buffer on root, indexed
// by member rank; other members receive nil.
func (c *Comm) Gather(p *vtime.Proc, root int, in []byte) [][]byte {
	if root < 0 || root >= len(c.members) {
		panic("coll: gather root out of range")
	}
	if c.me != root {
		c.send(p, root, tagGather, in)
		return nil
	}
	out := make([][]byte, len(c.members))
	out[root] = append([]byte(nil), in...)
	// Flat gather: accept in arrival order, senders identified by the
	// unpacking's origin rank.
	for k := 0; k < len(c.members)-1; k++ {
		u := c.vc.At(c.members[c.me]).BeginUnpacking(p)
		tag := make([]byte, 1)
		u.Unpack(p, tag, mad.SendCheaper, mad.ReceiveExpress)
		if tag[0] != tagGather {
			panic("coll: unexpected tag during gather")
		}
		hdr := make([]byte, 4)
		u.Unpack(p, hdr, mad.SendCheaper, mad.ReceiveExpress)
		data := make([]byte, binary.LittleEndian.Uint32(hdr))
		u.Unpack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
		from := u.From()
		u.EndUnpacking(p)
		idx := c.indexOfRank(from)
		if idx < 0 || out[idx] != nil {
			panic("coll: gather received from an unexpected member")
		}
		out[idx] = data
	}
	return out
}

func (c *Comm) indexOfRank(r mad.Rank) int {
	for i, m := range c.members {
		if c.vc.NodeRank(m) == r {
			return i
		}
	}
	return -1
}
