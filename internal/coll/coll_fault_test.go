package coll_test

import (
	"bytes"
	"math"
	"testing"

	"madgo/internal/coll"
	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// faultyTestbed builds a two-cluster topology with redundant gateways (g1
// and g2 both carry an SCI and a Myrinet card) on a reliable virtual
// channel, with the given fault plan armed. The returned member list spans
// both clusters but excludes the gateways, so one of them can be crashed
// without removing a collective participant.
func faultyTestbed(t *testing.T, plan *fault.Plan) (*vtime.Sim, *fwd.VirtualChannel, []string) {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").
		Node("g1", "sci0", "myri0").
		Node("g2", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	if plan != nil {
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		pl.ArmFaults(fault.NewInjector(plan, nil))
	}
	sess := mad.NewSession(pl)
	sci, myri := sisci.New(), bip.New()
	bindings := map[string]fwd.Binding{
		"sci0":  {Net: pl.NewNetwork("sci0", sci.NIC()), Drv: sci},
		"myri0": {Net: pl.NewNetwork("myri0", myri.NIC()), Drv: myri},
	}
	cfg := fwd.DefaultConfig()
	cfg.Reliable = true
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, vc, []string{"a0", "a1", "b0", "b1"}
}

// runMembers spawns fn on every member and runs the simulation.
func runMembers(t *testing.T, sim *vtime.Sim, vc *fwd.VirtualChannel, members []string,
	fn func(p *vtime.Proc, c *coll.Comm, idx int)) {
	t.Helper()
	for i, m := range members {
		i, m := i, m
		sim.Spawn("member:"+m, func(p *vtime.Proc) {
			c, err := coll.New(vc, members, m)
			if err != nil {
				t.Error(err)
				return
			}
			fn(p, c, i)
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// Collectives over a lossy fabric: every cross-cluster edge of the
// broadcast/reduce trees crosses a gateway, and the reliable layer must
// absorb the injected packet loss invisibly.
func TestCollectivesUnderPacketLoss(t *testing.T) {
	plan := fault.NewPlan(7).Drop("*", 0.03)
	sim, vc, members := faultyTestbed(t, plan)
	payload := make([]byte, 60_000)
	for i := range payload {
		payload[i] = byte(i*17 + 3)
	}
	sums := make([][]float64, len(members))
	bcasts := make([][]byte, len(members))
	runMembers(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		data := make([]byte, len(payload))
		if i == 0 {
			copy(data, payload)
		}
		c.Broadcast(p, 0, data)
		bcasts[i] = data
		c.Barrier(p)
		sums[i] = c.AllReduce(p, []float64{float64(i), 1}, coll.Sum)
	})
	for i := range members {
		if !bytes.Equal(bcasts[i], payload) {
			t.Errorf("member %d: broadcast payload corrupted under loss", i)
		}
		if math.Abs(sums[i][0]-6) > 1e-9 || math.Abs(sums[i][1]-4) > 1e-9 {
			t.Errorf("member %d: allreduce = %v, want [6 4]", i, sums[i])
		}
	}
	ds := vc.DeliveryStats()
	if ds.Retransmits == 0 {
		t.Errorf("3%% loss produced no retransmits: %+v", ds)
	}
}

// Collectives with a dead gateway: g1 is crashed from the start, so every
// cross-cluster tree edge must fail over to g2 — the multi-gateway
// redundancy the reliable relay exists for — while results stay exact.
func TestCollectivesSurviveGatewayCrash(t *testing.T) {
	plan := fault.NewPlan(11).Crash("g1", 0, 0)
	sim, vc, members := faultyTestbed(t, plan)
	payload := make([]byte, 40_000)
	for i := range payload {
		payload[i] = byte(i*29 + 5)
	}
	bcasts := make([][]byte, len(members))
	gathers := make([][][]byte, len(members))
	runMembers(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		// Root b0 (rank 2) sits across the gateway from the a-cluster.
		data := make([]byte, len(payload))
		if i == 2 {
			copy(data, payload)
		}
		c.Broadcast(p, 2, data)
		bcasts[i] = data
		gathers[i] = c.Gather(p, 0, []byte{byte(10 + i)})
	})
	for i := range members {
		if !bytes.Equal(bcasts[i], payload) {
			t.Errorf("member %d: broadcast payload corrupted after gateway crash", i)
		}
	}
	for i, parts := range gathers[0] {
		if len(parts) != 1 || parts[0] != byte(10+i) {
			t.Errorf("gather slot %d = %v, want [%d]", i, parts, 10+i)
		}
	}
	ds := vc.DeliveryStats()
	if ds.Retransmits == 0 && ds.Failovers == 0 {
		t.Errorf("dead primary gateway triggered no recovery: %+v", ds)
	}
	if g2 := vc.Gateway("g2"); g2.Messages() == 0 {
		t.Error("surviving gateway g2 relayed nothing")
	}
}

// Loss and a mid-run crash together: the crash lands while traffic is in
// flight, so recovery has to combine per-hop retransmission with failover.
func TestCollectivesUnderLossAndCrash(t *testing.T) {
	plan := fault.NewPlan(13).
		Drop("*", 0.02).
		Crash("g1", vtime.Time(2*vtime.Millisecond), 0)
	sim, vc, members := faultyTestbed(t, plan)
	rounds := 3
	finals := make([][]float64, len(members))
	runMembers(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		v := []float64{float64(i + 1)}
		for r := 0; r < rounds; r++ {
			v = c.AllReduce(p, v, coll.Max)
			c.Barrier(p)
		}
		finals[i] = v
	})
	for i := range members {
		if len(finals[i]) != 1 || finals[i][0] != 4 {
			t.Errorf("member %d: iterated allreduce = %v, want [4]", i, finals[i])
		}
	}
	ds := vc.DeliveryStats()
	if ds.Retransmits == 0 {
		t.Errorf("lossy crashed run produced no retransmits: %+v", ds)
	}
}
