package coll_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"madgo/internal/coll"
	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// testbed builds the paper's two-cluster topology and returns the virtual
// channel plus the member list spanning both clusters.
func testbed(t *testing.T) (*vtime.Sim, *fwd.VirtualChannel, []string) {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").Node("a2", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").Node("b2", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	sci, myri := sisci.New(), bip.New()
	bindings := map[string]fwd.Binding{
		"sci0":  {Net: pl.NewNetwork("sci0", sci.NIC()), Drv: sci},
		"myri0": {Net: pl.NewNetwork("myri0", myri.NIC()), Drv: myri},
	}
	vc, err := fwd.Build(sess, tp, bindings, fwd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim, vc, []string{"a0", "a1", "a2", "gw", "b0", "b1", "b2"}
}

// runAll spawns fn on every member and runs the simulation.
func runAll(t *testing.T, sim *vtime.Sim, vc *fwd.VirtualChannel, members []string,
	fn func(p *vtime.Proc, c *coll.Comm, idx int)) {
	t.Helper()
	for i, m := range members {
		i, m := i, m
		sim.Spawn("member:"+m, func(p *vtime.Proc) {
			c, err := coll.New(vc, members, m)
			if err != nil {
				t.Error(err)
				return
			}
			fn(p, c, i)
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCommValidation(t *testing.T) {
	_, vc, members := testbed(t)
	if _, err := coll.New(vc, members[:1], members[0]); err == nil {
		t.Error("expected error for tiny communicator")
	}
	if _, err := coll.New(vc, members, "nobody"); err == nil {
		t.Error("expected error for non-member self")
	}
	if _, err := coll.New(vc, []string{"a0", "a0"}, "a0"); err == nil {
		t.Error("expected error for duplicate member")
	}
	c, err := coll.New(vc, members, "gw")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 3 || c.Size() != len(members) {
		t.Errorf("rank=%d size=%d", c.Rank(), c.Size())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	sim, vc, members := testbed(t)
	var entered, released [7]vtime.Time
	runAll(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		// Stagger arrivals: the barrier must hold everyone until the
		// last (i=6) arrives.
		p.Sleep(vtime.Duration(i) * vtime.Millisecond)
		entered[i] = p.Now()
		c.Barrier(p)
		released[i] = p.Now()
	})
	latest := entered[0]
	for _, e := range entered {
		if e > latest {
			latest = e
		}
	}
	for i, r := range released {
		if r < latest {
			t.Errorf("member %d released at %v before the last entry at %v", i, r, latest)
		}
	}
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 7; root++ {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			sim, vc, members := testbed(t)
			payload := make([]byte, 20_000)
			for i := range payload {
				payload[i] = byte(i*13 + root)
			}
			runAll(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
				buf := make([]byte, len(payload))
				if i == root {
					copy(buf, payload)
				}
				c.Broadcast(p, root, buf)
				if !bytes.Equal(buf, payload) {
					t.Errorf("member %d got a corrupted broadcast", i)
				}
			})
		})
	}
}

func TestReduceSumOnRoot(t *testing.T) {
	sim, vc, members := testbed(t)
	n := len(members)
	runAll(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		in := []float64{float64(i), 1, float64(i * i)}
		out := c.Reduce(p, 0, in, coll.Sum)
		if i != 0 {
			if out != nil {
				t.Errorf("member %d got a reduce result", i)
			}
			return
		}
		wantSum := 0.0
		wantSq := 0.0
		for k := 0; k < n; k++ {
			wantSum += float64(k)
			wantSq += float64(k * k)
		}
		if out[0] != wantSum || out[1] != float64(n) || out[2] != wantSq {
			t.Errorf("reduce = %v", out)
		}
	})
}

func TestAllReduceOps(t *testing.T) {
	cases := []struct {
		name string
		op   coll.Op
		want func(vals []float64) float64
	}{
		{"sum", coll.Sum, func(v []float64) float64 {
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s
		}},
		{"max", coll.Max, func(v []float64) float64 {
			m := math.Inf(-1)
			for _, x := range v {
				m = math.Max(m, x)
			}
			return m
		}},
		{"min", coll.Min, func(v []float64) float64 {
			m := math.Inf(1)
			for _, x := range v {
				m = math.Min(m, x)
			}
			return m
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sim, vc, members := testbed(t)
			vals := []float64{3.5, -2, 7, 0.25, -9, 4, 11}
			want := tc.want(vals)
			runAll(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
				out := c.AllReduce(p, []float64{vals[i]}, tc.op)
				if len(out) != 1 || out[0] != want {
					t.Errorf("member %d allreduce = %v, want %v", i, out, want)
				}
			})
		})
	}
}

func TestGatherVariableLengths(t *testing.T) {
	sim, vc, members := testbed(t)
	runAll(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		mine := bytes.Repeat([]byte{byte(i)}, i+1)
		out := c.Gather(p, 2, mine)
		if i != 2 {
			if out != nil {
				t.Errorf("member %d got gather output", i)
			}
			return
		}
		for k, buf := range out {
			want := bytes.Repeat([]byte{byte(k)}, k+1)
			if !bytes.Equal(buf, want) {
				t.Errorf("gather[%d] = %v", k, buf)
			}
		}
	})
}

func TestConsecutiveCollectives(t *testing.T) {
	// A realistic program: barrier, broadcast of parameters, local work,
	// allreduce, gather of summaries — all in sequence.
	sim, vc, members := testbed(t)
	params := []byte("iterations=3")
	runAll(t, sim, vc, members, func(p *vtime.Proc, c *coll.Comm, i int) {
		c.Barrier(p)
		buf := make([]byte, len(params))
		if i == 0 {
			copy(buf, params)
		}
		c.Broadcast(p, 0, buf)
		if !bytes.Equal(buf, params) {
			t.Errorf("member %d params corrupted", i)
		}
		for iter := 0; iter < 3; iter++ {
			local := []float64{float64(i + iter)}
			global := c.AllReduce(p, local, coll.Sum)
			want := 0.0
			for k := 0; k < c.Size(); k++ {
				want += float64(k + iter)
			}
			if global[0] != want {
				t.Errorf("member %d iter %d: %v != %v", i, iter, global[0], want)
			}
		}
		c.Gather(p, 0, []byte{byte(i)})
	})
}

// Property: allreduce(sum) over random vectors equals the local sum of all
// inputs, element-wise, regardless of which cluster each value lives in.
func TestAllReduceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		sim, vc, members := testbed(t)
		width := 1 + int(rng()%16)
		inputs := make([][]float64, len(members))
		want := make([]float64, width)
		for i := range inputs {
			inputs[i] = make([]float64, width)
			for j := range inputs[i] {
				inputs[i][j] = float64(int64(rng()%2000) - 1000)
				want[j] += inputs[i][j]
			}
		}
		ok := true
		for i, m := range members {
			i, m := i, m
			sim.Spawn("m:"+m, func(p *vtime.Proc) {
				c, err := coll.New(vc, members, m)
				if err != nil {
					ok = false
					return
				}
				out := c.AllReduce(p, inputs[i], coll.Sum)
				for j := range want {
					if math.Abs(out[j]-want[j]) > 1e-9 {
						ok = false
					}
				}
			})
		}
		if err := sim.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// newRng is a tiny deterministic generator so the property test does not
// depend on math/rand ordering.
func newRng(seed int64) func() uint64 {
	s := uint64(seed)*2654435761 + 1
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}
