package coll_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"madgo/internal/coll"
	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sbp"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// The broadcast contract must be mode-independent: whatever buffer the root
// offers, every member returns with a byte-identical copy — whether the
// fan-out travelled the gateway-native multicast tree (streaming modes), a
// binomial tree of reliable datagrams, or a mix of direct and forwarded
// edges. The property test draws random chain topologies, member subsets,
// roots and payloads and checks all modes deliver the same bytes.

// randChain builds a random 1-3 cluster chain: every network holds 2-3 leaf
// nodes, consecutive networks share a gateway.
func randChain(t *testing.T, rng *rand.Rand) (*topo.Topology, []string) {
	t.Helper()
	protos := []string{"sci", "myrinet", "sbp"}
	nets := 1 + rng.Intn(3)
	b := topo.NewBuilder()
	var names []string
	netNames := make([]string, nets)
	for i := 0; i < nets; i++ {
		netNames[i] = fmt.Sprintf("net%d", i)
		b = b.Network(netNames[i], protos[rng.Intn(len(protos))])
	}
	for i := 0; i < nets; i++ {
		for j := 0; j < 2+rng.Intn(2); j++ {
			n := fmt.Sprintf("n%d_%d", i, j)
			b = b.Node(n, netNames[i])
			names = append(names, n)
		}
		if i+1 < nets {
			gw := fmt.Sprintf("gw%d", i)
			b = b.Node(gw, netNames[i], netNames[i+1])
			names = append(names, gw)
		}
	}
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp, names
}

func buildColl(t *testing.T, tp *topo.Topology, cfg fwd.Config) (*vtime.Sim, *fwd.VirtualChannel) {
	t.Helper()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		switch nw.Protocol {
		case "sci":
			d := sisci.New()
			bindings[nw.Name] = fwd.Binding{Net: d.NewNetwork(pl, nw.Name), Drv: d}
		case "myrinet":
			d := bip.New()
			bindings[nw.Name] = fwd.Binding{Net: d.NewNetwork(pl, nw.Name), Drv: d}
		case "sbp":
			d := sbp.New()
			bindings[nw.Name] = fwd.Binding{Net: d.NewNetwork(pl, nw.Name), Drv: d}
		default:
			t.Fatalf("no driver for %s", nw.Protocol)
		}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, vc
}

// broadcastOnce runs one Broadcast over the given members and returns every
// member's resulting buffer.
func broadcastOnce(t *testing.T, sim *vtime.Sim, vc *fwd.VirtualChannel,
	members []string, root int, payload []byte) [][]byte {
	t.Helper()
	out := make([][]byte, len(members))
	for i, m := range members {
		i, m := i, m
		sim.Spawn("member:"+m, func(p *vtime.Proc) {
			c, err := coll.New(vc, members, m)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, len(payload))
			if i == root {
				copy(buf, payload)
			}
			c.Broadcast(p, root, buf)
			out[i] = buf
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBroadcastModeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	modes := []struct {
		name string
		cfg  func() fwd.Config
	}{
		{"plain", fwd.DefaultConfig},
		{"flow", func() fwd.Config {
			cfg := fwd.DefaultConfig()
			cfg.FlowControl = true
			return cfg
		}},
		{"reliable", func() fwd.Config {
			cfg := fwd.DefaultConfig()
			cfg.Reliable = true
			return cfg
		}},
	}
	for trial := 0; trial < 12; trial++ {
		tp, names := randChain(t, rng)
		// Random member subset of size >= 2, random order.
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		members := names[:2+rng.Intn(len(names)-1)]
		root := rng.Intn(len(members))
		payload := make([]byte, 1+rng.Intn(100_000))
		rng.Read(payload)

		var want [][]byte
		for _, mode := range modes {
			sim, vc := buildColl(t, tp, mode.cfg())
			got := broadcastOnce(t, sim, vc, members, root, payload)
			for i := range got {
				if !bytes.Equal(got[i], payload) {
					t.Fatalf("trial %d mode %s: member %s holds corrupted broadcast (%d bytes, root %s)",
						trial, mode.name, members[i], len(payload), members[root])
				}
			}
			if want == nil {
				want = got
				continue
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("trial %d mode %s: member %s disagrees with baseline",
						trial, mode.name, members[i])
				}
			}
		}
	}
}

// TestBroadcastMulticastActuallyEngaged guards the property test against
// silently regressing to unicast: on a streaming channel with a forwarded
// member, Broadcast must enter the multicast path.
func TestBroadcastMulticastActuallyEngaged(t *testing.T) {
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, vc := buildColl(t, tp, fwd.DefaultConfig())
	members := []string{"a0", "a1", "gw", "b0", "b1"}
	payload := make([]byte, 50_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	broadcastOnce(t, sim, vc, members, 0, payload)
	st := vc.McastStats()
	if st.Messages != 1 {
		t.Errorf("McastStats.Messages = %d, want 1 (broadcast bypassed multicast)", st.Messages)
	}
	if st.Relays == 0 {
		t.Error("no gateway replicated the broadcast")
	}
	if st.LocalDeliveries != 1 {
		t.Errorf("LocalDeliveries = %d, want 1 (gw is a member)", st.LocalDeliveries)
	}
	// The gateway pulled the payload off the ingress wire exactly once
	// (+5 bytes of collective tag and length preamble).
	if b := vc.Gateway("gw").Bytes(); b != int64(len(payload))+5 {
		t.Errorf("gw ingress bytes = %d, want %d", b, len(payload)+5)
	}
}
