// Package bip is the Myrinet transmission module, modelled after BIP (Basic
// Interface for Parallelism) on LANai 4.3 boards — the interconnect of the
// paper's first cluster.
//
// Characteristics carried by the model: dynamic buffers (any user memory can
// be sent), card-initiated DMA on both PCI buses, a credit-based eager path
// for short messages and a rendezvous handshake for long ones, high
// asymptotic bandwidth but a noticeable per-message cost that makes SCI the
// better network below the ≈16 KB crossover.
package bip

import (
	"madgo/internal/hw"
	"madgo/internal/mad"
)

// Driver is the BIP/Myrinet transmission module.
type Driver struct {
	mad.BaseDriver
	nic hw.NICParams
}

// New returns a BIP driver with the calibrated LANai 4.3 model.
func New() *Driver { return &Driver{nic: hw.Myrinet()} }

// NewWith returns a BIP driver with explicit NIC parameters (used by
// sensitivity-analysis benchmarks).
func NewWith(nic hw.NICParams) *Driver { return &Driver{nic: nic} }

// Protocol returns "myrinet".
func (d *Driver) Protocol() string { return "myrinet" }

// NIC returns the hardware model.
func (d *Driver) NIC() hw.NICParams { return d.nic }

// Caps: dynamic buffers with an 8 KB aggregation buffer; blocks up to 1 KB
// (and express blocks) are grouped, larger cheaper blocks go zero-copy. The
// LANai gathers send descriptors in firmware, so grouping costs no host
// copies (§2.1.1's "optional scatter/gather protocol capabilities").
func (d *Driver) Caps() mad.Caps {
	return mad.Caps{
		AggregateLimit: 8 * 1024,
		CopyThreshold:  1024,
		ScatterGather:  true,
		GatherEntries:  16,
	}
}

// NewNetwork creates a Myrinet network instance whose wires match this
// driver's NIC model.
func (d *Driver) NewNetwork(pl *hw.Platform, name string) *hw.Network {
	return pl.NewNetwork(name, d.nic)
}
