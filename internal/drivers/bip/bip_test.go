package bip_test

import (
	"bytes"
	"testing"

	"madgo/internal/drivers/bip"
	"madgo/internal/fluid"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestDriverIdentity(t *testing.T) {
	d := bip.New()
	if d.Protocol() != "myrinet" {
		t.Fatalf("protocol = %s", d.Protocol())
	}
	nic := d.NIC()
	if nic.SendBusClass != fluid.ClassDMA || nic.RecvBusClass != fluid.ClassDMA {
		t.Error("BIP must DMA on both buses")
	}
	if nic.RendezvousThreshold == 0 {
		t.Error("BIP needs a long-message rendezvous")
	}
	caps := d.Caps()
	if caps.StaticBuffers {
		t.Error("BIP has dynamic buffers")
	}
	if caps.AggregateLimit == 0 {
		t.Error("BIP groups small blocks")
	}
}

func TestNewWithOverridesModel(t *testing.T) {
	nic := hw.Myrinet()
	nic.SendEngineRate = 99e6
	d := bip.NewWith(nic)
	if d.NIC().SendEngineRate != 99e6 {
		t.Error("NewWith did not take the custom model")
	}
}

func TestAllocStaticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl := hw.NewPlatform(vtime.New())
	h := pl.NewHost("x", hw.DefaultCPU(), hw.DefaultPCI())
	bip.New().AllocStatic(h, 1024)
}

// TestRendezvousVsEagerTiming checks that a message just above the
// rendezvous threshold pays the handshake and a message below does not.
func TestRendezvousVsEagerTiming(t *testing.T) {
	oneway := func(n int) vtime.Duration {
		sim := vtime.New()
		pl := hw.NewPlatform(sim)
		sess := mad.NewSession(pl)
		a := sess.AddNode("a")
		b := sess.AddNode("b")
		d := bip.New()
		ch := sess.NewChannel("c", d.NewNetwork(pl, "m"), d, a, b)
		var done vtime.Time
		sim.Spawn("s", func(p *vtime.Proc) {
			px := ch.At(a).BeginPacking(p, b.Rank)
			px.Pack(p, make([]byte, n), mad.SendLater, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		sim.Spawn("r", func(p *vtime.Proc) {
			u := ch.At(b).BeginUnpacking(p)
			u.Unpack(p, make([]byte, n), mad.SendLater, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			done = p.Now()
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return vtime.Duration(done)
	}
	thr := bip.New().NIC().RendezvousThreshold
	below := oneway(thr)     // eager
	above := oneway(thr + 1) // rendezvous
	extra := above - below
	want := bip.New().NIC().RendezvousCost
	if extra < want/2 {
		t.Errorf("rendezvous added only %v, want ≈%v", extra, want)
	}
}

func TestSmallMessagesAggregated(t *testing.T) {
	// Many tiny blocks must ride in aggregates (copies on both sides),
	// and arrive intact.
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	d := bip.New()
	ch := sess.NewChannel("c", d.NewNetwork(pl, "m"), d, a, b)
	const blocks = 40
	sim.Spawn("s", func(p *vtime.Proc) {
		px := ch.At(a).BeginPacking(p, b.Rank)
		for i := 0; i < blocks; i++ {
			px.Pack(p, []byte{byte(i), byte(i + 1)}, mad.SendCheaper, mad.ReceiveCheaper)
		}
		px.EndPacking(p)
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		u := ch.At(b).BeginUnpacking(p)
		for i := 0; i < blocks; i++ {
			got := make([]byte, 2)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			if !bytes.Equal(got, []byte{byte(i), byte(i + 1)}) {
				t.Errorf("block %d corrupted", i)
			}
		}
		u.EndUnpacking(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The LANai gathers send descriptors: the SENDER makes no host
	// copies; the receiver still copies blocks out of the aggregate.
	if a.Host.Copies() != 0 {
		t.Errorf("scatter/gather sender made %d copies", a.Host.Copies())
	}
	if b.Host.Copies() == 0 {
		t.Error("receiver must copy blocks out of the aggregate")
	}
}

func TestScatterGatherCapability(t *testing.T) {
	caps := bip.New().Caps()
	if !caps.ScatterGather || caps.GatherEntries == 0 {
		t.Error("BIP models a gather-DMA send path")
	}
}
