// Package loopback is a test-only transmission module with (almost) free,
// instantaneous transfers: unit tests for the message layer and the
// forwarding machinery use it to check behaviour without the hardware model
// getting in the way.
package loopback

import (
	"madgo/internal/fluid"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// Params returns a NIC model so fast its costs are negligible while
// remaining strictly positive (the fluid engine requires positive rates).
func Params() hw.NICParams {
	return hw.NICParams{
		Protocol:       "loopback",
		WireRate:       1e15,
		WireLatency:    vtime.Nanosecond,
		SendEngineRate: 1e15,
		SendBusClass:   fluid.ClassDMA,
		RecvEngineRate: 1e15,
		RecvBusClass:   fluid.ClassDMA,
	}
}

// Driver is the loopback transmission module.
type Driver struct {
	mad.BaseDriver
	caps mad.Caps
}

// New returns a loopback driver with a small aggregation buffer so both the
// copied and the referenced paths get exercised.
func New() *Driver {
	return &Driver{caps: mad.Caps{AggregateLimit: 4096, CopyThreshold: 256}}
}

// NewWithCaps returns a loopback driver with explicit capabilities, letting
// tests force a particular BMM (eager, aggregating sizes, TM MTU).
func NewWithCaps(caps mad.Caps) *Driver { return &Driver{caps: caps} }

// Protocol returns "loopback".
func (d *Driver) Protocol() string { return "loopback" }

// NIC returns the near-free hardware model.
func (d *Driver) NIC() hw.NICParams { return Params() }

// Caps returns the configured capabilities.
func (d *Driver) Caps() mad.Caps { return d.caps }

// NewNetwork creates a loopback network instance.
func (d *Driver) NewNetwork(pl *hw.Platform, name string) *hw.Network {
	return pl.NewNetwork(name, Params())
}
