package loopback_test

import (
	"testing"

	"madgo/internal/drivers/loopback"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestDriverIdentity(t *testing.T) {
	d := loopback.New()
	if d.Protocol() != "loopback" {
		t.Fatalf("protocol = %s", d.Protocol())
	}
	if d.Caps().AggregateLimit == 0 {
		t.Error("default caps should aggregate so both BMM paths run in tests")
	}
}

func TestNewWithCapsSelectsBMM(t *testing.T) {
	eager := loopback.NewWithCaps(mad.Caps{})
	if eager.Caps().AggregateLimit != 0 {
		t.Error("custom caps ignored")
	}
}

func TestTransfersAreNearFree(t *testing.T) {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	d := loopback.New()
	ch := sess.NewChannel("c", d.NewNetwork(pl, "l"), d, a, b)
	var done vtime.Time
	sim.Spawn("s", func(p *vtime.Proc) {
		px := ch.At(a).BeginPacking(p, b.Rank)
		px.Pack(p, make([]byte, 1<<20), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		u := ch.At(b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, 1<<20), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Wire and NIC costs are negligible; what remains is the host-side
	// memcpy out of the instantly-filled driver slot (1 MB at 160 MB/s
	// ≈ 6.5 ms) plus BMM bookkeeping — no network-model time.
	if d := vtime.Duration(done); d > 15*vtime.Millisecond {
		t.Errorf("loopback 1MB took %v, want memcpy-bound (≈6.5ms)", d)
	}
}
