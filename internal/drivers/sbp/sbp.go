// Package sbp is the static-buffer transmission module, modelled after SBP
// (the reliable kernel protocol of Russell & Hatcher that the paper cites
// in §2.3): data can only be transmitted from driver-allocated buffers, so
// the buffer-management layer stages every block through 32 KB slots.
//
// The driver exists to exercise the zero-copy election logic on gateways:
// when the egress network is SBP, the forwarding engine asks this driver
// for a static buffer and receives the incoming packet directly into it,
// saving the copy; when both sides are static, one copy is unavoidable —
// the exact case analysis of the paper's §2.3.
package sbp

import (
	"madgo/internal/hw"
	"madgo/internal/mad"
)

// Driver is the SBP transmission module.
type Driver struct {
	mad.BaseDriver
	nic       hw.NICParams
	allocated int64
}

// New returns an SBP driver with the calibrated model.
func New() *Driver { return &Driver{nic: hw.SBP()} }

// NewWith returns an SBP driver with explicit NIC parameters.
func NewWith(nic hw.NICParams) *Driver { return &Driver{nic: nic} }

// Protocol returns "sbp".
func (d *Driver) Protocol() string { return "sbp" }

// NIC returns the hardware model.
func (d *Driver) NIC() hw.NICParams { return d.nic }

// Caps: static buffers; MaxTransmission is the slot size.
func (d *Driver) Caps() mad.Caps {
	return mad.Caps{
		StaticBuffers:   true,
		MaxTransmission: d.nic.StaticBufSize,
	}
}

// AllocStatic hands out a driver-owned slot. Slots come from a preallocated
// pool in the modelled kernel, so allocation itself is free; the count is
// exposed for tests.
func (d *Driver) AllocStatic(h *hw.Host, n int) *mad.Buffer {
	if n <= 0 {
		panic("sbp: nonpositive static buffer size")
	}
	d.allocated++
	return &mad.Buffer{Data: make([]byte, n), Static: true, Owner: d}
}

// Allocated returns how many static buffers were handed out.
func (d *Driver) Allocated() int64 { return d.allocated }

// NewNetwork creates an SBP network instance whose wires match this
// driver's NIC model.
func (d *Driver) NewNetwork(pl *hw.Platform, name string) *hw.Network {
	return pl.NewNetwork(name, d.nic)
}
