package sbp_test

import (
	"testing"

	"madgo/internal/drivers/sbp"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestDriverIdentity(t *testing.T) {
	d := sbp.New()
	if d.Protocol() != "sbp" {
		t.Fatalf("protocol = %s", d.Protocol())
	}
	caps := d.Caps()
	if !caps.StaticBuffers {
		t.Fatal("SBP is the static-buffer protocol")
	}
	if caps.MaxTransmission != d.NIC().StaticBufSize {
		t.Error("slot size must be the TM MTU")
	}
}

func TestAllocStatic(t *testing.T) {
	d := sbp.New()
	pl := hw.NewPlatform(vtime.New())
	h := pl.NewHost("x", hw.DefaultCPU(), hw.DefaultPCI())
	buf := d.AllocStatic(h, 1024)
	if !buf.Static || buf.Owner != d || len(buf.Data) != 1024 {
		t.Fatalf("buffer = %+v", buf)
	}
	if d.Allocated() != 1 {
		t.Errorf("allocated = %d", d.Allocated())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nonpositive size")
		}
	}()
	d.AllocStatic(h, 0)
}

func TestStagingThroughSlots(t *testing.T) {
	// A block larger than the slot size spans multiple slots; both sides
	// copy exactly the payload.
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	d := sbp.New()
	ch := sess.NewChannel("c", d.NewNetwork(pl, "s"), d, a, b)
	n := d.NIC().StaticBufSize*2 + 100
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	sim.Spawn("s", func(p *vtime.Proc) {
		px := ch.At(a).BeginPacking(p, b.Rank)
		px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		u := ch.At(b).BeginUnpacking(p)
		got = make([]byte, n)
		u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("corrupted at %d", i)
		}
	}
	if d.Allocated() < 3 {
		t.Errorf("allocated %d slots, want >= 3", d.Allocated())
	}
	if a.Host.BytesCopied() != int64(n) || b.Host.BytesCopied() != int64(n) {
		t.Errorf("copies = %d/%d bytes, want %d each", a.Host.BytesCopied(), b.Host.BytesCopied(), n)
	}
}
