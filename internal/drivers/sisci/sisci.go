// Package sisci is the SCI transmission module, modelled after Dolphin's
// SISCI library on D310 boards — the interconnect of the paper's second
// cluster.
//
// Characteristics carried by the model: sends are processor PIO writes into
// mapped remote segments, accelerated by the CPU's write-combining buffer
// (full rate only for ≥128-byte chunks); remote writes land on the
// receiving bus as card-initiated DMA; latency is excellent, which is why
// SCI wins for small messages. The PIO send path is precisely what the
// Myrinet card's DMA outranks on a gateway, producing the paper's §3.4
// collapse.
package sisci

import (
	"madgo/internal/hw"
	"madgo/internal/mad"
)

// Driver is the SISCI/SCI transmission module.
type Driver struct {
	mad.BaseDriver
	nic hw.NICParams
}

// New returns a SISCI driver with the calibrated D310 model.
func New() *Driver { return &Driver{nic: hw.SCI()} }

// NewDMA returns a SISCI driver that sends with the board's DMA engine
// instead of processor PIO — the §3.4.1 workaround for the gateway PCI
// conflict. Slightly slower in isolation, immune to the DMA-over-PIO
// demotion when forwarding Myrinet→SCI.
func NewDMA() *Driver { return &Driver{nic: hw.SCIDMA()} }

// NewWith returns a SISCI driver with explicit NIC parameters.
func NewWith(nic hw.NICParams) *Driver { return &Driver{nic: nic} }

// Protocol returns "sci".
func (d *Driver) Protocol() string { return "sci" }

// NIC returns the hardware model.
func (d *Driver) NIC() hw.NICParams { return d.nic }

// Caps: dynamic buffers; aggregation up to 8 KB with a small copy threshold
// — SCI moves even modest blocks efficiently in place, so only sub-WC-chunk
// blocks are worth grouping.
func (d *Driver) Caps() mad.Caps {
	return mad.Caps{
		AggregateLimit: 8 * 1024,
		CopyThreshold:  128,
	}
}

// NewNetwork creates an SCI network instance whose wires match this
// driver's NIC model.
func (d *Driver) NewNetwork(pl *hw.Platform, name string) *hw.Network {
	return pl.NewNetwork(name, d.nic)
}
