package sisci_test

import (
	"testing"

	"madgo/internal/drivers/sisci"
	"madgo/internal/fluid"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestDriverIdentity(t *testing.T) {
	d := sisci.New()
	if d.Protocol() != "sci" {
		t.Fatalf("protocol = %s", d.Protocol())
	}
	nic := d.NIC()
	if nic.SendBusClass != fluid.ClassPIO {
		t.Error("SCI sends are processor PIO — the whole point of §3.4")
	}
	if nic.RecvBusClass != fluid.ClassDMA {
		t.Error("remote writes land as card DMA")
	}
	if nic.RendezvousThreshold != 0 {
		t.Error("SISCI has no rendezvous")
	}
	if nic.WCChunk == 0 || nic.SmallWriteRate == 0 {
		t.Error("write-combining model missing")
	}
	if nic.PostGateThreshold == 0 {
		t.Error("large sends must be post-gated (exposed remote buffers)")
	}
}

func TestDMAModeIdentity(t *testing.T) {
	d := sisci.NewDMA()
	nic := d.NIC()
	if nic.SendBusClass != fluid.ClassDMA {
		t.Error("DMA mode must class sends as DMA")
	}
	if nic.SendEngineRate >= sisci.New().NIC().SendEngineRate {
		t.Error("the D310 DMA engine is slower than write-combined PIO")
	}
	if nic.WCChunk != 0 {
		t.Error("write combining is a PIO concept")
	}
}

// oneway measures a single-block transfer with the given driver.
func oneway(t *testing.T, d *sisci.Driver, n int) vtime.Duration {
	t.Helper()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	ch := sess.NewChannel("c", d.NewNetwork(pl, "s"), d, a, b)
	var done vtime.Time
	sim.Spawn("s", func(p *vtime.Proc) {
		px := ch.At(a).BeginPacking(p, b.Rank)
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		u := ch.At(b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return vtime.Duration(done)
}

func TestPIOBeatsDMAInIsolation(t *testing.T) {
	// Without bus contention, write-combined PIO is the faster engine —
	// which is why it is the default and why the paper's gateway suffers.
	pio := oneway(t, sisci.New(), 256*1024)
	dma := oneway(t, sisci.NewDMA(), 256*1024)
	if pio >= dma {
		t.Errorf("PIO (%v) should beat DMA (%v) on an idle machine", pio, dma)
	}
}

func TestLatencyClass(t *testing.T) {
	// SCI's small-message latency is the microsecond-class number that
	// makes it win below the crossover.
	d := oneway(t, sisci.New(), 1)
	if us := d.Microseconds(); us > 10 {
		t.Errorf("1-byte latency = %.1fµs, want < 10µs", us)
	}
}

func TestWriteCombiningFloor(t *testing.T) {
	nic := sisci.New().NIC()
	if r := nic.EffectiveSendRate(64); r != nic.SmallWriteRate {
		t.Errorf("sub-chunk rate = %v", r)
	}
	if r := nic.EffectiveSendRate(nic.WCChunk); r != nic.SendEngineRate {
		t.Errorf("chunk-aligned rate = %v", r)
	}
}

func TestAllocStaticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl := hw.NewPlatform(vtime.New())
	h := pl.NewHost("x", hw.DefaultCPU(), hw.DefaultPCI())
	sisci.New().AllocStatic(h, 1024)
}
