// Package tcpnet is the Fast-Ethernet/TCP transmission module: the slow,
// ubiquitous control path the paper's ping harness uses for its return ack,
// and the network PACX-style baselines route inter-cluster traffic over.
//
// Characteristics carried by the model: kernel sockets copy every payload
// byte on both sides (charged to the hosts' CPUs), per-message costs are
// dominated by the protocol stack, and the wire tops out at 100 Mb/s.
package tcpnet

import (
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// Driver is the TCP/Fast-Ethernet transmission module.
type Driver struct {
	nic hw.NICParams
}

// New returns a TCP driver with the calibrated Fast-Ethernet model.
func New() *Driver { return &Driver{nic: hw.FastEthernet()} }

// NewWith returns a TCP driver with explicit NIC parameters.
func NewWith(nic hw.NICParams) *Driver { return &Driver{nic: nic} }

// Protocol returns "ethernet".
func (d *Driver) Protocol() string { return "ethernet" }

// NIC returns the hardware model.
func (d *Driver) NIC() hw.NICParams { return d.nic }

// Caps: dynamic buffers, aggressive aggregation (the kernel copies anyway,
// so batching always pays).
func (d *Driver) Caps() mad.Caps {
	return mad.Caps{
		AggregateLimit: 4 * 1024,
		CopyThreshold:  512,
	}
}

// AllocStatic panics: TCP has dynamic buffers.
func (d *Driver) AllocStatic(h *hw.Host, n int) *mad.Buffer {
	panic("tcpnet: no static buffers")
}

// OnSend charges the kernel's socket-buffer copy on the sending host.
func (d *Driver) OnSend(p *vtime.Proc, h *hw.Host, bytes int) {
	h.Memcpy(p, bytes)
}

// OnRecv charges the kernel-to-user copy on the receiving host.
func (d *Driver) OnRecv(p *vtime.Proc, h *hw.Host, bytes int) {
	h.Memcpy(p, bytes)
}

// NewNetwork creates a Fast-Ethernet network instance whose wires match
// this driver's NIC model.
func (d *Driver) NewNetwork(pl *hw.Platform, name string) *hw.Network {
	return pl.NewNetwork(name, d.nic)
}
