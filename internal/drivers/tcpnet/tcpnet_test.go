package tcpnet_test

import (
	"testing"

	"madgo/internal/drivers/tcpnet"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestDriverIdentity(t *testing.T) {
	d := tcpnet.New()
	if d.Protocol() != "ethernet" {
		t.Fatalf("protocol = %s", d.Protocol())
	}
	if d.Caps().StaticBuffers {
		t.Error("sockets take any user memory")
	}
	if d.NIC().WireRate > 12.5e6 {
		t.Error("Fast Ethernet is 100 Mb/s")
	}
}

func TestKernelCopiesChargedBothSides(t *testing.T) {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	d := tcpnet.New()
	ch := sess.NewChannel("c", d.NewNetwork(pl, "e"), d, a, b)
	const n = 200_000
	sim.Spawn("s", func(p *vtime.Proc) {
		px := ch.At(a).BeginPacking(p, b.Rank)
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		u := ch.At(b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Host.BytesCopied() < n {
		t.Errorf("sender kernel copies = %d, want >= %d", a.Host.BytesCopied(), n)
	}
	if b.Host.BytesCopied() < n {
		t.Errorf("receiver kernel copies = %d, want >= %d", b.Host.BytesCopied(), n)
	}
}

func TestBandwidthEthernetBound(t *testing.T) {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	d := tcpnet.New()
	ch := sess.NewChannel("c", d.NewNetwork(pl, "e"), d, a, b)
	const n = 1 << 20
	var done vtime.Time
	sim.Spawn("s", func(p *vtime.Proc) {
		px := ch.At(a).BeginPacking(p, b.Rank)
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	sim.Spawn("r", func(p *vtime.Proc) {
		u := ch.At(b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	mbps := float64(n) / vtime.Duration(done).Seconds() / 1e6
	if mbps > 12 || mbps < 7 {
		t.Errorf("TCP bandwidth = %.1f MB/s, want ≈10", mbps)
	}
}

func TestAllocStaticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl := hw.NewPlatform(vtime.New())
	h := pl.NewHost("x", hw.DefaultCPU(), hw.DefaultPCI())
	tcpnet.New().AllocStatic(h, 1)
}

func TestNewWith(t *testing.T) {
	nic := hw.FastEthernet()
	nic.WireLatency = 123 * vtime.Microsecond
	if tcpnet.NewWith(nic).NIC().WireLatency != 123*vtime.Microsecond {
		t.Error("NewWith ignored the model")
	}
}
