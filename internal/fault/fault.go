// Package fault is the deterministic fault-injection substrate of the
// reproduction: seeded, schedule-driven injectors that the hardware model
// consults on every reliable transmission. A fault Plan is a declarative
// schedule — packet drop/corruption probabilities, link flaps, NIC stalls
// and node crash/restart windows — and an Injector is one armed instance of
// a plan, reproducible bit-for-bit from the plan's seed.
//
// The injector is deliberately dumb: it answers point queries ("does this
// packet survive?", "is this node dead right now?") and keeps counters. The
// reliability protocol in package fwd is what turns injected faults into
// retransmissions, failovers and typed delivery errors; flow teardown on
// link-down windows is armed by hw.Platform.ArmFaults.
package fault

import (
	"fmt"
	"sort"

	"madgo/internal/obs"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// Kind is the class of one fault rule.
type Kind uint8

const (
	// Drop loses matching packets with probability Prob.
	Drop Kind = iota
	// Corrupt flips one byte of matching packets with probability Prob.
	Corrupt
	// Flap takes a whole network down for the window [At, At+For): every
	// packet on it is lost and in-flight flows are cancelled.
	Flap
	// Stall delays every send from a node by Delay during [At, At+For):
	// a wedged NIC engine that still eventually completes.
	Stall
	// Crash blackholes a node for [At, At+For): everything it sends or
	// should receive is lost. For == 0 means it never restarts.
	Crash
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Flap:
		return "flap"
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rule is one entry of a fault schedule. Which fields matter depends on
// Kind; the builder methods on Plan fill them consistently.
type Rule struct {
	Kind Kind
	// Net filters Drop/Corrupt/Flap rules to one network; "" or "*"
	// matches every network.
	Net string
	// Node names the target of Stall/Crash rules.
	Node string
	// Prob is the per-packet probability of Drop/Corrupt rules.
	Prob float64
	// At and For bound the window of Flap/Stall/Crash rules. For == 0
	// means the window never closes.
	At  vtime.Time
	For vtime.Duration
	// Delay is the extra per-send latency of a Stall rule.
	Delay vtime.Duration
}

func (r Rule) matchesNet(net string) bool {
	return r.Net == "" || r.Net == "*" || r.Net == net
}

func (r Rule) active(now vtime.Time) bool {
	if now < r.At {
		return false
	}
	return r.For == 0 || now < r.At.Add(r.For)
}

// Plan is a reproducible fault schedule: a seed plus rules. The zero value
// is a valid empty plan; use the builder methods to grow one.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan { return &Plan{Seed: seed} }

// Drop adds a packet-loss rule: packets on net (or every network for "*")
// are lost with probability prob.
func (p *Plan) Drop(net string, prob float64) *Plan {
	p.Rules = append(p.Rules, Rule{Kind: Drop, Net: net, Prob: prob})
	return p
}

// Corrupt adds a corruption rule: one byte of matching packets is flipped
// with probability prob.
func (p *Plan) Corrupt(net string, prob float64) *Plan {
	p.Rules = append(p.Rules, Rule{Kind: Corrupt, Net: net, Prob: prob})
	return p
}

// Flap takes net down for the window [at, at+dur); dur == 0 means forever.
func (p *Plan) Flap(net string, at vtime.Time, dur vtime.Duration) *Plan {
	p.Rules = append(p.Rules, Rule{Kind: Flap, Net: net, At: at, For: dur})
	return p
}

// Stall delays every send from node by delay during [at, at+dur).
func (p *Plan) Stall(node string, at vtime.Time, dur, delay vtime.Duration) *Plan {
	p.Rules = append(p.Rules, Rule{Kind: Stall, Node: node, At: at, For: dur, Delay: delay})
	return p
}

// Crash blackholes node for [at, at+dur); dur == 0 means it never restarts.
func (p *Plan) Crash(node string, at vtime.Time, dur vtime.Duration) *Plan {
	p.Rules = append(p.Rules, Rule{Kind: Crash, Node: node, At: at, For: dur})
	return p
}

// Validate checks probabilities and windows.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		switch r.Kind {
		case Drop, Corrupt:
			if r.Prob < 0 || r.Prob > 1 {
				return fmt.Errorf("fault: rule %d: probability %v out of [0,1]", i, r.Prob)
			}
		case Flap:
			if r.Net == "" || r.Net == "*" {
				return fmt.Errorf("fault: rule %d: flap needs a concrete network", i)
			}
		case Stall, Crash:
			if r.Node == "" {
				return fmt.Errorf("fault: rule %d: %v needs a node", i, r.Kind)
			}
		}
		if r.At < 0 || r.For < 0 || r.Delay < 0 {
			return fmt.Errorf("fault: rule %d: negative time", i)
		}
	}
	return nil
}

// Window is one scheduled down-window of a plan (flap or crash), in a form
// the hardware layer can arm cancellations and trace spans from.
type Window struct {
	Kind Kind
	Net  string // Flap
	Node string // Crash
	At   vtime.Time
	For  vtime.Duration // 0 = forever
}

// prng is a splitmix64 generator: tiny, fast and stable across Go releases,
// so fault schedules replay identically forever.
type prng struct{ state uint64 }

func (r *prng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *prng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *prng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Verdict is the injector's decision on one packet.
type Verdict uint8

const (
	// Deliver lets the packet through unharmed.
	Deliver Verdict = iota
	// DropPacket loses the packet silently.
	DropPacket
	// CorruptPacket flips one byte of the receiver-side copy.
	CorruptPacket
)

// Injector is one armed instance of a plan. All of simulation runs
// single-threaded, so the injector needs no locking; determinism holds
// because queries happen in scheduler order, which the seeded kernel fixes.
type Injector struct {
	plan    *Plan
	rng     prng
	tr      *trace.Tracer
	metrics *obs.Registry

	dropped   int64
	corrupted int64
}

// NewInjector arms a plan. The tracer may be nil; when present the injector
// records a zero-width "drop"/"corrupt" span per injected fault under the
// actor "fault:<net>".
func NewInjector(p *Plan, tr *trace.Tracer) *Injector {
	return &Injector{plan: p, rng: prng{state: uint64(p.Seed)}, tr: tr}
}

// Tracer returns the tracer the injector records to (may be nil).
func (in *Injector) Tracer() *trace.Tracer { return in.tr }

// SetMetrics arms a metrics registry: every injected fault increments a
// madgo_faults_total{kind,net} counter. A nil registry records nothing.
func (in *Injector) SetMetrics(m *obs.Registry) { in.metrics = m }

// Dropped returns how many packets the injector lost (including blackholed
// ones during crash and flap windows).
func (in *Injector) Dropped() int64 { return in.dropped }

// Corrupted returns how many packets the injector corrupted.
func (in *Injector) Corrupted() int64 { return in.corrupted }

// NodeDead reports whether node is inside a crash window at time now.
func (in *Injector) NodeDead(node string, now vtime.Time) bool {
	for _, r := range in.plan.Rules {
		if r.Kind == Crash && r.Node == node && r.active(now) {
			return true
		}
	}
	return false
}

// LinkDown reports whether net is inside a flap window at time now.
func (in *Injector) LinkDown(net string, now vtime.Time) bool {
	for _, r := range in.plan.Rules {
		if r.Kind == Flap && r.matchesNet(net) && r.active(now) {
			return true
		}
	}
	return false
}

// StallDelay returns the extra send latency node suffers at time now (the
// sum over active stall windows; zero when healthy).
func (in *Injector) StallDelay(node string, now vtime.Time) vtime.Duration {
	var d vtime.Duration
	for _, r := range in.plan.Rules {
		if r.Kind == Stall && r.Node == node && r.active(now) {
			d += r.Delay
		}
	}
	return d
}

// Packet decides the fate of one packet of `size` bytes crossing net from
// `from` to `to` at time now. Crash and flap windows blackhole
// deterministically without consuming randomness; otherwise one draw decides
// loss and, if the packet survives, one more decides corruption (plus a
// position draw). The returned int is the byte offset to flip for
// CorruptPacket verdicts.
func (in *Injector) Packet(net, from, to string, now vtime.Time, size int) (Verdict, int) {
	if in.NodeDead(from, now) || in.NodeDead(to, now) || in.LinkDown(net, now) {
		in.dropped++
		in.tr.Record("fault:"+net, "drop", size, now, now)
		in.metrics.Add("madgo_faults_total", obs.Labels{"kind": "blackhole", "net": net}, 1)
		return DropPacket, 0
	}
	if p := in.prob(Drop, net); p > 0 && in.rng.float() < p {
		in.dropped++
		in.tr.Record("fault:"+net, "drop", size, now, now)
		in.metrics.Add("madgo_faults_total", obs.Labels{"kind": "drop", "net": net}, 1)
		return DropPacket, 0
	}
	if p := in.prob(Corrupt, net); p > 0 && in.rng.float() < p {
		in.corrupted++
		in.tr.Record("fault:"+net, "corrupt", size, now, now)
		in.metrics.Add("madgo_faults_total", obs.Labels{"kind": "corrupt", "net": net}, 1)
		return CorruptPacket, in.rng.intn(size)
	}
	return Deliver, 0
}

// prob combines every matching probability rule of the given kind:
// independent loss processes compose as 1 - prod(1-p).
func (in *Injector) prob(k Kind, net string) float64 {
	keep := 1.0
	for _, r := range in.plan.Rules {
		if r.Kind == k && r.matchesNet(net) {
			keep *= 1 - r.Prob
		}
	}
	return 1 - keep
}

// Windows returns the plan's flap and crash windows sorted by start time
// (ties by rule order), for hw.Platform.ArmFaults to schedule flow
// cancellation and trace spans.
func (in *Injector) Windows() []Window {
	var out []Window
	for _, r := range in.plan.Rules {
		switch r.Kind {
		case Flap:
			out = append(out, Window{Kind: Flap, Net: r.Net, At: r.At, For: r.For})
		case Crash:
			out = append(out, Window{Kind: Crash, Node: r.Node, At: r.At, For: r.For})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
