package fault

import (
	"testing"

	"madgo/internal/vtime"
)

// Two injectors armed from the same plan must agree on every verdict.
func TestDeterministicReplay(t *testing.T) {
	plan := NewPlan(42).Drop("*", 0.1).Corrupt("myri0", 0.05)
	a := NewInjector(plan, nil)
	b := NewInjector(plan, nil)
	for i := 0; i < 10000; i++ {
		now := vtime.Time(i) * vtime.Time(vtime.Microsecond)
		va, pa := a.Packet("myri0", "x", "y", now, 4096)
		vb, pb := b.Packet("myri0", "x", "y", now, 4096)
		if va != vb || pa != pb {
			t.Fatalf("packet %d: verdicts diverge: (%v,%d) vs (%v,%d)", i, va, pa, vb, pb)
		}
	}
	if a.Dropped() == 0 || a.Corrupted() == 0 {
		t.Fatalf("10%%/5%% rules injected nothing over 10k packets (dropped=%d corrupted=%d)",
			a.Dropped(), a.Corrupted())
	}
	if a.Dropped() != b.Dropped() || a.Corrupted() != b.Corrupted() {
		t.Fatalf("counter mismatch between replays")
	}
}

// Different seeds must give different fault sequences.
func TestSeedMatters(t *testing.T) {
	a := NewInjector(NewPlan(1).Drop("*", 0.5), nil)
	b := NewInjector(NewPlan(2).Drop("*", 0.5), nil)
	same := true
	for i := 0; i < 64; i++ {
		va, _ := a.Packet("n", "x", "y", 0, 100)
		vb, _ := b.Packet("n", "x", "y", 0, 100)
		if va != vb {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical 64-packet fault sequences")
	}
}

// Loss rate should track the configured probability.
func TestDropRate(t *testing.T) {
	in := NewInjector(NewPlan(7).Drop("*", 0.05), nil)
	const n = 20000
	for i := 0; i < n; i++ {
		in.Packet("n", "x", "y", 0, 1024)
	}
	rate := float64(in.Dropped()) / n
	if rate < 0.04 || rate > 0.06 {
		t.Fatalf("5%% drop rule lost %.2f%% of packets", 100*rate)
	}
}

func TestWindows(t *testing.T) {
	ms := vtime.Millisecond
	plan := NewPlan(0).
		Crash("gw", vtime.Time(10*ms), 20*ms).
		Flap("myri0", vtime.Time(5*ms), 5*ms).
		Stall("a0", vtime.Time(0), 10*ms, 100*vtime.Microsecond).
		Crash("b0", vtime.Time(50*ms), 0) // never restarts
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan, nil)

	if in.NodeDead("gw", vtime.Time(9*ms)) {
		t.Fatal("gw dead before its crash window")
	}
	if !in.NodeDead("gw", vtime.Time(10*ms)) || !in.NodeDead("gw", vtime.Time(29*ms)) {
		t.Fatal("gw alive inside its crash window")
	}
	if in.NodeDead("gw", vtime.Time(30*ms)) {
		t.Fatal("gw did not restart after its window")
	}
	if !in.NodeDead("b0", vtime.Time(1e12)) {
		t.Fatal("For==0 crash should never restart")
	}
	if !in.LinkDown("myri0", vtime.Time(7*ms)) || in.LinkDown("myri0", vtime.Time(11*ms)) {
		t.Fatal("flap window wrong")
	}
	if in.LinkDown("sci0", vtime.Time(7*ms)) {
		t.Fatal("flap leaked onto another network")
	}
	if got := in.StallDelay("a0", vtime.Time(5*ms)); got != 100*vtime.Microsecond {
		t.Fatalf("stall delay = %v", got)
	}
	if got := in.StallDelay("a0", vtime.Time(15*ms)); got != 0 {
		t.Fatalf("stall delay after window = %v", got)
	}

	// Blackholed packets don't consume randomness: verdicts after a
	// window must match a run that never queried inside it.
	x := NewInjector(NewPlan(3).Drop("*", 0.3).Crash("gw", 0, 1), nil)
	y := NewInjector(NewPlan(3).Drop("*", 0.3).Crash("gw", 0, 1), nil)
	x.Packet("n", "gw", "z", 0, 10) // inside window: deterministic drop
	for i := 0; i < 32; i++ {
		vx, _ := x.Packet("n", "a", "b", vtime.Time(vtime.Second), 10)
		vy, _ := y.Packet("n", "a", "b", vtime.Time(vtime.Second), 10)
		if vx != vy {
			t.Fatal("blackhole consumed a random draw")
		}
	}

	ws := in.Windows()
	if len(ws) != 3 {
		t.Fatalf("Windows() = %d entries, want 3 (flap + 2 crashes)", len(ws))
	}
	if ws[0].Kind != Flap || ws[1].Node != "gw" || ws[2].Node != "b0" {
		t.Fatalf("Windows() order wrong: %+v", ws)
	}
}

func TestValidate(t *testing.T) {
	if err := (NewPlan(0).Drop("*", 1.5)).Validate(); err == nil {
		t.Fatal("probability 1.5 validated")
	}
	if err := (NewPlan(0).Crash("", 0, 0)).Validate(); err == nil {
		t.Fatal("crash without node validated")
	}
	if err := (NewPlan(0).Flap("*", 0, 0)).Validate(); err == nil {
		t.Fatal("wildcard flap validated")
	}
}
