package flight

import (
	"testing"

	"madgo/internal/vtime"
)

// The recorder is always on, so its hot path must match the PR 3 pool
// discipline: recording an event and snapshotting a ring are 0 allocs/op.
// Ring lookup (Recorder.Ring) is excluded — instrumentation caches its
// ring after the first call.

func TestRecordZeroAllocs(t *testing.T) {
	rec := NewRecorder(256)
	r := rec.Ring("gw")
	var at vtime.Time
	allocs := testing.AllocsPerRun(1000, func() {
		at += vtime.Time(vtime.Microsecond)
		r.Record(KindSend, at, 5*vtime.Microsecond, 17, 32*1024, "sci0")
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSnapshotIntoZeroAllocs(t *testing.T) {
	rec := NewRecorder(256)
	r := rec.Ring("gw")
	for i := 0; i < 512; i++ { // wrapped, so the copy spans the seam
		r.Record(KindRecv, vtime.Time(i), 0, uint64(i), 64, "myri0")
	}
	buf := make([]Event, 0, 256)
	var got int
	allocs := testing.AllocsPerRun(1000, func() {
		buf = r.SnapshotInto(buf)
		got = len(buf)
	})
	if allocs != 0 {
		t.Fatalf("SnapshotInto allocates %.1f allocs/op, want 0", allocs)
	}
	if got != 256 {
		t.Fatalf("snapshot len = %d, want 256", got)
	}
}
