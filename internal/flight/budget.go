// Critical-path latency attribution: walk a message's provenance hops
// (obs.Registry) plus its flight-recorder events and charge the
// end-to-end latency to named stages — pack, queue-wait, wire,
// buffer-swap, relay-stall, retransmit+backoff, stripe-reassembly,
// ack-wait — the way the MPICH2/InfiniBand latency breakdowns attribute
// protocol cost stage by stage.

package flight

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"madgo/internal/obs"
	"madgo/internal/vtime"
)

// Stage names one slice of a message's latency budget.
type Stage int

const (
	StagePack       Stage = iota // host packing: header build, staging copies
	StageQueueWait               // sat in a relay queue awaiting service
	StageWire                    // payload transmission and reception time
	StageSwap                    // gateway buffer swaps (§3.4.1 fixed overhead)
	StageStall                   // relay threads blocked on free buffers
	StageRexmit                  // expired ack waits and resend backoffs
	StageReassembly              // stripe rail-completion spread at the sink
	StageAckWait                 // successful end-to-end acknowledgement wait
	StageAggWait                 // sat in an aggregation coalescer before its flush
	NumStages
)

var stageNames = [NumStages]string{
	"pack", "queue-wait", "wire", "buffer-swap", "relay-stall",
	"retransmit+backoff", "stripe-reassembly", "ack-wait", "agg-wait",
}

func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// stageOf maps an event kind to the budget stage it charges. KindWire,
// KindProbe, KindEpoch and KindAggFlush return ok=false: wire events
// duplicate the per-message send/recv accounting at link granularity (they
// feed the PIO/DMA diagnosis instead), probes/epochs are not message work,
// and a flush marker is instantaneous (the per-sub waiting time is what
// KindAggWait charges).
func stageOf(k Kind) (Stage, bool) {
	switch k {
	case KindPack:
		return StagePack, true
	case KindQueueWait:
		return StageQueueWait, true
	case KindSend, KindRecv:
		return StageWire, true
	case KindSwap:
		return StageSwap, true
	case KindStall:
		return StageStall, true
	case KindRexmit, KindBackoff:
		return StageRexmit, true
	case KindReassembly:
		return StageReassembly, true
	case KindAckWait:
		return StageAckWait, true
	case KindAggWait:
		return StageAggWait, true
	}
	return 0, false
}

// Budget is one message's latency attribution. Stage durations are summed
// per-event work, so on a pipelined path they may exceed Total — the
// excess is reported as Overlap rather than hidden; Other is the part of
// Total no recorded event accounts for.
type Budget struct {
	Msg     uint64
	Start   vtime.Time
	End     vtime.Time
	Total   vtime.Duration
	Stages  [NumStages]vtime.Duration
	Other   vtime.Duration
	Overlap vtime.Duration
	Events  int
}

// Attributed returns the summed per-stage work.
func (b Budget) Attributed() vtime.Duration {
	var t vtime.Duration
	for _, d := range b.Stages {
		t += d
	}
	return t
}

// Fraction returns a stage's share of the total end-to-end latency
// (0 when the budget is empty).
func (b Budget) Fraction(s Stage) float64 {
	if b.Total <= 0 {
		return 0
	}
	return b.Stages[s].Seconds() / b.Total.Seconds()
}

// IndexByMessage groups message-attributed events (Msg != 0) by ID.
func IndexByMessage(events []Event) map[uint64][]Event {
	out := make(map[uint64][]Event)
	for _, e := range events {
		if e.Msg != 0 {
			out[e.Msg] = append(out[e.Msg], e)
		}
	}
	return out
}

// AnalyzeMessage builds one message's latency budget from its provenance
// hops (obs.Registry.MessageTrace) and its flight events (pre-filtered to
// this message, e.g. via IndexByMessage). Either input may be empty; the
// end-to-end window is the min/max over both.
func AnalyzeMessage(id uint64, hops []obs.Hop, events []Event) Budget {
	b := Budget{Msg: id, Start: -1, End: -1}
	widen := func(t0, t1 vtime.Time) {
		if b.Start < 0 || t0 < b.Start {
			b.Start = t0
		}
		if t1 > b.End {
			b.End = t1
		}
	}
	for _, h := range hops {
		widen(h.At, h.At)
	}
	for _, e := range events {
		t0 := e.At
		if e.Dur > 0 && vtime.Time(e.Dur) <= e.At {
			t0 = e.At.Add(-e.Dur)
		}
		widen(t0, e.At)
		if s, ok := stageOf(e.Kind); ok {
			b.Stages[s] += e.Dur
			b.Events++
		}
	}
	if b.Start < 0 {
		b.Start, b.End = 0, 0
	}
	b.Total = b.End.Sub(b.Start)
	if att := b.Attributed(); att > b.Total {
		b.Overlap = att - b.Total
	} else {
		b.Other = b.Total - att
	}
	return b
}

// AggregateBudget sums a set of per-message budgets.
type AggregateBudget struct {
	Messages int
	Total    vtime.Duration
	Stages   [NumStages]vtime.Duration
	Other    vtime.Duration
	Overlap  vtime.Duration
}

// Aggregate folds per-message budgets into one. Messages whose window
// collapsed to zero still count toward Messages but contribute no time.
func Aggregate(bs []Budget) AggregateBudget {
	var a AggregateBudget
	for _, b := range bs {
		a.Messages++
		a.Total += b.Total
		a.Other += b.Other
		a.Overlap += b.Overlap
		for s := Stage(0); s < NumStages; s++ {
			a.Stages[s] += b.Stages[s]
		}
	}
	return a
}

// Fraction returns a stage's share of the aggregate end-to-end latency.
func (a AggregateBudget) Fraction(s Stage) float64 {
	if a.Total <= 0 {
		return 0
	}
	return a.Stages[s].Seconds() / a.Total.Seconds()
}

// WriteBudgets renders per-message budgets (sorted by message ID) followed
// by the aggregate as an aligned text table — the madtrace -budget panel.
func WriteBudgets(w io.Writer, bs []Budget) {
	sorted := append([]Budget(nil), bs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Msg < sorted[j].Msg })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "msg\ttotal")
	for s := Stage(0); s < NumStages; s++ {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprint(tw, "\tother\toverlap\n")
	row := func(label string, total vtime.Duration, stages [NumStages]vtime.Duration, other, overlap vtime.Duration) {
		fmt.Fprintf(tw, "%s\t%v", label, total)
		for s := Stage(0); s < NumStages; s++ {
			fmt.Fprintf(tw, "\t%v", stages[s])
		}
		fmt.Fprintf(tw, "\t%v\t%v\n", other, overlap)
	}
	for _, b := range sorted {
		row(fmt.Sprintf("%d", b.Msg), b.Total, b.Stages, b.Other, b.Overlap)
	}
	a := Aggregate(bs)
	row("all", a.Total, a.Stages, a.Other, a.Overlap)
	tw.Flush()
}
