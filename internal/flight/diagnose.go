// The diagnosis pass: rules over latency budgets and raw recorder events
// that name the paper's pathologies when their signatures appear.
//
//   - swap-overhead-bound (§3.4.1): the gateway relay is serialized on the
//     fixed buffer-swap software overhead — each receive stalls for a full
//     send+swap cycle, the depth-1 signature.
//   - stall-bound: relay receive threads wait a substantial share of the
//     gateway's occupancy for free buffers without full serialization —
//     the pipeline is too shallow (or egress simply lags ingress).
//   - pio-dma-conflict (§3.4.1): processor PIO sends on a network progress
//     well below their nominal rate while card-initiated DMA traffic is
//     active — the shared-PCI-bus contention signature where DMA
//     transactions outrank and starve the CPU's PIO loop.
//   - retransmit-bound: expired ack waits and resend backoffs dominate the
//     latency budget — a lossy or flapping link, not the data path, is
//     the bottleneck.

package flight

import (
	"fmt"
	"io"
	"sort"

	"madgo/internal/vtime"
)

// Diagnosis codes, one per named pathology.
const (
	CodeSwapBound   = "swap-overhead-bound"
	CodeStallBound  = "stall-bound"
	CodePIODMA      = "pio-dma-conflict"
	CodeRexmitBound = "retransmit-bound"
)

// Rule thresholds. serializationMin is the stall/(send+swap) ratio above
// which the relay counts as fully serialized (depth-1 measures ~1.0, a
// deep pipeline limited only by rate imbalance measures ~0.5).
const (
	serializationMin = 0.85
	stallShareMin    = 0.20
	pioRateFactor    = 0.75
	rexmitShareMin   = 0.15
)

// Signals is the configuration context the rules read alongside the
// measurements: pipeline depth and MTU for the verdict text, and the
// nominal send rate plus bus class of every network for the PIO/DMA rule.
// Callers build it from the NIC models they bound (fwd exposes
// VirtualChannel.DiagnosisSignals).
type Signals struct {
	PipelineDepth int
	MTU           int
	NetRate       map[string]float64 // nominal payload send rate, bytes/s
	PIONet        map[string]bool    // send engine is processor PIO
	DMANet        map[string]bool    // send engine is card-initiated DMA
}

// Finding is one fired rule.
type Finding struct {
	Code     string   `json:"code"`
	Severity float64  `json:"severity"` // 0..1, how dominant the pathology is
	Summary  string   `json:"summary"`
	Evidence []string `json:"evidence,omitempty"`
}

// Diagnosis is the result of one pass: the aggregate budget the rules ran
// over plus every finding, most severe first.
type Diagnosis struct {
	Aggregate AggregateBudget `json:"-"`
	Findings  []Finding       `json:"findings"`
}

// Healthy reports whether no rule fired.
func (d Diagnosis) Healthy() bool { return len(d.Findings) == 0 }

// Has reports whether a finding with the given code fired.
func (d Diagnosis) Has(code string) bool {
	for _, f := range d.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// Write renders the diagnosis as the human panel madstat -diagnose prints.
func (d Diagnosis) Write(w io.Writer) {
	if d.Healthy() {
		fmt.Fprintln(w, "diagnosis: healthy — no pathology signature found")
		return
	}
	fmt.Fprintf(w, "diagnosis: %d finding(s)\n", len(d.Findings))
	for _, f := range d.Findings {
		fmt.Fprintf(w, "  [%s] severity %.2f\n    %s\n", f.Code, f.Severity, f.Summary)
		for _, ev := range f.Evidence {
			fmt.Fprintf(w, "      - %s\n", ev)
		}
	}
}

// kindStats accumulates count/sum for one event kind.
type kindStats struct {
	n   int
	sum vtime.Duration
}

func (s kindStats) mean() vtime.Duration {
	if s.n == 0 {
		return 0
	}
	return s.sum / vtime.Duration(s.n)
}

// Diagnose runs the rule set over per-message budgets and the full event
// stream. budgets drive the retransmit rule; the gateway and wire rules
// read events directly so they also work on runs without provenance hops.
func Diagnose(budgets []Budget, events []Event, sig Signals) Diagnosis {
	d := Diagnosis{Aggregate: Aggregate(budgets)}

	d.diagnoseGateway(events, sig)
	d.diagnoseWire(events, sig)
	d.diagnoseRexmit(budgets, events)

	sort.SliceStable(d.Findings, func(i, j int) bool {
		if d.Findings[i].Severity != d.Findings[j].Severity {
			return d.Findings[i].Severity > d.Findings[j].Severity
		}
		return d.Findings[i].Code < d.Findings[j].Code
	})
	return d
}

// diagnoseGateway applies the swap-overhead-bound / stall-bound pair. Only
// sends recorded by nodes that also recorded swaps count — those are the
// relay's egress transmissions the stall ratio is defined against.
func (d *Diagnosis) diagnoseGateway(events []Event, sig Signals) {
	gw := make(map[string]bool)
	for _, e := range events {
		if e.Kind == KindSwap {
			gw[e.Node] = true
		}
	}
	if len(gw) == 0 {
		return
	}
	var swap, stall, send kindStats
	for _, e := range events {
		if !gw[e.Node] {
			continue
		}
		switch e.Kind {
		case KindSwap:
			swap.n++
			swap.sum += e.Dur
		case KindStall:
			stall.n++
			stall.sum += e.Dur
		case KindSend:
			send.n++
			send.sum += e.Dur
		}
	}
	cycle := send.mean() + swap.mean()
	if stall.n < 2 || cycle <= 0 {
		return
	}
	ser := stall.mean().Seconds() / cycle.Seconds()
	occupancy := (send.sum + swap.sum + stall.sum).Seconds()
	share := 0.0
	if occupancy > 0 {
		share = stall.sum.Seconds() / occupancy
	}
	evidence := []string{
		fmt.Sprintf("mean stall %v over %d stalls vs mean send %v + mean swap %v (ratio %.2f)",
			stall.mean(), stall.n, send.mean(), swap.mean(), ser),
		fmt.Sprintf("stalls are %.0f%% of gateway relay occupancy; pipeline depth %d, MTU %d",
			100*share, sig.PipelineDepth, sig.MTU),
	}
	switch {
	case ser >= serializationMin:
		sev := ser
		if sev > 1 {
			sev = 1
		}
		d.Findings = append(d.Findings, Finding{
			Code: CodeSwapBound, Severity: sev,
			Summary: fmt.Sprintf("the gateway relay is serialized on the buffer swap: every receive "+
				"waits out a full send+swap cycle (§3.4.1 fixed overhead); deepen the pipeline "+
				"(current depth %d)", sig.PipelineDepth),
			Evidence: evidence,
		})
	case share >= stallShareMin:
		d.Findings = append(d.Findings, Finding{
			Code: CodeStallBound, Severity: share,
			Summary: fmt.Sprintf("gateway receive threads spend %.0f%% of relay occupancy waiting "+
				"for free buffers at depth %d: ingress outpaces egress", 100*share, sig.PipelineDepth),
			Evidence: evidence,
		})
	}
}

// diagnoseWire applies the pio-dma-conflict rule to link-level wire
// events: a PIO-class network progressing below pioRateFactor of its
// nominal rate while DMA-class traffic overlaps it in time.
func (d *Diagnosis) diagnoseWire(events []Event, sig Signals) {
	type netStats struct {
		bytes       int64
		dur         vtime.Duration
		first, last vtime.Time
	}
	nets := make(map[string]*netStats)
	for _, e := range events {
		if e.Kind != KindWire || e.Net == "" {
			continue
		}
		s := nets[e.Net]
		if s == nil {
			s = &netStats{first: -1}
			nets[e.Net] = s
		}
		t0 := e.At
		if e.Dur > 0 && vtime.Time(e.Dur) <= e.At {
			t0 = e.At.Add(-e.Dur)
		}
		if s.first < 0 || t0 < s.first {
			s.first = t0
		}
		if e.At > s.last {
			s.last = e.At
		}
		s.bytes += int64(e.Bytes)
		s.dur += e.Dur
	}
	names := make([]string, 0, len(nets))
	for n := range nets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		s := nets[name]
		nominal := sig.NetRate[name]
		if !sig.PIONet[name] || nominal <= 0 || s.dur <= 0 {
			continue
		}
		observed := float64(s.bytes) / s.dur.Seconds()
		if observed >= pioRateFactor*nominal {
			continue
		}
		for _, other := range names {
			o := nets[other]
			if other == name || !sig.DMANet[other] || o.bytes == 0 {
				continue
			}
			if o.first > s.last || s.first > o.last {
				continue // no temporal overlap, not a contention signature
			}
			d.Findings = append(d.Findings, Finding{
				Code:     CodePIODMA,
				Severity: 1 - observed/nominal,
				Summary: fmt.Sprintf("PIO sends on %s progress at %.1f MB/s against a %.1f MB/s nominal "+
					"rate while DMA traffic is active on %s: card-initiated DMA PCI transactions "+
					"outrank and starve the processor's PIO loop (§3.4.1)",
					name, observed/1e6, nominal/1e6, other),
				Evidence: []string{
					fmt.Sprintf("%s: %d bytes over %v of wire time ([%v, %v])",
						name, s.bytes, s.dur, vtime.Duration(s.first), vtime.Duration(s.last)),
					fmt.Sprintf("%s: %d bytes active over [%v, %v]",
						other, o.bytes, vtime.Duration(o.first), vtime.Duration(o.last)),
				},
			})
			break
		}
	}
}

// diagnoseRexmit applies the retransmit-bound rule: the retransmit+backoff
// stage claiming rexmitShareMin of the aggregate end-to-end latency. The
// evidence names the outage window spanned by the retransmit events.
func (d *Diagnosis) diagnoseRexmit(budgets []Budget, events []Event) {
	frac := d.Aggregate.Fraction(StageRexmit)
	if frac < rexmitShareMin {
		return
	}
	affected := 0
	for _, b := range budgets {
		if b.Stages[StageRexmit] > 0 {
			affected++
		}
	}
	first, last := vtime.Time(-1), vtime.Time(-1)
	count := 0
	for _, e := range events {
		if e.Kind != KindRexmit && e.Kind != KindBackoff {
			continue
		}
		count++
		t0 := e.At
		if e.Dur > 0 && vtime.Time(e.Dur) <= e.At {
			t0 = e.At.Add(-e.Dur)
		}
		if first < 0 || t0 < first {
			first = t0
		}
		if e.At > last {
			last = e.At
		}
	}
	sev := 2 * frac
	if sev > 1 {
		sev = 1
	}
	f := Finding{
		Code: CodeRexmitBound, Severity: sev,
		Summary: fmt.Sprintf("retransmits and backoffs account for %.0f%% of end-to-end latency "+
			"across %d of %d messages: a lossy or flapping link, not the data path, is the bottleneck",
			100*frac, affected, d.Aggregate.Messages),
	}
	if first >= 0 {
		f.Evidence = append(f.Evidence, fmt.Sprintf(
			"%d retransmit/backoff events in the outage window [%v, %v]",
			count, vtime.Duration(first), vtime.Duration(last)))
	}
	d.Findings = append(d.Findings, f)
}
