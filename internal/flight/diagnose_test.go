package flight

import (
	"bytes"
	"strings"
	"testing"

	"madgo/internal/obs"
	"madgo/internal/vtime"
)

const ms = vtime.Millisecond

func TestAnalyzeMessageBudget(t *testing.T) {
	hops := []obs.Hop{
		{Msg: 7, At: 0, Node: "a", Op: "pack"},
		{Msg: 7, At: vtime.Time(10 * ms), Node: "b", Op: "deliver"},
	}
	events := []Event{
		{At: vtime.Time(1 * ms), Dur: 1 * ms, Kind: KindPack, Msg: 7, Node: "a"},
		{At: vtime.Time(4 * ms), Dur: 3 * ms, Kind: KindSend, Msg: 7, Node: "a", Net: "sci0"},
		{At: vtime.Time(5 * ms), Dur: 1 * ms, Kind: KindQueueWait, Msg: 7, Node: "gw"},
		{At: vtime.Time(9 * ms), Dur: 2 * ms, Kind: KindRexmit, Msg: 7, Node: "a"},
		{At: vtime.Time(9 * ms), Dur: 1 * ms, Kind: KindBackoff, Msg: 7, Node: "a"},
		// not a budget stage: wire events feed the PIO/DMA rule instead
		{At: vtime.Time(4 * ms), Dur: 3 * ms, Kind: KindWire, Msg: 7, Node: "a", Net: "sci0"},
	}
	b := AnalyzeMessage(7, hops, events)
	if b.Total != 10*ms {
		t.Fatalf("total = %v", b.Total)
	}
	if b.Stages[StagePack] != 1*ms || b.Stages[StageWire] != 3*ms ||
		b.Stages[StageQueueWait] != 1*ms || b.Stages[StageRexmit] != 3*ms {
		t.Fatalf("stages = %v", b.Stages)
	}
	if b.Attributed() != 8*ms || b.Other != 2*ms || b.Overlap != 0 {
		t.Fatalf("attributed %v other %v overlap %v", b.Attributed(), b.Other, b.Overlap)
	}
	if f := b.Fraction(StageWire); f < 0.29 || f > 0.31 {
		t.Fatalf("wire fraction = %.2f", f)
	}
	if b.Events != 5 {
		t.Fatalf("events = %d", b.Events)
	}
}

func TestAnalyzeMessagePipelinedOverlap(t *testing.T) {
	// Two overlapping 8 ms sends inside a 10 ms window: 6 ms of the
	// attributed work exceeds the wall-clock total and must surface as
	// Overlap, not vanish.
	events := []Event{
		{At: vtime.Time(8 * ms), Dur: 8 * ms, Kind: KindSend, Msg: 1},
		{At: vtime.Time(10 * ms), Dur: 8 * ms, Kind: KindRecv, Msg: 1},
	}
	b := AnalyzeMessage(1, nil, events)
	if b.Total != 10*ms || b.Overlap != 6*ms || b.Other != 0 {
		t.Fatalf("total %v overlap %v other %v", b.Total, b.Overlap, b.Other)
	}
}

func TestAnalyzeMessageEmpty(t *testing.T) {
	b := AnalyzeMessage(3, nil, nil)
	if b.Total != 0 || b.Start != 0 || b.End != 0 || b.Events != 0 {
		t.Fatalf("empty budget = %+v", b)
	}
	if b.Fraction(StageWire) != 0 {
		t.Fatal("empty fraction not 0")
	}
}

func TestIndexByMessage(t *testing.T) {
	events := []Event{
		{Kind: KindSend, Msg: 1}, {Kind: KindRecv, Msg: 2}, {Kind: KindSend, Msg: 1},
		{Kind: KindProbe, Msg: 0}, // unattributed, skipped
	}
	idx := IndexByMessage(events)
	if len(idx) != 2 || len(idx[1]) != 2 || len(idx[2]) != 1 {
		t.Fatalf("index = %v", idx)
	}
}

func TestAggregate(t *testing.T) {
	var b1, b2 Budget
	b1.Total, b1.Stages[StageSwap], b1.Other = 10*ms, 4*ms, 6*ms
	b2.Total, b2.Stages[StageSwap], b2.Overlap = 6*ms, 8*ms, 2*ms
	a := Aggregate([]Budget{b1, b2})
	if a.Messages != 2 || a.Total != 16*ms || a.Stages[StageSwap] != 12*ms ||
		a.Other != 6*ms || a.Overlap != 2*ms {
		t.Fatalf("aggregate = %+v", a)
	}
	if f := a.Fraction(StageSwap); f < 0.74 || f > 0.76 {
		t.Fatalf("fraction = %.2f", f)
	}
}

func TestWriteBudgetsTable(t *testing.T) {
	var b Budget
	b.Msg, b.Total, b.Stages[StageWire] = 5, 2*ms, 1*ms
	var buf bytes.Buffer
	WriteBudgets(&buf, []Budget{b})
	out := buf.String()
	for _, want := range []string{"msg", "buffer-swap", "retransmit+backoff", "all", "2ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("budget table missing %q:\n%s", want, out)
		}
	}
}

// gatewayEvents synthesizes a depth-d relay pattern: per cycle one recv,
// one swap, one send and one stall of the given duration on node gw.
func gatewayEvents(cycles int, send, swap, stall vtime.Duration) []Event {
	var out []Event
	at := vtime.Time(0)
	for i := 0; i < cycles; i++ {
		at = at.Add(send + swap + stall)
		out = append(out,
			Event{At: at, Dur: stall, Kind: KindStall, Node: "gw"},
			Event{At: at, Dur: swap, Kind: KindSwap, Node: "gw"},
			Event{At: at, Dur: send, Kind: KindSend, Node: "gw", Net: "sci0"},
			Event{At: at, Dur: send / 2, Kind: KindRecv, Node: "gw", Net: "myri0"},
		)
	}
	return out
}

func TestDiagnoseSwapBoundFiresWhenSerialized(t *testing.T) {
	// Depth-1 signature: each stall spans a full send+swap cycle.
	events := gatewayEvents(20, 700*vtime.Microsecond, 40*vtime.Microsecond, 740*vtime.Microsecond)
	d := Diagnose(nil, events, Signals{PipelineDepth: 1, MTU: 32 * 1024})
	if !d.Has(CodeSwapBound) {
		t.Fatalf("swap-overhead-bound did not fire: %+v", d.Findings)
	}
	if d.Has(CodeStallBound) {
		t.Fatal("stall-bound must not fire alongside swap-bound")
	}
	if d.Healthy() {
		t.Fatal("diagnosis claims healthy")
	}
	var buf bytes.Buffer
	d.Write(&buf)
	if !strings.Contains(buf.String(), CodeSwapBound) {
		t.Fatalf("panel missing code:\n%s", buf.String())
	}
}

func TestDiagnoseSwapBoundClearsWhenPipelined(t *testing.T) {
	// Deep-pipeline signature: stalls shrink to the rate imbalance
	// (send - recv), about half the cycle. swap-bound must clear; the
	// residual surfaces as stall-bound.
	events := gatewayEvents(20, 1450*vtime.Microsecond, 40*vtime.Microsecond, 750*vtime.Microsecond)
	d := Diagnose(nil, events, Signals{PipelineDepth: 8, MTU: 32 * 1024})
	if d.Has(CodeSwapBound) {
		t.Fatalf("swap-overhead-bound fired at depth 8: %+v", d.Findings)
	}
	if !d.Has(CodeStallBound) {
		t.Fatalf("stall-bound should name the residual imbalance: %+v", d.Findings)
	}
}

func TestDiagnoseGatewayNeedsEvidence(t *testing.T) {
	// One lone stall is not a signature.
	events := gatewayEvents(1, 700*us, 40*us, 740*us)
	d := Diagnose(nil, events, Signals{PipelineDepth: 1})
	if !d.Healthy() {
		t.Fatalf("fired on a single stall: %+v", d.Findings)
	}
	// No swaps at all: the gateway rules stay silent.
	d = Diagnose(nil, []Event{{Kind: KindStall, Dur: ms, Node: "x"}}, Signals{})
	if !d.Healthy() {
		t.Fatalf("fired without swap evidence: %+v", d.Findings)
	}
	var buf bytes.Buffer
	d.Write(&buf)
	if !strings.Contains(buf.String(), "healthy") {
		t.Fatalf("healthy panel wrong:\n%s", buf.String())
	}
}

func TestDiagnosePIODMAConflict(t *testing.T) {
	sig := Signals{
		NetRate: map[string]float64{"sci0": 44e6, "myri0": 47e6},
		PIONet:  map[string]bool{"sci0": true},
		DMANet:  map[string]bool{"myri0": true},
	}
	mkWire := func(net string, rate float64, n int) []Event {
		var out []Event
		at := vtime.Time(0)
		bytes := 32 * 1024
		for i := 0; i < n; i++ {
			d := vtime.Duration(float64(bytes) / rate * 1e9)
			at = at.Add(d)
			out = append(out, Event{At: at, Dur: d, Kind: KindWire, Bytes: int32(bytes), Net: net, Node: "gw"})
		}
		return out
	}
	// Demoted PIO (22 MB/s vs 44 nominal) overlapping active DMA traffic.
	events := append(mkWire("sci0", 22e6, 10), mkWire("myri0", 47e6, 10)...)
	d := Diagnose(nil, events, sig)
	if !d.Has(CodePIODMA) {
		t.Fatalf("pio-dma-conflict did not fire: %+v", d.Findings)
	}
	// At full nominal rate the rule stays silent.
	events = append(mkWire("sci0", 44e6, 10), mkWire("myri0", 47e6, 10)...)
	if d := Diagnose(nil, events, sig); d.Has(CodePIODMA) {
		t.Fatalf("fired at nominal rate: %+v", d.Findings)
	}
	// Demoted but with no DMA traffic anywhere: no conflict to blame.
	if d := Diagnose(nil, mkWire("sci0", 22e6, 10), sig); d.Has(CodePIODMA) {
		t.Fatalf("fired without DMA traffic: %+v", d.Findings)
	}
}

func TestDiagnoseRetransmitBound(t *testing.T) {
	var clean, hit Budget
	clean.Msg, clean.Total = 1, 2*ms
	hit.Msg, hit.Total = 2, 40*ms
	hit.Stages[StageRexmit] = 30 * ms
	events := []Event{
		{At: vtime.Time(60 * ms), Dur: 10 * ms, Kind: KindRexmit, Msg: 2, Node: "a"},
		{At: vtime.Time(90 * ms), Dur: 20 * ms, Kind: KindBackoff, Msg: 2, Node: "a"},
	}
	d := Diagnose([]Budget{clean, hit}, events, Signals{})
	if !d.Has(CodeRexmitBound) {
		t.Fatalf("retransmit-bound did not fire: %+v", d.Findings)
	}
	var found Finding
	for _, f := range d.Findings {
		if f.Code == CodeRexmitBound {
			found = f
		}
	}
	if len(found.Evidence) == 0 || !strings.Contains(found.Evidence[0], "[50ms, 90ms]") {
		t.Fatalf("outage window missing from evidence: %+v", found.Evidence)
	}
	// Without meaningful retransmit share the rule stays silent.
	if d := Diagnose([]Budget{clean}, nil, Signals{}); d.Has(CodeRexmitBound) {
		t.Fatal("fired on a clean run")
	}
}

func TestDiagnoseOrdersBySeverity(t *testing.T) {
	var b Budget
	b.Total = 10 * ms
	b.Stages[StageRexmit] = 9 * ms
	events := append(
		gatewayEvents(20, 700*us, 40*us, 740*us),
		Event{At: vtime.Time(ms), Dur: ms, Kind: KindRexmit, Msg: 1, Node: "a"},
	)
	d := Diagnose([]Budget{b}, events, Signals{PipelineDepth: 1})
	if len(d.Findings) < 2 {
		t.Fatalf("expected multiple findings: %+v", d.Findings)
	}
	for i := 1; i < len(d.Findings); i++ {
		if d.Findings[i-1].Severity < d.Findings[i].Severity {
			t.Fatalf("findings not severity-sorted: %+v", d.Findings)
		}
	}
}
