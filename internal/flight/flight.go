// Package flight is the always-on flight recorder of the reproduction: a
// set of bounded, allocation-free per-node ring buffers of structured
// events (sends, receives, gateway buffer swaps, relay stalls,
// retransmits, probes, route-epoch changes), each stamped with virtual
// time. The recorder answers the question the aggregate metrics of
// package obs cannot: "what exactly was node gw doing in the microseconds
// before this DeliveryError fired?".
//
// The design mirrors hardware event counters: recording is a fixed-cost
// write into a preallocated ring (zero heap allocations, enforced by an
// AllocsPerRun regression test), so the recorder stays armed on every run
// rather than being a debug mode. When something goes wrong — a
// DeliveryError, an ErrNoRoute, a health-epoch change — the forwarding
// layer calls Dump and the recorder snapshots every ring into a bounded
// dump list for post-mortem export.
//
// Three consumers sit on top of the raw rings: WriteJSON exports the
// state machine-readably, Spans replays the events into the existing
// Chrome trace exporter (package obs), and package-level AnalyzeMessage /
// Diagnose (budget.go, diagnose.go) turn events into per-message latency
// budgets and named bottleneck verdicts.
//
// A nil *Recorder and a nil *Ring are both valid and record nothing, the
// same convention as obs.Registry and trace.Tracer, so instrumented code
// carries no conditionals.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// Kind tags what one recorded event is.
type Kind uint8

const (
	KindSend       Kind = iota // a payload transmission (link or gateway egress)
	KindRecv                   // a payload reception (gateway ingress)
	KindSwap                   // a gateway buffer swap (§3.4.1 fixed overhead)
	KindStall                  // a relay thread blocked waiting for a free buffer
	KindRexmit                 // an ack timeout expired; the wait that preceded a retransmit
	KindBackoff                // a backoff sleep before a message-level resend
	KindPack                   // host-side packing cost (header build, copy to staging)
	KindQueueWait              // time an item sat in a relay queue before service
	KindAckWait                // successful wait for an end-to-end acknowledgement
	KindReassembly             // stripe reassembly: spread between rail completions
	KindProbe                  // a health probe round trip
	KindEpoch                  // a routing-epoch change published by the health monitor
	KindWire                   // a link-level send as timed by the mad layer
	KindAggFlush               // an aggregate frame flushed by the coalescer
	KindAggWait                // time a sub-message waited in a coalescer before its flush
	KindReplicate              // a multicast branch send (root fan-out or gateway replication)
	numKinds
)

var kindNames = [numKinds]string{
	"send", "recv", "swap", "stall", "rexmit", "backoff", "pack",
	"queue-wait", "ack-wait", "reassembly", "probe", "epoch", "wire",
	"agg-flush", "agg-wait", "replicate",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Event is one fixed-size flight-recorder entry. Dur is the span the event
// accounts for, ending at At (instantaneous events carry Dur 0). Msg is the
// provenance message ID when the event is message-attributed, 0 otherwise.
// The string fields alias interned names owned by the caller (node and
// network names), so recording an Event allocates nothing.
type Event struct {
	At    vtime.Time
	Dur   vtime.Duration
	Kind  Kind
	Msg   uint64
	Bytes int32
	Node  string
	Net   string
}

// MarshalJSON renders the event with nanosecond timestamps and the kind
// spelled out, the shape the madstat -json document embeds.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		At    int64  `json:"at_ns"`
		Dur   int64  `json:"dur_ns,omitempty"`
		Kind  string `json:"kind"`
		Msg   uint64 `json:"msg,omitempty"`
		Bytes int32  `json:"bytes,omitempty"`
		Node  string `json:"node"`
		Net   string `json:"net,omitempty"`
	}{int64(e.At), int64(e.Dur), e.Kind.String(), e.Msg, e.Bytes, e.Node, e.Net})
}

// UnmarshalJSON parses the wire shape MarshalJSON emits, so exported
// recordings round-trip through tooling.
func (e *Event) UnmarshalJSON(data []byte) error {
	var raw struct {
		At    int64  `json:"at_ns"`
		Dur   int64  `json:"dur_ns"`
		Kind  string `json:"kind"`
		Msg   uint64 `json:"msg"`
		Bytes int32  `json:"bytes"`
		Node  string `json:"node"`
		Net   string `json:"net"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	kind := numKinds
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == raw.Kind {
			kind = k
			break
		}
	}
	if kind == numKinds {
		return fmt.Errorf("flight: unknown event kind %q", raw.Kind)
	}
	*e = Event{
		At: vtime.Time(raw.At), Dur: vtime.Duration(raw.Dur), Kind: kind,
		Msg: raw.Msg, Bytes: raw.Bytes, Node: raw.Node, Net: raw.Net,
	}
	return nil
}

// Ring is one node's bounded event buffer. Writes overwrite the oldest
// entry once the ring is full; Dropped counts the overwrites. The mutex
// makes recording safe under the race detector (tools read while the
// simulation records); Lock/Unlock on an uncontended mutex allocates
// nothing, preserving the 0 allocs/op contract.
type Ring struct {
	mu      sync.Mutex
	node    string
	buf     []Event
	next    uint64 // total events ever recorded
	dropped uint64
}

// Record appends one event. Nil-safe and allocation-free.
func (r *Ring) Record(k Kind, at vtime.Time, dur vtime.Duration, msg uint64, bytes int, net string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	i := r.next % uint64(len(r.buf))
	if r.next >= uint64(len(r.buf)) {
		r.dropped++
	}
	r.buf[i] = Event{At: at, Dur: dur, Kind: k, Msg: msg, Bytes: int32(bytes), Node: r.node, Net: net}
	r.next++
	r.mu.Unlock()
}

// Node returns the node name the ring records for.
func (r *Ring) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Len returns the number of events currently held (at most the capacity).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten before being read.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// SnapshotInto copies the ring's events, oldest first, into dst (reusing
// its backing array) and returns the filled slice. With cap(dst) at least
// the ring capacity the snapshot allocates nothing.
func (r *Ring) SnapshotInto(dst []Event) []Event {
	dst = dst[:0]
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	count := r.next
	if n := uint64(len(r.buf)); count > n {
		count = n
	}
	start := r.next - count
	for i := uint64(0); i < count; i++ {
		dst = append(dst, r.buf[(start+i)%uint64(len(r.buf))])
	}
	return dst
}

// Snapshot returns a fresh copy of the ring's events, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	return r.SnapshotInto(make([]Event, 0, len(r.buf)))
}

// DefaultRingCap is the per-node ring capacity when the caller passes 0.
const DefaultRingCap = 4096

// maxDumps bounds the post-mortem dump list so pathological runs (every
// message failing, a flapping link churning epochs) cannot grow memory
// without bound. Later triggers only bump a suppressed counter.
const maxDumps = 16

// Dump is one post-mortem snapshot of every ring, taken when a trigger
// (DeliveryError, ErrNoRoute, health-epoch churn) fired.
type Dump struct {
	Reason string         `json:"reason"`
	At     vtime.Time     `json:"at_ns"`
	Rings  []RingSnapshot `json:"rings"`
}

// RingSnapshot is one ring's content inside a Dump or a JSON export.
type RingSnapshot struct {
	Node    string  `json:"node"`
	Dropped uint64  `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// Recorder owns the per-node rings. Rings are created on first use, so the
// recorder can be armed on a platform either before or after the
// forwarding layer is built — instrumentation looks its ring up lazily.
type Recorder struct {
	mu         sync.Mutex
	ringCap    int
	clock      func() vtime.Time
	rings      map[string]*Ring
	order      []string
	dumps      []Dump
	suppressed int
}

// NewRecorder returns a recorder whose rings hold ringCap events each
// (DefaultRingCap when ringCap <= 0).
func NewRecorder(ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Recorder{ringCap: ringCap, rings: make(map[string]*Ring)}
}

// SetClock installs the virtual-time source used to stamp dumps (typically
// vtime.Sim.Now).
func (rec *Recorder) SetClock(fn func() vtime.Time) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.clock = fn
	rec.mu.Unlock()
}

func (rec *Recorder) now() vtime.Time {
	if rec.clock == nil {
		return 0
	}
	return rec.clock()
}

// Ring returns the named node's ring, creating it on first use. Nil-safe:
// a nil recorder returns a nil ring, which records nothing.
func (rec *Recorder) Ring(node string) *Ring {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := rec.rings[node]
	if r == nil {
		r = &Ring{node: node, buf: make([]Event, rec.ringCap)}
		rec.rings[node] = r
		rec.order = append(rec.order, node)
	}
	return r
}

// Nodes returns the ring names, sorted.
func (rec *Recorder) Nodes() []string {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := append([]string(nil), rec.order...)
	sort.Strings(out)
	return out
}

// Dropped returns the total events overwritten across all rings.
func (rec *Recorder) Dropped() uint64 {
	var total uint64
	for _, r := range rec.snapshotRings() {
		total += r.Dropped
	}
	return total
}

// snapshotRings copies every ring's current content, node-sorted.
func (rec *Recorder) snapshotRings() []RingSnapshot {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	nodes := append([]string(nil), rec.order...)
	rings := make([]*Ring, len(nodes))
	for i, n := range nodes {
		rings[i] = rec.rings[n]
	}
	rec.mu.Unlock()
	sort.Sort(&ringsByNode{nodes, rings})
	out := make([]RingSnapshot, len(rings))
	for i, r := range rings {
		out[i] = RingSnapshot{Node: nodes[i], Dropped: r.Dropped(), Events: r.Snapshot()}
	}
	return out
}

type ringsByNode struct {
	nodes []string
	rings []*Ring
}

func (s *ringsByNode) Len() int           { return len(s.nodes) }
func (s *ringsByNode) Less(i, j int) bool { return s.nodes[i] < s.nodes[j] }
func (s *ringsByNode) Swap(i, j int) {
	s.nodes[i], s.nodes[j] = s.nodes[j], s.nodes[i]
	s.rings[i], s.rings[j] = s.rings[j], s.rings[i]
}

// Events returns every recorded event across all rings, ordered by virtual
// time (ties keep node order, then ring order), for the analyzers.
func (rec *Recorder) Events() []Event {
	var out []Event
	for _, r := range rec.snapshotRings() {
		out = append(out, r.Events...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dump snapshots every ring under the given reason. This is the cold path —
// it allocates freely — and it is bounded: after maxDumps triggers further
// calls only count as suppressed.
func (rec *Recorder) Dump(reason string) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	if len(rec.dumps) >= maxDumps {
		rec.suppressed++
		rec.mu.Unlock()
		return
	}
	at := rec.now()
	rec.mu.Unlock()

	d := Dump{Reason: reason, At: at, Rings: rec.snapshotRings()}

	rec.mu.Lock()
	if len(rec.dumps) < maxDumps {
		rec.dumps = append(rec.dumps, d)
	} else {
		rec.suppressed++
	}
	rec.mu.Unlock()
}

// Dumps returns the post-mortem snapshots taken so far.
func (rec *Recorder) Dumps() []Dump {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Dump(nil), rec.dumps...)
}

// Suppressed returns how many dump triggers fired after the dump list was
// full.
func (rec *Recorder) Suppressed() int {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.suppressed
}

// WriteJSON exports the recorder — live rings plus accumulated dumps — as
// one JSON document.
func (rec *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Rings      []RingSnapshot `json:"rings"`
		Dumps      []Dump         `json:"dumps,omitempty"`
		Suppressed int            `json:"dumps_suppressed,omitempty"`
	}{Rings: []RingSnapshot{}}
	if rec != nil {
		doc.Rings = rec.snapshotRings()
		doc.Dumps = rec.Dumps()
		doc.Suppressed = rec.Suppressed()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Spans replays the recorded events as trace spans ("flight:<node>" lanes)
// so the existing Chrome exporter renders them next to the live tracer's
// lanes in Perfetto.
func (rec *Recorder) Spans() []trace.Span {
	evs := rec.Events()
	out := make([]trace.Span, 0, len(evs))
	for _, e := range evs {
		t0 := e.At
		if e.Dur > 0 && vtime.Time(e.Dur) <= e.At {
			t0 = e.At.Add(-e.Dur)
		}
		out = append(out, trace.Span{
			Actor: "flight:" + e.Node,
			Op:    e.Kind.String(),
			Bytes: int(e.Bytes),
			T0:    t0,
			T1:    e.At,
		})
	}
	return out
}
