package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"madgo/internal/vtime"
)

const us = vtime.Microsecond

func TestRingRecordAndSnapshot(t *testing.T) {
	rec := NewRecorder(4)
	r := rec.Ring("gw")
	if r.Node() != "gw" {
		t.Fatalf("node = %q", r.Node())
	}
	for i := 0; i < 3; i++ {
		r.Record(KindSend, vtime.Time(i)*vtime.Time(us), us, uint64(i+1), 100, "sci0")
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len %d dropped %d", r.Len(), r.Dropped())
	}
	evs := r.Snapshot()
	if len(evs) != 3 || evs[0].Msg != 1 || evs[2].Msg != 3 {
		t.Fatalf("snapshot order wrong: %+v", evs)
	}
	if evs[0].Node != "gw" || evs[0].Net != "sci0" || evs[0].Bytes != 100 {
		t.Fatalf("event fields wrong: %+v", evs[0])
	}
}

func TestRingWraparound(t *testing.T) {
	rec := NewRecorder(4)
	r := rec.Ring("a")
	for i := 1; i <= 10; i++ {
		r.Record(KindRecv, vtime.Time(i), 0, uint64(i), 0, "")
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Snapshot()
	want := []uint64{7, 8, 9, 10}
	for i, w := range want {
		if evs[i].Msg != w {
			t.Fatalf("slot %d = msg %d, want %d (oldest-first after wrap)", i, evs[i].Msg, w)
		}
	}
	if rec.Dropped() != 6 {
		t.Fatalf("recorder dropped = %d", rec.Dropped())
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	var r *Ring
	r.Record(KindSend, 0, 0, 1, 1, "x") // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.Node() != "" || r.Snapshot() != nil {
		t.Fatal("nil ring not inert")
	}
	if got := r.SnapshotInto(make([]Event, 0, 4)); len(got) != 0 {
		t.Fatal("nil ring SnapshotInto not empty")
	}
	if rec.Ring("a") != nil {
		t.Fatal("nil recorder returned a ring")
	}
	rec.Dump("x")
	rec.SetClock(func() vtime.Time { return 1 })
	if rec.Events() != nil || rec.Dumps() != nil || rec.Nodes() != nil ||
		rec.Suppressed() != 0 || len(rec.Spans()) != 0 {
		t.Fatal("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rings": []`) {
		t.Fatalf("nil recorder JSON = %s", buf.String())
	}
}

func TestRecorderEventsMergedSorted(t *testing.T) {
	rec := NewRecorder(8)
	rec.Ring("b").Record(KindRecv, 20, 0, 2, 0, "")
	rec.Ring("a").Record(KindSend, 10, 0, 1, 0, "")
	rec.Ring("a").Record(KindSend, 30, 0, 3, 0, "")
	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Msg != 1 || evs[1].Msg != 2 || evs[2].Msg != 3 {
		t.Fatalf("merge not At-ordered: %+v", evs)
	}
	nodes := rec.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestDumpBoundedAndStamped(t *testing.T) {
	rec := NewRecorder(4)
	now := vtime.Time(7 * us)
	rec.SetClock(func() vtime.Time { return now })
	rec.Ring("gw").Record(KindSwap, 5, 40*us, 9, 0, "")
	for i := 0; i < maxDumps+5; i++ {
		rec.Dump("delivery-error")
	}
	dumps := rec.Dumps()
	if len(dumps) != maxDumps {
		t.Fatalf("dumps = %d, want capped at %d", len(dumps), maxDumps)
	}
	if rec.Suppressed() != 5 {
		t.Fatalf("suppressed = %d, want 5", rec.Suppressed())
	}
	d := dumps[0]
	if d.Reason != "delivery-error" || d.At != now {
		t.Fatalf("dump header wrong: %+v", d)
	}
	if len(d.Rings) != 1 || d.Rings[0].Node != "gw" || len(d.Rings[0].Events) != 1 {
		t.Fatalf("dump rings wrong: %+v", d.Rings)
	}
	if d.Rings[0].Events[0].Kind != KindSwap {
		t.Fatalf("dumped event = %+v", d.Rings[0].Events[0])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rec := NewRecorder(4)
	rec.Ring("gw").Record(KindStall, 100*vtime.Time(us), 30*us, 4, 2048, "myri0")
	rec.Dump("epoch-churn")
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rings []struct {
			Node   string `json:"node"`
			Events []struct {
				At    int64  `json:"at_ns"`
				Dur   int64  `json:"dur_ns"`
				Kind  string `json:"kind"`
				Msg   uint64 `json:"msg"`
				Bytes int32  `json:"bytes"`
				Net   string `json:"net"`
			} `json:"events"`
		} `json:"rings"`
		Dumps []Dump `json:"dumps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Rings) != 1 || doc.Rings[0].Node != "gw" {
		t.Fatalf("rings = %+v", doc.Rings)
	}
	e := doc.Rings[0].Events[0]
	if e.Kind != "stall" || e.Msg != 4 || e.Bytes != 2048 || e.Net != "myri0" || e.Dur != int64(30*us) {
		t.Fatalf("event = %+v", e)
	}
	if len(doc.Dumps) != 1 || doc.Dumps[0].Reason != "epoch-churn" {
		t.Fatalf("dumps = %+v", doc.Dumps)
	}
}

func TestSpansReplay(t *testing.T) {
	rec := NewRecorder(4)
	rec.Ring("gw").Record(KindSwap, 100*vtime.Time(us), 40*us, 1, 0, "")
	rec.Ring("gw").Record(KindEpoch, 200*vtime.Time(us), 0, 0, 0, "")
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Actor != "flight:gw" || s.Op != "swap" {
		t.Fatalf("span identity = %+v", s)
	}
	if s.T0 != 60*vtime.Time(us) || s.T1 != 100*vtime.Time(us) {
		t.Fatalf("span window = [%v, %v]", s.T0, s.T1)
	}
	if spans[1].T0 != spans[1].T1 {
		t.Fatalf("instant event should be zero-width: %+v", spans[1])
	}
}

func TestKindAndStageNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("out-of-range kind string")
	}
	for s := Stage(0); s < NumStages; s++ {
		if strings.Contains(s.String(), "stage(") {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(99).String() != "stage(99)" {
		t.Fatal("out-of-range stage string")
	}
}
