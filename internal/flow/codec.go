package flow

import (
	"encoding/binary"
	"hash/crc32"
)

// A credit grant is the unit of the gateway-advertised window: the gateway
// returns one grant toward an upstream sender each time a staging-ring slot
// frees, and the sender's window widens by Credits transfers. Grants ride
// piggybacked on existing reverse traffic (acknowledgements in reliable
// mode, the out-of-band credit line the simulator models otherwise), so
// they must be self-checking: a corrupted grant that inflated a window
// would silently defeat the overload protection, which is why the trailer
// CRC covers every preceding byte.
//
// Wire layout (little-endian), GrantLen = 20 bytes:
//
//	[0:4)   gateway rank   (the granting node)
//	[4:8)   upstream rank  (the sender the credits are addressed to)
//	[8:12)  credits        (1..MaxGrantCredits)
//	[12:16) sequence       (per-account grant counter, duplicate detection)
//	[16:20) CRC32 (IEEE) over bytes [0:16)

// GrantLen is the wire size of one credit grant.
const GrantLen = 20

// MaxGrantCredits caps a single grant. A grant claiming more than this is
// treated as corruption: no slot pool in the system frees that many slots
// at once, and accepting it would blow the window open.
const MaxGrantCredits = 1 << 20

// Grant is one decoded credit grant.
type Grant struct {
	Gateway  uint32 // rank of the granting gateway
	Upstream uint32 // rank of the sender being credited
	Credits  uint32 // window widening, in transfers
	Seq      uint32 // per-account grant sequence number
}

// AppendGrant appends the wire form of g to buf and returns the extended
// slice. Appending (rather than allocating) keeps the per-grant hot path in
// the gateway allocation-free: each credit account reuses one scratch
// buffer.
func AppendGrant(buf []byte, g Grant) []byte {
	off := len(buf)
	var w [GrantLen]byte
	binary.LittleEndian.PutUint32(w[0:], g.Gateway)
	binary.LittleEndian.PutUint32(w[4:], g.Upstream)
	binary.LittleEndian.PutUint32(w[8:], g.Credits)
	binary.LittleEndian.PutUint32(w[12:], g.Seq)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint32(buf[off+16:], crc32.ChecksumIEEE(buf[off:off+16]))
	return buf
}

// EncodeGrant returns the wire form of g in a fresh buffer.
func EncodeGrant(g Grant) []byte { return AppendGrant(nil, g) }

// DecodeGrant parses one credit grant. It never panics on malformed input:
// ok is false when the buffer is not exactly GrantLen bytes, the checksum
// does not cover the content, or the credit count is unusable (zero, or
// past MaxGrantCredits). The fuzz target pins this contract down — grants
// adjust sender windows, so a corrupted one must be rejected, not applied.
func DecodeGrant(b []byte) (g Grant, ok bool) {
	if len(b) != GrantLen {
		return Grant{}, false
	}
	if crc32.ChecksumIEEE(b[:16]) != binary.LittleEndian.Uint32(b[16:]) {
		return Grant{}, false
	}
	g = Grant{
		Gateway:  binary.LittleEndian.Uint32(b[0:]),
		Upstream: binary.LittleEndian.Uint32(b[4:]),
		Credits:  binary.LittleEndian.Uint32(b[8:]),
		Seq:      binary.LittleEndian.Uint32(b[12:]),
	}
	if g.Credits == 0 || g.Credits > MaxGrantCredits {
		return Grant{}, false
	}
	return g, true
}
