package flow

// DRR is a deficit-round-robin scheduler over flows whose item costs are
// only known after service — the gateway situation: a relayed message's
// byte count is discovered while forwarding it, not when its arrival is
// queued. Each flow keeps a FIFO queue and a signed deficit counter in cost
// units (bytes). A visit replenishes the flow's deficit by the quantum
// (capped at one quantum of savings, so an idle flow cannot hoard a burst);
// the flow is served when its deficit is non-negative, and Charge()
// afterwards debits the actual cost. A flow that just relayed an elephant
// goes deep into debt and is skipped until enough rounds repay it, while
// mouse flows are served every round — long-run byte rates equalize across
// backlogged flows regardless of per-message size, which FIFO token grabs
// never do.
//
// The scheduler is deterministic: flows are visited in admission order from
// a slice, never by map iteration. It is not safe for concurrent use; in
// this codebase it only ever runs under the single-threaded simulation
// scheduler.
type DRR[T any] struct {
	quantum int64
	flows   map[string]*drrFlow[T]
	ring    []string // admission-ordered visit sequence
	cur     int
	queued  int   // total items across all flows
	rounds  int64 // completed passes over the ring
}

type drrFlow[T any] struct {
	q       []T
	head    int // index of the queue head; q[:head] is dead space to recycle
	deficit int64
}

// NewDRR returns a scheduler with the given replenishment quantum in cost
// units. A non-positive quantum is pinned to 1 (pure round-robin over
// items).
func NewDRR[T any](quantum int64) *DRR[T] {
	if quantum < 1 {
		quantum = 1
	}
	return &DRR[T]{quantum: quantum, flows: make(map[string]*drrFlow[T])}
}

func (d *DRR[T]) flow(key string) *drrFlow[T] {
	f, ok := d.flows[key]
	if !ok {
		f = &drrFlow[T]{}
		d.flows[key] = f
		d.ring = append(d.ring, key)
	}
	return f
}

// Push appends an item to the named flow's queue, admitting the flow on
// first use.
func (d *DRR[T]) Push(key string, item T) {
	f := d.flow(key)
	if f.head > 0 && f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	f.q = append(f.q, item)
	d.queued++
}

// Pop returns the next item under the DRR policy along with its flow key,
// or ok=false when every queue is empty. The caller settles the item's
// actual cost with Charge once it is known.
func (d *DRR[T]) Pop() (key string, item T, ok bool) {
	var zero T
	if d.queued == 0 {
		return "", zero, false
	}
	// Bounded: each pass either serves an item or strictly raises the
	// most indebted non-empty flow toward zero, and debts are bounded by
	// the largest single charge.
	for {
		key = d.ring[d.cur]
		f := d.flows[key]
		d.cur++
		if d.cur == len(d.ring) {
			d.cur = 0
			d.rounds++
		}
		if f.head == len(f.q) {
			// Idle flows pay down debt at the same rate active ones
			// earn quantum, but never bank a surplus: a flow cannot
			// profit from going quiet.
			if f.deficit < 0 {
				f.deficit += d.quantum
				if f.deficit > 0 {
					f.deficit = 0
				}
			}
			continue
		}
		f.deficit += d.quantum
		if f.deficit > d.quantum {
			f.deficit = d.quantum
		}
		if f.deficit < 0 {
			continue
		}
		item = f.q[f.head]
		f.q[f.head] = zero // release the reference for GC
		f.head++
		d.queued--
		return key, item, true
	}
}

// PopFrom pops the head item of one specific flow if the queue is
// non-empty and match accepts it — the relay daemons use it to extend a
// just-scheduled flow's service into a windowed burst without giving other
// flows' deficits a say mid-burst. The cost still goes through Charge.
func (d *DRR[T]) PopFrom(key string, match func(T) bool) (item T, ok bool) {
	var zero T
	f, exists := d.flows[key]
	if !exists || f.head == len(f.q) {
		return zero, false
	}
	item = f.q[f.head]
	if match != nil && !match(item) {
		return zero, false
	}
	f.q[f.head] = zero
	f.head++
	d.queued--
	return item, true
}

// Charge debits the actual cost of a served item against its flow.
func (d *DRR[T]) Charge(key string, cost int64) {
	if f, ok := d.flows[key]; ok {
		f.deficit -= cost
	}
}

// Len returns the total number of queued items.
func (d *DRR[T]) Len() int { return d.queued }

// Flows returns how many flows currently have queued items.
func (d *DRR[T]) Flows() int {
	n := 0
	for _, f := range d.flows {
		if f.head < len(f.q) {
			n++
		}
	}
	return n
}

// Rounds returns how many full passes over the admitted flows the
// scheduler has completed.
func (d *DRR[T]) Rounds() int64 { return d.rounds }

// Deficit returns the named flow's current deficit (0 for unknown flows) —
// a test hook.
func (d *DRR[T]) Deficit(key string) int64 {
	if f, ok := d.flows[key]; ok {
		return f.deficit
	}
	return 0
}
