package flow

import "testing"

// drain pops up to n items, returning the sequence of served flow keys and
// charging each item's cost (items are their own costs here).
func drain(d *DRR[int64], n int) []string {
	var keys []string
	for i := 0; i < n; i++ {
		key, cost, ok := d.Pop()
		if !ok {
			break
		}
		d.Charge(key, cost)
		keys = append(keys, key)
	}
	return keys
}

func TestDRREmptyAndSingleFlow(t *testing.T) {
	d := NewDRR[int64](100)
	if _, _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty scheduler returned an item")
	}
	for i := 0; i < 5; i++ {
		d.Push("only", 100)
	}
	if d.Len() != 5 || d.Flows() != 1 {
		t.Fatalf("Len=%d Flows=%d", d.Len(), d.Flows())
	}
	if got := drain(d, 10); len(got) != 5 {
		t.Fatalf("served %d items, want 5", len(got))
	}
	if d.Len() != 0 || d.Flows() != 0 {
		t.Fatalf("after drain: Len=%d Flows=%d", d.Len(), d.Flows())
	}
}

func TestDRRRoundRobinOverEqualFlows(t *testing.T) {
	d := NewDRR[int64](10)
	for i := 0; i < 3; i++ {
		d.Push("a", 10)
		d.Push("b", 10)
		d.Push("c", 10)
	}
	got := drain(d, 9)
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serve order %v, want %v", got, want)
		}
	}
}

// TestDRRByteFairnessUnderMixedSizes is the property the gateway scheduler
// exists for: with one elephant flow (large items) and mouse flows (small
// items), all backlogged, long-run byte shares equalize — the elephant is
// skipped while it repays its debt instead of hogging every round.
func TestDRRByteFairnessUnderMixedSizes(t *testing.T) {
	const quantum = 16
	d := NewDRR[int64](quantum)
	// Keep every flow backlogged throughout the measurement window.
	for i := 0; i < 64; i++ {
		d.Push("elephant", 256)
		d.Push("m1", 16)
		d.Push("m2", 16)
	}
	served := map[string]int64{}
	for i := 0; i < 96; i++ {
		key, cost, ok := d.Pop()
		if !ok {
			t.Fatalf("scheduler ran dry at %d", i)
		}
		d.Charge(key, cost)
		served[key] += cost
	}
	total := served["elephant"] + served["m1"] + served["m2"]
	for f, b := range served {
		share := float64(b) / float64(total)
		if share < 0.25 || share > 0.42 {
			t.Errorf("flow %s byte share %.2f, want ~1/3 (served %v)", f, share, served)
		}
	}
	if j := Jain([]float64{float64(served["elephant"]), float64(served["m1"]), float64(served["m2"])}); j < 0.95 {
		t.Errorf("Jain over served bytes = %.3f, want >= 0.95 (%v)", j, served)
	}
}

func TestDRRNoStarvationDeepDebt(t *testing.T) {
	d := NewDRR[int64](1)
	d.Push("deep", 1)
	_, _, _ = d.Pop()
	d.Charge("deep", 1_000_000) // a monstrous charge
	d.Push("deep", 1)
	// The only backlogged flow must still be served in one Pop (the scan
	// replenishes until eligible); it must not spin forever.
	if key, _, ok := d.Pop(); !ok || key != "deep" {
		t.Fatalf("deeply indebted sole flow not served: %q %v", key, ok)
	}
}

func TestDRRIdleFlowCannotBank(t *testing.T) {
	d := NewDRR[int64](10)
	d.Push("idle", 10)
	d.Push("busy", 10)
	drain(d, 2)
	// idle goes quiet while busy cycles many times; idle's deficit must
	// be capped, not accumulate a burst allowance.
	for i := 0; i < 50; i++ {
		d.Push("busy", 10)
		drain(d, 1)
	}
	if def := d.Deficit("idle"); def > 10 {
		t.Fatalf("idle flow banked deficit %d > quantum", def)
	}
}

func TestDRRIdleDebtDecays(t *testing.T) {
	d := NewDRR[int64](10)
	d.Push("debtor", 5)
	d.Push("busy", 10)
	drain(d, 2)
	d.Charge("debtor", 100) // extra debt, then the flow goes idle
	before := d.Deficit("debtor")
	for i := 0; i < 5; i++ {
		d.Push("busy", 10)
		drain(d, 1)
	}
	after := d.Deficit("debtor")
	if after < before {
		t.Fatalf("idle debt grew: %d -> %d", before, after)
	}
	if after > 0 {
		t.Fatalf("idle debt decayed past zero: %d", after)
	}
}

func TestDRRPopFrom(t *testing.T) {
	d := NewDRR[int64](10)
	d.Push("a", 1)
	d.Push("a", 2)
	d.Push("b", 3)
	if item, ok := d.PopFrom("a", nil); !ok || item != 1 {
		t.Fatalf("PopFrom(a) = %v %v", item, ok)
	}
	if _, ok := d.PopFrom("a", func(v int64) bool { return v > 5 }); ok {
		t.Fatal("PopFrom matched an item the predicate rejected")
	}
	if item, ok := d.PopFrom("a", func(v int64) bool { return v == 2 }); !ok || item != 2 {
		t.Fatalf("PopFrom(a, match) = %v %v", item, ok)
	}
	if _, ok := d.PopFrom("a", nil); ok {
		t.Fatal("PopFrom on drained flow returned an item")
	}
	if _, ok := d.PopFrom("nosuch", nil); ok {
		t.Fatal("PopFrom on unknown flow returned an item")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDRRQuantumFloorAndRounds(t *testing.T) {
	d := NewDRR[int64](-5) // pinned to 1
	d.Push("x", 1)
	d.Push("y", 1)
	drain(d, 2)
	if d.Rounds() < 1 {
		t.Fatalf("Rounds() = %d, want >= 1 after a full pass", d.Rounds())
	}
	if d.Deficit("nosuch") != 0 {
		t.Fatal("Deficit of unknown flow not zero")
	}
	d.Charge("nosuch", 5) // must not panic or admit the flow
	if _, ok := d.flows["nosuch"]; ok {
		t.Fatal("Charge admitted an unknown flow")
	}
}
