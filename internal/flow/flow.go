// Package flow implements credit-based end-to-end flow control and fair
// scheduling for the forwarding layer — the "sophisticated bandwidth control
// mechanism [to] regulate the incoming communication flow on gateways" the
// paper's conclusion names as future work, realized the way later credit-
// carrying transports (cf. MPICH2's RDMA channels) did it.
//
// The package is deliberately pure: it holds the wire codec for credit
// grants (codec.go), the deficit-round-robin scheduler gateways arbitrate
// ingress virtual channels with (drr.go), and the per-flow byte meter the
// fairness experiments score with (this file). The blocking semantics —
// senders parking on exhausted windows, grants waking them — live in
// internal/fwd on top of the simulator's synchronization primitives, so
// everything here is directly unit-testable and fuzzable.
package flow

// Jain computes Jain's fairness index over per-flow allocations:
// (Σx)² / (n·Σx²). It is 1 when every flow got the same share and
// approaches 1/n as one flow starves the rest. Zero-valued and empty
// inputs yield 0 so callers can gate on a threshold directly.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Meter tallies delivered bytes per flow in first-seen order — the
// receiver-side instrument the incast experiments (bench c1, cmd/madload)
// score per-sender goodput and fairness with.
type Meter struct {
	order []string
	bytes map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{bytes: make(map[string]int64)}
}

// Add credits n bytes to the named flow, registering it on first use.
func (m *Meter) Add(flow string, n int64) {
	if _, ok := m.bytes[flow]; !ok {
		m.order = append(m.order, flow)
	}
	m.bytes[flow] += n
}

// Flows returns the flow names in first-seen order.
func (m *Meter) Flows() []string { return append([]string(nil), m.order...) }

// Bytes returns the tally of one flow (0 if never seen).
func (m *Meter) Bytes(flow string) int64 { return m.bytes[flow] }

// Total returns the sum over every flow.
func (m *Meter) Total() int64 {
	var t int64
	for _, b := range m.bytes {
		t += b
	}
	return t
}

// Shares returns the per-flow byte counts in first-seen order.
func (m *Meter) Shares() []float64 {
	out := make([]float64, len(m.order))
	for i, f := range m.order {
		out[i] = float64(m.bytes[f])
	}
	return out
}

// Jain returns Jain's fairness index over the meter's per-flow byte
// counts.
func (m *Meter) Jain() float64 { return Jain(m.Shares()) }
