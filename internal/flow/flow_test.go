package flow

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"single", []float64{42}, 1},
		{"one-hog", []float64{100, 0, 0, 0}, 0.25},
		{"two-to-one", []float64{2, 1}, 0.9},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Jain(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
}

func TestJainBounds(t *testing.T) {
	// For any non-degenerate allocation the index lies in (1/n, 1].
	xs := []float64{1, 3, 9, 27, 81}
	j := Jain(xs)
	if j <= 1/float64(len(xs)) || j > 1 {
		t.Fatalf("Jain(%v) = %v out of (1/n, 1]", xs, j)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	if m.Total() != 0 || m.Jain() != 0 {
		t.Fatal("fresh meter not zero")
	}
	m.Add("b", 10)
	m.Add("a", 30)
	m.Add("b", 20)
	if got := m.Flows(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Flows() = %v, want first-seen order [b a]", got)
	}
	if m.Bytes("b") != 30 || m.Bytes("a") != 30 || m.Bytes("zzz") != 0 {
		t.Fatalf("per-flow tallies wrong: b=%d a=%d", m.Bytes("b"), m.Bytes("a"))
	}
	if m.Total() != 60 {
		t.Fatalf("Total() = %d, want 60", m.Total())
	}
	if shares := m.Shares(); len(shares) != 2 || shares[0] != 30 || shares[1] != 30 {
		t.Fatalf("Shares() = %v", shares)
	}
	if j := m.Jain(); math.Abs(j-1) > 1e-9 {
		t.Fatalf("equal shares: Jain = %v, want 1", j)
	}
}
