package fluid

import (
	"testing"

	"madgo/internal/vtime"
)

func TestFlowAccessors(t *testing.T) {
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", 10*MB, nil)
	f := e.Start(Spec{Name: "probe", Class: ClassPIO, Demand: 5 * MB, Bytes: 10e6, Route: Path(ClassPIO, r)}, nil)
	if f.Name() != "probe" || f.Class() != ClassPIO {
		t.Error("identity accessors wrong")
	}
	if f.Rate() != 5*MB {
		t.Errorf("rate = %v", f.Rate())
	}
	if f.Remaining() != 10e6 {
		t.Errorf("remaining = %v", f.Remaining())
	}
	if r.Name() != "bus" || r.Capacity() != 10*MB || r.ActiveFlows() != 1 {
		t.Error("resource accessors wrong")
	}
	s.Spawn("idle", func(p *vtime.Proc) { p.Sleep(5 * vtime.Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Remaining() != 0 || f.Rate() != 0 {
		t.Errorf("finished flow: remaining=%v rate=%v", f.Remaining(), f.Rate())
	}
}

func TestStartZeroBytesFiresCallback(t *testing.T) {
	s := vtime.New()
	e := NewEngine(s)
	fired := false
	if f := e.Start(Spec{Name: "none", Demand: 1, Bytes: 0}, func() { fired = true }); f != nil {
		t.Fatal("zero-byte start returned a flow")
	}
	s.Spawn("idle", func(p *vtime.Proc) { p.Sleep(vtime.Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("callback not fired")
	}
}

func TestManyOverlappingFlowsCompleteExactly(t *testing.T) {
	// A stress shape: 40 flows with staggered starts over three shared
	// resources; every byte must be accounted for.
	s := vtime.New()
	e := NewEngine(s)
	r1 := e.NewResource("r1", 50*MB, nil)
	r2 := e.NewResource("r2", 30*MB, nil)
	r3 := e.NewResource("r3", 70*MB, nil)
	routes := [][]Hop{
		Path(ClassDMA, r1),
		Path(ClassDMA, r1, r2),
		Path(ClassDMA, r2, r3),
		Path(ClassDMA, r1, r2, r3),
	}
	var total float64
	done := 0
	for i := 0; i < 40; i++ {
		i := i
		n := int64(1e5 * float64(1+i%7))
		total += float64(n)
		s.Spawn("f", func(p *vtime.Proc) {
			p.Sleep(vtime.Duration(i) * 3 * vtime.Millisecond)
			e.Transfer(p, Spec{
				Name: "f", Class: ClassDMA, Demand: 40 * MB, Bytes: n,
				Route: routes[i%len(routes)],
			})
			done++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 40 {
		t.Fatalf("done = %d", done)
	}
	if e.ActiveFlows() != 0 {
		t.Fatalf("flows leaked: %d", e.ActiveFlows())
	}
	// r1 carried routes 0, 1 and 3.
	var want1 float64
	for i := 0; i < 40; i++ {
		if m := i % len(routes); m == 0 || m == 1 || m == 3 {
			want1 += 1e5 * float64(1+i%7)
		}
	}
	if diff := r1.BytesServed() - want1; diff > 1 || diff < -1 {
		t.Fatalf("r1 served %.0f, want %.0f", r1.BytesServed(), want1)
	}
}

func TestInterferenceOnlyOnTaggedHop(t *testing.T) {
	// A flow that is PIO on one bus and DMA on another is only demoted
	// where it is PIO — the per-hop class refinement used by the SCI
	// driver.
	pioUnderDMA := func(self Presence, active []Presence) float64 {
		if self.Class != ClassPIO {
			return 1
		}
		for _, g := range active {
			if g.Class == ClassDMA {
				return 0.5
			}
		}
		return 1
	}
	s := vtime.New()
	e := NewEngine(s)
	srcBus := e.NewResource("src", 132*MB, pioUnderDMA)
	dstBus := e.NewResource("dst", 132*MB, pioUnderDMA)
	// Background DMA on the DESTINATION bus only.
	e.Start(Spec{Name: "noise", Class: ClassDMA, Demand: 40 * MB, Bytes: 400e6, Route: Path(ClassDMA, dstBus)}, nil)
	var d vtime.Duration
	s.Spawn("x", func(p *vtime.Proc) {
		// PIO on the source bus, DMA on the destination bus: no
		// demotion anywhere (the PIO hop sees no DMA, the DMA hop is
		// not demotable).
		d = e.Transfer(p, Spec{
			Name: "mixed", Class: ClassPIO, Demand: 40 * MB, Bytes: 40e6,
			Route: []Hop{{R: srcBus, Class: ClassPIO}, {R: dstBus, Class: ClassDMA}},
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Seconds(), 1.0, 1e-6) {
		t.Fatalf("mixed-class flow took %v, want 1s (no demotion)", d)
	}
}
