// Package fluid models data transfers as fluid flows over shared,
// capacity-limited resources (PCI buses, network wires, NIC engines).
//
// A transfer is a flow of N bytes routed through an ordered set of
// resources; its instantaneous rate is the result of a max-min fair
// allocation subject to per-resource capacities, per-flow demand caps (the
// speed the initiating engine could reach on an idle machine) and
// per-resource arbitration policies (e.g. "PIO transactions progress at half
// speed while a DMA transaction is active", the PCI behaviour measured in
// §3.4 of the paper).
//
// Rates are piecewise constant: they change only when a flow starts or
// finishes, so an entire bandwidth sweep costs a handful of events per
// packet rather than per byte. Progress is integrated lazily at each change.
package fluid

import (
	"fmt"
	"math"
	"sort"

	"madgo/internal/obs"
	"madgo/internal/vtime"
)

// Class tags a flow with the kind of bus/link transaction it performs.
// Resources interpret classes in their arbitration policies; the fluid
// engine itself treats them as opaque.
type Class uint8

// Transaction classes used by the hardware models.
const (
	ClassDMA  Class = iota // card-initiated DMA (Myrinet LANai, SCI ingress)
	ClassPIO               // processor PIO (SCI egress writes)
	ClassWire              // time on a network cable
	ClassCPU               // host memory copies
)

func (c Class) String() string {
	switch c {
	case ClassDMA:
		return "DMA"
	case ClassPIO:
		return "PIO"
	case ClassWire:
		return "wire"
	case ClassCPU:
		return "CPU"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Hop is one step of a flow's route: a resource plus the transaction class
// the flow presents to that resource. The same transfer can be PIO on the
// sender's PCI bus yet a card-initiated DMA write on the receiver's bus —
// exactly the SCI situation in the paper — so the class is per hop, not per
// flow.
type Hop struct {
	R     *Resource
	Class Class
}

// Presence is a flow as seen by one resource: the flow plus the class of its
// hop there.
type Presence struct {
	Flow  *Flow
	Class Class
}

// AdjustFunc is a resource arbitration policy: given one flow's presence and
// every presence currently active on the resource (including self), it
// returns a multiplier applied to the flow's demand. Multipliers from all
// resources on a flow's route compose multiplicatively.
type AdjustFunc func(self Presence, active []Presence) float64

// Resource is a shared capacity: a bus, a wire, a NIC engine.
type Resource struct {
	name     string
	capacity float64 // bytes/second
	adjust   AdjustFunc

	flows  []Presence // active flows through this resource
	served float64    // total bytes moved through this resource (diagnostics)
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in bytes per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// BytesServed returns the total number of bytes moved through the resource
// since creation; tests use it for conservation checks and benchmarks for
// utilization reports.
func (r *Resource) BytesServed() float64 { return r.served }

// ActiveFlows returns the number of flows currently routed through the
// resource.
func (r *Resource) ActiveFlows() int { return len(r.flows) }

// Flow is one in-progress transfer.
type Flow struct {
	id        uint64
	name      string
	class     Class   // class of the first hop, for diagnostics
	demand    float64 // nominal engine rate, bytes/s
	remaining float64 // bytes left
	total     float64
	route     []Hop
	rate      float64 // current allocated rate
	updated   vtime.Time
	started   vtime.Time
	waker     *vtime.Waker
	onDone    func()
	canceled  bool
}

// Name returns the flow's diagnostic name.
func (f *Flow) Name() string { return f.name }

// Class returns the transaction class of the flow's first hop.
func (f *Flow) Class() Class { return f.class }

// Rate returns the currently allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet transferred.
func (f *Flow) Remaining() float64 { return f.remaining }

// Canceled reports whether the flow was torn down by CancelOn before its
// last byte moved (a link-down or node-crash window cut it).
func (f *Flow) Canceled() bool { return f.canceled }

// Engine owns a set of resources and the flows over them.
type Engine struct {
	sim      *vtime.Sim
	nextID   uint64
	flows    []*Flow
	timerGen uint64

	// Metrics, when non-nil, receives flow lifecycle counters and the
	// active-flow gauge (a nil registry records nothing).
	Metrics *obs.Registry
}

// NewEngine creates a fluid engine bound to the simulation clock.
func NewEngine(sim *vtime.Sim) *Engine {
	return &Engine{sim: sim}
}

// NewResource registers a resource with the given capacity in bytes/s.
// adjust may be nil for plain max-min sharing.
func (e *Engine) NewResource(name string, capacity float64, adjust AdjustFunc) *Resource {
	if capacity <= 0 {
		panic("fluid: resource with nonpositive capacity: " + name)
	}
	return &Resource{name: name, capacity: capacity, adjust: adjust}
}

// Spec describes a transfer. Route hops carry their own transaction class;
// the helper Path builds a route where every hop shares Spec.Class.
type Spec struct {
	Name   string
	Class  Class   // default class for Path-built routes; diagnostic otherwise
	Demand float64 // engine's nominal rate, bytes/s; must be > 0
	Bytes  int64   // must be > 0
	Route  []Hop
}

// Path builds a route in which every hop presents class c.
func Path(c Class, rs ...*Resource) []Hop {
	hops := make([]Hop, len(rs))
	for i, r := range rs {
		hops[i] = Hop{R: r, Class: c}
	}
	return hops
}

// Transfer moves Spec.Bytes through the route, blocking the calling process
// until the last byte has been delivered. It returns the elapsed virtual
// time.
//
// Zero-byte transfers complete immediately without touching the allocator.
func (e *Engine) Transfer(p *vtime.Proc, spec Spec) vtime.Duration {
	d, _ := e.TransferOK(p, spec)
	return d
}

// TransferOK is Transfer but additionally reports whether the flow ran to
// completion: ok is false when a fault window cancelled it mid-transfer (see
// CancelOn), in which case the bytes must be considered lost.
func (e *Engine) TransferOK(p *vtime.Proc, spec Spec) (vtime.Duration, bool) {
	if spec.Bytes == 0 {
		return 0, true
	}
	f := e.start(spec)
	f.waker = p.Blocker("flow " + spec.Name)
	f.waker.Wait()
	return vtime.Since(e.sim.Now(), f.started), !f.canceled
}

// Start begins a transfer without blocking; onDone (may be nil) runs in
// scheduler context when the last byte arrives. Most drivers use Transfer;
// Start exists for NIC models that overlap a bus phase with a wire phase
// explicitly.
func (e *Engine) Start(spec Spec, onDone func()) *Flow {
	if spec.Bytes == 0 {
		if onDone != nil {
			e.sim.After(0, onDone)
		}
		return nil
	}
	f := e.start(spec)
	f.onDone = onDone
	return f
}

func (e *Engine) start(spec Spec) *Flow {
	if spec.Bytes < 0 {
		panic("fluid: negative transfer size")
	}
	if spec.Demand <= 0 {
		panic("fluid: transfer with nonpositive demand: " + spec.Name)
	}
	if len(spec.Route) == 0 {
		panic("fluid: transfer with empty route: " + spec.Name)
	}
	e.nextID++
	f := &Flow{
		id:        e.nextID,
		name:      spec.Name,
		class:     spec.Class,
		demand:    spec.Demand,
		remaining: float64(spec.Bytes),
		total:     float64(spec.Bytes),
		route:     spec.Route,
		updated:   e.sim.Now(),
		started:   e.sim.Now(),
	}
	e.integrate()
	e.flows = append(e.flows, f)
	for _, h := range f.route {
		h.R.flows = append(h.R.flows, Presence{Flow: f, Class: h.Class})
	}
	e.Metrics.Add("madgo_flows_started_total", obs.Labels{"class": spec.Class.String()}, 1)
	e.reallocate()
	return f
}

// integrate advances every active flow's progress to the current instant at
// its previously allocated rate.
func (e *Engine) integrate() {
	now := e.sim.Now()
	for _, f := range e.flows {
		dt := vtime.Since(now, f.updated).Seconds()
		if dt > 0 && f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, h := range f.route {
				h.R.served += moved
			}
		}
		f.updated = now
	}
}

// completionEps absorbs float rounding: a flow with fewer than this many
// bytes left is complete.
const completionEps = 1e-3

// reallocate recomputes all rates and schedules the next completion. It must
// run after integrate whenever the flow set changes.
func (e *Engine) reallocate() {
	// Retire completed flows first.
	var done []*Flow
	live := e.flows[:0]
	for _, f := range e.flows {
		if f.remaining <= completionEps {
			done = append(done, f)
		} else {
			live = append(live, f)
		}
	}
	e.flows = live
	for _, f := range done {
		for _, h := range f.route {
			h.R.flows = removeFlow(h.R.flows, f)
		}
	}

	e.computeRates()
	e.scheduleNextCompletion()
	e.Metrics.Set("madgo_active_flows", nil, float64(len(e.flows)))

	// Wake finishers after the new schedule is in place.
	for _, f := range done {
		f.remaining = 0
		f.rate = 0
		e.Metrics.Add("madgo_flows_completed_total", obs.Labels{"class": f.class.String()}, 1)
		e.Metrics.Add("madgo_flow_bytes_total", obs.Labels{"class": f.class.String()}, f.total)
		e.Metrics.ObserveDuration("madgo_flow_seconds", obs.Labels{"class": f.class.String()},
			vtime.Since(e.sim.Now(), f.started))
		if f.waker != nil {
			f.waker.Wake()
			f.waker = nil
		}
		if f.onDone != nil {
			fn := f.onDone
			f.onDone = nil
			fn()
		}
	}
}

func removeFlow(flows []Presence, f *Flow) []Presence {
	for i, g := range flows {
		if g.Flow == f {
			return append(flows[:i], flows[i+1:]...)
		}
	}
	return flows
}

// computeRates runs priority-adjusted max-min (water-filling) over the live
// flows. Deterministic: flows are processed in creation order.
func (e *Engine) computeRates() {
	if len(e.flows) == 0 {
		return
	}
	flows := make([]*Flow, len(e.flows))
	copy(flows, e.flows)
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })

	// Effective demand: nominal demand times the product of arbitration
	// multipliers along the route.
	demand := make(map[*Flow]float64, len(flows))
	for _, f := range flows {
		d := f.demand
		for _, h := range f.route {
			if h.R.adjust != nil {
				m := h.R.adjust(Presence{Flow: f, Class: h.Class}, h.R.flows)
				if m < 0 {
					panic("fluid: negative arbitration multiplier on " + h.R.name)
				}
				d *= m
			}
		}
		demand[f] = d
	}

	capLeft := make(map[*Resource]float64)
	count := make(map[*Resource]int)
	for _, f := range flows {
		for _, h := range f.route {
			if _, seen := capLeft[h.R]; !seen {
				capLeft[h.R] = h.R.capacity
				count[h.R] = 0
			}
			count[h.R]++
		}
	}

	unfrozen := flows
	for len(unfrozen) > 0 {
		// Per-flow limit against the current snapshot: demand or the
		// tightest fair share on the flow's route.
		limits := make([]float64, len(unfrozen))
		lmin := math.Inf(1)
		for i, f := range unfrozen {
			l := demand[f]
			for _, h := range f.route {
				share := capLeft[h.R] / float64(count[h.R])
				if share < l {
					l = share
				}
			}
			limits[i] = l
			if l < lmin {
				lmin = l
			}
		}
		// Freeze every flow bottlenecked at the minimum; apply capacity
		// updates only after the freeze set is fixed.
		var rest []*Flow
		for i, f := range unfrozen {
			if limits[i] <= lmin*(1+1e-12) {
				f.rate = lmin
				for _, h := range f.route {
					capLeft[h.R] -= lmin
					if capLeft[h.R] < 0 {
						capLeft[h.R] = 0
					}
					count[h.R]--
				}
			} else {
				rest = append(rest, f)
			}
		}
		if len(rest) == len(unfrozen) {
			panic("fluid: water-filling made no progress")
		}
		unfrozen = rest
	}
}

// scheduleNextCompletion arms a single timer at the earliest flow
// completion. Any later change to the flow set invalidates it via timerGen.
func (e *Engine) scheduleNextCompletion() {
	e.timerGen++
	if len(e.flows) == 0 {
		return
	}
	eta := vtime.Time(math.MaxInt64)
	for _, f := range e.flows {
		if f.rate <= 0 {
			continue // starved flow; will progress when others finish
		}
		// Ceil to a whole nanosecond so the flow is certainly done when
		// the timer fires.
		d := vtime.Duration(math.Ceil(f.remaining / f.rate * float64(vtime.Second)))
		if t := e.sim.Now().Add(d); t < eta {
			eta = t
		}
	}
	if eta == vtime.Time(math.MaxInt64) {
		panic("fluid: all flows starved — resource capacities misconfigured")
	}
	gen := e.timerGen
	e.sim.At(eta, func() {
		if gen != e.timerGen {
			return
		}
		e.integrate()
		e.reallocate()
	})
}

// ActiveFlows returns the number of in-progress flows (diagnostics).
func (e *Engine) ActiveFlows() int { return len(e.flows) }

// CancelOn tears down every active flow routed through r — the fluid-level
// consequence of a link going down or a host crashing: in-flight transfers
// stop instantly, their waiters wake with the flow marked Canceled, and the
// remaining flows are re-allocated over the freed capacity. It returns the
// number of flows cancelled. Must run in scheduler context (a callback or a
// process), like every engine entry point.
func (e *Engine) CancelOn(r *Resource) int {
	var doomed []*Flow
	for _, f := range e.flows {
		for _, h := range f.route {
			if h.R == r {
				doomed = append(doomed, f)
				break
			}
		}
	}
	if len(doomed) == 0 {
		return 0
	}
	e.integrate()
	dead := make(map[*Flow]bool, len(doomed))
	for _, f := range doomed {
		dead[f] = true
	}
	live := e.flows[:0]
	for _, f := range e.flows {
		if !dead[f] {
			live = append(live, f)
		}
	}
	e.flows = live
	for _, f := range doomed {
		for _, h := range f.route {
			h.R.flows = removeFlow(h.R.flows, f)
		}
		f.canceled = true
		f.rate = 0
	}
	e.computeRates()
	e.scheduleNextCompletion()
	e.Metrics.Set("madgo_active_flows", nil, float64(len(e.flows)))
	e.Metrics.Add("madgo_flows_canceled_total", nil, float64(len(doomed)))
	for _, f := range doomed {
		if f.waker != nil {
			f.waker.Wake()
			f.waker = nil
		}
		if f.onDone != nil {
			fn := f.onDone
			f.onDone = nil
			fn()
		}
	}
	return len(doomed)
}
