package fluid

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"madgo/internal/vtime"
)

const MB = 1e6 // bytes; the paper reports MB/s with decimal megabytes

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowRateIsMinOfDemandAndCapacity(t *testing.T) {
	cases := []struct {
		demand, capacity float64
		bytes            int64
		wantSec          float64
	}{
		{demand: 50 * MB, capacity: 100 * MB, bytes: 50e6, wantSec: 1.0}, // demand-limited
		{demand: 200 * MB, capacity: 40 * MB, bytes: 80e6, wantSec: 2.0}, // capacity-limited
	}
	for i, c := range cases {
		s := vtime.New()
		e := NewEngine(s)
		r := e.NewResource("bus", c.capacity, nil)
		var got vtime.Duration
		s.Spawn("xfer", func(p *vtime.Proc) {
			got = e.Transfer(p, Spec{Name: "t", Class: ClassDMA, Demand: c.demand, Bytes: c.bytes, Route: Path(ClassDMA, r)})
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got.Seconds(), c.wantSec, 1e-6) {
			t.Errorf("case %d: duration = %v, want %.3fs", i, got, c.wantSec)
		}
	}
}

func TestZeroByteTransferIsFree(t *testing.T) {
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", MB, nil)
	s.Spawn("xfer", func(p *vtime.Proc) {
		if d := e.Transfer(p, Spec{Name: "none", Demand: MB, Bytes: 0, Route: Path(ClassDMA, r)}); d != 0 {
			t.Errorf("duration = %v, want 0", d)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two identical flows on a 40 MB/s bus each get 20 MB/s.
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", 40*MB, nil)
	var d1, d2 vtime.Duration
	s.Spawn("a", func(p *vtime.Proc) {
		d1 = e.Transfer(p, Spec{Name: "a", Demand: 100 * MB, Bytes: 20e6, Route: Path(ClassDMA, r)})
	})
	s.Spawn("b", func(p *vtime.Proc) {
		d2 = e.Transfer(p, Spec{Name: "b", Demand: 100 * MB, Bytes: 20e6, Route: Path(ClassDMA, r)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Both run concurrently at 20 MB/s: 1 second each.
	if !almostEqual(d1.Seconds(), 1.0, 1e-6) || !almostEqual(d2.Seconds(), 1.0, 1e-6) {
		t.Errorf("durations = %v, %v, want 1s each", d1, d2)
	}
}

func TestMaxMinRespectsDemand(t *testing.T) {
	// A 10 MB/s-demand flow and a greedy flow on a 40 MB/s bus: the
	// greedy one gets the leftover 30 MB/s, not a 20/20 split.
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", 40*MB, nil)
	var slow, fast vtime.Duration
	s.Spawn("slow", func(p *vtime.Proc) {
		slow = e.Transfer(p, Spec{Name: "slow", Demand: 10 * MB, Bytes: 10e6, Route: Path(ClassDMA, r)})
	})
	s.Spawn("fast", func(p *vtime.Proc) {
		fast = e.Transfer(p, Spec{Name: "fast", Demand: 1000 * MB, Bytes: 30e6, Route: Path(ClassDMA, r)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slow.Seconds(), 1.0, 1e-6) {
		t.Errorf("slow = %v, want 1s", slow)
	}
	if !almostEqual(fast.Seconds(), 1.0, 1e-6) {
		t.Errorf("fast = %v, want 1s (30 MB at leftover 30 MB/s)", fast)
	}
}

func TestStaggeredFlowsPiecewiseRates(t *testing.T) {
	// Flow A (60 MB on a 60 MB/s bus) runs alone for 0.5 s (30 MB done),
	// then shares with B for a while, then finishes alone.
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", 60*MB, nil)
	var aDone, bDone vtime.Time
	s.Spawn("a", func(p *vtime.Proc) {
		e.Transfer(p, Spec{Name: "a", Demand: 1000 * MB, Bytes: 60e6, Route: Path(ClassDMA, r)})
		aDone = p.Now()
	})
	s.Spawn("b", func(p *vtime.Proc) {
		p.Sleep(vtime.Duration(0.5 * float64(vtime.Second)))
		e.Transfer(p, Spec{Name: "b", Demand: 1000 * MB, Bytes: 15e6, Route: Path(ClassDMA, r)})
		bDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// From 0.5s both run at 30 MB/s. B needs 15 MB -> done at 1.0s.
	// A: 30 MB by 0.5s, +15 MB by 1.0s, remaining 15 MB alone at 60 MB/s
	// -> done at 1.25s.
	if !almostEqual(vtime.Duration(bDone).Seconds(), 1.0, 1e-6) {
		t.Errorf("b done at %v, want 1s", bDone)
	}
	if !almostEqual(vtime.Duration(aDone).Seconds(), 1.25, 1e-6) {
		t.Errorf("a done at %v, want 1.25s", aDone)
	}
}

func TestMultiResourceRouteBottleneck(t *testing.T) {
	// Route through a fast bus and a slow wire: the wire limits the rate.
	s := vtime.New()
	e := NewEngine(s)
	bus := e.NewResource("bus", 100*MB, nil)
	wire := e.NewResource("wire", 10*MB, nil)
	var d vtime.Duration
	s.Spawn("x", func(p *vtime.Proc) {
		d = e.Transfer(p, Spec{Name: "x", Demand: 1000 * MB, Bytes: 10e6, Route: Path(ClassDMA, bus, wire)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Seconds(), 1.0, 1e-6) {
		t.Errorf("duration = %v, want 1s", d)
	}
}

func TestPIOHalvedUnderDMA(t *testing.T) {
	// The paper's §3.4 PCI arbitration: while a DMA flow is active, PIO
	// demand is halved. Encoded as an Adjust policy.
	pioUnderDMA := func(self Presence, active []Presence) float64 {
		if self.Class != ClassPIO {
			return 1
		}
		for _, g := range active {
			if g.Class == ClassDMA {
				return 0.5
			}
		}
		return 1
	}
	s := vtime.New()
	e := NewEngine(s)
	bus := e.NewResource("pci", 132*MB, pioUnderDMA)
	var pioAlone, pioShared vtime.Duration
	s.Spawn("pio-alone", func(p *vtime.Proc) {
		pioAlone = e.Transfer(p, Spec{Name: "pio1", Class: ClassPIO, Demand: 40 * MB, Bytes: 40e6, Route: Path(ClassPIO, bus)})
	})
	s.Spawn("pio-shared", func(p *vtime.Proc) {
		p.Sleep(2 * vtime.Second)
		// Start a long DMA receive, then a PIO send that fully overlaps it.
		e.Start(Spec{Name: "dma", Class: ClassDMA, Demand: 50 * MB, Bytes: 500e6, Route: Path(ClassDMA, bus)}, nil)
		pioShared = e.Transfer(p, Spec{Name: "pio2", Class: ClassPIO, Demand: 40 * MB, Bytes: 40e6, Route: Path(ClassPIO, bus)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pioAlone.Seconds(), 1.0, 1e-6) {
		t.Errorf("PIO alone = %v, want 1s", pioAlone)
	}
	if !almostEqual(pioShared.Seconds(), 2.0, 1e-6) {
		t.Errorf("PIO under DMA = %v, want 2s (halved)", pioShared)
	}
}

func TestAdjustRestoredWhenDMAEnds(t *testing.T) {
	pioUnderDMA := func(self Presence, active []Presence) float64 {
		if self.Class != ClassPIO {
			return 1
		}
		for _, g := range active {
			if g.Class == ClassDMA {
				return 0.5
			}
		}
		return 1
	}
	s := vtime.New()
	e := NewEngine(s)
	bus := e.NewResource("pci", 132*MB, pioUnderDMA)
	var pio vtime.Duration
	s.Spawn("main", func(p *vtime.Proc) {
		// DMA lasts 1s (50 MB at 50 MB/s). PIO sends 60 MB: 1s at
		// 20 MB/s (halved) = 20 MB, then 1s at full 40 MB/s = 40 MB.
		e.Start(Spec{Name: "dma", Class: ClassDMA, Demand: 50 * MB, Bytes: 50e6, Route: Path(ClassDMA, bus)}, nil)
		pio = e.Transfer(p, Spec{Name: "pio", Class: ClassPIO, Demand: 40 * MB, Bytes: 60e6, Route: Path(ClassPIO, bus)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pio.Seconds(), 2.0, 1e-5) {
		t.Errorf("PIO = %v, want 2s", pio)
	}
}

func TestStartCallback(t *testing.T) {
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", 10*MB, nil)
	var doneAt vtime.Time
	e.Start(Spec{Name: "bg", Class: ClassDMA, Demand: 100 * MB, Bytes: 10e6, Route: Path(ClassDMA, r)}, func() {
		doneAt = s.Now()
	})
	s.Spawn("idle", func(p *vtime.Proc) { p.Sleep(5 * vtime.Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vtime.Duration(doneAt).Seconds(), 1.0, 1e-6) {
		t.Errorf("callback at %v, want 1s", doneAt)
	}
}

func TestBytesServedConservation(t *testing.T) {
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", 25*MB, nil)
	total := int64(0)
	for i := 0; i < 5; i++ {
		n := int64((i + 1) * 1e6)
		total += n
		delay := vtime.Duration(i) * 100 * vtime.Millisecond
		s.Spawn(fmt.Sprintf("x%d", i), func(p *vtime.Proc) {
			p.Sleep(delay)
			e.Transfer(p, Spec{Name: "x", Demand: 100 * MB, Bytes: n, Route: Path(ClassDMA, r)})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.BytesServed(), float64(total), 1.0) {
		t.Errorf("served = %.1f, want %d", r.BytesServed(), total)
	}
	if e.ActiveFlows() != 0 || r.ActiveFlows() != 0 {
		t.Errorf("flows not drained: engine=%d resource=%d", e.ActiveFlows(), r.ActiveFlows())
	}
}

func TestPanicsOnBadSpecs(t *testing.T) {
	s := vtime.New()
	e := NewEngine(s)
	r := e.NewResource("bus", MB, nil)
	for name, spec := range map[string]Spec{
		"no demand": {Name: "x", Bytes: 1, Route: Path(ClassDMA, r)},
		"no route":  {Name: "x", Demand: 1, Bytes: 1},
		"negative":  {Name: "x", Demand: 1, Bytes: -1, Route: Path(ClassDMA, r)},
	} {
		spec := spec
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			e.Start(spec, nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero-capacity resource")
			}
		}()
		e.NewResource("bad", 0, nil)
	}()
}

// Property: for any set of flows on one resource, total bytes served equals
// the sum of flow sizes, and every flow finishes no earlier than its
// exclusive-use lower bound.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint32, startGaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 10 {
			sizes = sizes[:10]
		}
		s := vtime.New()
		e := NewEngine(s)
		const cap = 50 * MB
		r := e.NewResource("bus", cap, nil)
		var total float64
		ok := true
		for i, raw := range sizes {
			n := int64(raw%8_000_000) + 1
			total += float64(n)
			var gap vtime.Duration
			if i < len(startGaps) {
				gap = vtime.Duration(startGaps[i]) * vtime.Microsecond
			}
			s.Spawn(fmt.Sprintf("f%d", i), func(p *vtime.Proc) {
				p.Sleep(gap)
				d := e.Transfer(p, Spec{Name: "f", Demand: 100 * MB, Bytes: n, Route: Path(ClassDMA, r)})
				if d.Seconds() < float64(n)/cap-1e-6 {
					ok = false // finished faster than the physical limit
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok && almostEqual(r.BytesServed(), total, 1.0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if ClassDMA.String() != "DMA" || ClassPIO.String() != "PIO" || ClassWire.String() != "wire" || ClassCPU.String() != "CPU" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Error("unknown class formatting wrong")
	}
}
