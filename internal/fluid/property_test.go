package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"madgo/internal/vtime"
)

// These properties pin down the allocator the whole hardware model rests
// on: at every instant, (1) no resource runs above its capacity, (2) no
// flow runs above its demand, and (3) the allocation is max-min fair — a
// flow below its demand is bottlenecked at some resource where no
// concurrent flow holds a strictly higher rate.

type probeCfg struct {
	resources []float64 // capacities, MB/s
	flows     []probeFlow
}

type probeFlow struct {
	demand float64
	bytes  int64
	route  []int // resource indices
	start  vtime.Duration
}

// buildProbe constructs a deterministic random configuration from a seed.
func buildProbe(seed uint64) probeCfg {
	rng := seed*2654435761 + 12345
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	cfg := probeCfg{}
	nres := 2 + int(next(3))
	for i := 0; i < nres; i++ {
		cfg.resources = append(cfg.resources, float64(20+next(100))*1e6)
	}
	nflows := 2 + int(next(5))
	for i := 0; i < nflows; i++ {
		var route []int
		for r := 0; r < nres; r++ {
			if next(2) == 0 {
				route = append(route, r)
			}
		}
		if len(route) == 0 {
			route = []int{int(next(uint64(nres)))}
		}
		cfg.flows = append(cfg.flows, probeFlow{
			demand: float64(5+next(80)) * 1e6,
			bytes:  int64(1+next(40)) * 1e5,
			route:  route,
			start:  vtime.Duration(next(20)) * vtime.Millisecond,
		})
	}
	return cfg
}

func TestMaxMinInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := buildProbe(seed)
		s := vtime.New()
		e := NewEngine(s)
		res := make([]*Resource, len(cfg.resources))
		for i, c := range cfg.resources {
			res[i] = e.NewResource("r", c, nil)
		}
		flows := make([]*Flow, len(cfg.flows))
		for i, pf := range cfg.flows {
			i, pf := i, pf
			route := make([]Hop, len(pf.route))
			for k, ri := range pf.route {
				route[k] = Hop{R: res[ri], Class: ClassDMA}
			}
			s.After(pf.start, func() {
				flows[i] = e.Start(Spec{Name: "f", Class: ClassDMA, Demand: pf.demand, Bytes: pf.bytes, Route: route}, nil)
			})
		}
		// Probe the invariants at fixed instants while flows overlap.
		ok := true
		probe := func() {
			// (1) capacity
			for ri, r := range res {
				sum := 0.0
				for _, pres := range r.flows {
					sum += pres.Flow.Rate()
				}
				if sum > cfg.resources[ri]*(1+1e-9) {
					ok = false
				}
			}
			// (2) demand and (3) max-min bottleneck
			for fi, f := range flows {
				if f == nil || f.Remaining() <= 0 {
					continue
				}
				if f.Rate() > cfg.flows[fi].demand*(1+1e-9) {
					ok = false
				}
				if f.Rate() >= cfg.flows[fi].demand*(1-1e-9) {
					continue // demand-limited: fine
				}
				// Must be bottlenecked somewhere: a resource on its
				// route that is (nearly) saturated and where f's
				// rate is maximal among its flows.
				bottleneck := false
				for _, h := range f.route {
					sum := 0.0
					maxRate := 0.0
					for _, pres := range h.R.flows {
						sum += pres.Flow.Rate()
						maxRate = math.Max(maxRate, pres.Flow.Rate())
					}
					if sum >= h.R.capacity*(1-1e-6) && f.Rate() >= maxRate*(1-1e-9) {
						bottleneck = true
						break
					}
				}
				if !bottleneck {
					ok = false
				}
			}
		}
		for ms := 1; ms <= 40; ms += 4 {
			s.After(vtime.Duration(ms)*vtime.Millisecond, probe)
		}
		if err := s.Run(); err != nil {
			return false
		}
		// (4) conservation: every flow completed in full.
		for _, f := range flows {
			if f != nil && f.Remaining() != 0 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
