package fwd

// Cross-message aggregation: the second half of the eager small-message
// path. The compact framing (eager.go) cuts a small forwarded message from
// three wire transfers to one, but a stream of tiny messages still pays the
// fixed ~40 µs per-transfer software overhead of §3.4.1 once per message.
// The coalescer below amortises it: consecutive sub-MTU messages from one
// node toward one destination are packed into a single MTU-sized aggregate
// frame (codec in package agg) and flushed as ONE wire transfer — one
// per-transfer overhead, one flow-control credit — when the frame fills, an
// idle deadline expires, or ordering demands it.
//
// Transport composition at flush time:
//
//   - streaming, single rail: the frame travels as one compact KindAgg
//     transfer ([GTM header | frame] with two block descriptors), relayed
//     obliviously by gateways (gateway.go, forwardEager);
//   - streaming, ≥2 rails and a frame past the stripe threshold: the frame
//     is striped like any large message, with stripeFlagAgg telling the
//     receiver to decode the reassembled bytes as a frame;
//   - reliable mode: the frame is one reliable message under a single ARQ
//     sequence (relFlagAgg), so retransmission and failover cover every
//     coalesced sub-message at once.
//
// Ordering: one coalescer serialises all its traffic under a mutex, frames
// flush in build order, and a message too large to coalesce first flushes
// whatever is pending ("ordering" flush) before taking the bypass path —
// per-sender delivery order toward one destination is preserved across
// small/large mixes. At the sink, decoded sub-messages are delivered FIFO
// before any new arrival is pulled.

import (
	"fmt"

	"madgo/internal/agg"
	"madgo/internal/flight"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// DefaultAggIdleFlush is the coalescer's idle deadline when
// Config.AggIdleFlush is zero: a partially filled frame is flushed once no
// new sub-message has joined it for this long. Chosen near the §3.4.1
// per-transfer overhead — waiting longer than one transfer's fixed cost to
// save a fraction of it is a bad trade.
const DefaultAggIdleFlush = 50 * vtime.Microsecond

// aggKey identifies one coalescer: the sending node and the final
// destination (aggregation batches per destination, not per next hop, so
// the sink can decode without re-grouping).
type aggKey struct {
	node, dst string
}

// aggSub is one decoded sub-message queued for delivery at its sink.
type aggSub struct {
	from mad.Rank
	id   uint64
	sub  agg.Sub
}

// AggStats aggregates the coalescing layer's counters. All fields are zero
// when Config.Aggregation is off.
type AggStats struct {
	// SubMessages is how many messages were coalesced into frames.
	SubMessages int64
	// Frames is how many aggregate frames were flushed, and FrameBytes
	// their summed wire size.
	Frames     int64
	FrameBytes int64
	// SizeFlushes, IdleFlushes and OrderingFlushes split Frames by
	// trigger: the frame limit, the idle deadline, or a large message
	// that had to drain the queue before bypassing it.
	SizeFlushes     int64
	IdleFlushes     int64
	OrderingFlushes int64
	// BypassMessages is how many messages were too large for an empty
	// frame and took the ordinary (eager/GTM/stripe/reliable) path.
	BypassMessages int64
}

// aggState is the virtual channel's aggregation bookkeeping: the lazily
// created coalescers and the per-sink delivery queues.
type aggState struct {
	co    map[aggKey]*aggCoalescer
	order []aggKey
	rx    map[mad.Rank][]aggSub
	stats AggStats
}

func newAggState() *aggState {
	return &aggState{
		co: make(map[aggKey]*aggCoalescer),
		rx: make(map[mad.Rank][]aggSub),
	}
}

// AggStats returns the aggregation counters (zero-valued when aggregation
// is off).
func (vc *VirtualChannel) AggStats() AggStats {
	if vc.aggst == nil {
		return AggStats{}
	}
	return vc.aggst.stats
}

// aggCoalescer batches one (node, destination) pair's small messages. All
// state is guarded by mu; flushes run to wire completion under the lock, so
// frames leave in build order and concurrent senders on the same node
// serialise here — which is exactly the ordering contract.
type aggCoalescer struct {
	vc   *VirtualChannel
	node *mad.Node
	dst  string
	mtu  int
	// limit is the frame byte budget: the path MTU minus the GTM header
	// the compact transfer prepends.
	limit int
	idle  vtime.Duration

	mu   vsync.Mutex
	kick *vsync.Sem
	b    *agg.Builder
	// enq and ids remember each queued sub-message's enqueue instant and
	// message ID for the agg-wait attribution at flush time.
	enq        []vtime.Time
	ids        []uint64
	lastAppend vtime.Time
	scratch    []agg.Block

	nodeLabels obs.Labels
	fr         *flight.Ring
}

// aggCoalescer returns (creating, with its idle-flush daemon) the coalescer
// of one (node, dst) pair.
func (vc *VirtualChannel) aggCoalescer(node *mad.Node, dst string) *aggCoalescer {
	st := vc.aggst
	key := aggKey{node: node.Name, dst: dst}
	if c, ok := st.co[key]; ok {
		return c
	}
	mtu := vc.PathMTU(node.Name, dst)
	idle := vc.cfg.AggIdleFlush
	if idle <= 0 {
		idle = DefaultAggIdleFlush
	}
	c := &aggCoalescer{
		vc: vc, node: node, dst: dst,
		mtu: mtu, limit: mtu - gtmHeaderLen, idle: idle,
		kick: vsync.NewSem(0),
		// The builder reserves the GTM header bytes in front of the frame,
		// so a flush detaches a ready-made wire payload with no extra copy.
		b:          agg.NewBuilderPrefix(gtmHeaderLen, mtu),
		nodeLabels: obs.Labels{"node": node.Name},
		fr:         vc.flightRing(node.Name),
	}
	st.co[key] = c
	st.order = append(st.order, key)
	vc.sess.Platform.Sim.SpawnDaemon(fmt.Sprintf("agg-flush:%s>%s", node.Name, dst),
		c.run)
	return c
}

// run is the idle-flush daemon: woken when the builder goes non-empty, it
// sleeps until the idle deadline measured from the LAST append (each new
// sub-message pushes the deadline out) and flushes whatever is still
// queued. A frame emptied meanwhile (size or ordering flush) just parks the
// daemon again.
func (c *aggCoalescer) run(p *vtime.Proc) {
	for {
		c.kick.Acquire(p, 1)
		for {
			c.mu.Lock(p)
			if c.b.Count() == 0 {
				c.mu.Unlock(p)
				break
			}
			elapsed := p.Now().Sub(c.lastAppend)
			if elapsed >= c.idle {
				c.flush(p, "idle")
				c.mu.Unlock(p)
				break
			}
			c.mu.Unlock(p)
			p.Sleep(c.idle - elapsed)
		}
	}
}

// add coalesces one finished message (or, when it cannot fit even an empty
// frame, drains the queue and bypasses). Called from aggPacking.end on the
// application's process.
func (c *aggCoalescer) add(p *vtime.Proc, id uint64, blocks []relBlock, total int) {
	vc := c.vc
	st := vc.aggst
	c.mu.Lock(p)
	defer c.mu.Unlock(p)
	need := agg.SubSizeParts(len(blocks), total)
	if agg.HeaderLen+need > c.limit {
		// Larger than any frame this path can carry: preserve order by
		// flushing what is queued, then send it the ordinary way.
		c.flush(p, "ordering")
		st.stats.BypassMessages++
		vc.metrics().Add("madgo_agg_bypass_total", c.nodeLabels, 1)
		c.sendBypass(p, id, blocks)
		return
	}
	if c.b.Len()+need > c.limit {
		c.flush(p, "size")
	}
	// Packing into the frame is the one real copy of the coalesced path.
	c.node.Host.Memcpy(p, total)
	c.scratch = c.scratch[:0]
	for _, b := range blocks {
		c.scratch = append(c.scratch, agg.Block{Data: b.data, S: uint8(b.s), R: uint8(b.r)})
	}
	c.b.Add(id, c.scratch)
	c.enq = append(c.enq, p.Now())
	c.ids = append(c.ids, id)
	c.lastAppend = p.Now()
	st.stats.SubMessages++
	vc.metrics().Add("madgo_agg_submessages_total", c.nodeLabels, 1)
	if c.b.Count() == 1 {
		c.kick.Release(1)
	}
}

// flush seals the pending frame and puts it on the wire as ONE logical
// transfer (single compact transfer, striped frame, or one reliable
// message). Must be called with mu held; a no-op on an empty builder.
func (c *aggCoalescer) flush(p *vtime.Proc, reason string) {
	if c.b.Count() == 0 {
		return
	}
	vc := c.vc
	st := vc.aggst
	m := vc.metrics()
	frameID := vc.nextMsgID()
	frame := c.b.Finish()
	flen := len(frame)
	count := c.b.Count()
	now := p.Now()
	for i, t := range c.enq {
		wait := vtime.Since(now, t)
		c.fr.Record(flight.KindAggWait, now, wait, c.ids[i], 0, "")
		m.ObserveDuration("madgo_agg_queue_wait_seconds", c.nodeLabels, wait)
	}
	c.fr.Record(flight.KindAggFlush, now, 0, frameID, flen, reason)
	m.Add("madgo_agg_frames_total", obs.Labels{"node": c.node.Name, "reason": reason}, 1)
	m.Add("madgo_agg_frame_bytes_total", c.nodeLabels, float64(flen))
	st.stats.Frames++
	st.stats.FrameBytes += int64(flen)
	switch reason {
	case "size":
		st.stats.SizeFlushes++
	case "idle":
		st.stats.IdleFlushes++
	case "ordering":
		st.stats.OrderingFlushes++
	}
	m.RecordHop(frameID, now, c.node.Name, "agg",
		fmt.Sprintf("flush(%s) -> %s: %d msgs, %d bytes", reason, c.dst, count, flen), flen)

	// Detach the sealed buffer — [reserved GTM header | frame] — and hand
	// ownership to whichever transport carries it. The wire layer references
	// payloads instead of copying them and the ARQ may retransmit, so the
	// buffer must stay untouched after the flush; detaching (rather than
	// copying out of a reused buffer) is what keeps the flush itself
	// copy-free: the add()-time pack into the frame remains the coalesced
	// path's only copy.
	wire := c.b.Detach()
	switch {
	case vc.cfg.Reliable:
		// One ARQ sequence covers the whole frame. The send blocks this
		// process (and, via mu, later adders) until the end-to-end ack —
		// the same contract a reliable EndPacking has.
		vc.rel[c.node.Name].sendMessageFlags(p, c.dst,
			[]relBlock{{data: wire[gtmHeaderLen:], s: mad.SendCheaper, r: mad.ReceiveCheaper}},
			frameID, relFlagAgg)
	case len(vc.stripeRoutes(c.node.Name, c.dst)) >= 2 && int64(flen) >= vc.cfg.stripeThreshold():
		// A frame past the stripe threshold rides the rails. Both end()
		// fallback conditions are excluded here, so the agg flag cannot
		// be lost to a plain replay.
		sx := &stripePacking{
			vc: vc, node: c.node, dst: c.dst, id: frameID, aggFlag: true,
			blocks: []relBlock{{data: wire[gtmHeaderLen:], s: mad.SendCheaper, r: mad.ReceiveCheaper}},
			total:  int64(flen),
		}
		sx.end(p)
	default:
		// Single compact transfer toward the first gateway: one credit,
		// one per-transfer overhead, however many messages inside. The
		// routing header is written into the reserved prefix in place.
		r, ok := vc.tbl.Lookup(c.node.Name, c.dst)
		if !ok {
			panic(fmt.Sprintf("fwd: no route %s -> %s", c.node.Name, c.dst))
		}
		hop := r[0]
		spc, ok := vc.special[hop.Network]
		if !ok {
			panic("fwd: route crosses network without a special channel: " + hop.Network)
		}
		link := spc.Link(c.node.Rank, vc.NodeRank(hop.To))
		putGTMHeader(wire, c.node.Rank, vc.NodeRank(c.dst), c.mtu, frameID)
		link.Acquire(p)
		vc.flowSpend(p, hop.To, c.node.Name, frameID)
		link.Send(p, mad.TxMeta{
			SOM:  true,
			EOM:  true,
			Kind: mad.KindAgg,
			Blocks: []mad.BlockDesc{gtmHeaderDesc[0],
				{Size: flen, S: mad.SendCheaper, R: mad.ReceiveCheaper}},
		}, wire)
		link.Release(p)
		m.RecordHop(frameID, p.Now(), c.node.Name, "hop",
			fmt.Sprintf("%s -> %s via %s (aggregate)", c.node.Name, link.Dst.Name, hop.Network), flen)
	}
	c.enq = c.enq[:0]
	c.ids = c.ids[:0]
}

// sendBypass replays one too-large message through the ordinary non-agg
// path with its original pack modes (the receiver mirrors them against the
// wire descriptors). Called with mu held, right after the ordering flush.
func (c *aggCoalescer) sendBypass(p *vtime.Proc, id uint64, blocks []relBlock) {
	vc := c.vc
	if vc.cfg.Reliable {
		vc.rel[c.node.Name].sendMessage(p, c.dst, blocks, id)
		return
	}
	if len(vc.stripeRoutes(c.node.Name, c.dst)) >= 2 {
		sx := &stripePacking{vc: vc, node: c.node, dst: c.dst, id: id, blocks: blocks}
		for _, b := range blocks {
			sx.total += int64(len(b.data))
		}
		sx.end(p) // stripes, or falls back below the threshold
		return
	}
	r, ok := vc.tbl.Lookup(c.node.Name, c.dst)
	if !ok {
		panic(fmt.Sprintf("fwd: no route %s -> %s", c.node.Name, c.dst))
	}
	hop := r[0]
	spc, ok := vc.special[hop.Network]
	if !ok {
		panic("fwd: route crosses network without a special channel: " + hop.Network)
	}
	link := spc.Link(c.node.Rank, vc.NodeRank(hop.To))
	if vc.cfg.Eager {
		g := newEagerPacking(p, vc, c.node, link, vc.NodeRank(c.dst), id)
		for _, b := range blocks {
			g.pack(p, b.data, b.s, b.r)
		}
		g.end(p)
		return
	}
	g := newGTMPacking(p, vc, c.node, link, vc.NodeRank(c.dst), id)
	for _, b := range blocks {
		g.pack(p, b.data, b.s, b.r)
	}
	g.end(p)
}

// aggPacking is the sender side of an aggregated message: blocks are
// buffered (like the reliable and stripe packings) and handed to the
// coalescer at EndPacking. A message that outgrows the frame budget on a
// streaming single-rail path spills to the ordinary streaming packing
// mid-Pack, so large messages keep their fragment-level pipelining through
// the gateways.
type aggPacking struct {
	vc     *VirtualChannel
	node   *mad.Node
	dst    string
	id     uint64
	blocks []relBlock
	total  int

	// spilled streaming path (exactly one is non-nil after a spill)
	eager *eagerPacking
	gtm   *gtmPacking
}

func newAggPacking(vc *VirtualChannel, node *mad.Node, dst string) *aggPacking {
	return &aggPacking{vc: vc, node: node, dst: dst, id: vc.nextMsgID()}
}

func (ax *aggPacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	if ax.eager != nil {
		ax.eager.pack(p, data, s, r)
		return
	}
	if ax.gtm != nil {
		ax.gtm.pack(p, data, s, r)
		return
	}
	host := ax.node.Host
	p.Sleep(host.CPU.PackCost)
	if s == mad.SendSafer {
		host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
	}
	ax.blocks = append(ax.blocks, relBlock{data: data, s: s, r: r})
	ax.total += len(data)
	vc := ax.vc
	if !vc.cfg.Reliable && len(vc.stripeRoutes(ax.node.Name, ax.dst)) < 2 &&
		agg.HeaderLen+agg.SubSizeParts(len(ax.blocks), ax.total) > vc.PathMTU(ax.node.Name, ax.dst)-gtmHeaderLen {
		ax.spill(p)
	}
}

// spill switches a message that outgrew the frame budget onto the ordinary
// streaming path: any frame already queued flushes first (ordering), then
// the buffered blocks replay and subsequent packs stream directly. Only
// reached on single-rail streaming routes — reliable and striped sends
// buffer until EndPacking anyway, so they bypass in add() instead.
func (ax *aggPacking) spill(p *vtime.Proc) {
	vc := ax.vc
	c := vc.aggCoalescer(ax.node, ax.dst)
	c.mu.Lock(p)
	c.flush(p, "ordering")
	vc.aggst.stats.BypassMessages++
	vc.metrics().Add("madgo_agg_bypass_total", c.nodeLabels, 1)
	c.mu.Unlock(p)
	r, ok := vc.tbl.Lookup(ax.node.Name, ax.dst)
	if !ok {
		panic(fmt.Sprintf("fwd: no route %s -> %s", ax.node.Name, ax.dst))
	}
	hop := r[0]
	spc, ok := vc.special[hop.Network]
	if !ok {
		panic("fwd: route crosses network without a special channel: " + hop.Network)
	}
	link := spc.Link(ax.node.Rank, vc.NodeRank(hop.To))
	vc.metrics().RecordHop(ax.id, p.Now(), ax.node.Name, "pack",
		fmt.Sprintf("agg spill -> %s via %s (outgrew frame budget)", ax.dst, hop.Network), ax.total)
	blocks := ax.blocks
	ax.blocks = nil
	if vc.cfg.Eager {
		ax.eager = newEagerPacking(p, vc, ax.node, link, vc.NodeRank(ax.dst), ax.id)
		for _, b := range blocks {
			ax.eager.pack(p, b.data, b.s, b.r)
		}
		return
	}
	ax.gtm = newGTMPacking(p, vc, ax.node, link, vc.NodeRank(ax.dst), ax.id)
	for _, b := range blocks {
		ax.gtm.pack(p, b.data, b.s, b.r)
	}
}

func (ax *aggPacking) end(p *vtime.Proc) {
	if ax.eager != nil {
		ax.eager.end(p)
		return
	}
	if ax.gtm != nil {
		ax.gtm.end(p)
		return
	}
	ax.vc.aggCoalescer(ax.node, ax.dst).add(p, ax.id, ax.blocks, ax.total)
}

// aggEnqueueFrame decodes one arrived aggregate frame and queues its
// sub-messages, in frame order, for delivery at the sink node. The frame
// was built by this process group's own coalescer, so malformation is a
// protocol error, not an input error (MustReader).
func (vc *VirtualChannel) aggEnqueueFrame(rank, from mad.Rank, frame []byte) {
	rd := agg.MustReader(frame)
	st := vc.aggst
	for {
		sub, ok := rd.Next()
		if !ok {
			break
		}
		st.rx[rank] = append(st.rx[rank], aggSub{from: from, id: sub.ID, sub: sub})
	}
}

// aggPop removes and returns the sink's oldest pending sub-message.
func (vc *VirtualChannel) aggPop(rank mad.Rank) (aggSub, bool) {
	st := vc.aggst
	if st == nil || len(st.rx[rank]) == 0 {
		return aggSub{}, false
	}
	as := st.rx[rank][0]
	st.rx[rank] = st.rx[rank][1:]
	return as, true
}

// openAggFrame receives one announced compact aggregate transfer (KindAgg,
// single-rail streaming flush) and queues its sub-messages.
func (vc *VirtualChannel) openAggFrame(p *vtime.Proc, node *mad.Node, a *mad.Arrival) {
	link := a.Link
	link.AcquireRecv(p)
	meta, slot := link.Recv(p)
	if !meta.SOM || !meta.EOM || meta.Kind != mad.KindAgg {
		panic("fwd: aggregate unpacking of a message without a compact frame")
	}
	if len(meta.Blocks) != 2 || meta.Blocks[0].Size != gtmHeaderLen {
		panic("fwd: protocol error: malformed aggregate transfer at " + node.Name)
	}
	src, dst, _, _, frame, ok := decodeGTMCompact(slot)
	if !ok {
		panic("fwd: malformed aggregate header delivered to " + node.Name)
	}
	if dst != node.Rank {
		panic(fmt.Sprintf("fwd: misrouted aggregate: %s received a frame for rank %d", node.Name, dst))
	}
	if meta.Blocks[1].Size != len(frame) {
		panic("fwd: protocol error: aggregate frame length disagrees with its descriptor")
	}
	link.ReleaseRecv(p)
	vc.aggEnqueueFrame(node.Rank, src, frame)
}

// aggDecodeStriped reassembles a striped aggregate frame (stripeFlagAgg)
// and queues its sub-messages.
func (vc *VirtualChannel) aggDecodeStriped(p *vtime.Proc, node *mad.Node, g *stripeGroup) {
	su := newStripeUnpacking(vc, node, g)
	frame := make([]byte, g.total)
	su.unpack(p, frame, mad.SendCheaper, mad.ReceiveCheaper)
	su.end(p)
	vc.aggEnqueueFrame(node.Rank, su.from(), frame)
}

// aggDecodeReliable reconstructs an aggregate frame from a reassembled
// reliable message (relFlagAgg) and queues its sub-messages.
func (vc *VirtualChannel) aggDecodeReliable(p *vtime.Proc, node *mad.Node, m *relMsg) {
	mtu, desc, ok := decodeRelDesc(m.frags[0])
	if !ok || len(desc) != 1 {
		panic("fwd: reliable aggregate frame with a malformed descriptor on " + node.Name)
	}
	frame := make([]byte, desc[0].Size)
	node.Host.Memcpy(p, len(frame))
	off := 0
	mad.ForEachFragment(len(frame), mtu, func(_, n int) {
		frag := m.frags[uint32(1+off/mtu)]
		if len(frag) != n {
			panic("fwd: reliable aggregate fragment size mismatch")
		}
		copy(frame[off:off+n], frag)
		off += n
	})
	if off != len(frame) {
		panic("fwd: reliable aggregate frame not fully reassembled")
	}
	vc.aggEnqueueFrame(node.Rank, m.origin, frame)
}

// aggUnpacking delivers one coalesced sub-message: its block structure and
// modes were carried inside the frame, so unpack mirrors them like every
// other module and copies the payload out of the (already received) frame.
type aggUnpacking struct {
	vc   *VirtualChannel
	node *mad.Node
	from mad.Rank
	id   uint64
	sub  agg.Sub
	next int
	off  int
}

func newAggUnpacking(vc *VirtualChannel, node *mad.Node, as aggSub) *aggUnpacking {
	return &aggUnpacking{vc: vc, node: node, from: as.from, id: as.id, sub: as.sub}
}

func (u *aggUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	if u.next >= u.sub.NumBlocks() {
		panic("fwd: unpack past the end of an aggregated message")
	}
	size, sm, rm := u.sub.Block(u.next)
	u.next++
	if sm != uint8(s) || rm != uint8(r) || size != len(dst) {
		panic(fmt.Sprintf("fwd: protocol error: packed {%dB s=%d r=%d}, unpacked {%dB %v %v}",
			size, sm, rm, len(dst), s, r))
	}
	if size > 0 {
		u.node.Host.Memcpy(p, size)
		copy(dst, u.sub.Payload()[u.off:u.off+size])
	}
	u.off += size
}

func (u *aggUnpacking) end(p *vtime.Proc) {
	if u.next != u.sub.NumBlocks() {
		panic("fwd: aggregated message ended with unconsumed blocks")
	}
	u.vc.metrics().RecordHop(u.id, p.Now(), u.node.Name, "deliver",
		"decoalesced at "+u.node.Name, u.off)
}
