package fwd_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"madgo/internal/agg"
	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// Tests for the eager small-message path (§3.4.1): the compact framing that
// piggybacks the self-description header and the terminator on data
// fragments, and the cross-message coalescer that packs several sub-MTU
// messages into one aggregate frame. The flow-control ledger doubles as the
// wire-transfer meter here — the credit model charges exactly what crosses
// the wire, so CreditsSpent counts transfers toward the first gateway.

// TestEagerSmallMessageIsOneTransfer pins the headline elision: a sub-MTU
// message that costs the seed framing three wire transfers (header, one
// fragment, terminator) crosses in exactly one compact transfer under
// Config.Eager.
func TestEagerSmallMessageIsOneTransfer(t *testing.T) {
	send := func(eager bool) (int64, *world) {
		cfg := fwd.DefaultConfig()
		cfg.Eager = eager
		cfg.FlowControl = true
		w := build(t, paperHS(t), cfg)
		blocks := []block{{pattern(64, 3), mad.SendCheaper, mad.ReceiveCheaper}}
		got, fwded, _ := sendRecv(t, w, "a0", "b1", blocks)
		if !fwded || !bytes.Equal(got[0], blocks[0].data) {
			t.Fatal("small message corrupted or not forwarded")
		}
		return w.vc.FlowStats().CreditsSpent, w
	}
	seedSpent, _ := send(false)
	if seedSpent != 3 {
		t.Fatalf("seed framing spent %d transfers for one small message, want 3 (header, fragment, terminator)", seedSpent)
	}
	eagerSpent, w := send(true)
	if eagerSpent != 1 {
		t.Fatalf("eager framing spent %d transfers for one small message, want 1", eagerSpent)
	}
	if fs := w.vc.FlowStats(); fs.CreditsGranted != fs.CreditsSpent {
		t.Errorf("credit ledger unbalanced under eager framing: %+v", fs)
	}
}

// TestEagerEmptyMessage pins the degenerate case: an empty message travels
// as a single header-only compact transfer (the seed framing needs two —
// header and terminator).
func TestEagerEmptyMessage(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Eager = true
	cfg.FlowControl = true
	w := build(t, paperHS(t), cfg)
	blocks := []block{{[]byte{}, mad.SendCheaper, mad.ReceiveCheaper}}
	_, fwded, from := sendRecv(t, w, "a0", "b1", blocks)
	if !fwded {
		t.Error("empty message not marked forwarded")
	}
	if from != w.vc.NodeRank("a0") {
		t.Errorf("From() = %d, want rank of a0", from)
	}
	if spent := w.vc.FlowStats().CreditsSpent; spent != 1 {
		t.Errorf("empty eager message spent %d transfers, want 1", spent)
	}
}

// TestEagerLargeMessageDeliversIntact checks the eager path degrades
// gracefully past the inline limit: a multi-fragment message still arrives
// byte-identical, with the header riding the first fragment and the
// terminator flag the last — F transfers instead of the seed's F+2.
func TestEagerLargeMessageDeliversIntact(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Eager = true
	cfg.FlowControl = true
	w := build(t, paperHS(t), cfg)
	const n = 100_000
	blocks := []block{{pattern(n, 7), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !fwded || !bytes.Equal(got[0], blocks[0].data) {
		t.Fatal("large eager message corrupted or not forwarded")
	}
	// The first fragment (a full MTU) is past the inline bound, so the
	// header travels alone; the terminator is still elided: F+1 transfers
	// against the seed's F+2.
	frags := int64((n + cfg.MTU - 1) / cfg.MTU)
	if spent := w.vc.FlowStats().CreditsSpent; spent != frags+1 {
		t.Errorf("large eager message spent %d transfers, want %d (header + one per fragment)", spent, frags+1)
	}
}

// TestAggCoalescesBurst drives a back-to-back burst of small messages from
// one sender and checks they cross as aggregate frames — one credit per
// frame, not per message — and still arrive in order, byte-identical.
func TestAggCoalescesBurst(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Eager = true
	cfg.Aggregation = true
	cfg.FlowControl = true
	w := build(t, paperHS(t), cfg)
	const msgs = 12
	const size = 128
	w.sim.Spawn("burst-send", func(p *vtime.Proc) {
		for m := 0; m < msgs; m++ {
			px := w.vc.At("a0").BeginPacking(p, "b1")
			px.Pack(p, pattern(size, byte(m+1)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	w.sim.Spawn("burst-recv", func(p *vtime.Proc) {
		for m := 0; m < msgs; m++ {
			u := w.vc.At("b1").BeginUnpacking(p)
			got := make([]byte, size)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(size, byte(m+1))) {
				t.Errorf("message %d out of order or corrupted", m)
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.vc.AggStats()
	if st.SubMessages != msgs {
		t.Errorf("coalesced %d sub-messages, want %d", st.SubMessages, msgs)
	}
	if st.Frames == 0 || st.Frames >= msgs {
		t.Errorf("burst crossed in %d frames for %d messages; aggregation did not batch", st.Frames, msgs)
	}
	if st.BypassMessages != 0 {
		t.Errorf("%d small messages bypassed the coalescer", st.BypassMessages)
	}
	// One credit per aggregate frame, however many sub-messages it packs.
	if spent := w.vc.FlowStats().CreditsSpent; spent != st.Frames {
		t.Errorf("burst spent %d transfers for %d frames; want one credit per frame", spent, st.Frames)
	}
}

// TestAggLargeMessageBypasses checks a message too large for an empty frame
// takes the ordinary path and is counted as a bypass, not silently dropped
// or fragmented through the coalescer.
func TestAggLargeMessageBypasses(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Aggregation = true
	w := build(t, paperHS(t), cfg)
	blocks := []block{{pattern(100_000, 5), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !fwded || !bytes.Equal(got[0], blocks[0].data) {
		t.Fatal("bypassed large message corrupted or not forwarded")
	}
	st := w.vc.AggStats()
	if st.BypassMessages != 1 {
		t.Errorf("BypassMessages = %d, want 1", st.BypassMessages)
	}
	if st.SubMessages != 0 {
		t.Errorf("large message was coalesced (%d sub-messages)", st.SubMessages)
	}
}

// TestAggOrderingAcrossBypass is the ordering contract between the two
// paths: small, large, small from one sender must arrive in exactly that
// order, which forces the coalescer to drain its pending frame before the
// large message overtakes it.
func TestAggOrderingAcrossBypass(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Eager = true
	cfg.Aggregation = true
	w := build(t, paperHS(t), cfg)
	sizes := []int{200, 100_000, 300}
	w.sim.Spawn("mix-send", func(p *vtime.Proc) {
		for m, n := range sizes {
			px := w.vc.At("a0").BeginPacking(p, "b1")
			px.Pack(p, pattern(n, byte(m+1)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	w.sim.Spawn("mix-recv", func(p *vtime.Proc) {
		for m, n := range sizes {
			u := w.vc.At("b1").BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(n, byte(m+1))) {
				t.Errorf("message %d (%d bytes) out of order or corrupted", m, n)
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.vc.AggStats()
	if st.OrderingFlushes == 0 {
		t.Error("large message overtook the pending frame: no ordering flush recorded")
	}
	if st.BypassMessages != 1 || st.SubMessages != 2 {
		t.Errorf("stats %+v, want 2 coalesced and 1 bypassed", st)
	}
}

// TestAggIdleFlushDeadline pins the latency bound: a lone small message is
// flushed by the idle deadline, not held for a frame that will never fill.
func TestAggIdleFlushDeadline(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Aggregation = true
	cfg.AggIdleFlush = 500 * vtime.Microsecond
	w := build(t, paperHS(t), cfg)
	blocks := []block{{pattern(64, 9), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Fatal("idle-flushed message corrupted")
	}
	st := w.vc.AggStats()
	if st.IdleFlushes != 1 {
		t.Errorf("IdleFlushes = %d, want 1", st.IdleFlushes)
	}
	if now := vtime.Duration(w.sim.Now()); now < cfg.AggIdleFlush {
		t.Errorf("flush fired at %v, before the %v idle deadline", now, cfg.AggIdleFlush)
	}
}

// TestAggReliableBurst composes aggregation with the reliable engine: the
// whole frame is one ARQ sequence, and a large message interleaved into the
// burst keeps its place in the sender's order.
func TestAggReliableBurst(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Reliable = true
	cfg.Aggregation = true
	w := build(t, paperHS(t), cfg)
	sizes := []int{100, 250, 60_000, 90, 400}
	w.sim.Spawn("rel-send", func(p *vtime.Proc) {
		for m, n := range sizes {
			px := w.vc.At("a0").BeginPacking(p, "b1")
			px.Pack(p, pattern(n, byte(m+1)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	w.sim.Spawn("rel-recv", func(p *vtime.Proc) {
		for m, n := range sizes {
			u := w.vc.At("b1").BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(n, byte(m+1))) {
				t.Errorf("reliable message %d (%d bytes) out of order or corrupted", m, n)
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.vc.AggStats()
	if st.SubMessages != 4 || st.BypassMessages != 1 {
		t.Errorf("stats %+v, want 4 coalesced and 1 bypassed", st)
	}
}

// TestAggStripedFrame checks a frame that clears the striping threshold is
// carried by the multi-rail path and still decoalesces at the sink: the two
// subsystems compose instead of the aggregate flag being lost on a rail.
func TestAggStripedFrame(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.StripeK = 2
	cfg.StripeThreshold = 4 * 1024
	cfg.Aggregation = true
	tp := railsTopo([]string{"sci", "myrinet", "myrinet", "sci"}, []bool{true, true})
	w := buildQuietFaulty(tp, nil, cfg)
	const msgs = 8
	const size = 1400
	w.sim.Spawn("stripe-send", func(p *vtime.Proc) {
		for m := 0; m < msgs; m++ {
			px := w.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, pattern(size, byte(m+1)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	w.sim.Spawn("stripe-recv", func(p *vtime.Proc) {
		for m := 0; m < msgs; m++ {
			u := w.vc.At("b").BeginUnpacking(p)
			got := make([]byte, size)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(size, byte(m+1))) {
				t.Errorf("striped sub-message %d out of order or corrupted", m)
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.vc.AggStats()
	if st.SubMessages != msgs {
		t.Errorf("coalesced %d sub-messages, want %d", st.SubMessages, msgs)
	}
	if w.vc.StripeStats().Messages == 0 {
		t.Error("aggregate frame above the stripe threshold was not striped")
	}
}

// TestAggDeliveryProperty is the composition property: for random mixes of
// small and large messages from one or two senders, across plain, reliable
// and striped transports, with aggregation, eager framing and flow control
// independently on or off, every message arrives byte-identical and in its
// sender's order, small messages coalesce exactly when aggregation is on,
// and the credit ledger balances at quiescence.
func TestAggDeliveryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		next := xorshift(seed)
		striped := next(2) == 0
		reliable := next(2) == 0
		aggOn := next(2) == 0
		eager := next(2) == 0
		flow := next(2) == 0

		cfg := fwd.DefaultConfig()
		cfg.Reliable = reliable
		cfg.Eager = eager
		cfg.Aggregation = aggOn
		if flow {
			cfg.FlowControl = true
			cfg.CreditWindow = 4 + int(next(12))
		}
		var tp *topo.Topology
		var senders []string
		var dst string
		if striped {
			cfg.StripeK = 2
			cfg.StripeThreshold = 8 * 1024
			tp = railsTopo([]string{"sci", "myrinet", "myrinet", "sci"}, []bool{true, true})
			senders, dst = []string{"a"}, "b"
		} else {
			tp = paperHS(t)
			senders, dst = []string{"a0", "a1"}, "b1"
		}
		w := buildQuietFaulty(tp, nil, cfg)

		// The coalescer admits a message while its lone sub-message entry
		// fits an empty frame: header + entry overhead + payload under the
		// path MTU minus the GTM header.
		limit := cfg.MTU - 20
		type planned struct {
			sizes []int
			seeds []byte
		}
		plan := make(map[string]*planned, len(senders))
		total, smalls, larges := 0, 0, 0
		for si, name := range senders {
			pl := &planned{}
			m := 1 + int(next(8))
			for mi := 0; mi < m; mi++ {
				size := 1 + int(next(2048))
				if next(4) == 0 {
					size = 40_000 + int(next(80_000)) // never fits an empty frame
				}
				if agg.HeaderLen+agg.SubSizeParts(1, size) <= limit {
					smalls++
				} else {
					larges++
				}
				pl.sizes = append(pl.sizes, size)
				pl.seeds = append(pl.seeds, byte(si*101+mi*17+1))
			}
			plan[name] = pl
			total += m
		}

		for _, name := range senders {
			name := name
			pl := plan[name]
			w.sim.Spawn("prop-send:"+name, func(p *vtime.Proc) {
				for mi, size := range pl.sizes {
					px := w.vc.At(name).BeginPacking(p, dst)
					px.Pack(p, pattern(size, pl.seeds[mi]), mad.SendCheaper, mad.ReceiveCheaper)
					px.EndPacking(p)
				}
			})
		}
		okDelivery := true
		received := make(map[string]int, len(senders))
		w.sim.Spawn("prop-recv:"+dst, func(p *vtime.Proc) {
			for i := 0; i < total; i++ {
				u := w.vc.At(dst).BeginUnpacking(p)
				from := w.sess.Node(u.From()).Name
				pl := plan[from]
				if pl == nil || received[from] >= len(pl.sizes) {
					okDelivery = false
					t.Logf("seed %d: unexpected message from %s", seed, from)
					return
				}
				mi := received[from]
				got := make([]byte, pl.sizes[mi])
				u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
				u.EndUnpacking(p)
				if !bytes.Equal(got, pattern(pl.sizes[mi], pl.seeds[mi])) {
					okDelivery = false
					t.Logf("seed %d: message %d from %s out of order or corrupted", seed, mi, from)
					return
				}
				received[from]++
			}
		})
		cell := fmt.Sprintf("striped %v rel %v agg %v eager %v flow %v smalls %d larges %d",
			striped, reliable, aggOn, eager, flow, smalls, larges)
		if err := w.sim.Run(); err != nil {
			t.Logf("seed %d (%s): %v", seed, cell, err)
			return false
		}
		if !okDelivery {
			t.Logf("seed %d (%s): delivery check failed", seed, cell)
			return false
		}
		for name, pl := range plan {
			if received[name] != len(pl.sizes) {
				t.Logf("seed %d (%s): sender %s delivered %d of %d", seed, cell, name, received[name], len(pl.sizes))
				return false
			}
		}
		st := w.vc.AggStats()
		if aggOn {
			if int(st.SubMessages) != smalls || int(st.BypassMessages) != larges {
				t.Logf("seed %d (%s): stats %+v, want %d coalesced / %d bypassed",
					seed, cell, st, smalls, larges)
				return false
			}
		} else if st.SubMessages != 0 || st.Frames != 0 {
			t.Logf("seed %d (%s): aggregation off but stats %+v", seed, cell, st)
			return false
		}
		if flow && !reliable {
			if fs := w.vc.FlowStats(); fs.CreditsGranted != fs.CreditsSpent {
				t.Logf("seed %d (%s): credit ledger unbalanced %+v", seed, cell, fs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAggIncastWithManySenders reruns the 64-sender incast wall cell with
// the eager+aggregation path armed: the c1 contention gate must hold with
// coalescing in the loop.
func TestAggIncastWithManySenders(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Eager = true
	cfg.Aggregation = true
	cfg.FlowControl = true
	cfg.CreditWindow = 8
	runWall(t, wallCase{name: "star-64-agg", topo: starTopo, senders: 64, cfg: cfg})
}
