package fwd

import (
	"testing"

	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// White-box tests for the bounded reliable-mode bookkeeping: the per-origin
// duplicate-suppression window and the reassembly cap replace maps that
// previously grew one entry per message for the lifetime of the node.

func TestRelDoneWindowExactWithinCap(t *testing.T) {
	w := &relDoneWindow{set: make(map[uint64]struct{})}
	for id := uint64(1); id <= relDupWindow; id++ {
		w.add(id)
	}
	if w.size() != relDupWindow {
		t.Fatalf("size = %d, want %d", w.size(), relDupWindow)
	}
	if w.hasFloor {
		t.Fatal("floor raised before any eviction")
	}
	for id := uint64(1); id <= relDupWindow; id++ {
		if !w.has(id) {
			t.Fatalf("id %d lost within the window", id)
		}
	}
	if w.has(relDupWindow + 1) {
		t.Fatal("unseen id reported done")
	}
}

func TestRelDoneWindowEvictsToFloor(t *testing.T) {
	w := &relDoneWindow{set: make(map[uint64]struct{})}
	const n = 3*relDupWindow + 17
	for id := uint64(1); id <= n; id++ {
		w.add(id)
	}
	if w.size() != relDupWindow {
		t.Fatalf("size = %d after %d adds, want bounded at %d", w.size(), n, relDupWindow)
	}
	// Every id ever completed must still test as done: recent ones exactly,
	// evicted ones via the floor.
	for id := uint64(1); id <= n; id++ {
		if !w.has(id) {
			t.Fatalf("id %d forgotten after eviction", id)
		}
	}
	if !w.hasFloor || w.floor != n-relDupWindow {
		t.Fatalf("floor = %d (set %v), want %d", w.floor, w.hasFloor, n-relDupWindow)
	}
	if w.has(n + 1) {
		t.Fatal("future id reported done")
	}
	// The ring's dead space must be compacted, not grow forever.
	if len(w.ring) > 2*relDupWindow {
		t.Fatalf("ring grew to %d entries", len(w.ring))
	}
}

func TestRelDoneWindowOutOfOrderWithinCap(t *testing.T) {
	// Completions may land out of order within the window of concurrently
	// in-flight messages; as long as the spread stays below relDupWindow,
	// no unseen id may be swallowed by the floor.
	w := &relDoneWindow{set: make(map[uint64]struct{})}
	for base := uint64(0); base < 2000; base += 8 {
		for _, off := range []uint64{3, 1, 4, 2, 8, 6, 7, 5} { // ids 1.. in bursts of 8, shuffled
			w.add(base + off)
		}
	}
	for id := uint64(1); id <= 2000; id++ {
		if !w.has(id) {
			t.Fatalf("id %d forgotten", id)
		}
	}
	if w.has(2008 + 1) {
		t.Fatal("unseen id reported done")
	}
	w.add(2008 + 2)
	if w.has(2008 + 1) {
		t.Fatal("gap id swallowed by an out-of-order add")
	}
}

func TestRelDoneWindowDuplicateAddIsIdempotent(t *testing.T) {
	w := &relDoneWindow{set: make(map[uint64]struct{})}
	for i := 0; i < 5; i++ {
		w.add(7)
	}
	if w.size() != 1 {
		t.Fatalf("size = %d after duplicate adds, want 1", w.size())
	}
}

func TestEvictOldestRxPicksStalest(t *testing.T) {
	sim := vtime.New()
	sess := mad.NewSession(hw.NewPlatform(sim))
	e := &relEngine{
		vc:   &VirtualChannel{sess: sess},
		node: sess.AddNode("n0"),
		rx:   make(map[relMsgKey]*relMsg),
	}
	for _, k := range []relMsgKey{
		{origin: 3, id: 40}, {origin: 1, id: 12}, {origin: 2, id: 12}, {origin: 0, id: 99},
	} {
		e.rx[k] = &relMsg{origin: k.origin, id: k.id, frags: make(map[uint32][]byte)}
	}
	sim.Spawn("evict", func(p *vtime.Proc) {
		// Smallest id wins, origin breaks the tie — the stalest partial
		// under monotone per-origin IDs.
		e.evictOldestRx(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.rx) != 3 || e.rxEvictions != 1 {
		t.Fatalf("rx size %d evictions %d, want 3 and 1", len(e.rx), e.rxEvictions)
	}
	if _, gone := e.rx[relMsgKey{origin: 1, id: 12}]; gone {
		t.Fatal("victim should be origin 1 id 12, still present")
	}
	if _, kept := e.rx[relMsgKey{origin: 2, id: 12}]; !kept {
		t.Fatal("tie-loser origin 2 id 12 wrongly evicted")
	}
}
