package fwd

import (
	"fmt"

	"madgo/internal/flight"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// The eager fast path (compact GTM framing) attacks the fixed ~40 µs
// per-wire-transfer software overhead measured in §3.4.1: the seed GTM
// framing spends F+2 transfers per message (self-description header, F
// fragments, empty terminator), so a 64-byte message pays three full
// per-transfer overheads. Compact framing elides both bracketing
// transfers:
//
//   - the header piggybacks on the first data fragment (one contiguous
//     [header|fragment] payload, kept split by the transfer's two block
//     descriptors), and
//   - the terminator collapses into the EOM flag of the last fragment's
//     transfer metadata — no empty trailing transfer.
//
// A message that fits one fragment therefore costs ONE wire transfer
// instead of three, and an F-fragment message costs F (or F+1 when the
// first fragment is too large to share a transfer with the header)
// instead of F+2. Gateways relay the compact frames obliviously
// (gateway.go, forwardEager), and flow control charges the true transfer
// count because every Send below is preceded by exactly one flowSpend.

// eagerInlineMax bounds the fragment size that may share a wire transfer
// with the self-description header. Beyond a few KB the extra copy into
// the combined frame costs more than the one transfer it saves, so large
// first fragments fall back to a separate header transfer (still saving
// the terminator).
const eagerInlineMax = 4096

// eagerPacking is the sender side of the compact framing. Unlike
// gtmPacking it cannot emit a fragment the moment Pack stages it: whether
// a fragment is the *last* one — and so carries the EOM flag — is only
// known when the next fragment or EndPacking arrives. It therefore keeps
// exactly one fragment staged and flushes it one step behind.
type eagerPacking struct {
	vc       *VirtualChannel
	node     *mad.Node
	link     *mad.Link
	mtu      int
	id       uint64
	finalDst mad.Rank

	started bool // header already on the wire
	staged  bool // one fragment awaiting its EOM verdict
	sdata   []byte
	sdesc   mad.BlockDesc
}

func newEagerPacking(p *vtime.Proc, vc *VirtualChannel, node *mad.Node, link *mad.Link, finalDst mad.Rank, id uint64) *eagerPacking {
	mtu := vc.PathMTU(node.Name, vc.sess.Node(finalDst).Name)
	g := &eagerPacking{vc: vc, node: node, link: link, mtu: mtu, id: id, finalDst: finalDst}
	// Acquire only — the header is withheld until the first fragment (or
	// EndPacking) so it can piggyback.
	link.Acquire(p)
	return g
}

func (g *eagerPacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	if s == mad.SendSafer {
		// Same contract as the GTM: honouring SendSafer needs an immediate
		// snapshot, charged to the pack stage. All other modes are held by
		// reference until the fragment flushes (at the next Pack or at
		// EndPacking), which SendCheaper/SendLater permit.
		t0 := p.Now()
		g.node.Host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
		g.vc.flightRing(g.node.Name).Record(flight.KindPack, p.Now(), vtime.Since(p.Now(), t0), g.id, len(data), "")
	}
	mad.ForEachFragment(len(data), g.mtu, func(off, n int) {
		g.flushStaged(p, false)
		g.sdata = data[off : off+n]
		g.sdesc = mad.BlockDesc{Size: n, S: s, R: r}
		g.staged = true
	})
}

// flushStaged puts the staged fragment on the wire, as the compact
// [header|fragment] first transfer when possible. last marks the
// fragment as the message terminator (EOM piggybacking).
func (g *eagerPacking) flushStaged(p *vtime.Proc, last bool) {
	if !g.staged {
		return
	}
	g.staged = false
	net := g.link.Channel.Network().Name
	if !g.started {
		g.started = true
		if len(g.sdata) <= eagerInlineMax && gtmHeaderLen+len(g.sdata) <= g.mtu {
			// Header + first fragment in one transfer. Building the
			// contiguous frame copies the fragment once — the price of
			// eliding a whole transfer.
			g.node.Host.Memcpy(p, len(g.sdata))
			g.vc.flowSpend(p, g.link.Dst.Name, g.node.Name, g.id)
			g.link.Send(p, mad.TxMeta{
				SOM:    true,
				EOM:    last,
				Kind:   mad.KindEager,
				Blocks: []mad.BlockDesc{gtmHeaderDesc[0], g.sdesc},
			}, encodeGTMCompact(g.node.Rank, g.finalDst, g.mtu, g.id, g.sdata))
			g.vc.metrics().RecordHop(g.id, p.Now(), g.node.Name, "hop",
				fmt.Sprintf("%s -> %s via %s (compact)", g.node.Name, g.link.Dst.Name, net), len(g.sdata))
			g.sdata = nil
			return
		}
		// First fragment too large to share a transfer: header goes
		// alone, as in the seed framing. The terminator is still elided.
		g.vc.flowSpend(p, g.link.Dst.Name, g.node.Name, g.id)
		g.link.Send(p, mad.TxMeta{SOM: true, Kind: mad.KindEager, Blocks: gtmHeaderDesc},
			encodeGTMHeader(g.node.Rank, g.finalDst, g.mtu, g.id))
	}
	g.vc.flowSpend(p, g.link.Dst.Name, g.node.Name, g.id)
	g.link.Send(p, mad.TxMeta{
		EOM:    last,
		Kind:   mad.KindEager,
		Blocks: []mad.BlockDesc{g.sdesc},
	}, g.sdata)
	g.vc.metrics().RecordHop(g.id, p.Now(), g.node.Name, "hop",
		fmt.Sprintf("%s -> %s via %s", g.node.Name, g.link.Dst.Name, net), len(g.sdata))
	g.sdata = nil
}

func (g *eagerPacking) end(p *vtime.Proc) {
	switch {
	case g.staged:
		// The staged fragment is the last one: it carries the terminator.
		g.flushStaged(p, true)
	case !g.started:
		// Message with no packed blocks at all: the header itself is the
		// terminator — still one single wire transfer.
		g.vc.flowSpend(p, g.link.Dst.Name, g.node.Name, g.id)
		g.link.Send(p, mad.TxMeta{SOM: true, EOM: true, Kind: mad.KindEager, Blocks: gtmHeaderDesc},
			encodeGTMHeader(g.node.Rank, g.finalDst, g.mtu, g.id))
	}
	g.link.Release(p)
}

// eagerUnpacking is the receiver side of the compact framing, used when
// the arrival note says KindEager. The first transfer is self-describing
// by shape: two blocks mean the first fragment rode along with the header
// and is parked until the application asks for it; one block means a bare
// header (large first fragment, or an empty message when EOM is set).
type eagerUnpacking struct {
	vc   *VirtualChannel
	node *mad.Node
	link *mad.Link
	mtu  int
	from mad.Rank
	id   uint64
	got  int

	pending    []byte // piggybacked first fragment, not yet unpacked
	pdesc      mad.BlockDesc
	hasPending bool
	eomSeen    bool
}

func newEagerUnpacking(p *vtime.Proc, vc *VirtualChannel, node *mad.Node, a *mad.Arrival) *eagerUnpacking {
	link := a.Link
	link.AcquireRecv(p)
	meta, slot := link.Recv(p)
	if !meta.SOM || meta.Kind != mad.KindEager {
		panic("fwd: eager unpacking of a message without a compact header")
	}
	if len(meta.Blocks) < 1 || len(meta.Blocks) > 2 || meta.Blocks[0].Size != gtmHeaderLen {
		panic("fwd: protocol error: malformed compact first transfer at " + node.Name)
	}
	src, dst, mtu, id, frag, ok := decodeGTMCompact(slot)
	if !ok {
		panic("fwd: malformed compact header delivered to " + node.Name)
	}
	if dst != node.Rank {
		panic(fmt.Sprintf("fwd: misrouted message: %s received a compact message for rank %d", node.Name, dst))
	}
	g := &eagerUnpacking{vc: vc, node: node, link: link, mtu: mtu, from: src, id: id, eomSeen: meta.EOM}
	if len(meta.Blocks) == 2 {
		if meta.Blocks[1].Size != len(frag) {
			panic("fwd: protocol error: compact fragment length disagrees with its descriptor")
		}
		g.pending = frag
		g.pdesc = meta.Blocks[1]
		g.hasPending = true
	} else if len(frag) != 0 {
		panic("fwd: protocol error: header-only compact transfer with trailing bytes")
	}
	return g
}

func (g *eagerUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	mad.ForEachFragment(len(dst), g.mtu, func(off, n int) {
		if g.hasPending {
			d := g.pdesc
			if d.S != s || d.R != r || d.Size != n {
				panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, n, s, r))
			}
			// The piggybacked fragment landed glued to the header, so
			// handing it to the application is one real copy.
			g.node.Host.Memcpy(p, n)
			copy(dst[off:off+n], g.pending)
			g.pending = nil
			g.hasPending = false
			g.got += n
			return
		}
		if g.eomSeen {
			panic("fwd: protocol error: blocks expected after the compact terminator")
		}
		meta, got := g.link.RecvInto(p, dst[off:off+n])
		if len(meta.Blocks) != 1 {
			panic("fwd: protocol error: compact packet without exactly one block")
		}
		d := meta.Blocks[0]
		if d.S != s || d.R != r || d.Size != n || got != n {
			panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, n, s, r))
		}
		g.eomSeen = meta.EOM
		g.got += got
	})
}

func (g *eagerUnpacking) end(p *vtime.Proc) {
	if g.hasPending {
		panic("fwd: protocol error: compact message ended with an unconsumed fragment")
	}
	if !g.eomSeen {
		panic("fwd: protocol error: compact message ended before its terminator")
	}
	g.link.ReleaseRecv(p)
	g.vc.metrics().RecordHop(g.id, p.Now(), g.node.Name, "deliver",
		"reassembled at "+g.node.Name, g.got)
}
