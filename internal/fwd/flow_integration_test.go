package fwd_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// Integration tests for credit-based gateway flow control and the
// many-senders contention wall (the paper's conclusion names "a
// sophisticated bandwidth control mechanism [to] regulate the incoming
// communication flow on gateways" as the open problem; these pin down the
// reconstruction's answer to it).

// starTopo is the incast fixture: n senders on one edge network funnel
// through a single gateway onto the core network where the sink lives.
func starTopo(t *testing.T, n int) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder().Network("edge", "sci").Network("core", "myrinet")
	for i := 0; i < n; i++ {
		b.Node(fmt.Sprintf("s%d", i), "edge")
	}
	b.Node("gw", "edge", "core").Node("sink", "core")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// gwChainTopo routes every sender through two gateways in sequence, so
// credits must propagate backpressure across a gateway chain.
func gwChainTopo(t *testing.T, n int) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder().
		Network("edge", "sci").Network("mid", "myrinet").Network("core", "sbp")
	for i := 0; i < n; i++ {
		b.Node(fmt.Sprintf("s%d", i), "edge")
	}
	b.Node("gw1", "edge", "mid").Node("gw2", "mid", "core").Node("sink", "core")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// dualRailTopo gives every sender two link-disjoint routes to the sink
// (via gwA and gwB), so striping engages and its rails spend credits too.
func dualRailTopo(t *testing.T, n int) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder().
		Network("eA", "sci").Network("eB", "myrinet").Network("core", "sbp")
	for i := 0; i < n; i++ {
		b.Node(fmt.Sprintf("s%d", i), "eA", "eB")
	}
	b.Node("gwA", "eA", "core").Node("gwB", "eB", "core").Node("sink", "core")
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// wallCase is one cell of the many-senders conformance wall.
type wallCase struct {
	name    string
	topo    func(*testing.T, int) *topo.Topology
	senders int
	cfg     fwd.Config
}

// runWall drives every sender's messages through the sink concurrently and
// checks byte-identical delivery, bounded virtual time, and bounded gateway
// pool allocation. Message sizes are drawn per sender from a seeded rand so
// elephants and mice contend.
func runWall(t *testing.T, c wallCase) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(c.senders)*7919 + 13))
	tp := c.topo(t, c.senders)
	w := build(t, tp, c.cfg)
	const msgsPerSender = 2
	type expect struct {
		sizes []int
		seed  byte
	}
	want := make(map[string]*expect, c.senders)
	for i := 0; i < c.senders; i++ {
		name := fmt.Sprintf("s%d", i)
		ex := &expect{seed: byte(i + 1)}
		for m := 0; m < msgsPerSender; m++ {
			size := 64 + rng.Intn(1024)
			if i%5 == 0 {
				size = 24*1024 + rng.Intn(48*1024) // elephants: multi-fragment
			}
			ex.sizes = append(ex.sizes, size)
		}
		want[name] = ex
		w.sim.Spawn("wall-send:"+name, func(p *vtime.Proc) {
			for _, size := range want[name].sizes {
				px := w.vc.At(name).BeginPacking(p, "sink")
				px.Pack(p, pattern(size, want[name].seed), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			}
		})
	}
	received := make(map[string]int, c.senders)
	w.sim.Spawn("wall-recv:sink", func(p *vtime.Proc) {
		for i := 0; i < c.senders*msgsPerSender; i++ {
			u := w.vc.At("sink").BeginUnpacking(p)
			from := w.sess.Node(u.From()).Name
			ex := want[from]
			if ex == nil {
				t.Errorf("message from unexpected node %s", from)
				return
			}
			size := ex.sizes[received[from]]
			got := make([]byte, size)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(size, ex.seed)) {
				t.Errorf("payload from %s (message %d, %d bytes) corrupted", from, received[from], size)
			}
			received[from]++
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatalf("run: %v", err) // a DeadlockError here is the wall's core failure
	}
	for name, ex := range want {
		if received[name] != len(ex.sizes) {
			t.Errorf("sender %s: %d of %d messages delivered", name, received[name], len(ex.sizes))
		}
	}
	if now := w.sim.Now(); vtime.Duration(now) > 60*vtime.Second {
		t.Errorf("virtual completion time %v unreasonably large", now)
	}
	// Steady-state relays must reuse the ring's staging buffers: pool
	// misses (allocations) stay at warmup level, not one per message.
	for _, name := range w.vc.Gateways() {
		if g, ok := w.vc.GatewayOK(name); ok {
			if ps := g.PoolStats(); ps.Misses > 64 {
				t.Errorf("gateway %s allocated %d staging buffers for %d messages",
					name, ps.Misses, c.senders*msgsPerSender)
			}
		}
	}
	if c.cfg.FlowControl {
		fs := w.vc.FlowStats()
		if c.cfg.Reliable {
			// Reliable mode has no credit layer (the ARQ window already
			// regulates each hop); its flow control is the fair relay
			// scheduler, which must have served rounds.
			if fs.SchedRounds == 0 {
				t.Error("flow control armed but fair scheduler served no rounds")
			}
			return
		}
		if fs.CreditsSpent == 0 {
			t.Error("flow control armed but no credits spent")
		}
		if fs.CreditsGranted != fs.CreditsSpent {
			t.Errorf("credit ledger unbalanced at quiescence: granted %d, spent %d",
				fs.CreditsGranted, fs.CreditsSpent)
		}
		for _, a := range w.vc.FlowAccounts() {
			if a.Granted != a.Spent {
				t.Errorf("account (%s <- %s) unbalanced: granted %d, spent %d",
					a.Gateway, a.Sender, a.Granted, a.Spent)
			}
		}
	}
}

// TestManySendersContentionWall is the conformance wall: sender counts from
// 2 to 64 across incast, gateway-chain and dual-rail topologies, in
// streaming, reliable and striped modes, each with flow control off and on.
// Every cell must deliver byte-identically without deadlock.
func TestManySendersContentionWall(t *testing.T) {
	flowOn := func(cfg fwd.Config) fwd.Config {
		cfg.FlowControl = true
		cfg.CreditWindow = 8
		return cfg
	}
	reliable := fwd.DefaultConfig()
	reliable.Reliable = true
	striped := fwd.DefaultConfig()
	striped.StripeK = 2
	striped.StripeThreshold = 16 * 1024
	cases := []wallCase{
		{name: "star-2-plain", topo: starTopo, senders: 2, cfg: fwd.DefaultConfig()},
		{name: "star-9-plain", topo: starTopo, senders: 9, cfg: fwd.DefaultConfig()},
		{name: "star-64-plain", topo: starTopo, senders: 64, cfg: fwd.DefaultConfig()},
		{name: "star-16-reliable", topo: starTopo, senders: 16, cfg: reliable},
		{name: "chain-12-plain", topo: gwChainTopo, senders: 12, cfg: fwd.DefaultConfig()},
		{name: "chain-5-reliable", topo: gwChainTopo, senders: 5, cfg: reliable},
		{name: "dual-8-striped", topo: dualRailTopo, senders: 8, cfg: striped},
	}
	for _, c := range cases {
		base := c
		t.Run(base.name+"/fifo", func(t *testing.T) { runWall(t, base) })
		on := base
		on.cfg = flowOn(base.cfg)
		t.Run(base.name+"/flow", func(t *testing.T) { runWall(t, on) })
	}
}

// TestFlowCreditsPropagateAcrossGatewayChain pins multi-hop credit
// accounting: a relay spending toward the next gateway opens its own
// account, and every account balances at quiescence.
func TestFlowCreditsPropagateAcrossGatewayChain(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.FlowControl = true
	w := build(t, gwChainTopo(t, 1), cfg)
	blocks := []block{{pattern(150_000, 9), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "s0", "sink", blocks)
	if !fwded || !bytes.Equal(got[0], blocks[0].data) {
		t.Fatal("chained message corrupted or not forwarded")
	}
	accounts := w.vc.FlowAccounts()
	byPair := make(map[[2]string]fwd.FlowAccountStats, len(accounts))
	for _, a := range accounts {
		byPair[[2]string{a.Gateway, a.Sender}] = a
	}
	if _, ok := byPair[[2]string{"gw1", "s0"}]; !ok {
		t.Errorf("no credit account for (gw1 <- s0); have %v", accounts)
	}
	relay, ok := byPair[[2]string{"gw2", "gw1"}]
	if !ok {
		t.Fatalf("no credit account for (gw2 <- gw1): backpressure cannot chain; have %v", accounts)
	}
	if relay.Granted != relay.Spent || relay.Spent == 0 {
		t.Errorf("relay account unbalanced: %+v", relay)
	}
}

// TestFlowWindowThrottlesAndStallsAreTyped drives an incast with a tiny
// credit window and checks the backpressure is visible as typed stalls —
// the madgo_flow_* counters — not as drops or deadlock.
func TestFlowWindowThrottlesAndStallsAreTyped(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.FlowControl = true
	cfg.CreditWindow = 2 // far below the fragment count of one elephant
	w := build(t, starTopo(t, 8), cfg)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%d", i)
		w.sim.Spawn("send:"+name, func(p *vtime.Proc) {
			px := w.vc.At(name).BeginPacking(p, "sink")
			px.Pack(p, pattern(200_000, 5), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
	}
	w.sim.Spawn("recv:sink", func(p *vtime.Proc) {
		for i := 0; i < 8; i++ {
			u := w.vc.At("sink").BeginUnpacking(p)
			got := make([]byte, 200_000)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(200_000, 5)) {
				t.Error("payload corrupted under credit throttling")
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	fs := w.vc.FlowStats()
	if fs.Stalls == 0 || fs.StallTime == 0 {
		t.Errorf("window 2 under an 8-way incast must stall senders; stats %+v", fs)
	}
	if fs.CreditsGranted != fs.CreditsSpent {
		t.Errorf("ledger unbalanced: %+v", fs)
	}
	if fs.SchedRounds == 0 {
		t.Errorf("fair scheduler never completed a round; stats %+v", fs)
	}
}

// TestReliableBookkeepingStaysBounded is the memory-growth regression: a
// long stream of reliable messages must not grow the receiver's
// duplicate-suppression or reassembly records without bound.
func TestReliableBookkeepingStaysBounded(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Reliable = true
	w := build(t, starTopo(t, 2), cfg)
	const perSender = 700 // comfortably past the 512-id window
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("s%d", i)
		seed := byte(i + 1)
		w.sim.Spawn("send:"+name, func(p *vtime.Proc) {
			for m := 0; m < perSender; m++ {
				px := w.vc.At(name).BeginPacking(p, "sink")
				px.Pack(p, pattern(64, seed), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			}
		})
	}
	w.sim.Spawn("recv:sink", func(p *vtime.Proc) {
		for i := 0; i < 2*perSender; i++ {
			u := w.vc.At("sink").BeginUnpacking(p)
			got := make([]byte, 64)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	bk := w.vc.RelBookkeeping()
	if bk.RxPartials != 0 {
		t.Errorf("quiesced run left %d partial reassemblies", bk.RxPartials)
	}
	// Two origins, each window-bounded: far below the 1400 messages
	// delivered. The old unbounded map held one entry per message forever.
	if bk.DoneIDs > 2*512 {
		t.Errorf("duplicate-suppression records grew to %d for %d messages",
			bk.DoneIDs, 2*perSender)
	}
	if d := w.vc.DeliveryStats(); d.Retransmits > 0 {
		// Sanity: boundedness must not come from losing packets.
		t.Logf("note: %d retransmits on a fault-free run", d.Retransmits)
	}
}
