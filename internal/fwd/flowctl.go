package fwd

import (
	"madgo/internal/flight"
	"madgo/internal/flow"
	"madgo/internal/obs"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// DefaultCreditWindow is the per-(gateway, sender) credit window when
// Config.FlowControl is on and Config.CreditWindow is zero: how many wire
// transfers one sender may have outstanding toward one gateway. The cost
// model charges exactly what crosses the wire — F+2 transfers per seed GTM
// message (header, fragments, terminator), F or fewer under the eager
// compact framing (header and terminator piggyback on data fragments), and
// a single credit per aggregate frame however many sub-messages it coalesces.
// Wide enough to keep a PipelineDepth-deep ring busy across the grant round
// trip, small enough that 64 senders cannot bury a gateway's mailbox.
const DefaultCreditWindow = 16

// flowKey identifies one credit account: the granting gateway and the
// upstream sender it protects itself from. The sender is a node name, not a
// connection — all of a node's traffic toward one gateway shares the
// account, which is what makes backpressure propagate hop by hop (a relay
// spending toward the next gateway is itself a sender).
type flowKey struct {
	gw, up string
}

// flowAccount is the live state of one credit account. The semaphore holds
// the sender's remaining window; grants release it, spends acquire it, and
// an exhausted window parks the sender in FIFO order — backpressure as a
// typed stall, never loss.
type flowAccount struct {
	key flowKey
	sem *vsync.Sem

	granted   int64
	spent     int64
	stalls    int64
	stallTime vtime.Duration

	seq     uint32
	scratch []byte // grant wire-codec scratch, reused per grant

	spendLabels obs.Labels
	grantLabels obs.Labels
	stallLabels obs.Labels
	fr          *flight.Ring // sender-side flight ring, cached when armed
}

// flowCtl is a virtual channel's credit-based flow controller: the table of
// credit accounts, lazily created in simulation order (deterministic) the
// first time a sender spends toward a gateway.
type flowCtl struct {
	vc     *VirtualChannel
	window int
	acct   map[flowKey]*flowAccount
	order  []flowKey
}

func newFlowCtl(vc *VirtualChannel, window int) *flowCtl {
	if window <= 0 {
		window = DefaultCreditWindow
	}
	return &flowCtl{vc: vc, window: window, acct: make(map[flowKey]*flowAccount)}
}

func (fc *flowCtl) account(gw, up string) *flowAccount {
	key := flowKey{gw: gw, up: up}
	if a, ok := fc.acct[key]; ok {
		return a
	}
	a := &flowAccount{
		key:         key,
		sem:         vsync.NewSem(fc.window),
		scratch:     make([]byte, 0, flow.GrantLen),
		spendLabels: obs.Labels{"node": up, "gateway": gw},
		grantLabels: obs.Labels{"gateway": gw},
		stallLabels: obs.Labels{"node": up},
	}
	fc.acct[key] = a
	fc.order = append(fc.order, key)
	return a
}

// spend consumes one credit of the (gw, up) account before a wire transfer
// toward gw, parking the caller until the gateway's grants replenish the
// window. A wait is the designed backpressure signal: it is recorded as a
// flight queue-wait event at the stalled sender and under the
// madgo_flow_credit_stall metrics, so an incast shows up as typed sender
// stalls instead of mailbox overflows or drops.
func (fc *flowCtl) spend(p *vtime.Proc, gw, up string, msgID uint64) {
	a := fc.account(gw, up)
	m := fc.vc.metrics()
	t0 := p.Now()
	a.sem.Acquire(p, 1)
	a.spent++
	m.Add("madgo_flow_credits_spent_total", a.spendLabels, 1)
	if wait := vtime.Since(p.Now(), t0); wait > 0 {
		a.stalls++
		a.stallTime += wait
		m.Add("madgo_flow_credit_stalls_total", a.stallLabels, 1)
		m.ObserveDuration("madgo_flow_credit_stall_seconds", a.stallLabels, wait)
		if a.fr == nil {
			a.fr = fc.vc.flightRing(up)
		}
		a.fr.Record(flight.KindQueueWait, p.Now(), wait, msgID, 0, "")
	}
}

// grant returns n credits from gw to the upstream sender. The grant goes
// through the wire codec — encoded into the account's scratch buffer and
// decoded back, the piggyback path the reverse traffic would carry — so the
// format is exercised end to end and a grant the codec would reject is a
// hard protocol error rather than a silently widened window.
func (fc *flowCtl) grant(gw, up string, n int) {
	a := fc.account(gw, up)
	a.scratch = flow.AppendGrant(a.scratch[:0], flow.Grant{
		Gateway:  uint32(fc.vc.NodeRank(gw)),
		Upstream: uint32(fc.vc.NodeRank(up)),
		Credits:  uint32(n),
		Seq:      a.seq,
	})
	a.seq++
	g, ok := flow.DecodeGrant(a.scratch)
	if !ok {
		panic("fwd: flow-control grant failed its own codec round trip")
	}
	a.sem.Release(int(g.Credits))
	a.granted += int64(g.Credits)
	fc.vc.metrics().Add("madgo_flow_credits_granted_total", a.grantLabels, float64(g.Credits))
}

// flowSpend spends one credit toward gw when flow control is armed; a no-op
// otherwise.
func (vc *VirtualChannel) flowSpend(p *vtime.Proc, gw, up string, msgID uint64) {
	if vc.flowc != nil {
		vc.flowc.spend(p, gw, up, msgID)
	}
}

// flowGrant returns n credits from gw to up when flow control is armed; a
// no-op otherwise.
func (vc *VirtualChannel) flowGrant(gw, up string, n int) {
	if vc.flowc != nil {
		vc.flowc.grant(gw, up, n)
	}
}

// FlowStats aggregates the flow controller's counters over every credit
// account and gateway scheduler. All fields are zero when
// Config.FlowControl is off.
type FlowStats struct {
	// Accounts is how many (gateway, sender) credit accounts exist.
	Accounts int
	// CreditsGranted and CreditsSpent count wire transfers: spent when a
	// sender consumed window, granted when a gateway returned it.
	CreditsGranted int64
	CreditsSpent   int64
	// Stalls is how many spends had to park on an exhausted window, and
	// StallTime the virtual time senders spent parked — the typed
	// backpressure signal.
	Stalls    int64
	StallTime vtime.Duration
	// SchedRounds is how many full deficit-round-robin passes the gateway
	// schedulers completed.
	SchedRounds int64
	// Backpressure counts reliable-mode relay admissions refused because
	// the fair relay queue was full (the upstream ARQ retransmits — no
	// loss).
	Backpressure int64
}

// FlowAccountStats is the per-account breakdown behind FlowStats, for
// diagnostic panels.
type FlowAccountStats struct {
	Gateway   string
	Sender    string
	Granted   int64
	Spent     int64
	Stalls    int64
	StallTime vtime.Duration
}

// FlowStats returns the flow-control counters, aggregated over every
// credit account and scheduler. Zero-valued when flow control is off.
func (vc *VirtualChannel) FlowStats() FlowStats {
	var s FlowStats
	if vc.flowc == nil {
		return s
	}
	s.Accounts = len(vc.flowc.order)
	for _, key := range vc.flowc.order {
		a := vc.flowc.acct[key]
		s.CreditsGranted += a.granted
		s.CreditsSpent += a.spent
		s.Stalls += a.stalls
		s.StallTime += a.stallTime
	}
	for _, g := range vc.gates {
		for _, sc := range g.scheds {
			s.SchedRounds += sc.drr.Rounds()
		}
	}
	for _, name := range vc.relOrder {
		if e := vc.rel[name]; e != nil {
			s.SchedRounds += e.relayRounds()
			s.Backpressure += e.flowBackpressure
		}
	}
	return s
}

// FlowAccounts returns the per-account flow-control counters in account
// creation order. Empty when flow control is off.
func (vc *VirtualChannel) FlowAccounts() []FlowAccountStats {
	if vc.flowc == nil {
		return nil
	}
	out := make([]FlowAccountStats, 0, len(vc.flowc.order))
	for _, key := range vc.flowc.order {
		a := vc.flowc.acct[key]
		out = append(out, FlowAccountStats{
			Gateway: key.gw, Sender: key.up,
			Granted: a.granted, Spent: a.spent,
			Stalls: a.stalls, StallTime: a.stallTime,
		})
	}
	return out
}
