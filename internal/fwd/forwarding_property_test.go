package fwd_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// lineTopo builds a linear cluster-of-clusters: one network per protocol,
// node "a" on the first, node "b" on the last, and a dual-NIC gateway
// "g<i>" bridging every adjacent pair. One protocol yields the direct
// (gateway-free) case.
func lineTopo(protocols []string) *topo.Topology {
	b := topo.NewBuilder()
	names := make([]string, len(protocols))
	for i, pr := range protocols {
		names[i] = "n" + string(rune('1'+i))
		b.Network(names[i], pr)
	}
	b.Node("a", names[0])
	for i := 0; i+1 < len(names); i++ {
		b.Node("g"+string(rune('1'+i)), names[i], names[i+1])
	}
	b.Node("b", names[len(names)-1])
	tp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// xorshift is the same tiny generator the zero-copy property test uses, so
// failures reproduce from the printed seed alone.
func xorshift(seed uint64) func(uint64) uint64 {
	rng := seed*6364136223846793005 + 1442695040888963407
	return func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
}

// Property: for random route shapes (direct, single gateway, two-gateway
// chain) × random per-network MTUs × random pipeline depths, a message is
// delivered byte-identically, the Forwarded flag reflects whether a gateway
// relayed it, and the negotiated path MTU is the minimum over the traversed
// networks (§2.3) — never the global minimum of the whole configuration.
func TestForwardingProperty(t *testing.T) {
	protocols := []string{"sci", "myrinet", "sbp"}
	f := func(seed uint64) bool {
		next := xorshift(seed)
		hops := 1 + int(next(3)) // networks on the route
		route := make([]string, hops)
		for i := range route {
			route[i] = protocols[next(uint64(len(protocols)))]
		}
		cfg := fwd.DefaultConfig()
		cfg.PipelineDepth = 1 + int(next(8))
		cfg.PathMTU = true
		// Per-network MTUs stay above the SCI post-gate / BIP rendezvous
		// thresholds (see the zero-copy property test): 8–56 KB.
		cfg.NetMTU = make(map[string]int)
		tp := lineTopo(route)
		wantMTU := 0
		for _, nw := range tp.Networks() {
			m := 8192 * (1 + int(next(7)))
			cfg.NetMTU[nw.Name] = m
			if wantMTU == 0 || m < wantMTU {
				wantMTU = m
			}
		}
		cfg.MTU = 8192 * (1 + int(next(15)))
		n := 1 + int(next(400_000))
		w := buildQuiet(tp, cfg)

		if got := w.vc.PathMTU("a", "b"); got != wantMTU {
			t.Logf("seed %d (route %v): PathMTU(a,b) = %d, want min %d",
				seed, route, got, wantMTU)
			return false
		}

		payload := pattern(n, byte(seed>>8))
		var got []byte
		var fwded bool
		w.sim.Spawn("s", func(p *vtime.Proc) {
			px := w.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r", func(p *vtime.Proc) {
			u := w.vc.At("b").BeginUnpacking(p)
			fwded = u.Forwarded()
			got = make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		})
		if err := w.sim.Run(); err != nil {
			t.Logf("seed %d (route %v, depth %d, n %d): %v",
				seed, route, cfg.PipelineDepth, n, err)
			return false
		}
		if fwded != (hops > 1) {
			t.Logf("seed %d (route %v): Forwarded = %v with %d gateways",
				seed, route, fwded, hops-1)
			return false
		}
		if !bytes.Equal(got, payload) {
			t.Logf("seed %d (route %v, depth %d, mtus %v, n %d): payload corrupted",
				seed, route, cfg.PipelineDepth, cfg.NetMTU, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same delivery guarantee holds in reliable mode — the
// checksummed datagram protocol negotiates the path MTU through its
// fragment-0 descriptor, so random per-network MTUs and depths still
// round-trip byte-identically across a gateway.
func TestForwardingPropertyReliable(t *testing.T) {
	protocols := []string{"sci", "myrinet"}
	f := func(seed uint64) bool {
		next := xorshift(seed)
		hops := 1 + int(next(2))
		route := make([]string, hops)
		for i := range route {
			route[i] = protocols[next(uint64(len(protocols)))]
		}
		cfg := fwd.DefaultConfig()
		cfg.Reliable = true
		cfg.PipelineDepth = 1 + int(next(8))
		cfg.PathMTU = true
		cfg.NetMTU = make(map[string]int)
		tp := lineTopo(route)
		for _, nw := range tp.Networks() {
			cfg.NetMTU[nw.Name] = 8192 * (1 + int(next(7)))
		}
		cfg.MTU = 8192 * (1 + int(next(15)))
		n := 1 + int(next(100_000))
		w := buildQuiet(tp, cfg)

		payload := pattern(n, byte(seed>>16))
		var got []byte
		w.sim.Spawn("s", func(p *vtime.Proc) {
			px := w.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r", func(p *vtime.Proc) {
			u := w.vc.At("b").BeginUnpacking(p)
			got = make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		})
		if err := w.sim.Run(); err != nil {
			t.Logf("seed %d (route %v, depth %d, n %d): %v",
				seed, route, cfg.PipelineDepth, n, err)
			return false
		}
		if !bytes.Equal(got, payload) {
			t.Logf("seed %d (route %v, mtus %v, n %d): payload corrupted",
				seed, route, cfg.NetMTU, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
