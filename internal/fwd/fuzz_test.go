package fwd

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"madgo/internal/mad"
)

// Fuzz targets for the codecs that parse bytes off the wire: the GTM
// message header every gateway decodes before relaying (§2.3), the striping
// rail header that extends it, and the reliable-datagram packet formats. The
// contract under test is the same for all of them: decode never panics,
// rejects malformed input with ok=false, and accepts exactly the encoder's
// output — for every accepted input the re-encoded fields reproduce the
// input byte for byte.

func FuzzGTMHeader(f *testing.F) {
	for _, seed := range gtmHeaderSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, dst, mtu, id, ok := decodeGTMHeader(data)
		if !ok {
			// The only legal grounds for rejection: wrong length or a
			// non-positive MTU field.
			if len(data) == gtmHeaderLen && binary.LittleEndian.Uint32(data[8:]) != 0 {
				t.Fatalf("rejected a well-formed %d-byte header with mtu %d",
					len(data), binary.LittleEndian.Uint32(data[8:]))
			}
			return
		}
		if mtu <= 0 {
			t.Fatalf("accepted header with unusable mtu %d", mtu)
		}
		if re := encodeGTMHeader(src, dst, mtu, id); !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzGTMCompactHeader covers the eager path's compact first transfer: a
// GTM header with the first data fragment glued on. The fragment may be
// empty (header-only compact frame); everything after the header is
// fragment, so any length at or above gtmHeaderLen with a usable MTU must
// be accepted and round-trip exactly.
func FuzzGTMCompactHeader(f *testing.F) {
	for _, seed := range gtmCompactSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, dst, mtu, id, frag, ok := decodeGTMCompact(data)
		if !ok {
			if len(data) >= gtmHeaderLen && binary.LittleEndian.Uint32(data[8:]) != 0 {
				t.Fatalf("rejected a well-formed %d-byte compact frame with mtu %d",
					len(data), binary.LittleEndian.Uint32(data[8:]))
			}
			return
		}
		if mtu <= 0 {
			t.Fatalf("accepted compact frame with unusable mtu %d", mtu)
		}
		if len(frag) != len(data)-gtmHeaderLen {
			t.Fatalf("fragment length %d does not cover the %d bytes after the header",
				len(frag), len(data)-gtmHeaderLen)
		}
		if re := encodeGTMCompact(src, dst, mtu, id, frag); !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

func FuzzStripeHeader(f *testing.F) {
	for _, seed := range stripeHeaderSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, ok := decodeStripeHeader(data)
		if !ok {
			return
		}
		if h.mtu <= 0 || h.nrails < 1 || h.rail >= h.nrails {
			t.Fatalf("accepted header with unusable rail fields: %+v", h)
		}
		// Spans a receiver acts on must stay inside the advertised total —
		// a corrupted span must never index the posted buffer out of
		// bounds.
		if h.spanStart < 0 || h.spanLen < 0 || h.total < 0 ||
			h.spanStart+h.spanLen > h.total {
			t.Fatalf("accepted out-of-range span: %+v", h)
		}
		if re := encodeStripeHeader(h); !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
		// The first 20 bytes stay GTM-compatible so gateways can route a
		// rail without understanding striping.
		src, dst, mtu, id, gok := decodeGTMHeader(data[:gtmHeaderLen])
		if !gok || src != h.src || dst != h.dst || mtu != h.mtu || id != h.id {
			t.Fatalf("stripe header prefix not GTM-compatible: %+v", h)
		}
	})
}

// FuzzMcastHeader covers the multicast destination-set header. Acceptance
// is strict: canonical (strictly increasing) destination lists only, a
// bounded count, a usable MTU and a matching CRC — a corrupted set silently
// mis-replicates, so every accepted input must re-encode byte for byte and
// every single-byte corruption must be rejected.
func FuzzMcastHeader(f *testing.F) {
	for _, seed := range mcastHeaderSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, mtu, id, dests, ok := decodeMcastHeader(data)
		if !ok {
			return
		}
		if mtu <= 0 {
			t.Fatalf("accepted header with unusable mtu %d", mtu)
		}
		if len(dests) < 1 || len(dests) > mcastMaxDests {
			t.Fatalf("accepted header with illegal destination count %d", len(dests))
		}
		for i := 1; i < len(dests); i++ {
			if dests[i] <= dests[i-1] {
				t.Fatalf("accepted non-canonical destination set %v", dests)
			}
		}
		if re := encodeMcastHeader(src, mtu, id, dests); !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
		if len(data) <= 256 {
			for i := range data {
				data[i] ^= 0xFF
				if _, _, _, _, stillOK := decodeMcastHeader(data); stillOK {
					t.Fatalf("header still decodes with byte %d flipped", i)
				}
				data[i] ^= 0xFF
			}
		}
	})
}

func FuzzRelData(f *testing.F) {
	for _, seed := range relDataSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, ok := decodeRelData(data)
		if !ok {
			return
		}
		re := encodeRelData(d.origin, d.final, d.id, d.frag, d.total, d.flags, d.payload, d.acks)
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
		// CRC32 detects every single-byte corruption; a packet that still
		// decodes after a flip would mean the checksum is not actually
		// covering that byte.
		if len(data) <= 256 {
			for i := range data {
				data[i] ^= 0xFF
				if _, stillOK := decodeRelData(data); stillOK {
					t.Fatalf("packet still decodes with byte %d flipped", i)
				}
				data[i] ^= 0xFF
			}
		}
	})
}

func FuzzRelAck(f *testing.F) {
	for _, seed := range relAckSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, ok := decodeRelAcks(data)
		if !ok {
			return
		}
		if len(keys) == 0 || len(keys) > relAckBatchMax {
			t.Fatalf("accepted ack batch of illegal size %d", len(keys))
		}
		re := encodeRelAcks(keys)
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
		for i := range data {
			data[i] ^= 0xFF
			if _, stillOK := decodeRelAcks(data); stillOK {
				t.Fatalf("ack batch still decodes with byte %d flipped", i)
			}
			data[i] ^= 0xFF
		}
	})
}

func FuzzRelDesc(f *testing.F) {
	for _, seed := range relDescSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mtu, desc, ok := decodeRelDesc(data)
		if !ok {
			return
		}
		if mtu <= 0 {
			t.Fatalf("accepted descriptor with unusable mtu %d", mtu)
		}
		if len(data) != 8+6*len(desc) {
			t.Fatalf("accepted descriptor whose length %d does not match %d blocks",
				len(data), len(desc))
		}
		// Re-encode through the real encoder when the block sizes are small
		// enough to materialize; huge advertised sizes are legal in the
		// descriptor (the unpack calls reject them later) but not worth a
		// multi-gigabyte allocation here.
		total := 0
		for _, d := range desc {
			total += d.Size
			if d.Size > 1<<16 || total > 1<<20 {
				return
			}
		}
		blocks := make([]relBlock, len(desc))
		for i, d := range desc {
			blocks[i] = relBlock{data: make([]byte, d.Size), s: d.S, r: d.R}
		}
		if re := encodeRelDesc(mtu, blocks); !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// Seed corpora. The same byte sets feed f.Add at run time and the checked-in
// files under testdata/fuzz (regenerated by TestRegenFuzzCorpus), so `go test
// -fuzz` and a bare `go test` exercise identical seeds.

func gtmHeaderSeeds() [][]byte {
	return [][]byte{
		encodeGTMHeader(0, 1, 4096, 1),
		encodeGTMHeader(3, 7, 1, ^uint64(0)),
		encodeGTMHeader(8, 4, 1<<31-1, 42),
		make([]byte, gtmHeaderLen), // right length, mtu 0 → rejected
		make([]byte, gtmHeaderLen-1),
		make([]byte, gtmHeaderLen+1),
		{},
	}
}

func gtmCompactSeeds() [][]byte {
	return [][]byte{
		encodeGTMCompact(0, 1, 4096, 1, []byte("tiny payload")),
		encodeGTMCompact(3, 7, 1, ^uint64(0), nil), // header-only: empty eager message
		encodeGTMCompact(8, 4, 1<<31-1, 42, make([]byte, eagerInlineMax)),
		make([]byte, gtmHeaderLen), // right length, mtu 0 → rejected
		make([]byte, gtmHeaderLen-1),
		{},
	}
}

func stripeHeaderSeeds() [][]byte {
	return [][]byte{
		encodeStripeHeader(stripeHdr{src: 0, dst: 1, mtu: 4096, id: 1,
			rail: 0, nrails: 2, spanStart: 0, spanLen: 64 << 10, total: 128 << 10}),
		encodeStripeHeader(stripeHdr{src: 3, dst: 7, mtu: 1, id: ^uint64(0),
			rail: 2, nrails: 3, flags: stripeFlagForwarded,
			spanStart: 100, spanLen: 0, total: 100}),
		encodeStripeHeader(stripeHdr{src: 8, dst: 4, mtu: 1 << 20, id: 42,
			rail: 0, nrails: 1, spanStart: 0, spanLen: 9, total: 9}),
		make([]byte, stripeHeaderLen), // mtu 0 → rejected
		make([]byte, stripeHeaderLen-1),
		make([]byte, stripeHeaderLen+1),
		{},
	}
}

func mcastHeaderSeeds() [][]byte {
	return [][]byte{
		encodeMcastHeader(0, 4096, 1, []mad.Rank{1}),
		encodeMcastHeader(3, 1, ^uint64(0), []mad.Rank{0, 2, 7}),
		encodeMcastHeader(8, 1<<31-1, 42, []mad.Rank{1, 2, 3, 4, 5, 6, 7, 8}),
		make([]byte, mcastHeaderLen(1)), // count 0 → rejected
		make([]byte, mcastHeaderLen(1)-1),
		make([]byte, mcastHeaderLen(2)),
		{},
	}
}

func relDataSeeds() [][]byte {
	return [][]byte{
		encodeRelData(0, 1, 1, 0, 3, 0, []byte("payload"), nil),
		encodeRelData(5, 5, 9, e2eFrag, 0, relFlagFlush, nil, nil), // end-to-end ack shape
		encodeRelData(2, 3, 1<<40, 7, 8, 0, make([]byte, 64), nil),
		encodeRelData(1, 2, 4, 0, 1, relFlagFlush, []byte("piggy"), // piggybacked hop acks
			[]relAckKey{{origin: 2, id: 3, frag: 0}, {origin: 2, id: 3, frag: 1}}),
		make([]byte, relOverhead), // zero CRC → rejected
		make([]byte, relOverhead-1),
		{},
	}
}

func relAckSeeds() [][]byte {
	return [][]byte{
		encodeRelAcks([]relAckKey{{origin: 0, id: 1, frag: 0}}),
		encodeRelAcks([]relAckKey{{origin: 9, id: ^uint64(0), frag: e2eFrag}}),
		encodeRelAcks([]relAckKey{
			{origin: 1, id: 7, frag: 0},
			{origin: 1, id: 7, frag: 1},
			{origin: 4, id: 2, frag: 5},
		}),
		make([]byte, 1+relAckEntry+relTrailerLen), // count 0 → rejected
		make([]byte, relAckEntry),
		{},
	}
}

func relDescSeeds() [][]byte {
	return [][]byte{
		encodeRelDesc(4096, nil),
		encodeRelDesc(1, []relBlock{{data: []byte("abc"), s: mad.SendCheaper, r: mad.ReceiveCheaper}}),
		encodeRelDesc(65536, []relBlock{
			{data: make([]byte, 100), s: mad.SendSafer, r: mad.ReceiveExpress},
			{data: nil, s: mad.SendLater, r: mad.ReceiveCheaper},
		}),
		{0, 0, 0, 0, 0, 0, 0, 0}, // mtu 0 → rejected
		make([]byte, 7),
		{},
	}
}

// TestRegenFuzzCorpus rewrites the seed corpora under testdata/fuzz from the
// live encoders. Run with MADGO_REGEN_CORPUS=1 after changing a wire format;
// a bare `go test` only verifies the files are present and well-formed.
func TestRegenFuzzCorpus(t *testing.T) {
	corpora := map[string][][]byte{
		"FuzzGTMHeader":        gtmHeaderSeeds(),
		"FuzzGTMCompactHeader": gtmCompactSeeds(),
		"FuzzStripeHeader":     stripeHeaderSeeds(),
		"FuzzMcastHeader":      mcastHeaderSeeds(),
		"FuzzRelData":          relDataSeeds(),
		"FuzzRelAck":           relAckSeeds(),
		"FuzzRelDesc":          relDescSeeds(),
	}
	regen := os.Getenv("MADGO_REGEN_CORPUS") != ""
	for name, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", name)
		if regen {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for i, seed := range seeds {
			path := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			if regen {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing seed corpus entry (MADGO_REGEN_CORPUS=1 regenerates): %v", err)
			}
			if string(got) != want {
				t.Errorf("%s is stale; regenerate with MADGO_REGEN_CORPUS=1", path)
			}
		}
	}
}
