package fwd_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sbp"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// world is a full cluster-of-clusters fixture.
type world struct {
	sim  *vtime.Sim
	sess *mad.Session
	vc   *fwd.VirtualChannel
}

type netDriver interface {
	mad.Driver
	NewNetwork(pl *hw.Platform, name string) *hw.Network
}

// build assembles a virtual channel over a topology, binding each network's
// protocol to its driver.
func build(t *testing.T, tp *topo.Topology, cfg fwd.Config) *world {
	t.Helper()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		var drv netDriver
		switch nw.Protocol {
		case "sci":
			drv = sisci.New()
		case "myrinet":
			drv = bip.New()
		case "sbp":
			drv = sbp.New()
		default:
			t.Fatalf("no driver for %s", nw.Protocol)
		}
		bindings[nw.Name] = fwd.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, sess: sess, vc: vc}
}

// paperHS is the paper's testbed restricted to the two high-speed networks.
func paperHS(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func pattern(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*11 + seed
	}
	return d
}

type block struct {
	data []byte
	s    mad.SendMode
	r    mad.RecvMode
}

// sendRecv runs one message src→dst on the world's virtual channel and
// returns the received blocks plus the unpacking record.
func sendRecv(t *testing.T, w *world, src, dst string, blocks []block) (got [][]byte, fwded bool, from mad.Rank) {
	t.Helper()
	w.sim.Spawn("app-send:"+src, func(p *vtime.Proc) {
		px := w.vc.At(src).BeginPacking(p, dst)
		for _, b := range blocks {
			px.Pack(p, b.data, b.s, b.r)
		}
		px.EndPacking(p)
	})
	got = make([][]byte, len(blocks))
	w.sim.Spawn("app-recv:"+dst, func(p *vtime.Proc) {
		u := w.vc.At(dst).BeginUnpacking(p)
		fwded = u.Forwarded()
		from = u.From()
		for i, b := range blocks {
			got[i] = make([]byte, len(b.data))
			u.Unpack(p, got[i], b.s, b.r)
		}
		u.EndUnpacking(p)
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	return got, fwded, from
}

func TestForwardedMessageIntact(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	blocks := []block{{pattern(100_000, 1), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, from := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("forwarded payload corrupted")
	}
	if !fwded {
		t.Error("message not marked forwarded")
	}
	if from != w.vc.NodeRank("a0") {
		t.Errorf("From() = %d, want rank of a0", from)
	}
	gw := w.vc.Gateway("gw")
	if gw.Messages() != 1 {
		t.Errorf("gateway relayed %d messages, want 1", gw.Messages())
	}
	if gw.Bytes() != 100_000 {
		t.Errorf("gateway relayed %d bytes, want 100000", gw.Bytes())
	}
	wantPkts := int64((100_000 + 32*1024 - 1) / (32 * 1024))
	if gw.Packets() != wantPkts {
		t.Errorf("gateway relayed %d packets, want %d", gw.Packets(), wantPkts)
	}
}

func TestDirectMessageSkipsGateway(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	blocks := []block{{pattern(5000, 2), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, from := sendRecv(t, w, "a0", "a1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("direct payload corrupted")
	}
	if fwded {
		t.Error("intra-cluster message marked forwarded")
	}
	if from != w.vc.NodeRank("a0") {
		t.Errorf("From() = %d", from)
	}
	if n := w.vc.Gateway("gw").Messages(); n != 0 {
		t.Errorf("gateway relayed %d messages for a direct route", n)
	}
}

func TestMessageToGatewayItselfIsDirect(t *testing.T) {
	// "A gateway node is also a regular node that supports the execution
	// of some application code" (§2.2.2).
	w := build(t, paperHS(t), fwd.DefaultConfig())
	blocks := []block{{pattern(3000, 3), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "b0", "gw", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	if fwded {
		t.Error("message to the gateway itself must not be forwarded")
	}
	if n := w.vc.Gateway("gw").Messages(); n != 0 {
		t.Errorf("gateway engine relayed %d messages", n)
	}
}

func TestMultiBlockForwardedWithFlags(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	blocks := []block{
		{pattern(4, 1), mad.SendCheaper, mad.ReceiveExpress},
		{pattern(90_000, 2), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(100, 3), mad.SendSafer, mad.ReceiveExpress},
		{pattern(0, 4), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(40_000, 5), mad.SendLater, mad.ReceiveCheaper},
	}
	got, _, _ := sendRecv(t, w, "a1", "b0", blocks)
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i].data) {
			t.Errorf("block %d corrupted", i)
		}
	}
}

func TestEmptyForwardedMessage(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	_, fwded, _ := sendRecv(t, w, "a0", "b0", nil)
	if !fwded {
		t.Error("empty message not forwarded")
	}
}

func TestBothDirectionsSimultaneously(t *testing.T) {
	// SCI→Myrinet and Myrinet→SCI at the same time: the two pipelines
	// share the gateway's PCI bus, as in §3.3/§3.4.
	w := build(t, paperHS(t), fwd.DefaultConfig())
	n := 200_000
	check := func(src, dst string, seed byte) {
		data := pattern(n, seed)
		w.sim.Spawn("s:"+src, func(p *vtime.Proc) {
			px := w.vc.At(src).BeginPacking(p, dst)
			px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r:"+dst, func(p *vtime.Proc) {
			u := w.vc.At(dst).BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, data) {
				t.Errorf("%s->%s corrupted", src, dst)
			}
		})
	}
	check("a0", "b0", 1)
	check("b1", "a1", 2)
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n := w.vc.Gateway("gw").Messages(); n != 2 {
		t.Errorf("gateway relayed %d messages, want 2", n)
	}
}

func TestMultiGatewayChain(t *testing.T) {
	tp, err := topo.NewBuilder().
		Network("n1", "sci").Network("n2", "myrinet").Network("n3", "sci").
		Node("a", "n1").
		Node("g1", "n1", "n2").
		Node("g2", "n2", "n3").
		Node("c", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	w := build(t, tp, fwd.DefaultConfig())
	if gws := w.vc.Gateways(); len(gws) != 2 {
		t.Fatalf("gateways = %v, want g1 g2", gws)
	}
	blocks := []block{{pattern(150_000, 7), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, from := sendRecv(t, w, "a", "c", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted across two gateways")
	}
	if !fwded || from != w.vc.NodeRank("a") {
		t.Errorf("fwded=%v from=%d", fwded, from)
	}
	if n := w.vc.Gateway("g1").Messages(); n != 1 {
		t.Errorf("g1 relayed %d", n)
	}
	if n := w.vc.Gateway("g2").Messages(); n != 1 {
		t.Errorf("g2 relayed %d", n)
	}
}

// sbpTopo bridges a network of protocol pIn to one of protocol pOut.
func sbpTopo(t *testing.T, pIn, pOut string) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("n1", pIn).
		Network("n2", pOut).
		Node("a", "n1").Node("g", "n1", "n2").Node("b", "n2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// gatewayCopies runs a 128 KB single-block forwarded message and returns
// the bytes CPU-copied on the gateway host.
func gatewayCopies(t *testing.T, pIn, pOut string, cfg fwd.Config) int64 {
	t.Helper()
	w := build(t, sbpTopo(t, pIn, pOut), cfg)
	blocks := []block{{pattern(128*1024, 9), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Fatalf("%s->%s payload corrupted", pIn, pOut)
	}
	return w.sess.NodeByName("g").Host.BytesCopied()
}

func TestZeroCopyElection(t *testing.T) {
	// The §2.3 case analysis. "≈0" allows the 12-byte header copy.
	const payload = 128 * 1024
	const small = 1024
	cases := []struct {
		in, out  string
		wantCopy bool
	}{
		{"sci", "myrinet", false}, // dynamic -> dynamic
		{"myrinet", "sbp", false}, // dynamic -> static: recv into egress static buffer
		{"sbp", "myrinet", false}, // static -> dynamic: send from ingress slot
		{"sbp", "sbp", true},      // static -> static: the unavoidable copy
	}
	for _, c := range cases {
		t.Run(c.in+"->"+c.out, func(t *testing.T) {
			copied := gatewayCopies(t, c.in, c.out, fwd.DefaultConfig())
			if c.wantCopy && copied < payload {
				t.Errorf("gateway copied %d bytes, expected ≥ payload %d", copied, payload)
			}
			if !c.wantCopy && copied > small {
				t.Errorf("gateway copied %d bytes on a zero-copy path", copied)
			}
		})
	}
}

func TestCopyAlwaysAblationPaysPayload(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.ZeroCopy = false
	copied := gatewayCopies(t, "sci", "myrinet", cfg)
	if copied < 128*1024 {
		t.Errorf("copy-always gateway copied %d bytes, want ≥ payload", copied)
	}
}

func TestForwardingSlowerWithoutPipelining(t *testing.T) {
	oneway := func(depth int) vtime.Duration {
		cfg := fwd.DefaultConfig()
		cfg.PipelineDepth = depth
		w := build(t, paperHS(t), cfg)
		var done vtime.Time
		data := pattern(1<<20, 1)
		w.sim.Spawn("s", func(p *vtime.Proc) {
			px := w.vc.At("a0").BeginPacking(p, "b0")
			px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r", func(p *vtime.Proc) {
			u := w.vc.At("b0").BeginUnpacking(p)
			u.Unpack(p, make([]byte, len(data)), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			done = p.Now()
		})
		if err := w.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return vtime.Duration(done)
	}
	d1, d2 := oneway(1), oneway(2)
	if d2 >= d1 {
		t.Errorf("pipelined (%v) not faster than single-buffer (%v)", d2, d1)
	}
	// With two buffers the receive of packet k+1 overlaps the send of
	// packet k: the improvement should be substantial, not marginal.
	if float64(d2) > 0.8*float64(d1) {
		t.Errorf("pipelining saved only %v -> %v, expected ≥20%%", d1, d2)
	}
}

func TestPipelineOverlapInTrace(t *testing.T) {
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.Tracer = tr
	w := build(t, paperHS(t), cfg)
	data := pattern(512*1024, 4)
	w.sim.Spawn("s", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginPacking(p, "b0")
		px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	w.sim.Spawn("r", func(p *vtime.Proc) {
		u := w.vc.At("b0").BeginUnpacking(p)
		u.Unpack(p, make([]byte, len(data)), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	recvs := tr.ByActor("gw:recv:sci0")
	sends := tr.ByActor("gw:send:myri0")
	if len(recvs) == 0 || len(sends) == 0 {
		t.Fatalf("missing trace spans: %v", tr.Actors())
	}
	// Figure 5: while packet k is sent, packet k+1 is received.
	overlaps := 0
	for _, s := range sends {
		if s.Op != "send" {
			continue
		}
		for _, r := range recvs {
			if r.Op == "recv" && r.T0 < s.T1 && s.T0 < r.T1 {
				overlaps++
				break
			}
		}
	}
	if overlaps < 5 {
		t.Errorf("only %d send spans overlap a receive span; pipeline not overlapping", overlaps)
	}
}

func TestInflowRegulationThrottlesIngress(t *testing.T) {
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.Tracer = tr
	cfg.InflowLimit = 10 * 1e6 // 10 MB/s
	w := build(t, paperHS(t), cfg)
	data := pattern(512*1024, 4)
	var done vtime.Time
	w.sim.Spawn("s", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginPacking(p, "b0")
		px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	w.sim.Spawn("r", func(p *vtime.Proc) {
		u := w.vc.At("b0").BeginUnpacking(p)
		u.Unpack(p, make([]byte, len(data)), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	mbps := float64(len(data)) / vtime.Duration(done).Seconds() / 1e6
	if mbps > 11 {
		t.Errorf("throttled forwarding ran at %.1f MB/s, want ≤ 10 + ε", mbps)
	}
}

func TestConsecutiveForwardedMessages(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	const msgs = 5
	w.sim.Spawn("s", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			px := w.vc.At("a0").BeginPacking(p, "b0")
			px.Pack(p, pattern(20_000+i, byte(i)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	w.sim.Spawn("r", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			u := w.vc.At("b0").BeginUnpacking(p)
			got := make([]byte, 20_000+i)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(20_000+i, byte(i))) {
				t.Errorf("message %d corrupted", i)
			}
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n := w.vc.Gateway("gw").Messages(); n != msgs {
		t.Errorf("relayed %d messages, want %d", n, msgs)
	}
}

func TestManySendersThroughOneGateway(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	pairs := [][2]string{{"a0", "b0"}, {"a1", "b1"}, {"b0", "a1"}, {"b1", "a0"}}
	for i, pr := range pairs {
		src, dst, seed := pr[0], pr[1], byte(i)
		data := pattern(60_000, seed)
		w.sim.Spawn("s:"+src+dst, func(p *vtime.Proc) {
			px := w.vc.At(src).BeginPacking(p, dst)
			px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r:"+src+dst, func(p *vtime.Proc) {
			u := w.vc.At(dst).BeginUnpacking(p)
			got := make([]byte, len(data))
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, data) {
				t.Errorf("%s->%s corrupted", src, dst)
			}
			if u.From() != w.vc.NodeRank(src) {
				t.Errorf("%s->%s From() = %d", src, dst, u.From())
			}
		})
	}
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n := w.vc.Gateway("gw").Messages(); n != int64(len(pairs)) {
		t.Errorf("relayed %d messages, want %d", n, len(pairs))
	}
}

func TestBuildValidation(t *testing.T) {
	tp := paperHS(t)
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	sci := sisci.New()
	myri := bip.New()
	bindings := map[string]fwd.Binding{
		"sci0":  {Net: sci.NewNetwork(pl, "sci0"), Drv: sci},
		"myri0": {Net: myri.NewNetwork(pl, "myri0"), Drv: myri},
	}
	// Missing binding.
	if _, err := fwd.Build(sess, tp, map[string]fwd.Binding{"sci0": bindings["sci0"]}, fwd.DefaultConfig()); err == nil {
		t.Error("expected error for missing binding")
	}
	// Bad configs.
	for _, cfg := range []fwd.Config{
		{MTU: 0, PipelineDepth: 2},
		{MTU: 1024, PipelineDepth: 0},
		{MTU: 1024, PipelineDepth: 2, InflowLimit: -1},
	} {
		if _, err := fwd.Build(sess, tp, bindings, cfg); err == nil {
			t.Errorf("expected error for config %+v", cfg)
		}
	}
	// Valid build, then a second Build on the same session must fail.
	if _, err := fwd.Build(sess, tp, bindings, fwd.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := fwd.Build(sess, tp, bindings, fwd.DefaultConfig()); err == nil {
		t.Error("expected error for non-empty session")
	}
}

// Property: arbitrary block scripts survive forwarding byte-exactly, for
// arbitrary MTUs.
func TestForwardingRoundTripProperty(t *testing.T) {
	f := func(seed int64, mtuRaw uint16, nblocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := fwd.DefaultConfig()
		cfg.MTU = 1024 + int(mtuRaw)%(64*1024)
		w := &world{}
		func() {
			defer func() { recover() }()
			w = buildQuiet(tpHS(), cfg)
		}()
		if w.vc == nil {
			return false
		}
		count := int(nblocks%5) + 1
		blocks := make([]block, count)
		for i := range blocks {
			size := rng.Intn(120_000)
			blocks[i] = block{
				data: pattern(size, byte(rng.Int())),
				s:    []mad.SendMode{mad.SendCheaper, mad.SendSafer, mad.SendLater}[rng.Intn(3)],
				r:    []mad.RecvMode{mad.ReceiveCheaper, mad.ReceiveExpress}[rng.Intn(2)],
			}
		}
		ok := true
		w.sim.Spawn("s", func(p *vtime.Proc) {
			px := w.vc.At("a0").BeginPacking(p, "b1")
			for _, b := range blocks {
				px.Pack(p, b.data, b.s, b.r)
			}
			px.EndPacking(p)
		})
		w.sim.Spawn("r", func(p *vtime.Proc) {
			u := w.vc.At("b1").BeginUnpacking(p)
			for _, b := range blocks {
				got := make([]byte, len(b.data))
				u.Unpack(p, got, b.s, b.r)
				ok = ok && bytes.Equal(got, b.data)
			}
			u.EndUnpacking(p)
		})
		if err := w.sim.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// tpHS and buildQuiet are non-failing variants for property tests.
func tpHS() *topo.Topology {
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").
		Build()
	if err != nil {
		panic(err)
	}
	return tp
}

func buildQuiet(tp *topo.Topology, cfg fwd.Config) *world {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		var drv netDriver
		switch nw.Protocol {
		case "sci":
			drv = sisci.New()
		case "myrinet":
			drv = bip.New()
		case "sbp":
			drv = sbp.New()
		default:
			panic("no driver for " + nw.Protocol)
		}
		bindings[nw.Name] = fwd.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		panic(err)
	}
	return &world{sim: sim, sess: sess, vc: vc}
}

func TestGatewayStatsAccumulate(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	total := 0
	w.sim.Spawn("s", func(p *vtime.Proc) {
		for i := 1; i <= 3; i++ {
			n := i * 10_000
			total += n
			px := w.vc.At("a0").BeginPacking(p, "b0")
			px.Pack(p, pattern(n, byte(i)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	w.sim.Spawn("r", func(p *vtime.Proc) {
		for i := 1; i <= 3; i++ {
			u := w.vc.At("b0").BeginUnpacking(p)
			u.Unpack(p, make([]byte, i*10_000), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	gw := w.vc.Gateway("gw")
	if gw.Bytes() != int64(total) {
		t.Errorf("gateway bytes = %d, want %d", gw.Bytes(), total)
	}
	if gw.Messages() != 3 {
		t.Errorf("gateway messages = %d", gw.Messages())
	}
}

func TestTimelineRenders(t *testing.T) {
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.Tracer = tr
	w := build(t, paperHS(t), cfg)
	w.sim.Spawn("s", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginPacking(p, "b0")
		px.Pack(p, pattern(256*1024, 1), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	var done vtime.Time
	w.sim.Spawn("r", func(p *vtime.Proc) {
		u := w.vc.At("b0").BeginUnpacking(p)
		u.Unpack(p, make([]byte, 256*1024), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	tl := tr.Timeline(0, done, 100)
	if tl == "" {
		t.Fatal("empty timeline")
	}
	for _, actor := range []string{"gw:recv:sci0", "gw:send:myri0"} {
		found := false
		for _, a := range tr.Actors() {
			if a == actor {
				found = true
			}
		}
		if !found {
			t.Errorf("timeline missing actor %s; have %v\n%s", actor, tr.Actors(), tl)
		}
	}
	fmt.Println(tl) // visible with go test -v
}
