package fwd

import (
	"fmt"

	"madgo/internal/flight"
	"madgo/internal/flow"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// Gateway is the forwarding engine running on a node that bridges networks:
// one polling thread per special channel, and for every relayed message a
// receive/retransmit pipeline over a ring of pooled staging buffers
// (Figure 4).
type Gateway struct {
	vc   *VirtualChannel
	node *mad.Node
	name string

	// rings holds the persistent pipeline state, one per ingress network.
	// Each ingress network has exactly one relaying daemon (the polling
	// daemon itself, or the fair-scheduling daemon in flow-control mode)
	// and forward() relays messages to completion before returning to it,
	// so a ring is only ever used by one message at a time.
	rings map[string]*relayRing

	// scheds holds the flow-mode arrival schedulers, one per ingress
	// network; empty unless Config.FlowControl is set.
	scheds map[string]*gwSched

	// txq holds the per-egress-link asynchronous senders for fully
	// received single-transfer frames (compact eager and aggregate), so
	// the polling thread can go back to posting ingress receives while a
	// frame is still streaming out.
	txq map[*mad.Link]*gwEgress

	// Relay statistics (diagnostics and tests).
	messages int64
	packets  int64
	bytes    int64
	stalls   int64

	// eng is the node's reliability engine in reliable mode; the stat
	// accessors read from it instead of the streaming counters.
	eng *relEngine
}

// relayRing is the reusable pipeline state of one ingress network: the
// free/full buffer channels the two threads rotate, the staging-buffer free
// lists the ring is stocked from, and a scratch header. Keeping it across
// messages makes steady-state relays allocation-free.
type relayRing struct {
	free *vsync.Chan[[]byte]
	full *vsync.Chan[relayPacket]

	pool   *bufPool            // dynamic staging buffers
	stage  *bufPool            // copy-always ablation staging buffers
	static map[string]*bufPool // per-egress-network driver static buffers

	hdr [stripeHeaderLen]byte // GTM/stripe header scratch, one relay at a time
}

func newGateway(vc *VirtualChannel, node *mad.Node) *Gateway {
	return &Gateway{vc: vc, node: node, name: node.Name,
		rings: make(map[string]*relayRing), scheds: make(map[string]*gwSched),
		txq: make(map[*mad.Link]*gwEgress)}
}

// gwEgressTx is one fully received single-transfer frame queued for
// asynchronous retransmission on an egress link.
type gwEgressTx struct {
	meta   mad.TxMeta
	data   []byte
	msgID  uint64
	nextGW string
}

// gwEgress decouples a gateway's egress send from its ingress receive at
// whole-frame grain — the store-and-forward analogue of the packet
// pipeline's double buffering. A single-transfer compact frame is fully in
// gateway memory when the relay sees it, so nothing forces the polling
// thread to sit through the outbound transmission: it hands the frame to
// this per-egress-link daemon and immediately posts the next ingress
// receive. Without the handoff, a post-gated upstream (SCI) cannot even
// start streaming frame k+1 until the gateway finishes sending frame k, and
// the two transfer times serialise per frame. The queue depth is
// PipelineDepth, so at most that many frames buffer in the gateway before
// backpressure reaches the ingress side again.
type gwEgress struct {
	q        *vsync.Chan[gwEgressTx]
	inflight int
	idle     []*vtime.Waker
}

// egress returns (creating, with its sender daemon) the asynchronous sender
// of one egress link.
func (g *Gateway) egress(out *mad.Link) *gwEgress {
	if e, ok := g.txq[out]; ok {
		return e
	}
	e := &gwEgress{q: vsync.NewChan[gwEgressTx](
		fmt.Sprintf("gwtx:%s>%s", g.name, out.Dst.Name), g.vc.cfg.PipelineDepth)}
	g.txq[out] = e
	g.vc.sess.Platform.Sim.SpawnDaemon(fmt.Sprintf("gwtx:%s>%s", g.name, out.Dst.Name),
		func(p *vtime.Proc) {
			for {
				tx, ok := e.q.Recv(p)
				if !ok {
					return
				}
				out.Acquire(p)
				if tx.nextGW != "" {
					g.vc.flowSpend(p, tx.nextGW, g.name, tx.msgID)
				}
				out.Send(p, tx.meta, tx.data)
				out.Release(p)
				e.inflight--
				if e.inflight == 0 {
					for _, w := range e.idle {
						w.Wake()
					}
					e.idle = nil
				}
			}
		})
	return e
}

// sendEgress queues one frame on the egress daemon (blocking only when
// PipelineDepth frames are already buffered).
func (g *Gateway) sendEgress(p *vtime.Proc, out *mad.Link, tx gwEgressTx) {
	e := g.egress(out)
	e.inflight++
	e.q.Send(p, tx)
}

// fenceEgress blocks until every asynchronously queued frame on the link
// has been fully sent. Inline relays (multi-transfer messages re-emitting a
// header and pipelining packets) call it before acquiring the link, so a
// queued frame can never be overtaken by a message the gateway received
// after it.
func (g *Gateway) fenceEgress(p *vtime.Proc, out *mad.Link) {
	e, ok := g.txq[out]
	if !ok {
		return
	}
	for e.inflight > 0 {
		w := p.Blocker("gw egress fence " + g.name)
		e.idle = append(e.idle, w)
		w.Wait()
	}
}

// gwSched is the flow-control arrival scheduler of one ingress network. The
// polling daemon classifies announcements per ingress sender into the
// deficit-round-robin queues and the fair-relay daemon serves them in DRR
// order — replacing the baseline's FIFO "whoever announced first relays
// next" token grab, under which a backlogged elephant sender captures a
// byte share proportional to its message size.
type gwSched struct {
	drr        *flow.DRR[*mad.Arrival]
	pending    *vsync.Sem // counts queued announcements; wakes the fair daemon
	lastRounds int64
}

// ring returns (creating on first use) the pipeline ring of one ingress
// network. The channel capacity is PipelineDepth: the ring can hold at most
// one full rotation, so the receive thread can run at most depth packets
// ahead of the send thread.
func (g *Gateway) ring(inNet string) *relayRing {
	if r, ok := g.rings[inNet]; ok {
		return r
	}
	depth := g.vc.cfg.PipelineDepth
	r := &relayRing{
		free:   vsync.NewChan[[]byte](fmt.Sprintf("gwfree:%s:%s", g.name, inNet), depth),
		full:   vsync.NewChan[relayPacket](fmt.Sprintf("gwfull:%s:%s", g.name, inNet), depth),
		pool:   newBufPool(nil),
		stage:  newBufPool(nil),
		static: make(map[string]*bufPool),
	}
	g.rings[inNet] = r
	return r
}

// staticPool returns the ring's free list of egress-driver static buffers
// for one egress link, creating it with an AllocStatic-backed allocator on
// first use.
func (r *relayRing) staticPool(out *mad.Link, host *hw.Host) *bufPool {
	name := out.Channel.Network().Name
	if bp, ok := r.static[name]; ok {
		return bp
	}
	drv := out.Channel.Driver()
	bp := newBufPool(func(n int) []byte { return drv.AllocStatic(host, n).Data })
	r.static[name] = bp
	return bp
}

// start spawns the polling threads: one per special channel the gateway is
// attached to. Each thread waits for message announcements and relays the
// messages one after the other.
func (g *Gateway) start() {
	sim := g.vc.sess.Platform.Sim
	tn, _ := g.vc.tp.Node(g.name)
	for _, nwName := range tn.Networks {
		spc, ok := g.vc.special[nwName]
		if !ok {
			continue
		}
		ep := spc.At(g.node)
		nwName := nwName
		if g.vc.flowc != nil {
			g.startFair(ep, spc, nwName)
			continue
		}
		sim.SpawnDaemon(fmt.Sprintf("gwpoll:%s:%s", g.name, nwName), func(p *vtime.Proc) {
			for {
				a := ep.WaitArrival(p)
				if !relayableKind(a.Kind()) {
					panic("fwd: non-GTM message on special channel " + spc.Name)
				}
				g.forward(p, a)
			}
		})
	}
}

// relayableKind reports whether a message kind is a self-described stream a
// gateway can relay: plain GTM, a striped rail, the compact eager and
// aggregate framings, or a multicast stream (which the gateway replicates
// rather than relays one-to-one).
func relayableKind(k mad.Kind) bool {
	switch k {
	case mad.KindGTM, mad.KindStripe, mad.KindEager, mad.KindAgg, mad.KindMcast:
		return true
	}
	return false
}

// burstableKind reports whether a message kind may extend a DRR visit
// until the flow's deficit runs out. Stripe rails are excluded (see the
// comment at the burst loop); everything the GTM frames normally —
// including the compact and aggregate forms — bursts.
func burstableKind(k mad.Kind) bool {
	switch k {
	case mad.KindGTM, mad.KindEager, mad.KindAgg:
		return true
	}
	return false
}

// startFair spawns the flow-control daemon pair for one ingress network:
// gwpoll only classifies announcements into the per-sender DRR queues
// (announcements are cheap — the data transfer happens lazily when the
// relay receives), and gwfair serves them one message to completion in DRR
// order, charging each flow the bytes it actually relayed.
func (g *Gateway) startFair(ep *mad.Endpoint, spc *mad.Channel, nwName string) {
	sim := g.vc.sess.Platform.Sim
	sc := &gwSched{
		drr:     flow.NewDRR[*mad.Arrival](int64(g.vc.cfg.MTU)),
		pending: vsync.NewSem(0),
	}
	g.scheds[nwName] = sc
	m := g.vc.metrics()
	gwLabels := obs.Labels{"gateway": g.name}
	sim.SpawnDaemon(fmt.Sprintf("gwpoll:%s:%s", g.name, nwName), func(p *vtime.Proc) {
		for {
			a := ep.WaitArrival(p)
			if !relayableKind(a.Kind()) {
				panic("fwd: non-GTM message on special channel " + spc.Name)
			}
			sc.drr.Push(a.Link.Src.Name, a)
			sc.pending.Release(1)
		}
	})
	sim.SpawnDaemon(fmt.Sprintf("gwfair:%s:%s", g.name, nwName), func(p *vtime.Proc) {
		for {
			sc.pending.Acquire(p, 1)
			key, a, ok := sc.drr.Pop()
			if !ok {
				panic("fwd: gateway scheduler woken with empty queues on " + g.name)
			}
			sc.drr.Charge(key, g.forward(p, a))
			// Classic DRR serves a flow until its deficit runs out, not
			// one item per visit: a flow whose messages are smaller than
			// the quantum could otherwise never use its full byte share
			// (the cap on banked deficit forfeits the remainder), handing
			// large-message flows a permanent rate advantage. Only plain
			// GTM messages extend a visit: stripe rails pair with a
			// sibling rail on another gateway, and bursting would let the
			// two gateways' service orders diverge further than the
			// sink's bounded reassembly can absorb (a rail message is at
			// least stripe-threshold sized, so it fills its quantum in
			// one service anyway). The compact eager and aggregate
			// framings burst like plain GTM: they are exactly the mice
			// whose fair byte share the deficit extension exists for.
			if burstableKind(a.Kind()) {
				for sc.drr.Deficit(key) >= 0 {
					if !sc.pending.TryAcquire(1) {
						break
					}
					a, ok := sc.drr.PopFrom(key, func(n *mad.Arrival) bool {
						return burstableKind(n.Kind())
					})
					if !ok {
						sc.pending.Release(1)
						break
					}
					sc.drr.Charge(key, g.forward(p, a))
				}
			}
			if r := sc.drr.Rounds(); r > sc.lastRounds {
				m.Add("madgo_flow_sched_rounds_total", gwLabels, float64(r-sc.lastRounds))
				sc.lastRounds = r
			}
		}
	})
}

// Messages returns the number of messages this gateway relayed.
func (g *Gateway) Messages() int64 {
	if g.eng != nil {
		return g.eng.relayedMsgs
	}
	return g.messages
}

// Packets returns the number of packets this gateway relayed.
func (g *Gateway) Packets() int64 {
	if g.eng != nil {
		return g.eng.relayedPkts
	}
	return g.packets
}

// Bytes returns the payload bytes this gateway relayed.
func (g *Gateway) Bytes() int64 {
	if g.eng != nil {
		return g.eng.relayedBytes
	}
	return g.bytes
}

// Stalls returns how many times a receive thread of this gateway had to
// wait for a free staging buffer — the pipeline bubbles a deeper ring
// eliminates. Always zero in reliable mode.
func (g *Gateway) Stalls() int64 { return g.stalls }

// PoolStats aggregates the staging-buffer free-list counters over every
// ring of this gateway.
func (g *Gateway) PoolStats() PoolStats {
	var s PoolStats
	for _, r := range g.rings {
		s.observe(r.pool)
		s.observe(r.stage)
		for _, bp := range r.static {
			s.observe(bp)
		}
	}
	return s
}

// Retransmits returns the number of per-hop packet retransmissions this
// gateway's node performed. Always zero in streaming mode and on fault-free
// reliable runs.
func (g *Gateway) Retransmits() int64 {
	if g.eng != nil {
		return g.eng.retransmits
	}
	return 0
}

// Failovers returns how many times this gateway's node presumed a neighbour
// dead and rerouted around it. Always zero in streaming mode and on
// fault-free reliable runs.
func (g *Gateway) Failovers() int64 {
	if g.eng != nil {
		return g.eng.failovers
	}
	return 0
}

// Gateway returns the engine running on the named node (tests and tools).
func (vc *VirtualChannel) Gateway(name string) *Gateway {
	gw, ok := vc.gates[name]
	if !ok {
		panic("fwd: no gateway on " + name)
	}
	return gw
}

// GatewayOK returns the engine running on the named node, or ok=false when
// the node runs none.
func (vc *VirtualChannel) GatewayOK(name string) (*Gateway, bool) {
	gw, ok := vc.gates[name]
	return gw, ok
}

// forward relays one self-described message: read its header, choose the
// egress channel from the routing table (special channel toward another
// gateway, regular channel toward the final destination — §2.2.2's "right
// solution"), re-emit the header, then pipeline the packets. It returns the
// payload bytes relayed, which the flow-control scheduler charges against
// the ingress sender's deficit.
func (g *Gateway) forward(p *vtime.Proc, a *mad.Arrival) int64 {
	if k := a.Kind(); k == mad.KindEager || k == mad.KindAgg {
		return g.forwardEager(p, a)
	}
	if a.Kind() == mad.KindMcast {
		return g.forwardMcast(p, a)
	}
	vc := g.vc
	in := a.Link
	in.AcquireRecv(p)
	defer in.ReleaseRecv(p)
	bytesBefore := g.bytes

	r := g.ring(in.Channel.Network().Name)
	// A striped rail carries a longer header, but its leading fields are
	// byte-compatible with the GTM header — the gateway reads the routing
	// fields and relays the rest of the stream unchanged, oblivious to
	// the striping schedule.
	hdrLen := gtmHeaderLen
	if a.Kind() == mad.KindStripe {
		hdrLen = stripeHeaderLen
	}
	hdr := r.hdr[:hdrLen]
	meta, _ := in.RecvInto(p, hdr)
	if !meta.SOM || meta.Kind != a.Kind() || len(meta.Blocks) != 1 {
		panic("fwd: malformed GTM header at gateway " + g.name)
	}
	_, dstRank, mtu, msgID, ok := decodeGTMHeader(hdr[:gtmHeaderLen])
	if !ok {
		panic("fwd: malformed GTM header at gateway " + g.name)
	}
	// The header transfer consumed one of the upstream sender's credits;
	// it has been read out of the ingress slot, so return the credit.
	up := in.Src.Name
	vc.flowGrant(g.name, up, 1)
	dstName := vc.sess.Node(dstRank).Name
	hop, ok := vc.tbl.NextHop(g.name, dstName)
	if !ok {
		panic(fmt.Sprintf("fwd: gateway %s has no route to %s", g.name, dstName))
	}
	vc.metrics().RecordHop(msgID, p.Now(), g.name, "relay",
		fmt.Sprintf("%s -> %s via %s", in.Channel.Network().Name, hop.To, hop.Network), 0)
	var outCh *mad.Channel
	nextGW := ""
	if hop.To == dstName {
		outCh = vc.regular[hop.Network]
	} else {
		outCh = vc.special[hop.Network]
		if outCh == nil {
			panic("fwd: next-gateway hop without special channel on " + hop.Network)
		}
		// Relaying toward another gateway makes this gateway a sender in
		// its own right: it spends credits toward the next hop, which is
		// how backpressure propagates sender-ward across a gateway chain.
		nextGW = hop.To
	}
	out := outCh.Link(g.node.Rank, vc.NodeRank(hop.To))
	g.fenceEgress(p, out)
	out.Acquire(p)
	defer out.Release(p)
	if nextGW != "" {
		vc.flowSpend(p, nextGW, g.name, msgID)
	}
	out.Send(p, mad.TxMeta{SOM: true, Kind: meta.Kind,
		Blocks: []mad.BlockDesc{{Size: hdrLen, S: mad.SendCheaper, R: mad.ReceiveExpress}}}, hdr)

	g.pipeline(p, r, in, out, mtu, msgID, meta.Kind, up, nextGW)
	g.messages++
	return g.bytes - bytesBefore
}

// forwardEager relays a compact (eager or aggregate) message. The first
// transfer is the self-description header glued to the first data fragment,
// so it is variable-length: the gateway takes it as a driver-slot handoff,
// reads the routing fields off the front, and re-emits the whole frame
// unchanged — oblivious to whether the payload is one small message or an
// aggregate of many. A single-transfer message (EOM on the first frame) is
// fully relayed here; a longer one hands its remaining fragments to the
// ordinary pipeline, whose terminator now rides on the last data transfer
// instead of a trailing empty one.
func (g *Gateway) forwardEager(p *vtime.Proc, a *mad.Arrival) int64 {
	vc := g.vc
	in := a.Link
	in.AcquireRecv(p)
	defer in.ReleaseRecv(p)
	bytesBefore := g.bytes

	meta, slot := in.Recv(p)
	if !meta.SOM || meta.Kind != a.Kind() || len(meta.Blocks) < 1 || len(meta.Blocks) > 2 ||
		meta.Blocks[0].Size != gtmHeaderLen {
		panic("fwd: malformed compact header at gateway " + g.name)
	}
	_, dstRank, mtu, msgID, frag, ok := decodeGTMCompact(slot)
	if !ok {
		panic("fwd: malformed compact header at gateway " + g.name)
	}
	// The compact first transfer consumed one upstream credit; its slot is
	// consumed here, so the credit goes straight back.
	up := in.Src.Name
	vc.flowGrant(g.name, up, 1)
	dstName := vc.sess.Node(dstRank).Name
	hop, ok := vc.tbl.NextHop(g.name, dstName)
	if !ok {
		panic(fmt.Sprintf("fwd: gateway %s has no route to %s", g.name, dstName))
	}
	vc.metrics().RecordHop(msgID, p.Now(), g.name, "relay",
		fmt.Sprintf("%s -> %s via %s", in.Channel.Network().Name, hop.To, hop.Network), 0)
	var outCh *mad.Channel
	nextGW := ""
	if hop.To == dstName {
		outCh = vc.regular[hop.Network]
	} else {
		outCh = vc.special[hop.Network]
		if outCh == nil {
			panic("fwd: next-gateway hop without special channel on " + hop.Network)
		}
		nextGW = hop.To
	}
	out := outCh.Link(g.node.Rank, vc.NodeRank(hop.To))
	if n := len(frag); n > 0 {
		g.packets++
		g.bytes += int64(n)
		m := vc.metrics()
		gwLabels := obs.Labels{"gateway": g.name}
		m.Add("madgo_gateway_relayed_packets_total", gwLabels, 1)
		m.Add("madgo_gateway_relayed_bytes_total", gwLabels, float64(n))
	}
	g.messages++
	txMeta := mad.TxMeta{SOM: true, EOM: meta.EOM, Kind: meta.Kind, Blocks: meta.Blocks}
	if meta.EOM {
		// The whole message is in gateway memory (its driver slot), so the
		// retransmission needs nothing more from this thread: queue it on
		// the egress daemon and go receive the next frame.
		g.sendEgress(p, out, gwEgressTx{meta: txMeta, data: slot, msgID: msgID, nextGW: nextGW})
		return g.bytes - bytesBefore
	}
	g.fenceEgress(p, out)
	out.Acquire(p)
	defer out.Release(p)
	if nextGW != "" {
		vc.flowSpend(p, nextGW, g.name, msgID)
	}
	out.Send(p, txMeta, slot)
	r := g.ring(in.Channel.Network().Name)
	g.pipeline(p, r, in, out, mtu, msgID, meta.Kind, up, nextGW)
	return g.bytes - bytesBefore
}

// relayPacket is the unit handed from the receive thread to the send
// thread.
type relayPacket struct {
	data []byte
	desc []mad.BlockDesc
	buf  []byte // ring buffer to recycle (nil in slot mode)
	aux  []byte // pooled copy-always staging buffer, released after send
	eom  bool
}

// pipeline implements the paper's packet-forwarding pipeline (Figure 5):
// the polling thread becomes the receive thread, a spawned thread
// retransmits, and PipelineDepth buffers rotate between them. Each buffer
// switch costs the host's software overhead (§3.3.1 measures ≈40 µs).
//
// Buffer election (§2.3):
//   - egress static (and zero-copy on): buffers come from the egress
//     driver, packets land in them directly, and are sent in place;
//   - ingress static, egress dynamic: packets are taken as driver-slot
//     handoffs and sent straight from the ingress slot;
//   - both static: the posted receive falls back to a real copy out of the
//     ingress slot — the unavoidable one;
//   - both dynamic: packets land in plain pipeline buffers with no copy.
//
// Buffers come from the ring's free lists, not the allocator: the ring is
// stocked from the pools at message start and drained back at message end,
// so after the first message a relay allocates nothing. When the receive
// thread has to wait for a free buffer — the send side is the bottleneck
// and every buffer is in flight — the wait is recorded as a "stall" span,
// which obs.AnalyzeLanes accounts to the lane's stall fraction; the deeper
// the ring, the fewer such bubbles.
// With flow control armed, the pipeline is also where credits move: every
// buffer returned to the free list means one ingress transfer fully drained
// through egress, so one credit goes back to the upstream sender (up), and
// every egress transfer toward a downstream gateway (nextGW non-empty)
// spends one of this gateway's own credits first.
func (g *Gateway) pipeline(p *vtime.Proc, r *relayRing, in, out *mad.Link, mtu int, msgID uint64, kind mad.Kind, up, nextGW string) {
	vc := g.vc
	cfg := vc.cfg
	tr := cfg.Tracer
	m := vc.metrics()
	fr := vc.flightRing(g.name)
	gwLabels := obs.Labels{"gateway": g.name}
	host := g.node.Host
	inNet := in.Channel.Network().Name
	outNet := out.Channel.Network().Name
	recvActor := fmt.Sprintf("%s:recv:%s", g.name, inNet)
	sendActor := fmt.Sprintf("%s:send:%s", g.name, outNet)

	ingressStatic := in.NIC().StaticBuffers
	egressStatic := out.NIC().StaticBuffers
	slotMode := ingressStatic && !egressStatic && cfg.ZeroCopy

	// Stock the ring for this message's buffer-election mode.
	var statics *bufPool
	if egressStatic && cfg.ZeroCopy && !slotMode {
		statics = r.staticPool(out, host)
	}
	for i := 0; i < cfg.PipelineDepth; i++ {
		switch {
		case slotMode:
			r.free.TrySend(nil) // tokens only; data rides ingress slots
		case statics != nil:
			r.free.TrySend(statics.get(mtu))
		default:
			r.free.TrySend(r.pool.get(mtu))
		}
	}

	sender := vc.sess.Platform.Sim.Spawn(fmt.Sprintf("gwsend:%s:%s", g.name, outNet), func(sp *vtime.Proc) {
		for {
			pkt, _ := r.full.Recv(sp)
			if pkt.eom && pkt.data == nil {
				// Bare terminator of the seed framing. The compact framings
				// never produce one: their terminator rides on the last data
				// packet (pkt.eom with data below).
				if nextGW != "" {
					vc.flowSpend(sp, nextGW, g.name, msgID)
				}
				out.Send(sp, mad.TxMeta{Kind: kind, EOM: true}, nil)
				return
			}
			if nextGW != "" {
				vc.flowSpend(sp, nextGW, g.name, msgID)
			}
			t0 := sp.Now()
			out.Send(sp, mad.TxMeta{Kind: kind, EOM: pkt.eom, Blocks: pkt.desc}, pkt.data)
			tr.Record(sendActor, "send", len(pkt.data), t0, sp.Now())
			fr.Record(flight.KindSend, sp.Now(), vtime.Since(sp.Now(), t0), msgID, len(pkt.data), outNet)
			if pkt.aux != nil {
				r.stage.put(pkt.aux)
			}
			t0 = sp.Now()
			sp.Sleep(host.CPU.SwapOverhead)
			tr.Record(sendActor, "swap", 0, t0, sp.Now())
			m.ObserveDuration("madgo_gateway_swap_seconds", gwLabels, vtime.Since(sp.Now(), t0))
			fr.Record(flight.KindSwap, sp.Now(), vtime.Since(sp.Now(), t0), msgID, 0, outNet)
			r.free.Send(sp, pkt.buf)
			// The ingress transfer behind this buffer has fully drained
			// through egress — its credit goes back to the sender.
			vc.flowGrant(g.name, up, 1)
			if pkt.eom {
				return
			}
		}
	})

	var lastRecvStart vtime.Time
	first := true
	for {
		t0 := p.Now()
		buf, _ := r.free.Recv(p)
		if wait := vtime.Since(p.Now(), t0); wait > 0 {
			// Pipeline bubble: every staging buffer was in flight on the
			// egress side and the receive thread had to wait.
			g.stalls++
			tr.Record(recvActor, "stall", 0, t0, p.Now())
			m.ObserveDuration("madgo_gateway_stall_seconds", gwLabels, wait)
			fr.Record(flight.KindStall, p.Now(), wait, msgID, 0, inNet)
		}
		// Incoming-flow regulation (the paper's proposed future work):
		// space receive starts to at most InflowLimit bytes/s.
		if cfg.InflowLimit > 0 && !first {
			minPeriod := vtime.DurationOfBytes(int64(mtu), cfg.InflowLimit)
			if elapsed := p.Now().Sub(lastRecvStart); elapsed < minPeriod {
				p.Sleep(minPeriod - elapsed)
			}
		}
		lastRecvStart = p.Now()
		first = false

		var pkt relayPacket
		t0 = p.Now()
		if slotMode {
			meta, slot := in.Recv(p)
			if len(meta.Blocks) == 0 {
				pkt = relayPacket{eom: true}
			} else {
				pkt = relayPacket{data: slot, desc: meta.Blocks, eom: meta.EOM}
			}
		} else {
			meta, n := in.RecvInto(p, buf)
			if len(meta.Blocks) == 0 {
				pkt = relayPacket{eom: true}
			} else {
				pkt.eom = meta.EOM
				data := buf[:n]
				if !cfg.ZeroCopy {
					// Copy-always ablation: stage through an
					// extra buffer like a forwarding layer
					// naively placed above Madeleine would.
					stage := r.stage.get(n)
					host.Memcpy(p, n)
					copy(stage, data)
					pkt.aux = stage
					data = stage
				}
				pkt.data = data
				pkt.desc = meta.Blocks
				pkt.buf = buf
			}
		}
		if pkt.data != nil {
			tr.Record(recvActor, "recv", len(pkt.data), t0, p.Now())
			fr.Record(flight.KindRecv, p.Now(), vtime.Since(p.Now(), t0), msgID, len(pkt.data), inNet)
			g.packets++
			g.bytes += int64(len(pkt.data))
			m.Add("madgo_gateway_relayed_packets_total", gwLabels, 1)
			m.Add("madgo_gateway_relayed_bytes_total", gwLabels, float64(len(pkt.data)))
			t0 = p.Now()
			p.Sleep(host.CPU.SwapOverhead)
			tr.Record(recvActor, "swap", 0, t0, p.Now())
			m.ObserveDuration("madgo_gateway_swap_seconds", gwLabels, vtime.Since(p.Now(), t0))
			fr.Record(flight.KindSwap, p.Now(), vtime.Since(p.Now(), t0), msgID, 0, inNet)
		}
		r.full.Send(p, pkt)
		if pkt.eom {
			if pkt.data == nil {
				// The buffer taken for the bare terminator was never handed
				// to the sender; recycle it directly so the drain below sees
				// the whole ring. (A data-carrying terminator travels with
				// its buffer and is recycled by the send thread as usual.)
				r.free.TrySend(buf)
				// The terminator transfer also consumed a sender credit.
				vc.flowGrant(g.name, up, 1)
			}
			break
		}
	}
	p.Join(sender)

	// Drain the ring back into this mode's free list so the next message —
	// possibly with a different MTU or egress — restocks cleanly.
	for {
		b, ok := r.free.TryRecv()
		if !ok {
			break
		}
		switch {
		case slotMode:
			// nil tokens, nothing to recycle
		case statics != nil:
			statics.put(b)
		default:
			r.pool.put(b)
		}
	}
}
