package fwd_test

import (
	"bytes"
	"testing"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// chainTopo is a three-network chain with two gateways.
func chainTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("n1", "sci").Network("n2", "myrinet").Network("n3", "sci").
		Node("a", "n1").
		Node("g1", "n1", "n2").
		Node("g2", "n2", "n3").
		Node("c", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestMessageToSecondGatewayAsFinalDestination is §2.2.2's disambiguation
// argument: a message whose final destination IS a gateway must arrive on a
// regular channel and be delivered to that gateway's application, not
// re-forwarded.
func TestMessageToSecondGatewayAsFinalDestination(t *testing.T) {
	w := build(t, chainTopo(t), fwd.DefaultConfig())
	blocks := []block{{pattern(70_000, 5), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, from := sendRecv(t, w, "a", "g2", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	if !fwded {
		t.Error("a→g2 crosses g1: must be forwarded")
	}
	if from != w.vc.NodeRank("a") {
		t.Errorf("From = %d", from)
	}
	if n := w.vc.Gateway("g1").Messages(); n != 1 {
		t.Errorf("g1 relayed %d", n)
	}
	if n := w.vc.Gateway("g2").Messages(); n != 0 {
		t.Errorf("g2's engine relayed %d — the message was for g2's application", n)
	}
}

// TestGatewayAsSourceAcrossAnotherGateway: a gateway's own application
// sends a message that must cross the other gateway.
func TestGatewayAsSourceAcrossAnotherGateway(t *testing.T) {
	w := build(t, chainTopo(t), fwd.DefaultConfig())
	blocks := []block{{pattern(40_000, 6), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "g1", "c", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	if !fwded {
		t.Error("g1→c crosses g2: must be forwarded")
	}
	if n := w.vc.Gateway("g2").Messages(); n != 1 {
		t.Errorf("g2 relayed %d", n)
	}
	if n := w.vc.Gateway("g1").Messages(); n != 0 {
		t.Errorf("g1's engine relayed %d for its own send", n)
	}
}

// TestSlotModeTraceActors: with a static-buffer ingress and dynamic egress
// the pipeline runs in slot-handoff mode; the trace must still show both
// lanes and the relay must be copy-free at the gateway.
func TestSlotModeTracedAndCopyFree(t *testing.T) {
	tr := trace.New()
	cfg := fwd.DefaultConfig()
	cfg.Tracer = tr
	w := build(t, sbpTopo(t, "sbp", "myrinet"), cfg)
	blocks := []block{{pattern(200_000, 7), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Fatal("payload corrupted")
	}
	if copied := w.sess.NodeByName("g").Host.BytesCopied(); copied > 64 {
		t.Errorf("slot-mode gateway copied %d bytes", copied)
	}
	if len(tr.ByActor("g:recv:n1")) == 0 || len(tr.ByActor("g:send:n2")) == 0 {
		t.Errorf("trace lanes missing: %v", tr.Actors())
	}
}

// TestPipelineDepthOneStillCorrect: the no-pipelining ablation must remain
// functionally correct, just slower.
func TestPipelineDepthOneStillCorrect(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.PipelineDepth = 1
	w := build(t, paperHS(t), cfg)
	blocks := []block{
		{pattern(4, 1), mad.SendCheaper, mad.ReceiveExpress},
		{pattern(123_456, 2), mad.SendCheaper, mad.ReceiveCheaper},
	}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i].data) {
			t.Errorf("block %d corrupted", i)
		}
	}
}

// TestInterleavedOppositeStreams runs long streams in both directions at
// once and checks both payloads and the PCI asymmetry: the SCI→Myrinet
// stream must finish first.
func TestInterleavedOppositeStreams(t *testing.T) {
	w := build(t, paperHS(t), fwd.DefaultConfig())
	const n = 1 << 20
	var doneS2M, doneM2S vtime.Time
	launch := func(src, dst string, seed byte, done *vtime.Time) {
		data := pattern(n, seed)
		w.sim.Spawn("s:"+src, func(p *vtime.Proc) {
			px := w.vc.At(src).BeginPacking(p, dst)
			px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r:"+dst, func(p *vtime.Proc) {
			u := w.vc.At(dst).BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, data) {
				t.Errorf("%s->%s corrupted", src, dst)
			}
			*done = p.Now()
		})
	}
	launch("a0", "b0", 1, &doneS2M)
	launch("b1", "a1", 2, &doneM2S)
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if doneS2M >= doneM2S {
		t.Errorf("SCI→Myrinet (%v) should beat Myrinet→SCI (%v): the Figure 6/7 asymmetry",
			doneS2M, doneM2S)
	}
}

func TestSuggestedConfigDefaults(t *testing.T) {
	cfg := fwd.DefaultConfig()
	if cfg.MTU != 32*1024 || cfg.PipelineDepth != 2 || !cfg.ZeroCopy || cfg.InflowLimit != 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}
