// Package fwd implements the paper's contribution: transparent, efficient
// inter-device data-forwarding inside Madeleine.
//
// It provides three cooperating pieces:
//
//   - VirtualChannel (§2.2.1): a channel object bundling, per underlying
//     network, a *regular* real channel for direct messages and a *special*
//     real channel for messages that must cross a gateway. Senders pick the
//     real channel from the routing table; the choice is invisible to the
//     application.
//   - The generic transmission module, GTM (§2.3): the sender- and
//     receiver-side module used for every message that travels through at
//     least two different networks. It shapes data identically on both ends
//     (MTU-sized packets), and makes messages self-described: destination
//     and MTU first, per-block sizes and flag constraints with each packet,
//     and an empty-message terminator.
//   - The gateway engine (§2.2.2): polling threads watching the special
//     channels, and per-message forwarding pipelines — two threads sharing
//     buffers so one packet is retransmitted while the next is received,
//     with the zero-copy buffer election of §2.3.
package fwd

import (
	"encoding/binary"
	"fmt"

	"madgo/internal/flight"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// gtmHeaderLen is the wire size of the GTM message header: source rank,
// destination rank and connection MTU, each 32 bits, plus a 64-bit message
// ID (§2.3: "the sender sends the rank of the destination node, and the MTU
// used for this connexion"; we additionally carry the source rank so the
// final receiver learns the message origin, which a regular message reads
// off its link, and the pack-time message ID so every gateway on the path
// can attribute its relay work to the message's provenance trace).
const gtmHeaderLen = 20

// putGTMHeader writes the self-description header into b[:gtmHeaderLen],
// which the caller must have sized already — used both by the allocating
// encoders below and by the aggregation flush, which reserves the header
// bytes in front of its frame buffer and fills them in place.
func putGTMHeader(b []byte, src, dst mad.Rank, mtu int, id uint64) {
	binary.LittleEndian.PutUint32(b[0:], uint32(src))
	binary.LittleEndian.PutUint32(b[4:], uint32(dst))
	binary.LittleEndian.PutUint32(b[8:], uint32(mtu))
	binary.LittleEndian.PutUint64(b[12:], id)
}

func encodeGTMHeader(src, dst mad.Rank, mtu int, id uint64) []byte {
	hdr := make([]byte, gtmHeaderLen)
	putGTMHeader(hdr, src, dst, mtu, id)
	return hdr
}

// decodeGTMHeader parses a GTM message header. It never panics on
// malformed input: ok is false when the header is not exactly
// gtmHeaderLen bytes or carries an unusable (zero) MTU — the fuzz targets
// pin this down, since the header crosses the wire and a corrupted length
// or MTU must not take down a gateway.
func decodeGTMHeader(hdr []byte) (src, dst mad.Rank, mtu int, id uint64, ok bool) {
	if len(hdr) != gtmHeaderLen {
		return 0, 0, 0, 0, false
	}
	mtu = int(binary.LittleEndian.Uint32(hdr[8:]))
	if mtu <= 0 {
		return 0, 0, 0, 0, false
	}
	return mad.Rank(binary.LittleEndian.Uint32(hdr[0:])),
		mad.Rank(binary.LittleEndian.Uint32(hdr[4:])),
		mtu,
		binary.LittleEndian.Uint64(hdr[12:]),
		true
}

var gtmHeaderDesc = []mad.BlockDesc{{Size: gtmHeaderLen, S: mad.SendCheaper, R: mad.ReceiveExpress}}

// encodeGTMCompact builds the first wire transfer of an eager (compact)
// message: the ordinary 20-byte self-description header immediately followed
// by the first data fragment, in one contiguous payload. The transfer's
// block descriptors keep the two parts separately typed ([header, fragment]),
// so gateways and receivers can split the frame without any extra length
// field on the wire.
func encodeGTMCompact(src, dst mad.Rank, mtu int, id uint64, frag []byte) []byte {
	b := make([]byte, gtmHeaderLen+len(frag))
	putGTMHeader(b, src, dst, mtu, id)
	copy(b[gtmHeaderLen:], frag)
	return b
}

// decodeGTMCompact splits a compact first frame back into its header fields
// and the piggybacked fragment. Like decodeGTMHeader it never panics on
// malformed input (the frame crosses the wire): ok is false when the payload
// is shorter than a header or carries an unusable MTU. The fragment may be
// empty — a header-only compact frame is how an empty eager message (and its
// terminator) travels as a single transfer.
func decodeGTMCompact(b []byte) (src, dst mad.Rank, mtu int, id uint64, frag []byte, ok bool) {
	if len(b) < gtmHeaderLen {
		return 0, 0, 0, 0, nil, false
	}
	mtu = int(binary.LittleEndian.Uint32(b[8:]))
	if mtu <= 0 {
		return 0, 0, 0, 0, nil, false
	}
	return mad.Rank(binary.LittleEndian.Uint32(b[0:])),
		mad.Rank(binary.LittleEndian.Uint32(b[4:])),
		mtu,
		binary.LittleEndian.Uint64(b[12:]),
		b[gtmHeaderLen:],
		true
}

// gtmPacking is the sender side of the generic transmission module: it
// bypasses the per-network BMMs (whose grouping differs across devices) and
// emits a uniform, self-described packet stream any gateway can relay
// without regrouping.
type gtmPacking struct {
	vc   *VirtualChannel
	node *mad.Node
	link *mad.Link
	mtu  int
	id   uint64
}

func newGTMPacking(p *vtime.Proc, vc *VirtualChannel, node *mad.Node, link *mad.Link, finalDst mad.Rank, id uint64) *gtmPacking {
	mtu := vc.PathMTU(node.Name, vc.sess.Node(finalDst).Name)
	g := &gtmPacking{vc: vc, node: node, link: link, mtu: mtu, id: id}
	link.Acquire(p)
	// Every transfer toward the gateway — header, fragments, terminator —
	// first spends one credit of the (gateway, sender) window; an
	// exhausted window parks the sender here instead of piling packets
	// into the gateway's mailbox (no-op with flow control off).
	vc.flowSpend(p, link.Dst.Name, node.Name, id)
	link.Send(p, mad.TxMeta{SOM: true, Kind: mad.KindGTM, Blocks: gtmHeaderDesc},
		encodeGTMHeader(node.Rank, finalDst, g.mtu, g.id))
	return g
}

func (g *gtmPacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	if s == mad.SendSafer {
		// The GTM always sends by reference; honouring SendSafer needs
		// a snapshot. That copy is the only pack-stage cost of the
		// streaming path (reference sends are free), so it alone is
		// charged to the flight recorder's pack stage.
		t0 := p.Now()
		g.node.Host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
		g.vc.flightRing(g.node.Name).Record(flight.KindPack, p.Now(), vtime.Since(p.Now(), t0), g.id, len(data), "")
	}
	net := g.link.Channel.Network().Name
	mad.ForEachFragment(len(data), g.mtu, func(off, n int) {
		g.vc.flowSpend(p, g.link.Dst.Name, g.node.Name, g.id)
		g.link.Send(p, mad.TxMeta{
			Kind:   mad.KindGTM,
			Blocks: []mad.BlockDesc{{Size: n, S: s, R: r}},
		}, data[off:off+n])
		g.vc.metrics().RecordHop(g.id, p.Now(), g.node.Name, "hop",
			fmt.Sprintf("%s -> %s via %s", g.node.Name, g.link.Dst.Name, net), n)
	})
}

func (g *gtmPacking) end(p *vtime.Proc) {
	// "To end a message, the sender sends the description of an empty
	// message."
	g.vc.flowSpend(p, g.link.Dst.Name, g.node.Name, g.id)
	g.link.Send(p, mad.TxMeta{Kind: mad.KindGTM, EOM: true}, nil)
	g.link.Release(p)
}

// gtmUnpacking is the receiver side of the generic module, used when the
// arrival note says the message crossed a gateway (Kind == KindGTM). It
// posts MTU-sized receives so relayed packets land in place.
type gtmUnpacking struct {
	vc   *VirtualChannel
	node *mad.Node
	link *mad.Link
	mtu  int
	from mad.Rank
	id   uint64
	got  int
}

func newGTMUnpacking(p *vtime.Proc, vc *VirtualChannel, node *mad.Node, a *mad.Arrival) *gtmUnpacking {
	link := a.Link
	link.AcquireRecv(p)
	hdr := make([]byte, gtmHeaderLen)
	meta, _ := link.RecvInto(p, hdr)
	if !meta.SOM || meta.Kind != mad.KindGTM {
		panic("fwd: GTM unpacking of a message without a GTM header")
	}
	src, dst, mtu, id, ok := decodeGTMHeader(hdr)
	if !ok {
		panic("fwd: malformed GTM header delivered to " + node.Name)
	}
	if dst != node.Rank {
		panic(fmt.Sprintf("fwd: misrouted message: %s received a message for rank %d", node.Name, dst))
	}
	return &gtmUnpacking{vc: vc, node: node, link: link, mtu: mtu, from: src, id: id}
}

func (g *gtmUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	mad.ForEachFragment(len(dst), g.mtu, func(off, n int) {
		meta, got := g.link.RecvInto(p, dst[off:off+n])
		if meta.EOM {
			panic("fwd: protocol error: message terminator while blocks were expected")
		}
		if len(meta.Blocks) != 1 {
			panic("fwd: protocol error: GTM packet without exactly one block")
		}
		d := meta.Blocks[0]
		if d.S != s || d.R != r || d.Size != n || got != n {
			panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, n, s, r))
		}
		g.got += got
	})
}

func (g *gtmUnpacking) end(p *vtime.Proc) {
	meta, _ := g.link.Recv(p)
	if !meta.EOM {
		panic("fwd: protocol error: expected GTM message terminator")
	}
	g.link.ReleaseRecv(p)
	g.vc.metrics().RecordHop(g.id, p.Now(), g.node.Name, "deliver",
		"reassembled at "+g.node.Name, g.got)
}
