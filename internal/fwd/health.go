package fwd

// Forwarding-layer side of the link-health detector (package health): the
// monitor decides *when* an edge deserves a probe, this file performs it.
//
// Each node runs two daemons:
//
//   - A prober, fed by a bounded queue of probe requests the monitor's sink
//     dispatches by the edge's From node. It sends a KindHealth request over
//     the edge's link, waits up to the monitor's probe timeout for the
//     echoed response, and reports the outcome (with the measured
//     round-trip) back to the monitor.
//   - An echo daemon, fed by the polling daemons: a received probe request
//     is answered over the reverse link. The reply goes through a queue so
//     the polling daemon never blocks on link credits — the same discipline
//     as acknowledgements (see ctlLoop).
//
// Probes are single KindHealth packets flagged Reliable, so they take the
// plain eager path and are subject to fault injection exactly like data: a
// probe across a faulted link is lost and times out, which is the signal.

import (
	"madgo/internal/flight"
	"madgo/internal/health"
	"madgo/internal/mad"
	"madgo/internal/route"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// healthEcho is one probe response queued for transmission.
type healthEcho struct {
	link  *mad.Link
	probe health.Probe
}

// healthProber is the per-node probe machinery.
type healthProber struct {
	eng   *relEngine
	q     *vsync.Chan[route.Edge]
	echoQ *vsync.Chan[healthEcho]
	seq   uint64
	await map[uint64]*relAwait // outstanding probes by sequence number
}

// buildHealth wires the probe daemons and the monitor's sink. No-op when no
// monitor is configured, preserving the legacy per-engine liveness guesses.
func (vc *VirtualChannel) buildHealth() {
	mon := vc.mon
	if mon == nil {
		return
	}
	sim := vc.sess.Platform.Sim
	for _, name := range vc.relOrder {
		e := vc.rel[name]
		hp := &healthProber{
			eng:   e,
			q:     vsync.NewChan[route.Edge]("probeq:"+name, 256),
			echoQ: vsync.NewChan[healthEcho]("echoq:"+name, 256),
			await: make(map[uint64]*relAwait),
		}
		e.hp = hp
		sim.SpawnDaemon("relprobe:"+name, func(p *vtime.Proc) {
			for {
				edge, ok := hp.q.Recv(p)
				if !ok {
					return
				}
				hp.probe(p, edge)
			}
		})
		sim.SpawnDaemon("relecho:"+name, func(p *vtime.Proc) {
			for {
				it, ok := hp.echoQ.Recv(p)
				if !ok {
					return
				}
				pkt := health.EncodeProbe(it.probe)
				it.link.Acquire(p)
				it.link.Send(p, relMeta(mad.KindHealth, len(pkt)), pkt)
				it.link.Release(p)
			}
		})
	}
	mon.SetProbeSink(func(edge route.Edge) {
		e := vc.rel[edge.From]
		if e == nil || e.hp == nil || !e.hp.q.TrySend(edge) {
			// No prober, or its queue is saturated: count the probe as
			// failed so the monitor reschedules instead of waiting forever
			// on a request nobody will perform.
			mon.ProbeResult(edge, false, 0, sim.Now())
		}
	})
}

// probe performs one probe: request out, await the echoed response, report.
func (hp *healthProber) probe(p *vtime.Proc, edge route.Edge) {
	e := hp.eng
	mon := e.vc.mon
	nw := e.vc.regular[edge.Network]
	if nw == nil {
		mon.ProbeResult(edge, false, 0, p.Now())
		return
	}
	link := nw.Link(e.node.Rank, e.vc.NodeRank(edge.To))
	hp.seq++
	seq := hp.seq
	aw := &relAwait{}
	hp.await[seq] = aw
	t0 := p.Now()
	pkt := health.EncodeProbe(health.Probe{Kind: health.ProbeReq, Seq: seq, T0: t0})
	link.Acquire(p)
	link.Send(p, relMeta(mad.KindHealth, len(pkt)), pkt)
	link.Release(p)
	ok := e.await(p, aw, mon.ProbeTimeout(), "health probe "+edge.To)
	delete(hp.await, seq)
	mon.ProbeResult(edge, ok, p.Now().Sub(t0), p.Now())
	bytes := 0
	if ok {
		bytes = 1 // success flag for the flight recorder, not a byte count
	}
	e.flight().Record(flight.KindProbe, p.Now(), p.Now().Sub(t0), 0, bytes, edge.Network)
}

// handleHealth dispatches one KindHealth arrival in the polling daemon: a
// request is queued for echo, a response completes the outstanding probe.
// Like every reliable-mode handler it never parks.
func (e *relEngine) handleHealth(p *vtime.Proc, in *mad.Link, pkt []byte) {
	pr, ok := health.DecodeProbe(pkt)
	if !ok {
		e.checksumDrops++
		e.trace("corrupt-drop", len(pkt), p.Now())
		e.count("madgo_checksum_drops_total")
		return // the prober's timeout absorbs the loss
	}
	if pr.Kind == health.ProbeReq {
		if e.hp == nil {
			return // no health machinery on this node (cannot happen when armed)
		}
		back := in.Channel.Link(e.node.Rank, in.Src.Rank)
		if !e.hp.echoQ.TrySend(healthEcho{link: back, probe: pr.Response()}) {
			// Backpressure: drop the reply; the prober times out and the
			// monitor retries on its own schedule.
			e.relayDrops++
			e.count("madgo_relay_drops_total")
		}
		return
	}
	if e.hp != nil {
		complete(e.hp.await[pr.Seq])
	}
}
