package fwd_test

import (
	"bytes"
	"errors"
	"testing"

	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/health"
	"madgo/internal/mad"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// healthCfg returns a forwarding config with the link-health monitor armed
// on top of the defaults.
func healthCfg() fwd.Config {
	cfg := fwd.DefaultConfig()
	hc := health.DefaultConfig()
	cfg.Health = &hc
	return cfg
}

// gatedDualRail is a topology with two fully link-disjoint routes between a0 and
// b0, each rail crossing its own gateway over its own pair of networks —
// so downing one network kills exactly one rail.
func gatedDualRail(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("railA1", "sci").
		Network("railA2", "myrinet").
		Network("railB1", "sci").
		Network("railB2", "myrinet").
		Node("a0", "railA1", "railB1").
		Node("gwA", "railA1", "railA2").
		Node("gwB", "railB1", "railB2").
		Node("b0", "railA2", "railB2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestHealthCleanRunStaysEpochOne(t *testing.T) {
	w := buildFaulty(t, paperHS(t), nil, nil, healthCfg())
	blocks := []block{{pattern(90_000, 2), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	mon := w.vc.Health()
	if mon == nil {
		t.Fatal("Health() = nil with Config.Health set")
	}
	if mon.Epoch() != 1 {
		t.Errorf("clean run ended in epoch %d, want 1", mon.Epoch())
	}
	for _, lh := range mon.Snapshot() {
		if lh.State != health.Up {
			t.Errorf("clean run left %v in state %v", lh.Link, lh.State)
		}
	}
}

func TestHealthGatewayDeathPublishesEpoch(t *testing.T) {
	// The preferred gateway crashes before traffic: the detector must bury
	// its links, publish a fresh epoch, and the message must arrive via the
	// other gateway.
	plan := fault.NewPlan(1).Crash("gw1", 0, 0)
	w := buildFaulty(t, twoGateways(t), nil, plan, healthCfg())
	blocks := []block{{pattern(100_000, 3), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted across failover")
	}
	mon := w.vc.Health()
	if mon.Epoch() < 2 {
		t.Errorf("gateway death left epoch at %d, want >= 2", mon.Epoch())
	}
	if len(mon.DeadEdges()) == 0 {
		t.Error("no dead edges recorded after a crashed gateway")
	}
	if n := w.vc.Gateway("gw2").Messages(); n == 0 {
		t.Error("secondary gateway relayed nothing")
	}
	// The crashed gateway must show up as non-Up in the snapshot.
	sawDown := false
	for _, lh := range mon.Snapshot() {
		if lh.Link.To == "gw1" && lh.State != health.Up {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("no link toward the crashed gateway left Up state")
	}
}

func TestHealthNoRouteTyped(t *testing.T) {
	// Killing the single gateway with no fallback partitions the topology:
	// the sender must surface a typed route.ErrNoRoute through the
	// DeliveryError, never a stall or a bare string.
	plan := fault.NewPlan(5).Crash("gw", 0, 0)
	w := buildFaulty(t, paperHS(t), nil, plan, healthCfg())
	w.sim.Spawn("app-send:a0", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginPacking(p, "b1")
		px.Pack(p, pattern(10_000, 1), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	err := w.sim.Run()
	var de *fwd.DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want a *DeliveryError", err)
	}
	if de.Reason != "unreachable" {
		t.Errorf("Reason = %q, want unreachable", de.Reason)
	}
	if !errors.Is(err, route.ErrNoRoute) {
		t.Errorf("errors.Is(err, route.ErrNoRoute) = false for %v", err)
	}
	var nr *route.NoRouteError
	if !errors.As(err, &nr) {
		t.Fatalf("errors.As *route.NoRouteError = false for %v", err)
	} else if nr.Src != "a0" || nr.Dst != "b1" {
		t.Errorf("NoRouteError names %s -> %s, want a0 -> b1", nr.Src, nr.Dst)
	}
}

func TestHealthFlapAndReadmission(t *testing.T) {
	// One rail's first network goes down for a window mid-traffic. The
	// detector must kill the rail (epoch bump), traffic must keep flowing
	// over the other rail, and after the window the probation probes must
	// re-admit the dead links under a fresh epoch.
	flapStart := vtime.Time(30 * vtime.Millisecond)
	flapDur := 120 * vtime.Millisecond
	plan := fault.NewPlan(9).Flap("railA1", flapStart, flapDur)
	cfg := healthCfg()
	cfg.StripeK = 2
	w := buildFaulty(t, gatedDualRail(t), nil, plan, cfg)

	const msgs = 12
	payload := func(i int) []byte { return pattern(60_000, byte(i)) }
	w.sim.Spawn("app-send:a0", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			px := w.vc.At("a0").BeginPacking(p, "b0")
			px.Pack(p, payload(i), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
			p.Sleep(20 * vtime.Millisecond)
		}
	})
	var got [msgs][]byte
	w.sim.Spawn("app-recv:b0", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			u := w.vc.At("b0").BeginUnpacking(p)
			got[i] = make([]byte, 60_000)
			u.Unpack(p, got[i], mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		}
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		if !bytes.Equal(got[i], payload(i)) {
			t.Errorf("message %d corrupted", i)
		}
	}
	mon := w.vc.Health()
	if mon.Readmissions() == 0 {
		t.Error("flapped rail was never re-admitted")
	}
	if mon.Epoch() < 3 {
		t.Errorf("epoch = %d after death + readmission, want >= 3", mon.Epoch())
	}
	for _, lh := range mon.Snapshot() {
		if lh.State != health.Up {
			t.Errorf("link %v ended in %v, want up", lh.Link, lh.State)
		}
	}
	if rs := w.vc.StripeStats().RailReadmissions; rs == 0 {
		t.Error("StripeStats.RailReadmissions = 0 after a flap cycle")
	}
}

// TestChaosSoakSelfHealing is the chaos soak: random rails flap one after
// another (windows from the fault DSL) under background packet loss while
// bidirectional striped traffic flows. Afterwards every payload must be
// byte-identical, every flapped rail re-admitted, and the epoch converged —
// no transitions long after the last flap window closed.
func TestChaosSoakSelfHealing(t *testing.T) {
	rails := []string{"railA1", "railB2", "railA2", "railB1"}
	const (
		flapDur = 70 * vtime.Millisecond
		gap     = 130 * vtime.Millisecond
	)
	plan := fault.NewPlan(1234).Drop("*", 0.01)
	start := vtime.Time(40 * vtime.Millisecond)
	var lastEnd vtime.Time
	for _, r := range rails {
		plan.Flap(r, start, flapDur)
		lastEnd = start.Add(flapDur)
		start = start.Add(flapDur + gap)
	}
	cfg := healthCfg()
	cfg.StripeK = 2
	w := buildFaulty(t, gatedDualRail(t), nil, plan, cfg)

	const msgs = 30
	mkPayload := func(dir string, i int) []byte { return pattern(50_000+i*501, byte(i)+dir[0]) }
	for _, pr := range [][2]string{{"a0", "b0"}, {"b0", "a0"}} {
		pr := pr
		got := make([][]byte, msgs)
		w.sim.Spawn("soak-send:"+pr[0], func(p *vtime.Proc) {
			for i := 0; i < msgs; i++ {
				px := w.vc.At(pr[0]).BeginPacking(p, pr[1])
				px.Pack(p, mkPayload(pr[0], i), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
				p.Sleep(18 * vtime.Millisecond)
			}
		})
		w.sim.Spawn("soak-recv:"+pr[1], func(p *vtime.Proc) {
			for i := 0; i < msgs; i++ {
				u := w.vc.At(pr[1]).BeginUnpacking(p)
				got[i] = make([]byte, len(mkPayload(pr[0], i)))
				u.Unpack(p, got[i], mad.SendCheaper, mad.ReceiveCheaper)
				u.EndUnpacking(p)
			}
		})
		t.Cleanup(func() {
			for i := 0; i < msgs; i++ {
				if !bytes.Equal(got[i], mkPayload(pr[0], i)) {
					t.Errorf("soak %s->%s message %d corrupted", pr[0], pr[1], i)
				}
			}
		})
	}
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}

	mon := w.vc.Health()
	// Every link converged back to Up: all flapped rails re-admitted.
	for _, lh := range mon.Snapshot() {
		if lh.State != health.Up {
			t.Errorf("link %v ended in %v, want up", lh.Link, lh.State)
		}
	}
	if mon.Readmissions() < 2 {
		t.Errorf("readmissions = %d over %d flap windows, want >= 2", mon.Readmissions(), len(rails))
	}
	// Epoch convergence: nothing may keep transitioning long after the
	// last flap window closed (probation and damped probes need a bounded
	// tail; a detector that never settles would keep publishing).
	bound := lastEnd.Add(vtime.Second)
	if lt := mon.LastTransition(); lt > bound {
		t.Errorf("last transition at %v, after convergence bound %v (last flap ended %v)",
			lt, bound, lastEnd)
	}
	// The run must have exercised the machinery at all.
	if mon.Probes() == 0 {
		t.Error("soak ran without a single probe")
	}
	for i, tr := range mon.Transitions() {
		t.Logf("transition %2d: %-9v %v -> %v (epoch %d) at %v",
			i, tr.Link, tr.From, tr.To, tr.Epoch, tr.At)
	}
}

// Epoch migration: a message already in flight when its rail dies must
// finish over the new epoch's routes instead of stalling on the old table.
func TestHealthInFlightMigration(t *testing.T) {
	// A large message takes long enough that the flap opens mid-flight.
	plan := fault.NewPlan(77).Flap("railA1", vtime.Time(2*vtime.Millisecond), 150*vtime.Millisecond)
	cfg := healthCfg()
	w := buildFaulty(t, gatedDualRail(t), nil, plan, cfg)
	blocks := []block{{pattern(400_000, 5), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b0", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted across mid-flight migration")
	}
	mon := w.vc.Health()
	if mon.Epoch() < 2 {
		t.Errorf("mid-flight flap never published an epoch (epoch %d)", mon.Epoch())
	}
}

// Suspect links stay routable: background loss alone (no hard failures)
// must not shrink the routable graph or change the epoch.
func TestHealthLossKeepsEpochStable(t *testing.T) {
	plan := fault.NewPlan(42).Drop("*", 0.02)
	w := buildFaulty(t, paperHS(t), nil, plan, healthCfg())
	blocks := []block{{pattern(200_000, 7), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted under loss")
	}
	mon := w.vc.Health()
	if len(mon.DeadEdges()) != 0 {
		t.Errorf("2%% loss buried %d edges", len(mon.DeadEdges()))
	}
}
