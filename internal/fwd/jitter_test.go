package fwd

import (
	"testing"

	"madgo/internal/vtime"
)

// The ARQ's retry timeouts use decorrelated jitter: each next timeout is
// drawn uniformly from [AckTimeout, 3·previous), capped at MaxTimeout. The
// properties that matter: every draw stays inside the policy bounds, the
// draws actually spread (no synchronized doubling), the sequence is
// deterministic for a given node, and different nodes draw different
// sequences (so senders recovering from the same fault window do not
// retransmit in lockstep).
func TestDecorrelatedJitterSpread(t *testing.T) {
	pol := DefaultRetryPolicy()
	draw := func(node string, n int) []vtime.Duration {
		e := &relEngine{pol: pol, rng: seedRelRand(node)}
		out := make([]vtime.Duration, n)
		to := pol.AckTimeout
		for i := range out {
			to = e.nextTimeout(to)
			out[i] = to
		}
		return out
	}

	const n = 200
	a := draw("a0", n)
	distinct := make(map[vtime.Duration]bool)
	for i, d := range a {
		if d < pol.AckTimeout || d > pol.MaxTimeout {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, d, pol.AckTimeout, pol.MaxTimeout)
		}
		distinct[d] = true
	}
	if len(distinct) < n/4 {
		t.Errorf("only %d distinct timeouts in %d draws; jitter is not spreading", len(distinct), n)
	}

	// Deterministic: the same node re-draws the same sequence.
	b := draw("a0", n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across runs: %v vs %v", i, a[i], b[i])
		}
	}

	// Decorrelated across nodes: another node's sequence must diverge.
	c := draw("b0", n)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > n/2 {
		t.Errorf("%d/%d draws identical across nodes; per-node seeding is broken", same, n)
	}
}

// A first-retry timeout below the base would retransmit before the ack can
// possibly arrive; the floor must hold even when the previous timeout was
// degenerate.
func TestJitterFloorsAtAckTimeout(t *testing.T) {
	pol := DefaultRetryPolicy()
	e := &relEngine{pol: pol, rng: seedRelRand("gw")}
	for i := 0; i < 50; i++ {
		if d := e.nextTimeout(0); d < pol.AckTimeout || d > pol.MaxTimeout {
			t.Fatalf("nextTimeout(0) = %v outside [%v, %v]", d, pol.AckTimeout, pol.MaxTimeout)
		}
	}
}
