package fwd

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"madgo/internal/flight"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// Gateway-native multicast. A KindMcast message is a self-described GTM
// packet stream whose header names a destination *set* instead of a single
// rank. The sender computes the (root, member-set) distribution tree over
// the unicast routing table (route.ComputeMulticast) and emits one stream
// per root branch; every gateway on the tree re-partitions the header's
// destination set by its own next hops, rewrites the header per branch, and
// replicates each staged fragment from its one ingress slot onto every
// egress link — so each network edge carries each fragment at most once, and
// the gateway's ingress byte count is independent of the receiver count.
//
// Framing mirrors the compact (eager) GTM: sub-MTU messages travel as one
// [header|payload] transfer with EOM set, larger ones as a header transfer
// followed by MTU-sized fragments with the terminator riding the last
// fragment's EOM flag. There is never a bare-terminator transfer.
//
// Flow control composes per branch: a relaying hop spends one credit per
// egress transfer toward its next gateway, so a slow subscriber
// backpressures only its own branch (until the shared staging ring drains,
// which is the bounded-memory backstop). Streaming mode only — the reliable
// protocol keeps its unicast framing, and collectives fall back to the
// binomial tree there (CanMulticast).

// mcastHeaderFixed is the fixed prefix of the multicast header: source rank
// (u32), tree MTU (u32), message ID (u64) and destination count (u16). The
// destination ranks (u32 each, strictly increasing) follow, then a CRC-32
// (IEEE) of everything before it. The CRC matters here more than on the
// unicast headers: a corrupted destination set silently mis-replicates,
// while a corrupted rank just misroutes one message.
const mcastHeaderFixed = 18

// mcastMaxDests bounds the destination count a decoder accepts, so a
// corrupted count cannot make a gateway allocate unbounded memory.
const mcastMaxDests = 4096

// mcastHeaderLen returns the wire size of a multicast header carrying count
// destinations.
func mcastHeaderLen(count int) int { return mcastHeaderFixed + 4*count + 4 }

// encodeMcastHeader builds the destination-set header. Ranks are encoded in
// strictly increasing order (the canonical form decodeMcastHeader enforces);
// the input is not modified.
func encodeMcastHeader(src mad.Rank, mtu int, id uint64, dests []mad.Rank) []byte {
	if len(dests) == 0 || len(dests) > mcastMaxDests {
		panic(fmt.Sprintf("fwd: mcast header with %d destinations", len(dests)))
	}
	sorted := append([]mad.Rank(nil), dests...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := make([]byte, mcastHeaderLen(len(sorted)))
	binary.LittleEndian.PutUint32(b[0:], uint32(src))
	binary.LittleEndian.PutUint32(b[4:], uint32(mtu))
	binary.LittleEndian.PutUint64(b[8:], id)
	binary.LittleEndian.PutUint16(b[16:], uint16(len(sorted)))
	for i, d := range sorted {
		binary.LittleEndian.PutUint32(b[mcastHeaderFixed+4*i:], uint32(d))
	}
	crc := crc32.ChecksumIEEE(b[:len(b)-4])
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc)
	return b
}

// decodeMcastHeader parses a destination-set header. Like the other wire
// codecs it never panics on malformed input (the fuzz target pins this): ok
// is false on a short or oversized buffer, a zero MTU, an out-of-range
// count, a non-canonical (unsorted or duplicated) destination list, or a CRC
// mismatch.
func decodeMcastHeader(b []byte) (src mad.Rank, mtu int, id uint64, dests []mad.Rank, ok bool) {
	if len(b) < mcastHeaderLen(1) {
		return 0, 0, 0, nil, false
	}
	count := int(binary.LittleEndian.Uint16(b[16:]))
	if count < 1 || count > mcastMaxDests || len(b) != mcastHeaderLen(count) {
		return 0, 0, 0, nil, false
	}
	if crc32.ChecksumIEEE(b[:len(b)-4]) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return 0, 0, 0, nil, false
	}
	mtu = int(binary.LittleEndian.Uint32(b[4:]))
	if mtu <= 0 {
		return 0, 0, 0, nil, false
	}
	dests = make([]mad.Rank, count)
	for i := range dests {
		dests[i] = mad.Rank(binary.LittleEndian.Uint32(b[mcastHeaderFixed+4*i:]))
		if i > 0 && dests[i] <= dests[i-1] {
			return 0, 0, 0, nil, false
		}
	}
	return mad.Rank(binary.LittleEndian.Uint32(b[0:])),
		mtu,
		binary.LittleEndian.Uint64(b[8:]),
		dests,
		true
}

// mcastHdrDesc types a multicast header transfer: cheap to send, express on
// receive (the relay must read it before deciding anything else).
func mcastHdrDesc(n int) mad.BlockDesc {
	return mad.BlockDesc{Size: n, S: mad.SendCheaper, R: mad.ReceiveExpress}
}

// mcastPlan is one cached (root, member-set) distribution plan: the tree and
// the tree MTU (minimum path MTU over every destination, so one fragment
// size fits every subtree — §2.3's connexion-MTU rule extended to trees).
type mcastPlan struct {
	tree *route.McastTree
	mtu  int
}

// mcastState is the channel-wide multicast state: the plan cache and the
// counters behind McastStats. Always allocated; streaming-only paths guard
// on CanMulticast.
type mcastState struct {
	plans map[string]*mcastPlan

	messages        int64
	relays          int64
	branches        int64
	replicatedPkts  int64
	replicatedBytes int64
	localDeliveries int64
	cacheHits       int64
	recomputes      int64
}

// McastStats are the multicast counters of one virtual channel. All zero
// when no multicast was ever sent (or in reliable mode, where collectives
// fall back to unicast trees).
type McastStats struct {
	// Messages counts multicast messages entered at roots.
	Messages int64 `json:"messages"`
	// Relays counts gateway replication operations (one per message per
	// gateway on its tree).
	Relays int64 `json:"relays"`
	// Branches counts egress branches fanned out, at roots and gateways.
	Branches int64 `json:"branches"`
	// ReplicatedPackets and ReplicatedBytes count gateway egress transfers
	// carrying payload; the gateway's *ingress* side is counted by the
	// ordinary relayed-packet counters and stays independent of the
	// receiver count.
	ReplicatedPackets int64 `json:"replicated_packets"`
	ReplicatedBytes   int64 `json:"replicated_bytes"`
	// LocalDeliveries counts messages a gateway delivered to its own node
	// while relaying (the gateway is itself a tree destination).
	LocalDeliveries int64 `json:"local_deliveries"`
	// TreeCacheHits and TreeRecomputes describe the plan cache; a
	// recompute happens on first use of a (root, member-set) pair and
	// whenever the routing epoch moved since the plan was built.
	TreeCacheHits  int64 `json:"tree_cache_hits"`
	TreeRecomputes int64 `json:"tree_recomputes"`
}

// McastStats returns the channel's multicast counters.
func (vc *VirtualChannel) McastStats() McastStats {
	st := vc.mcastst
	if st == nil {
		return McastStats{}
	}
	return McastStats{
		Messages: st.messages, Relays: st.relays, Branches: st.branches,
		ReplicatedPackets: st.replicatedPkts, ReplicatedBytes: st.replicatedBytes,
		LocalDeliveries: st.localDeliveries,
		TreeCacheHits:   st.cacheHits, TreeRecomputes: st.recomputes,
	}
}

// CanMulticast reports whether BeginMulticast is available: the streaming
// GTM only. The reliable datagram protocol keeps its own unicast framing,
// so collectives fall back to point-to-point trees there.
func (vc *VirtualChannel) CanMulticast() bool { return !vc.cfg.Reliable }

// mcastPlanFor returns the cached distribution plan of one (root, dests)
// pair, recomputing it on first use and whenever the routing table's epoch
// moved past the cached tree's.
func (vc *VirtualChannel) mcastPlanFor(root string, dests []string) *mcastPlan {
	st := vc.mcastst
	key := root + "\x00" + strings.Join(dests, "\x00")
	if pl, ok := st.plans[key]; ok && pl.tree.Epoch == vc.tbl.Epoch {
		st.cacheHits++
		return pl
	}
	tree, err := vc.tbl.ComputeMulticast(root, dests)
	if err != nil {
		panic(fmt.Sprintf("fwd: %v", err))
	}
	mtu := vc.cfg.MTU
	for _, d := range tree.Dests {
		if m := vc.PathMTU(root, d); m < mtu {
			mtu = m
		}
	}
	pl := &mcastPlan{tree: tree, mtu: mtu}
	st.plans[key] = pl
	st.recomputes++
	return pl
}

// mcastBlock is one application block buffered by a multicast packing.
type mcastBlock struct {
	data []byte
	s    mad.SendMode
	r    mad.RecvMode
}

// mcastPacking is the sender side: blocks are buffered (multicast framing
// needs the total size to pick compact vs streaming, and every branch
// re-reads the same blocks), then EndPacking emits one stream per root
// branch of the distribution tree.
type mcastPacking struct {
	vc    *VirtualChannel
	node  *mad.Node
	dests []string // sorted, deduplicated, root excluded
	id    uint64
	total int
	blks  []mcastBlock
}

// BeginMulticast starts a message to every named destination at once; the
// message is delivered byte-identically to each, replicated inside the
// network by the gateways of the distribution tree rather than by repeated
// unicast sends. Duplicate destinations and the sender itself are ignored;
// at least one other node must remain. Streaming mode only (CanMulticast).
func (e *Endpoint) BeginMulticast(p *vtime.Proc, dests ...string) *Packing {
	vc := e.vc
	if !vc.CanMulticast() {
		panic("fwd: BeginMulticast requires streaming mode (Reliable is set)")
	}
	set := make(map[string]bool, len(dests))
	for _, d := range dests {
		if _, ok := vc.nodes[d]; !ok {
			panic("fwd: unknown multicast destination " + d)
		}
		if d != e.node.Name {
			set[d] = true
		}
	}
	if len(set) == 0 {
		panic("fwd: multicast without destinations on " + e.node.Name)
	}
	ds := make([]string, 0, len(set))
	for d := range set {
		ds = append(ds, d)
	}
	sort.Strings(ds)
	x := &mcastPacking{vc: vc, node: e.node, dests: ds, id: vc.nextMsgID()}
	vc.metrics().RecordHop(x.id, p.Now(), e.node.Name, "pack",
		fmt.Sprintf("mcast -> {%s}", strings.Join(ds, ",")), 0)
	return &Packing{mcast: x, id: x.id}
}

func (x *mcastPacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	if s == mad.SendSafer {
		// Same contract as the GTM: SendSafer needs an immediate snapshot;
		// all other modes hold the block by reference until EndPacking.
		t0 := p.Now()
		x.node.Host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
		x.vc.flightRing(x.node.Name).Record(flight.KindPack, p.Now(), vtime.Since(p.Now(), t0), x.id, len(data), "")
	}
	x.blks = append(x.blks, mcastBlock{data: data, s: s, r: r})
	x.total += len(data)
}

func (x *mcastPacking) end(p *vtime.Proc) {
	vc := x.vc
	st := vc.mcastst
	pl := vc.mcastPlanFor(x.node.Name, x.dests)
	st.messages++
	m := vc.metrics()
	nodeLabels := obs.Labels{"node": x.node.Name}
	m.Add("madgo_mcast_messages_total", nodeLabels, 1)
	for _, b := range pl.tree.Branches[x.node.Name] {
		x.sendBranch(p, b, pl.mtu)
		st.branches++
		m.Add("madgo_mcast_branches_total", nodeLabels, 1)
	}
}

// blockDescs returns the wire descriptors of the buffered blocks with
// zero-size blocks elided — a zero-size block produces no fragment in the
// streaming framing, so the compact framing must not describe one either.
func (x *mcastPacking) blockDescs() []mad.BlockDesc {
	var out []mad.BlockDesc
	for _, b := range x.blks {
		if len(b.data) > 0 {
			out = append(out, mad.BlockDesc{Size: len(b.data), S: b.s, R: b.r})
		}
	}
	return out
}

// sendBranch emits the message once toward one root branch: compact when the
// whole payload shares a transfer with the header, streaming otherwise. A
// relaying branch travels on the network's special channel toward the next
// gateway and spends one flow credit per transfer; a leaf branch goes
// straight to its sole destination on the regular channel (a plain receiver
// grants no credits back, so none are spent toward it).
func (x *mcastPacking) sendBranch(p *vtime.Proc, b route.McastBranch, mtu int) {
	vc := x.vc
	var ch *mad.Channel
	spendTo := ""
	if b.Relays() {
		ch = vc.special[b.Hop.Network]
		if ch == nil {
			panic("fwd: multicast relay branch without special channel on " + b.Hop.Network)
		}
		spendTo = b.Hop.To
	} else {
		ch = vc.regular[b.Hop.Network]
	}
	link := ch.Link(x.node.Rank, vc.NodeRank(b.Hop.To))
	ranks := make([]mad.Rank, len(b.Dests))
	for i, d := range b.Dests {
		ranks[i] = vc.NodeRank(d)
	}
	hdr := encodeMcastHeader(x.node.Rank, mtu, x.id, ranks)
	net := b.Hop.Network
	fr := vc.flightRing(x.node.Name)

	link.Acquire(p)
	defer link.Release(p)
	fr.Record(flight.KindReplicate, p.Now(), 0, x.id, x.total, net)
	if x.total <= eagerInlineMax && len(hdr)+x.total <= mtu {
		// Compact: header and every block in one transfer, EOM included.
		// Building the contiguous frame copies the payload once per branch.
		frame := make([]byte, len(hdr)+x.total)
		off := copy(frame, hdr)
		for _, blk := range x.blks {
			off += copy(frame[off:], blk.data)
		}
		if x.total > 0 {
			x.node.Host.Memcpy(p, x.total)
		}
		if spendTo != "" {
			vc.flowSpend(p, spendTo, x.node.Name, x.id)
		}
		link.Send(p, mad.TxMeta{SOM: true, EOM: true, Kind: mad.KindMcast,
			Blocks: append([]mad.BlockDesc{mcastHdrDesc(len(hdr))}, x.blockDescs()...)}, frame)
		vc.metrics().RecordHop(x.id, p.Now(), x.node.Name, "hop",
			fmt.Sprintf("%s -> %s via %s (mcast compact, %d dests)", x.node.Name, b.Hop.To, net, len(b.Dests)), x.total)
		return
	}
	// Streaming: header first, then MTU-sized fragments; the terminator
	// rides the last fragment's EOM flag (never a bare transfer).
	if spendTo != "" {
		vc.flowSpend(p, spendTo, x.node.Name, x.id)
	}
	link.Send(p, mad.TxMeta{SOM: true, Kind: mad.KindMcast,
		Blocks: []mad.BlockDesc{mcastHdrDesc(len(hdr))}}, hdr)
	frags := 0
	for _, blk := range x.blks {
		if len(blk.data) > 0 {
			mad.ForEachFragment(len(blk.data), mtu, func(int, int) { frags++ })
		}
	}
	for _, blk := range x.blks {
		if len(blk.data) == 0 {
			// Zero-size blocks produce no wire fragment, mirroring the
			// compact framing's elided descriptors.
			continue
		}
		blk := blk
		mad.ForEachFragment(len(blk.data), mtu, func(off, n int) {
			frags--
			if spendTo != "" {
				vc.flowSpend(p, spendTo, x.node.Name, x.id)
			}
			link.Send(p, mad.TxMeta{EOM: frags == 0, Kind: mad.KindMcast,
				Blocks: []mad.BlockDesc{{Size: n, S: blk.s, R: blk.r}}}, blk.data[off:off+n])
		})
	}
	vc.metrics().RecordHop(x.id, p.Now(), x.node.Name, "hop",
		fmt.Sprintf("%s -> %s via %s (mcast, %d dests)", x.node.Name, b.Hop.To, net, len(b.Dests)), x.total)
}

// mcastLocal is a fully captured multicast message a relaying gateway
// delivers to its own node: the gateway copies each staged fragment out of
// the shared ring (or retains the compact frame's slot) and funnels the
// result through the node's merged arrival queue like any other incoming.
type mcastLocal struct {
	from  mad.Rank
	id    uint64
	mtu   int
	frags [][]byte
	descs []mad.BlockDesc
}

// mcastUnpacking is the receiver side, serving three arrival shapes through
// one walk: a compact wire frame (payload parked from the first transfer), a
// streaming wire message (fragments received in place), and a gateway-local
// capture (fragments pre-copied, no link at all).
type mcastUnpacking struct {
	vc   *VirtualChannel
	node *mad.Node
	link *mad.Link // nil for a gateway-local capture
	mtu  int
	from mad.Rank
	id   uint64
	got  int

	frags   [][]byte // pre-received fragments (compact payload or local capture)
	descs   []mad.BlockDesc
	next    int
	eomSeen bool
}

// rankInSet reports membership of r in a sorted rank set.
func rankInSet(r mad.Rank, set []mad.Rank) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= r })
	return i < len(set) && set[i] == r
}

func newMcastUnpacking(p *vtime.Proc, vc *VirtualChannel, node *mad.Node, a *mad.Arrival) *mcastUnpacking {
	link := a.Link
	link.AcquireRecv(p)
	meta, slot := link.Recv(p)
	if !meta.SOM || meta.Kind != mad.KindMcast || len(meta.Blocks) < 1 ||
		meta.Blocks[0].Size > len(slot) {
		panic("fwd: mcast unpacking of a message without a multicast header")
	}
	hsize := meta.Blocks[0].Size
	src, mtu, id, dests, ok := decodeMcastHeader(slot[:hsize])
	if !ok {
		panic("fwd: malformed multicast header delivered to " + node.Name)
	}
	if !rankInSet(node.Rank, dests) {
		panic(fmt.Sprintf("fwd: misrouted multicast: %s is not in the destination set", node.Name))
	}
	g := &mcastUnpacking{vc: vc, node: node, link: link, mtu: mtu, from: src, id: id, eomSeen: meta.EOM}
	payload := slot[hsize:]
	if len(meta.Blocks) > 1 {
		// Compact frame: the remaining descriptors slice the payload.
		if !meta.EOM {
			panic("fwd: protocol error: compact multicast frame without its terminator")
		}
		off := 0
		for _, d := range meta.Blocks[1:] {
			if off+d.Size > len(payload) {
				panic("fwd: protocol error: multicast fragment descriptors overrun the frame")
			}
			g.frags = append(g.frags, payload[off:off+d.Size])
			g.descs = append(g.descs, d)
			off += d.Size
		}
		if off != len(payload) {
			panic("fwd: protocol error: multicast frame with trailing bytes")
		}
	} else if len(payload) != 0 {
		panic("fwd: protocol error: header-only multicast transfer with trailing bytes")
	}
	return g
}

func newMcastLocalUnpacking(vc *VirtualChannel, node *mad.Node, ml *mcastLocal) *mcastUnpacking {
	return &mcastUnpacking{vc: vc, node: node, mtu: ml.mtu, from: ml.from, id: ml.id,
		frags: ml.frags, descs: ml.descs, eomSeen: true}
}

func (g *mcastUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	mad.ForEachFragment(len(dst), g.mtu, func(off, n int) {
		if n == 0 {
			// Zero-size blocks never reach the wire (the sender elides
			// their descriptors), so there is nothing to consume.
			return
		}
		if g.next < len(g.frags) {
			d := g.descs[g.next]
			if d.S != s || d.R != r || d.Size != n {
				panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, n, s, r))
			}
			// The fragment landed glued to the header (or was captured into
			// gateway memory); handing it over is one real copy.
			g.node.Host.Memcpy(p, n)
			copy(dst[off:off+n], g.frags[g.next])
			g.next++
			g.got += n
			return
		}
		if g.link == nil || g.eomSeen {
			panic("fwd: protocol error: blocks expected after the multicast terminator")
		}
		meta, got := g.link.RecvInto(p, dst[off:off+n])
		if len(meta.Blocks) != 1 {
			panic("fwd: protocol error: multicast packet without exactly one block")
		}
		d := meta.Blocks[0]
		if d.S != s || d.R != r || d.Size != n || got != n {
			panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, n, s, r))
		}
		g.eomSeen = meta.EOM
		g.got += got
	})
}

func (g *mcastUnpacking) end(p *vtime.Proc) {
	if g.next != len(g.frags) {
		panic("fwd: protocol error: multicast message ended with unconsumed fragments")
	}
	if !g.eomSeen {
		panic("fwd: protocol error: multicast message ended before its terminator")
	}
	if g.link != nil {
		g.link.ReleaseRecv(p)
	}
	g.vc.metrics().RecordHop(g.id, p.Now(), g.node.Name, "deliver",
		"reassembled at "+g.node.Name, g.got)
}

// mcastEgressBranch is one egress decision a relaying gateway made for the
// current message: the rewritten header, the link, and whether the next hop
// relays further (and therefore takes flow credits).
type mcastEgressBranch struct {
	hop    route.Hop
	out    *mad.Link
	hdr    []byte
	nextGW string // non-empty when the branch relays beyond its next hop
	q      *vsync.Chan[*mcastPkt]
	proc   *vtime.Proc
}

// mcastPkt is one staged fragment shared by every branch sender of a
// streaming multicast relay; refs counts the branch sends still owing, and
// the last one recycles the ring buffer (and returns the ingress credit).
type mcastPkt struct {
	data []byte
	desc []mad.BlockDesc
	buf  []byte
	eom  bool
	refs int
}

// mcastSplit partitions a destination set at this gateway: the local flag if
// the gateway itself is a destination, plus one egress branch per distinct
// next hop, sorted by (network, next hop) like the planner's — by
// construction the two agree, since both follow the same unicast table.
func (g *Gateway) mcastSplit(src mad.Rank, mtu int, msgID uint64, dests []mad.Rank) (branches []*mcastEgressBranch, local bool) {
	vc := g.vc
	type grp struct {
		hop   route.Hop
		ranks []mad.Rank
		past  bool // some destination lies beyond the next hop
	}
	var groups []*grp
	byHop := make(map[route.Hop]*grp)
	for _, d := range dests {
		name := vc.sess.Node(d).Name
		if name == g.name {
			local = true
			continue
		}
		hop, ok := vc.tbl.NextHop(g.name, name)
		if !ok {
			panic(fmt.Sprintf("fwd: gateway %s has no route to multicast destination %s", g.name, name))
		}
		gr := byHop[hop]
		if gr == nil {
			gr = &grp{hop: hop}
			byHop[hop] = gr
			groups = append(groups, gr)
		}
		gr.ranks = append(gr.ranks, d)
		if name != hop.To {
			gr.past = true
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].hop.Network != groups[j].hop.Network {
			return groups[i].hop.Network < groups[j].hop.Network
		}
		return groups[i].hop.To < groups[j].hop.To
	})
	for _, gr := range groups {
		relays := gr.past || len(gr.ranks) > 1
		var ch *mad.Channel
		nextGW := ""
		if relays {
			ch = vc.special[gr.hop.Network]
			if ch == nil {
				panic("fwd: multicast relay branch without special channel on " + gr.hop.Network)
			}
			nextGW = gr.hop.To
		} else {
			ch = vc.regular[gr.hop.Network]
		}
		branches = append(branches, &mcastEgressBranch{
			hop:    gr.hop,
			out:    ch.Link(g.node.Rank, vc.NodeRank(gr.hop.To)),
			hdr:    encodeMcastHeader(src, mtu, msgID, gr.ranks),
			nextGW: nextGW,
		})
	}
	return branches, local
}

// forwardMcast relays one multicast message: read the destination-set header
// off the ingress slot, re-partition the set by this gateway's next hops,
// and replicate — one ingress receive, N egress sends. A compact frame is
// rebuilt per branch ([branch header|payload]) and handed to the per-egress
// async sender daemons like any compact relay; a streaming message runs the
// staged pipeline with refcounted ring buffers, each fragment received once
// and sent by one spawned sender per branch. Returns the ingress payload
// bytes relayed (the DRR charge), which is independent of the branch count.
func (g *Gateway) forwardMcast(p *vtime.Proc, a *mad.Arrival) int64 {
	vc := g.vc
	in := a.Link
	in.AcquireRecv(p)
	defer in.ReleaseRecv(p)
	bytesBefore := g.bytes

	meta, slot := in.Recv(p)
	if !meta.SOM || meta.Kind != mad.KindMcast || len(meta.Blocks) < 1 ||
		meta.Blocks[0].Size > len(slot) {
		panic("fwd: malformed multicast header at gateway " + g.name)
	}
	hsize := meta.Blocks[0].Size
	src, mtu, msgID, dests, ok := decodeMcastHeader(slot[:hsize])
	if !ok {
		panic("fwd: malformed multicast header at gateway " + g.name)
	}
	// The header transfer consumed one upstream credit; it is out of the
	// ingress slot now, so the credit goes straight back.
	up := in.Src.Name
	vc.flowGrant(g.name, up, 1)

	st := vc.mcastst
	m := vc.metrics()
	fr := vc.flightRing(g.name)
	gwLabels := obs.Labels{"gateway": g.name}
	nodeLabels := obs.Labels{"node": g.name}
	inNet := in.Channel.Network().Name
	branches, local := g.mcastSplit(src, mtu, msgID, dests)
	st.relays++
	m.Add("madgo_mcast_relays_total", gwLabels, 1)
	st.branches += int64(len(branches))
	m.Add("madgo_mcast_branches_total", nodeLabels, float64(len(branches)))
	m.RecordHop(msgID, p.Now(), g.name, "relay",
		fmt.Sprintf("mcast %s -> %d branches (%d dests)", inNet, len(branches), len(dests)), 0)
	g.messages++

	if meta.EOM {
		// Compact frame: fully in gateway memory. Rebuild [header|payload]
		// per branch and queue each on its egress daemon; the polling
		// thread is free as soon as the copies are staged.
		payload := slot[hsize:]
		pdescs := meta.Blocks[1:]
		if n := len(payload); n > 0 {
			g.packets++
			g.bytes += int64(n)
			m.Add("madgo_gateway_relayed_packets_total", gwLabels, 1)
			m.Add("madgo_gateway_relayed_bytes_total", gwLabels, float64(n))
		}
		for _, b := range branches {
			frame := make([]byte, len(b.hdr)+len(payload))
			off := copy(frame, b.hdr)
			copy(frame[off:], payload)
			if len(payload) > 0 {
				g.node.Host.Memcpy(p, len(payload))
			}
			st.replicatedPkts++
			st.replicatedBytes += int64(len(payload))
			m.Add("madgo_mcast_replicated_packets_total", gwLabels, 1)
			m.Add("madgo_mcast_replicated_bytes_total", gwLabels, float64(len(payload)))
			fr.Record(flight.KindReplicate, p.Now(), 0, msgID, len(payload), b.hop.Network)
			g.sendEgress(p, b.out, gwEgressTx{
				meta: mad.TxMeta{SOM: true, EOM: true, Kind: mad.KindMcast,
					Blocks: append([]mad.BlockDesc{mcastHdrDesc(len(b.hdr))}, pdescs...)},
				data: frame, msgID: msgID, nextGW: b.nextGW,
			})
		}
		if local {
			g.mcastDeliverLocal(p, &mcastLocal{from: src, id: msgID, mtu: mtu,
				frags: splitByDescs(payload, pdescs), descs: pdescs})
		}
		return g.bytes - bytesBefore
	}

	// Streaming message: staged pipeline with refcounted replication. One
	// sender per branch streams the shared fragments; the last branch to
	// send a fragment recycles its buffer and returns the ingress credit.
	g.mcastPipeline(p, in, branches, local, src, mtu, msgID, up)
	return g.bytes - bytesBefore
}

// splitByDescs slices a contiguous compact payload back into per-block
// fragments.
func splitByDescs(payload []byte, descs []mad.BlockDesc) [][]byte {
	frags := make([][]byte, 0, len(descs))
	off := 0
	for _, d := range descs {
		if off+d.Size > len(payload) {
			panic("fwd: protocol error: multicast fragment descriptors overrun the frame")
		}
		frags = append(frags, payload[off:off+d.Size])
		off += d.Size
	}
	if off != len(payload) {
		panic("fwd: protocol error: multicast frame with trailing bytes")
	}
	return frags
}

// mcastDeliverLocal hands a captured multicast message to this gateway's own
// node through its merged arrival queue (so a BeginUnpacking blocked there
// wakes up like for any other arrival).
func (g *Gateway) mcastDeliverLocal(p *vtime.Proc, ml *mcastLocal) {
	st := g.vc.mcastst
	st.localDeliveries++
	g.vc.metrics().Add("madgo_mcast_local_deliveries_total", obs.Labels{"node": g.name}, 1)
	g.vc.merged[g.node.Rank].Send(p, incoming{mcast: ml})
}

// mcastPipeline is the streaming replication loop: the relay thread receives
// each fragment once into a ring buffer and every branch sender retransmits
// it, with the ring's free list bounding how far ingress runs ahead of the
// slowest branch. Buffers are plain pool buffers in every election mode — a
// replicated fragment leaves on several egress networks at once, so no
// single egress driver's static buffers (nor the one ingress slot) can back
// it.
func (g *Gateway) mcastPipeline(p *vtime.Proc, in *mad.Link, branches []*mcastEgressBranch, local bool, src mad.Rank, mtu int, msgID uint64, up string) {
	vc := g.vc
	cfg := vc.cfg
	tr := cfg.Tracer
	m := vc.metrics()
	fr := vc.flightRing(g.name)
	st := vc.mcastst
	gwLabels := obs.Labels{"gateway": g.name}
	host := g.node.Host
	inNet := in.Channel.Network().Name
	recvActor := fmt.Sprintf("%s:recv:%s", g.name, inNet)
	r := g.ring(inNet)
	for i := 0; i < cfg.PipelineDepth; i++ {
		r.free.TrySend(r.pool.get(mtu))
	}
	sim := vc.sess.Platform.Sim

	capture := &mcastLocal{from: src, id: msgID, mtu: mtu}
	recycle := func(sp *vtime.Proc, pkt *mcastPkt) {
		pkt.refs--
		if pkt.refs > 0 {
			return
		}
		r.free.Send(sp, pkt.buf)
		// The ingress transfer behind this buffer has drained through
		// every branch — its credit goes back to the sender.
		vc.flowGrant(g.name, up, 1)
	}

	for _, b := range branches {
		b := b
		outNet := b.hop.Network
		b.q = vsync.NewChan[*mcastPkt](fmt.Sprintf("gwmq:%s>%s", g.name, b.hop.To), cfg.PipelineDepth)
		sendActor := fmt.Sprintf("%s:send:%s", g.name, outNet)
		b.proc = sim.Spawn(fmt.Sprintf("gwmsend:%s>%s", g.name, b.hop.To), func(sp *vtime.Proc) {
			g.fenceEgress(sp, b.out)
			b.out.Acquire(sp)
			defer b.out.Release(sp)
			if b.nextGW != "" {
				vc.flowSpend(sp, b.nextGW, g.name, msgID)
			}
			b.out.Send(sp, mad.TxMeta{SOM: true, Kind: mad.KindMcast,
				Blocks: []mad.BlockDesc{mcastHdrDesc(len(b.hdr))}}, b.hdr)
			for {
				pkt, _ := b.q.Recv(sp)
				if b.nextGW != "" {
					vc.flowSpend(sp, b.nextGW, g.name, msgID)
				}
				t0 := sp.Now()
				b.out.Send(sp, mad.TxMeta{Kind: mad.KindMcast, EOM: pkt.eom, Blocks: pkt.desc}, pkt.data)
				tr.Record(sendActor, "send", len(pkt.data), t0, sp.Now())
				fr.Record(flight.KindReplicate, sp.Now(), vtime.Since(sp.Now(), t0), msgID, len(pkt.data), outNet)
				st.replicatedPkts++
				st.replicatedBytes += int64(len(pkt.data))
				m.Add("madgo_mcast_replicated_packets_total", gwLabels, 1)
				m.Add("madgo_mcast_replicated_bytes_total", gwLabels, float64(len(pkt.data)))
				t0 = sp.Now()
				sp.Sleep(host.CPU.SwapOverhead)
				tr.Record(sendActor, "swap", 0, t0, sp.Now())
				m.ObserveDuration("madgo_gateway_swap_seconds", gwLabels, vtime.Since(sp.Now(), t0))
				eom := pkt.eom
				recycle(sp, pkt)
				if eom {
					return
				}
			}
		})
	}

	for {
		t0 := p.Now()
		buf, _ := r.free.Recv(p)
		if wait := vtime.Since(p.Now(), t0); wait > 0 {
			g.stalls++
			tr.Record(recvActor, "stall", 0, t0, p.Now())
			m.ObserveDuration("madgo_gateway_stall_seconds", gwLabels, wait)
			fr.Record(flight.KindStall, p.Now(), wait, msgID, 0, inNet)
		}
		t0 = p.Now()
		meta, n := in.RecvInto(p, buf)
		if len(meta.Blocks) == 0 {
			panic("fwd: protocol error: bare terminator on a multicast stream at " + g.name)
		}
		data := buf[:n]
		tr.Record(recvActor, "recv", n, t0, p.Now())
		fr.Record(flight.KindRecv, p.Now(), vtime.Since(p.Now(), t0), msgID, n, inNet)
		g.packets++
		g.bytes += int64(n)
		m.Add("madgo_gateway_relayed_packets_total", gwLabels, 1)
		m.Add("madgo_gateway_relayed_bytes_total", gwLabels, float64(n))
		t0 = p.Now()
		p.Sleep(host.CPU.SwapOverhead)
		tr.Record(recvActor, "swap", 0, t0, p.Now())
		m.ObserveDuration("madgo_gateway_swap_seconds", gwLabels, vtime.Since(p.Now(), t0))
		if local {
			// The ring buffer is recycled by the branch senders; the local
			// copy is the gateway-member's delivery cost.
			host.Memcpy(p, n)
			capture.frags = append(capture.frags, append([]byte(nil), data...))
			capture.descs = append(capture.descs, meta.Blocks[0])
		}
		pkt := &mcastPkt{data: data, desc: meta.Blocks, buf: buf, eom: meta.EOM, refs: len(branches)}
		if len(branches) == 0 {
			// Defensive: a frame whose every remaining destination is this
			// node. The planner never emits one (a lone local destination
			// travels the regular channel), but a recycled buffer and a
			// returned credit keep even that shape live.
			pkt.refs = 1
			recycle(p, pkt)
		} else {
			for _, b := range branches {
				b.q.Send(p, pkt)
			}
		}
		if meta.EOM {
			break
		}
	}
	for _, b := range branches {
		p.Join(b.proc)
	}
	// Drain the ring back into the pool so the next message restocks
	// cleanly whatever its mode.
	for {
		b, ok := r.free.TryRecv()
		if !ok {
			break
		}
		r.pool.put(b)
	}
	if local {
		g.mcastDeliverLocal(p, capture)
	}
}
