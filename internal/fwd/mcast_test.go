package fwd_test

import (
	"bytes"
	"testing"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// mcastChain is the 2-gateway chain the b1 benchmark uses: a root cluster,
// a core network with its own members, and a leaf cluster behind a second
// gateway.
func mcastChain(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("edge", "sci").
		Network("core", "myrinet").
		Network("leaf", "sci").
		Node("a0", "edge").Node("a1", "edge").
		Node("gw1", "edge", "core").
		Node("c0", "core").Node("c1", "core").
		Node("gw2", "core", "leaf").
		Node("l0", "leaf").Node("l1", "leaf").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// mcastSendRecv multicasts one block list from src to dests and returns the
// per-destination received blocks.
func mcastSendRecv(t *testing.T, w *world, src string, dests []string, blocks []block) map[string][][]byte {
	t.Helper()
	w.sim.Spawn("app-mcast:"+src, func(p *vtime.Proc) {
		px := w.vc.At(src).BeginMulticast(p, dests...)
		for _, b := range blocks {
			px.Pack(p, b.data, b.s, b.r)
		}
		px.EndPacking(p)
	})
	got := make(map[string][][]byte, len(dests))
	for _, d := range dests {
		d := d
		bufs := make([][]byte, len(blocks))
		got[d] = bufs
		w.sim.Spawn("app-recv:"+d, func(p *vtime.Proc) {
			u := w.vc.At(d).BeginUnpacking(p)
			if !u.Forwarded() && d != "gw1" {
				t.Errorf("%s: multicast not marked forwarded", d)
			}
			if u.From() != w.vc.NodeRank(src) {
				t.Errorf("%s: From() = %d, want rank of %s", d, u.From(), src)
			}
			for i, b := range blocks {
				bufs[i] = make([]byte, len(b.data))
				u.Unpack(p, bufs[i], b.s, b.r)
			}
			u.EndUnpacking(p)
		})
	}
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

func checkIdentical(t *testing.T, got map[string][][]byte, blocks []block) {
	t.Helper()
	for d, bufs := range got {
		for i := range blocks {
			if !bytes.Equal(bufs[i], blocks[i].data) {
				t.Errorf("%s: block %d corrupted (%d bytes)", d, i, len(blocks[i].data))
			}
		}
	}
}

func TestMulticastCompactAcrossChain(t *testing.T) {
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	blocks := []block{
		{pattern(4, 1), mad.SendCheaper, mad.ReceiveExpress},
		{pattern(1000, 2), mad.SendCheaper, mad.ReceiveCheaper},
	}
	dests := []string{"a1", "c0", "c1", "l0", "l1"}
	got := mcastSendRecv(t, w, "a0", dests, blocks)
	checkIdentical(t, got, blocks)

	st := w.vc.McastStats()
	if st.Messages != 1 {
		t.Errorf("Messages = %d, want 1", st.Messages)
	}
	// gw1 and gw2 each replicate once.
	if st.Relays != 2 {
		t.Errorf("Relays = %d, want 2", st.Relays)
	}
	// Root 2 branches (a1 direct + chain), gw1 3 (c0, c1, gw2 subtree),
	// gw2 2 (l0, l1).
	if st.Branches != 7 {
		t.Errorf("Branches = %d, want 7", st.Branches)
	}
	if st.TreeRecomputes != 1 || st.TreeCacheHits != 0 {
		t.Errorf("plan cache = %d recomputes / %d hits", st.TreeRecomputes, st.TreeCacheHits)
	}
}

func TestMulticastStreamingAcrossChain(t *testing.T) {
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	blocks := []block{{pattern(200_000, 3), mad.SendCheaper, mad.ReceiveCheaper}}
	dests := []string{"c0", "l0", "l1"}
	got := mcastSendRecv(t, w, "a0", dests, blocks)
	checkIdentical(t, got, blocks)

	// Each gateway receives the payload exactly once regardless of how many
	// receivers sit behind it.
	for _, gw := range []string{"gw1", "gw2"} {
		if b := w.vc.Gateway(gw).Bytes(); b != 200_000 {
			t.Errorf("%s ingress bytes = %d, want 200000", gw, b)
		}
	}
	st := w.vc.McastStats()
	// gw1 sends the stream twice (c0, gw2), gw2 twice (l0, l1): 4 copies of
	// the payload leave gateway egress links in total.
	if st.ReplicatedBytes != 4*200_000 {
		t.Errorf("ReplicatedBytes = %d, want %d", st.ReplicatedBytes, 4*200_000)
	}
}

func TestMulticastMultiBlockFlags(t *testing.T) {
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	blocks := []block{
		{pattern(4, 1), mad.SendCheaper, mad.ReceiveExpress},
		{pattern(90_000, 2), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(100, 3), mad.SendSafer, mad.ReceiveExpress},
		{pattern(0, 4), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(40_000, 5), mad.SendLater, mad.ReceiveCheaper},
	}
	got := mcastSendRecv(t, w, "a1", []string{"a0", "c1", "l1"}, blocks)
	checkIdentical(t, got, blocks)
}

func TestMulticastEmptyMessage(t *testing.T) {
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	blocks := []block{{pattern(0, 1), mad.SendCheaper, mad.ReceiveCheaper}}
	got := mcastSendRecv(t, w, "a0", []string{"l0", "l1"}, blocks)
	checkIdentical(t, got, blocks)
}

func TestMulticastDeliversToRelayingGateway(t *testing.T) {
	// A gateway that is both a destination and a branch point captures the
	// stream locally while replicating it downstream.
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	for _, size := range []int{512, 150_000} {
		blocks := []block{{pattern(size, 7), mad.SendCheaper, mad.ReceiveCheaper}}
		got := mcastSendRecv(t, w, "a0", []string{"gw2", "l0"}, blocks)
		checkIdentical(t, got, blocks)
	}
	if n := w.vc.McastStats().LocalDeliveries; n != 2 {
		t.Errorf("LocalDeliveries = %d, want 2", n)
	}
}

func TestMulticastGatewayIngressIndependentOfFanout(t *testing.T) {
	// The gateway ingress byte count is the same whether one or three
	// receivers sit behind it — the tentpole's bandwidth-conservation
	// property.
	const size = 120_000
	ingress := func(dests []string) int64 {
		w := build(t, mcastChain(t), fwd.DefaultConfig())
		blocks := []block{{pattern(size, 9), mad.SendCheaper, mad.ReceiveCheaper}}
		got := mcastSendRecv(t, w, "a0", dests, blocks)
		checkIdentical(t, got, blocks)
		return w.vc.Gateway("gw1").Bytes()
	}
	one := ingress([]string{"c0"})
	three := ingress([]string{"c0", "c1", "l0"})
	if one != size || three != size {
		t.Errorf("gw1 ingress bytes: 1 dest = %d, 3 dests = %d, want %d both", one, three, size)
	}
}

func TestMulticastWithFlowControl(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.FlowControl = true
	cfg.CreditWindow = 2
	w := build(t, mcastChain(t), cfg)
	for _, size := range []int{100, 300_000} {
		blocks := []block{{pattern(size, 5), mad.SendCheaper, mad.ReceiveCheaper}}
		got := mcastSendRecv(t, w, "a0", []string{"a1", "c0", "l0", "l1"}, blocks)
		checkIdentical(t, got, blocks)
	}
	fs := w.vc.FlowStats()
	if fs.CreditsSpent == 0 || fs.CreditsSpent != fs.CreditsGranted {
		t.Errorf("credits spent %d / granted %d: want equal and nonzero",
			fs.CreditsSpent, fs.CreditsGranted)
	}
}

func TestMulticastPlanCacheInvalidatesOnEpoch(t *testing.T) {
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	run := func() {
		blocks := []block{{pattern(64, 1), mad.SendCheaper, mad.ReceiveCheaper}}
		got := mcastSendRecv(t, w, "a0", []string{"l0"}, blocks)
		checkIdentical(t, got, blocks)
	}
	run()
	run()
	st := w.vc.McastStats()
	if st.TreeRecomputes != 1 || st.TreeCacheHits != 1 {
		t.Fatalf("before epoch bump: %d recomputes / %d hits, want 1/1", st.TreeRecomputes, st.TreeCacheHits)
	}
	// A routing-epoch change (health readmission, link death) must force the
	// next multicast to rebuild its tree over the new table.
	w.vc.Table().Epoch++
	run()
	st = w.vc.McastStats()
	if st.TreeRecomputes != 2 || st.TreeCacheHits != 1 {
		t.Fatalf("after epoch bump: %d recomputes / %d hits, want 2/1", st.TreeRecomputes, st.TreeCacheHits)
	}
}

func TestMulticastRequiresStreamingMode(t *testing.T) {
	cfg := fwd.DefaultConfig()
	cfg.Reliable = true
	w := build(t, mcastChain(t), cfg)
	if w.vc.CanMulticast() {
		t.Fatal("CanMulticast() = true in reliable mode")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BeginMulticast in reliable mode did not panic")
		}
	}()
	w.sim.Spawn("bad", func(p *vtime.Proc) {
		w.vc.At("a0").BeginMulticast(p, "l0")
	})
	_ = w.sim.Run()
}

func TestMulticastDropsSelfAndDuplicates(t *testing.T) {
	w := build(t, mcastChain(t), fwd.DefaultConfig())
	blocks := []block{{pattern(256, 8), mad.SendCheaper, mad.ReceiveCheaper}}
	w.sim.Spawn("app-mcast:a0", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginMulticast(p, "l0", "a0", "l0")
		px.Pack(p, blocks[0].data, blocks[0].s, blocks[0].r)
		px.EndPacking(p)
	})
	var buf []byte
	w.sim.Spawn("app-recv:l0", func(p *vtime.Proc) {
		u := w.vc.At("l0").BeginUnpacking(p)
		buf = make([]byte, len(blocks[0].data))
		u.Unpack(p, buf, blocks[0].s, blocks[0].r)
		u.EndUnpacking(p)
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blocks[0].data) {
		t.Error("payload corrupted")
	}
	if n := w.vc.McastStats().Messages; n != 1 {
		t.Errorf("Messages = %d, want 1", n)
	}
}
