package fwd

import (
	"madgo/internal/hw"
	"madgo/internal/route"
	"madgo/internal/vtime"
)

// MTUForRoute returns the per-path MTU of one route: the minimum of the
// per-network MTUs over every hop the route crosses. This is the §2.3
// negotiation — a connexion's packet size must fit the most constrained
// network it traverses, and no other.
func MTUForRoute(r route.Route, netMTU func(string) int) int {
	min := 0
	for _, hop := range r {
		m := netMTU(hop.Network)
		if min == 0 || m < min {
			min = m
		}
	}
	return min
}

// SuggestMTU formalizes the paper's §3.2.2 packet-size analysis: "the size
// of those fragments is defined so that each network is able to send them
// without having to fragment them further ... an appropriate paquet size
// can be chosen at compile time because the network configuration is
// statically configured."
//
// It models one steady-state pipeline period for a candidate packet size s
// crossing from network `in` to network `out` on a gateway with the given
// CPU costs:
//
//	recv(s) = in-side per-packet cost  + s/in-rate  + swap
//	send(s) = out-side per-packet cost + s/out-rate + swap
//	period  = max(recv, send)
//
// and returns the power-of-two s in [4 KB, 256 KB] with the highest s/period.
// The paper's naive crossover argument picks the size where the two raw
// networks perform equally (≈16 KB for SCI/Myrinet); this model additionally
// amortizes the fixed per-switch overhead, which is why — as the paper's own
// figures show — larger packets win asymptotically.
func SuggestMTU(in, out hw.NICParams, cpu hw.CPUParams) int {
	// Asymptotic choice: an effectively infinite message.
	return SuggestMTUFor(in, out, cpu, 1<<40)
}

// SuggestMTUFor is SuggestMTU for a known message size: shorter messages
// favour smaller packets because the pipeline fill (one extra receive step)
// is amortized over fewer periods — the crossing curve family of Figure 6.
func SuggestMTUFor(in, out hw.NICParams, cpu hw.CPUParams, messageBytes int) int {
	best, bestScore := 0, 0.0
	for s := 4 * 1024; s <= 256*1024; s *= 2 {
		packets := (messageBytes + s - 1) / s
		if packets < 1 {
			packets = 1
		}
		fill := stepCost(s, in, false) + cpu.SwapOverhead
		total := fill + vtime.Duration(packets)*period(s, in, out, cpu)
		score := float64(messageBytes) / total.Seconds()
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// period estimates one steady-state pipeline period for packet size s.
func period(s int, in, out hw.NICParams, cpu hw.CPUParams) vtime.Duration {
	recv := stepCost(s, in, false) + cpu.SwapOverhead
	send := stepCost(s, out, true) + cpu.SwapOverhead
	if send > recv {
		return send
	}
	return recv
}

// stepCost is the per-packet cost on one side of the gateway.
func stepCost(s int, nic hw.NICParams, sending bool) vtime.Duration {
	rate := nic.RecvEngineRate
	fixed := nic.RecvOverhead
	if sending {
		rate = nic.EffectiveSendRate(s)
		fixed = nic.SendOverhead
		if nic.RendezvousThreshold > 0 && s > nic.RendezvousThreshold {
			fixed += nic.RendezvousCost
		}
	}
	return fixed + nic.WireLatency + vtime.DurationOfBytes(int64(s), rate)
}
