package fwd_test

import (
	"testing"

	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestSuggestMTUForThePaperTestbed(t *testing.T) {
	mtu := fwd.SuggestMTU(hw.SCI(), hw.Myrinet(), hw.DefaultCPU())
	if short := fwd.SuggestMTUFor(hw.SCI(), hw.Myrinet(), hw.DefaultCPU(), 64*1024); short > mtu {
		t.Errorf("a 64 KB message suggested a larger MTU (%d) than the asymptote (%d)", short, mtu)
	}
	// The asymptotic analytic optimum sits at or above the measured a2
	// sweep band (the model ignores the finite-message fill, so it leans
	// large), well above the naive 16 KB crossover estimate.
	if mtu < 32*1024 {
		t.Errorf("suggested MTU = %d KB, want >= 32 KB", mtu/1024)
	}
	// And the suggestion must actually be near-optimal when measured:
	// the a2 experiment asserts the sweep; here we only check it is a
	// power of two in range.
	if mtu&(mtu-1) != 0 {
		t.Errorf("MTU %d is not a power of two", mtu)
	}
}

func TestSuggestMTUSymmetricNetworks(t *testing.T) {
	// Identical fast networks with no per-packet costs beyond the swap:
	// bigger is always better, so the suggestion hits the cap.
	nic := hw.Myrinet()
	nic.RendezvousThreshold = 0
	nic.SendOverhead = 0
	nic.RecvOverhead = 0
	nic.WireLatency = 0
	cpu := hw.DefaultCPU()
	if mtu := fwd.SuggestMTU(nic, nic, cpu); mtu != 256*1024 {
		t.Errorf("cost-free networks should suggest the cap, got %d", mtu)
	}
}

func TestSuggestMTUHighOverheadPushesLarger(t *testing.T) {
	// Raising the per-switch software overhead must never shrink the
	// suggested packet size.
	cheap := hw.DefaultCPU()
	dear := cheap
	dear.SwapOverhead = 400 * vtime.Microsecond
	small := fwd.SuggestMTU(hw.SCI(), hw.Myrinet(), cheap)
	large := fwd.SuggestMTU(hw.SCI(), hw.Myrinet(), dear)
	if large < small {
		t.Errorf("10× swap overhead shrank the MTU: %d -> %d", small, large)
	}
}

func TestSuggestMTUMatchesSweepWinner(t *testing.T) {
	// The analytic suggestion must be within a factor of two of the best
	// simulated packet size for a large transfer (the model ignores
	// second-order bus contention, so exact agreement is not required).
	suggested := fwd.SuggestMTUFor(hw.SCI(), hw.Myrinet(), hw.DefaultCPU(), 2<<20)
	best, bestBW := 0, 0.0
	for mtu := 8 * 1024; mtu <= 256*1024; mtu *= 2 {
		bw := forwardBandwidth(t, mtu)
		if bw > bestBW {
			best, bestBW = mtu, bw
		}
	}
	ratio := float64(suggested) / float64(best)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("suggested %d KB vs simulated best %d KB", suggested/1024, best/1024)
	}
}

// forwardBandwidth measures a 2 MB SCI→Myrinet transfer at the given MTU.
func forwardBandwidth(t *testing.T, mtu int) float64 {
	t.Helper()
	cfg := fwd.DefaultConfig()
	cfg.MTU = mtu
	w := build(t, paperHS(t), cfg)
	const n = 2 << 20
	var done vtime.Time
	w.sim.Spawn("s", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginPacking(p, "b0")
		px.Pack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	w.sim.Spawn("r", func(p *vtime.Proc) {
		u := w.vc.At("b0").BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		done = p.Now()
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	return float64(n) / vtime.Duration(done).Seconds() / 1e6
}
