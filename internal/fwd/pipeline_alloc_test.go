package fwd_test

import (
	"testing"

	"madgo/internal/fwd"
	"madgo/internal/mad"
)

// Steady-state relays must not touch the allocator: after the first message
// warms a ring's free list, every further message restocks from the pool
// (Gets keeps growing) without a single additional allocation (Misses stays
// at the warmup level). The copy-always ablation is the stress case — it
// runs both the staging-buffer pool and the per-packet stage pool.
func TestGatewayRelayWarmPoolNoNewAllocations(t *testing.T) {
	for _, zc := range []bool{true, false} {
		name := "zerocopy"
		if !zc {
			name = "copy-always"
		}
		t.Run(name, func(t *testing.T) {
			cfg := fwd.DefaultConfig()
			cfg.PipelineDepth = 4
			cfg.ZeroCopy = zc
			w := build(t, paperHS(t), cfg)
			gw := w.vc.Gateway("gw")
			payload := pattern(300_000, 7)

			relay := func() {
				got, fwded, _ := sendRecv(t, w, "b1", "a1",
					[]block{{payload, mad.SendCheaper, mad.ReceiveCheaper}})
				if !fwded {
					t.Fatal("message was not forwarded")
				}
				if len(got[0]) != len(payload) {
					t.Fatalf("short delivery: %d of %d", len(got[0]), len(payload))
				}
			}

			relay() // warmup: stocks the ring, pays the only misses
			warm := gw.PoolStats()
			if warm.Misses == 0 {
				t.Fatal("warmup produced no pool misses; the relay is not using the pools")
			}
			const extra = 5
			for i := 0; i < extra; i++ {
				relay()
			}
			after := gw.PoolStats()
			if after.Misses != warm.Misses {
				t.Fatalf("steady-state relays allocated: misses %d -> %d",
					warm.Misses, after.Misses)
			}
			if after.Gets <= warm.Gets {
				t.Fatalf("pool not exercised after warmup: gets %d -> %d",
					warm.Gets, after.Gets)
			}
			if after.Gets != after.Puts {
				t.Fatalf("ring leaked staging buffers: gets %d != puts %d",
					after.Gets, after.Puts)
			}
		})
	}
}
