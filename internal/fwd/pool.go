package fwd

// Staging-buffer pooling for the gateway pipeline.
//
// Every relayed message rotates PipelineDepth staging buffers between the
// receive and the send thread. Allocating them per message (let alone per
// packet) puts the allocator on the forwarding hot path; instead each
// gateway keeps, per ingress network, a free list the ring is stocked from
// at message start and drained back into at message end. Steady-state
// relays then touch the allocator only on the very first message (the
// warmup misses), which the allocation-regression tests pin down.
//
// The pools are deliberately unsynchronized: the simulation scheduler is
// single-threaded and each pool is owned by exactly one ingress network's
// forwarding engine, so there is nothing to race with.

// bufPool is a LIFO free list of byte buffers with capacity-class reuse: get
// returns any pooled buffer whose capacity covers the request, sliced to the
// requested length, and only falls back to alloc when none fits.
type bufPool struct {
	bufs  [][]byte
	alloc func(n int) []byte

	gets   int64
	puts   int64
	misses int64
}

// newBufPool creates a pool backed by the given allocator (called only on
// misses). A nil allocator defaults to make.
func newBufPool(alloc func(n int) []byte) *bufPool {
	if alloc == nil {
		alloc = func(n int) []byte { return make([]byte, n) }
	}
	return &bufPool{alloc: alloc}
}

// get returns a buffer of length n, reusing the most recently returned one
// that is large enough.
func (bp *bufPool) get(n int) []byte {
	bp.gets++
	for i := len(bp.bufs) - 1; i >= 0; i-- {
		b := bp.bufs[i]
		if cap(b) < n {
			continue
		}
		last := len(bp.bufs) - 1
		bp.bufs[i] = bp.bufs[last]
		bp.bufs[last] = nil
		bp.bufs = bp.bufs[:last]
		return b[:n]
	}
	bp.misses++
	return bp.alloc(n)
}

// put returns a buffer to the pool. Nil buffers are ignored so slot-mode
// tokens can be recycled unconditionally.
func (bp *bufPool) put(b []byte) {
	if b == nil {
		return
	}
	bp.puts++
	bp.bufs = append(bp.bufs, b[:cap(b)])
}

// PoolStats aggregates the free-list counters of one gateway: how many
// staging buffers were requested, returned, and actually allocated. On a
// steady-state relay Misses stays at the warmup level (one ring's worth per
// buffer mode) while Gets keeps growing.
type PoolStats struct {
	Gets   int64
	Puts   int64
	Misses int64
}

func (s *PoolStats) observe(bp *bufPool) {
	s.Gets += bp.gets
	s.Puts += bp.puts
	s.Misses += bp.misses
}
