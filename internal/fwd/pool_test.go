package fwd

import (
	"testing"

	"madgo/internal/vtime/vsync"
)

// The allocation-regression wall for the pooled pipeline: once warm, the
// per-message staging path — stocking the ring from the free list and
// draining it back — must never touch the allocator.

func TestBufPoolZeroAllocSteadyState(t *testing.T) {
	bp := newBufPool(nil)
	const n = 32 * 1024
	bp.put(bp.get(n)) // warmup: the single miss
	if allocs := testing.AllocsPerRun(200, func() {
		bp.put(bp.get(n))
	}); allocs != 0 {
		t.Fatalf("steady-state get/put allocates %.1f times per cycle", allocs)
	}
	if bp.misses != 1 {
		t.Fatalf("misses = %d after warmup + steady state, want 1", bp.misses)
	}
}

func TestBufPoolRingStockDrainZeroAlloc(t *testing.T) {
	// The exact per-message sequence the gateway runs: depth gets pushed
	// through the free channel, then drained back into the pool.
	const depth = 8
	const mtu = 64 * 1024
	bp := newBufPool(nil)
	free := vsync.NewChan[[]byte]("test:free", depth)
	cycle := func() {
		for i := 0; i < depth; i++ {
			free.TrySend(bp.get(mtu))
		}
		for {
			b, ok := free.TryRecv()
			if !ok {
				break
			}
			bp.put(b)
		}
	}
	cycle() // warmup message
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state stock/drain allocates %.1f times per message", allocs)
	}
	if bp.misses != depth {
		t.Fatalf("misses = %d, want the warmup ring of %d", bp.misses, depth)
	}
	if bp.gets != bp.puts {
		t.Fatalf("ring leaked buffers: gets %d != puts %d", bp.gets, bp.puts)
	}
}

func TestBufPoolCapacityClasses(t *testing.T) {
	bp := newBufPool(nil)
	big := bp.get(1000)
	bp.put(big)
	// A smaller request reuses the larger buffer sliced down.
	small := bp.get(10)
	if len(small) != 10 || cap(small) < 1000 {
		t.Fatalf("small get: len %d cap %d, want reuse of the 1000-cap buffer", len(small), cap(small))
	}
	if bp.misses != 1 {
		t.Fatalf("misses = %d, want 1", bp.misses)
	}
	bp.put(small)
	// A larger request cannot reuse it and must allocate.
	huge := bp.get(2000)
	if len(huge) != 2000 {
		t.Fatalf("huge get: len %d", len(huge))
	}
	if bp.misses != 2 {
		t.Fatalf("misses = %d, want 2", bp.misses)
	}
	// Nil puts are dropped, not pooled.
	bp.put(nil)
	if len(bp.bufs) != 1 {
		t.Fatalf("nil put changed the pool: %d buffers", len(bp.bufs))
	}
}

func TestBufPoolCustomAllocator(t *testing.T) {
	calls := 0
	bp := newBufPool(func(n int) []byte {
		calls++
		return make([]byte, n)
	})
	bp.put(bp.get(100))
	bp.put(bp.get(100))
	if calls != 1 {
		t.Fatalf("allocator called %d times, want 1", calls)
	}
	var s PoolStats
	s.observe(bp)
	if s.Gets != 2 || s.Puts != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want gets 2 puts 2 misses 1", s)
	}
}
