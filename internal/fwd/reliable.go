package fwd

// Reliable delivery: the robustness mode of the forwarding layer.
//
// The paper's forwarding machinery assumes perfect hardware: every packet a
// gateway relays arrives intact, so the GTM can stream packets with no
// sequencing or acknowledgement. Under the fault injector (package fault)
// that assumption breaks, and Config.Reliable replaces the streaming GTM
// with a reliable datagram protocol:
//
//   - Every message is cut into self-contained, checksummed packets:
//     fragment 0 carries the message descriptor (MTU and per-block layout),
//     fragments 1..total-1 carry the payload. Each packet names the
//     message's origin, final destination, message id and fragment index,
//     so any node can route it and the final destination can reassemble
//     and de-duplicate.
//   - Packets travel hop by hop with stop-and-wait acknowledgements,
//     exponential backoff, and a bounded retry budget per hop. A hop that
//     exhausts its budget presumes the neighbour dead and recomputes a
//     route around it (multi-gateway failover, or degradation to the slow
//     control network when Config.FallbackTopo names one).
//   - Hop acknowledgements only say a relay accepted the packet; a crash
//     can still lose accepted packets. The final destination therefore
//     returns an end-to-end acknowledgement (itself a reliably-delivered
//     packet), and the origin re-sends the whole message when it times
//     out; duplicates are suppressed at the final destination.
//   - A sender whose retries and reroutes all fail surfaces a typed
//     *DeliveryError through vtime.Abort, so the simulation ends with an
//     error instead of deadlocking.
//
// Deadlock freedom: the per-network polling daemons always Recv (which
// frees the link's eager flow-control credit) before doing anything else,
// and never block on sends — acknowledgements go through a per-node control
// daemon, relays through a per-node relay daemon, both fed by bounded
// queues with non-blocking enqueue. A full queue just means no ack, which
// the upstream retry converts into a retransmission later.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strings"

	"madgo/internal/flight"
	"madgo/internal/flow"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// RetryPolicy tunes the reliability protocol. Zero fields take the defaults
// of DefaultRetryPolicy.
type RetryPolicy struct {
	// AckTimeout is the initial per-hop acknowledgement timeout; it
	// doubles on every retransmission up to MaxTimeout.
	AckTimeout vtime.Duration
	// MaxTimeout caps the doubled per-hop timeout and the inter-attempt
	// backoff of whole-message resends.
	MaxTimeout vtime.Duration
	// PacketRetries is how many times one packet is retransmitted on one
	// hop before the neighbour is presumed dead.
	PacketRetries int
	// MessageRetries is how many times the whole message is re-sent after
	// an end-to-end acknowledgement timeout before the sender gives up
	// with a DeliveryError.
	MessageRetries int
	// E2EBase and E2EPerFrag size the end-to-end acknowledgement timeout:
	// E2EBase + E2EPerFrag per fragment of the message.
	E2EBase    vtime.Duration
	E2EPerFrag vtime.Duration
	// ReprobeAfter is how long a presumed-dead node stays excluded from
	// routing before it is probed again (0 = forever).
	ReprobeAfter vtime.Duration
	// RouteAttempts bounds how many alternate next hops one packet tries
	// before its forwarding fails.
	RouteAttempts int
	// Window is the per-hop ARQ window: how many packets one sender keeps
	// in flight toward one neighbour before waiting for acknowledgements.
	// The receiver coalesces the window's hop acks into one control
	// datagram (the last packet of a burst requests the flush), so larger
	// windows cut the ack traffic by their size. 1 degenerates to
	// stop-and-wait.
	Window int
}

// DefaultRetryPolicy returns the timeouts and budgets the tests and tools
// use. They are sized for the paper's testbed: the slowest hop (Fast
// Ethernet) moves a 32 KB fragment in under 3 ms, safely inside the 5 ms
// initial ack timeout. E2EBase exceeds a full dead-neighbour detection
// cycle (PacketRetries doubling timeouts, ~155 ms) so that one message
// attempt survives a downstream relay — or the returning end-to-end
// acknowledgement — having to discover a crashed gateway itself.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		AckTimeout:     5 * vtime.Millisecond,
		MaxTimeout:     80 * vtime.Millisecond,
		PacketRetries:  5,
		MessageRetries: 3,
		E2EBase:        250 * vtime.Millisecond,
		E2EPerFrag:     5 * vtime.Millisecond,
		ReprobeAfter:   500 * vtime.Millisecond,
		RouteAttempts:  3,
		Window:         8,
	}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.AckTimeout <= 0 {
		rp.AckTimeout = def.AckTimeout
	}
	if rp.MaxTimeout <= 0 {
		rp.MaxTimeout = def.MaxTimeout
	}
	if rp.PacketRetries <= 0 {
		rp.PacketRetries = def.PacketRetries
	}
	if rp.MessageRetries <= 0 {
		rp.MessageRetries = def.MessageRetries
	}
	if rp.E2EBase <= 0 {
		rp.E2EBase = def.E2EBase
	}
	if rp.E2EPerFrag <= 0 {
		rp.E2EPerFrag = def.E2EPerFrag
	}
	if rp.ReprobeAfter < 0 {
		rp.ReprobeAfter = def.ReprobeAfter
	}
	if rp.RouteAttempts <= 0 {
		rp.RouteAttempts = def.RouteAttempts
	}
	if rp.Window <= 0 {
		rp.Window = def.Window
	}
	return rp
}

// DeliveryError reports that a message could not be delivered: every
// retransmission, reroute and whole-message resend failed. It reaches the
// caller of Sim.Run (and madeleine.System.Run) via vtime.Abort.
type DeliveryError struct {
	From     string
	To       string
	Reason   string // "timeout" (no end-to-end ack) or "unreachable" (no route left)
	Attempts int
	// Cause is the typed underlying failure, when one exists: an
	// "unreachable" delivery wraps *route.NoRouteError, so callers can
	// match errors.Is(err, route.ErrNoRoute) instead of parsing Reason.
	Cause error
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("fwd: delivery %s -> %s failed after %d attempt(s): %s",
		e.From, e.To, e.Attempts, e.Reason)
}

// Unwrap exposes the typed cause to errors.Is / errors.As.
func (e *DeliveryError) Unwrap() error { return e.Cause }

// DeliveryStats aggregates the reliability protocol's counters over every
// node of the virtual channel. All zero on a fault-free run.
type DeliveryStats struct {
	Retransmits    int64 // per-hop packet retransmissions
	Failovers      int64 // neighbours presumed dead and routed around
	MessageResends int64 // whole-message resends after e2e timeouts
	Duplicates     int64 // duplicate packets suppressed at destinations
	ChecksumDrops  int64 // packets discarded for a bad checksum
	RelayDrops     int64 // packets a relay accepted but could not forward
}

// Wire format (all little-endian, CRC32-IEEE over everything before the
// trailing checksum — acknowledgements included, so a corrupted ack is
// dropped rather than misparsed):
//
//	data:  origin u32 | final u32 | msgID u64 | frag u32 | total u32 |
//	       flags u8 | nacks u8 | pad u16 | payload |
//	       nacks × ackEntry | crc u32
//	ack:   count u8 | count × ackEntry | crc u32
//	ackEntry: origin u32 | msgID u64 | frag u32
//
// Acknowledgements are batched: a receiver accumulates the hop acks of a
// sender's burst and emits them as one control datagram when the burst's
// flush-flagged last packet arrives (or the batch cap is hit). Pending
// acks also piggyback on reverse-direction data packets — the nacks
// trailer — so a bidirectional exchange needs almost no standalone ack
// datagrams at all.
//
// An end-to-end acknowledgement is a data packet with frag == e2eFrag,
// total == 0, an empty payload and final == origin — routed back to the
// message origin through the same reliable relay machinery as data.
const (
	relDataHdrLen = 28
	relTrailerLen = 4
	relOverhead   = relDataHdrLen + relTrailerLen
	relAckEntry   = 16
	// relAckBatchMax caps the entries of one batched or piggybacked ack
	// (it must fit the one-byte count fields).
	relAckBatchMax = 64
)

// relFlagFlush asks the receiver to emit its pending hop acks for this
// link immediately: set on the last packet of every burst and on every
// retransmission.
const relFlagFlush = 1 << 0

// relFlagAgg marks every fragment of an aggregate frame (package agg): the
// final destination reconstructs the frame from the reassembled fragments
// and unpacks the coalesced sub-messages instead of delivering the message
// as-is. Unlike relFlagFlush it is an end-to-end property, preserved across
// hops by sendData.
const relFlagAgg = 1 << 1

// e2eFrag is the fragment-index sentinel marking an end-to-end ack packet.
const e2eFrag = ^uint32(0)

func sealCRC(pkt []byte) {
	n := len(pkt) - relTrailerLen
	binary.LittleEndian.PutUint32(pkt[n:], crc32.ChecksumIEEE(pkt[:n]))
}

func checkCRC(pkt []byte) bool {
	if len(pkt) < relTrailerLen {
		return false
	}
	n := len(pkt) - relTrailerLen
	return binary.LittleEndian.Uint32(pkt[n:]) == crc32.ChecksumIEEE(pkt[:n])
}

// relData is a decoded data packet. acks carries the piggybacked hop
// acknowledgements that rode along in the packet's trailer.
type relData struct {
	origin  mad.Rank
	final   mad.Rank
	id      uint64
	frag    uint32
	total   uint32
	flags   uint8
	payload []byte
	acks    []relAckKey
}

// key is the packet's hop-acknowledgement identity.
func (d relData) key() relAckKey {
	return relAckKey{origin: d.origin, id: d.id, frag: d.frag}
}

func putAckEntry(b []byte, k relAckKey) {
	binary.LittleEndian.PutUint32(b[0:], uint32(k.origin))
	binary.LittleEndian.PutUint64(b[4:], k.id)
	binary.LittleEndian.PutUint32(b[12:], k.frag)
}

func getAckEntry(b []byte) relAckKey {
	return relAckKey{
		origin: mad.Rank(binary.LittleEndian.Uint32(b[0:])),
		id:     binary.LittleEndian.Uint64(b[4:]),
		frag:   binary.LittleEndian.Uint32(b[12:]),
	}
}

func encodeRelData(origin, final mad.Rank, id uint64, frag, total uint32, flags uint8, payload []byte, acks []relAckKey) []byte {
	if len(acks) > relAckBatchMax {
		panic("fwd: too many piggybacked acks")
	}
	pkt := make([]byte, relDataHdrLen+len(payload)+relAckEntry*len(acks)+relTrailerLen)
	binary.LittleEndian.PutUint32(pkt[0:], uint32(origin))
	binary.LittleEndian.PutUint32(pkt[4:], uint32(final))
	binary.LittleEndian.PutUint64(pkt[8:], id)
	binary.LittleEndian.PutUint32(pkt[16:], frag)
	binary.LittleEndian.PutUint32(pkt[20:], total)
	pkt[24] = flags
	pkt[25] = byte(len(acks))
	copy(pkt[relDataHdrLen:], payload)
	off := relDataHdrLen + len(payload)
	for _, k := range acks {
		putAckEntry(pkt[off:], k)
		off += relAckEntry
	}
	sealCRC(pkt)
	return pkt
}

func decodeRelData(pkt []byte) (relData, bool) {
	if len(pkt) < relOverhead || !checkCRC(pkt) {
		return relData{}, false
	}
	// Canonical form only: the pad bytes are zero and the piggyback count
	// is within the cap the encoder enforces.
	nacks := int(pkt[25])
	if nacks > relAckBatchMax || pkt[26] != 0 || pkt[27] != 0 {
		return relData{}, false
	}
	end := len(pkt) - relTrailerLen - relAckEntry*nacks
	if end < relDataHdrLen {
		return relData{}, false
	}
	d := relData{
		origin:  mad.Rank(binary.LittleEndian.Uint32(pkt[0:])),
		final:   mad.Rank(binary.LittleEndian.Uint32(pkt[4:])),
		id:      binary.LittleEndian.Uint64(pkt[8:]),
		frag:    binary.LittleEndian.Uint32(pkt[16:]),
		total:   binary.LittleEndian.Uint32(pkt[20:]),
		flags:   pkt[24],
		payload: pkt[relDataHdrLen:end],
	}
	for off := end; off < len(pkt)-relTrailerLen; off += relAckEntry {
		d.acks = append(d.acks, getAckEntry(pkt[off:]))
	}
	return d, true
}

func encodeRelAcks(keys []relAckKey) []byte {
	if len(keys) == 0 || len(keys) > relAckBatchMax {
		panic("fwd: ack batch size out of range")
	}
	pkt := make([]byte, 1+relAckEntry*len(keys)+relTrailerLen)
	pkt[0] = byte(len(keys))
	for i, k := range keys {
		putAckEntry(pkt[1+relAckEntry*i:], k)
	}
	sealCRC(pkt)
	return pkt
}

func decodeRelAcks(pkt []byte) ([]relAckKey, bool) {
	if len(pkt) < 1+relAckEntry+relTrailerLen || !checkCRC(pkt) {
		return nil, false
	}
	n := int(pkt[0])
	if n == 0 || n > relAckBatchMax || len(pkt) != 1+relAckEntry*n+relTrailerLen {
		return nil, false
	}
	keys := make([]relAckKey, n)
	for i := range keys {
		keys[i] = getAckEntry(pkt[1+relAckEntry*i:])
	}
	return keys, true
}

// The fragment-0 descriptor payload mirrors what the GTM transmits
// incrementally: the connection MTU and the per-block sizes and flag
// constraints the receiver's unpack calls must match.
//
//	mtu u32 | nblocks u32 | nblocks × (size u32 | sendMode u8 | recvMode u8)
func encodeRelDesc(mtu int, blocks []relBlock) []byte {
	b := make([]byte, 8+6*len(blocks))
	binary.LittleEndian.PutUint32(b[0:], uint32(mtu))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(blocks)))
	off := 8
	for _, bl := range blocks {
		binary.LittleEndian.PutUint32(b[off:], uint32(len(bl.data)))
		b[off+4] = byte(bl.s)
		b[off+5] = byte(bl.r)
		off += 6
	}
	return b
}

func decodeRelDesc(b []byte) (mtu int, desc []mad.BlockDesc, ok bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	mtu = int(binary.LittleEndian.Uint32(b[0:]))
	if mtu <= 0 {
		// A zero MTU from the wire would drive the receiver's
		// per-fragment loop with a degenerate step — reject it here,
		// like any other malformed descriptor (found by FuzzRelDesc).
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) != 8+6*n {
		return 0, nil, false
	}
	desc = make([]mad.BlockDesc, n)
	off := 8
	for i := range desc {
		desc[i] = mad.BlockDesc{
			Size: int(binary.LittleEndian.Uint32(b[off:])),
			S:    mad.SendMode(b[off+4]),
			R:    mad.RecvMode(b[off+5]),
		}
		off += 6
	}
	return mtu, desc, true
}

// relMeta is the link-layer metadata of one reliable packet: a single-block,
// single-transmission message flagged Reliable so it takes the plain eager
// path and is subject to fault injection.
func relMeta(kind mad.Kind, n int) mad.TxMeta {
	return mad.TxMeta{
		SOM:      true,
		Reliable: true,
		Kind:     kind,
		Blocks:   []mad.BlockDesc{{Size: n, S: mad.SendCheaper, R: mad.ReceiveCheaper}},
	}
}

// relAckKey identifies one packet for hop acknowledgement: who originated
// the message, which message, which fragment.
type relAckKey struct {
	origin mad.Rank
	id     uint64
	frag   uint32
}

// relMsgKey identifies one message.
type relMsgKey struct {
	origin mad.Rank
	id     uint64
}

// relAwait is a one-shot completion slot shared between a waiting sender and
// the acknowledgement handler (or the timeout callback, whichever fires
// first).
type relAwait struct {
	w    *vtime.Waker
	done bool
	ok   bool
}

// relMsg is a message being reassembled at its final destination. It is
// handed to the unpacking side through the node's merged arrival queue once
// every fragment arrived.
type relMsg struct {
	origin mad.Rank
	id     uint64
	total  uint32
	frags  map[uint32][]byte
	// agg marks a message whose payload is an aggregate frame (relFlagAgg):
	// the unpacking side decodes the frame into its coalesced sub-messages
	// instead of handing the message to the application directly.
	agg bool
}

// relayItem is one packet queued for forwarding by a node's relay daemon.
// The packet is re-encoded at the next hop (piggybacking fresh acks), so
// only the decoded form travels through the queue. from names the ingress
// neighbour ("" for locally-originated packets): split horizon never
// forwards a packet back out the way it came, which breaks the routing
// loops two nodes with inconsistent liveness views would otherwise bounce
// a packet around.
type relayItem struct {
	d    relData
	from string
	enq  vtime.Time // enqueue instant, for queue-wait attribution (0 = unknown)
}

const (
	// relRelayCap bounds each node's relay backlog (items across all
	// ingress flows); an admission past the cap is refused without an ack
	// and the upstream ARQ retransmits.
	relRelayCap = 1024
	// relDupWindow is how many completed message IDs per origin the
	// duplicate-suppression record keeps exactly; older IDs are summarised
	// by a floor. 512 spans far more concurrent in-flight messages per
	// (origin, destination) pair than the blocking send API can produce.
	relDupWindow = 512
	// relRxCap bounds a node's concurrent reassembly states; admitting a
	// new message past the cap evicts the oldest partial (its origin's
	// end-to-end timeout resends the whole message — lossy for progress,
	// never for correctness).
	relRxCap = 128
)

// relDoneWindow is the bounded per-origin duplicate-suppression record: the
// last relDupWindow completed message IDs exactly, and a floor summarising
// everything evicted. Per-origin IDs are issued monotonically and the
// blocking send API keeps few of them in flight at once, so by the time an
// ID is evicted every smaller ID from that origin has long completed —
// "at or below the floor" is then a sound duplicate verdict. This replaces
// an ever-growing done map: a long-lived node's bookkeeping stays O(origins
// × window) no matter how many messages it receives.
type relDoneWindow struct {
	set      map[uint64]struct{}
	ring     []uint64
	head     int // ring[:head] is dead space, compacted when it reaches the cap
	floor    uint64
	hasFloor bool
}

func (w *relDoneWindow) has(id uint64) bool {
	if w == nil {
		return false
	}
	if w.hasFloor && id <= w.floor {
		return true
	}
	_, ok := w.set[id]
	return ok
}

func (w *relDoneWindow) add(id uint64) {
	if _, ok := w.set[id]; ok {
		return
	}
	w.set[id] = struct{}{}
	w.ring = append(w.ring, id)
	if len(w.ring)-w.head > relDupWindow {
		old := w.ring[w.head]
		w.head++
		delete(w.set, old)
		if !w.hasFloor || old > w.floor {
			w.floor, w.hasFloor = old, true
		}
		if w.head >= relDupWindow {
			w.ring = append(w.ring[:0], w.ring[w.head:]...)
			w.head = 0
		}
	}
}

// size returns how many IDs the window tracks exactly (a test hook for the
// memory-growth regression).
func (w *relDoneWindow) size() int { return len(w.set) }

// relEngine is the per-node reliability engine: sequence numbers, awaited
// acknowledgements, reassembly state, liveness guesses and counters. All of
// it runs under the single-threaded simulation scheduler, so no locking.
type relEngine struct {
	vc   *VirtualChannel
	node *mad.Node
	pol  RetryPolicy
	rng  relRand // decorrelated-jitter state, seeded from the node name

	dead    map[route.Edge]vtime.Time // presumed-dead directed link -> reprobe time
	suspect map[string]vtime.Time     // neighbours not to relay through -> reprobe time
	tables  map[string]*route.Table   // cached per (topology, dead-set) tables
	// tablesEpoch is the health monitor's route epoch the cache was built
	// under; a publish invalidates every cached constrained table at once.
	tablesEpoch uint64
	// hp is this node's health prober (nil when no monitor is configured).
	hp *healthProber

	acks map[relAckKey]*relAwait
	e2e  map[relMsgKey]*relAwait
	rx   map[relMsgKey]*relMsg
	done map[mad.Rank]*relDoneWindow

	// pend accumulates hop acknowledgements per reverse link until a
	// flush (or the batch cap) drains them into one control datagram —
	// or a data packet headed the same way piggybacks them first.
	pend map[*mad.Link][]relAckKey
	// queued marks links already scheduled for a ctlLoop flush, so one
	// burst enqueues one flush regardless of its packet count.
	queued map[*mad.Link]bool

	relayQ *vsync.Chan[relayItem]
	ctlQ   *vsync.Chan[*mad.Link]

	// Flow-control mode replaces the FIFO relayQ with a per-ingress-flow
	// deficit-round-robin scheduler; relaySem counts its queued items.
	// Both nil when Config.FlowControl is off.
	relayDRR *flow.DRR[relayItem]
	relaySem *vsync.Sem

	retransmits   int64
	failovers     int64
	msgResends    int64
	relayedMsgs   int64
	relayedPkts   int64
	relayedBytes  int64
	dups          int64
	checksumDrops int64
	relayDrops    int64
	rxEvictions   int64 // partial reassemblies evicted at the relRxCap bound
	// flowBackpressure counts flow-mode relay admissions refused at
	// relRelayCap — lossless backpressure, the upstream ARQ retransmits.
	flowBackpressure int64
	ackPackets       int64 // standalone ack datagrams emitted
	acksCoalesced    int64 // ack entries that avoided their own datagram

	fr *flight.Ring // cached flight ring; nil until a recorder is armed
}

func (e *relEngine) sim() *vtime.Sim { return e.vc.sess.Platform.Sim }

func (e *relEngine) trace(op string, bytes int, at vtime.Time) {
	e.vc.cfg.Tracer.Record("rel:"+e.node.Name, op, bytes, at, at)
}

func (e *relEngine) metrics() *obs.Registry { return e.vc.sess.Platform.Metrics }

// flight returns this node's flight-recorder ring, resolved lazily so a
// recorder armed after Build is still picked up, then cached.
func (e *relEngine) flight() *flight.Ring {
	if e.fr == nil {
		e.fr = e.vc.flightRing(e.node.Name)
	}
	return e.fr
}

// hop appends one provenance event for message id at this node.
func (e *relEngine) hop(id uint64, at vtime.Time, op, detail string, bytes int) {
	e.metrics().RecordHop(id, at, e.node.Name, op, detail, bytes)
}

// count bumps a per-node reliability counter (pre-registered at zero by
// buildReliable so the series appear in snapshots even on clean runs).
func (e *relEngine) count(name string) {
	e.metrics().Add(name, obs.Labels{"node": e.node.Name}, 1)
}

// relCounterNames are the per-node reliability counters, pre-registered so a
// snapshot of a clean run still shows the series at zero.
var relCounterNames = []string{
	"madgo_retransmits_total",
	"madgo_failovers_total",
	"madgo_message_resends_total",
	"madgo_duplicates_total",
	"madgo_checksum_drops_total",
	"madgo_relay_drops_total",
	"madgo_rel_rx_evictions_total",
	"madgo_rel_ack_packets_total",
	"madgo_rel_acks_coalesced_total",
}

// buildReliable wires the reliable delivery machinery: one engine per node,
// one polling daemon per (node, network), and per-node relay and control
// daemons. Gateway stat objects are created for the primary topology's
// gateways so tools keep working, but no streaming pipelines start.
func (vc *VirtualChannel) buildReliable(buildTopo *topo.Topology) {
	sim := vc.sess.Platform.Sim
	pol := vc.cfg.Retry.withDefaults()
	vc.rel = make(map[string]*relEngine)
	for _, n := range buildTopo.Nodes() {
		node := vc.nodes[n.Name]
		e := &relEngine{
			vc:      vc,
			node:    node,
			pol:     pol,
			rng:     seedRelRand(n.Name),
			dead:    make(map[route.Edge]vtime.Time),
			suspect: make(map[string]vtime.Time),
			tables:  make(map[string]*route.Table),
			acks:    make(map[relAckKey]*relAwait),
			e2e:     make(map[relMsgKey]*relAwait),
			rx:      make(map[relMsgKey]*relMsg),
			done:    make(map[mad.Rank]*relDoneWindow),
			pend:    make(map[*mad.Link][]relAckKey),
			queued:  make(map[*mad.Link]bool),
			relayQ:  vsync.NewChan[relayItem]("relq:"+n.Name, relRelayCap),
			ctlQ:    vsync.NewChan[*mad.Link]("ctlq:"+n.Name, 4096),
		}
		if vc.flowc != nil {
			e.relayDRR = flow.NewDRR[relayItem](int64(vc.cfg.MTU))
			e.relaySem = vsync.NewSem(0)
			vc.metrics().Add("madgo_flow_backpressure_total", obs.Labels{"node": n.Name}, 0)
		}
		vc.rel[n.Name] = e
		for _, name := range relCounterNames {
			vc.metrics().Add(name, obs.Labels{"node": n.Name}, 0)
		}
		for _, nwName := range n.Networks {
			ep := vc.regular[nwName].At(node)
			sim.SpawnDaemon(fmt.Sprintf("relpoll:%s:%s", n.Name, nwName), func(p *vtime.Proc) {
				for {
					a := ep.WaitArrival(p)
					e.handle(p, a)
				}
			})
		}
		sim.SpawnDaemon("relfwd:"+n.Name, func(p *vtime.Proc) { e.relayLoop(p) })
		sim.SpawnDaemon("relctl:"+n.Name, func(p *vtime.Proc) { e.ctlLoop(p) })
	}
	vc.buildHealth()
	for _, name := range vc.tp.Gateways() {
		g := newGateway(vc, vc.nodes[name])
		g.eng = vc.rel[name]
		vc.gates[name] = g
	}
}

// sendMessage fragments, encodes and reliably delivers one message under its
// pack-time ID, blocking until the final destination's end-to-end
// acknowledgement arrives. It runs in the application's process (called from
// EndPacking).
func (e *relEngine) sendMessage(p *vtime.Proc, dst string, blocks []relBlock, id uint64) {
	e.sendMessageFlags(p, dst, blocks, id, 0)
}

// sendMessageFlags is sendMessage with end-to-end packet flags (the
// aggregate marker) stamped on every fragment.
func (e *relEngine) sendMessageFlags(p *vtime.Proc, dst string, blocks []relBlock, id uint64, msgFlags uint8) {
	pol := e.pol
	// Per-path MTU: fragment at the most constrained network of the
	// primary route. The descriptor carries the chosen size, so the
	// receiver reassembles correctly even if failover later moves packets
	// onto a different path. A message striped over several rails
	// fragments at the most constrained rail, so every rail can carry
	// every packet.
	mtu := e.vc.PathMTU(e.node.Name, dst)
	totalBytes := int64(0)
	for _, b := range blocks {
		totalBytes += int64(len(b.data))
	}
	rails := e.vc.stripeRoutes(e.node.Name, dst)
	striped := len(rails) >= 2 && totalBytes >= e.vc.cfg.stripeThreshold()
	if striped {
		for _, r := range rails {
			if m := e.vc.railMTU(r); m < mtu {
				mtu = m
			}
		}
	}

	payloads := [][]byte{encodeRelDesc(mtu, blocks)}
	for _, b := range blocks {
		data := b.data
		mad.ForEachFragment(len(data), mtu, func(off, n int) {
			payloads = append(payloads, data[off:off+n])
		})
	}
	total := uint32(len(payloads))
	final := e.vc.NodeRank(dst)
	ds := make([]relData, total)
	for i, pl := range payloads {
		ds[i] = relData{origin: e.node.Rank, final: final, id: id,
			frag: uint32(i), total: total, flags: msgFlags, payload: pl}
	}

	mkey := relMsgKey{origin: e.node.Rank, id: id}
	reason := "timeout"
	bo := pol.AckTimeout
	for attempt := 0; attempt <= pol.MessageRetries; attempt++ {
		if attempt > 0 {
			e.msgResends++
			e.trace("resend", 0, p.Now())
			e.count("madgo_message_resends_total")
			e.hop(id, p.Now(), "resend", fmt.Sprintf("attempt %d -> %s", attempt+1, dst), 0)
		}
		aw := &relAwait{}
		e.e2e[mkey] = aw
		var routed bool
		if striped {
			routed = e.sendStriped(p, dst, ds, rails, aw)
		} else {
			routed = e.sendBatched(p, dst, ds, aw)
		}
		if !routed {
			if e.e2e[mkey] == aw {
				delete(e.e2e, mkey)
			}
			reason = "unreachable"
			if attempt < pol.MessageRetries {
				bo = e.nextTimeout(bo)
				p.Sleep(bo)
				e.flight().Record(flight.KindBackoff, p.Now(), bo, id, 0, "")
			}
			continue
		}
		to := pol.E2EBase + vtime.Duration(total)*pol.E2EPerFrag
		t0 := p.Now()
		ok := e.await(p, aw, to, "rel e2e "+dst)
		if e.e2e[mkey] == aw {
			delete(e.e2e, mkey)
		}
		if ok {
			e.flight().Record(flight.KindAckWait, p.Now(), vtime.Since(p.Now(), t0), id, 0, "")
			return
		}
		// A timed-out end-to-end wait feeds the message-resend machinery,
		// so it is charged to the retransmit stage, not ack-wait.
		e.flight().Record(flight.KindRexmit, p.Now(), vtime.Since(p.Now(), t0), id, 0, "")
		reason = "timeout"
	}
	var cause error
	if reason == "unreachable" {
		cause = &route.NoRouteError{Src: e.node.Name, Dst: dst,
			Why: "every route exhausted or excluded by liveness constraints"}
	}
	// The run is about to abort: snapshot every flight ring so the state
	// at the moment of failure survives into the post-mortem.
	e.vc.flight().Dump(fmt.Sprintf("delivery-error: %s %s -> %s (msg %d)", reason, e.node.Name, dst, id))
	panic(vtime.Abort{Err: &DeliveryError{
		From:     e.node.Name,
		To:       dst,
		Reason:   reason,
		Attempts: pol.MessageRetries + 1,
		Cause:    cause,
	}})
}

// relRand is a tiny splitmix64 generator, one per engine. Seeded from the
// node name alone, it is deterministic across runs and independent of the
// fault injector's stream, so reliability timing never perturbs fault
// placement (or vice versa).
type relRand struct{ s uint64 }

func seedRelRand(name string) relRand {
	// FNV-1a over the name, then a golden-ratio displacement so even
	// single-letter names land far apart in the state space.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return relRand{s: h ^ 0x9e3779b97f4a7c15}
}

func (r *relRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *relRand) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// nextTimeout grows a retry timeout with decorrelated jitter: uniform in
// [AckTimeout, 3·prev), capped at MaxTimeout. Compared to the synchronized
// doubling it replaces, independent senders recovering from the same fault
// window spread their retransmissions instead of colliding in lockstep.
func (e *relEngine) nextTimeout(prev vtime.Duration) vtime.Duration {
	base := e.pol.AckTimeout
	if prev < base {
		prev = base
	}
	hi := 3 * prev
	if hi <= base {
		hi = base + 1
	}
	d := base + vtime.Duration(e.rng.float()*float64(hi-base))
	if d > e.pol.MaxTimeout {
		d = e.pol.MaxTimeout
	}
	if d < base {
		d = base
	}
	return d
}

// sendBatched pushes one full copy of a message toward dst in windows of
// Window packets, stopping early when the end-to-end slot completes (the
// ack of a previous attempt arrived). It reports false when routing failed.
func (e *relEngine) sendBatched(p *vtime.Proc, dst string, ds []relData, aw *relAwait) bool {
	w := e.pol.Window
	for i := 0; i < len(ds) && !aw.done; i += w {
		n := min(w, len(ds)-i)
		if !e.forwardBatch(p, dst, ds[i:i+n]) {
			return false
		}
	}
	return true
}

// forwardBatch moves a batch of packets one step toward finalDst, trying
// alternate next hops (failover) when the preferred neighbour stops
// acknowledging; only the packets the dead neighbour never acknowledged are
// rerouted. A failed burst kills the *directed link* it used, never the
// neighbour node: a multi-homed neighbour stays reachable over its other
// links and a partitioned next hop can still be detoured around — both
// fatal to conflate with node death when the neighbour is the final
// destination of a direct route. A genuinely crashed node converges to
// unreachable as each neighbour buries its own links to it. It reports
// false when no route is left or every alternate hop failed.
func (e *relEngine) forwardBatch(p *vtime.Proc, finalDst string, ds []relData) bool {
	return e.forwardBatchExcluding(p, finalDst, "", ds)
}

// forwardBatchExcluding is forwardBatch under split horizon: routes
// relaying through exclude (the ingress neighbour) are off the table.
func (e *relEngine) forwardBatchExcluding(p *vtime.Proc, finalDst, exclude string, ds []relData) bool {
	for try := 0; try < e.pol.RouteAttempts; try++ {
		hop, ok := e.nextHop(finalDst, exclude, p.Now())
		if !ok {
			return false
		}
		failed := e.deliverBurst(p, hop, ds)
		if len(failed) == 0 {
			return true
		}
		ds = failed
		e.markDead(hop, p.Now())
		e.hop(ds[0].id, p.Now(), "failover",
			fmt.Sprintf("link to %s via %s presumed dead", hop.To, hop.Network), 0)
	}
	return false
}

// deliverBurst transmits a burst of packets to one neighbour under the ARQ
// window discipline: every packet goes out back to back, the last one
// flush-flagged so the receiver returns the burst's hop acks as one control
// datagram; packets still unacknowledged after their timeout are
// retransmitted stop-and-wait with doubling timeouts. It returns the
// packets whose retry budget ran out (the neighbour is then presumed dead
// by the caller) — once one packet exhausts its budget, the rest are not
// retried, only checked for acks that already arrived.
func (e *relEngine) deliverBurst(p *vtime.Proc, hop route.Hop, ds []relData) (failed []relData) {
	mon := e.vc.mon
	edge := route.Edge{From: e.node.Name, To: hop.To, Network: hop.Network}
	if mon != nil {
		// Sender activity doubles as the heartbeat clock: edges this node
		// has not exercised recently get an active probe.
		mon.Heartbeats(e.node.Name, p.Now())
	}
	link := e.vc.regular[hop.Network].Link(e.node.Rank, e.vc.NodeRank(hop.To))
	aws := make([]*relAwait, len(ds))
	sentAt := make([]vtime.Time, len(ds))
	for i := range ds {
		aws[i] = &relAwait{}
		e.acks[ds[i].key()] = aws[i]
		sentAt[i] = p.Now()
		e.sendData(p, link, ds[i], i == len(ds)-1)
		e.hop(ds[i].id, p.Now(), "hop", e.hopDetail(ds[i], hop), len(ds[i].payload))
	}
	hopDead := false
	for i := range ds {
		key := ds[i].key()
		aw := aws[i]
		ok := false
		if hopDead {
			// The neighbour already blew a retry budget this burst;
			// don't burn more simulated time, just harvest acks that
			// raced in.
			ok = aw.done && aw.ok
		} else {
			to := e.pol.AckTimeout
			ok = e.await(p, aw, to, "rel ack "+hop.To)
			if !ok {
				e.flight().Record(flight.KindRexmit, p.Now(), to, ds[i].id, len(ds[i].payload), hop.Network)
			}
			for try := 1; !ok && try <= e.pol.PacketRetries; try++ {
				if mon != nil {
					mon.ReportFailure(edge, p.Now())
					if mon.Excluded(edge) {
						// Someone (our own earlier packet, another
						// sender, the detector's score) already declared
						// this edge dead and published a new epoch.
						// Abandon the rest of the budget and let the
						// caller migrate the burst to the new tables.
						break
					}
				}
				e.retransmits++
				e.trace("rexmit", len(ds[i].payload), p.Now())
				e.count("madgo_retransmits_total")
				e.hop(ds[i].id, p.Now(), "rexmit", e.hopDetail(ds[i], hop), len(ds[i].payload))
				aw = &relAwait{}
				e.acks[key] = aw
				sentAt[i] = p.Now()
				e.sendData(p, link, ds[i], true)
				to = e.nextTimeout(to)
				ok = e.await(p, aw, to, "rel ack "+hop.To)
				if !ok {
					e.flight().Record(flight.KindRexmit, p.Now(), to, ds[i].id, len(ds[i].payload), hop.Network)
				}
			}
			if !ok {
				hopDead = true
			}
		}
		if e.acks[key] == aw {
			delete(e.acks, key)
		}
		if mon != nil {
			if ok {
				mon.ReportSuccess(edge, p.Now().Sub(sentAt[i]), p.Now())
			} else {
				mon.ReportFailure(edge, p.Now())
			}
		}
		if !ok {
			failed = append(failed, ds[i])
		}
	}
	return failed
}

func (e *relEngine) hopDetail(d relData, hop route.Hop) string {
	if d.frag == e2eFrag {
		return fmt.Sprintf("e2e-ack -> %s via %s", hop.To, hop.Network)
	}
	return fmt.Sprintf("frag %d -> %s via %s", d.frag, hop.To, hop.Network)
}

// sendData encodes and transmits one packet over one link, piggybacking
// whatever hop acknowledgements are pending for that link. Encoding happens
// here, at transmission time, so retransmissions carry fresh piggybacked
// acks too.
func (e *relEngine) sendData(p *vtime.Proc, link *mad.Link, d relData, flush bool) {
	kind := mad.KindRel
	if d.frag == e2eFrag {
		kind = mad.KindRelE2E
		flush = true
	}
	// Flush is a per-hop property recomputed at every transmission; the
	// remaining flags (the aggregate marker) are end-to-end and ride along
	// unchanged.
	flags := d.flags &^ relFlagFlush
	if flush {
		flags |= relFlagFlush
	}
	acks := e.takePiggyback(link)
	pkt := encodeRelData(d.origin, d.final, d.id, d.frag, d.total, flags, d.payload, acks)
	link.Acquire(p)
	t0 := p.Now()
	link.Send(p, relMeta(kind, len(pkt)), pkt)
	e.flight().Record(flight.KindSend, p.Now(), vtime.Since(p.Now(), t0), d.id, len(d.payload), link.Channel.Network().Name)
	link.Release(p)
}

// takePiggyback drains (up to the batch cap) the pending hop acks headed
// where a data packet is about to go; each one saves a standalone control
// datagram.
func (e *relEngine) takePiggyback(link *mad.Link) []relAckKey {
	pend := e.pend[link]
	if len(pend) == 0 {
		return nil
	}
	n := min(len(pend), relAckBatchMax)
	acks := append([]relAckKey(nil), pend[:n]...)
	e.pend[link] = pend[n:]
	e.acksCoalesced += int64(n)
	e.metrics().Add("madgo_rel_acks_coalesced_total", obs.Labels{"node": e.node.Name}, float64(n))
	return acks
}

// await blocks until the slot completes or the timeout fires, whichever
// comes first, and reports success. The slot may already be complete (an
// acknowledgement that raced the sender), in which case it returns without
// parking.
func (e *relEngine) await(p *vtime.Proc, aw *relAwait, to vtime.Duration, what string) bool {
	if !aw.done {
		aw.w = p.Blocker(what)
		e.sim().After(to, func() {
			if aw.done {
				return
			}
			aw.done = true
			aw.ok = false
			aw.w.Wake()
		})
		aw.w.Wait()
	}
	return aw.ok
}

// complete fulfils an awaited slot from handler context (never parks).
func complete(aw *relAwait) {
	if aw != nil && !aw.done {
		aw.done = true
		aw.ok = true
		if aw.w != nil {
			aw.w.Wake()
		}
	}
}

// nextHop picks the first leg toward dst, preferring the primary topology
// (the high-speed networks) and falling back to Config.FallbackTopo (the
// full configuration including the control network) when the primary has no
// live path. Presumed-dead links and suspect relays are routed around, and
// a non-empty exclude (split horizon: the ingress neighbour of a relayed
// packet) is barred as an intermediate hop; tables are cached per
// (topology, constraint-set) pair.
func (e *relEngine) nextHop(dst, exclude string, now vtime.Time) (route.Hop, bool) {
	if e.vc.mon != nil {
		return e.nextHopHealth(dst, exclude)
	}
	c, tag := e.currentDead(now)
	if exclude != "" && exclude != dst {
		if c.Relays == nil {
			c.Relays = make(map[string]bool, 1)
		}
		c.Relays[exclude] = true
		tag += "|x:" + exclude
	}
	me := e.node.Name
	for i, t := range [...]*topo.Topology{e.vc.tp, e.vc.cfg.FallbackTopo} {
		if t == nil {
			continue
		}
		if _, ok := t.Node(me); !ok {
			continue
		}
		if _, ok := t.Node(dst); !ok {
			continue
		}
		key := fmt.Sprintf("%d|%s", i, tag)
		tbl := e.tables[key]
		if tbl == nil {
			tbl = route.ComputeConstrained(t, c)
			e.tables[key] = tbl
		}
		if r, ok := tbl.Lookup(me, dst); ok && len(r) > 0 {
			return r[0], true
		}
	}
	return route.Hop{}, false
}

// nextHopHealth is nextHop when the link-health monitor owns liveness: the
// monitor's epoch-stamped tables are shared by every node, so all senders
// converge on the same routes the instant a transition publishes a new
// epoch. Only split-horizon exclusions need per-engine tables — the epoch
// constraints merged with the barred ingress neighbour — and those are
// cached per (topology, exclude) and invalidated wholesale on epoch change.
func (e *relEngine) nextHopHealth(dst, exclude string) (route.Hop, bool) {
	mon := e.vc.mon
	me := e.node.Name
	if ep := mon.Epoch(); ep != e.tablesEpoch {
		e.tables = make(map[string]*route.Table)
		e.tablesEpoch = ep
	}
	if exclude == "" || exclude == dst {
		for _, tbl := range mon.Tables() {
			if r, ok := tbl.Lookup(me, dst); ok && len(r) > 0 {
				return r[0], true
			}
		}
		return route.Hop{}, false
	}
	base := mon.Constraints()
	c := route.Constraints{Nodes: base.Nodes, Edges: base.Edges}
	c.Relays = make(map[string]bool, len(base.Relays)+1)
	for k, v := range base.Relays {
		c.Relays[k] = v
	}
	c.Relays[exclude] = true
	for i, t := range [...]*topo.Topology{e.vc.tp, e.vc.cfg.FallbackTopo} {
		if t == nil {
			continue
		}
		key := fmt.Sprintf("h%d|x:%s", i, exclude)
		tbl := e.tables[key]
		if tbl == nil {
			tbl = route.ComputeConstrained(t, c)
			e.tables[key] = tbl
		}
		if r, ok := tbl.Lookup(me, dst); ok && len(r) > 0 {
			return r[0], true
		}
	}
	return route.Hop{}, false
}

// currentDead prunes expired liveness guesses and returns the live routing
// constraints plus a canonical cache tag for them.
func (e *relEngine) currentDead(now vtime.Time) (route.Constraints, string) {
	var names []string
	var c route.Constraints
	for edge, exp := range e.dead {
		if exp <= now {
			delete(e.dead, edge)
			continue
		}
		if c.Edges == nil {
			c.Edges = make(map[route.Edge]bool)
		}
		c.Edges[edge] = true
		names = append(names, edge.String())
	}
	for n, exp := range e.suspect {
		if exp <= now {
			delete(e.suspect, n)
			continue
		}
		if c.Relays == nil {
			c.Relays = make(map[string]bool)
		}
		c.Relays[n] = true
		names = append(names, "!"+n)
	}
	if len(names) == 0 {
		return route.Constraints{}, ""
	}
	sort.Strings(names)
	return c, strings.Join(names, ",")
}

// markDead records a failover: the neighbour stopped acknowledging on one
// link. The directed link is excluded from routing, and the neighbour is
// excluded as a *relay* — the evidence cannot distinguish a crashed node
// from one downed network, so nothing further is routed through it, but it
// stays a legal destination over its other links. Both expire after
// ReprobeAfter.
func (e *relEngine) markDead(hop route.Hop, now vtime.Time) {
	e.failovers++
	e.trace("failover", 0, now)
	e.count("madgo_failovers_total")
	if mon := e.vc.mon; mon != nil {
		// Exhausted retry budget is hard evidence: the monitor owns the
		// state machine, the epoch bump, and the probation schedule that
		// will eventually re-admit the link.
		mon.ReportDead(route.Edge{From: e.node.Name, To: hop.To, Network: hop.Network}, now)
		return
	}
	exp := vtime.Time(math.MaxInt64)
	if e.pol.ReprobeAfter > 0 {
		exp = now.Add(e.pol.ReprobeAfter)
	}
	e.dead[route.Edge{From: e.node.Name, To: hop.To, Network: hop.Network}] = exp
	e.suspect[hop.To] = exp
}

// handle dispatches one arrival in the polling daemon. The Recv comes
// first, unconditionally: it frees the link's flow-control credit before
// any further work, which is what keeps the ack/credit graph acyclic.
func (e *relEngine) handle(p *vtime.Proc, a *mad.Arrival) {
	meta, slot := a.Link.Recv(p)
	switch meta.Kind {
	case mad.KindRel, mad.KindRelE2E:
		e.handleData(p, a.Link, slot)
	case mad.KindRelAck:
		e.handleAck(slot)
	case mad.KindHealth:
		e.handleHealth(p, a.Link, slot)
	default:
		panic("fwd: unexpected " + meta.Kind.String() + " message in reliable mode on " + e.node.Name)
	}
}

// handleData verifies, acknowledges and routes one data or end-to-end-ack
// packet. It never parks: relays and acknowledgements are enqueued to the
// node's daemons with non-blocking sends.
func (e *relEngine) handleData(p *vtime.Proc, in *mad.Link, pkt []byte) {
	d, ok := decodeRelData(pkt)
	if !ok {
		e.checksumDrops++
		e.trace("corrupt-drop", len(pkt), p.Now())
		e.count("madgo_checksum_drops_total")
		return // no ack: the sender retransmits
	}
	// Piggybacked hop acks ride in the data trailer; settle them first so
	// a blocked sender wakes even if this packet is otherwise a duplicate.
	for _, k := range d.acks {
		complete(e.acks[k])
	}
	if d.final != e.node.Rank {
		ingress := e.vc.sess.Node(in.Src.Rank).Name
		finalName := e.vc.sess.Node(d.final).Name
		// Custody refusal: accepting (acking) a packet we can only route
		// back where it came from would either loop it or strand it here.
		// Without the ack the upstream retransmits, buries this link and
		// reroutes — local knowledge propagates exactly as far as needed.
		if _, ok := e.nextHop(finalName, ingress, p.Now()); !ok {
			e.relayDrops++
			e.count("madgo_relay_drops_total")
			e.hop(d.id, p.Now(), "refuse",
				fmt.Sprintf("no route to %s except back via %s", finalName, ingress), 0)
			return
		}
		if !e.enqueueRelay(relayItem{d: d, from: ingress, enq: p.Now()}) {
			return // backpressure: no ack until the queue drains
		}
		e.hopAck(in, d)
		return
	}
	if d.frag == e2eFrag {
		e.hopAck(in, d)
		if aw := e.e2e[relMsgKey{origin: d.origin, id: d.id}]; aw != nil {
			e.trace("e2e", 0, p.Now())
			e.hop(d.id, p.Now(), "e2e", "end-to-end ack received", 0)
			complete(aw)
		}
		return
	}
	e.acceptLocal(p, in, d)
}

// acceptLocal stores one fragment at its final destination, suppressing
// duplicates, and completes the message when the last fragment lands.
func (e *relEngine) acceptLocal(p *vtime.Proc, in *mad.Link, d relData) {
	e.hopAck(in, d)
	mkey := relMsgKey{origin: d.origin, id: d.id}
	if e.done[d.origin].has(d.id) {
		// The whole message already arrived; the origin is resending
		// because our end-to-end ack got lost. Re-ack.
		e.dups++
		e.trace("dup", len(d.payload), p.Now())
		e.count("madgo_duplicates_total")
		e.hop(d.id, p.Now(), "dup", fmt.Sprintf("frag %d after completion, re-acked", d.frag), len(d.payload))
		e.sendE2E(d.origin, d.id)
		return
	}
	m := e.rx[mkey]
	if m == nil {
		if len(e.rx) >= relRxCap {
			e.evictOldestRx(p)
		}
		m = &relMsg{origin: d.origin, id: d.id, total: d.total, frags: make(map[uint32][]byte),
			agg: d.flags&relFlagAgg != 0}
		e.rx[mkey] = m
	}
	if _, have := m.frags[d.frag]; have {
		e.dups++
		e.trace("dup", len(d.payload), p.Now())
		e.count("madgo_duplicates_total")
		e.hop(d.id, p.Now(), "dup", fmt.Sprintf("frag %d suppressed", d.frag), len(d.payload))
		return
	}
	m.frags[d.frag] = d.payload
	if uint32(len(m.frags)) == m.total {
		e.markDone(d.origin, d.id)
		// The reassembled message now travels by reference through the
		// merged queue; dropping the rx entry is what keeps a long-lived
		// node's reassembly table from growing one record per message.
		delete(e.rx, mkey)
		if !e.vc.merged[e.node.Rank].TrySend(incoming{rel: m}) {
			panic("fwd: merged arrival queue overflow on " + e.node.Name)
		}
		payload := 0
		for f, b := range m.frags {
			if f != 0 {
				payload += len(b)
			}
		}
		e.hop(d.id, p.Now(), "deliver",
			fmt.Sprintf("reassembled at %s (%d fragments)", e.node.Name, m.total), payload)
		e.sendE2E(d.origin, d.id)
	}
}

// markDone records a completed message in the origin's bounded
// duplicate-suppression window.
func (e *relEngine) markDone(origin mad.Rank, id uint64) {
	w := e.done[origin]
	if w == nil {
		w = &relDoneWindow{set: make(map[uint64]struct{})}
		e.done[origin] = w
	}
	w.add(id)
}

// evictOldestRx drops the reassembly state with the smallest (origin, id) —
// the stalest partial under monotone per-origin IDs. Its origin's
// end-to-end timeout resends the whole message, so eviction costs
// retransmitted bytes, never delivery.
func (e *relEngine) evictOldestRx(p *vtime.Proc) {
	var victim relMsgKey
	found := false
	for k := range e.rx {
		if !found || k.id < victim.id || (k.id == victim.id && k.origin < victim.origin) {
			victim, found = k, true
		}
	}
	if !found {
		return
	}
	delete(e.rx, victim)
	e.rxEvictions++
	e.count("madgo_rel_rx_evictions_total")
	e.hop(victim.id, p.Now(), "evict",
		fmt.Sprintf("partial reassembly evicted at cap %d", relRxCap), 0)
}

// hopAck records the hop acknowledgement of one packet against its reverse
// link. The entry sits in the link's pending batch until the sender's flush
// flag (the last packet of its burst) — or the batch cap — schedules a
// control-daemon drain; a data packet headed the same way may piggyback it
// first. A full control queue silently drops the flush — the sender's
// retransmission (always flush-flagged) absorbs it.
func (e *relEngine) hopAck(in *mad.Link, d relData) {
	back := in.Channel.Link(e.node.Rank, in.Src.Rank)
	e.pend[back] = append(e.pend[back], d.key())
	if d.flags&relFlagFlush == 0 && len(e.pend[back]) < relAckBatchMax {
		return
	}
	if e.queued[back] {
		return
	}
	if e.ctlQ.TrySend(back) {
		e.queued[back] = true
	}
}

// sendE2E queues the end-to-end acknowledgement of a fully-received message
// for reliable delivery back to its origin.
func (e *relEngine) sendE2E(origin mad.Rank, id uint64) {
	it := relayItem{
		d:   relData{origin: origin, final: origin, id: id, frag: e2eFrag},
		enq: e.sim().Now(),
	}
	e.enqueueRelay(it) // a refused ack is absorbed by the origin's resend
}

// enqueueRelay admits one packet to the relay daemon: the per-ingress-flow
// DRR queues in flow-control mode, the FIFO queue otherwise. A refusal
// (backlog at capacity) means no hop ack, which the upstream ARQ converts
// into a retransmission — backpressure, not loss. The callers count a
// refusal as a relay drop in FIFO mode; in flow mode it is counted here as
// backpressure instead.
func (e *relEngine) enqueueRelay(it relayItem) bool {
	if e.relayDRR == nil {
		if !e.relayQ.TrySend(it) {
			e.relayDrops++
			e.count("madgo_relay_drops_total")
			return false
		}
		return true
	}
	if e.relayDRR.Len() >= relRelayCap {
		e.flowBackpressure++
		e.metrics().Add("madgo_flow_backpressure_total", obs.Labels{"node": e.node.Name}, 1)
		return false
	}
	e.relayDRR.Push(it.from, it)
	e.relaySem.Release(1)
	return true
}

// relayRounds returns how many full DRR passes the fair relay daemon
// completed (0 in FIFO mode).
func (e *relEngine) relayRounds() int64 {
	if e.relayDRR == nil {
		return 0
	}
	return e.relayDRR.Rounds()
}

// handleAck completes the awaited slots of one batched acknowledgement.
func (e *relEngine) handleAck(pkt []byte) {
	keys, ok := decodeRelAcks(pkt)
	if !ok {
		e.checksumDrops++
		return
	}
	for _, key := range keys {
		complete(e.acks[key])
	}
}

// relayLoop is the per-node relay daemon: it reliably forwards queued
// packets (data passing through this node, and end-to-end acks this node
// originates or relays). Backlogged packets bound for the same final
// destination move as one windowed burst, so a relay preserves the
// upstream sender's ack coalescing instead of re-expanding the stream into
// stop-and-wait.
func (e *relEngine) relayLoop(p *vtime.Proc) {
	if e.relayDRR != nil {
		e.relayLoopFair(p)
		return
	}
	for {
		it, ok := e.relayQ.Recv(p)
		if !ok {
			return
		}
		qwait := func(item relayItem) {
			if item.enq > 0 {
				e.flight().Record(flight.KindQueueWait, p.Now(), p.Now().Sub(item.enq),
					item.d.id, len(item.d.payload), "")
			}
		}
		qwait(it)
		batch := []relData{it.d}
		var requeue []relayItem
		for len(batch) < e.pol.Window {
			more, ok := e.relayQ.TryRecv()
			if !ok {
				break
			}
			if more.d.final == it.d.final && more.from == it.from {
				qwait(more)
				batch = append(batch, more.d)
			} else {
				requeue = append(requeue, more)
			}
		}
		for _, r := range requeue {
			if !e.relayQ.TrySend(r) {
				e.relayDrops++
				e.count("madgo_relay_drops_total")
			}
		}
		finalName := e.vc.sess.Node(it.d.final).Name
		if e.forwardBatchExcluding(p, finalName, it.from, batch) {
			for _, d := range batch {
				if d.frag != e2eFrag {
					e.relayedPkts++
					e.relayedBytes += int64(len(d.payload))
					if d.frag == 0 {
						e.relayedMsgs++
					}
				}
			}
		} else {
			e.relayDrops++
			e.count("madgo_relay_drops_total")
		}
	}
}

// relayLoopFair is the flow-control relay daemon: packets are served in
// deficit-round-robin order over ingress flows instead of FIFO, each flow
// charged the payload bytes it relayed, so a backlogged elephant sender
// repays its debt over following rounds while mouse flows keep being
// served — long-run relay bandwidth equalizes across contending ingress
// neighbours. Same-flow packets to the same final destination still move
// as one windowed burst, preserving ack coalescing.
func (e *relEngine) relayLoopFair(p *vtime.Proc) {
	qwait := func(item relayItem) {
		if item.enq > 0 {
			e.flight().Record(flight.KindQueueWait, p.Now(), p.Now().Sub(item.enq),
				item.d.id, len(item.d.payload), "")
		}
	}
	for {
		e.relaySem.Acquire(p, 1)
		key, it, ok := e.relayDRR.Pop()
		if !ok {
			panic("fwd: relay scheduler woken with empty queues on " + e.node.Name)
		}
		qwait(it)
		batch := []relData{it.d}
		cost := int64(len(it.d.payload))
		for len(batch) < e.pol.Window {
			more, ok := e.relayDRR.PopFrom(key, func(m relayItem) bool { return m.d.final == it.d.final })
			if !ok {
				break
			}
			if !e.relaySem.TryAcquire(1) {
				panic("fwd: relay scheduler permit ledger out of balance on " + e.node.Name)
			}
			qwait(more)
			batch = append(batch, more.d)
			cost += int64(len(more.d.payload))
		}
		finalName := e.vc.sess.Node(it.d.final).Name
		if e.forwardBatchExcluding(p, finalName, key, batch) {
			for _, d := range batch {
				if d.frag != e2eFrag {
					e.relayedPkts++
					e.relayedBytes += int64(len(d.payload))
					if d.frag == 0 {
						e.relayedMsgs++
					}
				}
			}
		} else {
			e.relayDrops++
			e.count("madgo_relay_drops_total")
		}
		e.relayDRR.Charge(key, cost)
	}
}

// ctlLoop is the per-node control daemon: it drains each scheduled link's
// pending hop acks into one batched acknowledgement datagram. Its sends may
// block on link credits, but never on another daemon, so the polling
// daemons stay free to drain mailboxes. A link whose batch was already
// emptied by piggybacking is skipped.
func (e *relEngine) ctlLoop(p *vtime.Proc) {
	for {
		link, ok := e.ctlQ.Recv(p)
		if !ok {
			return
		}
		delete(e.queued, link)
		// Re-read the pending batch before every datagram: the link.Send
		// below parks, and the polling daemon may append new entries
		// meanwhile.
		for len(e.pend[link]) > 0 {
			pend := e.pend[link]
			n := min(len(pend), relAckBatchMax)
			pkt := encodeRelAcks(pend[:n])
			e.pend[link] = pend[n:]
			e.ackPackets++
			e.count("madgo_rel_ack_packets_total")
			if n > 1 {
				e.acksCoalesced += int64(n - 1)
				e.metrics().Add("madgo_rel_acks_coalesced_total",
					obs.Labels{"node": e.node.Name}, float64(n-1))
			}
			link.Acquire(p)
			link.Send(p, relMeta(mad.KindRelAck, len(pkt)), pkt)
			link.Release(p)
		}
	}
}

// RelBookkeeping is the size of the reliable mode's per-message bookkeeping,
// summed over every node — a hook for the memory-growth regression tests:
// both figures must stay bounded no matter how many messages a run delivers.
type RelBookkeeping struct {
	// DoneIDs is how many completed message IDs the duplicate-suppression
	// windows track exactly (bounded by relDupWindow per origin).
	DoneIDs int
	// RxPartials is how many in-progress reassemblies exist (bounded by
	// relRxCap per node; 0 on a quiesced run).
	RxPartials int
	// RxEvictions is how many partial reassemblies were evicted at the cap.
	RxEvictions int64
}

// RelBookkeeping sums the reliable mode's bookkeeping sizes over every node.
// Zero-valued in streaming mode.
func (vc *VirtualChannel) RelBookkeeping() RelBookkeeping {
	var s RelBookkeeping
	for _, name := range vc.relOrder {
		e := vc.rel[name]
		for _, w := range e.done {
			s.DoneIDs += w.size()
		}
		s.RxPartials += len(e.rx)
		s.RxEvictions += e.rxEvictions
	}
	return s
}

// AckStats aggregates the acknowledgement-traffic counters over every node.
// Unlike DeliveryStats these are non-zero on clean runs: they count control
// datagrams, not failures.
type AckStats struct {
	// Packets is how many standalone acknowledgement datagrams were sent.
	Packets int64
	// Coalesced is how many individual hop acknowledgements avoided their
	// own datagram — by riding in a batch (n-1 of a batch of n) or by
	// piggybacking on a reverse-direction data packet (all n).
	Coalesced int64
}

// AckStats sums the acknowledgement-traffic counters over every node.
// Zero-valued in streaming (non-reliable) mode.
func (vc *VirtualChannel) AckStats() AckStats {
	var s AckStats
	for _, name := range vc.relOrder {
		e := vc.rel[name]
		s.Packets += e.ackPackets
		s.Coalesced += e.acksCoalesced
	}
	return s
}

// DeliveryStats sums the reliability counters over every node, in node
// declaration order. Zero-valued in streaming (non-reliable) mode.
func (vc *VirtualChannel) DeliveryStats() DeliveryStats {
	var s DeliveryStats
	for _, name := range vc.relOrder {
		e := vc.rel[name]
		s.Retransmits += e.retransmits
		s.Failovers += e.failovers
		s.MessageResends += e.msgResends
		s.Duplicates += e.dups
		s.ChecksumDrops += e.checksumDrops
		s.RelayDrops += e.relayDrops
	}
	return s
}

// relBlock is one packed block buffered until EndPacking.
type relBlock struct {
	data []byte
	s    mad.SendMode
	r    mad.RecvMode
}

// relPacking is the sender side of a reliable message: blocks are buffered
// (SendSafer pays its snapshot copy immediately, the others are referenced —
// safe because EndPacking blocks until the message is end-to-end
// acknowledged) and the whole message is fragmented and sent at EndPacking.
type relPacking struct {
	eng    *relEngine
	dst    string
	id     uint64
	blocks []relBlock
}

func newRelPacking(eng *relEngine, dst string) *relPacking {
	return &relPacking{eng: eng, dst: dst, id: eng.vc.nextMsgID()}
}

func (rp *relPacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	host := rp.eng.node.Host
	t0 := p.Now()
	p.Sleep(host.CPU.PackCost)
	if s == mad.SendSafer {
		host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
	}
	rp.eng.flight().Record(flight.KindPack, p.Now(), vtime.Since(p.Now(), t0), rp.id, len(data), "")
	rp.blocks = append(rp.blocks, relBlock{data: data, s: s, r: r})
}

func (rp *relPacking) end(p *vtime.Proc) {
	rp.eng.sendMessage(p, rp.dst, rp.blocks, rp.id)
}

// relUnpacking is the receiver side: the message is already fully
// reassembled (that is what the arrival means), so unpack calls verify the
// mirrored flags against the descriptor and copy fragments out.
type relUnpacking struct {
	eng      *relEngine
	m        *relMsg
	mtu      int
	desc     []mad.BlockDesc
	nextBlk  int
	nextFrag uint32
}

func newRelUnpacking(eng *relEngine, m *relMsg) *relUnpacking {
	mtu, desc, ok := decodeRelDesc(m.frags[0])
	if !ok {
		panic("fwd: reliable message with malformed descriptor on " + eng.node.Name)
	}
	return &relUnpacking{eng: eng, m: m, mtu: mtu, desc: desc, nextFrag: 1}
}

func (ru *relUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	if ru.nextBlk >= len(ru.desc) {
		panic("fwd: unpack past the end of a reliable message")
	}
	d := ru.desc[ru.nextBlk]
	ru.nextBlk++
	if d.S != s || d.R != r || d.Size != len(dst) {
		panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, len(dst), s, r))
	}
	host := ru.eng.node.Host
	p.Sleep(host.CPU.PackCost)
	mad.ForEachFragment(len(dst), ru.mtu, func(off, n int) {
		frag, ok := ru.m.frags[ru.nextFrag]
		ru.nextFrag++
		if !ok || len(frag) != n {
			panic("fwd: reliable message fragment size mismatch")
		}
		if n > 0 {
			host.Memcpy(p, n)
			copy(dst[off:off+n], frag)
		}
	})
}

func (ru *relUnpacking) end(p *vtime.Proc) {
	if ru.nextBlk != len(ru.desc) || ru.nextFrag != ru.m.total {
		panic(fmt.Sprintf("fwd: reliable message not fully unpacked (%d/%d blocks, %d/%d fragments)",
			ru.nextBlk, len(ru.desc), ru.nextFrag, ru.m.total))
	}
	delete(ru.eng.rx, relMsgKey{origin: ru.m.origin, id: ru.m.id})
}
