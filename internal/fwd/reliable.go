package fwd

// Reliable delivery: the robustness mode of the forwarding layer.
//
// The paper's forwarding machinery assumes perfect hardware: every packet a
// gateway relays arrives intact, so the GTM can stream packets with no
// sequencing or acknowledgement. Under the fault injector (package fault)
// that assumption breaks, and Config.Reliable replaces the streaming GTM
// with a reliable datagram protocol:
//
//   - Every message is cut into self-contained, checksummed packets:
//     fragment 0 carries the message descriptor (MTU and per-block layout),
//     fragments 1..total-1 carry the payload. Each packet names the
//     message's origin, final destination, message id and fragment index,
//     so any node can route it and the final destination can reassemble
//     and de-duplicate.
//   - Packets travel hop by hop with stop-and-wait acknowledgements,
//     exponential backoff, and a bounded retry budget per hop. A hop that
//     exhausts its budget presumes the neighbour dead and recomputes a
//     route around it (multi-gateway failover, or degradation to the slow
//     control network when Config.FallbackTopo names one).
//   - Hop acknowledgements only say a relay accepted the packet; a crash
//     can still lose accepted packets. The final destination therefore
//     returns an end-to-end acknowledgement (itself a reliably-delivered
//     packet), and the origin re-sends the whole message when it times
//     out; duplicates are suppressed at the final destination.
//   - A sender whose retries and reroutes all fail surfaces a typed
//     *DeliveryError through vtime.Abort, so the simulation ends with an
//     error instead of deadlocking.
//
// Deadlock freedom: the per-network polling daemons always Recv (which
// frees the link's eager flow-control credit) before doing anything else,
// and never block on sends — acknowledgements go through a per-node control
// daemon, relays through a per-node relay daemon, both fed by bounded
// queues with non-blocking enqueue. A full queue just means no ack, which
// the upstream retry converts into a retransmission later.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strings"

	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// RetryPolicy tunes the reliability protocol. Zero fields take the defaults
// of DefaultRetryPolicy.
type RetryPolicy struct {
	// AckTimeout is the initial per-hop acknowledgement timeout; it
	// doubles on every retransmission up to MaxTimeout.
	AckTimeout vtime.Duration
	// MaxTimeout caps the doubled per-hop timeout and the inter-attempt
	// backoff of whole-message resends.
	MaxTimeout vtime.Duration
	// PacketRetries is how many times one packet is retransmitted on one
	// hop before the neighbour is presumed dead.
	PacketRetries int
	// MessageRetries is how many times the whole message is re-sent after
	// an end-to-end acknowledgement timeout before the sender gives up
	// with a DeliveryError.
	MessageRetries int
	// E2EBase and E2EPerFrag size the end-to-end acknowledgement timeout:
	// E2EBase + E2EPerFrag per fragment of the message.
	E2EBase    vtime.Duration
	E2EPerFrag vtime.Duration
	// ReprobeAfter is how long a presumed-dead node stays excluded from
	// routing before it is probed again (0 = forever).
	ReprobeAfter vtime.Duration
	// RouteAttempts bounds how many alternate next hops one packet tries
	// before its forwarding fails.
	RouteAttempts int
}

// DefaultRetryPolicy returns the timeouts and budgets the tests and tools
// use. They are sized for the paper's testbed: the slowest hop (Fast
// Ethernet) moves a 32 KB fragment in under 3 ms, safely inside the 5 ms
// initial ack timeout. E2EBase exceeds a full dead-neighbour detection
// cycle (PacketRetries doubling timeouts, ~155 ms) so that one message
// attempt survives a downstream relay — or the returning end-to-end
// acknowledgement — having to discover a crashed gateway itself.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		AckTimeout:     5 * vtime.Millisecond,
		MaxTimeout:     80 * vtime.Millisecond,
		PacketRetries:  5,
		MessageRetries: 3,
		E2EBase:        250 * vtime.Millisecond,
		E2EPerFrag:     5 * vtime.Millisecond,
		ReprobeAfter:   500 * vtime.Millisecond,
		RouteAttempts:  3,
	}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.AckTimeout <= 0 {
		rp.AckTimeout = def.AckTimeout
	}
	if rp.MaxTimeout <= 0 {
		rp.MaxTimeout = def.MaxTimeout
	}
	if rp.PacketRetries <= 0 {
		rp.PacketRetries = def.PacketRetries
	}
	if rp.MessageRetries <= 0 {
		rp.MessageRetries = def.MessageRetries
	}
	if rp.E2EBase <= 0 {
		rp.E2EBase = def.E2EBase
	}
	if rp.E2EPerFrag <= 0 {
		rp.E2EPerFrag = def.E2EPerFrag
	}
	if rp.ReprobeAfter < 0 {
		rp.ReprobeAfter = def.ReprobeAfter
	}
	if rp.RouteAttempts <= 0 {
		rp.RouteAttempts = def.RouteAttempts
	}
	return rp
}

// DeliveryError reports that a message could not be delivered: every
// retransmission, reroute and whole-message resend failed. It reaches the
// caller of Sim.Run (and madeleine.System.Run) via vtime.Abort.
type DeliveryError struct {
	From     string
	To       string
	Reason   string // "timeout" (no end-to-end ack) or "unreachable" (no route left)
	Attempts int
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("fwd: delivery %s -> %s failed after %d attempt(s): %s",
		e.From, e.To, e.Attempts, e.Reason)
}

// DeliveryStats aggregates the reliability protocol's counters over every
// node of the virtual channel. All zero on a fault-free run.
type DeliveryStats struct {
	Retransmits    int64 // per-hop packet retransmissions
	Failovers      int64 // neighbours presumed dead and routed around
	MessageResends int64 // whole-message resends after e2e timeouts
	Duplicates     int64 // duplicate packets suppressed at destinations
	ChecksumDrops  int64 // packets discarded for a bad checksum
	RelayDrops     int64 // packets a relay accepted but could not forward
}

// Wire format (all little-endian, CRC32-IEEE over everything before the
// trailing checksum — acknowledgements included, so a corrupted ack is
// dropped rather than misparsed):
//
//	data:  origin u32 | final u32 | msgID u64 | frag u32 | total u32 | payload | crc u32
//	ack:   origin u32 | msgID u64 | frag u32 | crc u32
//
// An end-to-end acknowledgement is a data packet with frag == e2eFrag,
// total == 0, an empty payload and final == origin — routed back to the
// message origin through the same reliable relay machinery as data.
const (
	relDataHdrLen = 24
	relTrailerLen = 4
	relOverhead   = relDataHdrLen + relTrailerLen
	relAckPktLen  = 20
)

// e2eFrag is the fragment-index sentinel marking an end-to-end ack packet.
const e2eFrag = ^uint32(0)

func sealCRC(pkt []byte) {
	n := len(pkt) - relTrailerLen
	binary.LittleEndian.PutUint32(pkt[n:], crc32.ChecksumIEEE(pkt[:n]))
}

func checkCRC(pkt []byte) bool {
	if len(pkt) < relTrailerLen {
		return false
	}
	n := len(pkt) - relTrailerLen
	return binary.LittleEndian.Uint32(pkt[n:]) == crc32.ChecksumIEEE(pkt[:n])
}

// relData is a decoded data packet.
type relData struct {
	origin  mad.Rank
	final   mad.Rank
	id      uint64
	frag    uint32
	total   uint32
	payload []byte
}

func encodeRelData(origin, final mad.Rank, id uint64, frag, total uint32, payload []byte) []byte {
	pkt := make([]byte, relDataHdrLen+len(payload)+relTrailerLen)
	binary.LittleEndian.PutUint32(pkt[0:], uint32(origin))
	binary.LittleEndian.PutUint32(pkt[4:], uint32(final))
	binary.LittleEndian.PutUint64(pkt[8:], id)
	binary.LittleEndian.PutUint32(pkt[16:], frag)
	binary.LittleEndian.PutUint32(pkt[20:], total)
	copy(pkt[relDataHdrLen:], payload)
	sealCRC(pkt)
	return pkt
}

func decodeRelData(pkt []byte) (relData, bool) {
	if len(pkt) < relOverhead || !checkCRC(pkt) {
		return relData{}, false
	}
	return relData{
		origin:  mad.Rank(binary.LittleEndian.Uint32(pkt[0:])),
		final:   mad.Rank(binary.LittleEndian.Uint32(pkt[4:])),
		id:      binary.LittleEndian.Uint64(pkt[8:]),
		frag:    binary.LittleEndian.Uint32(pkt[16:]),
		total:   binary.LittleEndian.Uint32(pkt[20:]),
		payload: pkt[relDataHdrLen : len(pkt)-relTrailerLen],
	}, true
}

func encodeRelAck(origin mad.Rank, id uint64, frag uint32) []byte {
	pkt := make([]byte, relAckPktLen)
	binary.LittleEndian.PutUint32(pkt[0:], uint32(origin))
	binary.LittleEndian.PutUint64(pkt[4:], id)
	binary.LittleEndian.PutUint32(pkt[12:], frag)
	sealCRC(pkt)
	return pkt
}

func decodeRelAck(pkt []byte) (relAckKey, bool) {
	if len(pkt) != relAckPktLen || !checkCRC(pkt) {
		return relAckKey{}, false
	}
	return relAckKey{
		origin: mad.Rank(binary.LittleEndian.Uint32(pkt[0:])),
		id:     binary.LittleEndian.Uint64(pkt[4:]),
		frag:   binary.LittleEndian.Uint32(pkt[12:]),
	}, true
}

// The fragment-0 descriptor payload mirrors what the GTM transmits
// incrementally: the connection MTU and the per-block sizes and flag
// constraints the receiver's unpack calls must match.
//
//	mtu u32 | nblocks u32 | nblocks × (size u32 | sendMode u8 | recvMode u8)
func encodeRelDesc(mtu int, blocks []relBlock) []byte {
	b := make([]byte, 8+6*len(blocks))
	binary.LittleEndian.PutUint32(b[0:], uint32(mtu))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(blocks)))
	off := 8
	for _, bl := range blocks {
		binary.LittleEndian.PutUint32(b[off:], uint32(len(bl.data)))
		b[off+4] = byte(bl.s)
		b[off+5] = byte(bl.r)
		off += 6
	}
	return b
}

func decodeRelDesc(b []byte) (mtu int, desc []mad.BlockDesc, ok bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	mtu = int(binary.LittleEndian.Uint32(b[0:]))
	if mtu <= 0 {
		// A zero MTU from the wire would drive the receiver's
		// per-fragment loop with a degenerate step — reject it here,
		// like any other malformed descriptor (found by FuzzRelDesc).
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) != 8+6*n {
		return 0, nil, false
	}
	desc = make([]mad.BlockDesc, n)
	off := 8
	for i := range desc {
		desc[i] = mad.BlockDesc{
			Size: int(binary.LittleEndian.Uint32(b[off:])),
			S:    mad.SendMode(b[off+4]),
			R:    mad.RecvMode(b[off+5]),
		}
		off += 6
	}
	return mtu, desc, true
}

// relMeta is the link-layer metadata of one reliable packet: a single-block,
// single-transmission message flagged Reliable so it takes the plain eager
// path and is subject to fault injection.
func relMeta(kind mad.Kind, n int) mad.TxMeta {
	return mad.TxMeta{
		SOM:      true,
		Reliable: true,
		Kind:     kind,
		Blocks:   []mad.BlockDesc{{Size: n, S: mad.SendCheaper, R: mad.ReceiveCheaper}},
	}
}

// relAckKey identifies one packet for hop acknowledgement: who originated
// the message, which message, which fragment.
type relAckKey struct {
	origin mad.Rank
	id     uint64
	frag   uint32
}

// relMsgKey identifies one message.
type relMsgKey struct {
	origin mad.Rank
	id     uint64
}

// relAwait is a one-shot completion slot shared between a waiting sender and
// the acknowledgement handler (or the timeout callback, whichever fires
// first).
type relAwait struct {
	w    *vtime.Waker
	done bool
	ok   bool
}

// relMsg is a message being reassembled at its final destination. It is
// handed to the unpacking side through the node's merged arrival queue once
// every fragment arrived.
type relMsg struct {
	origin mad.Rank
	id     uint64
	total  uint32
	frags  map[uint32][]byte
}

// relayItem is one packet queued for forwarding by a node's relay daemon.
type relayItem struct {
	d   relData
	pkt []byte
}

// ctlItem is one acknowledgement queued for emission by a node's control
// daemon.
type ctlItem struct {
	link *mad.Link
	pkt  []byte
}

// relEngine is the per-node reliability engine: sequence numbers, awaited
// acknowledgements, reassembly state, liveness guesses and counters. All of
// it runs under the single-threaded simulation scheduler, so no locking.
type relEngine struct {
	vc   *VirtualChannel
	node *mad.Node
	pol  RetryPolicy

	dead   map[string]vtime.Time   // presumed-dead node -> reprobe time
	tables map[string]*route.Table // cached per (topology, dead-set) tables

	acks map[relAckKey]*relAwait
	e2e  map[relMsgKey]*relAwait
	rx   map[relMsgKey]*relMsg
	done map[relMsgKey]bool

	relayQ *vsync.Chan[relayItem]
	ctlQ   *vsync.Chan[ctlItem]

	retransmits   int64
	failovers     int64
	msgResends    int64
	relayedMsgs   int64
	relayedPkts   int64
	relayedBytes  int64
	dups          int64
	checksumDrops int64
	relayDrops    int64
}

func (e *relEngine) sim() *vtime.Sim { return e.vc.sess.Platform.Sim }

func (e *relEngine) trace(op string, bytes int, at vtime.Time) {
	e.vc.cfg.Tracer.Record("rel:"+e.node.Name, op, bytes, at, at)
}

func (e *relEngine) metrics() *obs.Registry { return e.vc.sess.Platform.Metrics }

// hop appends one provenance event for message id at this node.
func (e *relEngine) hop(id uint64, at vtime.Time, op, detail string, bytes int) {
	e.metrics().RecordHop(id, at, e.node.Name, op, detail, bytes)
}

// count bumps a per-node reliability counter (pre-registered at zero by
// buildReliable so the series appear in snapshots even on clean runs).
func (e *relEngine) count(name string) {
	e.metrics().Add(name, obs.Labels{"node": e.node.Name}, 1)
}

// relCounterNames are the per-node reliability counters, pre-registered so a
// snapshot of a clean run still shows the series at zero.
var relCounterNames = []string{
	"madgo_retransmits_total",
	"madgo_failovers_total",
	"madgo_message_resends_total",
	"madgo_duplicates_total",
	"madgo_checksum_drops_total",
	"madgo_relay_drops_total",
}

// buildReliable wires the reliable delivery machinery: one engine per node,
// one polling daemon per (node, network), and per-node relay and control
// daemons. Gateway stat objects are created for the primary topology's
// gateways so tools keep working, but no streaming pipelines start.
func (vc *VirtualChannel) buildReliable(buildTopo *topo.Topology) {
	sim := vc.sess.Platform.Sim
	pol := vc.cfg.Retry.withDefaults()
	vc.rel = make(map[string]*relEngine)
	for _, n := range buildTopo.Nodes() {
		node := vc.nodes[n.Name]
		e := &relEngine{
			vc:     vc,
			node:   node,
			pol:    pol,
			dead:   make(map[string]vtime.Time),
			tables: make(map[string]*route.Table),
			acks:   make(map[relAckKey]*relAwait),
			e2e:    make(map[relMsgKey]*relAwait),
			rx:     make(map[relMsgKey]*relMsg),
			done:   make(map[relMsgKey]bool),
			relayQ: vsync.NewChan[relayItem]("relq:"+n.Name, 1024),
			ctlQ:   vsync.NewChan[ctlItem]("ctlq:"+n.Name, 4096),
		}
		vc.rel[n.Name] = e
		for _, name := range relCounterNames {
			vc.metrics().Add(name, obs.Labels{"node": n.Name}, 0)
		}
		for _, nwName := range n.Networks {
			ep := vc.regular[nwName].At(node)
			sim.SpawnDaemon(fmt.Sprintf("relpoll:%s:%s", n.Name, nwName), func(p *vtime.Proc) {
				for {
					a := ep.WaitArrival(p)
					e.handle(p, a)
				}
			})
		}
		sim.SpawnDaemon("relfwd:"+n.Name, func(p *vtime.Proc) { e.relayLoop(p) })
		sim.SpawnDaemon("relctl:"+n.Name, func(p *vtime.Proc) { e.ctlLoop(p) })
	}
	for _, name := range vc.tp.Gateways() {
		g := newGateway(vc, vc.nodes[name])
		g.eng = vc.rel[name]
		vc.gates[name] = g
	}
}

// sendMessage fragments, encodes and reliably delivers one message under its
// pack-time ID, blocking until the final destination's end-to-end
// acknowledgement arrives. It runs in the application's process (called from
// EndPacking).
func (e *relEngine) sendMessage(p *vtime.Proc, dst string, blocks []relBlock, id uint64) {
	pol := e.pol
	// Per-path MTU: fragment at the most constrained network of the
	// primary route. The descriptor carries the chosen size, so the
	// receiver reassembles correctly even if failover later moves packets
	// onto a different path.
	mtu := e.vc.PathMTU(e.node.Name, dst)

	payloads := [][]byte{encodeRelDesc(mtu, blocks)}
	for _, b := range blocks {
		data := b.data
		mad.ForEachFragment(len(data), mtu, func(off, n int) {
			payloads = append(payloads, data[off:off+n])
		})
	}
	total := uint32(len(payloads))
	final := e.vc.NodeRank(dst)
	packets := make([][]byte, total)
	for i, pl := range payloads {
		packets[i] = encodeRelData(e.node.Rank, final, id, uint32(i), total, pl)
	}

	mkey := relMsgKey{origin: e.node.Rank, id: id}
	reason := "timeout"
	for attempt := 0; attempt <= pol.MessageRetries; attempt++ {
		if attempt > 0 {
			e.msgResends++
			e.trace("resend", 0, p.Now())
			e.count("madgo_message_resends_total")
			e.hop(id, p.Now(), "resend", fmt.Sprintf("attempt %d -> %s", attempt+1, dst), 0)
		}
		aw := &relAwait{}
		e.e2e[mkey] = aw
		routed := true
		for i, pkt := range packets {
			if aw.done {
				break // the e2e ack of a previous attempt arrived
			}
			key := relAckKey{origin: e.node.Rank, id: id, frag: uint32(i)}
			if !e.forwardPacket(p, dst, pkt, key) {
				routed = false
				break
			}
		}
		if !routed {
			if e.e2e[mkey] == aw {
				delete(e.e2e, mkey)
			}
			reason = "unreachable"
			if attempt < pol.MessageRetries {
				p.Sleep(e.backoff(attempt))
			}
			continue
		}
		to := pol.E2EBase + vtime.Duration(total)*pol.E2EPerFrag
		ok := e.await(p, aw, to, "rel e2e "+dst)
		if e.e2e[mkey] == aw {
			delete(e.e2e, mkey)
		}
		if ok {
			return
		}
		reason = "timeout"
	}
	panic(vtime.Abort{Err: &DeliveryError{
		From:     e.node.Name,
		To:       dst,
		Reason:   reason,
		Attempts: pol.MessageRetries + 1,
	}})
}

// backoff is the inter-attempt sleep after a routing failure: exponential
// from AckTimeout, capped at MaxTimeout.
func (e *relEngine) backoff(attempt int) vtime.Duration {
	d := e.pol.AckTimeout << uint(attempt)
	if d > e.pol.MaxTimeout {
		d = e.pol.MaxTimeout
	}
	return d
}

// forwardPacket moves one packet one step toward finalDst, trying alternate
// next hops (failover) when the preferred neighbour stops acknowledging. It
// reports false when no route is left or every alternate hop failed.
func (e *relEngine) forwardPacket(p *vtime.Proc, finalDst string, pkt []byte, key relAckKey) bool {
	for try := 0; try < e.pol.RouteAttempts; try++ {
		hop, ok := e.nextHop(finalDst, p.Now())
		if !ok {
			return false
		}
		if e.deliverHop(p, hop, pkt, key) {
			return true
		}
		e.markDead(hop.To, p.Now())
		e.hop(key.id, p.Now(), "failover", "presumed dead: "+hop.To, 0)
	}
	return false
}

// deliverHop transmits one packet to one neighbour with stop-and-wait
// retransmission and doubling timeouts. It reports false when the retry
// budget ran out without an acknowledgement.
func (e *relEngine) deliverHop(p *vtime.Proc, hop route.Hop, pkt []byte, key relAckKey) bool {
	link := e.vc.regular[hop.Network].Link(e.node.Rank, e.vc.NodeRank(hop.To))
	kind := mad.KindRel
	if key.frag == e2eFrag {
		kind = mad.KindRelE2E
	}
	det := fmt.Sprintf("frag %d -> %s via %s", key.frag, hop.To, hop.Network)
	if key.frag == e2eFrag {
		det = fmt.Sprintf("e2e-ack -> %s via %s", hop.To, hop.Network)
	}
	to := e.pol.AckTimeout
	for try := 0; try <= e.pol.PacketRetries; try++ {
		if try > 0 {
			e.retransmits++
			e.trace("rexmit", len(pkt), p.Now())
			e.count("madgo_retransmits_total")
			e.hop(key.id, p.Now(), "rexmit", det, len(pkt))
		}
		aw := &relAwait{}
		e.acks[key] = aw
		link.Acquire(p)
		link.Send(p, relMeta(kind, len(pkt)), pkt)
		link.Release(p)
		if try == 0 {
			e.hop(key.id, p.Now(), "hop", det, len(pkt))
		}
		ok := e.await(p, aw, to, "rel ack "+hop.To)
		if e.acks[key] == aw {
			delete(e.acks, key)
		}
		if ok {
			return true
		}
		to *= 2
		if to > e.pol.MaxTimeout {
			to = e.pol.MaxTimeout
		}
	}
	return false
}

// await blocks until the slot completes or the timeout fires, whichever
// comes first, and reports success. The slot may already be complete (an
// acknowledgement that raced the sender), in which case it returns without
// parking.
func (e *relEngine) await(p *vtime.Proc, aw *relAwait, to vtime.Duration, what string) bool {
	if !aw.done {
		aw.w = p.Blocker(what)
		e.sim().After(to, func() {
			if aw.done {
				return
			}
			aw.done = true
			aw.ok = false
			aw.w.Wake()
		})
		aw.w.Wait()
	}
	return aw.ok
}

// complete fulfils an awaited slot from handler context (never parks).
func complete(aw *relAwait) {
	if aw != nil && !aw.done {
		aw.done = true
		aw.ok = true
		if aw.w != nil {
			aw.w.Wake()
		}
	}
}

// nextHop picks the first leg toward dst, preferring the primary topology
// (the high-speed networks) and falling back to Config.FallbackTopo (the
// full configuration including the control network) when the primary has no
// live path. Presumed-dead nodes are routed around; tables are cached per
// (topology, dead-set) pair.
func (e *relEngine) nextHop(dst string, now vtime.Time) (route.Hop, bool) {
	avoid, tag := e.currentDead(now)
	me := e.node.Name
	for i, t := range [...]*topo.Topology{e.vc.tp, e.vc.cfg.FallbackTopo} {
		if t == nil {
			continue
		}
		if _, ok := t.Node(me); !ok {
			continue
		}
		if _, ok := t.Node(dst); !ok {
			continue
		}
		key := fmt.Sprintf("%d|%s", i, tag)
		tbl := e.tables[key]
		if tbl == nil {
			tbl = route.ComputeAvoiding(t, avoid)
			e.tables[key] = tbl
		}
		if r, ok := tbl.Lookup(me, dst); ok && len(r) > 0 {
			return r[0], true
		}
	}
	return route.Hop{}, false
}

// currentDead prunes expired liveness guesses and returns the live dead-set
// plus a canonical cache tag for it.
func (e *relEngine) currentDead(now vtime.Time) (map[string]bool, string) {
	var names []string
	for n, exp := range e.dead {
		if exp <= now {
			delete(e.dead, n)
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, ""
	}
	sort.Strings(names)
	avoid := make(map[string]bool, len(names))
	for _, n := range names {
		avoid[n] = true
	}
	return avoid, strings.Join(names, ",")
}

// markDead records a failover: the neighbour stopped acknowledging and is
// excluded from routing until ReprobeAfter passes.
func (e *relEngine) markDead(name string, now vtime.Time) {
	e.failovers++
	e.trace("failover", 0, now)
	e.count("madgo_failovers_total")
	exp := vtime.Time(math.MaxInt64)
	if e.pol.ReprobeAfter > 0 {
		exp = now.Add(e.pol.ReprobeAfter)
	}
	e.dead[name] = exp
}

// handle dispatches one arrival in the polling daemon. The Recv comes
// first, unconditionally: it frees the link's flow-control credit before
// any further work, which is what keeps the ack/credit graph acyclic.
func (e *relEngine) handle(p *vtime.Proc, a *mad.Arrival) {
	meta, slot := a.Link.Recv(p)
	switch meta.Kind {
	case mad.KindRel, mad.KindRelE2E:
		e.handleData(p, a.Link, slot)
	case mad.KindRelAck:
		e.handleAck(slot)
	default:
		panic("fwd: unexpected " + meta.Kind.String() + " message in reliable mode on " + e.node.Name)
	}
}

// handleData verifies, acknowledges and routes one data or end-to-end-ack
// packet. It never parks: relays and acknowledgements are enqueued to the
// node's daemons with non-blocking sends.
func (e *relEngine) handleData(p *vtime.Proc, in *mad.Link, pkt []byte) {
	d, ok := decodeRelData(pkt)
	if !ok {
		e.checksumDrops++
		e.trace("corrupt-drop", len(pkt), p.Now())
		e.count("madgo_checksum_drops_total")
		return // no ack: the sender retransmits
	}
	if d.final != e.node.Rank {
		if !e.relayQ.TrySend(relayItem{d: d, pkt: pkt}) {
			e.relayDrops++
			e.count("madgo_relay_drops_total")
			return // backpressure: no ack until the queue drains
		}
		e.hopAck(in, d)
		return
	}
	if d.frag == e2eFrag {
		e.hopAck(in, d)
		if aw := e.e2e[relMsgKey{origin: d.origin, id: d.id}]; aw != nil {
			e.trace("e2e", 0, p.Now())
			e.hop(d.id, p.Now(), "e2e", "end-to-end ack received", 0)
			complete(aw)
		}
		return
	}
	e.acceptLocal(p, in, d)
}

// acceptLocal stores one fragment at its final destination, suppressing
// duplicates, and completes the message when the last fragment lands.
func (e *relEngine) acceptLocal(p *vtime.Proc, in *mad.Link, d relData) {
	e.hopAck(in, d)
	mkey := relMsgKey{origin: d.origin, id: d.id}
	if e.done[mkey] {
		// The whole message already arrived; the origin is resending
		// because our end-to-end ack got lost. Re-ack.
		e.dups++
		e.trace("dup", len(d.payload), p.Now())
		e.count("madgo_duplicates_total")
		e.hop(d.id, p.Now(), "dup", fmt.Sprintf("frag %d after completion, re-acked", d.frag), len(d.payload))
		e.sendE2E(d.origin, d.id)
		return
	}
	m := e.rx[mkey]
	if m == nil {
		m = &relMsg{origin: d.origin, id: d.id, total: d.total, frags: make(map[uint32][]byte)}
		e.rx[mkey] = m
	}
	if _, have := m.frags[d.frag]; have {
		e.dups++
		e.trace("dup", len(d.payload), p.Now())
		e.count("madgo_duplicates_total")
		e.hop(d.id, p.Now(), "dup", fmt.Sprintf("frag %d suppressed", d.frag), len(d.payload))
		return
	}
	m.frags[d.frag] = d.payload
	if uint32(len(m.frags)) == m.total {
		e.done[mkey] = true
		if !e.vc.merged[e.node.Rank].TrySend(incoming{rel: m}) {
			panic("fwd: merged arrival queue overflow on " + e.node.Name)
		}
		payload := 0
		for f, b := range m.frags {
			if f != 0 {
				payload += len(b)
			}
		}
		e.hop(d.id, p.Now(), "deliver",
			fmt.Sprintf("reassembled at %s (%d fragments)", e.node.Name, m.total), payload)
		e.sendE2E(d.origin, d.id)
	}
}

// hopAck queues the hop acknowledgement of one packet on the reverse link.
// A full control queue silently drops the ack — the sender's retransmission
// absorbs it.
func (e *relEngine) hopAck(in *mad.Link, d relData) {
	back := in.Channel.Link(e.node.Rank, in.Src.Rank)
	e.ctlQ.TrySend(ctlItem{link: back, pkt: encodeRelAck(d.origin, d.id, d.frag)})
}

// sendE2E queues the end-to-end acknowledgement of a fully-received message
// for reliable delivery back to its origin.
func (e *relEngine) sendE2E(origin mad.Rank, id uint64) {
	it := relayItem{
		d:   relData{origin: origin, final: origin, id: id, frag: e2eFrag},
		pkt: encodeRelData(origin, origin, id, e2eFrag, 0, nil),
	}
	if !e.relayQ.TrySend(it) {
		e.relayDrops++
		e.count("madgo_relay_drops_total")
	}
}

// handleAck completes the awaited slot of one hop acknowledgement.
func (e *relEngine) handleAck(pkt []byte) {
	key, ok := decodeRelAck(pkt)
	if !ok {
		e.checksumDrops++
		return
	}
	complete(e.acks[key])
}

// relayLoop is the per-node relay daemon: it reliably forwards queued
// packets (data passing through this node, and end-to-end acks this node
// originates or relays), one at a time.
func (e *relEngine) relayLoop(p *vtime.Proc) {
	for {
		it, ok := e.relayQ.Recv(p)
		if !ok {
			return
		}
		finalName := e.vc.sess.Node(it.d.final).Name
		key := relAckKey{origin: it.d.origin, id: it.d.id, frag: it.d.frag}
		if e.forwardPacket(p, finalName, it.pkt, key) {
			if it.d.frag != e2eFrag {
				e.relayedPkts++
				e.relayedBytes += int64(len(it.pkt) - relOverhead)
				if it.d.frag == 0 {
					e.relayedMsgs++
				}
			}
		} else {
			e.relayDrops++
			e.count("madgo_relay_drops_total")
		}
	}
}

// ctlLoop is the per-node control daemon: it emits queued acknowledgements.
// Its sends may block on link credits, but never on another daemon, so the
// polling daemons stay free to drain mailboxes.
func (e *relEngine) ctlLoop(p *vtime.Proc) {
	for {
		it, ok := e.ctlQ.Recv(p)
		if !ok {
			return
		}
		it.link.Acquire(p)
		it.link.Send(p, relMeta(mad.KindRelAck, len(it.pkt)), it.pkt)
		it.link.Release(p)
	}
}

// DeliveryStats sums the reliability counters over every node, in node
// declaration order. Zero-valued in streaming (non-reliable) mode.
func (vc *VirtualChannel) DeliveryStats() DeliveryStats {
	var s DeliveryStats
	for _, name := range vc.relOrder {
		e := vc.rel[name]
		s.Retransmits += e.retransmits
		s.Failovers += e.failovers
		s.MessageResends += e.msgResends
		s.Duplicates += e.dups
		s.ChecksumDrops += e.checksumDrops
		s.RelayDrops += e.relayDrops
	}
	return s
}

// relBlock is one packed block buffered until EndPacking.
type relBlock struct {
	data []byte
	s    mad.SendMode
	r    mad.RecvMode
}

// relPacking is the sender side of a reliable message: blocks are buffered
// (SendSafer pays its snapshot copy immediately, the others are referenced —
// safe because EndPacking blocks until the message is end-to-end
// acknowledged) and the whole message is fragmented and sent at EndPacking.
type relPacking struct {
	eng    *relEngine
	dst    string
	id     uint64
	blocks []relBlock
}

func newRelPacking(eng *relEngine, dst string) *relPacking {
	return &relPacking{eng: eng, dst: dst, id: eng.vc.nextMsgID()}
}

func (rp *relPacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	host := rp.eng.node.Host
	p.Sleep(host.CPU.PackCost)
	if s == mad.SendSafer {
		host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
	}
	rp.blocks = append(rp.blocks, relBlock{data: data, s: s, r: r})
}

func (rp *relPacking) end(p *vtime.Proc) {
	rp.eng.sendMessage(p, rp.dst, rp.blocks, rp.id)
}

// relUnpacking is the receiver side: the message is already fully
// reassembled (that is what the arrival means), so unpack calls verify the
// mirrored flags against the descriptor and copy fragments out.
type relUnpacking struct {
	eng      *relEngine
	m        *relMsg
	mtu      int
	desc     []mad.BlockDesc
	nextBlk  int
	nextFrag uint32
}

func newRelUnpacking(eng *relEngine, m *relMsg) *relUnpacking {
	mtu, desc, ok := decodeRelDesc(m.frags[0])
	if !ok {
		panic("fwd: reliable message with malformed descriptor on " + eng.node.Name)
	}
	return &relUnpacking{eng: eng, m: m, mtu: mtu, desc: desc, nextFrag: 1}
}

func (ru *relUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	if ru.nextBlk >= len(ru.desc) {
		panic("fwd: unpack past the end of a reliable message")
	}
	d := ru.desc[ru.nextBlk]
	ru.nextBlk++
	if d.S != s || d.R != r || d.Size != len(dst) {
		panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, len(dst), s, r))
	}
	host := ru.eng.node.Host
	p.Sleep(host.CPU.PackCost)
	mad.ForEachFragment(len(dst), ru.mtu, func(off, n int) {
		frag, ok := ru.m.frags[ru.nextFrag]
		ru.nextFrag++
		if !ok || len(frag) != n {
			panic("fwd: reliable message fragment size mismatch")
		}
		if n > 0 {
			host.Memcpy(p, n)
			copy(dst[off:off+n], frag)
		}
	})
}

func (ru *relUnpacking) end(p *vtime.Proc) {
	if ru.nextBlk != len(ru.desc) || ru.nextFrag != ru.m.total {
		panic(fmt.Sprintf("fwd: reliable message not fully unpacked (%d/%d blocks, %d/%d fragments)",
			ru.nextBlk, len(ru.desc), ru.nextFrag, ru.m.total))
	}
	delete(ru.eng.rx, relMsgKey{origin: ru.m.origin, id: ru.m.id})
}
