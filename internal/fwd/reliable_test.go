package fwd_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sisci"
	"madgo/internal/drivers/tcpnet"
	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// buildFaulty assembles a reliable virtual channel over a topology with an
// optional fault plan armed on the platform. When fallback is non-nil it is
// used as the superset build topology.
func buildFaulty(t *testing.T, tp, fallback *topo.Topology, plan *fault.Plan, cfg fwd.Config) *world {
	t.Helper()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	if plan != nil {
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		pl.ArmFaults(fault.NewInjector(plan, cfg.Tracer))
	}
	sess := mad.NewSession(pl)
	cfg.Reliable = true
	cfg.FallbackTopo = fallback
	netTopo := tp
	if fallback != nil {
		netTopo = fallback
	}
	bindings := make(map[string]fwd.Binding)
	for _, nw := range netTopo.Networks() {
		var drv netDriver
		switch nw.Protocol {
		case "sci":
			drv = sisci.New()
		case "myrinet":
			drv = bip.New()
		case "ethernet":
			drv = tcpnet.New()
		default:
			t.Fatalf("no driver for %s", nw.Protocol)
		}
		bindings[nw.Name] = fwd.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, sess: sess, vc: vc}
}

func TestReliableFaultFree(t *testing.T) {
	w := buildFaulty(t, paperHS(t), nil, nil, fwd.DefaultConfig())
	blocks := []block{
		{pattern(4, 1), mad.SendCheaper, mad.ReceiveExpress},
		{pattern(90_000, 2), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(100, 3), mad.SendSafer, mad.ReceiveExpress},
		{pattern(0, 4), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(40_000, 5), mad.SendLater, mad.ReceiveCheaper},
	}
	got, fwded, from := sendRecv(t, w, "a0", "b1", blocks)
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i].data) {
			t.Errorf("block %d corrupted", i)
		}
	}
	if !fwded {
		t.Error("cross-cluster message not marked forwarded")
	}
	if from != w.vc.NodeRank("a0") {
		t.Errorf("From() = %d, want rank of a0", from)
	}
	gw := w.vc.Gateway("gw")
	if gw.Messages() != 1 {
		t.Errorf("gateway relayed %d messages, want 1", gw.Messages())
	}
	// A fault-free run must need no recovery at all.
	ds := w.vc.DeliveryStats()
	if ds != (fwd.DeliveryStats{}) {
		t.Errorf("fault-free delivery stats not all zero: %+v", ds)
	}
	if gw.Retransmits() != 0 || gw.Failovers() != 0 {
		t.Errorf("fault-free gateway recovered: %d retransmits, %d failovers",
			gw.Retransmits(), gw.Failovers())
	}
}

func TestReliableDirect(t *testing.T) {
	w := buildFaulty(t, paperHS(t), nil, nil, fwd.DefaultConfig())
	blocks := []block{{pattern(5000, 2), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a0", "a1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("direct payload corrupted")
	}
	if fwded {
		t.Error("intra-cluster message marked forwarded")
	}
}

func TestReliableUnderLoss(t *testing.T) {
	plan := fault.NewPlan(42).Drop("*", 0.05)
	w := buildFaulty(t, paperHS(t), nil, plan, fwd.DefaultConfig())
	blocks := []block{{pattern(300_000, 7), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted under loss")
	}
	ds := w.vc.DeliveryStats()
	if ds.Retransmits == 0 {
		t.Error("5% loss run saw zero retransmissions")
	}
}

func TestReliableUnderCorruption(t *testing.T) {
	plan := fault.NewPlan(7).Corrupt("*", 0.05)
	w := buildFaulty(t, paperHS(t), nil, plan, fwd.DefaultConfig())
	blocks := []block{{pattern(300_000, 9), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted despite checksums")
	}
	ds := w.vc.DeliveryStats()
	if ds.ChecksumDrops == 0 {
		t.Error("5% corruption run saw zero checksum drops")
	}
}

// twoGateways is a topology with redundant gateways between the clusters.
func twoGateways(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sciA", "sci").
		Network("myriB", "myrinet").
		Node("a0", "sciA").Node("a1", "sciA").
		Node("gw1", "sciA", "myriB").
		Node("gw2", "sciA", "myriB").
		Node("b0", "myriB").Node("b1", "myriB").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestReliableGatewayFailover(t *testing.T) {
	// gw1 (the BFS-preferred gateway) dies before traffic starts; every
	// message must fail over to gw2 and still arrive byte-exact.
	plan := fault.NewPlan(1).Crash("gw1", 0, 0)
	w := buildFaulty(t, twoGateways(t), nil, plan, fwd.DefaultConfig())
	blocks := []block{{pattern(100_000, 3), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted across failover")
	}
	ds := w.vc.DeliveryStats()
	if ds.Failovers == 0 {
		t.Error("dead preferred gateway caused no failover")
	}
	if n := w.vc.Gateway("gw2").Messages(); n == 0 {
		t.Error("secondary gateway relayed nothing")
	}
}

func TestReliableFallbackToControlNetwork(t *testing.T) {
	// The only high-speed gateway dies permanently; traffic must degrade
	// to the Ethernet control network of the fallback topology.
	full := topo.PaperTestbed()
	hs, err := full.Restrict("sci0", "myri0")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(3).Crash("gw", 0, 0)
	w := buildFaulty(t, hs, full, plan, fwd.DefaultConfig())
	blocks := []block{{pattern(80_000, 5), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a1", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted on the fallback network")
	}
	if !fwded {
		t.Error("cross-cluster message not marked forwarded")
	}
	if ds := w.vc.DeliveryStats(); ds.Failovers == 0 {
		t.Error("dead gateway caused no failover")
	}
}

func TestReliableUnreachableAbortsTyped(t *testing.T) {
	// Killing the single gateway of a two-network topology with no
	// fallback partitions it: the sender must surface a DeliveryError,
	// never a deadlock.
	plan := fault.NewPlan(5).Crash("gw", 0, 0)
	w := buildFaulty(t, paperHS(t), nil, plan, fwd.DefaultConfig())
	w.sim.Spawn("app-send:a0", func(p *vtime.Proc) {
		px := w.vc.At("a0").BeginPacking(p, "b1")
		px.Pack(p, pattern(10_000, 1), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	err := w.sim.Run()
	var de *fwd.DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want a *DeliveryError", err)
	}
	if de.From != "a0" || de.To != "b1" {
		t.Errorf("DeliveryError names %s -> %s, want a0 -> b1", de.From, de.To)
	}
}

func TestReliableManyPairsUnderLoss(t *testing.T) {
	plan := fault.NewPlan(11).Drop("*", 0.02)
	w := buildFaulty(t, paperHS(t), nil, plan, fwd.DefaultConfig())
	// One message per destination so each receiver unpacks the message
	// meant for it.
	pairs := [][2]string{{"a0", "b0"}, {"a1", "b1"}, {"b0", "a1"}, {"gw", "a0"}, {"b1", "gw"}}
	payloads := make([][]byte, len(pairs))
	got := make([][]byte, len(pairs))
	for i, pr := range pairs {
		i, pr := i, pr
		payloads[i] = pattern(50_000+i*1000, byte(i))
		w.sim.Spawn(fmt.Sprintf("send:%s", pr[0]), func(p *vtime.Proc) {
			px := w.vc.At(pr[0]).BeginPacking(p, pr[1])
			px.Pack(p, payloads[i], mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn(fmt.Sprintf("recv:%s", pr[1]), func(p *vtime.Proc) {
			u := w.vc.At(pr[1]).BeginUnpacking(p)
			got[i] = make([]byte, len(payloads[i]))
			u.Unpack(p, got[i], mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		})
	}
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("pair %v payload corrupted", pairs[i])
		}
	}
}
