package fwd

// Multi-rail striping: one message transmitted in parallel over several
// link-disjoint routes ("rails") between the same node pair.
//
// The virtual channel of §2.2.1 bundles one real channel per network, but
// the paper's send path only ever *selects* one of them; on a configuration
// with both SCI and Myrinet between two clusters the second network idles.
// Striping splits the fragment stream of one large message across up to K
// rails found by route.ComputeK, rate-proportionally: each rail carries a
// contiguous byte span of the flattened message whose length is
// proportional to the rail's measured goodput (EWMA over previous striped
// sends to the same pair), falling back to the static bottleneck bandwidth
// of the rail's networks before any measurement exists.
//
// On the wire each rail is an ordinary self-described GTM-style stream with
// Kind KindStripe and an extended 48-byte header naming the rail, the rail
// count, the rail's byte span and the message's total size. Gateways relay
// a KindStripe stream exactly like a KindGTM one (they parse only the
// leading GTM fields they already understand and stay oblivious to the
// scheduling); the final receiver collects the rail sub-messages of one
// (origin, id) pair, posts each block's receives directly into the
// application buffer at the offsets the spans dictate — concurrent rails
// land in place, out of order, with zero extra copies — and completes when
// every rail's span has been consumed.
//
// Fragment placement is fully deterministic on both sides: rail r covers
// span [start, start+len) of the flattened message; within each packed
// block's flat range the rail sends the overlap, fragmented at the rail's
// own path MTU, never crossing a block boundary. The receiver mirrors the
// same arithmetic from the header fields alone, so no per-fragment offsets
// travel on the wire.
//
// Messages below Config.StripeThreshold (and pairs with a single route)
// take the existing single-rail path unchanged.

import (
	"encoding/binary"
	"fmt"

	"madgo/internal/flight"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/vtime"
)

// DefaultStripeThreshold is the message size below which striping is not
// attempted (Config.StripeThreshold == 0): small messages finish within a
// rail's pipeline fill time, so splitting them only adds per-rail header
// and reassembly overhead.
const DefaultStripeThreshold = 16 * 1024

// stripeHeaderLen is the wire size of a rail sub-message header: the 20
// GTM header bytes (source, destination, MTU, message id — byte-compatible
// with encodeGTMHeader so gateways can parse the routing fields without
// knowing about striping), then rail id, rail count, per-rail flags, and
// the rail's byte span within the message.
//
//	src u32 | dst u32 | mtu u32 | id u64 |
//	rail u8 | nrails u8 | flags u16 | spanStart u64 | spanLen u64 | total u64
const stripeHeaderLen = gtmHeaderLen + 28

// stripeFlagForwarded marks a rail whose route crosses at least one
// gateway; the receiver ORs it over rails for Unpacking.Forwarded.
const stripeFlagForwarded = 1 << 0

// stripeFlagAgg marks a rail of a striped aggregate frame (package agg):
// after reassembly the receiver decodes the frame into its coalesced
// sub-messages instead of delivering the striped message as-is.
const stripeFlagAgg = 1 << 1

// stripeMaxRails bounds Config.StripeK: the rail id travels as one byte.
const stripeMaxRails = 255

// stripeHdr is the decoded header of one rail sub-message.
type stripeHdr struct {
	src, dst  mad.Rank
	mtu       int
	id        uint64
	rail      int
	nrails    int
	flags     uint16
	spanStart int64
	spanLen   int64
	total     int64
}

func encodeStripeHeader(h stripeHdr) []byte {
	b := make([]byte, stripeHeaderLen)
	binary.LittleEndian.PutUint32(b[0:], uint32(h.src))
	binary.LittleEndian.PutUint32(b[4:], uint32(h.dst))
	binary.LittleEndian.PutUint32(b[8:], uint32(h.mtu))
	binary.LittleEndian.PutUint64(b[12:], h.id)
	b[20] = byte(h.rail)
	b[21] = byte(h.nrails)
	binary.LittleEndian.PutUint16(b[22:], h.flags)
	binary.LittleEndian.PutUint64(b[24:], uint64(h.spanStart))
	binary.LittleEndian.PutUint64(b[32:], uint64(h.spanLen))
	binary.LittleEndian.PutUint64(b[40:], uint64(h.total))
	return b
}

// decodeStripeHeader parses a rail header. Like decodeGTMHeader it never
// panics on malformed input: ok is false on a wrong length, an unusable
// MTU, a rail id outside the rail count, or spans that do not fit the
// advertised total (the fuzz target pins this down — the header crosses
// the wire and a corrupted span must not index a receiver out of bounds).
func decodeStripeHeader(b []byte) (stripeHdr, bool) {
	if len(b) != stripeHeaderLen {
		return stripeHdr{}, false
	}
	h := stripeHdr{
		src:    mad.Rank(binary.LittleEndian.Uint32(b[0:])),
		dst:    mad.Rank(binary.LittleEndian.Uint32(b[4:])),
		mtu:    int(binary.LittleEndian.Uint32(b[8:])),
		id:     binary.LittleEndian.Uint64(b[12:]),
		rail:   int(b[20]),
		nrails: int(b[21]),
		flags:  binary.LittleEndian.Uint16(b[22:]),
	}
	start := binary.LittleEndian.Uint64(b[24:])
	length := binary.LittleEndian.Uint64(b[32:])
	total := binary.LittleEndian.Uint64(b[40:])
	const span62 = 1 << 62 // keeps the int64 sums below overflow
	if h.mtu <= 0 || h.nrails < 1 || h.rail >= h.nrails {
		return stripeHdr{}, false
	}
	if start >= span62 || length >= span62 || total >= span62 || start+length > total {
		return stripeHdr{}, false
	}
	h.spanStart, h.spanLen, h.total = int64(start), int64(length), int64(total)
	return h, true
}

var stripeHeaderDesc = []mad.BlockDesc{{Size: stripeHeaderLen, S: mad.SendCheaper, R: mad.ReceiveExpress}}

// computeSpans partitions total bytes into len(rates) contiguous span
// lengths proportional to rates, written into spans (len(spans) must equal
// len(rates); the caller owns the slice, so steady-state scheduling does
// not allocate). Cumulative rounding keeps the result deterministic and
// exactly summing to total; non-positive rates are treated as equal shares.
func computeSpans(total int64, rates []float64, spans []int64) {
	if len(spans) != len(rates) {
		panic("fwd: computeSpans slice length mismatch")
	}
	sum := 0.0
	for _, r := range rates {
		if r > 0 {
			sum += r
		}
	}
	if sum <= 0 {
		// Degenerate: equal split.
		n := int64(len(rates))
		for i := range spans {
			spans[i] = total / n
		}
		spans[0] += total - (total/n)*n
		return
	}
	acc := 0.0
	prev := int64(0)
	for i, r := range rates {
		if r > 0 {
			acc += r
		}
		cut := int64(float64(total)*(acc/sum) + 0.5)
		if cut > total {
			cut = total
		}
		if i == len(rates)-1 {
			cut = total
		}
		spans[i] = cut - prev
		prev = cut
	}
}

// railKey identifies one rail of one ordered node pair for the goodput
// EWMA.
type railKey struct {
	src, dst string
	rail     int
}

// stripeState is the virtual channel's striping bookkeeping, allocated only
// when Config.StripeK > 1.
type stripeState struct {
	// kroutes caches route.ComputeK per ordered pair. Routes are static
	// unless a health monitor is armed, in which case the cache is tagged
	// with the routing epoch it was computed under and invalidated
	// wholesale on epoch change (see stripeRoutes).
	kroutes map[[2]string][]route.Route
	// epoch is the health monitor's routing epoch kroutes was built under
	// (0 = static, no monitor).
	epoch uint64
	// netRate is the static bottleneck bandwidth of each network
	// (bytes/s), from the bound NIC models.
	netRate map[string]float64
	// railRate is the measured per-rail goodput EWMA (bytes/s).
	railRate map[railKey]float64
	// lastFrac remembers the previous quota fractions per pair so a
	// changed split can be counted as a rebalance.
	lastFrac map[[2]string][]float64
	// rx is the per-receiver rail collection state.
	rx map[mad.Rank]*stripeRx

	// Counters (also exported through the obs registry).
	messages      int64
	rebalances    int64
	railFailovers int64
	railBytes     map[int]int64
}

// stripeRx collects the rail sub-messages arriving at one node until a
// message's rail set is complete.
type stripeRx struct {
	groups map[relMsgKey]*stripeGroup
	ready  []*stripeGroup
}

// stripeGroup is one striped message being collected at its destination.
type stripeGroup struct {
	key   relMsgKey
	total int64
	rails []*stripeRail
	seen  [stripeMaxRails + 1]bool
	// agg is set when any rail carries stripeFlagAgg: the reassembled
	// bytes are an aggregate frame to be decoded, not an app message.
	agg bool
}

// stripeRail is one opened rail of a group: its link (receive side held
// acquired until EndUnpacking), header and consumption progress.
type stripeRail struct {
	link     *mad.Link
	hdr      stripeHdr
	consumed int64
}

// stripeEWMAAlpha weights the newest goodput measurement of a rail.
const stripeEWMAAlpha = 0.5

// stripeCounterNames are the striping counters pre-registered at zero when
// striping is armed, so snapshots show the series on unstriped runs too.
var stripeCounterNames = []string{
	"madgo_stripe_messages_total",
	"madgo_stripe_rebalance_total",
	"madgo_stripe_rail_failovers_total",
}

// initStriping computes the static rail state at Build time: the per-pair
// K-route cache (whose mid-route networks and intermediate nodes the
// caller adds to the special-channel and gateway sets) and the static
// network rates the scheduler falls back to before any goodput has been
// measured.
func (vc *VirtualChannel) initStriping(bindings map[string]Binding) {
	st := &stripeState{
		kroutes:   make(map[[2]string][]route.Route),
		netRate:   make(map[string]float64),
		railRate:  make(map[railKey]float64),
		lastFrac:  make(map[[2]string][]float64),
		rx:        make(map[mad.Rank]*stripeRx),
		railBytes: make(map[int]int64),
	}
	for _, nw := range vc.tp.Networks() {
		nic := bindings[nw.Name].Drv.NIC()
		r := nic.WireRate
		if nic.SendEngineRate > 0 && nic.SendEngineRate < r {
			r = nic.SendEngineRate
		}
		if nic.RecvEngineRate > 0 && nic.RecvEngineRate < r {
			r = nic.RecvEngineRate
		}
		st.netRate[nw.Name] = r
	}
	rate := func(nw string) float64 { return st.netRate[nw] }
	names := vc.tp.NodeNames()
	for _, src := range names {
		for _, dst := range names {
			if src == dst {
				continue
			}
			st.kroutes[[2]string{src, dst}] = route.ComputeK(vc.tp, src, dst, vc.cfg.StripeK, rate)
		}
	}
	vc.stripe = st
	for _, name := range stripeCounterNames {
		vc.metrics().Add(name, obs.Labels{"channel": vc.Name}, 0)
	}
}

// stripeRoutes returns the cached rail set of one pair (nil when striping
// is off or the pair is outside the primary topology). With a health
// monitor armed the cache is epoch-aware: a death or re-admission publishes
// a new epoch, the stale rail sets are dropped, and each pair's rails are
// recomputed on demand with the dead edges carved out of the graph — a
// killed rail shrinks the set (subsequent messages fall back to fewer
// rails, or the single-route path), and a re-admitted link restores it.
func (vc *VirtualChannel) stripeRoutes(src, dst string) []route.Route {
	st := vc.stripe
	if st == nil {
		return nil
	}
	mon := vc.mon
	if mon == nil {
		return st.kroutes[[2]string{src, dst}]
	}
	if ep := mon.Epoch(); ep != st.epoch {
		st.kroutes = make(map[[2]string][]route.Route)
		st.epoch = ep
	}
	key := [2]string{src, dst}
	rs, ok := st.kroutes[key]
	if !ok {
		if _, in := vc.tp.Node(src); in {
			if _, in := vc.tp.Node(dst); in {
				rate := func(nw string) float64 { return st.netRate[nw] }
				rs = route.ComputeKAvoiding(vc.tp, src, dst, vc.cfg.StripeK, rate, mon.DeadEdges())
			}
		}
		st.kroutes[key] = rs
	}
	return rs
}

// routeRate is a route's static bottleneck bandwidth.
func (vc *VirtualChannel) routeRate(r route.Route) float64 {
	min := 0.0
	for _, hop := range r {
		if w := vc.stripe.netRate[hop.Network]; min == 0 || w < min {
			min = w
		}
	}
	return min
}

// railRateFor is a rail's scheduling rate: the measured goodput EWMA when
// one exists, else the static bottleneck bandwidth.
func (vc *VirtualChannel) railRateFor(src, dst string, rail int, r route.Route) float64 {
	if w, ok := vc.stripe.railRate[railKey{src, dst, rail}]; ok {
		return w
	}
	return vc.routeRate(r)
}

// noteRailGoodput folds one measured rail transfer into the EWMA.
func (vc *VirtualChannel) noteRailGoodput(src, dst string, rail int, bytes int64, d vtime.Duration) {
	if d <= 0 || bytes <= 0 {
		return
	}
	measured := float64(bytes) / d.Seconds()
	key := railKey{src, dst, rail}
	if old, ok := vc.stripe.railRate[key]; ok {
		measured = stripeEWMAAlpha*measured + (1-stripeEWMAAlpha)*old
	}
	vc.stripe.railRate[key] = measured
	vc.metrics().Set("madgo_stripe_rail_rate_bytes_per_second", obs.Labels{
		"src": src, "dst": dst, "rail": fmt.Sprintf("%d", rail),
	}, vc.stripe.railRate[key])
}

// noteStripePlan records one scheduling decision: it counts the striped
// message and — when the quota fractions moved more than 1% against the
// pair's previous plan — a rebalance.
func (vc *VirtualChannel) noteStripePlan(src, dst string, spans []int64, total int64) {
	st := vc.stripe
	st.messages++
	vc.metrics().Add("madgo_stripe_messages_total", obs.Labels{"channel": vc.Name}, 1)
	frac := make([]float64, len(spans))
	for i, s := range spans {
		frac[i] = float64(s) / float64(total)
	}
	key := [2]string{src, dst}
	if prev, ok := st.lastFrac[key]; ok && len(prev) == len(frac) {
		for i := range frac {
			d := frac[i] - prev[i]
			if d > 0.01 || d < -0.01 {
				st.rebalances++
				vc.metrics().Add("madgo_stripe_rebalance_total", obs.Labels{"channel": vc.Name}, 1)
				break
			}
		}
	}
	st.lastFrac[key] = frac
}

// StripeStats aggregates the striping layer's counters.
type StripeStats struct {
	// Messages is how many messages were actually striped (sub-threshold
	// and single-route messages do not count).
	Messages int64
	// Rebalances is how many scheduling decisions changed a pair's quota
	// split by more than 1% against the previous message.
	Rebalances int64
	// RailFailovers is how many times a rail died mid-message in
	// reliable mode and its residual quota moved to the surviving rails.
	RailFailovers int64
	// RailReadmissions is how many dead links the health monitor restored
	// to service (each re-admission rebuilds the rail sets under a new
	// epoch). Zero without Config.Health.
	RailReadmissions int64
	// RailBytes is the payload bytes scheduled onto each rail index.
	RailBytes map[int]int64
}

// StripeStats returns the striping counters (zero-valued when striping is
// off).
func (vc *VirtualChannel) StripeStats() StripeStats {
	s := StripeStats{RailBytes: map[int]int64{}}
	if vc.stripe == nil {
		return s
	}
	s.Messages = vc.stripe.messages
	s.Rebalances = vc.stripe.rebalances
	s.RailFailovers = vc.stripe.railFailovers
	if vc.mon != nil {
		s.RailReadmissions = vc.mon.Readmissions()
	}
	for k, v := range vc.stripe.railBytes {
		s.RailBytes[k] = v
	}
	return s
}

// stripePacking is the sender side of a (potentially) striped message.
// Blocks are buffered until EndPacking — the scheduler needs the total size
// — and then either striped across the pair's rails or replayed through the
// ordinary single-rail path when the message is too small.
type stripePacking struct {
	vc     *VirtualChannel
	node   *mad.Node
	dst    string
	id     uint64
	blocks []relBlock
	total  int64
	// aggFlag stamps stripeFlagAgg on every rail header: the message body
	// is an aggregate frame the receiver must decode after reassembly.
	aggFlag bool
}

func newStripePacking(vc *VirtualChannel, node *mad.Node, dst string) *stripePacking {
	return &stripePacking{vc: vc, node: node, dst: dst, id: vc.nextMsgID()}
}

func (sx *stripePacking) pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	host := sx.node.Host
	p.Sleep(host.CPU.PackCost)
	if s == mad.SendSafer {
		// Buffering by reference would let the application overwrite the
		// block before the rails read it; snapshot now, as SendSafer
		// promises.
		host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
	}
	sx.blocks = append(sx.blocks, relBlock{data: data, s: s, r: r})
	sx.total += int64(len(data))
}

// threshold is the effective minimum striped-message size.
func (c Config) stripeThreshold() int64 {
	if c.StripeThreshold > 0 {
		return int64(c.StripeThreshold)
	}
	return DefaultStripeThreshold
}

func (sx *stripePacking) end(p *vtime.Proc) {
	vc := sx.vc
	src := sx.node.Name
	rails := vc.stripeRoutes(src, sx.dst)
	if sx.total < vc.cfg.stripeThreshold() || len(rails) < 2 {
		sx.fallback(p)
		return
	}

	// Rate-proportional quotas over the flattened message.
	rates := make([]float64, len(rails))
	for i, r := range rails {
		rates[i] = vc.railRateFor(src, sx.dst, i, r)
	}
	spans := make([]int64, len(rails))
	computeSpans(sx.total, rates, spans)
	vc.noteStripePlan(src, sx.dst, spans, sx.total)
	nrails := 0
	for _, ln := range spans {
		if ln > 0 {
			nrails++
		}
	}
	vc.metrics().RecordHop(sx.id, p.Now(), src, "stripe",
		fmt.Sprintf("split -> %s over %d rails %v", sx.dst, nrails, spans), int(sx.total))

	// One process per active rail; the app process drives the first rail
	// itself and joins the rest, so EndPacking returns when every rail
	// has fully emitted its span.
	sim := vc.sess.Platform.Sim
	t0 := p.Now()
	type railRun struct {
		idx   int
		start int64
		ln    int64
		done  vtime.Time
	}
	var runs []*railRun
	start := int64(0)
	for i, ln := range spans {
		if ln > 0 {
			runs = append(runs, &railRun{idx: i, start: start, ln: ln})
		}
		start += ln
	}
	var procs []*vtime.Proc
	for _, rr := range runs[1:] {
		rr := rr
		procs = append(procs, sim.Spawn(fmt.Sprintf("stripe:%s>%s:r%d", src, sx.dst, rr.idx),
			func(sp *vtime.Proc) {
				sx.sendRail(sp, rails[rr.idx], rr.idx, nrails, rr.start, rr.ln)
				rr.done = sp.Now()
			}))
	}
	sx.sendRail(p, rails[runs[0].idx], runs[0].idx, nrails, runs[0].start, runs[0].ln)
	runs[0].done = p.Now()
	for _, pr := range procs {
		p.Join(pr)
	}
	for _, rr := range runs {
		vc.noteRailGoodput(src, sx.dst, rr.idx, rr.ln, rr.done.Sub(t0))
		vc.stripe.railBytes[rr.idx] += rr.ln
		vc.metrics().Add("madgo_stripe_rail_bytes_total",
			obs.Labels{"node": src, "rail": fmt.Sprintf("%d", rr.idx)}, float64(rr.ln))
	}
}

// railMTU is the packet size of one rail: per-rail path MTU when the
// negotiation is on (each rail fragments at its own minimum), the global
// MTU otherwise.
func (vc *VirtualChannel) railMTU(r route.Route) int {
	if vc.cfg.PathMTU {
		return MTUForRoute(r, vc.netMTU)
	}
	return vc.cfg.MTU
}

// sendRail emits one rail sub-message: header, then for every packed block
// the part of the rail's span falling inside the block, fragmented at the
// rail's MTU (fragments never straddle block boundaries, so the receiver
// can mirror the layout from the header alone), then the terminator.
func (sx *stripePacking) sendRail(p *vtime.Proc, r route.Route, rail, nrails int, spanStart, spanLen int64) {
	vc := sx.vc
	hop := r[0]
	dstRank := vc.NodeRank(sx.dst)
	var link *mad.Link
	if r.Direct() {
		link = vc.regular[hop.Network].Link(sx.node.Rank, dstRank)
	} else {
		spc, ok := vc.special[hop.Network]
		if !ok {
			panic("fwd: stripe rail crosses network without a special channel: " + hop.Network)
		}
		link = spc.Link(sx.node.Rank, vc.NodeRank(hop.To))
	}
	mtu := vc.railMTU(r)
	var flags uint16
	if !r.Direct() {
		flags |= stripeFlagForwarded
	}
	if sx.aggFlag {
		flags |= stripeFlagAgg
	}
	// Rails that relay through a gateway spend credits like any other
	// sender; direct rails answer to nobody (no-op with flow control off
	// and on direct rails, where gw stays empty).
	gw := ""
	if !r.Direct() {
		gw = hop.To
	}
	tr := vc.cfg.Tracer
	t0 := p.Now()
	link.Acquire(p)
	if gw != "" {
		vc.flowSpend(p, gw, sx.node.Name, sx.id)
	}
	link.Send(p, mad.TxMeta{SOM: true, Kind: mad.KindStripe, Blocks: stripeHeaderDesc},
		encodeStripeHeader(stripeHdr{
			src: sx.node.Rank, dst: dstRank, mtu: mtu, id: sx.id,
			rail: rail, nrails: nrails, flags: flags,
			spanStart: spanStart, spanLen: spanLen, total: sx.total,
		}))
	net := hop.Network
	flat := int64(0)
	for _, b := range sx.blocks {
		bStart, bEnd := flat, flat+int64(len(b.data))
		flat = bEnd
		lo, hi := spanStart, spanStart+spanLen
		if bStart > lo {
			lo = bStart
		}
		if bEnd < hi {
			hi = bEnd
		}
		for off := lo; off < hi; {
			n := hi - off
			if n > int64(mtu) {
				n = int64(mtu)
			}
			if gw != "" {
				vc.flowSpend(p, gw, sx.node.Name, sx.id)
			}
			link.Send(p, mad.TxMeta{
				Kind:   mad.KindStripe,
				Blocks: []mad.BlockDesc{{Size: int(n), S: b.s, R: b.r}},
			}, b.data[off-bStart:off-bStart+n])
			vc.metrics().RecordHop(sx.id, p.Now(), sx.node.Name, "hop",
				fmt.Sprintf("rail %d: %s -> %s via %s", rail, sx.node.Name, link.Dst.Name, net), int(n))
			off += n
		}
	}
	if gw != "" {
		vc.flowSpend(p, gw, sx.node.Name, sx.id)
	}
	link.Send(p, mad.TxMeta{Kind: mad.KindStripe, EOM: true}, nil)
	link.Release(p)
	tr.Record(fmt.Sprintf("stripe:%s>%s", sx.node.Name, sx.dst), fmt.Sprintf("rail%d", rail),
		int(spanLen), t0, p.Now())
}

// fallback replays the buffered blocks through the ordinary single-rail
// path: a plain message on the regular channel for a direct route, a GTM
// stream toward the first gateway otherwise. Costs the extra buffering
// pass; messages this small are latency-bound anyway.
func (sx *stripePacking) fallback(p *vtime.Proc) {
	vc := sx.vc
	r, ok := vc.tbl.Lookup(sx.node.Name, sx.dst)
	if !ok {
		panic(fmt.Sprintf("fwd: no route %s -> %s", sx.node.Name, sx.dst))
	}
	hop := r[0]
	if r.Direct() {
		ep := vc.regular[hop.Network].At(sx.node)
		vc.metrics().RecordHop(sx.id, p.Now(), sx.node.Name, "pack",
			fmt.Sprintf("direct -> %s via %s (below stripe threshold)", sx.dst, hop.Network), 0)
		px := ep.BeginPacking(p, vc.NodeRank(sx.dst))
		for _, b := range sx.blocks {
			px.Pack(p, b.data, b.s, b.r)
		}
		px.EndPacking(p)
		return
	}
	spc, ok := vc.special[hop.Network]
	if !ok {
		panic("fwd: route crosses network without a special channel: " + hop.Network)
	}
	link := spc.Link(sx.node.Rank, vc.NodeRank(hop.To))
	vc.metrics().RecordHop(sx.id, p.Now(), sx.node.Name, "pack",
		fmt.Sprintf("gtm -> %s via %s (below stripe threshold)", sx.dst, hop.Network), 0)
	g := newGTMPacking(p, vc, sx.node, link, vc.NodeRank(sx.dst), sx.id)
	for _, b := range sx.blocks {
		g.pack(p, b.data, b.s, b.r)
	}
	g.end(p)
}

// sendStriped pushes one full copy of a reliable message toward dst across
// the pair's rails: the packet stream is partitioned into contiguous
// per-rail runs proportional to each rail's scheduling rate, and every rail
// delivers its run to its own first hop under its own ARQ window. A rail
// whose neighbour stops acknowledging fails over: its residual quota moves
// to a shared overflow queue the surviving rails drain after their own
// runs. Packets left when every rail has finished (all rails failed, or a
// survivor exited before the failure) fall back to ordinary routed
// forwarding. It reports false when even that could not place a packet.
//
// The final destination needs no rail awareness: reliable fragments carry
// their index and reassemble out of order from any link, so striping in
// reliable mode is purely a sender-side scheduling decision.
func (e *relEngine) sendStriped(p *vtime.Proc, dst string, ds []relData, rails []route.Route, aw *relAwait) bool {
	vc := e.vc
	src := e.node.Name
	rates := make([]float64, len(rails))
	for i, r := range rails {
		rates[i] = vc.railRateFor(src, dst, i, r)
	}
	quotas := make([]int64, len(rails))
	computeSpans(int64(len(ds)), rates, quotas)
	queues := make([][]relData, len(rails))
	byteSpans := make([]int64, len(rails))
	total := int64(0)
	off := 0
	for i, q := range quotas {
		queues[i] = ds[off : off+int(q)]
		off += int(q)
		for _, d := range queues[i] {
			byteSpans[i] += int64(len(d.payload))
		}
		total += byteSpans[i]
	}
	vc.noteStripePlan(src, dst, byteSpans, total)
	e.hop(ds[0].id, p.Now(), "stripe",
		fmt.Sprintf("split -> %s over %d rails %v", dst, len(rails), byteSpans), int(total))

	var residual []relData
	failed := make([]bool, len(rails))
	w := e.pol.Window
	t0 := p.Now()
	runRail := func(rp *vtime.Proc, ri int) {
		hop := rails[ri][0]
		sent := int64(0)
		for !aw.done {
			var chunk []relData
			switch {
			case len(queues[ri]) > 0:
				n := min(w, len(queues[ri]))
				chunk, queues[ri] = queues[ri][:n], queues[ri][n:]
			case len(residual) > 0:
				n := min(w, len(residual))
				chunk, residual = residual[:n], residual[n:]
			}
			if chunk == nil {
				break
			}
			if bad := e.deliverBurst(rp, hop, chunk); len(bad) > 0 {
				// The rail stopped acknowledging. Its neighbour is NOT
				// marked node-dead — on a dual-direct configuration the
				// neighbour is the destination itself, reachable over the
				// surviving rails — the residual quota just moves over.
				residual = append(residual, bad...)
				residual = append(residual, queues[ri]...)
				queues[ri] = nil
				failed[ri] = true
				vc.stripe.railFailovers++
				vc.metrics().Add("madgo_stripe_rail_failovers_total",
					obs.Labels{"channel": vc.Name}, 1)
				e.hop(ds[0].id, rp.Now(), "rail-failover",
					fmt.Sprintf("rail %d via %s dead, %d packets re-striped", ri, hop.Network, len(residual)), 0)
				return
			}
			for _, d := range chunk {
				sent += int64(len(d.payload))
			}
		}
		if sent > 0 {
			vc.noteRailGoodput(src, dst, ri, sent, rp.Now().Sub(t0))
			vc.stripe.railBytes[ri] += sent
			vc.metrics().Add("madgo_stripe_rail_bytes_total",
				obs.Labels{"node": src, "rail": fmt.Sprintf("%d", ri)}, float64(sent))
		}
	}
	sim := vc.sess.Platform.Sim
	var procs []*vtime.Proc
	for ri := 1; ri < len(rails); ri++ {
		ri := ri
		procs = append(procs, sim.Spawn(fmt.Sprintf("stripe-rel:%s>%s:r%d", src, dst, ri),
			func(sp *vtime.Proc) { runRail(sp, ri) }))
	}
	runRail(p, 0)
	for _, pr := range procs {
		p.Join(pr)
	}
	// Leftovers: every rail exited (failed or drained before a later
	// failure). Push them down the surviving rails' own first hops — a
	// dead rail means a dead link, not a dead neighbour, so routed
	// forwarding (which would presume the next hop's *node* dead, fatal
	// when that node is the destination of a direct rail) is the last
	// resort, only once no rail is left standing.
	for len(residual) > 0 && !aw.done {
		n := min(w, len(residual))
		chunk := residual[:n]
		residual = residual[n:]
		ri := -1
		for i := range rails {
			if !failed[i] {
				ri = i
				break
			}
		}
		if ri < 0 {
			if !e.forwardBatch(p, dst, chunk) {
				return false
			}
			continue
		}
		if bad := e.deliverBurst(p, rails[ri][0], chunk); len(bad) > 0 {
			failed[ri] = true
			vc.stripe.railFailovers++
			vc.metrics().Add("madgo_stripe_rail_failovers_total",
				obs.Labels{"channel": vc.Name}, 1)
			e.hop(ds[0].id, p.Now(), "rail-failover",
				fmt.Sprintf("rail %d via %s dead draining leftovers, %d packets re-striped",
					ri, rails[ri][0].Network, len(bad)), 0)
			residual = append(bad, residual...)
		}
	}
	return true
}

// stripeRxAt returns (creating) the rail collection state of one receiver.
func (vc *VirtualChannel) stripeRxAt(rank mad.Rank) *stripeRx {
	st, ok := vc.stripe.rx[rank]
	if !ok {
		st = &stripeRx{groups: make(map[relMsgKey]*stripeGroup)}
		vc.stripe.rx[rank] = st
	}
	return st
}

// openStripeRail opens one announced rail sub-message: it acquires the
// link, reads the rail header, and files the rail under its (origin, id)
// group. It returns the group when this rail completed it, nil otherwise.
func (vc *VirtualChannel) openStripeRail(p *vtime.Proc, node *mad.Node, a *mad.Arrival) *stripeGroup {
	link := a.Link
	link.AcquireRecv(p)
	buf := make([]byte, stripeHeaderLen)
	meta, _ := link.RecvInto(p, buf)
	if !meta.SOM || meta.Kind != mad.KindStripe {
		panic("fwd: stripe unpacking of a message without a stripe header")
	}
	h, ok := decodeStripeHeader(buf)
	if !ok {
		panic("fwd: malformed stripe header delivered to " + node.Name)
	}
	if h.dst != node.Rank {
		panic(fmt.Sprintf("fwd: misrouted rail: %s received a rail for rank %d", node.Name, h.dst))
	}
	st := vc.stripeRxAt(node.Rank)
	key := relMsgKey{origin: h.src, id: h.id}
	g := st.groups[key]
	if g == nil {
		g = &stripeGroup{key: key, total: h.total}
		st.groups[key] = g
	}
	if g.seen[h.rail] {
		panic(fmt.Sprintf("fwd: duplicate rail %d of message %d on %s", h.rail, h.id, node.Name))
	}
	if h.total != g.total {
		panic(fmt.Sprintf("fwd: rail %d disagrees on message size (%d != %d)", h.rail, h.total, g.total))
	}
	g.seen[h.rail] = true
	if h.flags&stripeFlagAgg != 0 {
		g.agg = true
	}
	g.rails = append(g.rails, &stripeRail{link: link, hdr: h})
	if len(g.rails) == h.nrails {
		delete(st.groups, key)
		return g
	}
	return nil
}

// stripeUnpacking is the receiver side of a striped message: every block's
// receive is posted directly into the application buffer at the offsets the
// rail spans dictate, one draining process per overlapping rail, so
// concurrently arriving rails land in place with zero extra copies.
type stripeUnpacking struct {
	vc   *VirtualChannel
	node *mad.Node
	g    *stripeGroup
	flat int64
	got  int64
}

func newStripeUnpacking(vc *VirtualChannel, node *mad.Node, g *stripeGroup) *stripeUnpacking {
	return &stripeUnpacking{vc: vc, node: node, g: g}
}

// from returns the origin rank of the striped message.
func (su *stripeUnpacking) from() mad.Rank { return su.g.rails[0].hdr.src }

// forwarded reports whether any rail crossed a gateway.
func (su *stripeUnpacking) forwarded() bool {
	for _, rl := range su.g.rails {
		if rl.hdr.flags&stripeFlagForwarded != 0 {
			return true
		}
	}
	return false
}

func (su *stripeUnpacking) unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	B0 := su.flat
	B1 := B0 + int64(len(dst))
	su.flat = B1
	if len(dst) == 0 {
		// Empty blocks never travel on a rail (the sender skips them);
		// their mode constraints are vacuous.
		return
	}
	// Drain each overlapping rail's share of this block concurrently: all
	// but the first on spawned processes, the first inline, then join.
	var overlapping []*stripeRail
	for _, rl := range su.g.rails {
		lo, hi := railBlockOverlap(rl.hdr, B0, B1)
		if lo < hi {
			overlapping = append(overlapping, rl)
		}
	}
	if len(overlapping) == 0 {
		panic("fwd: striped block covered by no rail")
	}
	sim := su.vc.sess.Platform.Sim
	t0 := p.Now()
	var procs []*vtime.Proc
	for _, rl := range overlapping[1:] {
		rl := rl
		procs = append(procs, sim.Spawn(
			fmt.Sprintf("stripe-drain:%s:r%d", su.node.Name, rl.hdr.rail),
			func(sp *vtime.Proc) { su.drainRail(sp, rl, dst, B0, B1, s, r) }))
	}
	su.drainRail(p, overlapping[0], dst, B0, B1, s, r)
	for _, pr := range procs {
		p.Join(pr)
	}
	if len(overlapping) > 1 {
		// Reassembly cost of a striped block: the span from first drain start
		// to last rail completion, the window in which the destination is
		// stitching concurrent rails back into one buffer.
		su.vc.flightRing(su.node.Name).Record(
			flight.KindReassembly, p.Now(), vtime.Since(p.Now(), t0),
			su.g.key.id, len(dst), "")
	}
}

// railBlockOverlap returns the [lo, hi) flat range a rail contributes to a
// block spanning [B0, B1). Pure arithmetic — the allocation-regression test
// pins the reassembly bookkeeping at zero allocations.
func railBlockOverlap(h stripeHdr, B0, B1 int64) (int64, int64) {
	lo, hi := h.spanStart, h.spanStart+h.spanLen
	if B0 > lo {
		lo = B0
	}
	if B1 < hi {
		hi = B1
	}
	return lo, hi
}

// drainRail receives one rail's share of one block into dst, mirroring the
// sender's fragmentation exactly and verifying each fragment's descriptor
// against the mirrored modes.
func (su *stripeUnpacking) drainRail(p *vtime.Proc, rl *stripeRail, dst []byte, B0, B1 int64, s mad.SendMode, r mad.RecvMode) {
	lo, hi := railBlockOverlap(rl.hdr, B0, B1)
	mtu := int64(rl.hdr.mtu)
	for off := lo; off < hi; {
		n := hi - off
		if n > mtu {
			n = mtu
		}
		meta, got := rl.link.RecvInto(p, dst[off-B0:off-B0+n])
		if meta.EOM {
			panic("fwd: protocol error: rail terminator while fragments were expected")
		}
		if len(meta.Blocks) != 1 {
			panic("fwd: protocol error: stripe packet without exactly one block")
		}
		d := meta.Blocks[0]
		if d.S != s || d.R != r || d.Size != int(n) || got != int(n) {
			panic(fmt.Sprintf("fwd: protocol error: packed %v, unpacked {%dB %v %v}", d, n, s, r))
		}
		rl.consumed += n
		su.got += n
		off += n
	}
}

func (su *stripeUnpacking) end(p *vtime.Proc) {
	if su.flat != su.g.total {
		panic(fmt.Sprintf("fwd: striped message not fully unpacked (%d of %d bytes)", su.flat, su.g.total))
	}
	for _, rl := range su.g.rails {
		meta, _ := rl.link.Recv(p)
		if !meta.EOM {
			panic("fwd: protocol error: expected rail terminator")
		}
		rl.link.ReleaseRecv(p)
		if rl.consumed != rl.hdr.spanLen {
			panic(fmt.Sprintf("fwd: rail %d consumed %d of %d span bytes",
				rl.hdr.rail, rl.consumed, rl.hdr.spanLen))
		}
	}
	su.vc.metrics().RecordHop(su.g.key.id, p.Now(), su.node.Name, "deliver",
		fmt.Sprintf("reassembled at %s from %d rails", su.node.Name, len(su.g.rails)), int(su.got))
}
