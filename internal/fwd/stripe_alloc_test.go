package fwd

import "testing"

// The striping hot path must not touch the allocator: the sender computes
// per-rail spans into a caller-owned slice, and the receiver's reassembly
// places every fragment with pure overlap arithmetic against the posted
// buffer — no staging copies, no per-fragment bookkeeping allocations.

func TestComputeSpansNoAllocs(t *testing.T) {
	rates := []float64{47e6, 35e6, 10e6}
	spans := make([]int64, len(rates))
	n := testing.AllocsPerRun(200, func() {
		computeSpans(1<<20, rates, spans)
	})
	if n != 0 {
		t.Errorf("computeSpans allocates %.1f times per call, want 0", n)
	}
	if spans[0]+spans[1]+spans[2] != 1<<20 {
		t.Errorf("spans %v do not sum to the total", spans)
	}
}

func TestRailBlockOverlapNoAllocs(t *testing.T) {
	h := stripeHdr{rail: 1, nrails: 2, spanStart: 40_000, spanLen: 60_000, total: 128 * 1024}
	var lo, hi int64
	n := testing.AllocsPerRun(200, func() {
		lo, hi = railBlockOverlap(h, 30_000, 90_000)
	})
	if n != 0 {
		t.Errorf("railBlockOverlap allocates %.1f times per call, want 0", n)
	}
	if lo != 40_000 || hi != 90_000 {
		t.Errorf("overlap = [%d, %d), want [40000, 90000)", lo, hi)
	}
}
