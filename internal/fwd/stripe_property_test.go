package fwd_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sbp"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// railsTopo builds R fully link-disjoint rails between "a" and "b". Rail i
// is either direct (one network r<i>a joining a and b) or routed (networks
// r<i>a, r<i>b bridged by a dedicated gateway g<i>), so no two rails share
// a link or an intermediate node.
func railsTopo(protos []string, viaGW []bool) *topo.Topology {
	b := topo.NewBuilder()
	aNets := make([]string, 0, len(viaGW))
	bNets := make([]string, 0, len(viaGW))
	for i, gw := range viaGW {
		na := fmt.Sprintf("r%da", i)
		b.Network(na, protos[2*i])
		aNets = append(aNets, na)
		if gw {
			nb := fmt.Sprintf("r%db", i)
			b.Network(nb, protos[2*i+1])
			b.Node(fmt.Sprintf("g%d", i), na, nb)
			bNets = append(bNets, nb)
		} else {
			bNets = append(bNets, na)
		}
	}
	b.Node("a", aNets...)
	b.Node("b", bNets...)
	tp, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// buildQuietFaulty is buildQuiet plus an optional armed fault plan; cfg is
// taken as-is (the caller decides Reliable).
func buildQuietFaulty(tp *topo.Topology, plan *fault.Plan, cfg fwd.Config) *world {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	if plan != nil {
		if err := plan.Validate(); err != nil {
			panic(err)
		}
		pl.ArmFaults(fault.NewInjector(plan, cfg.Tracer))
	}
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		var drv netDriver
		switch nw.Protocol {
		case "sci":
			drv = sisci.New()
		case "myrinet":
			drv = bip.New()
		case "sbp":
			drv = sbp.New()
		default:
			panic("no driver for " + nw.Protocol)
		}
		bindings[nw.Name] = fwd.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		panic(err)
	}
	return &world{sim: sim, sess: sess, vc: vc}
}

// Property: for random rail counts (1–3, each rail direct or through its
// own gateway) × random protocols and MTUs × K ∈ {1,2,3} × plain/reliable
// × an optional whole-rail outage, a message arrives byte-identical to
// what a single-rail channel would deliver — striping is invisible to the
// application. When at least two rails exist, K ≥ 2, and the message
// clears the threshold, the striping path (not the fallback) must have
// carried it.
func TestStripeDeliveryProperty(t *testing.T) {
	protocols := []string{"sci", "myrinet", "sbp"}
	f := func(seed uint64) bool {
		next := xorshift(seed)
		rails := 1 + int(next(3))
		viaGW := make([]bool, rails)
		protos := make([]string, 2*rails)
		reliable := next(2) == 0
		for i := range viaGW {
			viaGW[i] = next(2) == 0
		}
		for i := range protos {
			if reliable {
				// Mirror the reliable forwarding property: the datagram
				// protocol runs over the two high-speed networks.
				protos[i] = protocols[next(2)]
			} else {
				protos[i] = protocols[next(3)]
			}
		}
		k := 1 + int(next(3))
		cfg := fwd.DefaultConfig()
		cfg.StripeK = k
		cfg.Reliable = reliable
		cfg.PathMTU = next(2) == 0
		mtu := 8192 * (1 + int(next(7)))
		cfg.MTU = mtu

		// A rail outage only exercises rail failover when striping is
		// actually in play: at least two rails striped and a payload above
		// the threshold. k must cover every rail — with k < rails the
		// scheduler may legitimately leave the flapped rail unused and
		// never need a failover. Faults act on the reliable datagram layer.
		crash := reliable && rails >= 2 && k >= rails && next(2) == 0
		n := 1 + int(next(200_000))
		if crash {
			// The outage assertion needs the flapped rail to carry traffic:
			// two packets' worth of payload per rail guarantees the
			// rate-proportional split hands every rail at least one
			// fragment regardless of the drawn MTU.
			n = 2*rails*mtu + int(next(100_000))
		}
		var plan *fault.Plan
		if crash {
			plan = fault.NewPlan(int64(seed)).Flap("r0a", 0, 0)
		}

		tp := railsTopo(protos, viaGW)
		w := buildQuietFaulty(tp, plan, cfg)
		payload := pattern(n, byte(seed>>8))
		var got []byte
		w.sim.Spawn("s", func(p *vtime.Proc) {
			px := w.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r", func(p *vtime.Proc) {
			u := w.vc.At("b").BeginUnpacking(p)
			got = make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
		})
		if err := w.sim.Run(); err != nil {
			t.Logf("seed %d (rails %d gw %v protos %v k %d rel %v crash %v n %d): %v",
				seed, rails, viaGW, protos, k, reliable, crash, n, err)
			return false
		}
		if !bytes.Equal(got, payload) {
			t.Logf("seed %d (rails %d gw %v protos %v k %d rel %v crash %v n %d): payload corrupted",
				seed, rails, viaGW, protos, k, reliable, crash, n)
			return false
		}
		st := w.vc.StripeStats()
		if rails >= 2 && k >= 2 && n >= fwd.DefaultStripeThreshold && st.Messages == 0 {
			t.Logf("seed %d (rails %d k %d n %d): striping-eligible message was not striped",
				seed, rails, k, n)
			return false
		}
		if crash && st.RailFailovers == 0 {
			t.Logf("seed %d: rail outage caused no rail failover", seed)
			return false
		}
		if (rails < 2 || k < 2) && st.Messages != 0 {
			t.Logf("seed %d (rails %d k %d): striped with fewer than two rails", seed, rails, k)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
