package fwd_test

import (
	"bytes"
	"testing"

	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/sisci"
	"madgo/internal/fault"
	"madgo/internal/fwd"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// dualRail is two nodes joined by both high-speed networks: two direct,
// link-disjoint rails.
func dualRail(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("myri0", "myrinet").
		Network("sci0", "sci").
		Node("a", "myri0", "sci0").
		Node("b", "myri0", "sci0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func stripeCfg(k int) fwd.Config {
	cfg := fwd.DefaultConfig()
	cfg.StripeK = k
	return cfg
}

func TestStripedDualRailIntact(t *testing.T) {
	w := build(t, dualRail(t), stripeCfg(2))
	blocks := []block{{pattern(128*1024, 3), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, from := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("striped payload corrupted")
	}
	if fwded {
		t.Error("direct rails marked forwarded")
	}
	if from != w.vc.NodeRank("a") {
		t.Errorf("From() = %d, want rank of a", from)
	}
	st := w.vc.StripeStats()
	if st.Messages != 1 {
		t.Errorf("striped %d messages, want 1", st.Messages)
	}
	if len(st.RailBytes) != 2 {
		t.Fatalf("rail bytes on %d rails, want 2: %v", len(st.RailBytes), st.RailBytes)
	}
	if st.RailBytes[0]+st.RailBytes[1] != 128*1024 {
		t.Errorf("rail bytes %v do not sum to the message size", st.RailBytes)
	}
	// Rail 0 is the faster (Myrinet) route; its quota must be the larger.
	if st.RailBytes[0] <= st.RailBytes[1] {
		t.Errorf("faster rail did not get the larger quota: %v", st.RailBytes)
	}
}

func TestStripedMultiBlockIntact(t *testing.T) {
	w := build(t, dualRail(t), stripeCfg(2))
	blocks := []block{
		{pattern(40_000, 1), mad.SendSafer, mad.ReceiveCheaper},
		{pattern(0, 0), mad.SendCheaper, mad.ReceiveCheaper},
		{pattern(7_000, 2), mad.SendCheaper, mad.ReceiveExpress},
		{pattern(90_000, 3), mad.SendCheaper, mad.ReceiveCheaper},
	}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i].data) {
			t.Errorf("block %d corrupted", i)
		}
	}
	if n := w.vc.StripeStats().Messages; n != 1 {
		t.Errorf("striped %d messages, want 1", n)
	}
}

func TestStripeBelowThresholdFallsBack(t *testing.T) {
	w := build(t, dualRail(t), stripeCfg(2))
	blocks := []block{{pattern(4_000, 5), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("sub-threshold payload corrupted")
	}
	if fwded {
		t.Error("direct fallback marked forwarded")
	}
	if n := w.vc.StripeStats().Messages; n != 0 {
		t.Errorf("sub-threshold message was striped (%d)", n)
	}
}

func TestStripeCustomThreshold(t *testing.T) {
	cfg := stripeCfg(2)
	cfg.StripeThreshold = 2_000
	w := build(t, dualRail(t), cfg)
	blocks := []block{{pattern(4_000, 5), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	if n := w.vc.StripeStats().Messages; n != 1 {
		t.Errorf("message above the custom threshold was not striped (%d)", n)
	}
}

// Diamond topology: both rails cross a gateway, each a different one.
func TestStripedThroughGateways(t *testing.T) {
	tp, err := topo.NewBuilder().
		Network("m1", "myrinet").
		Network("m2", "myrinet").
		Network("s1", "sci").
		Network("s2", "sci").
		Node("a", "m1", "s1").
		Node("g1", "m1", "m2").
		Node("g2", "s1", "s2").
		Node("b", "m2", "s2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	w := build(t, tp, stripeCfg(2))
	blocks := []block{{pattern(96*1024, 7), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, from := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("gateway-striped payload corrupted")
	}
	if !fwded {
		t.Error("gateway rails not marked forwarded")
	}
	if from != w.vc.NodeRank("a") {
		t.Errorf("From() = %d", from)
	}
	if n := w.vc.StripeStats().Messages; n != 1 {
		t.Errorf("striped %d messages, want 1", n)
	}
	// Both gateways must have relayed exactly one rail each.
	for _, gw := range []string{"g1", "g2"} {
		if n := w.vc.Gateway(gw).Messages(); n != 1 {
			t.Errorf("gateway %s relayed %d rails, want 1", gw, n)
		}
	}
}

// StripeK=1 must behave exactly like the unstriped channel: no stripe
// traffic, single-rail delivery.
func TestStripeKOneIsSingleRail(t *testing.T) {
	w := build(t, dualRail(t), stripeCfg(1))
	blocks := []block{{pattern(128*1024, 9), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	if n := w.vc.StripeStats().Messages; n != 0 {
		t.Errorf("K=1 striped %d messages", n)
	}
}

// buildDMA is build with the SCI rail driven by the board's DMA engine —
// the paper's §3.4.1 workaround. PIO SCI sends are demoted 0.5x under
// concurrent Myrinet DMA on the shared PCI bus, which caps dual-rail
// striping below its potential; DMA sends keep their rate.
func buildDMA(t *testing.T, tp *topo.Topology, cfg fwd.Config) *world {
	t.Helper()
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	bindings := make(map[string]fwd.Binding)
	for _, nw := range tp.Networks() {
		var drv netDriver
		switch nw.Protocol {
		case "sci":
			drv = sisci.NewDMA()
		case "myrinet":
			drv = bip.New()
		default:
			t.Fatalf("no driver for %s", nw.Protocol)
		}
		bindings[nw.Name] = fwd.Binding{Net: drv.NewNetwork(pl, nw.Name), Drv: drv}
	}
	vc, err := fwd.Build(sess, tp, bindings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, sess: sess, vc: vc}
}

// Striping a large message over two rails must beat the single rail by a
// wide margin: with the SCI rail on its DMA engine (§3.4.1) the dual
// testbed adds ≈35 MB/s to Myrinet's 47 MB/s, so ≥1.5x is a conservative
// floor.
func TestStripeSpeedup(t *testing.T) {
	elapsed := func(k int) vtime.Duration {
		w := buildDMA(t, dualRail(t), stripeCfg(k))
		var done vtime.Time
		blocks := []block{{pattern(128*1024, 4), mad.SendCheaper, mad.ReceiveCheaper}}
		w.sim.Spawn("send", func(p *vtime.Proc) {
			px := w.vc.At("a").BeginPacking(p, "b")
			for _, b := range blocks {
				px.Pack(p, b.data, b.s, b.r)
			}
			px.EndPacking(p)
		})
		w.sim.Spawn("recv", func(p *vtime.Proc) {
			u := w.vc.At("b").BeginUnpacking(p)
			buf := make([]byte, len(blocks[0].data))
			u.Unpack(p, buf, blocks[0].s, blocks[0].r)
			u.EndUnpacking(p)
			done = p.Now()
		})
		if err := w.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return done.Sub(vtime.Time(0))
	}
	one := elapsed(1)
	two := elapsed(2)
	if ratio := one.Seconds() / two.Seconds(); ratio < 1.5 {
		t.Errorf("K=2 speedup %.2fx, want >= 1.5x (K=1 %v, K=2 %v)", ratio, one, two)
	}
}

// With the default PIO SCI driver the shared PCI bus demotes the SCI rail
// 0.5x while the Myrinet rail's DMA is active (§3.4.1), so striping still
// wins but cannot reach the DMA configuration's gain — the same conflict
// the paper measures on gateways, reproduced on a striping sender.
func TestStripePIOBusConflict(t *testing.T) {
	elapsed := func(w *world) vtime.Duration {
		var done vtime.Time
		data := pattern(128*1024, 4)
		w.sim.Spawn("send", func(p *vtime.Proc) {
			px := w.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, data, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("recv", func(p *vtime.Proc) {
			u := w.vc.At("b").BeginUnpacking(p)
			buf := make([]byte, len(data))
			u.Unpack(p, buf, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			done = p.Now()
		})
		if err := w.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return done.Sub(vtime.Time(0))
	}
	pioOne := elapsed(build(t, dualRail(t), stripeCfg(1)))
	pioTwo := elapsed(build(t, dualRail(t), stripeCfg(2)))
	dmaTwo := elapsed(buildDMA(t, dualRail(t), stripeCfg(2)))
	pioGain := pioOne.Seconds() / pioTwo.Seconds()
	dmaGain := pioOne.Seconds() / dmaTwo.Seconds()
	if pioGain < 1.1 {
		t.Errorf("PIO striping gain %.2fx, want >= 1.1x", pioGain)
	}
	if dmaGain <= pioGain {
		t.Errorf("DMA workaround gain %.2fx not above PIO gain %.2fx", dmaGain, pioGain)
	}
}

// Repeated striped sends must converge the EWMA scheduler: the split may
// move early on (counted as rebalances) but delivery stays byte-exact.
func TestStripeRebalanceConverges(t *testing.T) {
	w := build(t, dualRail(t), stripeCfg(2))
	data := pattern(64*1024, 6)
	for i := 0; i < 5; i++ {
		got, _, _ := sendRecv(t, w, "a", "b", []block{{data, mad.SendCheaper, mad.ReceiveCheaper}})
		if !bytes.Equal(got[0], data) {
			t.Fatalf("send %d corrupted", i)
		}
	}
	st := w.vc.StripeStats()
	if st.Messages != 5 {
		t.Errorf("striped %d messages, want 5", st.Messages)
	}
	if st.Rebalances >= st.Messages {
		t.Errorf("scheduler never converged: %d rebalances over %d messages",
			st.Rebalances, st.Messages)
	}
}

// --- striping in reliable mode -----------------------------------------
//
// Reliable striping is a sender-side scheduling decision: fragments carry
// their index and reassemble out of order, so the receiver needs no rail
// awareness. These tests pin byte-exactness clean, under loss, and across
// a rail crash with quota failover.

func TestReliableStripedIntact(t *testing.T) {
	w := buildFaulty(t, dualRail(t), nil, nil, stripeCfg(2))
	blocks := []block{{pattern(128*1024, 11), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("reliable striped payload corrupted")
	}
	if fwded {
		t.Error("direct rails marked forwarded")
	}
	st := w.vc.StripeStats()
	if st.Messages != 1 {
		t.Errorf("striped %d messages, want 1", st.Messages)
	}
	if st.RailFailovers != 0 {
		t.Errorf("clean run failed over %d rails", st.RailFailovers)
	}
	if ds := w.vc.DeliveryStats(); ds != (fwd.DeliveryStats{}) {
		t.Errorf("fault-free delivery stats not all zero: %+v", ds)
	}
}

func TestReliableStripedUnderLoss(t *testing.T) {
	plan := fault.NewPlan(42).Drop("*", 0.05)
	w := buildFaulty(t, dualRail(t), nil, plan, stripeCfg(2))
	blocks := []block{{pattern(200_000, 13), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("reliable striped payload corrupted under loss")
	}
	if ds := w.vc.DeliveryStats(); ds.Retransmits == 0 {
		t.Error("5% loss run saw zero retransmissions")
	}
	if n := w.vc.StripeStats().Messages; n != 1 {
		t.Errorf("striped %d messages, want 1", n)
	}
}

func TestReliableStripedRailCrash(t *testing.T) {
	// The SCI rail is down for the whole run: its quota must fail over to
	// the Myrinet rail and the message must still arrive byte-exact.
	plan := fault.NewPlan(3).Flap("sci0", 0, 0)
	w := buildFaulty(t, dualRail(t), nil, plan, stripeCfg(2))
	blocks := []block{{pattern(128*1024, 17), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted across rail failover")
	}
	st := w.vc.StripeStats()
	if st.RailFailovers == 0 {
		t.Error("dead rail caused no rail failover")
	}
	if st.RailBytes[0] == 0 {
		t.Error("surviving rail carried nothing")
	}
}

func TestReliableStripedGatewayRailCrash(t *testing.T) {
	// Diamond topology, one gateway per rail; the SCI-side gateway dies.
	// The rail through it must fail over and the whole message drain
	// through the surviving Myrinet gateway.
	tp, err := topo.NewBuilder().
		Network("m1", "myrinet").
		Network("m2", "myrinet").
		Network("s1", "sci").
		Network("s2", "sci").
		Node("a", "m1", "s1").
		Node("g1", "m1", "m2").
		Node("g2", "s1", "s2").
		Node("b", "m2", "s2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(5).Crash("g2", 0, 0)
	w := buildFaulty(t, tp, nil, plan, stripeCfg(2))
	blocks := []block{{pattern(96*1024, 19), mad.SendCheaper, mad.ReceiveCheaper}}
	got, fwded, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted across gateway rail crash")
	}
	if !fwded {
		t.Error("gateway-routed message not marked forwarded")
	}
	if n := w.vc.StripeStats().RailFailovers; n == 0 {
		t.Error("dead gateway rail caused no rail failover")
	}
	if n := w.vc.Gateway("g1").Messages(); n == 0 {
		t.Error("surviving gateway relayed nothing")
	}
}

// Hop acknowledgements must batch: a multi-fragment reliable message may
// cost at most a few standalone ack datagrams per window, far fewer than
// one per data packet.
func TestReliableAckCoalescing(t *testing.T) {
	// Direct link, one 300 KB message: 11 data packets at the default MTU
	// (10 fragments plus the descriptor) in ARQ bursts of 8, answered by
	// one batched cumulative ack per burst, plus the end-to-end ack's own
	// hop ack — three-ish control datagrams where per-packet acking would
	// need a dozen.
	w := buildFaulty(t, dualRail(t), nil, nil, fwd.DefaultConfig())
	blocks := []block{{pattern(300_000, 21), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a", "b", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	st := w.vc.AckStats()
	if st.Packets == 0 {
		t.Error("no standalone ack datagrams at all")
	}
	if st.Coalesced == 0 {
		t.Error("no acks were coalesced")
	}
	// Every delivered packet's hop ack lands in exactly one bucket, so
	// Packets+Coalesced is the per-packet-acking datagram count this run
	// avoided. Batching must cut control datagrams by at least 3x.
	acks := st.Packets + st.Coalesced
	if st.Packets*3 > acks {
		t.Errorf("%d ack datagrams for %d hop acks; batching below 3x", st.Packets, acks)
	}
}

// Ack batching must also hold across a gateway: the relay re-bursts
// packets on the second hop, so standalone ack datagrams stay strictly
// fewer than the per-packet count even when relay pacing shrinks bursts.
func TestReliableAckCoalescingForwarded(t *testing.T) {
	w := buildFaulty(t, paperHS(t), nil, nil, fwd.DefaultConfig())
	blocks := []block{{pattern(300_000, 22), mad.SendCheaper, mad.ReceiveCheaper}}
	got, _, _ := sendRecv(t, w, "a0", "b1", blocks)
	if !bytes.Equal(got[0], blocks[0].data) {
		t.Error("payload corrupted")
	}
	st := w.vc.AckStats()
	acks := st.Packets + st.Coalesced
	if st.Coalesced == 0 {
		t.Error("no acks were coalesced")
	}
	if st.Packets >= acks {
		t.Errorf("%d ack datagrams for %d hop acks; batching saved nothing", st.Packets, acks)
	}
}

// Bidirectional reliable traffic lets acks piggyback on reverse-direction
// data packets instead of costing their own datagrams.
func TestReliableAckPiggyback(t *testing.T) {
	w := buildFaulty(t, dualRail(t), nil, nil, fwd.DefaultConfig())
	fwdData := pattern(120_000, 23)
	revData := pattern(120_000, 29)
	var gotFwd, gotRev []byte
	w.sim.Spawn("a", func(p *vtime.Proc) {
		px := w.vc.At("a").BeginPacking(p, "b")
		px.Pack(p, fwdData, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
		u := w.vc.At("a").BeginUnpacking(p)
		gotRev = make([]byte, len(revData))
		u.Unpack(p, gotRev, mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	w.sim.Spawn("b", func(p *vtime.Proc) {
		px := w.vc.At("b").BeginPacking(p, "a")
		px.Pack(p, revData, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
		u := w.vc.At("b").BeginUnpacking(p)
		gotFwd = make([]byte, len(fwdData))
		u.Unpack(p, gotFwd, mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := w.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotFwd, fwdData) || !bytes.Equal(gotRev, revData) {
		t.Error("bidirectional payloads corrupted")
	}
	if st := w.vc.AckStats(); st.Coalesced == 0 {
		t.Error("bidirectional run coalesced no acks")
	}
}
