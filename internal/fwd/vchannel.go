package fwd

import (
	"fmt"

	"madgo/internal/flight"
	"madgo/internal/fluid"
	"madgo/internal/health"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/trace"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// Config tunes the forwarding machinery. The defaults reproduce the paper's
// setup; the ablation benchmarks flip individual knobs.
type Config struct {
	// MTU is the GTM packet size — "an appropriate paquet size can be
	// chosen at compile time because the network configuration is
	// statically configured" (§2.3). The paper's analysis points at the
	// 16 KB SCI/Myrinet crossover; its figures sweep 8–128 KB.
	MTU int
	// PipelineDepth is the number of buffers each gateway forwarder
	// rotates. The paper uses two (one receiving, one sending); one
	// disables pipelining (ablation A3).
	PipelineDepth int
	// ZeroCopy enables the §2.3 buffer election on gateways. When false
	// every relayed packet pays an explicit staging copy (ablation A3).
	ZeroCopy bool
	// PathMTU switches packet-size selection from channel-global to
	// per-path: every message is fragmented at the minimum MTU over the
	// networks its route traverses (§2.3 — "the MTU of a connexion is
	// defined as the [minimum] of the MTU of each network used"), so
	// traffic between nodes on a large-MTU network is no longer cut down
	// to the smallest network anywhere in the configuration.
	PathMTU bool
	// NetMTU gives per-network packet-size caps for the PathMTU
	// negotiation; networks absent from the map default to MTU. Only
	// consulted when PathMTU is set.
	NetMTU map[string]int
	// InflowLimit, when positive (bytes/s), throttles each gateway
	// forwarder's receive loop to that rate — the "sophisticated
	// bandwidth control mechanism [to] regulate the incoming
	// communication flow on gateways" the paper's conclusion calls for
	// (ablation A4).
	InflowLimit float64
	// Tracer, when non-nil, records gateway pipeline spans for the
	// Figure 5/8 timelines.
	Tracer *trace.Tracer
	// Reliable switches the virtual channel from the paper's streaming
	// GTM to the reliable datagram protocol (see reliable.go): sequenced,
	// checksummed, acknowledged packets with retransmission and
	// multi-gateway failover. Required for running under fault injection.
	Reliable bool
	// Retry tunes the reliability protocol; zero fields take defaults.
	// Only meaningful with Reliable.
	Retry RetryPolicy
	// FallbackTopo, when non-nil in reliable mode, is a larger topology
	// (typically the full configuration including the slow control
	// network) whose extra networks become alternate paths once the
	// primary topology has no live route. Its node set must contain every
	// node of the primary topology.
	FallbackTopo *topo.Topology
	// StripeK, when at least 2, enables multi-rail striping: large
	// messages are split across up to StripeK link-disjoint routes per
	// node pair (see stripe.go), rate-proportionally. 0 and 1 keep the
	// single-route send path.
	StripeK int
	// StripeThreshold is the minimum message size (bytes) striping is
	// attempted for; smaller messages take the single-rail path. 0 means
	// DefaultStripeThreshold.
	StripeThreshold int
	// Health, when non-nil, arms the link-health failure detector (package
	// health): passive evidence from the reliable protocol plus active
	// probes drive per-link Up/Suspect/Dead/Probation states, and every
	// death or re-admission publishes a new epoch of shared route tables.
	// Requires Reliable; zero fields of the config take defaults.
	Health *health.Config
	// FlowControl arms credit-based gateway flow control (see flowctl.go
	// and package flow): senders spend a per-(gateway, sender) credit per
	// wire transfer toward a gateway and the gateway grants credits back as
	// its relay ring frees, so a many-senders incast turns into typed
	// sender-side stalls instead of mailbox pressure; gateways additionally
	// swap their FIFO arrival handling for a deficit-round-robin scheduler
	// that equalizes long-run byte rates across ingress flows. This is the
	// "regulate the incoming communication flow on gateways" mechanism the
	// paper's conclusion leaves as future work.
	FlowControl bool
	// CreditWindow overrides the per-(gateway, sender) credit window
	// (DefaultCreditWindow when 0). Requires FlowControl.
	CreditWindow int
	// Eager switches forwarded streaming messages to the compact GTM
	// framing (eager.go): the self-description header piggybacks on the
	// first data fragment and the terminator collapses into the last
	// fragment's EOM flag, so a small message crosses each wire once
	// instead of three times. Streaming only — the reliable protocol has
	// its own packet framing.
	Eager bool
	// Aggregation arms the cross-message coalescer (agg.go): consecutive
	// sub-MTU messages toward the same forwarded destination are packed
	// into one MTU-sized aggregate frame and flushed as a single wire
	// transfer (and a single flow-control credit). Direct (one-network)
	// traffic is never aggregated.
	Aggregation bool
	// AggIdleFlush overrides the coalescer's idle deadline
	// (DefaultAggIdleFlush when 0). Requires Aggregation.
	AggIdleFlush vtime.Duration
}

// DefaultConfig returns the paper's forwarding configuration with a 32 KB
// MTU.
func DefaultConfig() Config {
	return Config{MTU: 32 * 1024, PipelineDepth: 2, ZeroCopy: true}
}

func (c Config) validate() error {
	if c.MTU <= 0 {
		return fmt.Errorf("fwd: MTU must be positive, got %d", c.MTU)
	}
	if c.PipelineDepth < 1 {
		return fmt.Errorf("fwd: PipelineDepth must be at least 1, got %d", c.PipelineDepth)
	}
	if c.InflowLimit < 0 {
		return fmt.Errorf("fwd: negative InflowLimit")
	}
	for name, m := range c.NetMTU {
		if m <= 0 {
			return fmt.Errorf("fwd: NetMTU[%s] must be positive, got %d", name, m)
		}
	}
	if c.FallbackTopo != nil && !c.Reliable {
		return fmt.Errorf("fwd: FallbackTopo requires Reliable")
	}
	if c.StripeK < 0 || c.StripeK > stripeMaxRails {
		return fmt.Errorf("fwd: StripeK must be in [0, %d], got %d", stripeMaxRails, c.StripeK)
	}
	if c.StripeThreshold < 0 {
		return fmt.Errorf("fwd: negative StripeThreshold")
	}
	if c.Health != nil && !c.Reliable {
		return fmt.Errorf("fwd: Health requires Reliable")
	}
	if c.CreditWindow < 0 {
		return fmt.Errorf("fwd: negative CreditWindow")
	}
	if c.CreditWindow > 0 && !c.FlowControl {
		return fmt.Errorf("fwd: CreditWindow requires FlowControl")
	}
	if c.AggIdleFlush < 0 {
		return fmt.Errorf("fwd: negative AggIdleFlush")
	}
	if c.AggIdleFlush > 0 && !c.Aggregation {
		return fmt.Errorf("fwd: AggIdleFlush requires Aggregation")
	}
	return nil
}

// Binding ties a topology network to its simulated fabric and protocol
// driver.
type Binding struct {
	Net *hw.Network
	Drv mad.Driver
}

// incoming is an announced message on one of a node's regular channels,
// funnelled into the node's merged arrival queue by its polling threads. In
// reliable mode it is instead a fully-reassembled reliable message.
type incoming struct {
	ep  *mad.Endpoint
	a   *mad.Arrival
	rel *relMsg
	// mcast is a multicast message a relaying gateway on this node captured
	// for local delivery while replicating it (see mcast.go).
	mcast *mcastLocal
}

// VirtualChannel is the user-facing communication object of §2.2.1:
// "instead of simply creating a channel using a network protocol, we now
// create a virtual channel that includes a set of real channels".
type VirtualChannel struct {
	Name string

	sess *mad.Session
	tp   *topo.Topology
	tbl  *route.Table
	cfg  Config

	regular map[string]*mad.Channel // per network name
	special map[string]*mad.Channel // only for networks crossed mid-route
	nodes   map[string]*mad.Node
	merged  map[mad.Rank]*vsync.Chan[incoming]
	gates   map[string]*Gateway

	// Reliable-mode state: one engine per node, in declaration order.
	rel      map[string]*relEngine
	relOrder []string

	// mon is the link-health monitor; nil unless Config.Health is set.
	mon *health.Monitor

	// msgSeq issues channel-global message IDs at pack time; every layer a
	// message crosses records provenance hops under its ID. Deterministic:
	// the simulation is single-threaded, so pack order fixes the sequence.
	msgSeq uint64

	// stripe holds the multi-rail striping state; nil unless
	// Config.StripeK > 1 (see stripe.go).
	stripe *stripeState

	// pathMTUs caches the negotiated per-pair packet size (PathMTU mode).
	pathMTUs map[[2]string]int

	// nics retains the NIC model of every bound network so the diagnosis
	// pass can compare observed wire rates against nominal ones.
	nics map[string]hw.NICParams

	// flowc is the credit-based flow controller; nil unless
	// Config.FlowControl is set (see flowctl.go).
	flowc *flowCtl

	// aggst is the cross-message aggregation state (see agg.go); nil
	// unless Config.Aggregation is set.
	aggst *aggState

	// mcastst is the multicast state (see mcast.go): the per-(root,
	// member-set) distribution-plan cache and the McastStats counters.
	mcastst *mcastState
}

// netMTU returns the packet-size cap of one network under the PathMTU
// negotiation.
func (vc *VirtualChannel) netMTU(name string) int {
	if m, ok := vc.cfg.NetMTU[name]; ok {
		return m
	}
	return vc.cfg.MTU
}

// PathMTU returns the packet size used for messages from src to dst: the
// channel-global MTU normally, or — with Config.PathMTU — the minimum
// network MTU along the src→dst route, as §2.3 prescribes for a connexion
// spanning several networks. Routes and MTUs are static, so the result is
// cached per ordered pair.
func (vc *VirtualChannel) PathMTU(src, dst string) int {
	if !vc.cfg.PathMTU || src == dst {
		return vc.cfg.MTU
	}
	key := [2]string{src, dst}
	if m, ok := vc.pathMTUs[key]; ok {
		return m
	}
	// Nodes outside the primary topology (reliable-mode fallback nodes)
	// keep the global MTU: the routing table only covers the primary.
	if _, ok := vc.tp.Node(src); !ok {
		return vc.cfg.MTU
	}
	if _, ok := vc.tp.Node(dst); !ok {
		return vc.cfg.MTU
	}
	m := vc.cfg.MTU
	if r, ok := vc.tbl.Lookup(src, dst); ok {
		m = MTUForRoute(r, vc.netMTU)
	}
	vc.pathMTUs[key] = m
	return m
}

// nextMsgID issues the next channel-global message ID (IDs start at 1 so 0
// can mean "unassigned").
func (vc *VirtualChannel) nextMsgID() uint64 {
	vc.msgSeq++
	return vc.msgSeq
}

// metrics returns the platform's registry (nil records nothing).
func (vc *VirtualChannel) metrics() *obs.Registry { return vc.sess.Platform.Metrics }

// flight returns the platform's flight recorder (nil records nothing).
func (vc *VirtualChannel) flight() *flight.Recorder { return vc.sess.Platform.Flight }

// flightRing returns one node's flight-recorder ring (nil records
// nothing). Callers on hot paths cache the result once it is non-nil.
func (vc *VirtualChannel) flightRing(node string) *flight.Ring {
	return vc.sess.Platform.FlightRing(node)
}

// DiagnosisSignals builds the configuration context flight.Diagnose needs:
// pipeline depth and MTU, plus every bound network's nominal payload send
// rate and bus class, from the NIC models the channel was built with.
func (vc *VirtualChannel) DiagnosisSignals() flight.Signals {
	sig := flight.Signals{
		PipelineDepth: vc.cfg.PipelineDepth,
		MTU:           vc.cfg.MTU,
		NetRate:       make(map[string]float64),
		PIONet:        make(map[string]bool),
		DMANet:        make(map[string]bool),
	}
	for name, nic := range vc.nics {
		rate := nic.EffectiveSendRate(vc.netMTU(name))
		if nic.WireRate > 0 && nic.WireRate < rate {
			rate = nic.WireRate
		}
		sig.NetRate[name] = rate
		switch nic.SendBusClass {
		case fluid.ClassPIO:
			sig.PIONet[name] = true
		case fluid.ClassDMA:
			sig.DMANet[name] = true
		}
	}
	return sig
}

// Build creates the nodes, real channels, routing table and gateway engines
// of a virtual channel over the given topology. The session must be empty:
// the virtual channel owns the node set. Bindings must cover every network
// of the topology.
func Build(sess *mad.Session, tp *topo.Topology, bindings map[string]Binding, cfg Config) (*VirtualChannel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(sess.Nodes()) != 0 {
		return nil, fmt.Errorf("fwd: session already has nodes; Build owns node creation")
	}
	// In reliable mode with a fallback topology, nodes and real channels
	// are built over the fallback (superset) topology so the alternate
	// networks exist as forwarding paths; routing still prefers tp.
	buildTopo := tp
	if cfg.Reliable && cfg.FallbackTopo != nil {
		buildTopo = cfg.FallbackTopo
		for _, n := range tp.Nodes() {
			if _, ok := buildTopo.Node(n.Name); !ok {
				return nil, fmt.Errorf("fwd: FallbackTopo is missing node %s", n.Name)
			}
		}
		for _, nw := range tp.Networks() {
			if _, ok := buildTopo.Network(nw.Name); !ok {
				return nil, fmt.Errorf("fwd: FallbackTopo is missing network %s", nw.Name)
			}
		}
	}
	for _, nw := range buildTopo.Networks() {
		if _, ok := bindings[nw.Name]; !ok {
			return nil, fmt.Errorf("fwd: no binding for network %s", nw.Name)
		}
	}

	vc := &VirtualChannel{
		Name:    "vchan",
		sess:    sess,
		tp:      tp,
		cfg:     cfg,
		regular: make(map[string]*mad.Channel),
		special: make(map[string]*mad.Channel),
		nodes:   make(map[string]*mad.Node),
		merged:  make(map[mad.Rank]*vsync.Chan[incoming]),
		gates:   make(map[string]*Gateway),

		pathMTUs: make(map[[2]string]int),
		nics:     make(map[string]hw.NICParams),
		mcastst:  &mcastState{plans: make(map[string]*mcastPlan)},
	}
	for name, b := range bindings {
		vc.nics[name] = b.Drv.NIC()
	}
	if cfg.FlowControl {
		vc.flowc = newFlowCtl(vc, cfg.CreditWindow)
	}
	if cfg.Aggregation {
		vc.aggst = newAggState()
	}
	for _, n := range buildTopo.Nodes() {
		vc.nodes[n.Name] = sess.AddNode(n.Name)
	}
	vc.tbl = route.Compute(tp)

	// Regular channels: one per network over all attached nodes.
	for _, nw := range buildTopo.Networks() {
		b := bindings[nw.Name]
		members := make([]*mad.Node, len(nw.Members))
		for i, m := range nw.Members {
			members[i] = vc.nodes[m]
		}
		vc.regular[nw.Name] = sess.NewChannel("reg:"+nw.Name, b.Net, b.Drv, members...)
	}

	// Per-node merged arrival queues.
	for _, n := range buildTopo.Nodes() {
		node := vc.nodes[n.Name]
		vc.merged[node.Rank] = vsync.NewChan[incoming](fmt.Sprintf("merged:%s", n.Name), 4096)
	}

	if cfg.StripeK > 1 {
		// Striping needs the per-pair K-route cache and the static
		// network rates in both modes; in streaming mode the K-routes
		// additionally contribute special channels and gateway engines
		// below.
		vc.initStriping(bindings)
	}

	if cfg.Reliable {
		if cfg.Health != nil {
			sim := sess.Platform.Sim
			vc.mon = health.NewMonitor(*cfg.Health, tp, cfg.FallbackTopo,
				sess.Platform.Metrics, sim.After, sim.Now)
			// Health-epoch churn is a flight-recorder dump trigger: route
			// changes are exactly the moments whose surrounding event
			// history a post-mortem wants. The recorder is read through
			// the platform at call time, so one armed after Build still
			// sees epoch changes.
			vc.mon.SetEpochHook(func(epoch uint64, at vtime.Time) {
				vc.flightRing("health").Record(flight.KindEpoch, at, 0, 0, int(epoch), "")
				vc.flight().Dump(fmt.Sprintf("health-epoch-%d", epoch))
			})
		}
		vc.relOrder = buildTopo.NodeNames()
		vc.buildReliable(buildTopo)
		return vc, nil
	}

	// Special channels exist on every network some route crosses on a
	// non-final hop; gateway engines on every node some route relays
	// through.
	specialNets := make(map[string]bool)
	gateways := make(map[string]bool)
	names := tp.NodeNames()
	for _, src := range names {
		for _, dst := range names {
			if src == dst {
				continue
			}
			r, ok := vc.tbl.Lookup(src, dst)
			if !ok {
				return nil, fmt.Errorf("fwd: no route %s -> %s", src, dst)
			}
			for i, hop := range r {
				if i < len(r)-1 {
					specialNets[hop.Network] = true
					gateways[hop.To] = true
				}
			}
		}
	}
	// Striped rails may relay through networks and nodes no table route
	// uses; those need special channels and gateway engines too.
	if vc.stripe != nil {
		for _, rs := range vc.stripe.kroutes {
			for _, r := range rs {
				for i, hop := range r {
					if i < len(r)-1 {
						specialNets[hop.Network] = true
						gateways[hop.To] = true
					}
				}
			}
		}
	}
	for _, nw := range tp.Networks() {
		if !specialNets[nw.Name] {
			continue
		}
		b := bindings[nw.Name]
		members := make([]*mad.Node, len(nw.Members))
		for i, m := range nw.Members {
			members[i] = vc.nodes[m]
		}
		vc.special[nw.Name] = sess.NewChannel("spc:"+nw.Name, b.Net, b.Drv, members...)
	}

	// The merged queues are fed by one polling thread per (node, regular
	// channel) — "a polling mechanism ... to poll multiple networks at
	// the same time" (§2.2.2).
	sim := sess.Platform.Sim
	for _, n := range tp.Nodes() {
		node := vc.nodes[n.Name]
		q := vc.merged[node.Rank]
		for _, nwName := range n.Networks {
			ep := vc.regular[nwName].At(node)
			sim.SpawnDaemon(fmt.Sprintf("poll:%s:%s", n.Name, nwName), func(p *vtime.Proc) {
				for {
					a := ep.WaitArrival(p)
					q.Send(p, incoming{ep: ep, a: a})
				}
			})
		}
	}

	// Gateway engines.
	for name := range gateways {
		vc.gates[name] = newGateway(vc, vc.nodes[name])
	}
	for _, g := range vc.gates {
		g.start()
	}
	return vc, nil
}

// Session returns the underlying Madeleine session.
func (vc *VirtualChannel) Session() *mad.Session { return vc.sess }

// Table returns the routing table.
func (vc *VirtualChannel) Table() *route.Table { return vc.tbl }

// Config returns the forwarding configuration.
func (vc *VirtualChannel) Config() Config { return vc.cfg }

// Health returns the link-health monitor, or nil when Config.Health is
// unset.
func (vc *VirtualChannel) Health() *health.Monitor { return vc.mon }

// Gateways returns the names of the nodes running forwarding engines,
// sorted by name in the routing table's sense.
func (vc *VirtualChannel) Gateways() []string {
	var out []string
	for name := range vc.gates {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NodeRank returns the session rank of a topology node.
func (vc *VirtualChannel) NodeRank(name string) mad.Rank {
	n, ok := vc.nodes[name]
	if !ok {
		panic("fwd: unknown node " + name)
	}
	return n.Rank
}

// Endpoint is a virtual channel as seen from one node.
type Endpoint struct {
	vc   *VirtualChannel
	node *mad.Node
}

// At returns the endpoint of the named node.
func (vc *VirtualChannel) At(name string) *Endpoint {
	n, ok := vc.nodes[name]
	if !ok {
		panic("fwd: unknown node " + name)
	}
	return &Endpoint{vc: vc, node: n}
}

// Node returns the endpoint's session node.
func (e *Endpoint) Node() *mad.Node { return e.node }

// Packing is an outgoing message on a virtual channel. Depending on the
// route it is either a plain Madeleine message on the regular channel or a
// self-described GTM message on the special channel toward the first
// gateway; the application cannot tell the difference.
type Packing struct {
	plain  *mad.Packing
	gtm    *gtmPacking
	eager  *eagerPacking
	agg    *aggPacking
	rel    *relPacking
	stripe *stripePacking
	mcast  *mcastPacking
	id     uint64
	ended  bool
}

// MsgID returns the message's channel-global ID, assigned at BeginPacking.
// Registry.MessageTrace(id) reconstructs the message's hop-by-hop provenance
// when metrics are armed.
func (px *Packing) MsgID() uint64 { return px.id }

// BeginPacking starts a message to the named destination, choosing "the
// appropriate underlying real channel ... dynamically depending whether it
// is necessary to forward the message through a gateway or not" (§2.2.1).
func (e *Endpoint) BeginPacking(p *vtime.Proc, dst string) *Packing {
	if dst == e.node.Name {
		panic("fwd: message to self on " + dst)
	}
	// Aggregation: every message toward a forwarded (multi-network)
	// destination is offered to the coalescer; messages that turn out too
	// large bypass (or spill back to the streaming path) from there.
	if e.vc.cfg.Aggregation {
		if r, ok := e.vc.tbl.Lookup(e.node.Name, dst); ok && !r.Direct() {
			ax := newAggPacking(e.vc, e.node, dst)
			e.vc.metrics().RecordHop(ax.id, p.Now(), e.node.Name, "pack", "agg -> "+dst, 0)
			return &Packing{agg: ax, id: ax.id}
		}
	}
	if e.vc.cfg.Reliable {
		// Reliable datagram mode: every message, direct or forwarded,
		// takes the uniform packet path; routes are found per packet
		// so they can change under faults.
		if _, ok := e.vc.nodes[dst]; !ok {
			panic("fwd: unknown destination " + dst)
		}
		rp := newRelPacking(e.vc.rel[e.node.Name], dst)
		e.vc.metrics().RecordHop(rp.id, p.Now(), e.node.Name, "pack", "reliable -> "+dst, 0)
		return &Packing{rel: rp, id: rp.id}
	}
	// Striping: when the pair has at least two disjoint rails, buffer the
	// message and let EndPacking split it (or fall back to the single-rail
	// path below the size threshold).
	if len(e.vc.stripeRoutes(e.node.Name, dst)) >= 2 {
		sx := newStripePacking(e.vc, e.node, dst)
		e.vc.metrics().RecordHop(sx.id, p.Now(), e.node.Name, "pack",
			fmt.Sprintf("stripe -> %s (%d rails)", dst, len(e.vc.stripeRoutes(e.node.Name, dst))), 0)
		return &Packing{stripe: sx, id: sx.id}
	}
	r, ok := e.vc.tbl.Lookup(e.node.Name, dst)
	if !ok {
		panic(fmt.Sprintf("fwd: no route %s -> %s", e.node.Name, dst))
	}
	hop := r[0]
	if r.Direct() {
		ep := e.vc.regular[hop.Network].At(e.node)
		id := e.vc.nextMsgID()
		e.vc.metrics().RecordHop(id, p.Now(), e.node.Name, "pack",
			fmt.Sprintf("direct -> %s via %s", dst, hop.Network), 0)
		return &Packing{plain: ep.BeginPacking(p, e.vc.NodeRank(dst)), id: id}
	}
	spc, ok := e.vc.special[hop.Network]
	if !ok {
		panic("fwd: route crosses network without a special channel: " + hop.Network)
	}
	link := spc.Link(e.node.Rank, e.vc.NodeRank(hop.To))
	if e.vc.cfg.Eager {
		g := newEagerPacking(p, e.vc, e.node, link, e.vc.NodeRank(dst), e.vc.nextMsgID())
		e.vc.metrics().RecordHop(g.id, p.Now(), e.node.Name, "pack",
			fmt.Sprintf("eager -> %s via %s", dst, hop.Network), 0)
		return &Packing{eager: g, id: g.id}
	}
	g := newGTMPacking(p, e.vc, e.node, link, e.vc.NodeRank(dst), e.vc.nextMsgID())
	e.vc.metrics().RecordHop(g.id, p.Now(), e.node.Name, "pack",
		fmt.Sprintf("gtm -> %s via %s", dst, hop.Network), 0)
	return &Packing{gtm: g, id: g.id}
}

// Pack appends one block, as in the mad layer.
func (px *Packing) Pack(p *vtime.Proc, data []byte, s mad.SendMode, r mad.RecvMode) {
	if px.ended {
		panic("fwd: Pack after EndPacking")
	}
	if px.plain != nil {
		px.plain.Pack(p, data, s, r)
		return
	}
	if px.agg != nil {
		px.agg.pack(p, data, s, r)
		return
	}
	if px.rel != nil {
		px.rel.pack(p, data, s, r)
		return
	}
	if px.stripe != nil {
		px.stripe.pack(p, data, s, r)
		return
	}
	if px.mcast != nil {
		px.mcast.pack(p, data, s, r)
		return
	}
	if px.eager != nil {
		px.eager.pack(p, data, s, r)
		return
	}
	px.gtm.pack(p, data, s, r)
}

// EndPacking completes the message.
func (px *Packing) EndPacking(p *vtime.Proc) {
	if px.ended {
		panic("fwd: double EndPacking")
	}
	px.ended = true
	if px.plain != nil {
		px.plain.EndPacking(p)
		return
	}
	if px.agg != nil {
		px.agg.end(p)
		return
	}
	if px.rel != nil {
		px.rel.end(p)
		return
	}
	if px.stripe != nil {
		px.stripe.end(p)
		return
	}
	if px.mcast != nil {
		px.mcast.end(p)
		return
	}
	if px.eager != nil {
		px.eager.end(p)
		return
	}
	px.gtm.end(p)
}

// Unpacking is an incoming message on a virtual channel.
type Unpacking struct {
	plain  *mad.Unpacking
	gtm    *gtmUnpacking
	eager  *eagerUnpacking
	agg    *aggUnpacking
	rel    *relUnpacking
	stripe *stripeUnpacking
	mcast  *mcastUnpacking
	from   mad.Rank
	fwd    bool
	ended  bool
}

// BeginUnpacking blocks until a message arrives on any of the node's
// regular channels and opens it with the module its arrival note selects —
// "to be able to chose between a regular Transmission Module and the
// Generic one, it needs some additional information ... transmitted before
// the actual message body" (§2.2.2).
func (e *Endpoint) BeginUnpacking(p *vtime.Proc) *Unpacking {
	p.Sleep(e.node.Host.CPU.PollCost)
	for {
		// Sub-messages decoded from an earlier aggregate frame are
		// delivered FIFO before anything newer.
		if as, ok := e.vc.aggPop(e.node.Rank); ok {
			return &Unpacking{agg: newAggUnpacking(e.vc, e.node, as), from: as.from, fwd: true}
		}
		// A striped message completed by an earlier arrival round is
		// delivered before pulling new announcements.
		if st := e.stripeRx(); st != nil && len(st.ready) > 0 {
			g := st.ready[0]
			st.ready = st.ready[1:]
			if g.agg {
				e.vc.aggDecodeStriped(p, e.node, g)
				continue
			}
			su := newStripeUnpacking(e.vc, e.node, g)
			return &Unpacking{stripe: su, from: su.from(), fwd: su.forwarded()}
		}
		in, ok := e.vc.merged[e.node.Rank].Recv(p)
		if !ok {
			panic("fwd: merged arrival queue closed")
		}
		if in.mcast != nil {
			// A multicast message the local gateway captured while
			// replicating it downstream.
			g := newMcastLocalUnpacking(e.vc, e.node, in.mcast)
			return &Unpacking{mcast: g, from: g.from, fwd: true}
		}
		if in.rel != nil {
			if in.rel.agg {
				e.vc.aggDecodeReliable(p, e.node, in.rel)
				continue
			}
			ru := newRelUnpacking(e.vc.rel[e.node.Name], in.rel)
			srcName := e.vc.sess.Node(in.rel.origin).Name
			fwd := len(e.vc.tp.SharedNetworks(srcName, e.node.Name)) == 0
			return &Unpacking{rel: ru, from: in.rel.origin, fwd: fwd}
		}
		if in.a.Kind() == mad.KindStripe {
			// One rail of a striped message: file it and keep pulling
			// until some message (striped or not) is complete.
			if g := e.vc.openStripeRail(p, e.node, in.a); g != nil {
				if g.agg {
					e.vc.aggDecodeStriped(p, e.node, g)
					continue
				}
				su := newStripeUnpacking(e.vc, e.node, g)
				return &Unpacking{stripe: su, from: su.from(), fwd: su.forwarded()}
			}
			continue
		}
		if in.a.Kind() == mad.KindAgg {
			// A whole aggregate frame in one compact transfer: decode,
			// queue its sub-messages, deliver the first on the next spin.
			e.vc.openAggFrame(p, e.node, in.a)
			continue
		}
		if in.a.Kind() == mad.KindEager {
			g := newEagerUnpacking(p, e.vc, e.node, in.a)
			return &Unpacking{eager: g, from: g.from, fwd: true}
		}
		if in.a.Kind() == mad.KindMcast {
			g := newMcastUnpacking(p, e.vc, e.node, in.a)
			return &Unpacking{mcast: g, from: g.from, fwd: true}
		}
		if in.a.Kind() == mad.KindGTM {
			g := newGTMUnpacking(p, e.vc, e.node, in.a)
			return &Unpacking{gtm: g, from: g.from, fwd: true}
		}
		u := in.ep.Open(p, in.a)
		return &Unpacking{plain: u, from: u.From()}
	}
}

// stripeRx returns this node's rail collection state, or nil when striping
// is off.
func (e *Endpoint) stripeRx() *stripeRx {
	if e.vc.stripe == nil {
		return nil
	}
	return e.vc.stripe.rx[e.node.Rank]
}

// From returns the rank of the message's original sender, even across
// gateways.
func (u *Unpacking) From() mad.Rank { return u.from }

// Forwarded reports whether the message crossed at least one gateway.
func (u *Unpacking) Forwarded() bool { return u.fwd }

// Unpack extracts the next block, mirroring the sender's Pack exactly.
func (u *Unpacking) Unpack(p *vtime.Proc, dst []byte, s mad.SendMode, r mad.RecvMode) {
	if u.ended {
		panic("fwd: Unpack after EndUnpacking")
	}
	if u.plain != nil {
		u.plain.Unpack(p, dst, s, r)
		return
	}
	if u.agg != nil {
		u.agg.unpack(p, dst, s, r)
		return
	}
	if u.rel != nil {
		u.rel.unpack(p, dst, s, r)
		return
	}
	if u.stripe != nil {
		u.stripe.unpack(p, dst, s, r)
		return
	}
	if u.mcast != nil {
		u.mcast.unpack(p, dst, s, r)
		return
	}
	if u.eager != nil {
		u.eager.unpack(p, dst, s, r)
		return
	}
	u.gtm.unpack(p, dst, s, r)
}

// EndUnpacking completes the message.
func (u *Unpacking) EndUnpacking(p *vtime.Proc) {
	if u.ended {
		panic("fwd: double EndUnpacking")
	}
	u.ended = true
	if u.plain != nil {
		u.plain.EndUnpacking(p)
		return
	}
	if u.agg != nil {
		u.agg.end(p)
		return
	}
	if u.rel != nil {
		u.rel.end(p)
		return
	}
	if u.stripe != nil {
		u.stripe.end(p)
		return
	}
	if u.mcast != nil {
		u.mcast.end(p)
		return
	}
	if u.eager != nil {
		u.eager.end(p)
		return
	}
	u.gtm.end(p)
}
