package fwd_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"madgo/internal/fwd"
	"madgo/internal/mad"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// mustTopo is sbpTopo without the *testing.T plumbing, for property funcs.
func mustTopo(pIn, pOut string) *topo.Topology {
	tp, err := topo.NewBuilder().
		Network("n1", pIn).
		Network("n2", pOut).
		Node("a", "n1").Node("g", "n1", "n2").Node("b", "n2").
		Build()
	if err != nil {
		panic(err)
	}
	return tp
}

// Property: the §2.3 zero-copy election holds for arbitrary payload sizes
// and packet sizes — the gateway CPU-copies payload if and only if both the
// ingress and egress networks use static buffers, and delivery is always
// byte-exact. (Header/announce traffic is allowed a small constant.)
func TestZeroCopyElectionProperty(t *testing.T) {
	combos := []struct {
		in, out  string
		copyFree bool // bulk fragments cross with no gateway CPU copy
	}{
		{"sci", "myrinet", true},
		{"myrinet", "sci", true},
		{"myrinet", "sbp", true},
		{"sbp", "myrinet", true},
		{"sbp", "sbp", false},
		{"sci", "sbp", true},
	}
	f := func(seed uint64) bool {
		rng := seed*6364136223846793005 + 1442695040888963407
		next := func(n uint64) uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % n
		}
		combo := combos[next(uint64(len(combos)))]
		cfg := fwd.DefaultConfig()
		// Packet sizes start above the SCI post-gate / BIP rendezvous
		// thresholds: fragments at or below 4 KB ride the SCI message
		// ring (copied out, as on real SISCI) and are exercised by the
		// a2 sweep instead.
		cfg.MTU = 8192 * (1 + int(next(31)))
		n := 1 + int(next(400_000))
		w := buildQuiet(mustTopo(combo.in, combo.out), cfg)
		payload := pattern(n, byte(seed))
		okPayload := true
		w.sim.Spawn("s", func(p *vtime.Proc) {
			px := w.vc.At("a").BeginPacking(p, "b")
			px.Pack(p, payload, mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		w.sim.Spawn("r", func(p *vtime.Proc) {
			u := w.vc.At("b").BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			okPayload = bytes.Equal(got, payload)
		})
		if err := w.sim.Run(); err != nil {
			t.Logf("seed %d (%s->%s, mtu %d, n %d): %v", seed, combo.in, combo.out, cfg.MTU, n, err)
			return false
		}
		copied := w.sess.NodeByName("g").Host.BytesCopied()
		// Allowed copies on a "copy-free" path: the 12-byte routing
		// header, plus at most one sub-rendezvous tail fragment — BIP
		// delivers small eager messages through preallocated receive
		// slots and copies them out, on real hardware too. The bulk
		// fragments must stay copy-free.
		const headerAllowance = 64
		tailAllowance := int64(4096 + 64)
		if combo.copyFree && copied > headerAllowance+tailAllowance {
			t.Logf("seed %d (%s->%s, mtu %d, n %d): gateway copied %d bytes",
				seed, combo.in, combo.out, cfg.MTU, n, copied)
			return false
		}
		if !combo.copyFree && copied < int64(n) {
			t.Logf("seed %d (%s->%s): static-static copied only %d of %d",
				seed, combo.in, combo.out, copied, n)
			return false
		}
		return okPayload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
