// Package health is the per-link failure detector behind the self-healing
// route tables. It consumes passive evidence from the forwarding layer (ACK
// round-trips, send outcomes, exhausted retransmit budgets, relay stalls)
// and active probe results, smooths them into a per-edge EWMA score, and
// drives each directed link through Up → Suspect → Dead → Probation
// transitions with hysteresis so a flapping link cannot oscillate the route
// table. Every transition that changes routable connectivity publishes a
// fresh constraint set to the route.Manager, which stamps a new epoch;
// recovered links are re-admitted only after a run of consecutive probation
// probe successes.
//
// The package is pure policy: it never touches channels or packets itself.
// The forwarding layer injects a scheduler hook (virtual-time callbacks) and
// a probe sink; the monitor decides when an edge deserves a probe and the
// forwarding layer performs it, reporting the outcome back.
package health

import (
	"sort"

	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// State is a link's position in the detector state machine.
type State uint8

const (
	// Up: full confidence, the edge is routable.
	Up State = iota
	// Suspect: score dropped below the suspect threshold. Still routable
	// (evidence is inconclusive) but probed actively to resolve quickly.
	Suspect
	// Dead: excluded from every route table until probation succeeds.
	Dead
	// Probation: a probe got through a dead edge. Still excluded from
	// routing; a run of consecutive probe successes re-admits it.
	Probation
)

func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Probation:
		return "probation"
	}
	return "invalid"
}

// Config tunes the detector. The zero value of any field selects the
// default noted on it.
type Config struct {
	// Alpha is the EWMA weight of each new piece of evidence (default
	// 0.3): score' = (1-Alpha)*score + Alpha*outcome, outcome 1 for a
	// success, 0 for a failure.
	Alpha float64
	// SuspectBelow demotes Up to Suspect when the score falls under it
	// (default 0.5).
	SuspectBelow float64
	// UpAbove promotes Suspect back to Up when the score climbs over it
	// (default 0.8). The gap to SuspectBelow is the hysteresis band.
	UpAbove float64
	// DeadBelow demotes Suspect to Dead when the score falls under it
	// (default 0.15). An exhausted retransmit budget kills the edge
	// outright regardless of score.
	DeadBelow float64
	// ProbeAfter is the delay from an edge dying to its first probation
	// probe (default 20ms). Each repeated death doubles the delay up to
	// ProbeAfterMax — a flap damper: the more often a link dies, the
	// longer it must wait for another chance.
	ProbeAfter vtime.Duration
	// ProbeAfterMax caps the death-count doubling (default 320ms).
	ProbeAfterMax vtime.Duration
	// ProbeTimeout is how long the prober waits for a response before
	// declaring the probe failed (default 10ms). Consumed by the
	// forwarding layer's prober, not by the detector itself.
	ProbeTimeout vtime.Duration
	// ProbationEvery spaces consecutive probation (and suspect-resolving)
	// probes (default 5ms).
	ProbationEvery vtime.Duration
	// ProbationSuccesses is the run of consecutive probe successes that
	// re-admits a dead edge (default 3).
	ProbationSuccesses int
	// ProbeGiveUp abandons an edge after this many consecutive failed
	// probes (default 40): the monitor stops scheduling probes so a
	// permanently-dead link stops generating events and the simulation
	// can drain. Evidence of life (a successful send) re-arms probing.
	ProbeGiveUp int
	// HeartbeatIdle is the idle threshold for heartbeats (default 50ms):
	// when a node transmits, sibling Up edges of that node with no
	// evidence for this long get a probe, so a silently-dead idle edge is
	// discovered before real traffic needs it.
	HeartbeatIdle vtime.Duration
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.SuspectBelow == 0 {
		c.SuspectBelow = 0.5
	}
	if c.UpAbove == 0 {
		c.UpAbove = 0.8
	}
	if c.DeadBelow == 0 {
		c.DeadBelow = 0.15
	}
	if c.ProbeAfter == 0 {
		c.ProbeAfter = 20 * vtime.Millisecond
	}
	if c.ProbeAfterMax == 0 {
		c.ProbeAfterMax = 320 * vtime.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 10 * vtime.Millisecond
	}
	if c.ProbationEvery == 0 {
		c.ProbationEvery = 5 * vtime.Millisecond
	}
	if c.ProbationSuccesses == 0 {
		c.ProbationSuccesses = 3
	}
	if c.ProbeGiveUp == 0 {
		c.ProbeGiveUp = 40
	}
	if c.HeartbeatIdle == 0 {
		c.HeartbeatIdle = 50 * vtime.Millisecond
	}
	return c
}

// Transition is one state change, kept in the monitor's log for diagnostics
// (madstat's health panel, the chaos soak's convergence assertions).
type Transition struct {
	At       vtime.Time
	Link     route.Edge
	From, To State
	Epoch    uint64 // routing epoch after this transition
}

// LinkHealth is one edge's externally visible condition.
type LinkHealth struct {
	Link  route.Edge
	State State
	Score float64
	RTT   vtime.Duration // EWMA of observed ack/probe round-trips
	Since vtime.Time     // time of the last state transition
}

// link is the per-edge detector record.
type link struct {
	state        State
	score        float64
	rtt          vtime.Duration // EWMA, 0 until first measurement
	since        vtime.Time
	lastEvidence vtime.Time
	probePending bool // a probe is scheduled or in flight
	probeFails   int  // consecutive probe failures
	okProbes     int  // consecutive probation successes
	deaths       int  // lifetime death count, for probe-delay damping
	gaveUp       bool // probing abandoned after ProbeGiveUp failures
}

// Monitor is the failure detector plus its routing side: it owns the
// route.Manager and republishes constraints whenever the dead-edge set
// changes. All methods must be called from simulation context (the
// simulation is single-threaded, so there is no locking).
type Monitor struct {
	cfg      Config
	mgr      *route.Manager
	met      *obs.Registry
	schedule func(vtime.Duration, func()) // vtime.Sim.After
	sink     func(route.Edge)             // forwarding layer's probe queue
	now      func() vtime.Time
	onEpoch  func(uint64, vtime.Time) // epoch-publication hook (may be nil)

	links  map[route.Edge]*link
	order  []route.Edge            // deterministic iteration order
	byFrom map[string][]route.Edge // heartbeat scan index

	dead map[route.Edge]bool // edges excluded from routing (Dead+Probation)

	log          []Transition
	probes       int64
	probeFails   int64
	readmissions int64
}

// NewMonitor builds a monitor over every directed edge of the primary (and
// optional fallback) topology. met may be nil; schedule and now are the
// simulation's After and Now. The probe sink is injected separately by the
// forwarding layer once its prober queues exist.
func NewMonitor(cfg Config, primary, fallback *topo.Topology, met *obs.Registry,
	schedule func(vtime.Duration, func()), now func() vtime.Time) *Monitor {

	m := &Monitor{
		cfg:      cfg.withDefaults(),
		mgr:      route.NewManager(primary, fallback),
		met:      met,
		schedule: schedule,
		now:      now,
		links:    make(map[route.Edge]*link),
		byFrom:   make(map[string][]route.Edge),
		dead:     make(map[route.Edge]bool),
	}
	for _, tp := range []*topo.Topology{primary, fallback} {
		if tp == nil {
			continue
		}
		for _, nw := range tp.Networks() {
			for _, from := range nw.Members {
				for _, to := range nw.Members {
					if from == to {
						continue
					}
					e := route.Edge{From: from, To: to, Network: nw.Name}
					if _, ok := m.links[e]; ok {
						continue
					}
					m.links[e] = &link{state: Up, score: 1}
					m.order = append(m.order, e)
					m.byFrom[from] = append(m.byFrom[from], e)
				}
			}
		}
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i].String() < m.order[j].String() })
	for _, edges := range m.byFrom {
		es := edges
		sort.Slice(es, func(i, j int) bool { return es[i].String() < es[j].String() })
	}
	m.met.Add("madgo_health_probes_total", nil, 0)
	m.met.Add("madgo_health_probe_failures_total", nil, 0)
	m.met.Add("madgo_health_readmissions_total", nil, 0)
	m.met.Add("madgo_health_transitions_total", nil, 0)
	m.met.Set("madgo_route_epoch", nil, float64(m.mgr.Epoch()))
	return m
}

// SetProbeSink installs the callback that carries a probe request to the
// forwarding layer. Until it is set the monitor records state but schedules
// no probes.
func (m *Monitor) SetProbeSink(fn func(route.Edge)) { m.sink = fn }

// SetEpochHook installs a callback invoked after every routing-epoch
// publication (link death or re-admission). The forwarding layer uses it
// to trigger flight-recorder dumps on health churn.
func (m *Monitor) SetEpochHook(fn func(epoch uint64, at vtime.Time)) { m.onEpoch = fn }

// Epoch returns the current routing epoch.
func (m *Monitor) Epoch() uint64 { return m.mgr.Epoch() }

// Tables returns the epoch-stamped route tables (primary first).
func (m *Monitor) Tables() []*route.Table { return m.mgr.Tables() }

// Find resolves a route under the current epoch.
func (m *Monitor) Find(src, dst string) (route.Route, error) { return m.mgr.Find(src, dst) }

// Constraints returns the constraint set of the current epoch. Shared maps —
// callers must copy before mutating.
func (m *Monitor) Constraints() route.Constraints { return m.mgr.Constraints() }

// DeadEdges returns the set of routing-excluded edges (shared; do not
// mutate). The stripe scheduler feeds it to ComputeKAvoiding.
func (m *Monitor) DeadEdges() map[route.Edge]bool { return m.dead }

// Excluded reports whether the edge is currently excluded from routing.
func (m *Monitor) Excluded(e route.Edge) bool { return m.dead[e] }

// ProbeTimeout exposes the configured prober-side await.
func (m *Monitor) ProbeTimeout() vtime.Duration { return m.cfg.ProbeTimeout }

// Readmissions counts Probation→Up re-admissions since start.
func (m *Monitor) Readmissions() int64 { return m.readmissions }

// Probes counts probe results received (successes and failures).
func (m *Monitor) Probes() int64 { return m.probes }

// Transitions returns a copy of the transition log.
func (m *Monitor) Transitions() []Transition {
	out := make([]Transition, len(m.log))
	copy(out, m.log)
	return out
}

// LastTransition returns the time of the most recent state change, or 0.
func (m *Monitor) LastTransition() vtime.Time {
	if len(m.log) == 0 {
		return 0
	}
	return m.log[len(m.log)-1].At
}

// Snapshot returns every link's condition in deterministic order.
func (m *Monitor) Snapshot() []LinkHealth {
	out := make([]LinkHealth, 0, len(m.order))
	for _, e := range m.order {
		l := m.links[e]
		out = append(out, LinkHealth{Link: e, State: l.state, Score: l.score, RTT: l.rtt, Since: l.since})
	}
	return out
}

// ReportSuccess feeds a successful send/ack round-trip on an edge. rtt <= 0
// means "unknown" (outcome without a measured round-trip).
func (m *Monitor) ReportSuccess(e route.Edge, rtt vtime.Duration, now vtime.Time) {
	l := m.links[e]
	if l == nil {
		return
	}
	if rtt > 0 {
		if l.rtt == 0 {
			l.rtt = rtt
		} else {
			l.rtt = l.rtt - vtime.Duration(m.cfg.Alpha*float64(l.rtt)) + vtime.Duration(m.cfg.Alpha*float64(rtt))
		}
	}
	if l.gaveUp {
		// Life on an abandoned edge re-arms probing.
		l.gaveUp = false
		l.probeFails = 0
	}
	if l.state == Dead || l.state == Probation {
		// Data made it across an excluded edge (e.g. a burst raced the
		// death verdict): as strong as a probe success.
		m.probeOK(e, l, rtt, now)
		return
	}
	m.observe(e, l, 1, now)
}

// ReportFailure feeds a soft failure: one retransmit-timeout expiry. The
// edge stays routable until the score or an exhausted budget says otherwise.
func (m *Monitor) ReportFailure(e route.Edge, now vtime.Time) {
	l := m.links[e]
	if l == nil {
		return
	}
	if l.state == Dead || l.state == Probation {
		return // already excluded; probes own the verdict now
	}
	m.observe(e, l, 0, now)
}

// ReportDead feeds a hard failure — an exhausted retransmit budget or a
// relay stall. The edge dies immediately regardless of score.
func (m *Monitor) ReportDead(e route.Edge, now vtime.Time) {
	l := m.links[e]
	if l == nil {
		return
	}
	l.lastEvidence = now
	m.die(e, l, now)
}

// ProbeResult feeds the outcome of a probe the forwarding layer performed.
func (m *Monitor) ProbeResult(e route.Edge, ok bool, rtt vtime.Duration, now vtime.Time) {
	l := m.links[e]
	if l == nil {
		return
	}
	l.probePending = false
	m.probes++
	m.met.Add("madgo_health_probes_total", nil, 1)
	if ok {
		if rtt > 0 {
			if l.rtt == 0 {
				l.rtt = rtt
			} else {
				l.rtt = l.rtt - vtime.Duration(m.cfg.Alpha*float64(l.rtt)) + vtime.Duration(m.cfg.Alpha*float64(rtt))
			}
		}
		m.probeOK(e, l, rtt, now)
		return
	}
	m.probeFails++
	m.met.Add("madgo_health_probe_failures_total", nil, 1)
	m.probeFail(e, l, now)
}

// Heartbeats scans the Up edges leaving from and schedules a probe on any
// that have been silent past the idle threshold. The forwarding layer calls
// it when a node transmits, so heartbeats are demand-driven and stop with
// the application (keeping the event queue drainable).
func (m *Monitor) Heartbeats(from string, now vtime.Time) {
	for _, e := range m.byFrom[from] {
		l := m.links[e]
		if l.state != Up || l.probePending || l.gaveUp {
			continue
		}
		if l.lastEvidence == 0 {
			// Never carried traffic: start the idle clock now instead of
			// probing everything at once on the first send.
			l.lastEvidence = now
			continue
		}
		if now.Sub(l.lastEvidence) >= m.cfg.HeartbeatIdle {
			m.fireProbe(e, l, 0)
		}
	}
}

// observe folds one outcome into the score and applies the score-driven
// transitions (the hard Dead path bypasses it via die).
func (m *Monitor) observe(e route.Edge, l *link, outcome float64, now vtime.Time) {
	l.score = (1-m.cfg.Alpha)*l.score + m.cfg.Alpha*outcome
	l.lastEvidence = now
	m.met.Set("madgo_health_link_score", obs.Labels{"link": e.String()}, l.score)
	switch l.state {
	case Up:
		if l.score < m.cfg.SuspectBelow {
			m.transition(e, l, Suspect, now)
			// Resolve the suspicion actively rather than waiting for more
			// traffic to wander by.
			m.fireProbe(e, l, 0)
		}
	case Suspect:
		if l.score < m.cfg.DeadBelow {
			m.die(e, l, now)
		} else if l.score > m.cfg.UpAbove {
			m.transition(e, l, Up, now)
		}
	}
}

// die moves an edge to Dead (from any live state), publishes the shrunken
// connectivity, and schedules the first probation probe with a delay that
// doubles on every repeated death.
func (m *Monitor) die(e route.Edge, l *link, now vtime.Time) {
	if l.state == Dead {
		return
	}
	if l.state == Probation {
		// Failed probation (hard evidence while excluded): back to Dead
		// without recounting the death.
		m.transition(e, l, Dead, now)
		return
	}
	l.deaths++
	l.score = 0
	l.okProbes = 0
	m.met.Set("madgo_health_link_score", obs.Labels{"link": e.String()}, 0)
	m.transition(e, l, Dead, now)
	m.publish(now)
	m.fireProbe(e, l, m.probeDelay(l))
}

// probeDelay is the flap-damped wait before a dead edge's next probe.
func (m *Monitor) probeDelay(l *link) vtime.Duration {
	d := m.cfg.ProbeAfter
	for i := 1; i < l.deaths && d < m.cfg.ProbeAfterMax; i++ {
		d *= 2
	}
	if d > m.cfg.ProbeAfterMax {
		d = m.cfg.ProbeAfterMax
	}
	return d
}

// probeOK handles a successful probe (or success-equivalent evidence on an
// excluded edge).
func (m *Monitor) probeOK(e route.Edge, l *link, rtt vtime.Duration, now vtime.Time) {
	l.probeFails = 0
	l.gaveUp = false
	l.lastEvidence = now
	switch l.state {
	case Dead:
		l.okProbes = 1
		m.transition(e, l, Probation, now)
		m.fireProbe(e, l, m.cfg.ProbationEvery)
	case Probation:
		l.okProbes++
		if l.okProbes >= m.cfg.ProbationSuccesses {
			// Re-admission: the genuinely new capability — the edge
			// returns to the routable graph under a fresh epoch.
			l.score = 1
			l.okProbes = 0
			m.readmissions++
			m.met.Add("madgo_health_readmissions_total", nil, 1)
			m.transition(e, l, Up, now)
			m.publish(now)
		} else {
			m.fireProbe(e, l, m.cfg.ProbationEvery)
		}
	case Suspect:
		m.observe(e, l, 1, now)
		if l.state == Suspect {
			// Not convinced yet; keep probing toward a verdict.
			m.fireProbe(e, l, m.cfg.ProbationEvery)
		}
	case Up:
		m.observe(e, l, 1, now)
	}
}

// probeFail handles a failed (timed-out) probe.
func (m *Monitor) probeFail(e route.Edge, l *link, now vtime.Time) {
	l.probeFails++
	l.okProbes = 0
	switch l.state {
	case Up, Suspect:
		// A lost probe is soft evidence, same as a lost data packet.
		m.observe(e, l, 0, now)
		if l.state == Suspect {
			m.fireProbe(e, l, m.cfg.ProbationEvery)
		}
	case Probation:
		m.transition(e, l, Dead, now)
	case Dead:
	}
	if l.state == Dead {
		if l.probeFails >= m.cfg.ProbeGiveUp {
			// Stop generating events for a link that is not coming back.
			l.gaveUp = true
			return
		}
		m.fireProbe(e, l, m.probeDelay(l))
	}
}

// firePending schedules a probe after d, marking the edge so overlapping
// triggers collapse into one outstanding probe.
func (m *Monitor) fireProbe(e route.Edge, l *link, d vtime.Duration) {
	if m.sink == nil || m.schedule == nil || l.probePending || l.gaveUp {
		return
	}
	l.probePending = true
	if d <= 0 {
		m.sink(e)
		return
	}
	m.schedule(d, func() {
		if l.probePending && !l.gaveUp {
			m.sink(e)
		}
	})
}

// transition records a state change and its metrics.
func (m *Monitor) transition(e route.Edge, l *link, to State, now vtime.Time) {
	from := l.state
	if from == to {
		return
	}
	l.state = to
	l.since = now
	m.log = append(m.log, Transition{At: now, Link: e, From: from, To: to, Epoch: m.mgr.Epoch()})
	m.met.Add("madgo_health_transitions_total", nil, 1)
	m.met.Add("madgo_health_transitions_total", obs.Labels{"to": to.String()}, 1)
	m.met.Set("madgo_health_link_state", obs.Labels{"link": e.String()}, float64(to))
}

// publish recomputes the routing exclusions from the link states and pushes
// them to the Manager under a new epoch.
func (m *Monitor) publish(now vtime.Time) {
	dead := make(map[route.Edge]bool)
	relays := make(map[string]bool)
	for _, e := range m.order {
		l := m.links[e]
		if l.state == Dead || l.state == Probation {
			dead[e] = true
			// A node with a dead incoming link must not relay: whether it
			// crashed or just that link died, routing *through* it risks a
			// black hole — but it stays a valid destination via other
			// links.
			relays[e.To] = true
		}
	}
	m.dead = dead
	ep := m.mgr.Publish(route.Constraints{Edges: dead, Relays: relays})
	if len(m.log) > 0 && m.log[len(m.log)-1].At == now {
		m.log[len(m.log)-1].Epoch = ep
	}
	m.met.Set("madgo_route_epoch", nil, float64(ep))
	m.met.Set("madgo_health_dead_links", nil, float64(len(dead)))
	if m.onEpoch != nil {
		m.onEpoch(ep, now)
	}
}
