package health

import (
	"testing"

	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/vtime"
)

// testRig drives a Monitor by hand: scheduled probes collect into a queue
// the test fires explicitly, so every timing decision is observable.
type testRig struct {
	mon   *Monitor
	now   vtime.Time
	timer []struct {
		at vtime.Time
		fn func()
	}
	probed []route.Edge // requests that reached the sink
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r := &testRig{}
	r.mon = NewMonitor(cfg, tp, nil, obs.New(),
		func(d vtime.Duration, fn func()) {
			r.timer = append(r.timer, struct {
				at vtime.Time
				fn func()
			}{r.now.Add(d), fn})
		},
		func() vtime.Time { return r.now })
	r.mon.SetProbeSink(func(e route.Edge) { r.probed = append(r.probed, e) })
	return r
}

// advance moves the clock and fires due timers in order.
func (r *testRig) advance(d vtime.Duration) {
	r.now = r.now.Add(d)
	for i := 0; i < len(r.timer); {
		if r.timer[i].at <= r.now {
			fn := r.timer[i].fn
			r.timer = append(r.timer[:i], r.timer[i+1:]...)
			fn()
		} else {
			i++
		}
	}
}

func (r *testRig) takeProbes() []route.Edge {
	p := r.probed
	r.probed = nil
	return p
}

var edgeAB = route.Edge{From: "a0", To: "gw", Network: "sci0"}

func stateOf(t *testing.T, m *Monitor, e route.Edge) State {
	t.Helper()
	for _, lh := range m.Snapshot() {
		if lh.Link == e {
			return lh.State
		}
	}
	t.Fatalf("edge %v not tracked", e)
	return 0
}

func TestHardDeathAndReadmission(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	ep0 := m.Epoch()

	// Exhausted budget: immediate Dead, epoch bump, edge excluded.
	m.ReportDead(edgeAB, r.now)
	if got := stateOf(t, m, edgeAB); got != Dead {
		t.Fatalf("state after ReportDead = %v", got)
	}
	if m.Epoch() != ep0+1 {
		t.Fatalf("epoch = %d, want %d", m.Epoch(), ep0+1)
	}
	if !m.Excluded(edgeAB) || !m.DeadEdges()[edgeAB] {
		t.Fatal("dead edge not excluded")
	}
	// The dead edge's head must no longer relay, but stays a destination.
	cons := m.Constraints()
	if !cons.Relays["gw"] || cons.Nodes["gw"] {
		t.Fatalf("constraints = %+v", cons)
	}

	// First probation probe fires after the damped delay.
	if len(r.takeProbes()) != 0 {
		t.Fatal("probe fired before ProbeAfter elapsed")
	}
	r.advance(m.cfg.ProbeAfter)
	if p := r.takeProbes(); len(p) != 1 || p[0] != edgeAB {
		t.Fatalf("probes = %v", p)
	}

	// Probe success → Probation (still excluded), then the configured run
	// of successes re-admits under a fresh epoch.
	m.ProbeResult(edgeAB, true, vtime.Millisecond, r.now)
	if got := stateOf(t, m, edgeAB); got != Probation {
		t.Fatalf("state after first probe ok = %v", got)
	}
	if !m.Excluded(edgeAB) {
		t.Fatal("probation edge must stay excluded")
	}
	epBefore := m.Epoch()
	for i := 1; i < m.cfg.ProbationSuccesses; i++ {
		r.advance(m.cfg.ProbationEvery)
		if p := r.takeProbes(); len(p) != 1 {
			t.Fatalf("probation round %d: probes = %v", i, p)
		}
		m.ProbeResult(edgeAB, true, vtime.Millisecond, r.now)
	}
	if got := stateOf(t, m, edgeAB); got != Up {
		t.Fatalf("state after probation = %v", got)
	}
	if m.Excluded(edgeAB) {
		t.Fatal("readmitted edge still excluded")
	}
	if m.Epoch() != epBefore+1 {
		t.Fatalf("readmission epoch = %d, want %d", m.Epoch(), epBefore+1)
	}
	if m.Readmissions() != 1 {
		t.Fatalf("readmissions = %d", m.Readmissions())
	}
}

func TestFailedProbationFallsBack(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	m.ReportDead(edgeAB, r.now)
	r.advance(m.cfg.ProbeAfter)
	r.takeProbes()
	m.ProbeResult(edgeAB, true, 0, r.now) // → Probation
	r.advance(m.cfg.ProbationEvery)
	r.takeProbes()
	m.ProbeResult(edgeAB, false, 0, r.now) // probation broken
	if got := stateOf(t, m, edgeAB); got != Dead {
		t.Fatalf("state after failed probation = %v", got)
	}
	if !m.Excluded(edgeAB) {
		t.Fatal("edge readmitted despite failed probation")
	}
}

func TestSoftEvidenceHysteresis(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	// Failures erode the score: Up → Suspect once below the threshold.
	for i := 0; stateOf(t, m, edgeAB) == Up && i < 20; i++ {
		m.ReportFailure(edgeAB, r.now)
	}
	if got := stateOf(t, m, edgeAB); got != Suspect {
		t.Fatalf("state after failures = %v", got)
	}
	// Suspect is still routable — no epoch change, no exclusion.
	if m.Excluded(edgeAB) || m.Epoch() != 1 {
		t.Fatalf("suspect edge excluded (epoch %d)", m.Epoch())
	}
	// Suspicion triggers an immediate resolving probe.
	if p := r.takeProbes(); len(p) != 1 {
		t.Fatalf("suspect probes = %v", p)
	}
	// Successes climb back over the hysteresis band to Up.
	for i := 0; stateOf(t, m, edgeAB) == Suspect && i < 20; i++ {
		m.ReportSuccess(edgeAB, vtime.Millisecond, r.now)
	}
	if got := stateOf(t, m, edgeAB); got != Up {
		t.Fatalf("state after recovery = %v", got)
	}
	// The round trip Up→Suspect→Up never touched the route table.
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", m.Epoch())
	}
}

func TestSoftDeathViaScore(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	for i := 0; stateOf(t, m, edgeAB) != Dead && i < 50; i++ {
		m.ReportFailure(edgeAB, r.now)
		// Suspect-state probes time out too.
		for _, e := range r.takeProbes() {
			m.ProbeResult(e, false, 0, r.now)
		}
	}
	if got := stateOf(t, m, edgeAB); got != Dead {
		t.Fatalf("state = %v, want Dead", got)
	}
	if m.Epoch() == 1 {
		t.Fatal("death did not publish a new epoch")
	}
}

func TestFlapDampingDoublesProbeDelay(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	kill := func() {
		m.ReportDead(edgeAB, r.now)
		r.advance(m.cfg.ProbeAfter / 2)
	}
	revive := func() {
		// Drain any due probe and answer everything successfully until Up.
		for i := 0; stateOf(t, m, edgeAB) != Up && i < 20; i++ {
			r.advance(m.cfg.ProbeAfterMax)
			for _, e := range r.takeProbes() {
				m.ProbeResult(e, true, 0, r.now)
			}
		}
		if got := stateOf(t, m, edgeAB); got != Up {
			t.Fatalf("revive stuck in %v", got)
		}
	}
	kill()
	if len(r.takeProbes()) != 0 {
		t.Fatal("first death: probe before ProbeAfter")
	}
	revive()
	kill() // second death: delay doubled, so still nothing at ProbeAfter/2 … or ProbeAfter
	r.advance(m.cfg.ProbeAfter / 2)
	if len(r.takeProbes()) != 0 {
		t.Fatal("second death: probe arrived before the doubled delay")
	}
	r.advance(m.cfg.ProbeAfter)
	if len(r.takeProbes()) != 1 {
		t.Fatal("second death: doubled-delay probe missing")
	}
}

func TestProbeGiveUpStopsScheduling(t *testing.T) {
	r := newRig(t, Config{ProbeGiveUp: 3})
	m := r.mon
	m.ReportDead(edgeAB, r.now)
	fails := 0
	for i := 0; i < 10; i++ {
		r.advance(m.cfg.ProbeAfterMax)
		ps := r.takeProbes()
		if len(ps) == 0 {
			break
		}
		m.ProbeResult(ps[0], false, 0, r.now)
		fails++
	}
	if fails != 3 {
		t.Fatalf("probes before give-up = %d, want 3", fails)
	}
	r.advance(10 * m.cfg.ProbeAfterMax)
	if p := r.takeProbes(); len(p) != 0 {
		t.Fatalf("abandoned edge still probed: %v", p)
	}
	// Fresh evidence of life re-arms the machinery.
	m.ReportSuccess(edgeAB, vtime.Millisecond, r.now)
	if got := stateOf(t, m, edgeAB); got != Probation {
		t.Fatalf("state after life evidence = %v", got)
	}
}

func TestHeartbeatsProbeIdleEdges(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	// First scan only arms the idle clocks.
	m.Heartbeats("a0", r.now)
	if p := r.takeProbes(); len(p) != 0 {
		t.Fatalf("first heartbeat scan probed %v", p)
	}
	// Before the idle threshold: still quiet.
	r.advance(m.cfg.HeartbeatIdle / 2)
	m.Heartbeats("a0", r.now)
	if p := r.takeProbes(); len(p) != 0 {
		t.Fatalf("early heartbeat probed %v", p)
	}
	// Past it: exactly the silent a0-edges get probes, nobody else's.
	r.advance(m.cfg.HeartbeatIdle)
	m.Heartbeats("a0", r.now)
	ps := r.takeProbes()
	if len(ps) != 1 || ps[0] != edgeAB {
		t.Fatalf("heartbeat probes = %v", ps)
	}
	// While the probe is outstanding no duplicate is scheduled.
	m.Heartbeats("a0", r.now)
	if p := r.takeProbes(); len(p) != 0 {
		t.Fatalf("duplicate heartbeat %v", p)
	}
	// Fresh traffic resets the idle clock instead.
	m.ProbeResult(edgeAB, true, vtime.Millisecond, r.now)
	m.ReportSuccess(edgeAB, vtime.Millisecond, r.now)
	m.Heartbeats("a0", r.now)
	if p := r.takeProbes(); len(p) != 0 {
		t.Fatalf("heartbeat despite fresh evidence: %v", p)
	}
}

func TestTransitionLogAndSnapshot(t *testing.T) {
	r := newRig(t, Config{})
	m := r.mon
	m.ReportDead(edgeAB, r.now)
	log := m.Transitions()
	if len(log) != 1 || log[0].Link != edgeAB || log[0].From != Up || log[0].To != Dead {
		t.Fatalf("log = %+v", log)
	}
	if log[0].Epoch != m.Epoch() {
		t.Fatalf("logged epoch %d != %d", log[0].Epoch, m.Epoch())
	}
	// Snapshot lists every directed edge of the topology: sci0 has
	// {a0,gw} → 2 directed, myri0 has {gw,b0} → 2 directed.
	if snap := m.Snapshot(); len(snap) != 4 {
		t.Fatalf("snapshot entries = %d, want 4", len(snap))
	}
	if m.LastTransition() != r.now {
		t.Fatalf("LastTransition = %v", m.LastTransition())
	}
}
