package health

import (
	"encoding/binary"
	"hash/crc32"

	"madgo/internal/vtime"
)

// Probe wire format — the payload of every heartbeat/probation packet the
// forwarding layer exchanges on mad.KindHealth. Fixed 24 bytes:
//
//	off size field
//	0   2    magic 0x4d48 ("MH", little-endian on the wire)
//	2   1    version (probeVersion)
//	3   1    kind: 1 request, 2 response
//	4   8    seq   — prober-chosen, echoed verbatim by the responder
//	12  8    t0    — prober's virtual send time (ns), echoed verbatim,
//	             so the RTT needs no responder clock
//	20  4    CRC32 (IEEE) over bytes [0,20)
//
// A responder flips kind to response and returns seq/t0 untouched; the
// prober matches responses to outstanding awaits by seq and derives the
// round-trip from its own clock minus t0.

const (
	// ProbeSize is the exact encoded length of a probe packet.
	ProbeSize = 24

	probeMagic   uint16 = 0x4d48
	probeVersion byte   = 1
)

// ProbeKind distinguishes requests from responses.
type ProbeKind byte

const (
	ProbeReq  ProbeKind = 1
	ProbeResp ProbeKind = 2
)

// Probe is one decoded heartbeat/probation packet.
type Probe struct {
	Kind ProbeKind
	Seq  uint64
	T0   vtime.Time
}

// EncodeProbe renders p into its canonical 24-byte wire form.
func EncodeProbe(p Probe) []byte {
	b := make([]byte, ProbeSize)
	binary.LittleEndian.PutUint16(b[0:], probeMagic)
	b[2] = probeVersion
	b[3] = byte(p.Kind)
	binary.LittleEndian.PutUint64(b[4:], p.Seq)
	binary.LittleEndian.PutUint64(b[12:], uint64(p.T0))
	binary.LittleEndian.PutUint32(b[20:], crc32.ChecksumIEEE(b[:20]))
	return b
}

// DecodeProbe parses a probe packet. ok=false covers every malformation:
// wrong length, magic, version or kind, and any checksum mismatch.
func DecodeProbe(b []byte) (Probe, bool) {
	if len(b) != ProbeSize {
		return Probe{}, false
	}
	if binary.LittleEndian.Uint16(b[0:]) != probeMagic || b[2] != probeVersion {
		return Probe{}, false
	}
	k := ProbeKind(b[3])
	if k != ProbeReq && k != ProbeResp {
		return Probe{}, false
	}
	if binary.LittleEndian.Uint32(b[20:]) != crc32.ChecksumIEEE(b[:20]) {
		return Probe{}, false
	}
	return Probe{
		Kind: k,
		Seq:  binary.LittleEndian.Uint64(b[4:]),
		T0:   vtime.Time(binary.LittleEndian.Uint64(b[12:])),
	}, true
}

// Response builds the reply to a request: same seq and t0, kind flipped.
func (p Probe) Response() Probe {
	return Probe{Kind: ProbeResp, Seq: p.Seq, T0: p.T0}
}
