package health

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"madgo/internal/vtime"
)

func TestProbeRoundTrip(t *testing.T) {
	req := Probe{Kind: ProbeReq, Seq: 42, T0: vtime.Time(7 * vtime.Millisecond)}
	b := EncodeProbe(req)
	if len(b) != ProbeSize {
		t.Fatalf("encoded length = %d", len(b))
	}
	got, ok := DecodeProbe(b)
	if !ok || got != req {
		t.Fatalf("decode = %+v, %v", got, ok)
	}
	resp := req.Response()
	if resp.Kind != ProbeResp || resp.Seq != req.Seq || resp.T0 != req.T0 {
		t.Fatalf("response = %+v", resp)
	}
	if _, ok := DecodeProbe(EncodeProbe(resp)); !ok {
		t.Fatal("response does not decode")
	}
}

func TestProbeRejectsCorruption(t *testing.T) {
	b := EncodeProbe(Probe{Kind: ProbeReq, Seq: 1, T0: 1})
	for i := range b {
		b[i] ^= 0xFF
		if _, ok := DecodeProbe(b); ok {
			t.Fatalf("probe decodes with byte %d flipped", i)
		}
		b[i] ^= 0xFF
	}
	if _, ok := DecodeProbe(b[:ProbeSize-1]); ok {
		t.Fatal("short probe accepted")
	}
	if _, ok := DecodeProbe(append(b, 0)); ok {
		t.Fatal("long probe accepted")
	}
	if _, ok := DecodeProbe(nil); ok {
		t.Fatal("nil probe accepted")
	}
}

// FuzzHealthProbe checks the probe codec's wire contract: decode never
// panics, accepts exactly the encoder's output, and every accepted input
// re-encodes byte for byte.
func FuzzHealthProbe(f *testing.F) {
	for _, seed := range healthProbeSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := DecodeProbe(data)
		if !ok {
			return
		}
		if p.Kind != ProbeReq && p.Kind != ProbeResp {
			t.Fatalf("accepted probe with illegal kind %d", p.Kind)
		}
		if re := EncodeProbe(p); !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
		// The CRC covers every header byte: any single-byte flip must be
		// rejected.
		for i := range data {
			data[i] ^= 0xFF
			if _, stillOK := DecodeProbe(data); stillOK {
				t.Fatalf("probe still decodes with byte %d flipped", i)
			}
			data[i] ^= 0xFF
		}
	})
}

// healthProbeSeeds feeds both f.Add and the checked-in corpus under
// testdata/fuzz, mirroring the convention of internal/fwd.
func healthProbeSeeds() [][]byte {
	return [][]byte{
		EncodeProbe(Probe{Kind: ProbeReq, Seq: 1, T0: 0}),
		EncodeProbe(Probe{Kind: ProbeResp, Seq: ^uint64(0), T0: vtime.Time(1 << 40)}),
		EncodeProbe(Probe{Kind: ProbeReq, Seq: 0, T0: vtime.Time(5 * vtime.Millisecond)}),
		make([]byte, ProbeSize), // zero magic → rejected
		make([]byte, ProbeSize-1),
		make([]byte, ProbeSize+1),
		{},
	}
}

// TestRegenFuzzCorpus rewrites the seed corpus under testdata/fuzz from the
// live encoder. Run with MADGO_REGEN_CORPUS=1 after changing the wire
// format; a bare `go test` only verifies the files are present and current.
func TestRegenFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzHealthProbe")
	regen := os.Getenv("MADGO_REGEN_CORPUS") != ""
	if regen {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range healthProbeSeeds() {
		path := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if regen {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing seed corpus entry (MADGO_REGEN_CORPUS=1 regenerates): %v", err)
		}
		if string(got) != want {
			t.Errorf("%s is stale; regenerate with MADGO_REGEN_CORPUS=1", path)
		}
	}
}
