// Package hw is the hardware catalogue of the reproduction: PCI buses with
// the arbitration behaviour measured in the paper, network wires, NIC
// parameter sets for the four modelled interconnects, and host CPU costs.
//
// Everything here is a *model* of the paper's testbed (dual Pentium II 450
// nodes, 33 MHz/32-bit PCI, Myrinet LANai 4.3 + BIP, Dolphin SCI D310 +
// SISCI, Fast Ethernet). The calibration anchors and their provenance are
// documented in EXPERIMENTS.md; the parameters live in this package so every
// experiment shares one source of truth.
package hw

import (
	"fmt"
	"sort"

	"madgo/internal/fault"
	"madgo/internal/flight"
	"madgo/internal/fluid"
	"madgo/internal/obs"
	"madgo/internal/vtime"
)

// MB is the decimal megabyte the paper uses for bandwidth figures.
const MB = 1e6

// PCIParams describes a host's PCI bus.
type PCIParams struct {
	// AggregateCapacity is the practical total throughput of concurrent
	// transactions in bytes/s. The 33 MHz/32-bit bus signals 132 MB/s;
	// after arbitration, turnaround and retry overheads the paper's
	// full-duplex measurements point to ≈90 MB/s of useful payload.
	AggregateCapacity float64
	// PIOUnderDMA is the demand multiplier applied to PIO transactions
	// while at least one DMA transaction is active: the paper measures
	// that card-initiated DMA outranks processor PIO and halves its
	// progress (§3.4.1), hence 0.5.
	PIOUnderDMA float64
}

// DefaultPCI returns the bus parameters of the paper's nodes.
func DefaultPCI() PCIParams {
	return PCIParams{AggregateCapacity: 90 * MB, PIOUnderDMA: 0.5}
}

// Policy converts the parameters into a fluid arbitration policy.
func (p PCIParams) Policy() fluid.AdjustFunc {
	factor := p.PIOUnderDMA
	return func(self fluid.Presence, active []fluid.Presence) float64 {
		if self.Class != fluid.ClassPIO {
			return 1
		}
		for _, a := range active {
			if a.Class == fluid.ClassDMA {
				return factor
			}
		}
		return 1
	}
}

// CPUParams holds the host software costs.
type CPUParams struct {
	// MemcpyRate is the sustained memory-copy bandwidth. A 450 MHz
	// Pentium II copies at roughly 160 MB/s, which is why the paper
	// insists a copy "can take as much time as the reception of a
	// message".
	MemcpyRate float64
	// SwapOverhead is the software cost of one buffer switch in the
	// gateway pipeline; the paper's §3.3.1 accounting puts it at ≈40 µs.
	SwapOverhead vtime.Duration
	// PollCost is the cost of probing one channel for an incoming
	// message.
	PollCost vtime.Duration
	// PackCost is the fixed software cost of one pack/unpack call
	// (flag decoding, iovec bookkeeping).
	PackCost vtime.Duration
}

// DefaultCPU returns the host software costs of the paper's nodes.
func DefaultCPU() CPUParams {
	return CPUParams{
		MemcpyRate:   160 * MB,
		SwapOverhead: 40 * vtime.Microsecond,
		PollCost:     2 * vtime.Microsecond,
		PackCost:     300 * vtime.Nanosecond,
	}
}

// Platform ties a simulation to a fluid engine and owns hosts and networks.
type Platform struct {
	Sim    *vtime.Sim
	Engine *fluid.Engine
	// Faults is the armed fault injector, nil when fault injection is
	// off. The link engine consults it on every reliable transmission.
	Faults *fault.Injector
	// Metrics is the platform-wide metrics registry; nil (recording
	// nothing) unless SetMetrics armed one. Every layer with a path to the
	// platform records through it.
	Metrics *obs.Registry
	// Flight is the always-on flight recorder; nil (recording nothing)
	// unless SetFlight armed one. Instrumentation looks its per-node ring
	// up lazily, so the recorder may be armed before or after the
	// forwarding layer is built.
	Flight   *flight.Recorder
	hosts    map[string]*Host
	networks []*Network
}

// NewPlatform creates a platform on the given simulation.
func NewPlatform(sim *vtime.Sim) *Platform {
	return &Platform{Sim: sim, Engine: fluid.NewEngine(sim), hosts: make(map[string]*Host)}
}

// SetMetrics arms a metrics registry on the platform and everything hanging
// off it: the fluid engine's flow accounting, the fault injector's verdict
// counters (when one is armed), and the registry's clock.
func (pl *Platform) SetMetrics(m *obs.Registry) {
	pl.Metrics = m
	pl.Engine.Metrics = m
	m.SetClock(pl.Sim.Now)
	if pl.Faults != nil {
		pl.Faults.SetMetrics(m)
	}
}

// SetFlight arms a flight recorder on the platform and gives it the
// simulation clock for stamping dumps.
func (pl *Platform) SetFlight(rec *flight.Recorder) {
	pl.Flight = rec
	rec.SetClock(pl.Sim.Now)
}

// FlightRing returns the flight-recorder ring of the named node, or nil
// when no recorder is armed. Nil rings record nothing, so callers cache
// the result only once it is non-nil.
func (pl *Platform) FlightRing(node string) *flight.Ring {
	return pl.Flight.Ring(node)
}

// ArmFaults installs a fault injector on the platform and schedules its
// flap/crash windows: when a window opens, every in-flight fluid flow
// crossing the affected wires (flap) or the crashed host's bus (crash) is
// cancelled — the bytes already committed to a dead medium are lost, not
// delivered late — and a window-wide span is recorded to the injector's
// tracer. Probabilistic drop/corruption needs no arming; the link engine
// queries the injector per packet.
func (pl *Platform) ArmFaults(inj *fault.Injector) {
	if pl.Faults != nil {
		panic("hw: ArmFaults called twice")
	}
	pl.Faults = inj
	if pl.Metrics != nil {
		inj.SetMetrics(pl.Metrics)
	}
	tr := inj.Tracer()
	for _, w := range inj.Windows() {
		w := w
		end := w.At.Add(w.For)
		if w.For == 0 {
			end = w.At // never restarts; draw a point event
		}
		pl.Sim.At(w.At, func() {
			switch w.Kind {
			case fault.Flap:
				tr.Record("fault:"+w.Net, "flap", 0, w.At, end)
				for _, n := range pl.networks {
					if n.Name == w.Net {
						for _, wire := range n.sortedWires() {
							pl.Engine.CancelOn(wire)
						}
					}
				}
			case fault.Crash:
				tr.Record("fault:"+w.Node, "crash", 0, w.At, end)
				if h, ok := pl.hosts[w.Node]; ok {
					pl.Engine.CancelOn(h.Bus)
				}
			}
		})
	}
}

// Host is one machine: a PCI bus plus CPU cost parameters and copy
// accounting.
type Host struct {
	Name string
	Bus  *fluid.Resource
	CPU  CPUParams

	platform *Platform
	copies   int64
	copied   int64 // bytes
}

// NewHost registers a machine. Host names must be unique.
func (pl *Platform) NewHost(name string, cpu CPUParams, pci PCIParams) *Host {
	if _, dup := pl.hosts[name]; dup {
		panic("hw: duplicate host " + name)
	}
	h := &Host{
		Name:     name,
		Bus:      pl.Engine.NewResource("pci:"+name, pci.AggregateCapacity, pci.Policy()),
		CPU:      cpu,
		platform: pl,
	}
	pl.hosts[name] = h
	return h
}

// Host looks up a registered machine.
func (pl *Platform) Host(name string) *Host {
	h, ok := pl.hosts[name]
	if !ok {
		panic("hw: unknown host " + name)
	}
	return h
}

// Memcpy charges the calling process for a CPU copy of n bytes and records
// it in the host's copy accounting. It is the only way library code is
// allowed to copy payload: the counters are what the zero-copy tests assert
// on.
func (h *Host) Memcpy(p *vtime.Proc, n int) {
	if n < 0 {
		panic("hw: negative memcpy")
	}
	h.copies++
	h.copied += int64(n)
	h.platform.Metrics.Add("madgo_memcpy_total", obs.Labels{"node": h.Name}, 1)
	h.platform.Metrics.Add("madgo_memcpy_bytes_total", obs.Labels{"node": h.Name}, float64(n))
	if n > 0 {
		p.Sleep(vtime.DurationOfBytes(int64(n), h.CPU.MemcpyRate))
	}
}

// Copies returns the number of CPU copies performed on this host.
func (h *Host) Copies() int64 { return h.copies }

// BytesCopied returns the total bytes CPU-copied on this host.
func (h *Host) BytesCopied() int64 { return h.copied }

// ResetCopyStats zeroes the copy counters (used between benchmark phases).
func (h *Host) ResetCopyStats() { h.copies, h.copied = 0, 0 }

// NICParams models one interconnect technology as seen through its
// low-level API (BIP, SISCI, kernel sockets, SBP).
type NICParams struct {
	Protocol string

	// WireRate and WireLatency describe the cable/switch path.
	WireRate    float64
	WireLatency vtime.Duration

	// SendEngineRate is the rate at which the sending side can push
	// payload across its PCI bus (DMA engine or PIO loop); SendBusClass
	// says which kind of PCI transaction that is. RecvEngineRate and the
	// receive class describe the landing side (always card-initiated DMA
	// on our four networks).
	SendEngineRate float64
	SendBusClass   fluid.Class
	RecvEngineRate float64
	RecvBusClass   fluid.Class

	// SendOverhead/RecvOverhead are the per-message host software costs
	// of the low-level API (descriptor posting, completion handling).
	SendOverhead vtime.Duration
	RecvOverhead vtime.Duration

	// RendezvousThreshold, when nonzero, makes messages strictly larger
	// than the threshold pay RendezvousCost (the BIP long-message
	// request/ack handshake).
	RendezvousThreshold int
	RendezvousCost      vtime.Duration

	// WriteCombining: transfers smaller than WCChunk bytes cannot be
	// write-combined and fall back to SmallWriteRate (SCI PIO).
	WCChunk        int
	SmallWriteRate float64

	// StaticBuffers marks protocols (SBP) that can only transmit from
	// driver-allocated buffers; StaticBufSize is their slot size.
	StaticBuffers bool
	StaticBufSize int

	// EagerCredits is the flow-control window of the eager path: how
	// many transmissions may be in flight or unconsumed at the receiver
	// before the sender blocks (the SISCI ring slots / BIP credits).
	// Zero means unlimited (test drivers). Rendezvous transfers gate
	// themselves and do not consume credits.
	EagerCredits int

	// PostGateThreshold, when nonzero, makes eager transmissions
	// strictly larger than the threshold wait until the receiver has
	// posted a destination before streaming — the SISCI pattern of
	// writing large payloads into an exposed remote buffer rather than
	// the bounded message ring. Unlike a rendezvous there is no
	// handshake cost: the sender polls a remote flag.
	PostGateThreshold int
}

// EffectiveSendRate returns the send-engine rate for a transfer of n bytes,
// accounting for write combining.
func (n NICParams) EffectiveSendRate(bytes int) float64 {
	if n.WCChunk > 0 && bytes < n.WCChunk && n.SmallWriteRate > 0 {
		return n.SmallWriteRate
	}
	return n.SendEngineRate
}

// Myrinet returns the LANai 4.3 + BIP model.
//
// Anchors: BIP latency ≈13 µs; asymptotic one-way bandwidth ≈47 MB/s
// (32-bit PCI DMA limited, the paper's "maximum one-way bandwidth one can
// get over a 32 bit PCI bus in practice" is just above 40); the long-message
// rendezvous makes SCI win below ≈16 KB, the crossover the paper uses to
// pick the packet size.
func Myrinet() NICParams {
	return NICParams{
		Protocol:            "myrinet",
		WireRate:            160 * MB, // 1.28 Gb/s LAN links
		WireLatency:         1500 * vtime.Nanosecond,
		SendEngineRate:      47 * MB,
		SendBusClass:        fluid.ClassDMA,
		RecvEngineRate:      47 * MB,
		RecvBusClass:        fluid.ClassDMA,
		SendOverhead:        6 * vtime.Microsecond,
		RecvOverhead:        5 * vtime.Microsecond,
		RendezvousThreshold: 4096,
		RendezvousCost:      17 * vtime.Microsecond,
		EagerCredits:        2,
	}
}

// SCI returns the Dolphin D310 + SISCI model.
//
// Anchors: SISCI latency ≈4 µs; PIO send with write combining sustains
// ≈44 MB/s; sub-chunk writes collapse to ≈12 MB/s; remote writes land on
// the receiving bus as card-initiated DMA.
func SCI() NICParams {
	return NICParams{
		Protocol:          "sci",
		WireRate:          85 * MB,
		WireLatency:       1 * vtime.Microsecond,
		SendEngineRate:    44 * MB,
		SendBusClass:      fluid.ClassPIO,
		RecvEngineRate:    44 * MB,
		RecvBusClass:      fluid.ClassDMA,
		SendOverhead:      2 * vtime.Microsecond,
		RecvOverhead:      1 * vtime.Microsecond,
		WCChunk:           128,
		SmallWriteRate:    12 * MB,
		EagerCredits:      1,
		PostGateThreshold: 4096,
	}
}

// SCIDMA returns the SCI model with the board's DMA engine driving sends
// instead of processor PIO — the workaround the paper's §3.4.1 proposes for
// the gateway bus conflict ("using the SCI DMA engine instead of PIO
// operations to send buffers over SCI").
//
// The D310's DMA engine is slower than write-combined PIO (≈35 vs 44 MB/s)
// and pays a descriptor-setup cost per transfer, which is why PIO is the
// default; but DMA transactions are not demoted under concurrent Myrinet
// DMA, so a gateway's Myrinet→SCI pipeline keeps its send rate.
func SCIDMA() NICParams {
	p := SCI()
	p.SendEngineRate = 35 * MB
	p.SendBusClass = fluid.ClassDMA
	p.SendOverhead = 8 * vtime.Microsecond // DMA descriptor setup
	p.WCChunk = 0                          // write combining is a PIO concept
	p.SmallWriteRate = 0
	return p
}

// FastEthernet returns the 100 Mb/s TCP model used for the control/ack
// path.
func FastEthernet() NICParams {
	return NICParams{
		Protocol:       "ethernet",
		WireRate:       12.5 * MB,
		WireLatency:    5 * vtime.Microsecond,
		SendEngineRate: 11.5 * MB,
		SendBusClass:   fluid.ClassDMA,
		RecvEngineRate: 11.5 * MB,
		RecvBusClass:   fluid.ClassDMA,
		SendOverhead:   25 * vtime.Microsecond,
		RecvOverhead:   30 * vtime.Microsecond,
		EagerCredits:   8,
	}
}

// SBP returns the static-buffer kernel protocol model of Russell & Hatcher
// that the paper cites as the network class requiring driver-owned send
// buffers (§2.3).
func SBP() NICParams {
	return NICParams{
		Protocol:       "sbp",
		WireRate:       33 * MB,
		WireLatency:    3 * vtime.Microsecond,
		SendEngineRate: 30 * MB,
		SendBusClass:   fluid.ClassDMA,
		RecvEngineRate: 30 * MB,
		RecvBusClass:   fluid.ClassDMA,
		SendOverhead:   8 * vtime.Microsecond,
		RecvOverhead:   8 * vtime.Microsecond,
		StaticBuffers:  true,
		StaticBufSize:  32 * 1024,
		EagerCredits:   2,
	}
}

// ParamsFor returns the NIC model for a protocol name.
func ParamsFor(protocol string) NICParams {
	switch protocol {
	case "myrinet":
		return Myrinet()
	case "sci":
		return SCI()
	case "ethernet":
		return FastEthernet()
	case "sbp":
		return SBP()
	default:
		panic(fmt.Sprintf("hw: unknown protocol %q", protocol))
	}
}

// Network is one physical interconnect instance: a NIC model plus one wire
// resource per directed host pair (the switched-fabric assumption: distinct
// pairs do not contend on the cable; they still contend on the PCI buses).
type Network struct {
	Name     string
	NIC      NICParams
	platform *Platform
	wires    map[[2]string]*fluid.Resource
}

// NewNetwork creates a network instance with the given NIC model.
func (pl *Platform) NewNetwork(name string, nic NICParams) *Network {
	n := &Network{Name: name, NIC: nic, platform: pl, wires: make(map[[2]string]*fluid.Resource)}
	pl.networks = append(pl.networks, n)
	return n
}

// sortedWires returns the network's wire resources in deterministic
// (from, to) order, for fault-window flow cancellation.
func (n *Network) sortedWires() []*fluid.Resource {
	keys := make([][2]string, 0, len(n.wires))
	for k := range n.wires {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*fluid.Resource, len(keys))
	for i, k := range keys {
		out[i] = n.wires[k]
	}
	return out
}

// Wire returns the cable resource for the directed pair (from, to),
// creating it on first use.
func (n *Network) Wire(from, to string) *fluid.Resource {
	key := [2]string{from, to}
	if w, ok := n.wires[key]; ok {
		return w
	}
	w := n.platform.Engine.NewResource(fmt.Sprintf("wire:%s:%s->%s", n.Name, from, to), n.NIC.WireRate, nil)
	n.wires[key] = w
	return w
}
