package hw

import (
	"testing"

	"madgo/internal/fluid"
	"madgo/internal/vtime"
)

func TestNegativeMemcpyPanics(t *testing.T) {
	pl := NewPlatform(vtime.New())
	h := pl.NewHost("x", DefaultCPU(), DefaultPCI())
	pl.Sim.Spawn("p", func(p *vtime.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		h.Memcpy(p, -1)
	})
	if err := pl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteMemcpyIsFreeButCounted(t *testing.T) {
	pl := NewPlatform(vtime.New())
	h := pl.NewHost("x", DefaultCPU(), DefaultPCI())
	pl.Sim.Spawn("p", func(p *vtime.Proc) {
		t0 := p.Now()
		h.Memcpy(p, 0)
		if p.Now() != t0 {
			t.Error("zero-byte memcpy took time")
		}
	})
	if err := pl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Copies() != 1 || h.BytesCopied() != 0 {
		t.Errorf("counters = %d/%d", h.Copies(), h.BytesCopied())
	}
}

func TestSCIDMAModel(t *testing.T) {
	pio, dma := SCI(), SCIDMA()
	if dma.SendBusClass != fluid.ClassDMA {
		t.Error("DMA mode must present DMA transactions")
	}
	if dma.SendEngineRate >= pio.SendEngineRate {
		t.Error("the D310 DMA engine is slower than write-combined PIO")
	}
	if dma.SendOverhead <= pio.SendOverhead {
		t.Error("DMA descriptor setup costs more than a PIO store")
	}
	if dma.WCChunk != 0 || dma.SmallWriteRate != 0 {
		t.Error("write combining does not apply to the DMA engine")
	}
	// Receive side is unchanged: remote writes still land as DMA.
	if dma.RecvBusClass != pio.RecvBusClass || dma.RecvEngineRate != pio.RecvEngineRate {
		t.Error("DMA mode must not alter the receive path")
	}
}

func TestPCIPolicyLeavesDMAAlone(t *testing.T) {
	// Two concurrent DMA flows share fairly — the policy demotes only
	// PIO (fig6's full-duplex case is capacity-, not priority-, bound).
	sim := vtime.New()
	pl := NewPlatform(sim)
	h := pl.NewHost("gw", DefaultCPU(), DefaultPCI())
	var d1, d2 vtime.Duration
	sim.Spawn("a", func(p *vtime.Proc) {
		d1 = pl.Engine.Transfer(p, fluid.Spec{
			Name: "in", Demand: 45 * MB, Bytes: 45e6, Route: fluid.Path(fluid.ClassDMA, h.Bus)})
	})
	sim.Spawn("b", func(p *vtime.Proc) {
		d2 = pl.Engine.Transfer(p, fluid.Spec{
			Name: "out", Demand: 45 * MB, Bytes: 45e6, Route: fluid.Path(fluid.ClassDMA, h.Bus)})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 90 MB/s aggregate, two 45 MB/s demands: both finish in ≈1 s.
	for _, d := range []vtime.Duration{d1, d2} {
		if s := d.Seconds(); s < 0.99 || s > 1.05 {
			t.Errorf("DMA flow took %v, want ≈1s", d)
		}
	}
}

func TestWriteCombiningBoundary(t *testing.T) {
	sci := SCI()
	if sci.EffectiveSendRate(sci.WCChunk-1) != sci.SmallWriteRate {
		t.Error("sub-chunk writes must use the slow rate")
	}
	if sci.EffectiveSendRate(sci.WCChunk) != sci.SendEngineRate {
		t.Error("chunk-sized writes must combine")
	}
}
