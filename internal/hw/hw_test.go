package hw

import (
	"testing"

	"madgo/internal/fluid"
	"madgo/internal/vtime"
)

func TestHostRegistry(t *testing.T) {
	pl := NewPlatform(vtime.New())
	h := pl.NewHost("n0", DefaultCPU(), DefaultPCI())
	if pl.Host("n0") != h {
		t.Fatal("lookup returned different host")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate host")
			}
		}()
		pl.NewHost("n0", DefaultCPU(), DefaultPCI())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on unknown host")
			}
		}()
		pl.Host("nope")
	}()
}

func TestMemcpyChargesTimeAndCounts(t *testing.T) {
	sim := vtime.New()
	pl := NewPlatform(sim)
	h := pl.NewHost("n0", DefaultCPU(), DefaultPCI())
	var took vtime.Duration
	sim.Spawn("copier", func(p *vtime.Proc) {
		t0 := p.Now()
		h.Memcpy(p, 160_000) // 160 kB at 160 MB/s = 1 ms
		took = vtime.Since(p.Now(), t0)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if took != vtime.Millisecond {
		t.Errorf("memcpy took %v, want 1ms", took)
	}
	if h.Copies() != 1 || h.BytesCopied() != 160_000 {
		t.Errorf("counters = %d copies / %d bytes", h.Copies(), h.BytesCopied())
	}
	h.ResetCopyStats()
	if h.Copies() != 0 || h.BytesCopied() != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestPCIPolicyHalvesPIOUnderDMA(t *testing.T) {
	sim := vtime.New()
	pl := NewPlatform(sim)
	h := pl.NewHost("gw", DefaultCPU(), DefaultPCI())
	var alone, under vtime.Duration
	sim.Spawn("m", func(p *vtime.Proc) {
		alone = pl.Engine.Transfer(p, fluid.Spec{
			Name: "pio-alone", Demand: 44 * MB, Bytes: 44e6,
			Route: fluid.Path(fluid.ClassPIO, h.Bus),
		})
		pl.Engine.Start(fluid.Spec{
			Name: "dma", Demand: 40 * MB, Bytes: 400e6,
			Route: fluid.Path(fluid.ClassDMA, h.Bus),
		}, nil)
		under = pl.Engine.Transfer(p, fluid.Spec{
			Name: "pio-under", Demand: 44 * MB, Bytes: 44e6,
			Route: fluid.Path(fluid.ClassPIO, h.Bus),
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if alone.Seconds() < 0.99 || alone.Seconds() > 1.01 {
		t.Errorf("alone = %v, want ≈1s", alone)
	}
	if under.Seconds() < 1.99 || under.Seconds() > 2.01 {
		t.Errorf("under DMA = %v, want ≈2s (the paper's factor two)", under)
	}
}

func TestWireIsPerDirectedPair(t *testing.T) {
	pl := NewPlatform(vtime.New())
	n := pl.NewNetwork("myri0", Myrinet())
	ab := n.Wire("a", "b")
	if n.Wire("a", "b") != ab {
		t.Error("wire not cached")
	}
	if n.Wire("b", "a") == ab {
		t.Error("directions must not share a wire")
	}
	if ab.Capacity() != Myrinet().WireRate {
		t.Errorf("capacity = %v", ab.Capacity())
	}
}

func TestEffectiveSendRateWriteCombining(t *testing.T) {
	sci := SCI()
	if r := sci.EffectiveSendRate(64); r != sci.SmallWriteRate {
		t.Errorf("64B rate = %v, want small-write rate", r)
	}
	if r := sci.EffectiveSendRate(4096); r != sci.SendEngineRate {
		t.Errorf("4KB rate = %v, want engine rate", r)
	}
	myri := Myrinet()
	if r := myri.EffectiveSendRate(64); r != myri.SendEngineRate {
		t.Errorf("myrinet has no WC floor, got %v", r)
	}
}

func TestParamsFor(t *testing.T) {
	for _, proto := range []string{"myrinet", "sci", "ethernet", "sbp"} {
		if got := ParamsFor(proto).Protocol; got != proto {
			t.Errorf("ParamsFor(%q).Protocol = %q", proto, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown protocol")
		}
	}()
	ParamsFor("atm")
}

func TestModelAnchors(t *testing.T) {
	// Guard the calibration the experiments depend on; EXPERIMENTS.md
	// documents these choices.
	if m := Myrinet(); m.SendBusClass != fluid.ClassDMA || m.RendezvousThreshold == 0 {
		t.Error("myrinet must be DMA with a rendezvous threshold")
	}
	if s := SCI(); s.SendBusClass != fluid.ClassPIO || s.RecvBusClass != fluid.ClassDMA {
		t.Error("sci must send PIO and land as DMA")
	}
	if !SBP().StaticBuffers {
		t.Error("sbp must be a static-buffer protocol")
	}
	if p := DefaultPCI(); p.PIOUnderDMA != 0.5 {
		t.Error("paper's measured factor is one half")
	}
	if c := DefaultCPU(); c.SwapOverhead != 40*vtime.Microsecond {
		t.Error("paper's buffer-switch overhead is ≈40µs")
	}
}
