// Package integration runs cross-package scenario tests: whole
// clusters-of-clusters under concurrent traffic, random topologies, and
// determinism checks. Everything goes through the public facade, so these
// tests double as executable documentation of the intended usage.
package integration_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	madeleine "madgo"
)

func pattern(n int, seed int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i*31 + seed)
	}
	return d
}

// TestAllPairsTraffic sends a message between every ordered pair of the
// paper testbed simultaneously and checks byte-exact delivery plus gateway
// accounting.
func TestAllPairsTraffic(t *testing.T) {
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithRouteNetworks("sci0", "myri0"))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []string{"a0", "a1", "a2", "a3", "gw", "b0", "b1", "b2", "b3"}
	type pair struct{ src, dst string }
	var pairs []pair
	for _, s := range nodes {
		for _, d := range nodes {
			if s != d {
				pairs = append(pairs, pair{s, d})
			}
		}
	}
	// One receiver process per node, draining the right number of
	// messages; senders tag messages so receivers can verify any order.
	inbound := map[string]int{}
	for _, pr := range pairs {
		inbound[pr.dst]++
	}
	crossCluster := 0
	for i, pr := range pairs {
		i, pr := i, pr
		size := 2000 + 137*i
		sys.Spawn(fmt.Sprintf("send:%s->%s", pr.src, pr.dst), func(p *madeleine.Proc) {
			px := sys.At(pr.src).BeginPacking(p, pr.dst)
			tag := []byte{byte(i), byte(size), byte(size >> 8)}
			px.Pack(p, tag, madeleine.SendCheaper, madeleine.ReceiveExpress)
			px.Pack(p, pattern(size, i), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		})
	}
	sizeOf := func(i int) int { return 2000 + 137*i }
	for node, count := range inbound {
		node, count := node, count
		sys.Spawn("recv:"+node, func(p *madeleine.Proc) {
			for k := 0; k < count; k++ {
				u := sys.At(node).BeginUnpacking(p)
				tag := make([]byte, 3)
				u.Unpack(p, tag, madeleine.SendCheaper, madeleine.ReceiveExpress)
				i := int(tag[0])
				n := int(tag[1]) | int(tag[2])<<8
				if n != sizeOf(i)&0xFFFF {
					t.Errorf("%s: tag/size mismatch (i=%d n=%d)", node, i, n)
				}
				body := make([]byte, sizeOf(i))
				u.Unpack(p, body, madeleine.SendCheaper, madeleine.ReceiveCheaper)
				u.EndUnpacking(p)
				if !bytes.Equal(body, pattern(sizeOf(i), i)) {
					t.Errorf("%s: message %d corrupted", node, i)
				}
			}
		})
	}
	for _, pr := range pairs {
		onSCI := func(n string) bool { return strings.HasPrefix(n, "a") || n == "gw" }
		onMyri := func(n string) bool { return strings.HasPrefix(n, "b") || n == "gw" }
		direct := (onSCI(pr.src) && onSCI(pr.dst)) || (onMyri(pr.src) && onMyri(pr.dst))
		if !direct {
			crossCluster++
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	gs, _ := sys.GatewayStats("gw")
	if gs.Messages != int64(crossCluster) {
		t.Errorf("gateway relayed %d messages, want %d cross-cluster pairs", gs.Messages, crossCluster)
	}
}

// TestPerPairOrderingUnderLoad floods one forwarded pair with many
// messages from two independent sender processes on different nodes and
// checks per-sender FIFO order at the receiver.
func TestPerPairOrderingUnderLoad(t *testing.T) {
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithRouteNetworks("sci0", "myri0"), madeleine.WithMTU(8*1024))
	if err != nil {
		t.Fatal(err)
	}
	const perSender = 12
	for _, src := range []string{"a0", "a1"} {
		src := src
		sys.Spawn("flood:"+src, func(p *madeleine.Proc) {
			for k := 0; k < perSender; k++ {
				px := sys.At(src).BeginPacking(p, "b0")
				px.Pack(p, []byte(src), madeleine.SendCheaper, madeleine.ReceiveExpress)
				px.Pack(p, []byte{byte(k)}, madeleine.SendCheaper, madeleine.ReceiveExpress)
				px.Pack(p, pattern(9000+k, k), madeleine.SendCheaper, madeleine.ReceiveCheaper)
				px.EndPacking(p)
			}
		})
	}
	seen := map[string]int{}
	sys.Spawn("drain:b0", func(p *madeleine.Proc) {
		for k := 0; k < 2*perSender; k++ {
			u := sys.At("b0").BeginUnpacking(p)
			who := make([]byte, 2)
			u.Unpack(p, who, madeleine.SendCheaper, madeleine.ReceiveExpress)
			seq := make([]byte, 1)
			u.Unpack(p, seq, madeleine.SendCheaper, madeleine.ReceiveExpress)
			body := make([]byte, 9000+int(seq[0]))
			u.Unpack(p, body, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
			src := string(who)
			if int(seq[0]) != seen[src] {
				t.Errorf("sender %s: got seq %d, want %d (per-pair FIFO broken)", src, seq[0], seen[src])
			}
			seen[src]++
			if !bytes.Equal(body, pattern(9000+int(seq[0]), int(seq[0]))) {
				t.Errorf("sender %s message %d corrupted", src, seq[0])
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if seen["a0"] != perSender || seen["a1"] != perSender {
		t.Errorf("seen = %v", seen)
	}
}

// TestRandomChainTopologies builds random chains of clusters (2–4 networks
// with alternating protocols) and checks end-to-end delivery across the
// full chain.
func TestRandomChainTopologies(t *testing.T) {
	protos := []string{"sci", "myrinet", "sbp"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nets := 2 + rng.Intn(3)
		var sb strings.Builder
		for i := 0; i < nets; i++ {
			fmt.Fprintf(&sb, "network n%d %s\n", i, protos[rng.Intn(len(protos))])
		}
		// Two leaf nodes per end network, gateways chaining them.
		fmt.Fprintf(&sb, "node first n0\n")
		for i := 0; i < nets-1; i++ {
			fmt.Fprintf(&sb, "node g%d n%d n%d\n", i, i, i+1)
		}
		fmt.Fprintf(&sb, "node last n%d\n", nets-1)
		sys, err := madeleine.NewSystem(sb.String(),
			madeleine.WithMTU(4096+rng.Intn(60000)))
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, sb.String())
			return false
		}
		n := 1000 + rng.Intn(200_000)
		payload := pattern(n, int(seed))
		ok := true
		sys.Spawn("s", func(p *madeleine.Proc) {
			px := sys.At("first").BeginPacking(p, "last")
			px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		})
		sys.Spawn("r", func(p *madeleine.Proc) {
			u := sys.At("last").BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
			ok = bytes.Equal(got, payload)
			if nets > 2 && !u.Forwarded() {
				ok = false
			}
		})
		if err := sys.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicEndToEnd runs the same busy scenario twice and compares
// final virtual times and gateway counters exactly.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (madeleine.Time, int64, int64) {
		sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
			madeleine.WithRouteNetworks("sci0", "myri0"))
		if err != nil {
			t.Fatal(err)
		}
		for i, pr := range [][2]string{{"a0", "b0"}, {"b1", "a1"}, {"a2", "b2"}, {"b3", "a3"}} {
			i, pr := i, pr
			n := 50_000 + i*7777
			sys.Spawn("s"+pr[0], func(p *madeleine.Proc) {
				px := sys.At(pr[0]).BeginPacking(p, pr[1])
				px.Pack(p, pattern(n, i), madeleine.SendCheaper, madeleine.ReceiveCheaper)
				px.EndPacking(p)
			})
			sys.Spawn("r"+pr[1], func(p *madeleine.Proc) {
				u := sys.At(pr[1]).BeginUnpacking(p)
				u.Unpack(p, make([]byte, n), madeleine.SendCheaper, madeleine.ReceiveCheaper)
				u.EndUnpacking(p)
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		gs, _ := sys.GatewayStats("gw")
		return sys.Now(), gs.Packets, gs.Bytes
	}
	t1, p1, b1 := run()
	t2, p2, b2 := run()
	if t1 != t2 || p1 != p2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", t1, p1, b1, t2, p2, b2)
	}
}

// TestGatewayAsEndpointWhileRelaying exercises the §2.2.2 dual role: the
// gateway exchanges its own application traffic while relaying a large
// forwarded stream.
func TestGatewayAsEndpointWhileRelaying(t *testing.T) {
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithRouteNetworks("sci0", "myri0"))
	if err != nil {
		t.Fatal(err)
	}
	const stream = 1 << 20
	sys.Spawn("stream-send", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b0")
		px.Pack(p, pattern(stream, 1), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("stream-recv", func(p *madeleine.Proc) {
		u := sys.At("b0").BeginUnpacking(p)
		got := make([]byte, stream)
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		if !bytes.Equal(got, pattern(stream, 1)) {
			t.Error("stream corrupted")
		}
	})
	const chat = 10
	sys.Spawn("gw-app", func(p *madeleine.Proc) {
		for k := 0; k < chat; k++ {
			px := sys.At("gw").BeginPacking(p, "a1")
			px.Pack(p, []byte{byte(k)}, madeleine.SendCheaper, madeleine.ReceiveExpress)
			px.EndPacking(p)
			u := sys.At("gw").BeginUnpacking(p)
			echo := make([]byte, 1)
			u.Unpack(p, echo, madeleine.SendCheaper, madeleine.ReceiveExpress)
			u.EndUnpacking(p)
			if echo[0] != byte(k) {
				t.Errorf("gw chat round %d broken", k)
			}
		}
	})
	sys.Spawn("a1-app", func(p *madeleine.Proc) {
		for k := 0; k < chat; k++ {
			u := sys.At("a1").BeginUnpacking(p)
			v := make([]byte, 1)
			u.Unpack(p, v, madeleine.SendCheaper, madeleine.ReceiveExpress)
			u.EndUnpacking(p)
			px := sys.At("a1").BeginPacking(p, "gw")
			px.Pack(p, v, madeleine.SendCheaper, madeleine.ReceiveExpress)
			px.EndPacking(p)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	gs, _ := sys.GatewayStats("gw")
	if gs.Messages != 1 || gs.Bytes != stream {
		t.Errorf("gateway stats %d/%d", gs.Messages, gs.Bytes)
	}
}

// TestStarTopologyManyClusters attaches four clusters to one central
// gateway and crosses traffic through it from every arm at once.
func TestStarTopologyManyClusters(t *testing.T) {
	cfg := `
network n0 sci
network n1 myrinet
network n2 sci
network n3 myrinet
node hub n0 n1 n2 n3
node l0 n0
node l1 n1
node l2 n2
node l3 n3
`
	sys, err := madeleine.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaves := []string{"l0", "l1", "l2", "l3"}
	const n = 60_000
	for i, src := range leaves {
		i, src := i, src
		dst := leaves[(i+1)%len(leaves)]
		sys.Spawn("s:"+src, func(p *madeleine.Proc) {
			px := sys.At(src).BeginPacking(p, dst)
			px.Pack(p, pattern(n, i), madeleine.SendCheaper, madeleine.ReceiveCheaper)
			px.EndPacking(p)
		})
		sys.Spawn("r:"+dst, func(p *madeleine.Proc) {
			u := sys.At(dst).BeginUnpacking(p)
			got := make([]byte, n)
			u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(n, i)) {
				t.Errorf("%s->%s corrupted", src, dst)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	gs, _ := sys.GatewayStats("hub")
	if gs.Messages != int64(len(leaves)) {
		t.Errorf("hub relayed %d, want %d", gs.Messages, len(leaves))
	}
}

// TestGatewayKillReliability is the fault-tolerance property test: over
// random chain topologies with one or two gateways per cluster boundary,
// crashing any redundant (non-articulation) gateway must leave ring traffic
// byte-exact, while crashing a sole (articulation) gateway must surface a
// typed DeliveryError — never a deadlock.
func TestGatewayKillReliability(t *testing.T) {
	protos := []string{"sci", "myrinet", "ethernet"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		nets := 2 + rng.Intn(2)
		var sb strings.Builder
		for i := 0; i < nets; i++ {
			fmt.Fprintf(&sb, "network n%d %s\n", i, protos[(trial+i)%len(protos)])
		}
		var leaves []string
		var gateways []string
		redundant := make(map[string]bool)
		for i := 0; i < nets; i++ {
			for j := 0; j < 1+rng.Intn(2); j++ {
				n := fmt.Sprintf("leaf%d_%d", i, j)
				fmt.Fprintf(&sb, "node %s n%d\n", n, i)
				leaves = append(leaves, n)
			}
		}
		for i := 0; i < nets-1; i++ {
			k := 1 + rng.Intn(2)
			for j := 0; j < k; j++ {
				g := fmt.Sprintf("g%d_%d", i, j)
				fmt.Fprintf(&sb, "node %s n%d n%d\n", g, i, i+1)
				gateways = append(gateways, g)
				redundant[g] = k > 1
			}
		}
		cfgText := sb.String()
		for _, victim := range gateways {
			plan := madeleine.NewFaultPlan(int64(trial)).Crash(victim, 0, 0)
			sys, err := madeleine.NewSystem(cfgText, madeleine.WithFaults(plan))
			if err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, cfgText)
			}
			// Ring traffic over the leaf nodes: the wrap-around pair
			// crosses every cluster boundary, so the dead gateway's
			// bridge always carries traffic.
			payloads := make([][]byte, len(leaves))
			got := make([][]byte, len(leaves))
			for i := range leaves {
				i := i
				src, dst := leaves[i], leaves[(i+1)%len(leaves)]
				payloads[i] = pattern(2000+i*500, trial)
				sys.Spawn("s:"+src, func(p *madeleine.Proc) {
					px := sys.At(src).BeginPacking(p, dst)
					px.Pack(p, payloads[i], madeleine.SendCheaper, madeleine.ReceiveCheaper)
					px.EndPacking(p)
				})
				sys.Spawn("r:"+dst, func(p *madeleine.Proc) {
					u := sys.At(dst).BeginUnpacking(p)
					got[i] = make([]byte, len(payloads[i]))
					u.Unpack(p, got[i], madeleine.SendCheaper, madeleine.ReceiveCheaper)
					u.EndUnpacking(p)
				})
			}
			err = sys.Run()
			if redundant[victim] {
				if err != nil {
					t.Errorf("trial %d: killing redundant %s: %v\n%s", trial, victim, err, cfgText)
					continue
				}
				for i := range leaves {
					if !bytes.Equal(got[i], payloads[i]) {
						t.Errorf("trial %d: killing redundant %s corrupted %s->%s",
							trial, victim, leaves[i], leaves[(i+1)%len(leaves)])
					}
				}
			} else {
				var de *madeleine.DeliveryError
				if !errors.As(err, &de) {
					t.Errorf("trial %d: killing articulation %s: Run() = %v, want *DeliveryError\n%s",
						trial, victim, err, cfgText)
				}
			}
		}
	}
}

// TestFaultDeterminism runs the same seeded fault schedule twice and demands
// identical trace timelines, delivery statistics and final virtual times —
// the reproducibility contract of the fault-injection substrate.
func TestFaultDeterminism(t *testing.T) {
	cfg := `
network sci0 sci
network myri0 myrinet
node a0 sci0
node a1 sci0
node gw sci0 myri0
node b0 myri0
node b1 myri0
fault seed 5
fault drop * 0.03
fault corrupt * 0.01
fault flap myri0 10ms 5ms
fault crash gw 20ms 20ms
`
	run := func() (madeleine.Time, madeleine.DeliveryStats, string) {
		tr := madeleine.NewTracer()
		sys, err := madeleine.NewSystem(cfg, madeleine.WithTracer(tr))
		if err != nil {
			t.Fatal(err)
		}
		pairs := [][2]string{{"a0", "b0"}, {"a1", "b1"}, {"b0", "a0"}}
		for i, pr := range pairs {
			i, pr := i, pr
			payload := pattern(120_000+i*1000, i)
			sys.Spawn("s:"+pr[0], func(p *madeleine.Proc) {
				px := sys.At(pr[0]).BeginPacking(p, pr[1])
				px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
				px.EndPacking(p)
			})
			sys.Spawn("r:"+pr[1], func(p *madeleine.Proc) {
				u := sys.At(pr[1]).BeginUnpacking(p)
				got := make([]byte, len(payload))
				u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
				u.EndUnpacking(p)
				if !bytes.Equal(got, payload) {
					t.Errorf("%s -> %s corrupted", pr[0], pr[1])
				}
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		var spans strings.Builder
		for _, s := range tr.Spans() {
			fmt.Fprintln(&spans, s.String())
		}
		return sys.Now(), sys.DeliveryStats(), spans.String()
	}
	t1, ds1, tl1 := run()
	t2, ds2, tl2 := run()
	if t1 != t2 {
		t.Errorf("final times differ: %v vs %v", t1, t2)
	}
	if ds1 != ds2 {
		t.Errorf("delivery stats differ: %+v vs %+v", ds1, ds2)
	}
	if tl1 != tl2 {
		t.Error("trace timelines differ between identically-seeded runs")
	}
	if ds1.Retransmits == 0 {
		t.Error("faulty run saw zero retransmissions")
	}
}
