package mad_test

import (
	"bytes"
	"testing"

	"madgo/internal/drivers/loopback"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

func TestWaitArrivalAndOpen(t *testing.T) {
	pr := newPair(loopback.New())
	pr.sim.Spawn("send", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, []byte{7}, mad.SendCheaper, mad.ReceiveExpress)
		px.EndPacking(p)
	})
	pr.sim.Spawn("recv", func(p *vtime.Proc) {
		ep := pr.ch.At(pr.b)
		a := ep.WaitArrival(p)
		if a.From() != pr.a.Rank {
			t.Errorf("From = %d", a.From())
		}
		if a.Kind() != mad.KindPlain {
			t.Errorf("Kind = %v", a.Kind())
		}
		u := ep.Open(p, a)
		got := make([]byte, 1)
		u.Unpack(p, got, mad.SendCheaper, mad.ReceiveExpress)
		u.EndUnpacking(p)
		if got[0] != 7 {
			t.Error("payload wrong")
		}
	})
	pr.run(t)
}

func TestTryArrival(t *testing.T) {
	pr := newPair(loopback.New())
	pr.sim.Spawn("recv", func(p *vtime.Proc) {
		ep := pr.ch.At(pr.b)
		if _, ok := ep.TryArrival(); ok {
			t.Error("arrival before any send")
		}
		p.Sleep(vtime.Millisecond)
		a, ok := ep.TryArrival()
		if !ok {
			t.Fatal("no arrival after send completed")
		}
		u := ep.Open(p, a)
		u.Unpack(p, make([]byte, 3), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	pr.sim.Spawn("send", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, []byte{1, 2, 3}, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	pr.run(t)
}

func TestKindNoteTravelsAhead(t *testing.T) {
	// The arrival announcement carries the message kind before any body
	// is unpacked — the §2.2.2 "additional information".
	pr := newPair(loopback.New())
	pr.sim.Spawn("send", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPackingKind(p, pr.b.Rank, mad.KindGTM)
		px.Pack(p, []byte{1}, mad.SendCheaper, mad.ReceiveExpress)
		px.EndPacking(p)
	})
	pr.sim.Spawn("recv", func(p *vtime.Proc) {
		a := pr.ch.At(pr.b).WaitArrival(p)
		if a.Kind() != mad.KindGTM {
			t.Errorf("Kind = %v, want gtm", a.Kind())
		}
		u := pr.ch.At(pr.b).Open(p, a)
		u.Unpack(p, make([]byte, 1), mad.SendCheaper, mad.ReceiveExpress)
		u.EndUnpacking(p)
	})
	pr.run(t)
}

func TestMisusePanics(t *testing.T) {
	cases := map[string]func(p *vtime.Proc, pr *pair){
		"pack after end": func(p *vtime.Proc, pr *pair) {
			px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
			px.EndPacking(p)
			px.Pack(p, []byte{1}, mad.SendCheaper, mad.ReceiveCheaper)
		},
		"double end packing": func(p *vtime.Proc, pr *pair) {
			px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
			px.EndPacking(p)
			px.EndPacking(p)
		},
	}
	for name, fn := range cases {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			pr := newPair(loopback.New())
			pr.sim.Spawn("offender", func(p *vtime.Proc) {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", name)
					}
				}()
				fn(p, pr)
			})
			_ = pr.sim.Run()
		})
	}
}

func TestUnpackMisusePanics(t *testing.T) {
	pr := newPair(loopback.New())
	pr.sim.Spawn("send", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, []byte{1}, mad.SendCheaper, mad.ReceiveExpress)
		px.EndPacking(p)
	})
	pr.sim.Spawn("recv", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, 1), mad.SendCheaper, mad.ReceiveExpress)
		u.EndUnpacking(p)
		defer func() {
			if recover() == nil {
				t.Error("expected panic: unpack after end")
			}
		}()
		u.Unpack(p, make([]byte, 1), mad.SendCheaper, mad.ReceiveExpress)
	})
	pr.run(t)
}

func TestSameLinkConcurrentSendersSerialize(t *testing.T) {
	// Two processes on one node sending to the same destination share the
	// connection: messages serialize, never interleave.
	pr := newPair(loopback.New())
	for i := 0; i < 2; i++ {
		i := i
		pr.sim.Spawn("sender", func(p *vtime.Proc) {
			for k := 0; k < 3; k++ {
				px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
				px.Pack(p, []byte{byte(i)}, mad.SendCheaper, mad.ReceiveExpress)
				px.Pack(p, bytes.Repeat([]byte{byte(i)}, 5000), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			}
		})
	}
	pr.sim.Spawn("recv", func(p *vtime.Proc) {
		for k := 0; k < 6; k++ {
			u := pr.ch.At(pr.b).BeginUnpacking(p)
			tag := make([]byte, 1)
			u.Unpack(p, tag, mad.SendCheaper, mad.ReceiveExpress)
			body := make([]byte, 5000)
			u.Unpack(p, body, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			// Every byte of the body must match the tag: no
			// cross-message interleaving.
			for _, b := range body {
				if b != tag[0] {
					t.Fatalf("message %d interleaved: tag %d, body byte %d", k, tag[0], b)
				}
			}
		}
	})
	pr.run(t)
}
