package mad

import (
	"fmt"

	"madgo/internal/hw"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// Channel is the paper's channel object: a closed world for communication,
// bound to one network, one protocol driver and a set of member nodes.
// In-order delivery holds per point-to-point connection within the channel.
type Channel struct {
	Name string

	sess    *Session
	net     *hw.Network
	drv     Driver
	members map[Rank]*Node
	order   []Rank
	links   map[[2]Rank]*Link
	arrival map[Rank]*vsync.Chan[*Arrival]
}

// NewChannel creates a channel over the given network and driver connecting
// the member nodes. Every member must be distinct.
func (s *Session) NewChannel(name string, net *hw.Network, drv Driver, members ...*Node) *Channel {
	if len(members) < 2 {
		panic("mad: channel needs at least two members: " + name)
	}
	ch := &Channel{
		Name:    name,
		sess:    s,
		net:     net,
		drv:     drv,
		members: make(map[Rank]*Node, len(members)),
		links:   make(map[[2]Rank]*Link),
		arrival: make(map[Rank]*vsync.Chan[*Arrival], len(members)),
	}
	for _, n := range members {
		if n.Session != s {
			panic("mad: node from another session on channel " + name)
		}
		if _, dup := ch.members[n.Rank]; dup {
			panic(fmt.Sprintf("mad: node %v twice on channel %s", n, name))
		}
		ch.members[n.Rank] = n
		ch.order = append(ch.order, n.Rank)
		ch.arrival[n.Rank] = vsync.NewChan[*Arrival](fmt.Sprintf("arrivals:%s:%s", name, n.Name), 4096)
	}
	s.channels = append(s.channels, ch)
	return ch
}

// Session returns the owning session.
func (ch *Channel) Session() *Session { return ch.sess }

// Driver returns the channel's protocol driver.
func (ch *Channel) Driver() Driver { return ch.drv }

// Network returns the underlying network.
func (ch *Channel) Network() *hw.Network { return ch.net }

// Members returns the member ranks in declaration order.
func (ch *Channel) Members() []Rank { return append([]Rank(nil), ch.order...) }

// HasMember reports whether rank r belongs to the channel.
func (ch *Channel) HasMember(r Rank) bool {
	_, ok := ch.members[r]
	return ok
}

// Link returns the unidirectional connection src→dst, creating it lazily.
func (ch *Channel) Link(src, dst Rank) *Link {
	if src == dst {
		panic(fmt.Sprintf("mad: self-connection %d on channel %s", src, ch.Name))
	}
	if !ch.HasMember(src) || !ch.HasMember(dst) {
		panic(fmt.Sprintf("mad: ranks %d->%d not both on channel %s", src, dst, ch.Name))
	}
	key := [2]Rank{src, dst}
	if l, ok := ch.links[key]; ok {
		return l
	}
	l := newLink(ch, ch.members[src], ch.members[dst])
	ch.links[key] = l
	return l
}

// Arrival announces a message whose first transmission reached a node. The
// metadata is available before the body is unpacked — this carries the
// regular/forwarded note of §2.2.2.
type Arrival struct {
	Link *Link
	Meta TxMeta
}

// From returns the sending rank.
func (a *Arrival) From() Rank { return a.Link.Src.Rank }

// Kind returns the announced message kind.
func (a *Arrival) Kind() Kind { return a.Meta.Kind }

func (ch *Channel) notifyArrival(l *Link, meta TxMeta) {
	q, ok := ch.arrival[l.Dst.Rank]
	if !ok {
		panic("mad: arrival for non-member " + l.Dst.Name)
	}
	if !q.TrySend(&Arrival{Link: l, Meta: meta}) {
		panic("mad: arrival queue overflow on " + ch.Name)
	}
}

// Endpoint is a channel as seen from one member node; all communication
// calls go through endpoints.
type Endpoint struct {
	ch   *Channel
	node *Node
}

// At returns the endpoint of node n on the channel.
func (ch *Channel) At(n *Node) *Endpoint {
	if !ch.HasMember(n.Rank) {
		panic(fmt.Sprintf("mad: %v is not on channel %s", n, ch.Name))
	}
	return &Endpoint{ch: ch, node: n}
}

// AtRank returns the endpoint of the member with rank r.
func (ch *Channel) AtRank(r Rank) *Endpoint { return ch.At(ch.sess.Node(r)) }

// Channel returns the endpoint's channel.
func (e *Endpoint) Channel() *Channel { return e.ch }

// Node returns the endpoint's node.
func (e *Endpoint) Node() *Node { return e.node }

// WaitArrival blocks until a message announcement reaches this node on this
// channel and returns it. One poll cost is charged per wakeup, as in the
// paper's polling threads.
func (e *Endpoint) WaitArrival(p *vtime.Proc) *Arrival {
	p.Sleep(e.node.Host.CPU.PollCost)
	a, ok := e.ch.arrival[e.node.Rank].Recv(p)
	if !ok {
		panic("mad: arrival queue closed on " + e.ch.Name)
	}
	return a
}

// TryArrival returns a pending announcement without blocking.
func (e *Endpoint) TryArrival() (*Arrival, bool) {
	return e.ch.arrival[e.node.Rank].TryRecv()
}
