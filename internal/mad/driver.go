package mad

import (
	"madgo/internal/hw"
	"madgo/internal/vtime"
)

// Buffer is a unit of payload handled by the buffer-management layer.
// Dynamic buffers reference arbitrary user memory; static buffers are owned
// by a driver (the SBP-style networks of §2.3) and payload must be copied
// into them before transmission.
type Buffer struct {
	Data   []byte
	Static bool
	Owner  Driver // nil for dynamic buffers
}

// Caps describes a driver to the buffer-management layer, which selects and
// parameterizes the BMM from it.
type Caps struct {
	// StaticBuffers marks drivers that can only transmit from buffers
	// they allocated themselves (SBP). The BMM then stages every block
	// through driver slots.
	StaticBuffers bool
	// AggregateLimit is the size of the aggregation buffer used to batch
	// small and express blocks into a single transmission. Zero selects
	// the eager BMM: every block becomes its own transmission.
	AggregateLimit int
	// CopyThreshold is the largest block the aggregating BMM will copy;
	// strictly larger blocks are sent by reference with no copy.
	CopyThreshold int
	// ScatterGather marks NICs with gather-DMA send descriptors: the
	// aggregating BMM then groups small blocks *by reference* and the
	// card collects them on the fly, so the sender-side copy disappears
	// (the receiver still copies blocks out of the landed aggregate).
	// GatherEntries bounds one transmission's descriptor list; beyond
	// it the aggregate is flushed.
	ScatterGather bool
	GatherEntries int
	// MaxTransmission caps the payload of one transmission (the TM-level
	// MTU). Zero means unlimited. Blocks larger than the cap are
	// fragmented by the BMM.
	MaxTransmission int
}

// Driver is a protocol transmission module: it provides the NIC timing
// model, its capabilities, per-message host-software hooks, and static
// buffer allocation for the protocols that need it.
//
// Drivers hold no per-connection state: the generic link engine in this
// package implements the wire protocol (eager and rendezvous paths, posted
// receives, delivery) using the driver's parameters.
type Driver interface {
	// Protocol returns the protocol name ("myrinet", "sci", ...).
	Protocol() string
	// Caps returns the driver capabilities for the BMM layer.
	Caps() Caps
	// NIC returns the hardware timing model.
	NIC() hw.NICParams
	// AllocStatic returns a driver-owned static buffer of n bytes on
	// host h. Drivers without static buffers panic.
	AllocStatic(h *hw.Host, n int) *Buffer
	// OnSend charges protocol-specific per-transmission host costs on
	// the sending side beyond the NIC model (e.g. the TCP driver's
	// kernel socket copy).
	OnSend(p *vtime.Proc, h *hw.Host, bytes int)
	// OnRecv is the receiving-side counterpart of OnSend.
	OnRecv(p *vtime.Proc, h *hw.Host, bytes int)
}

// BaseDriver provides no-op hooks and a panicking AllocStatic for embedding
// in dynamic-buffer drivers.
type BaseDriver struct{}

// AllocStatic panics: the embedding driver has dynamic buffers only.
func (BaseDriver) AllocStatic(h *hw.Host, n int) *Buffer {
	panic("mad: driver has no static buffers")
}

// OnSend is a no-op.
func (BaseDriver) OnSend(p *vtime.Proc, h *hw.Host, bytes int) {}

// OnRecv is a no-op.
func (BaseDriver) OnRecv(p *vtime.Proc, h *hw.Host, bytes int) {}
