package mad

import (
	"fmt"

	"madgo/internal/fault"
	"madgo/internal/flight"
	"madgo/internal/fluid"
	"madgo/internal/hw"
	"madgo/internal/obs"
	"madgo/internal/vtime"
	"madgo/internal/vtime/vsync"
)

// Framing costs charged on the wire for every transmission: a fixed header
// plus a small descriptor per block.
const (
	txHeaderBytes  = 8
	blockDescBytes = 4
)

// BlockDesc describes one packed block inside a transmission: its size and
// the flag pair it was packed with. The receiving BMM verifies its mirrored
// expectations against these descriptors, turning pack/unpack mismatches
// into immediate errors instead of silent corruption.
type BlockDesc struct {
	Size int
	S    SendMode
	R    RecvMode
}

// TxMeta is the metadata of one transmission.
type TxMeta struct {
	// SOM marks the first transmission of a message; its delivery is
	// what BeginUnpacking waits for.
	SOM bool
	// Announce marks a header-only transmission sent ahead of a
	// referenced first block on an eager link, so the receiver can post
	// its destination before the payload streams in (rendezvous links
	// announce implicitly through their request).
	Announce bool
	// EOM marks a payload-free end-of-message terminator. The generic
	// transmission module closes every self-described message with one —
	// "to end a message, the sender sends the description of an empty
	// message" (§2.3).
	EOM bool
	// Kind is the message class, transmitted ahead of the body so the
	// receiver can pick the regular or generic decoding path.
	Kind Kind
	// Blocks describes the payload layout.
	Blocks []BlockDesc
	// Seq is the per-link sequence number (diagnostics; links are FIFO
	// by construction).
	Seq uint64
	// Reliable marks a transmission of the fwd reliability protocol: it
	// always takes the plain eager path (no rendezvous or post gating,
	// which would wedge a sender when the counterpart is lost) and it is
	// the only traffic the fault injector may drop, corrupt or stall —
	// unprotected traffic keeps the seed's exact behaviour.
	Reliable bool
}

func (m TxMeta) payloadBytes() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.Size
	}
	return n
}

// wireBytes is the number of bytes the transmission occupies on the wire.
func (m TxMeta) wireBytes() int {
	return m.payloadBytes() + txHeaderBytes + blockDescBytes*len(m.Blocks)
}

// transmission is one in-flight unit on a link.
type transmission struct {
	meta    TxMeta
	payload []byte // sender-side reference
	slot    []byte // receiver-side driver memory (eager or ungranted data)

	rendezvous bool
	dataReady  bool
	credited   bool         // eager flow-control credit already returned
	announced  bool         // SOM arrival already notified (post-gated path)
	senderW    *vtime.Waker // rendezvous: sender waits for the grant
	recvW      *vtime.Waker // rendezvous: receiver waits for completion
	granted    *postedRecv

	// Fault verdicts, decided at send time so the injected randomness is
	// consumed in deterministic scheduler order. corruptAt < 0 means no
	// corruption.
	dropped   bool
	corruptAt int
}

// postedRecv is an outstanding posted receive on a link. dst == nil means
// the receiver wants a driver-slot handoff instead of in-place delivery.
type postedRecv struct {
	dst    []byte
	w      *vtime.Waker
	tx     *transmission
	placed bool // payload went straight into dst with no CPU copy
}

// Link is one unidirectional point-to-point connection of a channel. The
// engine implements the two delivery disciplines every modelled protocol
// uses:
//
//   - eager: the sender streams immediately; data lands in driver memory
//     unless a receive was already posted, in which case the NIC places it
//     directly (zero copy).
//   - rendezvous (large messages on Myrinet/BIP): the sender announces the
//     message and waits for the receiver, then streams straight into the
//     posted destination.
type Link struct {
	Channel *Channel
	Src     *Node
	Dst     *Node

	drv     Driver
	nic     hw.NICParams
	wire    *fluid.Resource
	mailbox *vsync.Chan[*transmission]
	posted  *postedRecv
	gated   []*vtime.Waker // senders waiting for a posted receive
	credits *vsync.Sem     // eager flow-control window (nil = unlimited)
	msgMu   vsync.Mutex    // serializes whole messages on the sending side
	recvMu  vsync.Mutex    // serializes whole messages on the receiving side
	seq     uint64
	flRing  *flight.Ring // cached flight ring; nil until a recorder is armed
}

func newLink(ch *Channel, src, dst *Node) *Link {
	nic := ch.drv.NIC()
	l := &Link{
		Channel: ch,
		Src:     src,
		Dst:     dst,
		drv:     ch.drv,
		nic:     nic,
		wire:    ch.net.Wire(src.Name, dst.Name),
		mailbox: vsync.NewChan[*transmission](fmt.Sprintf("mbox:%s:%s->%s", ch.Name, src.Name, dst.Name), 4096),
	}
	if nic.EagerCredits > 0 {
		l.credits = vsync.NewSem(nic.EagerCredits)
	}
	return l
}

func (l *Link) sim() *vtime.Sim       { return l.Src.Session.Platform.Sim }
func (l *Link) engine() *fluid.Engine { return l.Src.Session.Platform.Engine }

// Acquire locks the link for one whole message; Release unlocks it.
// Packing and the generic transmission module bracket their messages with
// these so transmissions of different messages never interleave on a link.
func (l *Link) Acquire(p *vtime.Proc) { l.msgMu.Lock(p) }

// Release unlocks the link after a message.
func (l *Link) Release(p *vtime.Proc) { l.msgMu.Unlock(p) }

// AcquireRecv locks the receiving side of the link for one whole message;
// ReleaseRecv unlocks it. Unpacking brackets messages with these so two
// receiver processes on one node cannot interleave receives of consecutive
// messages from the same sender.
func (l *Link) AcquireRecv(p *vtime.Proc) { l.recvMu.Lock(p) }

// ReleaseRecv unlocks the receiving side after a message.
func (l *Link) ReleaseRecv(p *vtime.Proc) { l.recvMu.Unlock(p) }

// faults returns the platform's armed fault injector (nil when fault
// injection is off).
func (l *Link) faults() *fault.Injector { return l.Src.Session.Platform.Faults }

// metrics returns the platform's metrics registry (nil records nothing).
func (l *Link) metrics() *obs.Registry { return l.Src.Session.Platform.Metrics }

// flight returns the source node's flight-recorder ring, looked up lazily
// so a recorder armed after the link was built is still picked up; once
// resolved the ring is cached (nil rings record nothing either way).
func (l *Link) flight() *flight.Ring {
	if l.flRing == nil {
		l.flRing = l.Src.Session.Platform.FlightRing(l.Src.Name)
	}
	return l.flRing
}

// flow charges the transfer over sender bus → wire → receiver bus. It
// reports false when a fault window cancelled the flow mid-transfer.
func (l *Link) flow(p *vtime.Proc, wireBytes, payloadLen int) bool {
	demand := l.nic.EffectiveSendRate(payloadLen)
	if l.nic.RecvEngineRate < demand {
		demand = l.nic.RecvEngineRate
	}
	_, ok := l.engine().TransferOK(p, fluid.Spec{
		Name:   fmt.Sprintf("%s:%s->%s", l.Channel.Name, l.Src.Name, l.Dst.Name),
		Class:  l.nic.SendBusClass,
		Demand: demand,
		Bytes:  int64(wireBytes),
		Route: []fluid.Hop{
			{R: l.Src.Host.Bus, Class: l.nic.SendBusClass},
			{R: l.wire, Class: fluid.ClassWire},
			{R: l.Dst.Host.Bus, Class: l.nic.RecvBusClass},
		},
	})
	return ok
}

// Send transmits data as one transmission. It blocks until the sending NIC
// has pushed the last byte (and, on the rendezvous path, until the receiver
// had posted). The data slice is referenced, not copied; the BMM layer has
// already made any copies its policy requires.
func (l *Link) Send(p *vtime.Proc, meta TxMeta, data []byte) {
	m := l.metrics()
	labels := obs.Labels{"net": l.Channel.net.Name, "node": l.Src.Name}
	m.Add("madgo_link_sends_total", labels, 1)
	m.Add("madgo_link_send_bytes_total", labels, float64(len(data)))
	t0 := p.Now()
	l.send(p, meta, data)
	m.ObserveDuration("madgo_link_send_seconds", labels, vtime.Since(p.Now(), t0))
	l.flight().Record(flight.KindWire, p.Now(), vtime.Since(p.Now(), t0), 0, len(data), l.Channel.net.Name)
}

// send is the uninstrumented transmission path behind Send.
func (l *Link) send(p *vtime.Proc, meta TxMeta, data []byte) {
	if got := meta.payloadBytes(); got != len(data) {
		panic(fmt.Sprintf("mad: block descriptors say %d bytes, payload has %d", got, len(data)))
	}
	l.seq++
	meta.Seq = l.seq
	tx := &transmission{meta: meta, payload: data, corruptAt: -1}

	if meta.Reliable {
		if inj := l.faults(); inj != nil {
			if d := inj.StallDelay(l.Src.Name, p.Now()); d > 0 {
				p.Sleep(d)
			}
		}
	}
	p.Sleep(l.nic.SendOverhead)
	l.drv.OnSend(p, l.Src.Host, len(data))
	l.judge(p, tx)

	if !meta.Reliable && l.nic.RendezvousThreshold > 0 && len(data) > l.nic.RendezvousThreshold {
		l.sendRendezvous(p, tx)
		return
	}
	if !meta.Reliable && l.nic.PostGateThreshold > 0 && len(data) > l.nic.PostGateThreshold {
		// Post-gated eager path: large payloads stream straight into a
		// buffer the receiver has exposed; the sender waits (cheaply)
		// until one is there. The message is announced first so the
		// receiver knows to post.
		tx.credited = true // gating replaces the ring credit
		if tx.meta.SOM && !tx.meta.Announce {
			l.notifyArrival(tx)
			tx.announced = true
		}
		if l.posted == nil {
			w := p.Blocker("posted gate " + l.Channel.Name)
			l.gated = append(l.gated, w)
			w.Wait()
		}
		l.flow(p, tx.meta.wireBytes(), len(data))
		l.sim().After(l.nic.WireLatency, func() { l.deliver(tx) })
		return
	}
	// Ring eager path: take a flow-control credit (a free ring slot on
	// the receiving side), stream, deliver after the wire latency. The
	// credit returns when the transmission reaches the receiver's hands.
	if l.credits != nil {
		l.credits.Acquire(p, 1)
	}
	ok := l.flow(p, tx.meta.wireBytes(), len(data))
	if tx.meta.Reliable && (tx.dropped || !ok) {
		// The packet never reaches the receiver: a drop verdict, or a
		// fault window cancelled the flow mid-transfer. The credit is
		// returned (the slot was never consumed on the far side) and
		// the sender's retry machinery takes over.
		l.releaseCredit(tx)
		return
	}
	l.sim().After(l.nic.WireLatency, func() { l.deliver(tx) })
}

// judge draws the fault verdicts for a reliable transmission at send time,
// so the injector's randomness is consumed in deterministic scheduler order
// regardless of how delivery later interleaves.
func (l *Link) judge(p *vtime.Proc, tx *transmission) {
	if !tx.meta.Reliable {
		return
	}
	inj := l.faults()
	if inj == nil {
		return
	}
	v, pos := inj.Packet(l.Channel.net.Name, l.Src.Name, l.Dst.Name, p.Now(), len(tx.payload))
	switch v {
	case fault.DropPacket:
		tx.dropped = true
	case fault.CorruptPacket:
		tx.corruptAt = pos
	}
}

// applyCorruption flips one byte of the receiver-side copy when the send-time
// verdict said so. Only the receiver's copy is damaged — the sender's buffer
// is the retransmit source and stays intact, like a wire-level bit error.
func applyCorruption(buf []byte, tx *transmission) {
	if tx.meta.Reliable && tx.corruptAt >= 0 && len(buf) > 0 {
		buf[tx.corruptAt%len(buf)] ^= 0xA5
	}
}

func (l *Link) sendRendezvous(p *vtime.Proc, tx *transmission) {
	tx.rendezvous = true
	tx.senderW = p.Blocker("rendezvous grant")
	l.sim().After(l.nic.WireLatency, func() { l.deliver(tx) })
	tx.senderW.Wait()
	p.Sleep(l.nic.RendezvousCost)
	l.flow(p, tx.meta.wireBytes(), len(tx.payload))
	// The NIC streams straight into the posted destination; only an
	// ungranted (slot) receive needs driver memory.
	if g := tx.granted; g != nil && g.dst != nil {
		l.place(g, tx.payload)
	} else {
		tx.slot = snapshot(tx.payload)
	}
	tx.dataReady = true
	w := tx.recvW
	l.sim().After(l.nic.WireLatency, func() { w.Wake() })
}

// place puts payload into a posted destination without a CPU copy (the NIC
// wrote it there).
func (l *Link) place(g *postedRecv, payload []byte) {
	if len(payload) > len(g.dst) {
		panic(fmt.Sprintf("mad: posted receive of %d bytes for %d-byte transmission on %s",
			len(g.dst), len(payload), l.Channel.Name))
	}
	copy(g.dst, payload)
	g.placed = true
}

// snapshot copies payload into fresh driver memory; it models the NIC
// writing into protocol-owned buffers, so it charges no CPU time.
func snapshot(payload []byte) []byte {
	return append([]byte(nil), payload...)
}

// deliver runs in scheduler context when a transmission (or rendezvous
// request) becomes visible at the receiver.
func (l *Link) deliver(tx *transmission) {
	if g := l.posted; g != nil {
		l.posted = nil
		g.tx = tx
		if tx.rendezvous && !tx.dataReady {
			// Grant: the receiver keeps waiting on its own waker,
			// which the sender fires after streaming.
			tx.granted = g
			tx.recvW = g.w
			tx.senderW.Wake()
		} else {
			if g.dst != nil && !l.nic.StaticBuffers {
				l.place(g, tx.payload)
				applyCorruption(g.dst[:len(tx.payload)], tx)
			} else {
				// A static-buffer NIC can only land data in its
				// own slots; the posted receiver pays the copy
				// out — the unavoidable copy of §2.3 when both
				// gateway sides are static.
				tx.slot = snapshot(tx.payload)
				applyCorruption(tx.slot, tx)
			}
			l.releaseCredit(tx)
			g.w.Wake()
		}
		l.notifyArrival(tx)
		tx.announced = true
		return
	}
	if !tx.rendezvous {
		tx.slot = snapshot(tx.payload)
		applyCorruption(tx.slot, tx)
		tx.dataReady = true
	}
	if !l.mailbox.TrySend(tx) {
		panic("mad: link mailbox overflow on " + l.Channel.Name)
	}
	l.notifyArrival(tx)
	tx.announced = true
}

func (l *Link) notifyArrival(tx *transmission) {
	if tx.meta.SOM && !tx.announced {
		l.Channel.notifyArrival(l, tx.meta)
	}
}

// Recv delivers the next transmission as driver-owned memory (slot
// handoff): no CPU copy is charged, but the caller must copy the payload
// out before reusing it across messages. The mirrored BMMs use this for
// aggregates; the gateway uses it when the egress side can send from the
// ingress slot.
func (l *Link) Recv(p *vtime.Proc) (TxMeta, []byte) {
	tx := l.receive(p, nil)
	l.drv.OnRecv(p, l.Dst.Host, len(tx.slot))
	l.releaseCredit(tx)
	return tx.meta, tx.slot
}

// RecvInto delivers the next transmission's payload into dst. If the
// receive was posted before the data arrived — the pipelined common case —
// the NIC places it directly and no CPU copy is charged; a late post pays a
// memcpy out of driver memory, exactly the copy the paper's zero-copy
// machinery exists to avoid. It returns the transmission metadata and the
// payload size.
func (l *Link) RecvInto(p *vtime.Proc, dst []byte) (TxMeta, int) {
	tx := l.receive(p, dst)
	n := tx.meta.payloadBytes()
	if tx.slot != nil && !tx.rendezvous {
		// Data was already in driver memory: charged copy.
		if len(dst) < n {
			panic("mad: posted buffer too small")
		}
		l.Dst.Host.Memcpy(p, n)
		copy(dst, tx.slot)
	} else if tx.slot != nil && tx.granted != nil && tx.granted.dst == nil {
		panic("mad: rendezvous slot delivery on RecvInto path")
	}
	l.drv.OnRecv(p, l.Dst.Host, n)
	l.releaseCredit(tx)
	return tx.meta, n
}

// releaseCredit returns the eager flow-control credit once a transmission
// has reached the receiver's hands — either delivered into a posted buffer
// or popped out of driver memory. Releasing at hand-off (not at unpack
// completion) is what lets a pipelined receiver keep the sender streaming
// with zero copies, like the exposed ring buffers of the real SISCI module.
func (l *Link) releaseCredit(tx *transmission) {
	if l.credits != nil && !tx.rendezvous && !tx.credited {
		tx.credited = true
		l.credits.Release(1)
	}
}

// receive implements the shared blocking logic of Recv/RecvInto.
func (l *Link) receive(p *vtime.Proc, dst []byte) *transmission {
	p.Sleep(l.nic.RecvOverhead)
	if tx, ok := l.mailbox.TryRecv(); ok {
		if tx.rendezvous && !tx.dataReady {
			// Grant a queued rendezvous request.
			g := &postedRecv{dst: dst}
			tx.granted = g
			w := p.Blocker("rendezvous data")
			tx.recvW = w
			tx.senderW.Wake()
			w.Wait()
			if dst != nil && !g.placed {
				panic("mad: rendezvous completion did not place payload")
			}
		}
		return tx
	}
	g := &postedRecv{dst: dst, w: p.Blocker("link recv " + l.Channel.Name)}
	l.posted = g
	if len(l.gated) > 0 {
		w := l.gated[0]
		l.gated = l.gated[:copy(l.gated, l.gated[1:])]
		w.Wake()
	}
	g.w.Wait()
	return g.tx
}

// TryRecvReady reports whether a transmission is already waiting (used by
// non-blocking polls).
func (l *Link) TryRecvReady() bool { return l.mailbox.Len() > 0 }

// NIC returns the link's NIC model (used by the forwarding layer to pick
// fragment sizes).
func (l *Link) NIC() hw.NICParams { return l.nic }
