package mad_test

import (
	"bytes"
	"testing"

	"madgo/internal/drivers/loopback"
	"madgo/internal/drivers/sisci"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// rawPair builds a two-node fixture exposing the link level directly.
func rawPair(drv netDriver) (*vtime.Sim, *mad.Link, *mad.Link, *mad.Session) {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	net := drv.NewNetwork(pl, "n")
	ch := sess.NewChannel("raw", net, drv, a, b)
	return sim, ch.Link(a.Rank, b.Rank), ch.Link(b.Rank, a.Rank), sess
}

func TestLinkPostedEarlyIsZeroCopy(t *testing.T) {
	sim, ab, _, sess := rawPair(loopback.New())
	data := []byte("hello, posted receiver")
	meta := mad.TxMeta{SOM: true, Blocks: []mad.BlockDesc{{Size: len(data)}}}
	got := make([]byte, len(data))
	sim.Spawn("recv", func(p *vtime.Proc) {
		// Post before the sender even starts.
		ab.RecvInto(p, got)
	})
	sim.Spawn("send", func(p *vtime.Proc) {
		p.Sleep(vtime.Microsecond)
		ab.Send(p, meta, data)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted")
	}
	if n, _ := sess.Copies(); n != 0 {
		t.Fatalf("posted-early receive charged %d copies", n)
	}
}

func TestLinkLatePostPaysCopy(t *testing.T) {
	sim, ab, _, sess := rawPair(loopback.New())
	data := make([]byte, 10_000)
	meta := mad.TxMeta{SOM: true, Blocks: []mad.BlockDesc{{Size: len(data)}}}
	got := make([]byte, len(data))
	sim.Spawn("send", func(p *vtime.Proc) {
		ab.Send(p, meta, data)
	})
	sim.Spawn("recv", func(p *vtime.Proc) {
		p.Sleep(vtime.Millisecond) // data long since landed in the slot
		ab.RecvInto(p, got)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, copied := sess.Copies(); copied != int64(len(data)) {
		t.Fatalf("late post copied %d bytes, want %d", copied, len(data))
	}
}

func TestLinkSlotHandoffIsUncharged(t *testing.T) {
	sim, ab, _, sess := rawPair(loopback.New())
	data := []byte("slot me")
	meta := mad.TxMeta{SOM: true, Blocks: []mad.BlockDesc{{Size: len(data)}}}
	sim.Spawn("send", func(p *vtime.Proc) { ab.Send(p, meta, data) })
	sim.Spawn("recv", func(p *vtime.Proc) {
		p.Sleep(vtime.Microsecond)
		m, slot := ab.Recv(p)
		if !bytes.Equal(slot, data) || len(m.Blocks) != 1 {
			t.Error("slot handoff corrupted")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n, _ := sess.Copies(); n != 0 {
		t.Fatalf("slot handoff charged %d copies", n)
	}
}

func TestLinkSlotIsStableAfterSenderReuse(t *testing.T) {
	// The delivered slot must be driver memory, not an alias of the
	// sender's buffer.
	sim, ab, _, _ := rawPair(loopback.New())
	data := []byte{1, 2, 3, 4}
	meta := mad.TxMeta{SOM: true, Blocks: []mad.BlockDesc{{Size: len(data)}}}
	sim.Spawn("send", func(p *vtime.Proc) {
		ab.Send(p, meta, data)
		p.Sleep(vtime.Microsecond)
		copy(data, []byte{9, 9, 9, 9}) // reuse after send completed
	})
	sim.Spawn("recv", func(p *vtime.Proc) {
		p.Sleep(10 * vtime.Microsecond)
		_, slot := ab.Recv(p)
		if !bytes.Equal(slot, []byte{1, 2, 3, 4}) {
			t.Errorf("slot aliased sender memory: %v", slot)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDescriptorPayloadMismatchPanics(t *testing.T) {
	sim, ab, _, _ := rawPair(loopback.New())
	sim.Spawn("send", func(p *vtime.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on descriptor/payload mismatch")
			}
		}()
		ab.Send(p, mad.TxMeta{Blocks: []mad.BlockDesc{{Size: 5}}}, []byte{1})
	})
	_ = sim.Run()
}

func TestLinkPostedBufferTooSmallPanics(t *testing.T) {
	sim, ab, _, _ := rawPair(loopback.New())
	sim.Spawn("recv", func(p *vtime.Proc) {
		ab.RecvInto(p, make([]byte, 2))
	})
	sim.Spawn("send", func(p *vtime.Proc) {
		p.Sleep(vtime.Microsecond)
		ab.Send(p, mad.TxMeta{Blocks: []mad.BlockDesc{{Size: 10}}}, make([]byte, 10))
	})
	// The mismatch is detected at delivery, in scheduler context, so the
	// panic surfaces from Run itself.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on undersized posted buffer")
		}
	}()
	_ = sim.Run()
}

func TestEagerCreditsBoundSenderWindow(t *testing.T) {
	// With SCI's single ring credit, the second small send must wait for
	// the receiver to take the first.
	sim, ab, _, _ := rawPair(sisci.New())
	var secondSendDone vtime.Time
	sim.Spawn("send", func(p *vtime.Proc) {
		meta := mad.TxMeta{Blocks: []mad.BlockDesc{{Size: 8}}}
		m := meta
		m.SOM = true
		ab.Send(p, m, make([]byte, 8))
		ab.Send(p, meta, make([]byte, 8)) // blocks on the credit
		secondSendDone = p.Now()
	})
	var firstTaken vtime.Time
	sim.Spawn("recv", func(p *vtime.Proc) {
		p.Sleep(500 * vtime.Microsecond)
		ab.Recv(p)
		firstTaken = p.Now()
		ab.Recv(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if secondSendDone < firstTaken {
		t.Fatalf("second send finished at %v before the receiver took the first at %v",
			secondSendDone, firstTaken)
	}
}

func TestPostGatedLargeSendWaitsForReceiver(t *testing.T) {
	// An SCI transmission above the post-gate threshold must not stream
	// before the receiver posts; once posted it lands with zero copies.
	sim, ab, _, sess := rawPair(sisci.New())
	n := sisci.New().NIC().PostGateThreshold * 4
	data := make([]byte, n)
	var sendDone, posted vtime.Time
	sim.Spawn("send", func(p *vtime.Proc) {
		ab.Send(p, mad.TxMeta{SOM: true, Blocks: []mad.BlockDesc{{Size: n}}}, data)
		sendDone = p.Now()
	})
	sim.Spawn("recv", func(p *vtime.Proc) {
		p.Sleep(2 * vtime.Millisecond) // make the sender wait visibly
		posted = p.Now()
		ab.RecvInto(p, make([]byte, n))
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone <= posted {
		t.Fatalf("gated send completed at %v before the post at %v", sendDone, posted)
	}
	if c, b := sess.Copies(); c != 0 {
		t.Fatalf("gated delivery charged %d copies (%d bytes)", c, b)
	}
}

func TestRendezvousToSlotReceiver(t *testing.T) {
	// A rendezvous transmission granted to a plain Recv (no destination)
	// lands in driver memory and hands off without charges.
	sim, ab, _, sess := rawPair(allDrivers()["bip"])
	n := 100_000
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	sim.Spawn("send", func(p *vtime.Proc) {
		ab.Send(p, mad.TxMeta{SOM: true, Blocks: []mad.BlockDesc{{Size: n}}}, data)
	})
	sim.Spawn("recv", func(p *vtime.Proc) {
		p.Sleep(vtime.Microsecond)
		_, slot := ab.Recv(p)
		if !bytes.Equal(slot, data) {
			t.Error("rendezvous slot corrupted")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if c, _ := sess.Copies(); c != 0 {
		t.Fatalf("rendezvous slot handoff charged %d copies", c)
	}
}

func TestTxMetaFramingCharged(t *testing.T) {
	// Framing bytes must appear on the wire: a zero-payload transmission
	// still moves header bytes through the fluid engine.
	sim, ab, _, _ := rawPair(loopback.New())
	sim.Spawn("send", func(p *vtime.Proc) {
		ab.Send(p, mad.TxMeta{SOM: true}, nil)
	})
	sim.Spawn("recv", func(p *vtime.Proc) {
		meta, slot := ab.Recv(p)
		if len(slot) != 0 || !meta.SOM {
			t.Error("empty transmission mangled")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAccessors(t *testing.T) {
	_, ab, ba, _ := rawPair(loopback.New())
	if ab.Src.Name != "a" || ab.Dst.Name != "b" || ba.Src.Name != "b" {
		t.Error("link endpoints wrong")
	}
	if ab.NIC().Protocol != "loopback" {
		t.Error("NIC accessor wrong")
	}
	if ab.TryRecvReady() {
		t.Error("fresh link reports pending data")
	}
	if ab.Channel.Name != "raw" {
		t.Error("channel backlink wrong")
	}
}
