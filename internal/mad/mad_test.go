package mad_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/loopback"
	"madgo/internal/drivers/sbp"
	"madgo/internal/drivers/sisci"
	"madgo/internal/drivers/tcpnet"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// pair is a two-node test fixture over a single channel.
type pair struct {
	sim  *vtime.Sim
	sess *mad.Session
	ch   *mad.Channel
	a, b *mad.Node
}

type netDriver interface {
	mad.Driver
	NewNetwork(pl *hw.Platform, name string) *hw.Network
}

func newPair(drv netDriver) *pair {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	net := drv.NewNetwork(pl, drv.Protocol()+"0")
	ch := sess.NewChannel("ch0", net, drv, a, b)
	return &pair{sim: sim, sess: sess, ch: ch, a: a, b: b}
}

func (pr *pair) run(t *testing.T) {
	t.Helper()
	if err := pr.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// pattern fills a deterministic byte pattern.
func pattern(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*7 + seed
	}
	return d
}

// block is one pack/unpack step of a scripted exchange.
type block struct {
	data []byte
	s    mad.SendMode
	r    mad.RecvMode
}

// exchange sends the blocks a→b as one message and checks byte-exact
// delivery.
func exchange(t *testing.T, pr *pair, blocks []block) {
	t.Helper()
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		for _, bl := range blocks {
			px.Pack(p, bl.data, bl.s, bl.r)
		}
		px.EndPacking(p)
	})
	got := make([][]byte, len(blocks))
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		if u.From() != pr.a.Rank {
			t.Errorf("From() = %d, want %d", u.From(), pr.a.Rank)
		}
		for i, bl := range blocks {
			got[i] = make([]byte, len(bl.data))
			u.Unpack(p, got[i], bl.s, bl.r)
		}
		u.EndUnpacking(p)
	})
	pr.run(t)
	for i, bl := range blocks {
		if !bytes.Equal(got[i], bl.data) {
			t.Errorf("block %d corrupted (len %d, %v/%v)", i, len(bl.data), bl.s, bl.r)
		}
	}
}

func allDrivers() map[string]netDriver {
	return map[string]netDriver{
		"loopback": loopback.New(),
		"bip":      bip.New(),
		"sisci":    sisci.New(),
		"tcpnet":   tcpnet.New(),
		"sbp":      sbp.New(),
	}
}

func TestSingleBlockRoundTripAllDrivers(t *testing.T) {
	for name, drv := range allDrivers() {
		t.Run(name, func(t *testing.T) {
			exchange(t, newPair(drv), []block{
				{pattern(1000, 1), mad.SendCheaper, mad.ReceiveCheaper},
			})
		})
	}
}

func TestLargeBlockRoundTripAllDrivers(t *testing.T) {
	for name, drv := range allDrivers() {
		t.Run(name, func(t *testing.T) {
			exchange(t, newPair(drv), []block{
				{pattern(300_000, 3), mad.SendCheaper, mad.ReceiveCheaper},
			})
		})
	}
}

func TestAllFlagCombos(t *testing.T) {
	for _, s := range []mad.SendMode{mad.SendCheaper, mad.SendSafer, mad.SendLater} {
		for _, r := range []mad.RecvMode{mad.ReceiveCheaper, mad.ReceiveExpress} {
			for _, size := range []int{0, 1, 100, 5000, 100_000} {
				name := fmt.Sprintf("%v/%v/%d", s, r, size)
				t.Run(name, func(t *testing.T) {
					exchange(t, newPair(loopback.New()), []block{
						{pattern(size, byte(size)), s, r},
					})
				})
			}
		}
	}
}

func TestMixedMultiBlockMessage(t *testing.T) {
	for name, drv := range allDrivers() {
		t.Run(name, func(t *testing.T) {
			exchange(t, newPair(drv), []block{
				{pattern(4, 0), mad.SendCheaper, mad.ReceiveExpress}, // header-ish
				{pattern(64_000, 1), mad.SendCheaper, mad.ReceiveCheaper},
				{pattern(17, 2), mad.SendSafer, mad.ReceiveExpress},
				{pattern(0, 3), mad.SendCheaper, mad.ReceiveCheaper},
				{pattern(9_000, 4), mad.SendLater, mad.ReceiveCheaper},
				{pattern(333, 5), mad.SendCheaper, mad.ReceiveCheaper},
			})
		})
	}
}

func TestEmptyMessage(t *testing.T) {
	for name, drv := range allDrivers() {
		t.Run(name, func(t *testing.T) {
			exchange(t, newPair(drv), nil)
		})
	}
}

func TestSaferAllowsImmediateReuse(t *testing.T) {
	pr := newPair(loopback.New())
	data := pattern(500, 9)
	want := append([]byte(nil), data...)
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, data, mad.SendSafer, mad.ReceiveCheaper)
		for i := range data {
			data[i] = 0xFF // clobber right after Pack: SendSafer must tolerate it
		}
		px.EndPacking(p)
	})
	var got []byte
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		got = make([]byte, len(want))
		u.Unpack(p, got, mad.SendSafer, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	pr.run(t)
	if !bytes.Equal(got, want) {
		t.Fatal("SendSafer block corrupted by post-Pack modification")
	}
}

func TestConsecutiveMessagesInOrder(t *testing.T) {
	pr := newPair(bip.New())
	const msgs = 8
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
			px.Pack(p, []byte{byte(i)}, mad.SendCheaper, mad.ReceiveExpress)
			px.Pack(p, pattern(10_000+i, byte(i)), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		}
	})
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		for i := 0; i < msgs; i++ {
			u := pr.ch.At(pr.b).BeginUnpacking(p)
			id := make([]byte, 1)
			u.Unpack(p, id, mad.SendCheaper, mad.ReceiveExpress)
			if int(id[0]) != i {
				t.Errorf("message %d arrived out of order (tag %d)", i, id[0])
			}
			body := make([]byte, 10_000+i)
			u.Unpack(p, body, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(body, pattern(10_000+i, byte(i))) {
				t.Errorf("message %d body corrupted", i)
			}
		}
	})
	pr.run(t)
}

func TestExpressSizeThenBody(t *testing.T) {
	// The canonical Madeleine idiom: unpack an express length, allocate,
	// then unpack the body.
	pr := newPair(sisci.New())
	body := pattern(77_777, 6)
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		lenb := []byte{byte(len(body)), byte(len(body) >> 8), byte(len(body) >> 16), 0}
		px.Pack(p, lenb, mad.SendCheaper, mad.ReceiveExpress)
		px.Pack(p, body, mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	var got []byte
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		lenb := make([]byte, 4)
		u.Unpack(p, lenb, mad.SendCheaper, mad.ReceiveExpress)
		n := int(lenb[0]) | int(lenb[1])<<8 | int(lenb[2])<<16
		got = make([]byte, n)
		u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	pr.run(t)
	if !bytes.Equal(got, body) {
		t.Fatal("body corrupted")
	}
}

func TestFlagMismatchPanics(t *testing.T) {
	pr := newPair(loopback.New())
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, pattern(100, 0), mad.SendCheaper, mad.ReceiveExpress)
		px.EndPacking(p)
	})
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		defer func() {
			if recover() == nil {
				t.Error("expected protocol-error panic on flag mismatch")
			}
		}()
		u.Unpack(p, make([]byte, 100), mad.SendCheaper, mad.ReceiveCheaper)
	})
	_ = pr.sim.Run() // receiver panics internally; deadlock afterwards is fine
}

func TestBidirectionalTraffic(t *testing.T) {
	pr := newPair(bip.New())
	mk := func(from, to *mad.Node, seed byte) {
		pr.sim.Spawn(fmt.Sprintf("s%d", seed), func(p *vtime.Proc) {
			px := pr.ch.At(from).BeginPacking(p, to.Rank)
			px.Pack(p, pattern(50_000, seed), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		pr.sim.Spawn(fmt.Sprintf("r%d", seed), func(p *vtime.Proc) {
			u := pr.ch.At(to).BeginUnpacking(p)
			got := make([]byte, 50_000)
			u.Unpack(p, got, mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			if !bytes.Equal(got, pattern(50_000, seed)) {
				t.Errorf("direction %d corrupted", seed)
			}
		})
	}
	mk(pr.a, pr.b, 1)
	mk(pr.b, pr.a, 2)
	pr.run(t)
}

func TestZeroCopyLargeCheaperBlock(t *testing.T) {
	// A large SendCheaper block over a dynamic-buffer driver must cross
	// with no CPU copy anywhere (beyond the small express/aggregate
	// traffic, of which this message has none).
	for _, name := range []string{"bip", "sisci"} {
		t.Run(name, func(t *testing.T) {
			pr := newPair(allDrivers()[name])
			pr.sim.Spawn("sender", func(p *vtime.Proc) {
				px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
				px.Pack(p, pattern(256*1024, 1), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			})
			pr.sim.Spawn("receiver", func(p *vtime.Proc) {
				u := pr.ch.At(pr.b).BeginUnpacking(p)
				u.Unpack(p, make([]byte, 256*1024), mad.SendCheaper, mad.ReceiveCheaper)
				u.EndUnpacking(p)
			})
			pr.run(t)
			if n, b := pr.sess.Copies(); n != 0 {
				t.Errorf("dynamic zero-copy path made %d CPU copies (%d bytes)", n, b)
			}
		})
	}
}

func TestStaticDriverCopiesBothSides(t *testing.T) {
	// SBP stages through static buffers: one copy in on the sender, one
	// copy out on the receiver — and no more.
	pr := newPair(sbp.New())
	const n = 100_000
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, pattern(n, 1), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	pr.run(t)
	if aBytes := pr.a.Host.BytesCopied(); aBytes != n {
		t.Errorf("sender copied %d bytes, want %d (copy into static slots)", aBytes, n)
	}
	if bBytes := pr.b.Host.BytesCopied(); bBytes != n {
		t.Errorf("receiver copied %d bytes, want %d (copy out of slots)", bBytes, n)
	}
}

func TestTCPKernelCopiesCharged(t *testing.T) {
	pr := newPair(tcpnet.New())
	const n = 50_000
	pr.sim.Spawn("sender", func(p *vtime.Proc) {
		px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
		px.Pack(p, pattern(n, 1), mad.SendCheaper, mad.ReceiveCheaper)
		px.EndPacking(p)
	})
	pr.sim.Spawn("receiver", func(p *vtime.Proc) {
		u := pr.ch.At(pr.b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	pr.run(t)
	if aBytes := pr.a.Host.BytesCopied(); aBytes < n {
		t.Errorf("sender kernel copies = %d bytes, want >= %d", aBytes, n)
	}
	if bBytes := pr.b.Host.BytesCopied(); bBytes < n {
		t.Errorf("receiver kernel copies = %d bytes, want >= %d", bBytes, n)
	}
}

func TestLatencyAnchors(t *testing.T) {
	// Small-message one-way latency of the calibrated models: SCI ≈4 µs,
	// Myrinet ≈13 µs (EXPERIMENTS.md anchors; generous ±50% brackets so
	// incidental cost tweaks don't break the build, while order-of-
	// magnitude regressions do).
	cases := []struct {
		drv      netDriver
		min, max float64 // µs
	}{
		{sisci.New(), 2, 9},
		{bip.New(), 7, 25},
	}
	for _, c := range cases {
		t.Run(c.drv.Protocol(), func(t *testing.T) {
			pr := newPair(c.drv)
			var oneway vtime.Duration
			pr.sim.Spawn("sender", func(p *vtime.Proc) {
				px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
				px.Pack(p, []byte{42}, mad.SendCheaper, mad.ReceiveExpress)
				px.EndPacking(p)
			})
			pr.sim.Spawn("receiver", func(p *vtime.Proc) {
				u := pr.ch.At(pr.b).BeginUnpacking(p)
				u.Unpack(p, make([]byte, 1), mad.SendCheaper, mad.ReceiveExpress)
				u.EndUnpacking(p)
				oneway = vtime.Duration(p.Now())
			})
			pr.run(t)
			us := oneway.Microseconds()
			if us < c.min || us > c.max {
				t.Errorf("%s one-way latency = %.2fµs, want in [%v, %v]", c.drv.Protocol(), us, c.min, c.max)
			}
		})
	}
}

func TestBandwidthAnchors(t *testing.T) {
	// Asymptotic one-way bandwidth of a 1 MB cheaper block: Myrinet
	// ≈47 MB/s, SCI ≈44 MB/s (EXPERIMENTS.md anchors, ±10%).
	cases := []struct {
		drv  netDriver
		want float64 // MB/s
	}{
		{bip.New(), 47},
		{sisci.New(), 44},
	}
	const n = 1 << 20
	for _, c := range cases {
		t.Run(c.drv.Protocol(), func(t *testing.T) {
			pr := newPair(c.drv)
			var done vtime.Time
			pr.sim.Spawn("sender", func(p *vtime.Proc) {
				px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
				px.Pack(p, pattern(n, 0), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			})
			pr.sim.Spawn("receiver", func(p *vtime.Proc) {
				u := pr.ch.At(pr.b).BeginUnpacking(p)
				u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
				u.EndUnpacking(p)
				done = p.Now()
			})
			pr.run(t)
			mbps := float64(n) / vtime.Duration(done).Seconds() / 1e6
			if mbps < c.want*0.9 || mbps > c.want*1.1 {
				t.Errorf("%s bandwidth = %.1f MB/s, want ≈%.0f", c.drv.Protocol(), mbps, c.want)
			}
		})
	}
}

func TestCrossoverNearSixteenKB(t *testing.T) {
	// §3.2.2: SCI wins small messages, Myrinet large, with the crossover
	// around 16 KB where both deliver ≈40 MB/s.
	oneway := func(drv netDriver, n int) vtime.Duration {
		pr := newPair(drv)
		var done vtime.Time
		pr.sim.Spawn("sender", func(p *vtime.Proc) {
			px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
			px.Pack(p, pattern(n, 0), mad.SendCheaper, mad.ReceiveCheaper)
			px.EndPacking(p)
		})
		pr.sim.Spawn("receiver", func(p *vtime.Proc) {
			u := pr.ch.At(pr.b).BeginUnpacking(p)
			u.Unpack(p, make([]byte, n), mad.SendCheaper, mad.ReceiveCheaper)
			u.EndUnpacking(p)
			done = p.Now()
		})
		if err := pr.sim.Run(); err != nil {
			panic(err)
		}
		return vtime.Duration(done)
	}
	if sci, myri := oneway(sisci.New(), 2048), oneway(bip.New(), 2048); sci >= myri {
		t.Errorf("2 KB: SCI %v should beat Myrinet %v", sci, myri)
	}
	if sci, myri := oneway(sisci.New(), 128*1024), oneway(bip.New(), 128*1024); myri >= sci {
		t.Errorf("128 KB: Myrinet %v should beat SCI %v", myri, sci)
	}
	// At 16 KB both land near 40 MB/s.
	for _, c := range []struct {
		name string
		drv  netDriver
	}{{"sci", sisci.New()}, {"myrinet", bip.New()}} {
		d := oneway(c.drv, 16*1024)
		mbps := 16384 / d.Seconds() / 1e6
		if mbps < 36 || mbps > 46 {
			t.Errorf("%s @16KB = %.1f MB/s, want ≈40", c.name, mbps)
		}
	}
}

// Property: any random script of blocks round-trips byte-exactly on every
// driver.
func TestRoundTripProperty(t *testing.T) {
	drivers := allDrivers()
	names := []string{"loopback", "bip", "sisci", "tcpnet", "sbp"}
	f := func(seed int64, nblocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		name := names[rng.Intn(len(names))]
		count := int(nblocks%6) + 1
		blocks := make([]block, count)
		for i := range blocks {
			size := rng.Intn(40_000)
			if rng.Intn(4) == 0 {
				size = rng.Intn(40)
			}
			blocks[i] = block{
				data: pattern(size, byte(rng.Int())),
				s:    []mad.SendMode{mad.SendCheaper, mad.SendSafer, mad.SendLater}[rng.Intn(3)],
				r:    []mad.RecvMode{mad.ReceiveCheaper, mad.ReceiveExpress}[rng.Intn(2)],
			}
		}
		pr := newPair(drivers[name])
		okc := make(chan bool, 1)
		pr.sim.Spawn("sender", func(p *vtime.Proc) {
			px := pr.ch.At(pr.a).BeginPacking(p, pr.b.Rank)
			for _, bl := range blocks {
				px.Pack(p, bl.data, bl.s, bl.r)
			}
			px.EndPacking(p)
		})
		pr.sim.Spawn("receiver", func(p *vtime.Proc) {
			u := pr.ch.At(pr.b).BeginUnpacking(p)
			ok := true
			for _, bl := range blocks {
				got := make([]byte, len(bl.data))
				u.Unpack(p, got, bl.s, bl.r)
				ok = ok && bytes.Equal(got, bl.data)
			}
			u.EndUnpacking(p)
			okc <- ok
		})
		if err := pr.sim.Run(); err != nil {
			return false
		}
		return <-okc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelValidation(t *testing.T) {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	c := sess.AddNode("c")
	drv := loopback.New()
	net := drv.NewNetwork(pl, "loop0")
	ch := sess.NewChannel("ch", net, drv, a, b)

	if !ch.HasMember(a.Rank) || ch.HasMember(c.Rank) {
		t.Error("membership wrong")
	}
	if got := ch.Members(); len(got) != 2 || got[0] != a.Rank || got[1] != b.Rank {
		t.Errorf("Members() = %v", got)
	}
	for name, fn := range map[string]func(){
		"one member":      func() { sess.NewChannel("bad", net, drv, a) },
		"duplicate":       func() { sess.NewChannel("bad", net, drv, a, a) },
		"self link":       func() { ch.Link(a.Rank, a.Rank) },
		"non-member link": func() { ch.Link(a.Rank, c.Rank) },
		"non-member at":   func() { ch.At(c) },
		"dup node":        func() { sess.AddNode("a") },
		"bad rank":        func() { sess.Node(99) },
		"bad name":        func() { sess.NodeByName("zz") },
	} {
		name, fn := name, fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if sess.Node(0) != a || sess.NodeByName("b") != b || len(sess.Nodes()) != 3 {
		t.Error("session lookups wrong")
	}
	if len(sess.Channels()) != 1 {
		t.Error("channel registry wrong")
	}
}

func TestModeStrings(t *testing.T) {
	if mad.SendCheaper.String() != "send_CHEAPER" || mad.SendSafer.String() != "send_SAFER" ||
		mad.SendLater.String() != "send_LATER" || mad.ReceiveExpress.String() != "receive_EXPRESS" ||
		mad.ReceiveCheaper.String() != "receive_CHEAPER" {
		t.Error("mode strings wrong")
	}
	if mad.KindPlain.String() != "plain" || mad.KindGTM.String() != "gtm" {
		t.Error("kind strings wrong")
	}
}
