// Package mad implements the core of the Madeleine communication library:
// sessions, channels, connections, incremental message building
// (BeginPacking / Pack / EndPacking and the unpacking mirror), send/receive
// flag semantics, the buffer-management layer (BMMs) and the generic
// transmission-module (TM) machinery the protocol drivers plug into.
//
// The layering follows the paper's Figure 1: an application packs data
// blocks into messages on a channel; the channel's buffer management module
// shapes blocks into transmissions suited to the underlying network (copying
// small blocks into aggregates, referencing large ones, or staging
// everything through driver-owned static buffers); the transmission module
// moves each transmission over the simulated hardware, charging virtual
// time to the PCI buses and wires it crosses.
//
// Messages are deliberately *not* self-described at this level — the
// receiver must unpack blocks in exactly the order and with exactly the
// flags used by the packer, as in Madeleine. Self-description is added only
// by the generic transmission module in package fwd, for messages that cross
// gateways.
package mad

import "fmt"

// SendMode is the emission constraint of one packed block (the paper's pack
// flag pairs, after Madeleine II).
type SendMode uint8

const (
	// SendCheaper lets the library choose the cheapest strategy: small
	// blocks are copied into an aggregate, large ones are sent by
	// reference without a copy. This is the common default.
	SendCheaper SendMode = iota
	// SendSafer guarantees the application may modify the block as soon
	// as Pack returns: the library copies it out immediately.
	SendSafer
	// SendLater guarantees the library reads the block no earlier than
	// EndPacking; it is always sent by reference and never copied.
	SendLater
)

func (m SendMode) String() string {
	switch m {
	case SendCheaper:
		return "send_CHEAPER"
	case SendSafer:
		return "send_SAFER"
	case SendLater:
		return "send_LATER"
	default:
		return fmt.Sprintf("send_mode(%d)", uint8(m))
	}
}

// RecvMode is the reception constraint of one unpacked block.
type RecvMode uint8

const (
	// ReceiveCheaper lets the library defer availability: the block's
	// data is only guaranteed after EndUnpacking.
	ReceiveCheaper RecvMode = iota
	// ReceiveExpress guarantees the block's data is available as soon as
	// Unpack returns — required when later unpacking decisions depend on
	// it (sizes, destinations).
	ReceiveExpress
)

func (m RecvMode) String() string {
	switch m {
	case ReceiveCheaper:
		return "receive_CHEAPER"
	case ReceiveExpress:
		return "receive_EXPRESS"
	default:
		return fmt.Sprintf("recv_mode(%d)", uint8(m))
	}
}

// Kind distinguishes message classes on the wire. It is the small piece of
// information transmitted ahead of the message body so a receiver knows
// whether to decode with a regular module or the generic (forwarding) one —
// §2.2.2 of the paper.
type Kind uint8

const (
	// KindPlain is a regular Madeleine message, decoded by the mirrored
	// BMM of the channel.
	KindPlain Kind = iota
	// KindGTM is a self-described message produced by the generic
	// transmission module: either in flight between gateways on a
	// special channel, or arriving at its final destination on a regular
	// channel after crossing the last gateway.
	KindGTM
	// KindRel is a reliable datagram of the fwd reliability protocol: a
	// self-contained, checksummed message fragment with a sequence
	// number, delivered hop by hop with acknowledgements.
	KindRel
	// KindRelAck is the hop-level acknowledgement of one KindRel
	// datagram.
	KindRelAck
	// KindRelE2E is the end-to-end acknowledgement the final destination
	// sends back to a message's origin once every fragment arrived.
	KindRelE2E
	// KindStripe is one rail of a striped GTM message: a self-described
	// packet stream like KindGTM, but whose header additionally names the
	// rail and the contiguous byte span of the message it carries, so the
	// final receiver can reassemble several concurrently-arriving rails
	// into one posted buffer.
	KindStripe
	// KindHealth is a heartbeat/probation probe of the link-health
	// detector: a fixed-size request the receiver echoes back so the
	// prober can judge the link's liveness and round-trip without any
	// reliability machinery underneath.
	KindHealth
	// KindEager is a compact GTM message: the self-description header
	// piggybacks on the first data fragment and the terminator flag rides
	// on the last fragment's metadata, so a small message costs one wire
	// transfer instead of three (header, fragment, empty terminator).
	KindEager
	// KindAgg is an aggregate frame: several sub-MTU messages coalesced
	// into one length-prefixed, CRC-checked frame (package agg), relayed
	// by gateways like any compact GTM message and unpacked back into
	// individual messages at the final destination.
	KindAgg
	// KindMcast is a multicast GTM message: a self-described packet stream
	// whose header carries a CRC-checked destination *set* instead of a
	// single rank. Gateways on the distribution tree replicate each staged
	// fragment onto several egress links, rewriting the header per branch
	// with that branch's destination subset, so every network edge carries
	// each fragment at most once.
	KindMcast
)

func (k Kind) String() string {
	switch k {
	case KindPlain:
		return "plain"
	case KindGTM:
		return "gtm"
	case KindRel:
		return "rel"
	case KindRelAck:
		return "relack"
	case KindRelE2E:
		return "rele2e"
	case KindStripe:
		return "stripe"
	case KindHealth:
		return "health"
	case KindEager:
		return "eager"
	case KindAgg:
		return "agg"
	case KindMcast:
		return "mcast"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}
