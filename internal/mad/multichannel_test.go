package mad_test

import (
	"bytes"
	"testing"

	"madgo/internal/drivers/bip"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/vtime"
)

// The paper (§2.1.2): "It is of course possible to have several channels
// related to the same protocol and/or the same network adapter, which may
// be used to logically split communication. Yet, in-order delivery is only
// enforced for point-to-point connections within the same channel."

func TestTwoChannelsOnOneAdapterAreIndependent(t *testing.T) {
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	drv := bip.New()
	net := drv.NewNetwork(pl, "myri0") // ONE adapter...
	chA := sess.NewChannel("bulk", net, drv, a, b)
	chB := sess.NewChannel("control", net, drv, a, b) // ...two channels

	// Sender: a long bulk message on one channel, then a short control
	// message on the other — started later but finishing first.
	bulk := make([]byte, 1<<20)
	sim.Spawn("send", func(p *vtime.Proc) {
		pxA := chA.At(a).BeginPacking(p, b.Rank)
		pxA.Pack(p, bulk, mad.SendCheaper, mad.ReceiveCheaper)
		pxA.EndPacking(p)
	})
	sim.Spawn("send-ctl", func(p *vtime.Proc) {
		p.Sleep(vtime.Millisecond) // well after the bulk transfer started
		px := chB.At(a).BeginPacking(p, b.Rank)
		px.Pack(p, []byte("ping"), mad.SendCheaper, mad.ReceiveExpress)
		px.EndPacking(p)
	})

	var ctlAt, bulkAt vtime.Time
	sim.Spawn("recv-ctl", func(p *vtime.Proc) {
		u := chB.At(b).BeginUnpacking(p)
		got := make([]byte, 4)
		u.Unpack(p, got, mad.SendCheaper, mad.ReceiveExpress)
		u.EndUnpacking(p)
		ctlAt = p.Now()
		if !bytes.Equal(got, []byte("ping")) {
			t.Error("control message corrupted")
		}
	})
	sim.Spawn("recv-bulk", func(p *vtime.Proc) {
		u := chA.At(b).BeginUnpacking(p)
		u.Unpack(p, make([]byte, len(bulk)), mad.SendCheaper, mad.ReceiveCheaper)
		u.EndUnpacking(p)
		bulkAt = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Logical split: the control message is not queued behind the bulk
	// one (it would be on a single channel's FIFO connection).
	if ctlAt >= bulkAt {
		t.Errorf("control delivered at %v, after bulk at %v — channels not independent",
			ctlAt, bulkAt)
	}
}

func TestTwoAdaptersAggregateUpToTheBus(t *testing.T) {
	// "Madeleine is able ... to manage multiple network adapters (NIC)
	// for each of these protocols" (§2.1.2). Two Myrinet boards in the
	// same pair of machines roughly double the throughput until the PCI
	// bus saturates.
	oneway := func(adapters int) vtime.Duration {
		sim := vtime.New()
		pl := hw.NewPlatform(sim)
		sess := mad.NewSession(pl)
		a := sess.AddNode("a")
		b := sess.AddNode("b")
		drv := bip.New()
		const n = 1 << 20
		var done vtime.Time
		var wgDone int
		for i := 0; i < adapters; i++ {
			net := drv.NewNetwork(pl, "myri"+string(rune('0'+i)))
			ch := sess.NewChannel("rail"+string(rune('0'+i)), net, drv, a, b)
			share := n / adapters
			sim.Spawn("send", func(p *vtime.Proc) {
				px := ch.At(a).BeginPacking(p, b.Rank)
				px.Pack(p, make([]byte, share), mad.SendCheaper, mad.ReceiveCheaper)
				px.EndPacking(p)
			})
			sim.Spawn("recv", func(p *vtime.Proc) {
				u := ch.At(b).BeginUnpacking(p)
				u.Unpack(p, make([]byte, share), mad.SendCheaper, mad.ReceiveCheaper)
				u.EndUnpacking(p)
				wgDone++
				if wgDone == adapters && p.Now() > done {
					done = p.Now()
				}
				if p.Now() > done {
					done = p.Now()
				}
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return vtime.Duration(done)
	}
	single := oneway(1)
	dual := oneway(2)
	speedup := float64(single) / float64(dual)
	// Two 47 MB/s engines on a 90 MB/s bus: expect ≈1.9×.
	if speedup < 1.5 || speedup > 2.1 {
		t.Errorf("dual-rail speedup = %.2f (single %v, dual %v), want ≈1.9", speedup, single, dual)
	}
}

func TestChannelsIsolateProtocolErrors(t *testing.T) {
	// A protocol error on one channel must not corrupt another channel's
	// state: separate connections, separate mirrors.
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	sess := mad.NewSession(pl)
	a := sess.AddNode("a")
	b := sess.AddNode("b")
	drv := bip.New()
	net := drv.NewNetwork(pl, "m")
	ch1 := sess.NewChannel("c1", net, drv, a, b)
	ch2 := sess.NewChannel("c2", net, drv, a, b)
	sim.Spawn("send", func(p *vtime.Proc) {
		for _, ch := range []*mad.Channel{ch1, ch2} {
			px := ch.At(a).BeginPacking(p, b.Rank)
			px.Pack(p, []byte{1, 2, 3, 4}, mad.SendCheaper, mad.ReceiveExpress)
			px.EndPacking(p)
		}
	})
	sim.Spawn("recv", func(p *vtime.Proc) {
		// Botch the unpack on c1 (wrong flags) — it panics; recover and
		// keep using c2, which must be clean.
		func() {
			defer func() { _ = recover() }()
			u := ch1.At(b).BeginUnpacking(p)
			u.Unpack(p, make([]byte, 4), mad.SendCheaper, mad.ReceiveCheaper) // mismatch
			u.EndUnpacking(p)
		}()
		u := ch2.At(b).BeginUnpacking(p)
		got := make([]byte, 4)
		u.Unpack(p, got, mad.SendCheaper, mad.ReceiveExpress)
		u.EndUnpacking(p)
		if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
			t.Error("clean channel corrupted by the other channel's error")
		}
	})
	_ = sim.Run() // the abandoned c1 state may leave blocked daemons; ignore
}
