package mad

import (
	"fmt"

	"madgo/internal/vtime"
)

// decideCopy is the shared BMM policy for dynamic-buffer drivers: whether a
// block travels inside a copied aggregate or is sent by reference. It
// depends only on the flag pair, the block size and the driver caps, so the
// packer and the mirrored unpacker always agree.
func decideCopy(s SendMode, r RecvMode, size int, caps Caps) bool {
	switch s {
	case SendLater:
		return false
	case SendSafer:
		return true
	default: // SendCheaper: the library chooses
		return r == ReceiveExpress || size <= caps.CopyThreshold
	}
}

// Packing is an in-progress outgoing message (the state between
// BeginPacking and EndPacking).
type Packing struct {
	e       *Endpoint
	link    *Link
	kind    Kind
	sentAny bool
	ended   bool
	packer  packer
}

type packer interface {
	pack(p *vtime.Proc, data []byte, s SendMode, r RecvMode)
	end(p *vtime.Proc)
}

// BeginPacking starts a message to the node with rank to, acquiring the
// connection for the whole message. It mirrors mad_begin_packing.
func (e *Endpoint) BeginPacking(p *vtime.Proc, to Rank) *Packing {
	return e.BeginPackingKind(p, to, KindPlain)
}

// BeginPackingKind starts a message with an explicit kind note; the
// forwarding layer uses KindGTM for self-described messages.
func (e *Endpoint) BeginPackingKind(p *vtime.Proc, to Rank, kind Kind) *Packing {
	link := e.ch.Link(e.node.Rank, to)
	link.Acquire(p)
	px := &Packing{e: e, link: link, kind: kind}
	caps := e.ch.drv.Caps()
	switch {
	case caps.StaticBuffers:
		px.packer = newStaticPacker(px, caps)
	case caps.AggregateLimit > 0:
		px.packer = newDynPacker(px, caps)
	default:
		px.packer = newEagerPacker(px, caps)
	}
	return px
}

// Pack appends one data block to the message with the given constraint
// flags. The block is referenced or copied according to the channel's BMM
// policy.
func (px *Packing) Pack(p *vtime.Proc, data []byte, s SendMode, r RecvMode) {
	if px.ended {
		panic("mad: Pack after EndPacking")
	}
	p.Sleep(px.e.node.Host.CPU.PackCost)
	px.packer.pack(p, data, s, r)
}

// EndPacking flushes and completes the message. When it returns, the whole
// message has been pushed to the receiving side (the paper's guarantee).
func (px *Packing) EndPacking(p *vtime.Proc) {
	if px.ended {
		panic("mad: double EndPacking")
	}
	px.packer.end(p)
	if !px.sentAny {
		// A message with no blocks still announces itself.
		px.emit(p, nil, nil)
	}
	px.ended = true
	px.link.Release(p)
}

// emit sends one transmission carrying the given blocks.
func (px *Packing) emit(p *vtime.Proc, blocks []BlockDesc, data []byte) {
	meta := TxMeta{SOM: !px.sentAny, Kind: px.kind, Blocks: blocks}
	px.sentAny = true
	px.link.Send(p, meta, data)
}

// emitReferenced sends a zero-copy block. When it would be the first
// transmission of the message and the link delivers it eagerly, a small
// announce goes ahead so the receiver can post its buffer in time; on
// rendezvous links the request itself plays that role.
func (px *Packing) emitReferenced(p *vtime.Proc, desc BlockDesc, data []byte) {
	if !px.sentAny {
		nic := px.link.NIC()
		if !(nic.RendezvousThreshold > 0 && len(data) > nic.RendezvousThreshold) {
			px.link.Send(p, TxMeta{SOM: true, Announce: true, Kind: px.kind}, nil)
			px.sentAny = true
		}
	}
	px.emit(p, []BlockDesc{desc}, data)
}

// dynPacker is the aggregating BMM for dynamic-buffer drivers: small,
// safer and express blocks are copied into an aggregation buffer; large
// cheaper/later blocks flush the aggregate and go by reference, fragmented
// at the TM MTU if one is set.
type dynPacker struct {
	px     *Packing
	caps   Caps
	agg    []byte
	blocks []BlockDesc
}

func newDynPacker(px *Packing, caps Caps) *dynPacker {
	return &dynPacker{px: px, caps: caps, agg: make([]byte, 0, caps.AggregateLimit)}
}

func (d *dynPacker) pack(p *vtime.Proc, data []byte, s SendMode, r RecvMode) {
	if decideCopy(s, r, len(data), d.caps) {
		d.packCopied(p, data, s, r)
		return
	}
	d.flush(p)
	ForEachFragment(len(data), d.caps.MaxTransmission, func(off, n int) {
		d.px.emitReferenced(p, BlockDesc{Size: n, S: s, R: r}, data[off:off+n])
	})
}

// packCopied moves the block into the aggregate, splitting across flushes
// when it does not fit. On scatter/gather NICs the "copy" is a gather-DMA
// descriptor: the bytes still coalesce on the wire, but the host CPU never
// touches them, so no copy is charged and the descriptor ring bounds the
// aggregate instead.
func (d *dynPacker) packCopied(p *vtime.Proc, data []byte, s SendMode, r RecvMode) {
	if len(data) == 0 {
		d.blocks = append(d.blocks, BlockDesc{Size: 0, S: s, R: r})
		return
	}
	for len(data) > 0 {
		if d.caps.ScatterGather && d.caps.GatherEntries > 0 && len(d.blocks) >= d.caps.GatherEntries {
			d.flush(p)
		}
		space := cap(d.agg) - len(d.agg)
		if space == 0 {
			d.flush(p)
			space = cap(d.agg) - len(d.agg)
		}
		n := len(data)
		if n > space {
			n = space
		}
		if d.caps.ScatterGather && s != SendSafer {
			// Gather descriptor: uncharged coalescing. SendSafer
			// still snapshots — the card reads the memory later
			// than Pack returns.
			d.agg = append(d.agg, data[:n]...)
		} else {
			d.px.e.node.Host.Memcpy(p, n)
			d.agg = append(d.agg, data[:n]...)
		}
		d.blocks = append(d.blocks, BlockDesc{Size: n, S: s, R: r})
		data = data[n:]
	}
}

func (d *dynPacker) flush(p *vtime.Proc) {
	if len(d.blocks) == 0 {
		return
	}
	d.px.emit(p, d.blocks, d.agg)
	// Fresh storage: the previous aggregate is still referenced until
	// delivery (a real TM rotates preallocated aggregates the same way).
	d.agg = make([]byte, 0, d.caps.AggregateLimit)
	d.blocks = nil
}

func (d *dynPacker) end(p *vtime.Proc) { d.flush(p) }

// eagerPacker sends every block as its own transmission the moment it is
// packed; SendSafer still pays its snapshot copy.
type eagerPacker struct {
	px   *Packing
	caps Caps
}

func newEagerPacker(px *Packing, caps Caps) *eagerPacker {
	return &eagerPacker{px: px, caps: caps}
}

func (d *eagerPacker) pack(p *vtime.Proc, data []byte, s SendMode, r RecvMode) {
	if s == SendSafer {
		d.px.e.node.Host.Memcpy(p, len(data))
		data = append([]byte(nil), data...)
	}
	ForEachFragment(len(data), d.caps.MaxTransmission, func(off, n int) {
		d.px.emitReferenced(p, BlockDesc{Size: n, S: s, R: r}, data[off:off+n])
	})
}

func (d *eagerPacker) end(p *vtime.Proc) {}

// staticPacker is the BMM for static-buffer drivers (SBP): every block is
// copied into driver-owned slots, which are transmitted when full.
type staticPacker struct {
	px     *Packing
	caps   Caps
	slot   *Buffer
	fill   int
	blocks []BlockDesc
}

func newStaticPacker(px *Packing, caps Caps) *staticPacker {
	if caps.MaxTransmission <= 0 {
		panic("mad: static-buffer driver must set MaxTransmission (slot size)")
	}
	return &staticPacker{px: px, caps: caps}
}

func (d *staticPacker) pack(p *vtime.Proc, data []byte, s SendMode, r RecvMode) {
	if len(data) == 0 {
		d.ensureSlot()
		d.blocks = append(d.blocks, BlockDesc{Size: 0, S: s, R: r})
		return
	}
	for len(data) > 0 {
		d.ensureSlot()
		space := len(d.slot.Data) - d.fill
		if space == 0 {
			d.flush(p)
			d.ensureSlot()
			space = len(d.slot.Data)
		}
		n := len(data)
		if n > space {
			n = space
		}
		d.px.e.node.Host.Memcpy(p, n)
		copy(d.slot.Data[d.fill:], data[:n])
		d.fill += n
		d.blocks = append(d.blocks, BlockDesc{Size: n, S: s, R: r})
		data = data[n:]
	}
}

func (d *staticPacker) ensureSlot() {
	if d.slot == nil {
		d.slot = d.px.e.ch.drv.AllocStatic(d.px.e.node.Host, d.caps.MaxTransmission)
		d.fill = 0
	}
}

func (d *staticPacker) flush(p *vtime.Proc) {
	if len(d.blocks) == 0 {
		return
	}
	d.px.emit(p, d.blocks, d.slot.Data[:d.fill])
	d.slot = nil
	d.fill = 0
	d.blocks = nil
}

func (d *staticPacker) end(p *vtime.Proc) { d.flush(p) }

// ForEachFragment invokes fn for each MTU-sized fragment of an n-byte
// block; an MTU of zero means a single fragment. A zero-length block still
// yields one empty fragment. The generic transmission module shares this
// fragmentation with the regular BMMs so both ends always agree on packet
// boundaries.
func ForEachFragment(n, mtu int, fn func(off, size int)) {
	if n == 0 {
		fn(0, 0)
		return
	}
	if mtu <= 0 {
		fn(0, n)
		return
	}
	for off := 0; off < n; off += mtu {
		size := n - off
		if size > mtu {
			size = mtu
		}
		fn(off, size)
	}
}

// Unpacking is an in-progress incoming message (the state between
// BeginUnpacking and EndUnpacking).
type Unpacking struct {
	e        *Endpoint
	link     *Link
	arrival  *Arrival
	ended    bool
	unpacker unpacker
	pulled   bool
}

type unpacker interface {
	unpack(p *vtime.Proc, dst []byte, s SendMode, r RecvMode)
	end(p *vtime.Proc)
}

// BeginUnpacking blocks until any message arrives on this endpoint's
// channel and opens it. It mirrors mad_begin_unpacking.
func (e *Endpoint) BeginUnpacking(p *vtime.Proc) *Unpacking {
	return e.Open(p, e.WaitArrival(p))
}

// Open starts unpacking a specific announced message. The forwarding layer
// separates WaitArrival from Open so its polling threads can dispatch on the
// message kind first.
func (e *Endpoint) Open(p *vtime.Proc, a *Arrival) *Unpacking {
	a.Link.AcquireRecv(p)
	u := &Unpacking{e: e, link: a.Link, arrival: a}
	if a.Meta.Announce {
		// Consume the header-only announce so the next receive posts
		// for the payload itself.
		meta, _ := a.Link.Recv(p)
		if !meta.Announce || len(meta.Blocks) != 0 {
			panic("mad: protocol error: announced message without announce transmission")
		}
		u.pulled = true
	}
	// One mirror suffices: it replays the packer's decisions from the
	// same inputs, whatever the packer flavour.
	u.unpacker = newMirrorUnpacker(u, e.ch.drv.Caps())
	return u
}

// From returns the sender's rank.
func (u *Unpacking) From() Rank { return u.arrival.From() }

// Kind returns the message kind announced ahead of the body.
func (u *Unpacking) Kind() Kind { return u.arrival.Kind() }

// Unpack extracts the next block into dst. The flags and the block size
// must match the corresponding Pack call exactly — Madeleine messages are
// not self-described, and any divergence panics with a protocol error.
func (u *Unpacking) Unpack(p *vtime.Proc, dst []byte, s SendMode, r RecvMode) {
	if u.ended {
		panic("mad: Unpack after EndUnpacking")
	}
	p.Sleep(u.e.node.Host.CPU.PackCost)
	u.unpacker.unpack(p, dst, s, r)
	u.pulled = true
}

// EndUnpacking completes the message and releases the connection.
func (u *Unpacking) EndUnpacking(p *vtime.Proc) {
	if u.ended {
		panic("mad: double EndUnpacking")
	}
	u.unpacker.end(p)
	if !u.pulled {
		// Empty message: consume its announcement transmission.
		meta, _ := u.link.Recv(p)
		if len(meta.Blocks) != 0 {
			panic("mad: protocol error: empty unpacking of a non-empty message")
		}
	}
	u.ended = true
	u.link.ReleaseRecv(p)
}

// mirrorUnpacker replays the packer's BMM decisions: copied blocks are
// pulled out of aggregate transmissions (slot handoff plus a charged copy),
// referenced blocks are received in place via posted receives.
type mirrorUnpacker struct {
	u    *Unpacking
	caps Caps

	// Current aggregate being consumed.
	cur    []byte
	blocks []BlockDesc
	idx    int
	off    int
}

func newMirrorUnpacker(u *Unpacking, caps Caps) *mirrorUnpacker {
	return &mirrorUnpacker{u: u, caps: caps}
}

func (m *mirrorUnpacker) unpack(p *vtime.Proc, dst []byte, s SendMode, r RecvMode) {
	// Eager-packer blocks (including safer snapshots) travel as their
	// own transmissions; so do referenced blocks of the aggregating BMM.
	if !m.caps.StaticBuffers && (m.caps.AggregateLimit == 0 || !decideCopy(s, r, len(dst), m.caps)) {
		m.unpackReferenced(p, dst, s, r)
		return
	}
	m.unpackCopied(p, dst, s, r)
}

func (m *mirrorUnpacker) unpackReferenced(p *vtime.Proc, dst []byte, s SendMode, r RecvMode) {
	if m.idx < len(m.blocks) {
		panic(fmt.Sprintf("mad: protocol error: aggregate has %d unconsumed blocks before a referenced block",
			len(m.blocks)-m.idx))
	}
	ForEachFragment(len(dst), m.caps.MaxTransmission, func(off, n int) {
		meta, got := m.u.link.RecvInto(p, dst[off:off+n])
		if len(meta.Blocks) != 1 {
			panic("mad: protocol error: expected single-block transmission")
		}
		m.check(meta.Blocks[0], BlockDesc{Size: n, S: s, R: r})
		if got != n {
			panic(fmt.Sprintf("mad: protocol error: fragment size %d, expected %d", got, n))
		}
	})
}

func (m *mirrorUnpacker) unpackCopied(p *vtime.Proc, dst []byte, s SendMode, r RecvMode) {
	if len(dst) == 0 {
		m.need(p)
		m.check(m.blocks[m.idx], BlockDesc{Size: 0, S: s, R: r})
		m.idx++
		m.finishAggregate()
		return
	}
	for len(dst) > 0 {
		m.need(p)
		desc := m.blocks[m.idx]
		m.check(desc, BlockDesc{Size: -1, S: s, R: r}) // fragment sizes vary; flags must match
		if desc.Size > len(dst) {
			panic(fmt.Sprintf("mad: protocol error: %d-byte fragment for %d-byte destination", desc.Size, len(dst)))
		}
		m.u.e.node.Host.Memcpy(p, desc.Size)
		copy(dst, m.cur[m.off:m.off+desc.Size])
		m.off += desc.Size
		m.idx++
		dst = dst[desc.Size:]
		m.finishAggregate()
	}
}

// need ensures an aggregate with unconsumed blocks is current.
func (m *mirrorUnpacker) need(p *vtime.Proc) {
	if m.idx < len(m.blocks) {
		return
	}
	meta, slot := m.u.link.Recv(p)
	if len(meta.Blocks) == 0 {
		panic("mad: protocol error: empty transmission inside a message")
	}
	m.cur, m.blocks, m.idx, m.off = slot, meta.Blocks, 0, 0
}

// finishAggregate resets state when the current aggregate is drained.
func (m *mirrorUnpacker) finishAggregate() {
	if m.idx == len(m.blocks) {
		m.cur, m.blocks, m.idx, m.off = nil, nil, 0, 0
	}
}

// check verifies a received descriptor against the mirrored expectation.
func (m *mirrorUnpacker) check(got, want BlockDesc) {
	if got.S != want.S || got.R != want.R || (want.Size >= 0 && got.Size != want.Size) {
		panic(fmt.Sprintf("mad: protocol error: packed %v, unpacked %v — blocks must be unpacked in pack order with matching flags", got, want))
	}
}

func (m *mirrorUnpacker) end(p *vtime.Proc) {
	if m.idx < len(m.blocks) {
		panic(fmt.Sprintf("mad: protocol error: EndUnpacking with %d unconsumed blocks", len(m.blocks)-m.idx))
	}
}

func (d BlockDesc) String() string {
	return fmt.Sprintf("{%dB %v %v}", d.Size, d.S, d.R)
}
