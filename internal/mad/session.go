package mad

import (
	"fmt"

	"madgo/internal/hw"
)

// Rank identifies a node within a session, as in the paper's configuration
// files. Ranks are global to the session, not per channel.
type Rank int

// Session is one Madeleine application session: a set of nodes and the
// channels connecting them on the simulated platform.
type Session struct {
	Platform *hw.Platform
	nodes    []*Node
	byName   map[string]*Node
	channels []*Channel
}

// NewSession creates an empty session on the platform.
func NewSession(pl *hw.Platform) *Session {
	return &Session{Platform: pl, byName: make(map[string]*Node)}
}

// Node is one process of the session, pinned to a simulated machine.
type Node struct {
	Session *Session
	Rank    Rank
	Name    string
	Host    *hw.Host
}

// AddNode registers a node on a new machine with the default hardware
// (dual PII-450, 33 MHz/32-bit PCI).
func (s *Session) AddNode(name string) *Node {
	return s.AddNodeWith(name, hw.DefaultCPU(), hw.DefaultPCI())
}

// AddNodeWith registers a node on a new machine with explicit hardware
// parameters.
func (s *Session) AddNodeWith(name string, cpu hw.CPUParams, pci hw.PCIParams) *Node {
	if _, dup := s.byName[name]; dup {
		panic("mad: duplicate node " + name)
	}
	n := &Node{
		Session: s,
		Rank:    Rank(len(s.nodes)),
		Name:    name,
		Host:    s.Platform.NewHost(name, cpu, pci),
	}
	s.nodes = append(s.nodes, n)
	s.byName[name] = n
	return n
}

// Node returns the node with the given rank.
func (s *Session) Node(r Rank) *Node {
	if int(r) < 0 || int(r) >= len(s.nodes) {
		panic(fmt.Sprintf("mad: rank %d out of range", r))
	}
	return s.nodes[r]
}

// NodeByName returns the node with the given name.
func (s *Session) NodeByName(name string) *Node {
	n, ok := s.byName[name]
	if !ok {
		panic("mad: unknown node " + name)
	}
	return n
}

// Nodes returns all nodes in rank order.
func (s *Session) Nodes() []*Node { return s.nodes }

// Channels returns all channels created so far.
func (s *Session) Channels() []*Channel { return s.channels }

// Copies returns the total CPU copies and bytes copied across all nodes —
// the session-wide zero-copy accounting used by tests and benchmarks.
func (s *Session) Copies() (count, bytes int64) {
	for _, n := range s.nodes {
		count += n.Host.Copies()
		bytes += n.Host.BytesCopied()
	}
	return count, bytes
}

// ResetCopyStats clears copy accounting on every node.
func (s *Session) ResetCopyStats() {
	for _, n := range s.nodes {
		n.Host.ResetCopyStats()
	}
}

func (n *Node) String() string {
	return fmt.Sprintf("%s(rank %d)", n.Name, n.Rank)
}
