package obs

import (
	"fmt"
	"io"
	"sort"

	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// Lane is the busy/stall/idle decomposition of one actor's activity over an
// analysis window — the pipeline-bubble accounting of §3.3.1. Busy covers
// useful work (recv/send/...), Stall covers time lost to the pipeline
// machinery itself: buffer switches ("swap" spans) and waits for a free
// staging buffer ("stall" spans), Idle is the remainder. SteadyPeriod is the mean start-to-start interval of
// the lane's dominant op with the fill and drain iterations dropped — the
// steady-state pipeline period.
type Lane struct {
	Actor        string
	Window       vtime.Duration
	Busy         vtime.Duration
	Stall        vtime.Duration
	Idle         vtime.Duration
	Utilization  float64 // Busy / Window
	SteadyPeriod vtime.Duration
	Spans        int
}

// AnalyzeLanes decomposes every actor recorded by tr over [t0, t1). Interval
// coverage is computed on the merged union of spans, so overlapping or
// duplicate spans are not double-counted. Lanes are returned sorted by actor
// name; an empty window yields nil.
func AnalyzeLanes(tr *trace.Tracer, t0, t1 vtime.Time) []Lane {
	if tr == nil || t1 <= t0 {
		return nil
	}
	window := t1.Sub(t0)
	var lanes []Lane
	for _, actor := range tr.Actors() {
		spans := tr.ByActor(actor)
		var busy, stall []ival
		n := 0
		opCount := make(map[string]int)
		for _, s := range spans {
			iv, ok := clip(s, t0, t1)
			if !ok {
				continue
			}
			n++
			opCount[s.Op]++
			if s.Op == "swap" || s.Op == "stall" {
				stall = append(stall, iv)
			} else {
				busy = append(busy, iv)
			}
		}
		if n == 0 {
			continue
		}
		l := Lane{
			Actor:  actor,
			Window: window,
			Busy:   coverage(busy),
			Stall:  coverage(stall),
			Spans:  n,
		}
		l.Idle = window - l.Busy - l.Stall
		if l.Idle < 0 {
			l.Idle = 0
		}
		l.Utilization = float64(l.Busy) / float64(window)
		l.SteadyPeriod = steadyPeriod(tr, actor, dominantOp(opCount))
		lanes = append(lanes, l)
	}
	return lanes
}

// WriteLaneReport renders the lane decomposition as a text table.
func WriteLaneReport(w io.Writer, lanes []Lane) {
	if len(lanes) == 0 {
		fmt.Fprintln(w, "no lanes recorded")
		return
	}
	fmt.Fprintf(w, "%-18s %12s %12s %12s %6s %12s %6s\n",
		"lane", "busy", "stall", "idle", "util", "period", "spans")
	for _, l := range lanes {
		period := "-"
		if l.SteadyPeriod > 0 {
			period = l.SteadyPeriod.String()
		}
		fmt.Fprintf(w, "%-18s %12v %12v %12v %5.1f%% %12s %6d\n",
			l.Actor, l.Busy, l.Stall, l.Idle, l.Utilization*100, period, l.Spans)
	}
}

// ival is one clipped half-open interval.
type ival struct{ t0, t1 vtime.Time }

// clip restricts a span to [t0, t1); ok is false when it falls entirely
// outside.
func clip(s trace.Span, t0, t1 vtime.Time) (ival, bool) {
	a, b := s.T0, s.T1
	if a < t0 {
		a = t0
	}
	if b > t1 {
		b = t1
	}
	if b < a {
		return ival{}, false
	}
	if s.T1 < t0 || s.T0 >= t1 {
		return ival{}, false
	}
	return ival{a, b}, true
}

// coverage returns the total length of the union of the intervals.
func coverage(ivs []ival) vtime.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].t0 < ivs[j].t0 })
	var total vtime.Duration
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.t0 <= cur.t1 {
			if iv.t1 > cur.t1 {
				cur.t1 = iv.t1
			}
			continue
		}
		total += cur.t1.Sub(cur.t0)
		cur = iv
	}
	total += cur.t1.Sub(cur.t0)
	return total
}

// dominantOp picks the op with the most spans, preferring useful work over
// swaps and stalls and breaking ties alphabetically for determinism.
func dominantOp(counts map[string]int) string {
	best, bestN := "", -1
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		n := counts[op]
		if (op == "swap" || op == "stall") && len(counts) > 1 {
			continue
		}
		if n > bestN {
			best, bestN = op, n
		}
	}
	return best
}

// steadyPeriod averages the start-to-start intervals of the dominant op with
// the first and last dropped (pipeline fill and drain).
func steadyPeriod(tr *trace.Tracer, actor, op string) vtime.Duration {
	if op == "" {
		return 0
	}
	periods := tr.Periods(actor, op)
	if len(periods) <= 2 {
		return 0
	}
	periods = periods[1 : len(periods)-1]
	var sum vtime.Duration
	for _, p := range periods {
		sum += p
	}
	return sum / vtime.Duration(len(periods))
}
