package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"madgo/internal/trace"
)

// WriteChromeTrace renders spans and hop events as Chrome trace_event JSON
// (the format Perfetto and chrome://tracing load). Each span actor becomes a
// thread inside a process named after the actor's first component ("gw",
// "rel", "fault", ...); each traced message becomes a thread of instant
// events inside a "messages" process, so a message's provenance reads as one
// horizontal lane. Timestamps are virtual microseconds.
func WriteChromeTrace(w io.Writer, spans []trace.Span, hops []Hop) error {
	pids := make(map[string]int)
	tids := make(map[string]int)
	pid := func(name string) int {
		id, ok := pids[name]
		if !ok {
			id = len(pids) + 1
			pids[name] = id
		}
		return id
	}
	tid := func(name string) int {
		id, ok := tids[name]
		if !ok {
			id = len(tids) + 1
			tids[name] = id
		}
		return id
	}

	// Assign process/thread IDs in sorted name order so the output is
	// deterministic regardless of recording order.
	procNames := make(map[string]bool)
	threadNames := make(map[string]string) // thread -> process
	for _, s := range spans {
		proc := actorProcess(s.Actor)
		procNames[proc] = true
		threadNames[s.Actor] = proc
	}
	if len(hops) > 0 {
		procNames["messages"] = true
	}
	for _, h := range hops {
		threadNames[msgThread(h.Msg)] = "messages"
	}
	for _, n := range sortedKeys(procNames) {
		pid(n)
	}
	threads := make([]string, 0, len(threadNames))
	for n := range threadNames {
		threads = append(threads, n)
	}
	sort.Strings(threads)
	for _, n := range threads {
		tid(n)
	}

	// Initialized non-nil so an empty trace still encodes as
	// {"traceEvents": []}, which Perfetto accepts ("traceEvents": null is
	// rejected).
	events := []map[string]any{}
	for _, n := range sortedKeys(procNames) {
		events = append(events, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid(n),
			"args": map[string]any{"name": n},
		})
	}
	for _, n := range threads {
		events = append(events, map[string]any{
			"name": "thread_name", "ph": "M", "pid": pid(threadNames[n]), "tid": tid(n),
			"args": map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		events = append(events, map[string]any{
			"name": s.Op, "ph": "X",
			"ts": micros(int64(s.T0)), "dur": micros(int64(s.T1.Sub(s.T0))),
			"pid": pid(actorProcess(s.Actor)), "tid": tid(s.Actor),
			"args": map[string]any{"bytes": s.Bytes},
		})
	}
	for _, h := range hops {
		events = append(events, map[string]any{
			"name": h.Op, "ph": "i", "s": "t",
			"ts":  micros(int64(h.At)),
			"pid": pid("messages"), "tid": tid(msgThread(h.Msg)),
			"args": map[string]any{"node": h.Node, "detail": h.Detail, "bytes": h.Bytes},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// actorProcess maps an actor name to its Chrome process: the leading
// component of names like "gw:recv:sci0" or "rel:a1", the whole name
// otherwise.
func actorProcess(actor string) string {
	if i := strings.IndexByte(actor, ':'); i > 0 {
		return actor[:i]
	}
	return actor
}

func msgThread(id uint64) string {
	return "msg " + utoa(id)
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// micros converts virtual nanoseconds to trace_event microseconds.
func micros(ns int64) float64 {
	return float64(ns) / 1000.0
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
