package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// TestChromeTraceZeroEvents pins the degenerate case: a run with no spans
// and no hops must still produce {"traceEvents": []} — Perfetto rejects
// "traceEvents": null, which a nil slice would encode to.
func TestChromeTraceZeroEvents(t *testing.T) {
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	raw, ok := doc["traceEvents"]
	if !ok {
		t.Fatal("empty trace has no traceEvents key")
	}
	if string(raw) == "null" {
		t.Fatal(`empty trace encodes traceEvents as null; Perfetto requires []`)
	}
	var events []any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("traceEvents is not an array: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty trace has %d events, want 0", len(events))
	}
}

// TestChromeTraceIdenticalTimestamps checks that events sharing one virtual
// instant — common in a discrete-event simulation, where a whole burst can
// complete at the same tick — all survive the export with zero-length
// durations rather than being merged or reordered.
func TestChromeTraceIdenticalTimestamps(t *testing.T) {
	at := vtime.Time(5 * vtime.Microsecond)
	spans := []trace.Span{
		{Actor: "gw:recv:sci0", Op: "recv", Bytes: 100, T0: at, T1: at},
		{Actor: "gw:send:myri0", Op: "send", Bytes: 100, T0: at, T1: at},
	}
	hops := []Hop{
		{Msg: 1, At: at, Node: "gw", Op: "relay", Bytes: 100},
		{Msg: 2, At: at, Node: "gw", Op: "relay", Bytes: 100},
	}
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, spans, hops); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ts, _ := ev["ts"].(float64); ts != 5.0 {
				t.Errorf("span ts = %v µs, want 5", ts)
			}
			if dur, _ := ev["dur"].(float64); dur != 0 {
				t.Errorf("zero-width span has dur = %v, want 0", dur)
			}
		case "i":
			instant++
		}
	}
	if complete != 2 || instant != 2 {
		t.Errorf("exported %d spans and %d instants, want 2 and 2", complete, instant)
	}
}

// TestChromeTraceLargeEventCount pushes >64k events through the exporter:
// no internal counter may truncate (65535 is the classic wraparound), and
// every span must come back out.
func TestChromeTraceLargeEventCount(t *testing.T) {
	const n = 70_000
	spans := make([]trace.Span, n)
	for i := range spans {
		t0 := vtime.Time(i) * vtime.Time(vtime.Microsecond)
		spans[i] = trace.Span{Actor: "gw:send:myri0", Op: "send", Bytes: i, T0: t0, T1: t0 + vtime.Time(vtime.Microsecond)}
	}
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, spans, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("large trace is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != n {
		t.Errorf("large trace exported %d spans, want %d", complete, n)
	}
}
