package obs

import "math"

// Histogram is a log-bucketed histogram: bucket boundaries grow by a factor
// of 2^(1/histSub) from histBase, so the quantile estimator's relative error
// is bounded by one sub-octave (≈9%) and the estimator is exact for
// constant-valued series (it clamps to the observed min/max). Values are
// arbitrary nonnegative floats; durations are observed in seconds.
type Histogram struct {
	name    string
	labels  Labels
	buckets map[int]int64 // index i covers (upper(i-1), upper(i)]
	count   int64
	sum     float64
	min     float64
	max     float64
}

const (
	// histBase is the upper bound of bucket 0; everything at or below it
	// lands there. 1 ns in seconds — below the simulation's resolution.
	histBase = 1e-9
	// histSub is the number of buckets per octave (factor-of-two span).
	histSub = 8
)

func newHistogram(name string, labels Labels) *Histogram {
	return &Histogram{name: name, labels: labels, buckets: make(map[int]int64)}
}

// bucketIndex returns the index of the bucket containing v.
func bucketIndex(v float64) int {
	if v <= histBase {
		return 0
	}
	return int(math.Ceil(math.Log2(v/histBase) * histSub))
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	return histBase * math.Pow(2, float64(i)/histSub)
}

func (h *Histogram) observe(v float64) {
	if v < 0 {
		panic("obs: negative histogram observation on " + h.name)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// sortedIndexes returns the populated bucket indexes, ascending.
func (h *Histogram) sortedIndexes() []int {
	idx := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idx = append(idx, i)
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the containing bucket, clamped to the observed min/max so
// degenerate distributions report exactly.
func (h *Histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum int64
	for _, i := range h.sortedIndexes() {
		n := h.buckets[i]
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			frac := (rank - float64(cum)) / float64(n)
			v := lo + (hi-lo)*frac
			return clamp(v, h.min, h.max)
		}
		cum += n
	}
	return h.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
